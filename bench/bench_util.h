#ifndef RELCOMP_BENCH_BENCH_UTIL_H_
#define RELCOMP_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>

#include "util/status.h"

namespace relcomp {
namespace bench {

/// Aborts the benchmark binary on a non-OK status (bench setup errors
/// are programming errors, not measurements).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << "bench setup failed (" << what
              << "): " << status.ToString() << std::endl;
    std::exit(EXIT_FAILURE);
  }
}

template <typename T>
T ValueOrDie(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).value();
}

/// Wall-clock timing for the one-shot table rows (the repeated series
/// go through google-benchmark instead).
inline double TimeMs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// "12.34 ms" with sane precision.
std::string FormatMs(double ms);

/// Appends the machine context every BENCH_*.json report carries:
///
///   "hardware_concurrency": <std::thread::hardware_concurrency()>,
///   "threads_used": <threads_used>,
///
/// (two-space indented, trailing comma) so numbers from different
/// machines — and thread sweeps on one machine — are comparable
/// without reading the harness source. `threads_used` is the worker
/// count the measured configuration actually ran with (1 = serial).
void AppendHardwareJson(std::string* json, size_t threads_used);

}  // namespace bench
}  // namespace relcomp

#endif  // RELCOMP_BENCH_BENCH_UTIL_H_
