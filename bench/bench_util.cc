#include "bench_util.h"

#include <cstdio>
#include <thread>

#include "util/str.h"

namespace relcomp {
namespace bench {

std::string FormatMs(double ms) {
  char buf[64];
  if (ms < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", ms);
  } else if (ms < 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ms);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", ms / 1000.0);
  }
  return buf;
}

void AppendHardwareJson(std::string* json, size_t threads_used) {
  *json += StrCat(
      "  \"hardware_concurrency\": ",
      static_cast<size_t>(std::thread::hardware_concurrency()),
      ",\n  \"threads_used\": ", threads_used, ",\n");
}

}  // namespace bench
}  // namespace relcomp
