#include "bench_util.h"

#include <cstdio>

namespace relcomp {
namespace bench {

std::string FormatMs(double ms) {
  char buf[64];
  if (ms < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", ms);
  } else if (ms < 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ms);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", ms / 1000.0);
  }
  return buf;
}

}  // namespace bench
}  // namespace relcomp
