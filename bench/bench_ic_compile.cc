// Proposition 2.1 costs: checking integrity constraints natively vs
// through their containment-constraint compilation. The compiled form
// buys uniformity (one partially-closed check covers completeness and
// consistency); this bench quantifies what it costs.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "constraints/constraint_check.h"
#include "constraints/integrity_constraints.h"
#include "workload/generators.h"

namespace relcomp {
namespace icbench {

using bench::CheckOk;
using bench::ValueOrDie;

struct Fixture {
  std::shared_ptr<Schema> db_schema;
  std::shared_ptr<Schema> master_schema;
  Database db;
  Database master;

  explicit Fixture(size_t tuples)
      : db_schema(std::make_shared<Schema>()),
        master_schema(std::make_shared<Schema>()),
        db(std::make_shared<Schema>()),
        master(std::make_shared<Schema>()) {
    CheckOk(db_schema->AddRelation("Ord", 3), "Ord");
    CheckOk(db_schema->AddRelation("Item", 2), "Item");
    CheckOk(EnsureEmptyMasterRelation(master_schema.get()), "empty");
    master = Database(master_schema);
    db = Database(db_schema);
    Rng rng(99);
    std::uniform_int_distribution<int64_t> value(0, 31);
    for (size_t i = 0; i < tuples; ++i) {
      db.InsertUnchecked(
          "Ord", Tuple::Ints({value(rng), value(rng), value(rng)}));
      db.InsertUnchecked("Item", Tuple::Ints({value(rng), value(rng)}));
    }
  }
};

void BM_FdNative(benchmark::State& state) {
  Fixture f(static_cast<size_t>(state.range(0)));
  FunctionalDependency fd("Ord", {0}, {1, 2});
  for (auto _ : state) {
    auto ok = fd.Check(f.db);
    CheckOk(ok.status(), "check");
    benchmark::DoNotOptimize(*ok);
  }
}
BENCHMARK(BM_FdNative)->Arg(16)->Arg(64)->Arg(256);

void BM_FdCompiled(benchmark::State& state) {
  Fixture f(static_cast<size_t>(state.range(0)));
  FunctionalDependency fd("Ord", {0}, {1, 2});
  auto ccs = ValueOrDie(fd.ToContainmentConstraints(*f.db_schema), "ccs");
  ConstraintSet set;
  for (auto& cc : ccs) set.Add(std::move(cc));
  for (auto _ : state) {
    auto ok = Satisfies(set, f.db, f.master);
    CheckOk(ok.status(), "check");
    benchmark::DoNotOptimize(*ok);
  }
}
BENCHMARK(BM_FdCompiled)->Arg(16)->Arg(64)->Arg(256);

void BM_CindNative(benchmark::State& state) {
  Fixture f(static_cast<size_t>(state.range(0)));
  ConditionalInd cind("Ord", {1}, {AttrPattern{2, Value::Int(3)}}, "Item",
                      {0}, {});
  for (auto _ : state) {
    auto ok = cind.Check(f.db);
    CheckOk(ok.status(), "check");
    benchmark::DoNotOptimize(*ok);
  }
}
BENCHMARK(BM_CindNative)->Arg(16)->Arg(64);

void BM_CindCompiledFo(benchmark::State& state) {
  Fixture f(static_cast<size_t>(state.range(0)));
  ConditionalInd cind("Ord", {1}, {AttrPattern{2, Value::Int(3)}}, "Item",
                      {0}, {});
  auto cc = ValueOrDie(cind.ToContainmentConstraint(*f.db_schema), "cc");
  ConstraintSet set;
  set.Add(cc);
  for (auto _ : state) {
    auto ok = Satisfies(set, f.db, f.master);
    CheckOk(ok.status(), "check");
    benchmark::DoNotOptimize(*ok);
  }
}
BENCHMARK(BM_CindCompiledFo)->Arg(16)->Arg(64);

void BM_CompileCfd(benchmark::State& state) {
  Fixture f(4);
  ConditionalFd cfd("Ord", {0}, {AttrPattern{2, Value::Int(1)}}, {1, 2},
                    {AttrPattern{1, Value::Int(2)}});
  for (auto _ : state) {
    auto ccs = cfd.ToContainmentConstraints(*f.db_schema);
    CheckOk(ccs.status(), "compile");
    benchmark::DoNotOptimize(ccs->size());
  }
}
BENCHMARK(BM_CompileCfd);

}  // namespace icbench
}  // namespace relcomp

BENCHMARK_MAIN();
