// Durable-audit overhead — what crash recoverability costs. The same
// sliced RCDP execution is run twice over the largest bench_rcdp_scaling
// instance: once resuming purely in memory (the PR-3 anytime loop), and
// once persisting every slice boundary to a CheckpointStore
// (temp-file + fsync + rename + journal append, the DecisionService's
// per-slice write). The difference is the price of surviving a kill;
// the target is <= 5% at the service's slice granularity.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "bench_util.h"
#include "completeness/rcdp.h"
#include "service/checkpoint_store.h"
#include "service/decision_service.h"
#include "util/execution_control.h"
#include "util/str.h"
#include "workload/crm_scenario.h"

namespace relcomp {
namespace service_bench {

using bench::CheckOk;
using bench::ValueOrDie;

std::string FreshDir(const char* tag) {
  static int counter = 0;
  return StrCat("/tmp/relcomp_bench_service_", ::getpid(), "_", tag, "_",
                counter++);
}

/// The largest BM_DataComplexity instance from bench_rcdp_scaling — the
/// shared yardstick across the BENCH_*.json reports.
struct Instance {
  CrmScenario crm;
  ConstraintSet v;
  AnyQuery q1;
};

Instance MakeInstance() {
  CrmOptions options;
  options.num_domestic = 16;
  options.num_international = 8;
  options.num_employees = 2;
  options.support_per_employee = 2;
  CrmScenario crm = ValueOrDie(CrmScenario::Make(options), "crm");
  ConstraintSet v;
  v.Add(ValueOrDie(crm.Phi0(), "phi0"));
  AnyQuery q1 = ValueOrDie(crm.Q1(), "q1");
  return Instance{std::move(crm), std::move(v), std::move(q1)};
}

/// Decision points one uninterrupted run of the instance claims.
size_t TotalDecisionPoints(const Instance& inst) {
  ExecutionBudget budget;
  budget.set_max_steps(size_t{1} << 30);
  RcdpOptions options;
  options.budget = &budget;
  auto verdict =
      DecideRcdp(inst.q1, inst.crm.db(), inst.crm.master(), inst.v, options);
  CheckOk(verdict.status(), "probe decide");
  return budget.steps();
}

/// One sliced run to the verdict: exhaust, (optionally persist), rearm,
/// resume — the DecisionService's retry loop without the service.
/// Returns the number of slices the run took.
size_t SlicedDecide(const Instance& inst, size_t slice,
                    CheckpointStore* store) {
  ExecutionBudget budget;
  budget.set_max_steps(slice);
  std::optional<SearchCheckpoint> resume;
  std::string last_form;
  size_t slices = 1;
  for (;;) {
    RcdpOptions options;
    options.budget = &budget;
    options.resume = resume.has_value() ? &*resume : nullptr;
    auto verdict = DecideRcdp(inst.q1, inst.crm.db(), inst.crm.master(),
                              inst.v, options);
    CheckOk(verdict.status(), "sliced decide");
    if (verdict->verdict != Verdict::kUnknown) {
      if (store != nullptr) CheckOk(store->Forget("bench"), "forget");
      benchmark::DoNotOptimize(verdict->complete);
      return slices;
    }
    if (!verdict->checkpoint.has_value()) {
      std::fprintf(stderr, "sliced decide exhausted without a checkpoint\n");
      std::abort();
    }
    if (store != nullptr) {
      CheckOk(store->PersistCheckpoint("bench", *verdict->checkpoint)
                  .status(),
              "persist");
    }
    // Stall escalation, as in the DecisionService: checkpoints are
    // rank-granular, so a slice smaller than one rank unit's cost
    // re-exhausts at the same point; widen until the unit fits.
    std::string form = verdict->checkpoint->Serialize();
    if (form == last_form) {
      slice = slice > (size_t{1} << 62) ? slice : slice * 2;
      budget.set_max_steps(slice);
    }
    last_form = std::move(form);
    resume = std::move(verdict->checkpoint);
    budget.Rearm();
    ++slices;
  }
}

void BM_SlicedDecideInMemory(benchmark::State& state) {
  Instance inst = MakeInstance();
  const size_t slice =
      TotalDecisionPoints(inst) / static_cast<size_t>(state.range(0)) + 1;
  for (auto _ : state) {
    SlicedDecide(inst, slice, nullptr);
  }
}
BENCHMARK(BM_SlicedDecideInMemory)->Arg(2)->Arg(8);

void BM_SlicedDecidePersisted(benchmark::State& state) {
  Instance inst = MakeInstance();
  const size_t slice =
      TotalDecisionPoints(inst) / static_cast<size_t>(state.range(0)) + 1;
  auto store = ValueOrDie(CheckpointStore::Open(FreshDir("bm")), "store");
  for (auto _ : state) {
    SlicedDecide(inst, slice, store.get());
  }
}
BENCHMARK(BM_SlicedDecidePersisted)->Arg(2)->Arg(8);

/// End-to-end service round trip: Submit + Wait of the instance's spec
/// as a job, persisting at every slice boundary.
void BM_ServiceSubmitWait(benchmark::State& state) {
  // A self-contained spec-text instance (the service ships the problem
  // as text): every pair over {0..5} x {0..6} except the far corner.
  std::string spec_text = "relation S(a, b)\nmaster relation M(m)\n";
  for (int x = 0; x <= 5; ++x) {
    for (int y = 0; y <= 6; ++y) {
      if (x == 5 && y == 6) continue;
      spec_text += StrCat("fact S(", x, ", ", y, ")\n");
    }
  }
  for (int m = 0; m <= 5; ++m) {
    spec_text += StrCat("master fact M(", m, ")\n");
  }
  spec_text += "constraint c0(x) :- S(x, y) |= M[0]\n";
  spec_text += "query cq Q(x, y) :- S(x, y)\n";

  auto service = ValueOrDie(DecisionService::Start(FreshDir("svc")),
                            "service");
  JobSpec job;
  job.kind = JobKind::kRcdp;
  job.spec_text = spec_text;
  job.slice_steps = 16;
  size_t seq = 0;
  for (auto _ : state) {
    const std::string id = StrCat("bench-", seq++);
    CheckOk(service->Submit(id, job), "submit");
    auto result = service->Wait(id);
    CheckOk(result.status(), "wait");
    benchmark::DoNotOptimize(result->evidence.size());
  }
}
BENCHMARK(BM_ServiceSubmitWait);

/// One timed configuration, measured directly (steady_clock over a
/// fixed wall budget) so the JSON report does not depend on
/// google-benchmark's output format.
struct Measured {
  double ns_per_op = 0;
  size_t iterations = 0;
  size_t slices_per_op = 0;
};

/// Interleaved A/B measurement: each round times one in-memory op then
/// one persisted op back to back, so slow drift (page cache, CPU
/// contention on a one-core container) hits both configurations equally
/// instead of biasing whichever block ran second. Block measurement of
/// the two configs swung the overhead estimate by ±9% run to run; the
/// paired form is stable to ~1%.
void MeasurePaired(const Instance& inst, size_t slice, CheckpointStore* store,
                   double min_seconds, Measured* in_memory,
                   Measured* persisted) {
  using Clock = std::chrono::steady_clock;
  in_memory->slices_per_op = SlicedDecide(inst, slice, nullptr);  // warm-up
  persisted->slices_per_op = SlicedDecide(inst, slice, store);
  const Clock::time_point start = Clock::now();
  double mem_ns = 0;
  double store_ns = 0;
  for (;;) {
    Clock::time_point t0 = Clock::now();
    SlicedDecide(inst, slice, nullptr);
    Clock::time_point t1 = Clock::now();
    SlicedDecide(inst, slice, store);
    Clock::time_point t2 = Clock::now();
    mem_ns += static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    store_ns += static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1).count());
    ++in_memory->iterations;
    ++persisted->iterations;
    const double elapsed = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - start)
            .count());
    if (elapsed >= min_seconds * 1e9) break;
  }
  in_memory->ns_per_op = mem_ns / static_cast<double>(in_memory->iterations);
  persisted->ns_per_op = store_ns / static_cast<double>(persisted->iterations);
}

void AppendConfigJson(std::string* json, const char* name,
                      const Measured& m) {
  *json += StrCat("    \"", name, "\": {\n");
  *json += StrCat("      \"ns_per_op\": ", static_cast<size_t>(m.ns_per_op),
                  ",\n");
  *json += StrCat("      \"iterations\": ", m.iterations, ",\n");
  *json += StrCat("      \"slices_per_op\": ", m.slices_per_op, "\n");
  *json += "    }";
}

/// Measures the sliced largest-instance decide with and without durable
/// persistence and writes BENCH_service.json. Output path overridable
/// via RELCOMP_BENCH_SERVICE_JSON.
void WriteServiceJson() {
  // The sliced op is hundreds of ms; a short window fits too few
  // iterations for a percent-level comparison.
  const double min_seconds = 8.0;
  Instance inst = MakeInstance();
  const size_t total = TotalDecisionPoints(inst);
  const size_t slice = total / 8 + 1;  // ~8 persists per audit

  auto store = ValueOrDie(CheckpointStore::Open(FreshDir("json")), "store");
  Measured in_memory;
  Measured persisted;
  MeasurePaired(inst, slice, store.get(), min_seconds, &in_memory,
                &persisted);

  const double overhead_pct =
      in_memory.ns_per_op > 0
          ? (persisted.ns_per_op / in_memory.ns_per_op - 1.0) * 100.0
          : 0;
  const double ns_per_persist =
      persisted.slices_per_op > 1
          ? (persisted.ns_per_op - in_memory.ns_per_op) /
                static_cast<double>(persisted.slices_per_op - 1)
          : 0;

  std::string json = "{\n";
  json += "  \"benchmark\": \"service_checkpoint_overhead\",\n";
  bench::AppendHardwareJson(&json, 1);
  json += "  \"instance\": { \"num_domestic\": 16, "
          "\"num_international\": 8, \"num_employees\": 2, "
          "\"support_per_employee\": 2 },\n";
  json += StrCat("  \"decision_points_per_op\": ", total, ",\n");
  json += StrCat("  \"slice_steps\": ", slice, ",\n");
  json += "  \"configs\": {\n";
  AppendConfigJson(&json, "in_memory", in_memory);
  json += ",\n";
  AppendConfigJson(&json, "persisted", persisted);
  json += "\n  },\n";
  json += StrCat("  \"ns_per_persist\": ",
                 static_cast<size_t>(ns_per_persist > 0 ? ns_per_persist : 0),
                 ",\n");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", overhead_pct);
  json += StrCat("  \"persist_overhead_pct\": ", buf, ",\n");
  json += "  \"persist_overhead_target_pct\": 5.0\n";
  json += "}\n";

  const char* path = std::getenv("RELCOMP_BENCH_SERVICE_JSON");
  if (path == nullptr) path = "BENCH_service.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s (persist overhead at %zu slices/op: %s%%)\n", path,
              persisted.slices_per_op, buf);
}

}  // namespace service_bench
}  // namespace relcomp

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  relcomp::service_bench::WriteServiceJson();
  return 0;
}
