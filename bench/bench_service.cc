// Durable-audit overhead — what crash recoverability costs. The same
// sliced RCDP execution is run twice over the largest bench_rcdp_scaling
// instance: once resuming purely in memory (the PR-3 anytime loop), and
// once persisting every slice boundary to a CheckpointStore
// (temp-file + fsync + rename + journal append, the DecisionService's
// per-slice write). The difference is the price of surviving a kill;
// the target is <= 5% at the service's slice granularity.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "completeness/rcdp.h"
#include "service/checkpoint_store.h"
#include "service/decision_service.h"
#include "util/execution_control.h"
#include "util/fs_env.h"
#include "util/str.h"
#include "workload/crm_scenario.h"

namespace relcomp {
namespace service_bench {

using bench::CheckOk;
using bench::ValueOrDie;

std::string FreshDir(const char* tag) {
  static int counter = 0;
  return StrCat("/tmp/relcomp_bench_service_", ::getpid(), "_", tag, "_",
                counter++);
}

/// The largest BM_DataComplexity instance from bench_rcdp_scaling — the
/// shared yardstick across the BENCH_*.json reports.
struct Instance {
  CrmScenario crm;
  ConstraintSet v;
  AnyQuery q1;
};

Instance MakeInstance() {
  CrmOptions options;
  options.num_domestic = 16;
  options.num_international = 8;
  options.num_employees = 2;
  options.support_per_employee = 2;
  CrmScenario crm = ValueOrDie(CrmScenario::Make(options), "crm");
  ConstraintSet v;
  v.Add(ValueOrDie(crm.Phi0(), "phi0"));
  AnyQuery q1 = ValueOrDie(crm.Q1(), "q1");
  return Instance{std::move(crm), std::move(v), std::move(q1)};
}

/// Decision points one uninterrupted run of the instance claims.
size_t TotalDecisionPoints(const Instance& inst) {
  ExecutionBudget budget;
  budget.set_max_steps(size_t{1} << 30);
  RcdpOptions options;
  options.budget = &budget;
  auto verdict =
      DecideRcdp(inst.q1, inst.crm.db(), inst.crm.master(), inst.v, options);
  CheckOk(verdict.status(), "probe decide");
  return budget.steps();
}

/// One sliced run to the verdict: exhaust, (optionally persist), rearm,
/// resume — the DecisionService's retry loop without the service.
/// Returns the number of slices the run took.
size_t SlicedDecide(const Instance& inst, size_t slice,
                    CheckpointStore* store) {
  ExecutionBudget budget;
  budget.set_max_steps(slice);
  std::optional<SearchCheckpoint> resume;
  std::string last_form;
  size_t slices = 1;
  for (;;) {
    RcdpOptions options;
    options.budget = &budget;
    options.resume = resume.has_value() ? &*resume : nullptr;
    auto verdict = DecideRcdp(inst.q1, inst.crm.db(), inst.crm.master(),
                              inst.v, options);
    CheckOk(verdict.status(), "sliced decide");
    if (verdict->verdict != Verdict::kUnknown) {
      if (store != nullptr) CheckOk(store->Forget("bench"), "forget");
      benchmark::DoNotOptimize(verdict->complete);
      return slices;
    }
    if (!verdict->checkpoint.has_value()) {
      std::fprintf(stderr, "sliced decide exhausted without a checkpoint\n");
      std::abort();
    }
    if (store != nullptr) {
      CheckOk(store->PersistCheckpoint("bench", *verdict->checkpoint)
                  .status(),
              "persist");
    }
    // Stall escalation, as in the DecisionService: checkpoints are
    // rank-granular, so a slice smaller than one rank unit's cost
    // re-exhausts at the same point; widen until the unit fits.
    std::string form = verdict->checkpoint->Serialize();
    if (form == last_form) {
      slice = slice > (size_t{1} << 62) ? slice : slice * 2;
      budget.set_max_steps(slice);
    }
    last_form = std::move(form);
    resume = std::move(verdict->checkpoint);
    budget.Rearm();
    ++slices;
  }
}

void BM_SlicedDecideInMemory(benchmark::State& state) {
  Instance inst = MakeInstance();
  const size_t slice =
      TotalDecisionPoints(inst) / static_cast<size_t>(state.range(0)) + 1;
  for (auto _ : state) {
    SlicedDecide(inst, slice, nullptr);
  }
}
BENCHMARK(BM_SlicedDecideInMemory)->Arg(2)->Arg(8);

void BM_SlicedDecidePersisted(benchmark::State& state) {
  Instance inst = MakeInstance();
  const size_t slice =
      TotalDecisionPoints(inst) / static_cast<size_t>(state.range(0)) + 1;
  auto store = ValueOrDie(CheckpointStore::Open(FreshDir("bm")), "store");
  for (auto _ : state) {
    SlicedDecide(inst, slice, store.get());
  }
}
BENCHMARK(BM_SlicedDecidePersisted)->Arg(2)->Arg(8);

/// A self-contained spec-text instance (the service ships the problem
/// as text): every pair over {0..max_x} x {0..max_y} except the far
/// corner. Different grid sizes yield different job content, which the
/// verdict cache keys on.
std::string CornerSpecText(int max_x, int max_y) {
  std::string spec_text = "relation S(a, b)\nmaster relation M(m)\n";
  for (int x = 0; x <= max_x; ++x) {
    for (int y = 0; y <= max_y; ++y) {
      if (x == max_x && y == max_y) continue;
      spec_text += StrCat("fact S(", x, ", ", y, ")\n");
    }
  }
  for (int m = 0; m <= max_x; ++m) {
    spec_text += StrCat("master fact M(", m, ")\n");
  }
  spec_text += "constraint c0(x) :- S(x, y) |= M[0]\n";
  spec_text += "query cq Q(x, y) :- S(x, y)\n";
  return spec_text;
}

/// End-to-end service round trip: Submit + Wait of the instance's spec
/// as a job, persisting at every slice boundary.
void BM_ServiceSubmitWait(benchmark::State& state) {
  std::string spec_text = CornerSpecText(5, 6);

  auto service = ValueOrDie(DecisionService::Start(FreshDir("svc")),
                            "service");
  JobSpec job;
  job.kind = JobKind::kRcdp;
  job.spec_text = spec_text;
  job.slice_steps = 16;
  size_t seq = 0;
  for (auto _ : state) {
    const std::string id = StrCat("bench-", seq++);
    CheckOk(service->Submit(id, job), "submit");
    auto result = service->Wait(id);
    CheckOk(result.status(), "wait");
    benchmark::DoNotOptimize(result->evidence.size());
  }
}
BENCHMARK(BM_ServiceSubmitWait);

/// One timed configuration, measured directly (steady_clock over a
/// fixed wall budget) so the JSON report does not depend on
/// google-benchmark's output format.
struct Measured {
  double ns_per_op = 0;
  size_t iterations = 0;
  size_t slices_per_op = 0;
};

/// Interleaved A/B measurement: each round times one in-memory op then
/// one persisted op back to back, so slow drift (page cache, CPU
/// contention on a one-core container) hits both configurations equally
/// instead of biasing whichever block ran second. Block measurement of
/// the two configs swung the overhead estimate by ±9% run to run; the
/// paired form is stable to ~1%.
void MeasurePaired(const Instance& inst, size_t slice, CheckpointStore* store,
                   double min_seconds, Measured* in_memory,
                   Measured* persisted) {
  using Clock = std::chrono::steady_clock;
  in_memory->slices_per_op = SlicedDecide(inst, slice, nullptr);  // warm-up
  persisted->slices_per_op = SlicedDecide(inst, slice, store);
  const Clock::time_point start = Clock::now();
  double mem_ns = 0;
  double store_ns = 0;
  for (;;) {
    Clock::time_point t0 = Clock::now();
    SlicedDecide(inst, slice, nullptr);
    Clock::time_point t1 = Clock::now();
    SlicedDecide(inst, slice, store);
    Clock::time_point t2 = Clock::now();
    mem_ns += static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    store_ns += static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1).count());
    ++in_memory->iterations;
    ++persisted->iterations;
    const double elapsed = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - start)
            .count());
    if (elapsed >= min_seconds * 1e9) break;
  }
  in_memory->ns_per_op = mem_ns / static_cast<double>(in_memory->iterations);
  persisted->ns_per_op = store_ns / static_cast<double>(persisted->iterations);
}

void AppendConfigJson(std::string* json, const char* name,
                      const Measured& m) {
  *json += StrCat("    \"", name, "\": {\n");
  *json += StrCat("      \"ns_per_op\": ", static_cast<size_t>(m.ns_per_op),
                  ",\n");
  *json += StrCat("      \"iterations\": ", m.iterations, ",\n");
  *json += StrCat("      \"slices_per_op\": ", m.slices_per_op, "\n");
  *json += "    }";
}

/// Measures the sliced largest-instance decide with and without durable
/// persistence and writes BENCH_service.json. Output path overridable
/// via RELCOMP_BENCH_SERVICE_JSON.
void WriteServiceJson() {
  // The sliced op is hundreds of ms; a short window fits too few
  // iterations for a percent-level comparison.
  const double min_seconds = 8.0;
  Instance inst = MakeInstance();
  const size_t total = TotalDecisionPoints(inst);
  const size_t slice = total / 8 + 1;  // ~8 persists per audit

  auto store = ValueOrDie(CheckpointStore::Open(FreshDir("json")), "store");
  Measured in_memory;
  Measured persisted;
  MeasurePaired(inst, slice, store.get(), min_seconds, &in_memory,
                &persisted);

  const double overhead_pct =
      in_memory.ns_per_op > 0
          ? (persisted.ns_per_op / in_memory.ns_per_op - 1.0) * 100.0
          : 0;
  const double ns_per_persist =
      persisted.slices_per_op > 1
          ? (persisted.ns_per_op - in_memory.ns_per_op) /
                static_cast<double>(persisted.slices_per_op - 1)
          : 0;

  std::string json = "{\n";
  json += "  \"benchmark\": \"service_checkpoint_overhead\",\n";
  bench::AppendHardwareJson(&json, 1);
  json += "  \"instance\": { \"num_domestic\": 16, "
          "\"num_international\": 8, \"num_employees\": 2, "
          "\"support_per_employee\": 2 },\n";
  json += StrCat("  \"decision_points_per_op\": ", total, ",\n");
  json += StrCat("  \"slice_steps\": ", slice, ",\n");
  json += "  \"configs\": {\n";
  AppendConfigJson(&json, "in_memory", in_memory);
  json += ",\n";
  AppendConfigJson(&json, "persisted", persisted);
  json += "\n  },\n";
  json += StrCat("  \"ns_per_persist\": ",
                 static_cast<size_t>(ns_per_persist > 0 ? ns_per_persist : 0),
                 ",\n");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", overhead_pct);
  json += StrCat("  \"persist_overhead_pct\": ", buf, ",\n");
  json += "  \"persist_overhead_target_pct\": 5.0\n";
  json += "}\n";

  const char* path = std::getenv("RELCOMP_BENCH_SERVICE_JSON");
  if (path == nullptr) path = "BENCH_service.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s (persist overhead at %zu slices/op: %s%%)\n", path,
              persisted.slices_per_op, buf);
}

/// Degraded-mode service economics — what a service with a dead disk
/// still delivers, and how fast it comes back when the disk does.
/// Three measurements against a verdict-cache-warmed service whose
/// FsEnv fails every store op with EIO:
///   - shed rate: cold-content submits refused with the typed
///     kResourceExhausted (no queue time wasted, no I/O attempted);
///   - cache-hit service rate: warm-content submits admitted
///     ephemerally and answered from memory;
///   - time-to-self-heal: disk comes back, background prober (1ms
///     interval, 16ms backoff cap) flips the service healthy.
/// The result is spliced into BENCH_robustness.json as a
/// "degraded_mode" section alongside bench_rcdp_scaling's
/// budget-overhead report, which owns the rest of the file.
void WriteRobustnessDegradedJson() {
  using Clock = std::chrono::steady_clock;
  FsEnv env;
  DecisionServiceOptions options;
  options.enable_verdict_cache = true;
  options.store_options.fs_env = &env;
  options.store_probe_interval = std::chrono::milliseconds(1);
  options.store_probe_backoff_cap = std::chrono::milliseconds(16);
  auto service = ValueOrDie(
      DecisionService::Start(FreshDir("degraded"), options),
      "degraded service");

  JobSpec warm;
  warm.kind = JobKind::kRcdp;
  warm.spec_text = CornerSpecText(5, 6);
  warm.slice_steps = 16;
  // Different grid, so different content: never in the cache, which
  // makes every degraded submit of it a durable-admission attempt.
  JobSpec cold = warm;
  cold.spec_text = CornerSpecText(4, 6);

  CheckOk(service->Submit("warm", warm), "warm submit");
  auto warm_result = service->Wait("warm");
  CheckOk(warm_result.status(), "warm wait");
  const std::string expected = warm_result->evidence;

  size_t seq = 0;
  // Kill the disk, then flip the service degraded: the first durable
  // submit attempts the persist, fails, and sheds.
  const auto kill_disk = [&] {
    StorageFaultPlan plan;
    plan.kind = StorageFaultKind::kEio;
    plan.every = 1;
    env.set_fault_plan(plan);
    while (!service->degraded()) {
      (void)service->Submit(StrCat("flip-", seq++), cold);
    }
  };
  kill_disk();

  const auto elapsed_ns = [](Clock::time_point since) {
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             since)
            .count());
  };
  const double min_ns = 0.5e9;

  Measured shed;
  {
    const Clock::time_point start = Clock::now();
    double total = 0;
    for (;;) {
      Status s = service->Submit(StrCat("shed-", seq++), cold);
      if (s.code() != StatusCode::kResourceExhausted) {
        std::fprintf(stderr, "degraded submit not shed: %s\n",
                     s.message().c_str());
        std::abort();
      }
      ++shed.iterations;
      total = elapsed_ns(start);
      if (total >= min_ns) break;
    }
    shed.ns_per_op = total / static_cast<double>(shed.iterations);
  }

  Measured hit;
  {
    const Clock::time_point start = Clock::now();
    double total = 0;
    for (;;) {
      const std::string id = StrCat("hit-", seq++);
      CheckOk(service->Submit(id, warm), "ephemeral submit");
      auto result = service->Wait(id);
      CheckOk(result.status(), "ephemeral wait");
      if (result->evidence != expected) {
        std::fprintf(stderr, "degraded cache hit diverged\n");
        std::abort();
      }
      ++hit.iterations;
      total = elapsed_ns(start);
      if (total >= min_ns) break;
    }
    hit.ns_per_op = total / static_cast<double>(hit.iterations);
  }

  // Heal latency: disk comes back at t0; the background prober's next
  // success flips the service healthy. Median over several rounds —
  // a single sample is at the mercy of where the backoff wait sits.
  std::vector<double> heal_ms;
  for (int round = 0; round < 5; ++round) {
    if (round > 0) kill_disk();
    const Clock::time_point healthy_at = Clock::now();
    env.set_fault_plan(StorageFaultPlan{});
    while (service->degraded()) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    heal_ms.push_back(elapsed_ns(healthy_at) / 1e6);
  }
  std::sort(heal_ms.begin(), heal_ms.end());
  const double heal_median = heal_ms[heal_ms.size() / 2];

  std::string obj = "{\n";
  {
    std::string hardware;
    bench::AppendHardwareJson(&hardware, 1);
    // AppendHardwareJson indents for a top-level object; this one is
    // nested one level deeper.
    size_t pos = 0;
    while ((pos = hardware.find('\n', pos)) != std::string::npos) {
      obj += "  ";
      obj += hardware.substr(0, pos + 1);
      hardware.erase(0, pos + 1);
      pos = 0;
    }
  }
  char buf[32];
  obj += StrCat("    \"shed_ns_per_op\": ",
                static_cast<size_t>(shed.ns_per_op), ",\n");
  obj += StrCat("    \"sheds\": ", shed.iterations, ",\n");
  obj += StrCat("    \"cache_hit_ns_per_op\": ",
                static_cast<size_t>(hit.ns_per_op), ",\n");
  obj += StrCat("    \"cache_hits_served\": ", hit.iterations, ",\n");
  std::snprintf(buf, sizeof(buf), "%.2f", heal_median);
  obj += StrCat("    \"self_heal_ms_median\": ", buf, ",\n");
  obj += StrCat("    \"self_heal_samples\": ", heal_ms.size(), "\n");
  obj += "  }";

  const char* path = std::getenv("RELCOMP_BENCH_ROBUSTNESS_JSON");
  if (path == nullptr) path = "BENCH_robustness.json";
  std::string existing;
  if (std::FILE* f = std::fopen(path, "r")) {
    char chunk[4096];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
      existing.append(chunk, n);
    }
    std::fclose(f);
  }
  // Replace a prior degraded_mode section (re-runs), then splice the
  // new one in before the closing brace of the existing report.
  const size_t prior = existing.find(",\n  \"degraded_mode\"");
  if (prior != std::string::npos) {
    existing.erase(prior);
    existing += "\n}\n";
  }
  std::string out;
  const size_t brace = existing.rfind('}');
  if (brace != std::string::npos) {
    out = existing.substr(0, brace);
    while (!out.empty() &&
           (out.back() == '\n' || out.back() == ' ' || out.back() == ',')) {
      out.pop_back();
    }
    out += StrCat(",\n  \"degraded_mode\": ", obj, "\n}\n");
  } else {
    out = StrCat("{\n  \"degraded_mode\": ", obj, "\n}\n");
  }
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf(
      "wrote %s degraded_mode (shed %zu ns, cache hit %zu ns, heal %s ms)\n",
      path, static_cast<size_t>(shed.ns_per_op),
      static_cast<size_t>(hit.ns_per_op), buf);
}

}  // namespace service_bench
}  // namespace relcomp

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  relcomp::service_bench::WriteServiceJson();
  relcomp::service_bench::WriteRobustnessDegradedJson();
  return 0;
}
