// Incremental re-certification vs. from-scratch decide on the largest
// scaling instance (CRM at n = 16), written to BENCH_incremental.json
// (override via RELCOMP_BENCH_INCREMENTAL_JSON).
//
// Three update shapes against a certified kIncomplete verdict:
//
//   - clean single-tuple insert: one Manage tuple over existing
//     constants. Manage is outside Q1's read set and outside φ0's
//     body, and the active domain does not move, so RecertifyRcdp
//     re-serves the certificate with zero search — the headline
//     speedup row (target ≥ 5×).
//   - dirty insert: a new Cust tuple with fresh constants. The active
//     domain grows, the certificate transfers nothing, and the
//     incremental path honestly degrades to a full re-certify — the
//     row that keeps the headline honest.
//   - verdict-cache hit: a fingerprint lookup in a warm VerdictCache,
//     the DecisionService's zero-search serve path.
//
// Methodology: paired interleaving. Each iteration times one
// from-scratch CertifyRcdp and one RecertifyRcdp back to back on the
// same post-update instance, so frequency scaling and cache state hit
// both sides equally. Before any timing, the harness asserts the
// incremental certificate and evidence are bit-for-bit equal to the
// from-scratch ones and aborts if not — a speedup over a wrong answer
// is not a measurement.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "completeness/incremental.h"
#include "completeness/rcdp.h"
#include "relational/delta_batch.h"
#include "service/verdict_cache.h"
#include "util/str.h"
#include "workload/crm_scenario.h"

namespace relcomp {
namespace incremental_bench {

using bench::CheckOk;
using bench::ValueOrDie;

struct Measured {
  double ns_per_op = 0;
  size_t iterations = 0;
};

/// The service's canonical evidence string, mirrored here as the
/// bit-for-bit comparison key between the two certification paths.
std::string Evidence(const RcdpResult& r) {
  return StrCat(VerdictToString(r.verdict), "|",
                r.counterexample_delta.has_value()
                    ? r.counterexample_delta->ToString()
                    : std::string("<none>"),
                "|",
                r.new_answer.has_value() ? r.new_answer->ToString()
                                         : std::string("<none>"));
}

struct Setup {
  CrmScenario crm;
  ConstraintSet constraints;
  AnyQuery q1;
  RcdpCertified base;

  Setup(CrmScenario crm_in, ConstraintSet v, AnyQuery q, RcdpCertified b)
      : crm(std::move(crm_in)),
        constraints(std::move(v)),
        q1(std::move(q)),
        base(std::move(b)) {}
};

Setup MakeSetup() {
  CrmOptions options;
  options.num_domestic = 16;
  options.num_international = 8;
  options.num_employees = 2;
  options.support_per_employee = 2;
  CrmScenario crm = ValueOrDie(CrmScenario::Make(options), "crm");
  ConstraintSet v;
  v.Add(ValueOrDie(crm.Phi0(), "phi0"));
  AnyQuery q1 = ValueOrDie(crm.Q1(), "q1");
  RcdpCertified base =
      ValueOrDie(CertifyRcdp(q1, crm.db(), crm.master(), v), "base certify");
  return Setup(std::move(crm), std::move(v), std::move(q1), std::move(base));
}

/// Interleaved A/B: per iteration, one from-scratch certify and one
/// incremental re-certify of the same post-update instance.
void MeasurePaired(const Setup& s, const Database& post,
                   const DeltaApplyReport& report, double min_seconds,
                   Measured* scratch, Measured* incremental) {
  // Correctness gate before timing anything.
  RcdpCertified a = ValueOrDie(
      CertifyRcdp(s.q1, post, s.crm.master(), s.constraints), "scratch");
  RcdpCertified b =
      ValueOrDie(RecertifyRcdp(s.q1, post, s.crm.master(), s.constraints,
                               s.base.certificate, report),
                 "recertify");
  if (!(a.certificate == b.certificate) ||
      Evidence(a.result) != Evidence(b.result)) {
    std::fprintf(stderr,
                 "incremental result diverged from from-scratch result\n");
    std::exit(EXIT_FAILURE);
  }

  using Clock = std::chrono::steady_clock;
  auto ns_since = [](Clock::time_point t0) {
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count());
  };
  double scratch_ns = 0;
  double incremental_ns = 0;
  size_t iterations = 0;
  Clock::time_point start = Clock::now();
  while (ns_since(start) < min_seconds * 1e9) {
    Clock::time_point t0 = Clock::now();
    auto full = CertifyRcdp(s.q1, post, s.crm.master(), s.constraints);
    scratch_ns += ns_since(t0);
    CheckOk(full.status(), "scratch certify");
    benchmark::DoNotOptimize(full->result.complete);

    Clock::time_point t1 = Clock::now();
    auto inc = RecertifyRcdp(s.q1, post, s.crm.master(), s.constraints,
                             s.base.certificate, report);
    incremental_ns += ns_since(t1);
    CheckOk(inc.status(), "recertify");
    benchmark::DoNotOptimize(inc->result.complete);
    ++iterations;
  }
  scratch->ns_per_op = scratch_ns / static_cast<double>(iterations);
  scratch->iterations = iterations;
  incremental->ns_per_op = incremental_ns / static_cast<double>(iterations);
  incremental->iterations = iterations;
}

Measured MeasureCacheHit(const Setup& s, const Database& post,
                         double min_seconds) {
  const uint64_t fp =
      FingerprintRcdpInstance(s.q1, post, s.crm.master(), s.constraints);
  RcdpCertified certified = ValueOrDie(
      CertifyRcdp(s.q1, post, s.crm.master(), s.constraints), "cache fill");
  VerdictCache cache(nullptr);  // memory-only: the hit path, no disk
  CheckOk(cache.Insert(fp, certified.result.verdict,
                       Evidence(certified.result)),
          "cache insert");

  Measured out;
  using Clock = std::chrono::steady_clock;
  Clock::time_point start = Clock::now();
  double elapsed_ns = 0;
  while (elapsed_ns < min_seconds * 1e9) {
    for (size_t i = 0; i < 1024; ++i) {
      auto hit = cache.Lookup(fp);
      benchmark::DoNotOptimize(hit.has_value());
      ++out.iterations;
    }
    elapsed_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
  }
  out.ns_per_op = elapsed_ns / static_cast<double>(out.iterations);
  return out;
}

void AppendRowJson(std::string* json, const char* name, const Measured& m) {
  *json += StrCat("    \"", name, "\": { \"ns_per_op\": ",
                  static_cast<size_t>(m.ns_per_op),
                  ", \"iterations\": ", m.iterations, " }");
}

void WriteIncrementalJson() {
  const double min_seconds = 2.0;
  Setup s = MakeSetup();

  // Clean single-tuple delta: Manage("e0", "e1") — existing constants,
  // a relation neither Q1 nor φ0 reads.
  DeltaBatch clean;
  clean.db_ops.push_back(DeltaOp{
      true, "Manage", Tuple({Value::Str("e0"), Value::Str("e1")})});
  Database post_clean = s.crm.db();
  DeltaApplyReport clean_report = ValueOrDie(
      ApplyDeltaBatch(clean, &post_clean, nullptr), "clean delta");

  // Dirty delta: a brand-new customer — fresh constants grow the
  // active domain, invalidating the whole certificate.
  DeltaBatch dirty;
  dirty.db_ops.push_back(
      DeltaOp{true, "Cust",
              Tuple({Value::Str("c-new"), Value::Str("n-new"),
                     Value::Str("44"), Value::Str("20"),
                     Value::Str("777-new")})});
  Database post_dirty = s.crm.db();
  DeltaApplyReport dirty_report = ValueOrDie(
      ApplyDeltaBatch(dirty, &post_dirty, nullptr), "dirty delta");

  Measured scratch_clean, inc_clean;
  MeasurePaired(s, post_clean, clean_report, min_seconds, &scratch_clean,
                &inc_clean);
  Measured scratch_dirty, inc_dirty;
  MeasurePaired(s, post_dirty, dirty_report, min_seconds, &scratch_dirty,
                &inc_dirty);
  Measured cache_hit = MeasureCacheHit(s, post_clean, min_seconds / 4);

  auto speedup = [](const Measured& base, const Measured& fast) {
    return fast.ns_per_op > 0 ? base.ns_per_op / fast.ns_per_op : 0.0;
  };
  char clean_buf[32], dirty_buf[32], cache_buf[32];
  std::snprintf(clean_buf, sizeof(clean_buf), "%.2f",
                speedup(scratch_clean, inc_clean));
  std::snprintf(dirty_buf, sizeof(dirty_buf), "%.2f",
                speedup(scratch_dirty, inc_dirty));
  std::snprintf(cache_buf, sizeof(cache_buf), "%.2f",
                speedup(scratch_clean, cache_hit));

  std::string json = "{\n";
  json += "  \"benchmark\": \"incremental_recertification\",\n";
  bench::AppendHardwareJson(&json, 1);
  json += "  \"instance\": { \"num_domestic\": 16, "
          "\"num_international\": 8, \"num_employees\": 2, "
          "\"support_per_employee\": 2 },\n";
  json += "  \"methodology\": \"paired interleaved A/B; bit-for-bit "
          "equality asserted before timing\",\n";
  json += "  \"configs\": {\n";
  AppendRowJson(&json, "from_scratch_clean", scratch_clean);
  json += ",\n";
  AppendRowJson(&json, "incremental_clean_single_insert", inc_clean);
  json += ",\n";
  AppendRowJson(&json, "from_scratch_dirty", scratch_dirty);
  json += ",\n";
  AppendRowJson(&json, "incremental_dirty_new_constant", inc_dirty);
  json += ",\n";
  AppendRowJson(&json, "verdict_cache_hit", cache_hit);
  json += "\n  },\n";
  json += StrCat("  \"speedup_clean_vs_scratch\": ", clean_buf, ",\n");
  json += StrCat("  \"speedup_dirty_vs_scratch\": ", dirty_buf, ",\n");
  json += StrCat("  \"speedup_cache_hit_vs_scratch\": ", cache_buf, ",\n");
  json += "  \"speedup_clean_target\": 5.0\n";
  json += "}\n";

  const char* path = std::getenv("RELCOMP_BENCH_INCREMENTAL_JSON");
  if (path == nullptr) path = "BENCH_incremental.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf(
      "wrote %s (clean-delta speedup %sx, dirty %sx, cache hit %sx)\n",
      path, clean_buf, dirty_buf, cache_buf);
}

}  // namespace incremental_bench
}  // namespace relcomp

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  relcomp::incremental_bench::WriteIncrementalJson();
  benchmark::Shutdown();
  return 0;
}
