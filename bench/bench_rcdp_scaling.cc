// Data vs combined complexity for RCDP — the "figures" the paper's
// theory predicts. For fixed Q and V, deciding completeness is
// polynomial in |D| (the valuation space depends on the active domain,
// the per-candidate checks on instance size); growing the query or the
// constraints triggers the Σ₂ᵖ blow-up.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench_util.h"
#include "completeness/rcdp.h"
#include "query/parser.h"
#include "util/execution_control.h"
#include "util/str.h"
#include "workload/crm_scenario.h"

namespace relcomp {
namespace scaling {

using bench::CheckOk;
using bench::ValueOrDie;

/// The configuration the growth seed effectively ran: no column
/// indexes, no overlay — candidate checks copy the database (or scan).
RcdpOptions SeedConfig() {
  RcdpOptions options;
  options.use_indexes = false;
  options.use_overlay = false;
  return options;
}

/// Data complexity: fixed Q1 and φ0, growing master data + database.
void RunDataComplexity(benchmark::State& state, const RcdpOptions& options) {
  CrmOptions crm_options;
  crm_options.num_domestic = static_cast<size_t>(state.range(0));
  crm_options.num_international = static_cast<size_t>(state.range(0)) / 2;
  crm_options.num_employees = 2;
  crm_options.support_per_employee = 2;
  CrmScenario crm = ValueOrDie(CrmScenario::Make(crm_options), "crm");
  ConstraintSet v;
  v.Add(ValueOrDie(crm.Phi0(), "phi0"));
  AnyQuery q1 = ValueOrDie(crm.Q1(), "q1");
  ValuationSearchStats stats;
  for (auto _ : state) {
    auto verdict = DecideRcdp(q1, crm.db(), crm.master(), v, options);
    CheckOk(verdict.status(), "decide");
    stats = verdict->stats;
    benchmark::DoNotOptimize(verdict->complete);
  }
  state.counters["search_steps"] = static_cast<double>(stats.bindings_tried);
  state.counters["index_probes"] = static_cast<double>(stats.index_probes);
  state.counters["composite_probes"] =
      static_cast<double>(stats.composite_probes);
  state.counters["overlay_hits"] = static_cast<double>(stats.overlay_hits);
  state.counters["arena_bytes"] = static_cast<double>(stats.arena_bytes);
  state.SetComplexityN(state.range(0));
}

void BM_DataComplexity(benchmark::State& state) {
  RunDataComplexity(state, RcdpOptions());
}
BENCHMARK(BM_DataComplexity)
    ->RangeMultiplier(2)
    ->Range(2, 16)
    ->Complexity(benchmark::oAuto);

/// The same series under the seed configuration (indexes and overlay
/// off) — the denominator of the BENCH_relcore.json speedup.
void BM_DataComplexitySeedConfig(benchmark::State& state) {
  RunDataComplexity(state, SeedConfig());
}
BENCHMARK(BM_DataComplexitySeedConfig)
    ->RangeMultiplier(2)
    ->Range(2, 16)
    ->Complexity(benchmark::oAuto);

/// Combined complexity in the query: a growing chain query
/// Q(c0) :- Supt(e0, d0, c0), Supt(e1, d1, c1), ..., all unconstrained
/// except an at-most-one CC per employee — the valuation space grows
/// exponentially with the chain length.
void BM_QuerySizeComplexity(benchmark::State& state) {
  CrmScenario crm = ValueOrDie(CrmScenario::Make(), "crm");
  const int chain = static_cast<int>(state.range(0));
  std::string body;
  for (int i = 0; i < chain; ++i) {
    if (i > 0) body += ", ";
    body += StrCat("Supt(e", i, ", d", i, ", c", i, ")");
  }
  // Tie the chain together so no variable is collapsible: each
  // employee variable also names the next customer.
  for (int i = 0; i + 1 < chain; ++i) {
    body += StrCat(", e", i, " != c", i + 1);
  }
  auto q = ParseConjunctiveQuery(StrCat("Qc(c0) :- ", body, "."));
  CheckOk(q.status(), "chain query");
  ConstraintSet v;
  v.Add(ValueOrDie(crm.Phi1(2), "phi1"));
  for (auto _ : state) {
    auto verdict =
        DecideRcdp(AnyQuery::Cq(*q), crm.db(), crm.master(), v);
    CheckOk(verdict.status(), "decide");
    benchmark::DoNotOptimize(verdict->complete);
  }
}
BENCHMARK(BM_QuerySizeComplexity)->DenseRange(1, 4, 1);

/// Combined complexity in the constraints: φ1(k) grows quadratically in
/// k (k+1 atoms, O(k²) disequalities); the constraint check per
/// valuation grows with it.
void BM_ConstraintSizeComplexity(benchmark::State& state) {
  CrmScenario crm = ValueOrDie(CrmScenario::Make(), "crm");
  ConstraintSet v;
  v.Add(ValueOrDie(crm.Phi1(static_cast<size_t>(state.range(0))), "phi1"));
  AnyQuery q2 = ValueOrDie(crm.Q2(), "q2");
  for (auto _ : state) {
    auto verdict = DecideRcdp(q2, crm.db(), crm.master(), v);
    CheckOk(verdict.status(), "decide");
    benchmark::DoNotOptimize(verdict->complete);
  }
}
BENCHMARK(BM_ConstraintSizeComplexity)->DenseRange(2, 6, 1);

/// The chase: rounds needed to make the CRM database complete for Q1
/// as the missing-data fraction grows.
void BM_ChaseToCompleteness(benchmark::State& state) {
  CrmOptions options;
  options.num_domestic = static_cast<size_t>(state.range(0));
  options.num_employees = 1;
  options.support_per_employee = 1;  // most master customers unsupported
  CrmScenario crm = ValueOrDie(CrmScenario::Make(options), "crm");
  ConstraintSet v;
  v.Add(ValueOrDie(crm.Phi0(), "phi0"));
  AnyQuery q1 = ValueOrDie(crm.Q1(), "q1");
  for (auto _ : state) {
    auto completed = ChaseToCompleteness(q1, crm.db(), crm.master(), v, 256);
    CheckOk(completed.status(), "chase");
    benchmark::DoNotOptimize(completed->db.TotalTuples());
  }
}
BENCHMARK(BM_ChaseToCompleteness)->Arg(2)->Arg(4)->Arg(8);

/// One timed configuration of the largest data-complexity instance,
/// measured directly (steady_clock over a fixed wall budget) so the
/// JSON report does not depend on google-benchmark's output format.
struct MeasuredConfig {
  double ns_per_op = 0;
  size_t iterations = 0;
  ValuationSearchStats stats;
};

MeasuredConfig MeasureDataComplexity(size_t n, const RcdpOptions& options,
                                     double min_seconds) {
  CrmOptions crm_options;
  crm_options.num_domestic = n;
  crm_options.num_international = n / 2;
  crm_options.num_employees = 2;
  crm_options.support_per_employee = 2;
  CrmScenario crm = ValueOrDie(CrmScenario::Make(crm_options), "crm");
  ConstraintSet v;
  v.Add(ValueOrDie(crm.Phi0(), "phi0"));
  AnyQuery q1 = ValueOrDie(crm.Q1(), "q1");

  MeasuredConfig out;
  using Clock = std::chrono::steady_clock;
  // Warm-up decide (not timed), also captures the work counters.
  {
    auto verdict = DecideRcdp(q1, crm.db(), crm.master(), v, options);
    CheckOk(verdict.status(), "decide");
    out.stats = verdict->stats;
  }
  Clock::time_point start = Clock::now();
  double elapsed_ns = 0;
  while (elapsed_ns < min_seconds * 1e9) {
    auto verdict = DecideRcdp(q1, crm.db(), crm.master(), v, options);
    CheckOk(verdict.status(), "decide");
    benchmark::DoNotOptimize(verdict->complete);
    ++out.iterations;
    elapsed_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
  }
  out.ns_per_op = elapsed_ns / static_cast<double>(out.iterations);
  return out;
}

void AppendConfigJson(std::string* json, const char* name,
                      const MeasuredConfig& m) {
  *json += StrCat("    \"", name, "\": {\n");
  *json += StrCat("      \"ns_per_op\": ",
                  static_cast<size_t>(m.ns_per_op), ",\n");
  *json += StrCat("      \"iterations\": ", m.iterations, ",\n");
  *json += StrCat("      \"bindings_tried\": ", m.stats.bindings_tried,
                  ",\n");
  *json += StrCat("      \"totals_delivered\": ", m.stats.totals_delivered,
                  ",\n");
  *json += StrCat("      \"prunes\": ", m.stats.prunes, ",\n");
  *json += StrCat("      \"index_probes\": ", m.stats.index_probes, ",\n");
  *json += StrCat("      \"composite_probes\": ", m.stats.composite_probes,
                  ",\n");
  *json += StrCat("      \"relation_scans\": ", m.stats.relation_scans,
                  ",\n");
  *json += StrCat("      \"overlay_hits\": ", m.stats.overlay_hits, ",\n");
  *json += StrCat("      \"arena_bytes\": ", m.stats.arena_bytes, ",\n");
  *json += StrCat("      \"work_units\": ", m.stats.work_units, ",\n");
  *json += StrCat("      \"work_units_cancelled\": ",
                  m.stats.work_units_cancelled, "\n");
  *json += "    }";
}

/// Measures the largest BM_DataComplexity instance under the default
/// (full id-plane stack), one ablation row per id-plane technique, and
/// the seed configuration, then writes BENCH_relcore.json. Output path
/// overridable via RELCOMP_BENCH_JSON.
void WriteRelcoreJson() {
  const size_t n = 16;  // largest instance of the BM_DataComplexity range
  const double min_seconds = 1.0;
  // Full stack: id-plane joins + composite radix indexes + arenas.
  MeasuredConfig optimized =
      MeasureDataComplexity(n, RcdpOptions(), min_seconds);
  // Id-plane joins alone over per-column posting lists, heap scratch.
  RcdpOptions id_plane_options;
  id_plane_options.use_composite_indexes = false;
  id_plane_options.use_arena = false;
  MeasuredConfig id_plane =
      MeasureDataComplexity(n, id_plane_options, min_seconds);
  // + adaptive radix (composite) indexes, still heap scratch.
  RcdpOptions art_options;
  art_options.use_arena = false;
  MeasuredConfig id_plane_art =
      MeasureDataComplexity(n, art_options, min_seconds);
  MeasuredConfig seed = MeasureDataComplexity(n, SeedConfig(), min_seconds);
  const double speedup =
      optimized.ns_per_op > 0 ? seed.ns_per_op / optimized.ns_per_op : 0;

  std::string json = "{\n";
  json += "  \"benchmark\": \"rcdp_data_complexity\",\n";
  bench::AppendHardwareJson(&json, 1);
  json += StrCat("  \"instance\": { \"num_domestic\": ", n,
                 ", \"num_international\": ", n / 2,
                 ", \"num_employees\": 2, \"support_per_employee\": 2 },\n");
  json += "  \"configs\": {\n";
  AppendConfigJson(&json, "optimized", optimized);
  json += ",\n";
  AppendConfigJson(&json, "ablation_id_plane", id_plane);
  json += ",\n";
  AppendConfigJson(&json, "ablation_id_plane_art", id_plane_art);
  json += ",\n";
  AppendConfigJson(&json, "seed", seed);
  json += "\n  },\n";
  char speedup_buf[32];
  std::snprintf(speedup_buf, sizeof(speedup_buf), "%.2f", speedup);
  json += StrCat("  \"speedup_optimized_vs_seed\": ", speedup_buf, "\n");
  json += "}\n";

  const char* path = std::getenv("RELCOMP_BENCH_JSON");
  if (path == nullptr) path = "BENCH_relcore.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s (speedup optimized vs seed at n=%zu: %sx)\n", path, n,
              speedup_buf);
}

/// Thread sweep over the same largest data-complexity instance: the
/// default configuration at num_threads in {1, 2, 4, 8}, written to
/// BENCH_parallel.json (override via RELCOMP_BENCH_PARALLEL_JSON).
/// hardware_concurrency is recorded so the numbers can be read in
/// context — on a single-core machine the sweep measures the
/// partitioning overhead, not a speedup.
void WriteParallelJson() {
  const size_t n = 16;
  const double min_seconds = 1.0;
  const size_t thread_counts[] = {1, 2, 4, 8};
  MeasuredConfig measured[4];
  for (size_t i = 0; i < 4; ++i) {
    RcdpOptions options;
    options.num_threads = thread_counts[i];
    measured[i] = MeasureDataComplexity(n, options, min_seconds);
  }

  std::string json = "{\n";
  json += "  \"benchmark\": \"rcdp_parallel_scaling\",\n";
  // threads_used reports the widest swept configuration; the per-config
  // names carry the full sweep.
  bench::AppendHardwareJson(&json, thread_counts[3]);
  json += StrCat("  \"instance\": { \"num_domestic\": ", n,
                 ", \"num_international\": ", n / 2,
                 ", \"num_employees\": 2, \"support_per_employee\": 2 },\n");
  json += "  \"configs\": {\n";
  for (size_t i = 0; i < 4; ++i) {
    AppendConfigJson(&json, StrCat("threads_", thread_counts[i]).c_str(),
                     measured[i]);
    json += i + 1 < 4 ? ",\n" : "\n";
  }
  json += "  },\n";
  auto speedup_vs_serial = [&](size_t i) {
    return measured[i].ns_per_op > 0
               ? measured[0].ns_per_op / measured[i].ns_per_op
               : 0.0;
  };
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", speedup_vs_serial(2));
  json += StrCat("  \"speedup_4_threads_vs_1\": ", buf, ",\n");
  std::snprintf(buf, sizeof(buf), "%.2f", speedup_vs_serial(3));
  json += StrCat("  \"speedup_8_threads_vs_1\": ", buf, "\n");
  json += "}\n";

  const char* path = std::getenv("RELCOMP_BENCH_PARALLEL_JSON");
  if (path == nullptr) path = "BENCH_parallel.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf(
      "wrote %s (hardware_concurrency=%u; ns/op at 1/2/4/8 threads: "
      "%zu/%zu/%zu/%zu)\n",
      path, std::thread::hardware_concurrency(),
      static_cast<size_t>(measured[0].ns_per_op),
      static_cast<size_t>(measured[1].ns_per_op),
      static_cast<size_t>(measured[2].ns_per_op),
      static_cast<size_t>(measured[3].ns_per_op));
}

/// Budget-check overhead: the same largest data-complexity instance
/// with no budget vs. an armed-but-never-tripping budget (generous
/// step, byte and deadline limits plus a live cancel token), written to
/// BENCH_robustness.json (override via RELCOMP_BENCH_ROBUSTNESS_JSON).
/// The armed budget pays one relaxed atomic increment per decision
/// point plus a deadline read every kDeadlineStride steps; the series
/// quantifies that cost.
void WriteRobustnessJson() {
  const size_t n = 16;
  const double min_seconds = 1.0;
  MeasuredConfig off = MeasureDataComplexity(n, RcdpOptions(), min_seconds);

  CancelSource cancel;
  ExecutionBudget budget;
  budget.set_max_steps(size_t{1} << 60);
  budget.set_max_tracked_bytes(size_t{1} << 60);
  budget.set_timeout(std::chrono::hours(24));
  budget.set_cancel_token(cancel.token());
  RcdpOptions budgeted;
  budgeted.budget = &budget;
  MeasuredConfig on = MeasureDataComplexity(n, budgeted, min_seconds);

  const double overhead_pct =
      off.ns_per_op > 0 ? (on.ns_per_op / off.ns_per_op - 1.0) * 100.0 : 0;

  std::string json = "{\n";
  json += "  \"benchmark\": \"rcdp_budget_overhead\",\n";
  bench::AppendHardwareJson(&json, 1);
  json += StrCat("  \"instance\": { \"num_domestic\": ", n,
                 ", \"num_international\": ", n / 2,
                 ", \"num_employees\": 2, \"support_per_employee\": 2 },\n");
  json += "  \"configs\": {\n";
  AppendConfigJson(&json, "budget_off", off);
  json += ",\n";
  AppendConfigJson(&json, "budget_on", on);
  json += "\n  },\n";
  json += StrCat("  \"decision_points_per_op\": ",
                 on.iterations > 0 ? budget.steps() / (on.iterations + 1) : 0,
                 ",\n");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", overhead_pct);
  json += StrCat("  \"budget_overhead_pct\": ", buf, "\n");
  json += "}\n";

  const char* path = std::getenv("RELCOMP_BENCH_ROBUSTNESS_JSON");
  if (path == nullptr) path = "BENCH_robustness.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s (budget overhead at n=%zu: %s%%)\n", path, n, buf);
}

}  // namespace scaling
}  // namespace relcomp

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  relcomp::scaling::WriteRelcoreJson();
  relcomp::scaling::WriteParallelJson();
  relcomp::scaling::WriteRobustnessJson();
  return 0;
}
