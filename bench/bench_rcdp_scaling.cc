// Data vs combined complexity for RCDP — the "figures" the paper's
// theory predicts. For fixed Q and V, deciding completeness is
// polynomial in |D| (the valuation space depends on the active domain,
// the per-candidate checks on instance size); growing the query or the
// constraints triggers the Σ₂ᵖ blow-up.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "completeness/rcdp.h"
#include "query/parser.h"
#include "util/str.h"
#include "workload/crm_scenario.h"

namespace relcomp {
namespace scaling {

using bench::CheckOk;
using bench::ValueOrDie;

/// Data complexity: fixed Q1 and φ0, growing master data + database.
void BM_DataComplexity(benchmark::State& state) {
  CrmOptions options;
  options.num_domestic = static_cast<size_t>(state.range(0));
  options.num_international = static_cast<size_t>(state.range(0)) / 2;
  options.num_employees = 2;
  options.support_per_employee = 2;
  CrmScenario crm = ValueOrDie(CrmScenario::Make(options), "crm");
  ConstraintSet v;
  v.Add(ValueOrDie(crm.Phi0(), "phi0"));
  AnyQuery q1 = ValueOrDie(crm.Q1(), "q1");
  for (auto _ : state) {
    auto verdict = DecideRcdp(q1, crm.db(), crm.master(), v);
    CheckOk(verdict.status(), "decide");
    benchmark::DoNotOptimize(verdict->complete);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DataComplexity)
    ->RangeMultiplier(2)
    ->Range(2, 16)
    ->Complexity(benchmark::oAuto);

/// Combined complexity in the query: a growing chain query
/// Q(c0) :- Supt(e0, d0, c0), Supt(e1, d1, c1), ..., all unconstrained
/// except an at-most-one CC per employee — the valuation space grows
/// exponentially with the chain length.
void BM_QuerySizeComplexity(benchmark::State& state) {
  CrmScenario crm = ValueOrDie(CrmScenario::Make(), "crm");
  const int chain = static_cast<int>(state.range(0));
  std::string body;
  for (int i = 0; i < chain; ++i) {
    if (i > 0) body += ", ";
    body += StrCat("Supt(e", i, ", d", i, ", c", i, ")");
  }
  // Tie the chain together so no variable is collapsible: each
  // employee variable also names the next customer.
  for (int i = 0; i + 1 < chain; ++i) {
    body += StrCat(", e", i, " != c", i + 1);
  }
  auto q = ParseConjunctiveQuery(StrCat("Qc(c0) :- ", body, "."));
  CheckOk(q.status(), "chain query");
  ConstraintSet v;
  v.Add(ValueOrDie(crm.Phi1(2), "phi1"));
  for (auto _ : state) {
    auto verdict =
        DecideRcdp(AnyQuery::Cq(*q), crm.db(), crm.master(), v);
    CheckOk(verdict.status(), "decide");
    benchmark::DoNotOptimize(verdict->complete);
  }
}
BENCHMARK(BM_QuerySizeComplexity)->DenseRange(1, 4, 1);

/// Combined complexity in the constraints: φ1(k) grows quadratically in
/// k (k+1 atoms, O(k²) disequalities); the constraint check per
/// valuation grows with it.
void BM_ConstraintSizeComplexity(benchmark::State& state) {
  CrmScenario crm = ValueOrDie(CrmScenario::Make(), "crm");
  ConstraintSet v;
  v.Add(ValueOrDie(crm.Phi1(static_cast<size_t>(state.range(0))), "phi1"));
  AnyQuery q2 = ValueOrDie(crm.Q2(), "q2");
  for (auto _ : state) {
    auto verdict = DecideRcdp(q2, crm.db(), crm.master(), v);
    CheckOk(verdict.status(), "decide");
    benchmark::DoNotOptimize(verdict->complete);
  }
}
BENCHMARK(BM_ConstraintSizeComplexity)->DenseRange(2, 6, 1);

/// The chase: rounds needed to make the CRM database complete for Q1
/// as the missing-data fraction grows.
void BM_ChaseToCompleteness(benchmark::State& state) {
  CrmOptions options;
  options.num_domestic = static_cast<size_t>(state.range(0));
  options.num_employees = 1;
  options.support_per_employee = 1;  // most master customers unsupported
  CrmScenario crm = ValueOrDie(CrmScenario::Make(options), "crm");
  ConstraintSet v;
  v.Add(ValueOrDie(crm.Phi0(), "phi0"));
  AnyQuery q1 = ValueOrDie(crm.Q1(), "q1");
  for (auto _ : state) {
    auto completed = ChaseToCompleteness(q1, crm.db(), crm.master(), v, 256);
    CheckOk(completed.status(), "chase");
    benchmark::DoNotOptimize(completed->TotalTuples());
  }
}
BENCHMARK(BM_ChaseToCompleteness)->Arg(2)->Arg(4)->Arg(8);

}  // namespace scaling
}  // namespace relcomp

BENCHMARK_MAIN();
