// Regenerates the paper's Table II (complexity of RCQP(L_Q, L_C)).
// Decidable rows run the decider on reference workloads (the coNP IND
// row via the syntactic Prop 4.3 characterization, the NEXPTIME rows
// via the small-model witness search, the fixed-(Dm,V) rows via the
// hardness families); undecidable rows demonstrate the refusal.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.h"
#include "completeness/rcdp.h"
#include "completeness/rcqp.h"
#include "constraints/integrity_constraints.h"
#include "query/parser.h"
#include "query/positive_query.h"
#include "reductions/fixed_rcqp_family.h"
#include "reductions/three_sat_rcqp.h"
#include "reductions/tiling.h"
#include "util/table_printer.h"
#include "workload/crm_scenario.h"
#include "workload/generators.h"

namespace relcomp {
namespace table2 {

using bench::CheckOk;
using bench::FormatMs;
using bench::TimeMs;
using bench::ValueOrDie;

void PrintTableTwo() {
  TablePrinter table({"RCQP(L_Q, L_C)", "paper", "this library",
                      "reference outcome", "time"});

  CrmScenario crm = ValueOrDie(CrmScenario::Make(), "crm");

  // Rows 1-4: undecidable cells (Th 4.1) — the language gate refuses.
  {
    auto fo = ParseFoQuery(
        "Qf(x) := exists d, c. (Supt(x, d, c) & !Manage(x, x))");
    CheckOk(fo.status(), "fo");
    ConstraintSet none;
    auto refused = DecideRcqp(AnyQuery::Fo(*fo), crm.db_schema(),
                              crm.master(), none);
    table.AddRow({"(FO, fixed FO)  [Th 4.1(1)]", "undecidable",
                  "refused (language gate)",
                  refused.status().ok() ? "UNEXPECTED" : "kUnsupported",
                  "-"});
  }
  {
    ConditionalInd cind("Supt", {2}, {}, "Cust", {0}, {});
    ConstraintSet fo_set;
    fo_set.Add(ValueOrDie(cind.ToContainmentConstraint(*crm.db_schema()),
                          "cind"));
    auto q1 = ValueOrDie(crm.Q1(), "q1");
    auto refused = DecideRcqp(q1, crm.db_schema(), crm.master(), fo_set);
    table.AddRow({"(CQ, FO)  [Th 4.1(2)]", "undecidable",
                  "refused (language gate)",
                  refused.status().ok() ? "UNEXPECTED" : "kUnsupported",
                  "-"});
  }
  {
    auto fp = ValueOrDie(crm.Q3Datalog(), "q3fp");
    ConstraintSet none;
    auto refused = DecideRcqp(fp, crm.db_schema(), crm.master(), none);
    table.AddRow({"(FP, fixed FP)  [Th 4.1(3)]", "undecidable",
                  "refused (language gate)",
                  refused.status().ok() ? "UNEXPECTED" : "kUnsupported",
                  "-"});
    table.AddRow({"(CQ, FP)  [Th 4.1(4)]", "undecidable",
                  "refused (language gate)", "kUnsupported", "-"});
  }

  // Row 5: (CQ, INDs) — coNP-complete (Th 4.5(1)); decided exactly by
  // the Prop 4.3 boundedness characterization, demonstrated on the
  // 3SAT family (RCQ empty iff satisfiable).
  {
    Rng rng(3);
    CnfFormula f = RandomCnf(4, 5, &rng);
    bool satisfiable = SatBruteForce(f);
    auto encoded = ValueOrDie(EncodeThreeSatRcqp(f), "3sat");
    std::string outcome;
    double ms = TimeMs([&] {
      auto verdict =
          ValueOrDie(DecideRcqp(encoded.query, encoded.db_schema,
                                encoded.master, encoded.constraints),
                     "rcqp 3sat");
      outcome = std::string(verdict.exists ? "exists" : "empty") +
                ((verdict.exists == !satisfiable) ? " (matches SAT)"
                                                  : " (MISMATCH!)");
    });
    table.AddRow({"(CQ, INDs)  [Th 4.5(1)]", "coNP-complete",
                  "E3/E4 syntactic (Prop 4.3)", outcome, FormatMs(ms)});
  }

  // Row 6: (CQ, CQ) — NEXPTIME-complete (Th 4.5(2a)); the Example 4.1
  // workload through the small-model witness search.
  {
    FunctionalDependency fd("Supt", {0}, {1});
    auto ccs = ValueOrDie(fd.ToContainmentConstraints(*crm.db_schema()),
                          "fd ccs");
    ConstraintSet v;
    for (auto& cc : ccs) v.Add(std::move(cc));
    auto q4 = ValueOrDie(crm.Q4(), "q4");
    RcqpOptions options;
    options.max_witness_tuples = 1;
    options.max_pool_size = 2048;
    std::string outcome;
    double ms = TimeMs([&] {
      auto verdict = ValueOrDie(
          DecideRcqp(q4, crm.db_schema(), crm.master(), v, options),
          "rcqp cq/cq");
      outcome = verdict.exists ? "exists (witness verified)" : "empty";
    });
    table.AddRow({"(CQ, CQ)  [Th 4.5(2a)]", "NEXPTIME-complete",
                  "small-model witness search", outcome, FormatMs(ms)});
  }

  // Row 6b: the NEXPTIME lower bound machinery — the 2^n tiling family
  // at n = 1 (checkerboard): witness built from a solved tiling and
  // certified complete by the decider.
  {
    TilingInstance t;
    t.n = 1;
    t.num_tiles = 2;
    t.t0 = 0;
    t.vertical = {{0, 1}, {1, 0}};
    t.horizontal = {{0, 1}, {1, 0}};
    auto solution = SolveTiling(t);
    auto encoded = ValueOrDie(EncodeTilingRcqp(t), "tiling");
    std::string outcome = "no tiling";
    double ms = TimeMs([&] {
      if (solution.has_value()) {
        auto witness =
            ValueOrDie(BuildTilingWitness(t, *solution, encoded), "witness");
        auto verdict =
            ValueOrDie(DecideRcdp(encoded.query, witness, encoded.master,
                                  encoded.constraints),
                       "verify");
        outcome = verdict.complete ? "tiling witness complete"
                                   : "witness NOT complete (bug)";
      }
    });
    table.AddRow({"  - 2^n tiling gadget", "(lower bound)",
                  "Dantsin-Voronkov encoding", outcome, FormatMs(ms)});
  }

  // Rows 7-8: (UCQ, UCQ) and (EFO+, EFO+) — NEXPTIME-complete.
  {
    ConstraintSet v;
    auto amo = ParseConjunctiveQuery(
        R"(amo() :- Supt(e, d1, c1), Supt(e, d2, c2), c1 != c2.)");
    CheckOk(amo.status(), "amo");
    v.Add(ContainmentConstraint::SubsetOfEmpty(AnyQuery::Cq(*amo)));
    UnionQuery u;
    u.set_name("Q2e0e1");
    u.AddDisjunct(*ValueOrDie(crm.Q2(), "q2").as_cq());
    auto q2b = ParseConjunctiveQuery(
        R"(Q2b(c) :- Supt(e, d, c), e = "e1".)");
    CheckOk(q2b.status(), "q2b");
    u.AddDisjunct(*q2b);
    RcqpOptions options;
    options.max_witness_tuples = 2;
    options.max_pool_size = 1024;
    options.max_candidates = 20000;
    std::string outcome;
    double ms = TimeMs([&] {
      auto verdict = ValueOrDie(DecideRcqp(AnyQuery::Ucq(u), crm.db_schema(),
                                           crm.master(), v, options),
                                "rcqp ucq");
      outcome = verdict.exists ? "exists" : "empty";
      if (!verdict.exhaustive) outcome += " (budgeted)";
    });
    table.AddRow({"(UCQ, UCQ)  [Th 4.5(2b)]", "NEXPTIME-complete",
                  "small-model witness search", outcome, FormatMs(ms)});
  }
  {
    auto positive = ParseFoQuery(
        R"(Qp(c) := exists e, d. (Supt(e, d, c) & (e = "e0" | e = "e1")))");
    CheckOk(positive.status(), "positive");
    ConstraintSet v;
    auto amo = ParseConjunctiveQuery(
        R"(amo(c) :- Supt(e, d, c).)");
    CheckOk(amo.status(), "amo2");
    v.Add(ContainmentConstraint::Subset(AnyQuery::Cq(*amo), "DCust", {0}));
    RcqpOptions options;
    options.max_witness_tuples = 2;
    options.max_pool_size = 1024;
    options.max_candidates = 20000;
    std::string outcome;
    double ms = TimeMs([&] {
      auto verdict =
          ValueOrDie(DecideRcqp(AnyQuery::Positive(*positive),
                                crm.db_schema(), crm.master(), v, options),
                     "rcqp efo+");
      outcome = verdict.exists ? "exists" : "empty";
      if (!verdict.exhaustive) outcome += " (budgeted)";
    });
    table.AddRow({"(EFO+, EFO+)  [Th 4.5(2c)]", "NEXPTIME-complete",
                  "DNF unfold + witness search", outcome, FormatMs(ms)});
  }

  // Row 9: fixed (Dm, V) — Π₃ᵖ-complete per Cor 4.6. The paper's Σ₃
  // construction as printed leaves Rb(0,·) unconstrained (see
  // DESIGN.md); we run the provable ∃X∀W fixed-(Dm,V) family instead.
  {
    Rng rng(11);
    FixedRcqpFamilyInstance instance;
    instance.nx = 1;
    instance.nw = 2;
    instance.formula = RandomCnf(3, 3, &rng);
    auto encoded = ValueOrDie(EncodeFixedRcqpFamily(instance), "fixed");
    bool expected = ExistsForallExistsBruteForce(instance.formula,
                                                 instance.nx, instance.nw, 0);
    std::string outcome;
    double ms = TimeMs([&] {
      bool exists = false;
      for (int chi_bits = 0; chi_bits < 2 && !exists; ++chi_bits) {
        auto witness = ValueOrDie(
            BuildFixedFamilyWitness(instance, {chi_bits == 1}, encoded),
            "witness");
        auto verdict =
            ValueOrDie(DecideRcdp(encoded.query, witness, encoded.master,
                                  encoded.constraints),
                       "verify");
        exists = verdict.complete;
      }
      outcome = std::string(exists ? "exists" : "empty") +
                (exists == expected ? " (matches QBF)" : " (MISMATCH!)");
    });
    table.AddRow({"fixed (Dm, V)  [Cor 4.6]", "Pi3p-complete",
                  "exists-forall family (see docs)", outcome,
                  FormatMs(ms)});
  }

  std::cout << "\n=== Table II: complexity of RCQP(L_Q, L_C) — reproduction "
               "===\n";
  table.Print(std::cout);
  std::cout << std::endl;
}

// ---------------------------------------------------------------------------
// Scaling series.

/// coNP row: the IND path scales with the 3SAT instance size.
void BM_RcqpIndThreeSat(benchmark::State& state) {
  Rng rng(17);
  CnfFormula f = RandomCnf(static_cast<size_t>(state.range(0)),
                           static_cast<size_t>(state.range(0)) + 2, &rng);
  auto encoded = ValueOrDie(EncodeThreeSatRcqp(f), "encode");
  for (auto _ : state) {
    auto verdict = DecideRcqp(encoded.query, encoded.db_schema,
                              encoded.master, encoded.constraints);
    CheckOk(verdict.status(), "decide");
    benchmark::DoNotOptimize(verdict->exists);
  }
}
BENCHMARK(BM_RcqpIndThreeSat)->DenseRange(2, 8, 2);

/// CRM IND row: master-data size barely matters (the syntactic check
/// dominates).
void BM_RcqpIndCrm(benchmark::State& state) {
  CrmOptions options;
  options.num_domestic = static_cast<size_t>(state.range(0));
  CrmScenario crm = ValueOrDie(CrmScenario::Make(options), "crm");
  ConstraintSet inds = ValueOrDie(crm.IndConstraints(), "inds");
  AnyQuery q2 = ValueOrDie(crm.Q2(), "q2");
  for (auto _ : state) {
    auto verdict = DecideRcqp(q2, crm.db_schema(), crm.master(), inds);
    CheckOk(verdict.status(), "decide");
    benchmark::DoNotOptimize(verdict->exists);
  }
}
BENCHMARK(BM_RcqpIndCrm)->Arg(4)->Arg(16)->Arg(64);

/// NEXPTIME row: witness search on Example 4.1, scaling the master
/// data (and thereby the pool).
void BM_RcqpWitnessSearchCrm(benchmark::State& state) {
  CrmOptions options;
  options.num_domestic = static_cast<size_t>(state.range(0));
  CrmScenario crm = ValueOrDie(CrmScenario::Make(options), "crm");
  FunctionalDependency fd("Supt", {0}, {1});
  auto ccs = ValueOrDie(fd.ToContainmentConstraints(*crm.db_schema()),
                        "fd ccs");
  ConstraintSet v;
  for (auto& cc : ccs) v.Add(std::move(cc));
  AnyQuery q4 = ValueOrDie(crm.Q4(), "q4");
  RcqpOptions rcqp_options;
  rcqp_options.max_witness_tuples = 1;
  rcqp_options.max_pool_size = 4096;
  for (auto _ : state) {
    auto verdict =
        DecideRcqp(q4, crm.db_schema(), crm.master(), v, rcqp_options);
    CheckOk(verdict.status(), "decide");
    benchmark::DoNotOptimize(verdict->exists);
  }
}
BENCHMARK(BM_RcqpWitnessSearchCrm)->Arg(2)->Arg(4)->Arg(8);

/// The tiling gadget: encode + solve + verify as the tile set grows.
void BM_TilingEncodeAndVerify(benchmark::State& state) {
  TilingInstance t;
  t.n = 1;
  t.num_tiles = static_cast<size_t>(state.range(0));
  t.t0 = 0;
  for (size_t a = 0; a < t.num_tiles; ++a) {
    for (size_t b = 0; b < t.num_tiles; ++b) {
      if ((a + b) % 2 == 1) {
        t.vertical.emplace_back(a, b);
        t.horizontal.emplace_back(a, b);
      }
    }
  }
  for (auto _ : state) {
    auto solution = SolveTiling(t);
    auto encoded = ValueOrDie(EncodeTilingRcqp(t), "encode");
    if (solution.has_value()) {
      auto witness =
          ValueOrDie(BuildTilingWitness(t, *solution, encoded), "witness");
      auto verdict = DecideRcdp(encoded.query, witness, encoded.master,
                                encoded.constraints);
      CheckOk(verdict.status(), "verify");
      benchmark::DoNotOptimize(verdict->complete);
    }
  }
}
BENCHMARK(BM_TilingEncodeAndVerify)->Arg(2)->Arg(3)->Arg(4);

}  // namespace table2
}  // namespace relcomp

int main(int argc, char** argv) {
  relcomp::table2::PrintTableTwo();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
