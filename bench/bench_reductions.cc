// Hardness-family scaling: the lower-bound constructions as instance
// generators. These curves demonstrate where the intractability of
// Tables I/II actually bites — and that the encoders themselves are
// cheap (polynomial), as the reductions require.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "automata/two_head_dfa.h"
#include "completeness/rcdp.h"
#include "completeness/rcqp.h"
#include "reductions/fixed_rcqp_family.h"
#include "reductions/forall_exists_3sat.h"
#include "reductions/three_sat_rcqp.h"
#include "reductions/tiling.h"
#include "workload/generators.h"

namespace relcomp {
namespace redbench {

using bench::CheckOk;
using bench::ValueOrDie;

/// Encoding ∀∃3SAT instances is linear in the formula.
void BM_EncodeForallExists(benchmark::State& state) {
  Rng rng(5);
  ForallExists3SatInstance instance;
  instance.nx = static_cast<size_t>(state.range(0));
  instance.ny = static_cast<size_t>(state.range(0));
  instance.formula =
      RandomCnf(2 * instance.nx, 2 * instance.nx, &rng);
  for (auto _ : state) {
    auto encoded = EncodeForallExists3Sat(instance);
    CheckOk(encoded.status(), "encode");
    benchmark::DoNotOptimize(encoded->constraints.size());
  }
}
BENCHMARK(BM_EncodeForallExists)->Arg(2)->Arg(8)->Arg(32);

/// Deciding the encoded instances exhibits the Σ₂ᵖ growth.
void BM_DecideForallExists(benchmark::State& state) {
  Rng rng(9);
  ForallExists3SatInstance instance;
  instance.nx = static_cast<size_t>(state.range(0));
  instance.ny = 2;
  instance.formula =
      RandomCnf(instance.nx + 2, instance.nx + 2, &rng);
  auto encoded = ValueOrDie(EncodeForallExists3Sat(instance), "encode");
  for (auto _ : state) {
    auto verdict = DecideRcdp(encoded.query, encoded.db, encoded.master,
                              encoded.constraints);
    CheckOk(verdict.status(), "decide");
    benchmark::DoNotOptimize(verdict->complete);
  }
}
BENCHMARK(BM_DecideForallExists)->DenseRange(1, 4, 1);

/// The coNP 3SAT family for RCQP: realizability search dominates.
void BM_DecideThreeSatRcqp(benchmark::State& state) {
  Rng rng(13);
  CnfFormula f = RandomCnf(static_cast<size_t>(state.range(0)),
                           static_cast<size_t>(state.range(0)), &rng);
  auto encoded = ValueOrDie(EncodeThreeSatRcqp(f), "encode");
  for (auto _ : state) {
    auto verdict = DecideRcqp(encoded.query, encoded.db_schema,
                              encoded.master, encoded.constraints);
    CheckOk(verdict.status(), "decide");
    benchmark::DoNotOptimize(verdict->exists);
  }
}
BENCHMARK(BM_DecideThreeSatRcqp)->DenseRange(2, 6, 2);

/// The fixed-(Dm,V) ∃∀ family: witness verification per χ.
void BM_FixedFamilyVerify(benchmark::State& state) {
  Rng rng(21);
  FixedRcqpFamilyInstance instance;
  instance.nx = 1;
  instance.nw = static_cast<size_t>(state.range(0));
  instance.formula =
      RandomCnf(1 + instance.nw, 1 + instance.nw, &rng);
  auto encoded = ValueOrDie(EncodeFixedRcqpFamily(instance), "encode");
  auto witness =
      ValueOrDie(BuildFixedFamilyWitness(instance, {true}, encoded),
                 "witness");
  for (auto _ : state) {
    auto verdict = DecideRcdp(encoded.query, witness, encoded.master,
                              encoded.constraints);
    CheckOk(verdict.status(), "verify");
    benchmark::DoNotOptimize(verdict->complete);
  }
}
BENCHMARK(BM_FixedFamilyVerify)->DenseRange(1, 3, 1);

/// Tiling: solver + encoder + witness verification at rank 1 and 2.
void BM_TilingPipeline(benchmark::State& state) {
  TilingInstance t;
  t.n = static_cast<size_t>(state.range(0));
  t.num_tiles = 2;
  t.t0 = 0;
  t.vertical = {{0, 1}, {1, 0}};
  t.horizontal = {{0, 1}, {1, 0}};
  for (auto _ : state) {
    auto solution = SolveTiling(t);
    auto encoded = ValueOrDie(EncodeTilingRcqp(t), "encode");
    auto witness =
        ValueOrDie(BuildTilingWitness(t, *solution, encoded), "witness");
    auto verdict = DecideRcdp(encoded.query, witness, encoded.master,
                              encoded.constraints);
    CheckOk(verdict.status(), "verify");
    benchmark::DoNotOptimize(verdict->complete);
  }
}
BENCHMARK(BM_TilingPipeline)->Arg(1)->Arg(2);

/// The undecidable-cell machinery: bounded emptiness search for 2-head
/// DFAs as the input-length bound grows.
void BM_TwoHeadDfaEmptiness(benchmark::State& state) {
  TwoHeadDfa a;
  a.num_states = 4;
  a.initial_state = 0;
  a.accepting_state = 3;
  // Accepts strings containing "101" read by head 1 (head 2 idles on ε
  // after the string ends... simpler: head 2 mirrors head 1).
  a.AddTransition(0, 1, 1, 1, 1, 1);
  a.AddTransition(0, 0, 0, 0, 1, 1);
  a.AddTransition(1, 0, 0, 2, 1, 1);
  a.AddTransition(1, 1, 1, 1, 1, 1);
  a.AddTransition(2, 1, 1, 3, 1, 1);
  a.AddTransition(2, 0, 0, 0, 1, 1);
  for (auto _ : state) {
    auto found =
        FindAcceptedInput(a, static_cast<size_t>(state.range(0)));
    benchmark::DoNotOptimize(found.has_value());
  }
}
BENCHMARK(BM_TwoHeadDfaEmptiness)->Arg(4)->Arg(8)->Arg(12);

}  // namespace redbench
}  // namespace relcomp

BENCHMARK_MAIN();
