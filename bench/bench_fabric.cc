// Throughput scaling of the sharded decision fabric — what adding
// members buys. The same batch of grid audits is pushed through a
// FabricClient against fabrics of 1, 2 and 3 members (the 1-member
// fabric IS the single-server baseline: same client, same ring
// routing, one shard), rounds interleaved across the configurations so
// machine drift hits all of them equally. Each round submits the whole
// batch, then awaits every verdict; with N members the batch drains
// from N shard queues at once, so jobs/sec should scale toward N while
// the per-job audit cost stays flat.
//
// The verdict cache stays OFF: every job must actually run its search,
// otherwise members>1 would be measured serving memcpy.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "fabric/fabric_client.h"
#include "fabric/member.h"
#include "service/decision_service.h"
#include "util/str.h"

namespace relcomp {
namespace fabric_bench {

using bench::CheckOk;
using bench::ValueOrDie;

std::string FreshRoot(const char* tag) {
  static int counter = 0;
  return StrCat("/tmp/relcomp_bench_fabric_", ::getpid(), "_", tag, "_",
                counter++);
}

std::string FreshSocket(const char* tag) {
  static int counter = 0;
  return StrCat("unix:/tmp/relcomp_bench_fabric_", ::getpid(), "_", tag, "_",
                counter++, ".sock");
}

/// The service tests' grid instance: every pair over {0..5} x {0..6}
/// except the far corner — one audit is milliseconds of real search,
/// so queue drain (not wire cost) dominates the round.
std::string GridSpecText() {
  std::string s = "relation S(a, b)\nmaster relation M(m)\n";
  for (int x = 0; x <= 5; ++x) {
    for (int y = 0; y <= 6; ++y) {
      if (x == 5 && y == 6) continue;
      s += StrCat("fact S(", x, ", ", y, ")\n");
    }
  }
  for (int m = 0; m <= 5; ++m) s += StrCat("master fact M(", m, ")\n");
  s += "constraint c0(x) :- S(x, y) |= M[0]\n";
  s += "query cq Q(x, y) :- S(x, y)\n";
  return s;
}

JobSpec GridJob() {
  JobSpec job;
  job.kind = JobKind::kRcdp;
  job.spec_text = GridSpecText();
  return job;
}

/// One whole fabric under one roof: N in-process members over unix
/// sockets plus the routing client.
struct Fabric {
  std::string root;
  std::vector<std::string> endpoints;
  std::vector<std::unique_ptr<FabricMember>> members;
  std::unique_ptr<FabricClient> client;
};

Fabric StartFabric(size_t n, const char* tag) {
  Fabric f;
  f.root = FreshRoot(tag);
  for (size_t i = 0; i < n; ++i) f.endpoints.push_back(FreshSocket(tag));
  for (size_t i = 0; i < n; ++i) {
    FabricMemberOptions options;
    options.fabric_root = f.root;
    options.member_index = i;
    options.endpoints = f.endpoints;
    auto member = FabricMember::Start(options);
    CheckOk(member.status(), "fabric member");
    f.members.push_back(std::move(*member));
  }
  f.client = std::make_unique<FabricClient>(f.endpoints);
  return f;
}

void StopFabric(Fabric* f) {
  for (auto& member : f->members) member->Shutdown();
}

/// One round: submit `batch` distinct jobs, then await every verdict.
/// Returns elapsed nanoseconds for the whole batch.
double BatchRound(FabricClient* client, const JobSpec& job, const char* tag,
                  size_t round, size_t batch) {
  using Clock = std::chrono::steady_clock;
  std::vector<std::string> keys;
  keys.reserve(batch);
  for (size_t i = 0; i < batch; ++i) {
    keys.push_back(StrCat("bench-", tag, "-", round, "-", i));
  }
  const Clock::time_point t0 = Clock::now();
  for (const std::string& key : keys) {
    CheckOk(client->Submit(key, job), "fabric submit");
  }
  for (const std::string& key : keys) {
    auto reply = client->AwaitTerminal(key, std::chrono::milliseconds(0));
    CheckOk(reply.status(), "fabric await");
    benchmark::DoNotOptimize(reply->evidence.size());
  }
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
}

void BM_FabricBatch(benchmark::State& state) {
  const size_t members = static_cast<size_t>(state.range(0));
  Fabric fabric = StartFabric(members, "bm");
  const JobSpec job = GridJob();
  const size_t batch = 12;
  size_t round = 0;
  for (auto _ : state) {
    BatchRound(fabric.client.get(), job, "bm", round++, batch);
  }
  state.counters["jobs_per_round"] = static_cast<double>(batch);
  StopFabric(&fabric);
}
BENCHMARK(BM_FabricBatch)->Arg(1)->Arg(2)->Arg(3);

/// One measured configuration.
struct Measured {
  size_t members = 0;
  double jobs_per_second = 0;
  double p50_batch_ns = 0;   ///< per-round batch latency distribution
  double p99_batch_ns = 0;
  size_t rounds = 0;
  size_t failovers = 0;       ///< should be 0 — nobody dies in a bench
  size_t ring_refreshes = 0;
};

void Finish(size_t batch, std::vector<double>* samples, Measured* out) {
  std::sort(samples->begin(), samples->end());
  double total = 0;
  for (double s : *samples) total += s;
  out->rounds = samples->size();
  out->jobs_per_second =
      total > 0 ? static_cast<double>(batch * samples->size()) * 1e9 / total
                : 0;
  out->p50_batch_ns = (*samples)[samples->size() / 2];
  out->p99_batch_ns = (*samples)[samples->size() - 1 - samples->size() / 100];
}

void AppendConfigJson(std::string* json, const Measured& m) {
  char jps[32];
  std::snprintf(jps, sizeof(jps), "%.2f", m.jobs_per_second);
  *json += StrCat("    \"members_", m.members, "\": {\n");
  *json += StrCat("      \"members\": ", m.members, ",\n");
  *json += StrCat("      \"jobs_per_second\": ", jps, ",\n");
  *json += StrCat("      \"p50_batch_ns\": ",
                  static_cast<size_t>(m.p50_batch_ns), ",\n");
  *json += StrCat("      \"p99_batch_ns\": ",
                  static_cast<size_t>(m.p99_batch_ns), ",\n");
  *json += StrCat("      \"rounds\": ", m.rounds, ",\n");
  *json += StrCat("      \"client_failovers\": ", m.failovers, ",\n");
  *json += StrCat("      \"ring_refreshes\": ", m.ring_refreshes, "\n");
  *json += "    }";
}

/// The handoff-under-load row: live traffic through a 3-member fabric
/// while shard 0 is handed off to its neighbor mid-stream. Reports
/// sustained ops/s across the whole run, the switch-window length (how
/// long HandoffShard held the shard out of service), and how many
/// kUnavailable-driven endpoint rotations the client ate absorbing it.
struct HandoffMeasured {
  size_t ops = 0;
  double ops_per_second = 0;
  double switch_window_ms = 0;
  size_t failovers = 0;       ///< the kUnavailable count during the run
  size_t ring_refreshes = 0;
};

HandoffMeasured MeasureHandoffUnderLoad() {
  using Clock = std::chrono::steady_clock;
  Fabric fabric = StartFabric(3, "handoff");
  const JobSpec job = GridJob();
  BatchRound(fabric.client.get(), job, "handoffwarm", 999100, 6);
  const size_t failovers_before = fabric.client->stats().failovers;
  const size_t refreshes_before = fabric.client->stats().ring_refreshes;

  // Traffic runs on this thread; the handoff fires member-side from a
  // second thread a third of the way in, exactly as an operator would
  // drive it while the fabric serves.
  const double run_ns = 3e9;
  std::atomic<double> window_ns{0};
  std::thread mover;
  bool fired = false;
  size_t ops = 0;
  const Clock::time_point t0 = Clock::now();
  for (;;) {
    const double elapsed = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count());
    if (elapsed >= run_ns) break;
    if (!fired && elapsed > run_ns / 3) {
      fired = true;
      mover = std::thread([&fabric, &window_ns] {
        const Clock::time_point h0 = Clock::now();
        CheckOk(fabric.members[0]->HandoffShard(0, fabric.endpoints[1]),
                "planned handoff");
        window_ns = static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - h0)
                .count());
      });
    }
    auto reply =
        fabric.client->SubmitAndAwait(StrCat("bench-hol-", ops), job);
    CheckOk(reply.status(), "handoff-under-load op");
    benchmark::DoNotOptimize(reply->evidence.size());
    ++ops;
  }
  if (mover.joinable()) mover.join();

  HandoffMeasured m;
  m.ops = ops;
  m.ops_per_second = static_cast<double>(ops) * 1e9 / run_ns;
  m.switch_window_ms = window_ns / 1e6;
  m.failovers = fabric.client->stats().failovers - failovers_before;
  m.ring_refreshes = fabric.client->stats().ring_refreshes - refreshes_before;
  StopFabric(&fabric);
  return m;
}

void AppendHandoffJson(std::string* json, const HandoffMeasured& m) {
  char ops[32], window[32];
  std::snprintf(ops, sizeof(ops), "%.2f", m.ops_per_second);
  std::snprintf(window, sizeof(window), "%.2f", m.switch_window_ms);
  *json += "  \"handoff_under_load\": {\n";
  *json += "    \"members\": 3,\n";
  *json += StrCat("    \"ops_completed\": ", m.ops, ",\n");
  *json += StrCat("    \"ops_per_second\": ", ops, ",\n");
  *json += StrCat("    \"switch_window_ms\": ", window, ",\n");
  *json += StrCat("    \"client_failovers\": ", m.failovers, ",\n");
  *json += StrCat("    \"ring_refreshes\": ", m.ring_refreshes, "\n");
  *json += "  },\n";
}

/// Measures members ∈ {1,2,3} with interleaved rounds and writes
/// BENCH_fabric.json. Output path overridable via
/// RELCOMP_BENCH_FABRIC_JSON.
void WriteFabricJson() {
  const double min_seconds_per_config = 5.0;
  const size_t batch = 12;
  const std::vector<size_t> member_counts = {1, 2, 3};
  const JobSpec job = GridJob();

  std::vector<Fabric> fabrics;
  for (size_t n : member_counts) fabrics.push_back(StartFabric(n, "json"));

  // Warm-up: one batch through every fabric (store open, socket
  // handshake, first-audit page-in all land outside the measurement).
  for (size_t c = 0; c < fabrics.size(); ++c) {
    BatchRound(fabrics[c].client.get(), job, "warm", 999000 + c, batch);
  }

  // Interleaved rounds: 1-member, 2-member, 3-member, repeat — drift
  // cannot bias the later configurations.
  using Clock = std::chrono::steady_clock;
  std::vector<std::vector<double>> samples(fabrics.size());
  const Clock::time_point start = Clock::now();
  size_t round = 0;
  for (;;) {
    for (size_t c = 0; c < fabrics.size(); ++c) {
      samples[c].push_back(
          BatchRound(fabrics[c].client.get(), job, "paired", round, batch));
    }
    ++round;
    const double elapsed = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
    if (elapsed >=
        min_seconds_per_config * 1e9 * static_cast<double>(fabrics.size())) {
      break;
    }
  }

  std::vector<Measured> measured(fabrics.size());
  for (size_t c = 0; c < fabrics.size(); ++c) {
    measured[c].members = member_counts[c];
    Finish(batch, &samples[c], &measured[c]);
    measured[c].failovers = fabrics[c].client->stats().failovers;
    measured[c].ring_refreshes = fabrics[c].client->stats().ring_refreshes;
  }

  const double scaling =
      measured[0].jobs_per_second > 0
          ? measured.back().jobs_per_second / measured[0].jobs_per_second
          : 0;

  std::string json = "{\n";
  json += "  \"benchmark\": \"fabric_throughput_scaling\",\n";
  bench::AppendHardwareJson(&json, member_counts.back());
  json += "  \"transport\": \"unix\",\n";
  json += "  \"instance\": \"6x7 grid minus far corner\",\n";
  json += StrCat("  \"batch_jobs_per_round\": ", batch, ",\n");
  json += "  \"configs\": {\n";
  for (size_t c = 0; c < measured.size(); ++c) {
    AppendConfigJson(&json, measured[c]);
    json += c + 1 < measured.size() ? ",\n" : "\n";
  }
  json += "  },\n";
  AppendHandoffJson(&json, MeasureHandoffUnderLoad());
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", scaling);
  json += StrCat("  \"scaling_3_members_vs_1\": ", buf, "\n");
  json += "}\n";

  const char* path = std::getenv("RELCOMP_BENCH_FABRIC_JSON");
  if (path == nullptr) path = "BENCH_fabric.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s (3 members = %sx the 1-member baseline)\n", path,
              buf);
  for (Fabric& fabric : fabrics) StopFabric(&fabric);
}

}  // namespace fabric_bench
}  // namespace relcomp

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  relcomp::fabric_bench::WriteFabricJson();
  return 0;
}
