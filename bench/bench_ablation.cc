// Ablations for the design choices DESIGN.md calls out: each series
// toggles one optimization of the RCDP decider (or a substrate
// algorithm) against the default configuration.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "completeness/rcdp.h"
#include "eval/datalog_eval.h"
#include "eval/fo_eval.h"
#include "eval/query_eval.h"
#include "query/parser.h"
#include "workload/crm_scenario.h"

namespace relcomp {
namespace ablation {

using bench::CheckOk;
using bench::ValueOrDie;

CrmScenario SmallCrm() {
  // Deliberately tiny: the paper-literal configuration enumerates the
  // full |Adom|^vars valuation space.
  CrmOptions options;
  options.num_domestic = 2;
  options.num_international = 0;
  options.num_employees = 1;
  options.support_per_employee = 1;
  options.manage_chain = 2;
  return ValueOrDie(CrmScenario::Make(options), "crm");
}

/// One RCDP configuration over the Q1/φ0 workload.
void RunRcdpConfig(benchmark::State& state, const RcdpOptions& options) {
  CrmScenario crm = SmallCrm();
  ConstraintSet v;
  v.Add(ValueOrDie(crm.Phi0(), "phi0"));
  AnyQuery q1 = ValueOrDie(crm.Q1(), "q1");
  ValuationSearchStats stats;
  for (auto _ : state) {
    auto verdict = DecideRcdp(q1, crm.db(), crm.master(), v, options);
    CheckOk(verdict.status(), "decide");
    stats = verdict->stats;
    benchmark::DoNotOptimize(verdict->complete);
  }
  state.counters["search_steps"] = static_cast<double>(stats.bindings_tried);
  state.counters["index_probes"] = static_cast<double>(stats.index_probes);
  state.counters["composite_probes"] =
      static_cast<double>(stats.composite_probes);
  state.counters["relation_scans"] =
      static_cast<double>(stats.relation_scans);
  state.counters["overlay_hits"] = static_cast<double>(stats.overlay_hits);
  state.counters["arena_bytes"] = static_cast<double>(stats.arena_bytes);
}

void BM_RcdpDefault(benchmark::State& state) {
  RunRcdpConfig(state, RcdpOptions());
}
BENCHMARK(BM_RcdpDefault);

void BM_RcdpNoCollapse(benchmark::State& state) {
  RcdpOptions options;
  options.collapse_dont_care = false;
  RunRcdpConfig(state, options);
}
BENCHMARK(BM_RcdpNoCollapse);

void BM_RcdpNoDeltaCheck(benchmark::State& state) {
  RcdpOptions options;
  options.delta_constraint_check = false;
  RunRcdpConfig(state, options);
}
BENCHMARK(BM_RcdpNoDeltaCheck);

void BM_RcdpNoIndexes(benchmark::State& state) {
  RcdpOptions options;
  options.use_indexes = false;
  RunRcdpConfig(state, options);
}
BENCHMARK(BM_RcdpNoIndexes);

void BM_RcdpNoOverlay(benchmark::State& state) {
  RcdpOptions options;
  options.use_overlay = false;
  RunRcdpConfig(state, options);
}
BENCHMARK(BM_RcdpNoOverlay);

/// Composite radix indexes off: multi-bound atoms fall back to the
/// shortest per-column posting list plus residual re-checks (the PR 1
/// index plane). Isolates the ART layer of the id-plane refactor.
void BM_RcdpNoCompositeIndexes(benchmark::State& state) {
  RcdpOptions options;
  options.use_composite_indexes = false;
  RunRcdpConfig(state, options);
}
BENCHMARK(BM_RcdpNoCompositeIndexes);

/// Per-worker arenas off: the matcher heap-allocates its per-call
/// scratch. Isolates the allocation layer of the id-plane refactor.
void BM_RcdpNoArena(benchmark::State& state) {
  RcdpOptions options;
  options.use_arena = false;
  RunRcdpConfig(state, options);
}
BENCHMARK(BM_RcdpNoArena);

/// Id-plane floor: composite indexes and arenas both off — what the
/// id-plane join loop alone buys over the per-column indexed PR 1/2
/// configuration (compare against BM_RcdpDefault for the full stack).
void BM_RcdpIdPlaneOnly(benchmark::State& state) {
  RcdpOptions options;
  options.use_composite_indexes = false;
  options.use_arena = false;
  RunRcdpConfig(state, options);
}
BENCHMARK(BM_RcdpIdPlaneOnly);

/// The literal paper algorithm: enumerate every valuation over the
/// full Adom, then check (no pruning, no collapse, no incremental
/// constraint checks, no symmetry breaking, no column indexes, and
/// a full database copy per candidate instead of an overlay).
void BM_RcdpPaperLiteral(benchmark::State& state) {
  RcdpOptions options;
  options.prune = false;
  options.collapse_dont_care = false;
  options.delta_constraint_check = false;
  options.use_indexes = false;
  options.use_overlay = false;
  RunRcdpConfig(state, options);
}
BENCHMARK(BM_RcdpPaperLiteral);

/// Datalog: semi-naive vs naive fixpoint on a transitive closure over
/// a chain of length n.
void RunDatalogConfig(benchmark::State& state, bool semi_naive) {
  const int n = static_cast<int>(state.range(0));
  auto schema = std::make_shared<Schema>();
  CheckOk(schema->AddRelation("E", 2), "schema");
  Database db(schema);
  for (int i = 0; i < n; ++i) {
    db.InsertUnchecked("E", Tuple::Ints({i, i + 1}));
  }
  auto program = ParseDatalogProgram(
      "T(x, y) :- E(x, y).\nT(x, z) :- E(x, y), T(y, z).");
  CheckOk(program.status(), "program");
  DatalogEvalOptions options;
  options.semi_naive = semi_naive;
  for (auto _ : state) {
    auto tc = EvalDatalog(*program, db, options);
    CheckOk(tc.status(), "eval");
    benchmark::DoNotOptimize(tc->size());
  }
}

void BM_DatalogSemiNaive(benchmark::State& state) {
  RunDatalogConfig(state, true);
}
BENCHMARK(BM_DatalogSemiNaive)->Arg(8)->Arg(16)->Arg(32);

void BM_DatalogNaive(benchmark::State& state) {
  RunDatalogConfig(state, false);
}
BENCHMARK(BM_DatalogNaive)->Arg(8)->Arg(16)->Arg(32);

/// ∃FO+ evaluation: DNF-unfolded joins vs active-domain formula
/// evaluation on a disjunctive customer query.
void BM_PositiveEvalUnfolded(benchmark::State& state) {
  CrmScenario crm = ValueOrDie(CrmScenario::Make(), "crm");
  auto q = ParseFoQuery(
      R"(Qp(c) := exists n, cc, a, p. (Cust(c, n, cc, a, p) &
          (a = "908" | a = "201" | cc = "44")))");
  CheckOk(q.status(), "q");
  AnyQuery positive = AnyQuery::Positive(*q);
  for (auto _ : state) {
    auto answer = Evaluate(positive, crm.db());
    CheckOk(answer.status(), "eval");
    benchmark::DoNotOptimize(answer->size());
  }
}
BENCHMARK(BM_PositiveEvalUnfolded);

void BM_PositiveEvalActiveDomain(benchmark::State& state) {
  CrmScenario crm = ValueOrDie(CrmScenario::Make(), "crm");
  auto q = ParseFoQuery(
      R"(Qp(c) := exists n, cc, a, p. (Cust(c, n, cc, a, p) &
          (a = "908" | a = "201" | cc = "44")))");
  CheckOk(q.status(), "q");
  for (auto _ : state) {
    auto answer = EvalFo(*q, crm.db());
    CheckOk(answer.status(), "eval");
    benchmark::DoNotOptimize(answer->size());
  }
}
BENCHMARK(BM_PositiveEvalActiveDomain);

/// Conjunctive matcher: greedy atom reordering and column-index
/// probing vs textual order and full scans on a selective join.
void RunMatcherConfig(benchmark::State& state, bool reorder,
                      bool use_indexes) {
  CrmOptions options;
  options.num_domestic = 32;
  options.num_employees = 4;
  options.support_per_employee = 4;
  CrmScenario crm = ValueOrDie(CrmScenario::Make(options), "crm");
  auto q = ParseConjunctiveQuery(
      R"(J(c, n) :- Cust(c, n, cc, a, p), Supt(e, d, c), e = "e0",
                    a = "908".)");
  CheckOk(q.status(), "q");
  EvalCounters counters;
  ConjunctiveEvalOptions eval_options;
  eval_options.reorder_atoms = reorder;
  eval_options.use_indexes = use_indexes;
  eval_options.counters = &counters;
  for (auto _ : state) {
    counters = EvalCounters();
    auto answer = EvalConjunctive(*q, crm.db(), eval_options);
    CheckOk(answer.status(), "eval");
    benchmark::DoNotOptimize(answer->size());
  }
  state.counters["index_probes"] = static_cast<double>(counters.index_probes);
  state.counters["relation_scans"] =
      static_cast<double>(counters.relation_scans);
  state.counters["rows_considered"] =
      static_cast<double>(counters.base_rows_considered);
}

void BM_MatcherReordered(benchmark::State& state) {
  RunMatcherConfig(state, /*reorder=*/true, /*use_indexes=*/true);
}
BENCHMARK(BM_MatcherReordered);

void BM_MatcherTextualOrder(benchmark::State& state) {
  RunMatcherConfig(state, /*reorder=*/false, /*use_indexes=*/true);
}
BENCHMARK(BM_MatcherTextualOrder);

void BM_MatcherNoIndexes(benchmark::State& state) {
  RunMatcherConfig(state, /*reorder=*/true, /*use_indexes=*/false);
}
BENCHMARK(BM_MatcherNoIndexes);

/// The naive textual-order, scan-only matcher — the paper-literal
/// baseline the indexed path is compared against.
void BM_MatcherPaperLiteral(benchmark::State& state) {
  RunMatcherConfig(state, /*reorder=*/false, /*use_indexes=*/false);
}
BENCHMARK(BM_MatcherPaperLiteral);

}  // namespace ablation
}  // namespace relcomp

BENCHMARK_MAIN();
