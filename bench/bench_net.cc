// Wire overhead of the network front end — what talking to the
// decision service over a socket costs relative to calling it in
// process. The same audit (the grid instance the service tests use) is
// submitted and awaited two ways, interleaved: directly against a
// DecisionService (Submit + Wait), and through a NetServer over a
// unix-domain socket with a NetClient (Submit + AwaitTerminal). The
// difference is the price of the frame codec, the poll(2) loop, and
// the submit-then-poll protocol; the target is <= 10% end to end.
//
// A third phase re-runs the networked flow with periodic socket faults
// (torn frames) armed, reporting client-observed p50/p99 latency and
// how many transport retries the recovery cost — the robustness tax,
// measured rather than asserted.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/client.h"
#include "net/server.h"
#include "service/decision_service.h"
#include "util/str.h"

namespace relcomp {
namespace net_bench {

using bench::CheckOk;
using bench::ValueOrDie;

std::string FreshDir(const char* tag) {
  static int counter = 0;
  return StrCat("/tmp/relcomp_bench_net_", ::getpid(), "_", tag, "_",
                counter++);
}

std::string FreshSocket(const char* tag) {
  static int counter = 0;
  return StrCat("unix:/tmp/relcomp_bench_net_", ::getpid(), "_", tag, "_",
                counter++, ".sock");
}

/// The service tests' grid instance: every pair over {0..5} x {0..6}
/// except the far corner — a search of a few dozen decision points, so
/// one audit is milliseconds and the wire share is visible.
std::string GridSpecText() {
  std::string s = "relation S(a, b)\nmaster relation M(m)\n";
  for (int x = 0; x <= 5; ++x) {
    for (int y = 0; y <= 6; ++y) {
      if (x == 5 && y == 6) continue;
      s += StrCat("fact S(", x, ", ", y, ")\n");
    }
  }
  for (int m = 0; m <= 5; ++m) s += StrCat("master fact M(", m, ")\n");
  s += "constraint c0(x) :- S(x, y) |= M[0]\n";
  s += "query cq Q(x, y) :- S(x, y)\n";
  return s;
}

JobSpec GridJob() {
  JobSpec job;
  job.kind = JobKind::kRcdp;
  job.spec_text = GridSpecText();
  job.slice_steps = 16;
  return job;
}

/// An in-process service plus a NetServer fronting it over a unix
/// socket — the whole stack under one roof for paired measurement.
struct Stack {
  std::unique_ptr<DecisionService> service;
  std::unique_ptr<NetServer> server;
  std::unique_ptr<NetClient> client;
};

Stack StartStack() {
  Stack s;
  s.service = ValueOrDie(DecisionService::Start(FreshDir("svc")), "service");
  s.server = ValueOrDie(
      NetServer::Start(s.service.get(), FreshSocket("srv")), "server");
  NetClientOptions copts;
  copts.io_timeout = std::chrono::milliseconds(2000);
  s.client = std::make_unique<NetClient>(s.server->address(), copts);
  return s;
}

/// One in-process audit round trip; returns elapsed nanoseconds.
double InProcessOp(DecisionService* service, const JobSpec& job, size_t seq) {
  using Clock = std::chrono::steady_clock;
  const std::string key = StrCat("bench-local-", seq);
  const Clock::time_point t0 = Clock::now();
  CheckOk(service->Submit(key, job), "submit");
  auto result = service->Wait(key);
  CheckOk(result.status(), "wait");
  benchmark::DoNotOptimize(result->evidence.size());
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
}

/// One networked audit round trip (submit, then poll to the verdict
/// without sleeping — the latency floor of the wire protocol).
double NetworkedOp(NetClient* client, const JobSpec& job, size_t seq,
                   const char* tag) {
  using Clock = std::chrono::steady_clock;
  const std::string key = StrCat("bench-", tag, "-", seq);
  const Clock::time_point t0 = Clock::now();
  CheckOk(client->Submit(key, job), "net submit");
  auto reply = client->AwaitTerminal(key, std::chrono::milliseconds(0));
  CheckOk(reply.status(), "net await");
  benchmark::DoNotOptimize(reply->evidence.size());
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
}

void BM_InProcessSubmitWait(benchmark::State& state) {
  auto service = ValueOrDie(DecisionService::Start(FreshDir("bm")), "service");
  const JobSpec job = GridJob();
  size_t seq = 0;
  for (auto _ : state) InProcessOp(service.get(), job, seq++);
}
BENCHMARK(BM_InProcessSubmitWait);

void BM_NetworkedSubmitAwait(benchmark::State& state) {
  Stack stack = StartStack();
  const JobSpec job = GridJob();
  size_t seq = 0;
  for (auto _ : state) NetworkedOp(stack.client.get(), job, seq++, "bm");
  stack.server->Shutdown();
}
BENCHMARK(BM_NetworkedSubmitAwait);

void BM_NetworkedSubmitAwaitUnderFaults(benchmark::State& state) {
  Stack stack = StartStack();
  SocketFaultPlan plan;
  plan.kind = SocketFaultPlan::Kind::kTornFrame;
  plan.every = 7;
  plan.at_byte = 12;
  stack.server->InjectFault(plan);
  const JobSpec job = GridJob();
  size_t seq = 0;
  for (auto _ : state) NetworkedOp(stack.client.get(), job, seq++, "bmf");
  state.counters["retries"] =
      static_cast<double>(stack.client->stats().retries);
  stack.server->Shutdown();
}
BENCHMARK(BM_NetworkedSubmitAwaitUnderFaults);

/// One measured configuration: mean plus the client-observed latency
/// distribution (p50/p99 over the per-op samples).
struct Measured {
  double ns_per_op = 0;
  double p50_ns = 0;
  double p99_ns = 0;
  size_t iterations = 0;
  size_t retries = 0;        ///< client transport retries (networked only)
  size_t faults_injected = 0;  ///< server-side (faulty phase only)
};

void Finish(std::vector<double>* samples, Measured* out) {
  std::sort(samples->begin(), samples->end());
  double total = 0;
  for (double s : *samples) total += s;
  out->iterations = samples->size();
  out->ns_per_op = total / static_cast<double>(samples->size());
  out->p50_ns = (*samples)[samples->size() / 2];
  out->p99_ns = (*samples)[samples->size() - 1 - samples->size() / 100];
}

/// Interleaved A/B measurement, as in bench_service: each round runs
/// one in-process op then one networked op back to back, so drift hits
/// both configurations equally instead of biasing the second block.
void MeasurePaired(Stack* stack, const JobSpec& job, double min_seconds,
                   Measured* in_process, Measured* networked) {
  using Clock = std::chrono::steady_clock;
  InProcessOp(stack->service.get(), job, 999000);  // warm-up
  NetworkedOp(stack->client.get(), job, 999000, "warm");
  std::vector<double> local_ns;
  std::vector<double> net_ns;
  const Clock::time_point start = Clock::now();
  size_t seq = 0;
  for (;;) {
    local_ns.push_back(InProcessOp(stack->service.get(), job, seq));
    net_ns.push_back(NetworkedOp(stack->client.get(), job, seq, "paired"));
    ++seq;
    const double elapsed = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
    if (elapsed >= min_seconds * 1e9) break;
  }
  Finish(&local_ns, in_process);
  Finish(&net_ns, networked);
}

/// The faulty phase: same networked op with periodic torn frames armed.
void MeasureFaulty(Stack* stack, const JobSpec& job, double min_seconds,
                   Measured* out) {
  using Clock = std::chrono::steady_clock;
  SocketFaultPlan plan;
  plan.kind = SocketFaultPlan::Kind::kTornFrame;
  plan.every = 7;  // roughly one injured reply per audit
  plan.at_byte = 12;
  stack->server->InjectFault(plan);
  const size_t retries_before = stack->client->stats().retries;
  const size_t faults_before = stack->server->stats().faults_injected;
  std::vector<double> samples;
  const Clock::time_point start = Clock::now();
  size_t seq = 0;
  for (;;) {
    samples.push_back(
        NetworkedOp(stack->client.get(), job, seq++, "faulty"));
    const double elapsed = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
    if (elapsed >= min_seconds * 1e9) break;
  }
  Finish(&samples, out);
  out->retries = stack->client->stats().retries - retries_before;
  out->faults_injected =
      stack->server->stats().faults_injected - faults_before;
  stack->server->InjectFault(SocketFaultPlan());  // disarm
}

void AppendConfigJson(std::string* json, const char* name,
                      const Measured& m, bool networked) {
  *json += StrCat("    \"", name, "\": {\n");
  *json += StrCat("      \"ns_per_op\": ", static_cast<size_t>(m.ns_per_op),
                  ",\n");
  *json += StrCat("      \"p50_ns\": ", static_cast<size_t>(m.p50_ns), ",\n");
  *json += StrCat("      \"p99_ns\": ", static_cast<size_t>(m.p99_ns), ",\n");
  *json += StrCat("      \"iterations\": ", m.iterations);
  if (networked) {
    *json += StrCat(",\n      \"client_retries\": ", m.retries);
    *json += StrCat(",\n      \"server_faults_injected\": ",
                    m.faults_injected);
  }
  *json += "\n    }";
}

/// Measures the three configurations and writes BENCH_net.json. Output
/// path overridable via RELCOMP_BENCH_NET_JSON.
void WriteNetJson() {
  const double min_seconds = 6.0;
  Stack stack = StartStack();
  const JobSpec job = GridJob();

  Measured in_process;
  Measured networked;
  Measured faulty;
  MeasurePaired(&stack, job, min_seconds, &in_process, &networked);
  MeasureFaulty(&stack, job, min_seconds / 2, &faulty);

  const double overhead_pct =
      in_process.ns_per_op > 0
          ? (networked.ns_per_op / in_process.ns_per_op - 1.0) * 100.0
          : 0;

  std::string json = "{\n";
  json += "  \"benchmark\": \"net_wire_overhead\",\n";
  bench::AppendHardwareJson(&json, 1);
  json += "  \"transport\": \"unix\",\n";
  json += "  \"instance\": \"6x7 grid minus far corner, slice_steps 16\",\n";
  json += "  \"configs\": {\n";
  AppendConfigJson(&json, "in_process", in_process, false);
  json += ",\n";
  AppendConfigJson(&json, "networked", networked, true);
  json += ",\n";
  AppendConfigJson(&json, "networked_torn_frames", faulty, true);
  json += "\n  },\n";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", overhead_pct);
  json += StrCat("  \"wire_overhead_pct\": ", buf, ",\n");
  json += "  \"wire_overhead_target_pct\": 10.0\n";
  json += "}\n";

  const char* path = std::getenv("RELCOMP_BENCH_NET_JSON");
  if (path == nullptr) path = "BENCH_net.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf(
      "wrote %s (wire overhead %s%%; %zu retries over %zu faulty audits)\n",
      path, buf, faulty.retries, faulty.iterations);
  stack.server->Shutdown();
}

}  // namespace net_bench
}  // namespace relcomp

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  relcomp::net_bench::WriteNetJson();
  return 0;
}
