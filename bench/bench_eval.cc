// Substrate microbenchmarks: the query evaluators underneath the
// deciders — join matching, datalog fixpoints, FO evaluation, parsing,
// and constraint checking throughput.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "constraints/constraint_check.h"
#include "eval/fo_eval.h"
#include "eval/query_eval.h"
#include "query/parser.h"
#include "util/str.h"
#include "workload/generators.h"

namespace relcomp {
namespace evalbench {

using bench::CheckOk;
using bench::ValueOrDie;

/// A two-relation graph instance: E(edge) and L(label).
Database GraphDb(size_t nodes, size_t out_degree,
                 std::shared_ptr<Schema>* schema_out) {
  auto schema = std::make_shared<Schema>();
  CheckOk(schema->AddRelation("E", 2), "schema E");
  CheckOk(schema->AddRelation("L", 1), "schema L");
  Database db(schema);
  for (size_t v = 0; v < nodes; ++v) {
    for (size_t d = 1; d <= out_degree; ++d) {
      db.InsertUnchecked(
          "E", Tuple::Ints({static_cast<int64_t>(v),
                            static_cast<int64_t>((v + d) % nodes)}));
    }
    if (v % 3 == 0) {
      db.InsertUnchecked("L", Tuple::Ints({static_cast<int64_t>(v)}));
    }
  }
  *schema_out = schema;
  return db;
}

void BM_TriangleJoin(benchmark::State& state) {
  std::shared_ptr<Schema> schema;
  Database db = GraphDb(static_cast<size_t>(state.range(0)), 3, &schema);
  auto q = ParseConjunctiveQuery(
      "Tri(x, y, z) :- E(x, y), E(y, z), E(z, x).");
  CheckOk(q.status(), "q");
  for (auto _ : state) {
    auto answers = EvalConjunctive(*q, db);
    CheckOk(answers.status(), "eval");
    benchmark::DoNotOptimize(answers->size());
  }
  state.SetItemsProcessed(state.iterations() * db.TotalTuples());
}
BENCHMARK(BM_TriangleJoin)->Arg(16)->Arg(64)->Arg(256);

void BM_SelectiveJoin(benchmark::State& state) {
  std::shared_ptr<Schema> schema;
  Database db = GraphDb(static_cast<size_t>(state.range(0)), 3, &schema);
  auto q = ParseConjunctiveQuery("Qs(y) :- E(x, y), L(y), x = 0.");
  CheckOk(q.status(), "q");
  for (auto _ : state) {
    auto answers = EvalConjunctive(*q, db);
    CheckOk(answers.status(), "eval");
    benchmark::DoNotOptimize(answers->size());
  }
}
BENCHMARK(BM_SelectiveJoin)->Arg(64)->Arg(256)->Arg(1024);

void BM_TransitiveClosure(benchmark::State& state) {
  std::shared_ptr<Schema> schema;
  Database db = GraphDb(static_cast<size_t>(state.range(0)), 1, &schema);
  auto program = ParseDatalogProgram(
      "T(x, y) :- E(x, y).\nT(x, z) :- E(x, y), T(y, z).");
  CheckOk(program.status(), "program");
  for (auto _ : state) {
    auto tc = EvalDatalog(*program, db);
    CheckOk(tc.status(), "eval");
    benchmark::DoNotOptimize(tc->size());
  }
}
BENCHMARK(BM_TransitiveClosure)->Arg(8)->Arg(16)->Arg(32);

void BM_FoEvaluation(benchmark::State& state) {
  std::shared_ptr<Schema> schema;
  Database db = GraphDb(static_cast<size_t>(state.range(0)), 2, &schema);
  // Sinks of labeled nodes: no outgoing edge into a labeled node.
  auto q = ParseFoQuery("Qf(x) := L(x) & !(exists y. (E(x, y) & L(y)))");
  CheckOk(q.status(), "q");
  for (auto _ : state) {
    auto answers = EvalFo(*q, db);
    CheckOk(answers.status(), "eval");
    benchmark::DoNotOptimize(answers->size());
  }
}
BENCHMARK(BM_FoEvaluation)->Arg(8)->Arg(16)->Arg(32);

void BM_ParseQuery(benchmark::State& state) {
  std::string text =
      R"(Q(c) :- Cust(c, n, cc, a, p), Supt(e, d, c), cc = "01",)"
      R"( a != "999", e = "e0".)";
  for (auto _ : state) {
    auto q = ParseConjunctiveQuery(text);
    CheckOk(q.status(), "parse");
    benchmark::DoNotOptimize(q->body().size());
  }
}
BENCHMARK(BM_ParseQuery);

void BM_ConstraintCheckThroughput(benchmark::State& state) {
  Rng rng(1);
  RandomInstanceOptions options;
  options.num_relations = 3;
  options.tuples_per_relation = static_cast<size_t>(state.range(0));
  options.value_pool = 16;
  auto db_schema = RandomSchema(options, &rng);
  Database db = RandomDatabase(db_schema, options, &rng);
  auto master_schema = std::make_shared<Schema>();
  CheckOk(master_schema->AddRelation("M", 2), "master schema");
  Database master(master_schema);
  for (int i = 0; i < 16; ++i) {
    master.InsertUnchecked("M", Tuple::Ints({i, i + 1}));
  }
  auto constraints =
      ValueOrDie(RandomIndConstraints(*db_schema, *master_schema, 4, &rng),
                 "constraints");
  for (auto _ : state) {
    auto ok = Satisfies(constraints, db, master);
    CheckOk(ok.status(), "check");
    benchmark::DoNotOptimize(*ok);
  }
  state.SetItemsProcessed(state.iterations() * db.TotalTuples());
}
BENCHMARK(BM_ConstraintCheckThroughput)->Arg(16)->Arg(64)->Arg(256);

}  // namespace evalbench
}  // namespace relcomp

BENCHMARK_MAIN();
