// Regenerates the paper's Table I (complexity of RCDP(L_Q, L_C)) as an
// executable artifact: every decidable row runs the decider on a
// reference workload; every undecidable row demonstrates the refusal
// plus the bounded semi-decision over the proof's encoding. The
// google-benchmark series that follow measure the scaling shape of the
// decidable rows.

#include <benchmark/benchmark.h>

#include <iostream>

#include "automata/two_head_dfa.h"
#include "bench_util.h"
#include "completeness/brute_force.h"
#include "completeness/rcdp.h"
#include "constraints/integrity_constraints.h"
#include "query/parser.h"
#include "query/positive_query.h"
#include "reductions/forall_exists_3sat.h"
#include "workload/generators.h"
#include "util/table_printer.h"
#include "workload/crm_scenario.h"

namespace relcomp {
namespace table1 {

using bench::CheckOk;
using bench::FormatMs;
using bench::TimeMs;
using bench::ValueOrDie;

CrmScenario MakeCrm(size_t domestic) {
  CrmOptions options;
  options.num_domestic = domestic;
  options.num_employees = 2;
  options.support_per_employee = 2;
  return ValueOrDie(CrmScenario::Make(options), "crm");
}

/// The UCQ workload: Q1 ∪ Q2 over the CRM schema.
AnyQuery CrmUcq(const CrmScenario& crm) {
  UnionQuery u;
  u.set_name("Q12");
  u.AddDisjunct(*ValueOrDie(crm.Q1(), "q1").as_cq());
  u.AddDisjunct(*ValueOrDie(crm.Q2(), "q2").as_cq());
  return AnyQuery::Ucq(std::move(u));
}

/// The ∃FO+ workload: Q1's formula with a disjunctive twist.
AnyQuery CrmPositive() {
  auto q = ParseFoQuery(R"(
      Qp(c) := exists n, cc, a, p, e, d.
        (Cust(c, n, cc, a, p) & Supt(e, d, c) & cc = "01" &
         (a = "908" | a = "201"))
  )");
  CheckOk(q.status(), "positive query");
  return AnyQuery::Positive(*std::move(q));
}

/// φ0 as an ∃FO+ constraint (same semantics, higher language tag).
ConstraintSet PositiveConstraints(const CrmScenario& crm) {
  ContainmentConstraint phi0 = ValueOrDie(crm.Phi0(), "phi0");
  FoQuery as_fo = CqToFoQuery(*phi0.query().as_cq());
  ConstraintSet set;
  set.Add(ContainmentConstraint::Subset(AnyQuery::Positive(std::move(as_fo)),
                                        "DCust", {0}));
  return set;
}

// ---------------------------------------------------------------------------
// The Table I reproduction.

void PrintTableOne() {
  TablePrinter table({"RCDP(L_Q, L_C)", "paper", "this library",
                      "reference outcome", "time"});

  CrmScenario crm = MakeCrm(4);
  ConstraintSet phi0_set;
  phi0_set.Add(ValueOrDie(crm.Phi0(), "phi0"));
  ConstraintSet ind_set = ValueOrDie(crm.IndConstraints(), "inds");
  // A small scenario for the brute-force demonstrations of the
  // undecidable rows (the definition-chasing oracle pays |adom|^arity).
  CrmOptions tiny_options;
  tiny_options.num_domestic = 2;
  tiny_options.num_international = 0;
  tiny_options.num_employees = 1;
  tiny_options.support_per_employee = 1;
  tiny_options.manage_chain = 2;
  CrmScenario tiny = ValueOrDie(CrmScenario::Make(tiny_options), "tiny crm");
  ConstraintSet tiny_phi0;
  tiny_phi0.Add(ValueOrDie(tiny.Phi0(), "tiny phi0"));

  // Row 1: (FO, CQ) — undecidable (Th 3.1(1)).
  {
    auto fo = ParseFoQuery(
        "Qf(x) := exists d, c. (Supt(x, d, c) & !Manage(x, x))");
    CheckOk(fo.status(), "fo query");
    auto refused = DecideRcdp(AnyQuery::Fo(*fo), tiny.db(), tiny.master(),
                              tiny_phi0);
    double ms = TimeMs([&] {
      BruteForceOptions bf;
      bf.max_delta_tuples = 1;
      bf.universe = {Value::Str("e0"), Value::Str("d0"), Value::Str("c0")};
      auto oracle = BruteForceRcdp(AnyQuery::Fo(*fo), tiny.db(),
                                   tiny.master(), tiny_phi0, bf);
      CheckOk(oracle.status(), "fo oracle");
    });
    table.AddRow({"(FO, CQ)  [Th 3.1(1)]", "undecidable",
                  "refused + bounded oracle",
                  refused.status().ok() ? "UNEXPECTED" : "kUnsupported",
                  FormatMs(ms)});
  }

  // Row 2: (CQ, FO) — undecidable (Th 3.1(2)); an FO constraint comes
  // from the CIND compiler of Prop 2.1.
  {
    ConditionalInd cind("Supt", {2}, {}, "Cust", {0}, {});
    ConstraintSet fo_set;
    fo_set.Add(ValueOrDie(cind.ToContainmentConstraint(*crm.db_schema()),
                          "cind cc"));
    auto q1 = ValueOrDie(crm.Q1(), "q1");
    auto refused = DecideRcdp(q1, crm.db(), crm.master(), fo_set);
    table.AddRow({"(CQ, FO)  [Th 3.1(2)]", "undecidable",
                  "refused (language gate)",
                  refused.status().ok() ? "UNEXPECTED" : "kUnsupported",
                  "-"});
  }

  // Row 3: (FP, CQ) — undecidable (Th 3.1(3)); the 2-head DFA encoding.
  {
    TwoHeadDfa accepts_one;
    accepts_one.num_states = 3;
    accepts_one.initial_state = 0;
    accepts_one.accepting_state = 2;
    accepts_one.AddTransition(0, 1, 1, 1, 1, 1);
    accepts_one.AddTransition(1, TwoHeadDfa::kEpsilon,
                              TwoHeadDfa::kEpsilon, 2, 0, 0);
    auto encoded = ValueOrDie(EncodeTwoHeadDfaRcdp(accepts_one), "dfa");
    auto refused = DecideRcdp(encoded.query, encoded.db, encoded.master,
                              encoded.constraints);
    std::string outcome = refused.status().ok() ? "UNEXPECTED"
                                                : "kUnsupported; oracle: ";
    double ms = TimeMs([&] {
      BruteForceOptions bf;
      bf.universe = {Value::Int(0), Value::Int(1)};
      bf.max_delta_tuples = 3;
      auto oracle = BruteForceRcdp(encoded.query, encoded.db, encoded.master,
                                   encoded.constraints, bf);
      CheckOk(oracle.status(), "dfa oracle");
      outcome += oracle->complete ? "complete-in-bounds"
                                  : "L(A) != {} detected";
    });
    table.AddRow({"(FP, CQ)  [Th 3.1(3)]", "undecidable",
                  "refused + 2-head DFA oracle", outcome, FormatMs(ms)});
  }

  // Row 4: (fixed FP, FP) — undecidable (Th 3.1(4)); same machinery.
  table.AddRow({"(fixed FP, FP)  [Th 3.1(4)]", "undecidable",
                "refused (language gate)", "kUnsupported", "-"});

  // Row 5: (CQ, INDs) — Σ₂ᵖ-complete (Th 3.6(1)).
  {
    auto q1 = ValueOrDie(crm.Q1(), "q1");
    std::string outcome;
    double ms = TimeMs([&] {
      auto verdict =
          ValueOrDie(DecideRcdp(q1, crm.db(), crm.master(), ind_set),
                     "rcdp cq/inds");
      outcome = verdict.complete ? "complete" : "incomplete";
    });
    table.AddRow({"(CQ, INDs)  [Th 3.6(1)]", "Sigma2p-complete",
                  "valuation search (C3)", outcome, FormatMs(ms)});
  }

  // Row 6: (CQ, CQ) — Σ₂ᵖ-complete (Th 3.6(2)).
  {
    auto q1 = ValueOrDie(crm.Q1(), "q1");
    std::string outcome;
    double ms = TimeMs([&] {
      auto verdict = ValueOrDie(
          DecideRcdp(q1, crm.db(), crm.master(), phi0_set), "rcdp cq/cq");
      outcome = verdict.complete ? "complete" : "incomplete";
    });
    table.AddRow({"(CQ, CQ)  [Th 3.6(2)]", "Sigma2p-complete",
                  "valuation search (C1/C2)", outcome, FormatMs(ms)});
  }

  // Row 7: (UCQ, UCQ) — Σ₂ᵖ-complete (Th 3.6(3)).
  {
    AnyQuery ucq = CrmUcq(crm);
    std::string outcome;
    double ms = TimeMs([&] {
      auto verdict = ValueOrDie(
          DecideRcdp(ucq, crm.db(), crm.master(), phi0_set), "rcdp ucq");
      outcome = verdict.complete ? "complete" : "incomplete";
    });
    table.AddRow({"(UCQ, UCQ)  [Th 3.6(3)]", "Sigma2p-complete",
                  "per-disjunct search (C4)", outcome, FormatMs(ms)});
  }

  // Row 8: (∃FO+, ∃FO+) — Σ₂ᵖ-complete (Th 3.6(4)).
  {
    AnyQuery positive = CrmPositive();
    ConstraintSet positive_set = PositiveConstraints(crm);
    std::string outcome;
    double ms = TimeMs([&] {
      auto verdict = ValueOrDie(
          DecideRcdp(positive, crm.db(), crm.master(), positive_set),
          "rcdp efo+");
      outcome = verdict.complete ? "complete" : "incomplete";
    });
    table.AddRow({"(EFO+, EFO+)  [Th 3.6(4)]", "Sigma2p-complete",
                  "DNF unfold + search", outcome, FormatMs(ms)});
  }

  // Row 9: fixed Dm and V stay Σ₂ᵖ-hard (Cor 3.7) — the ∀∃3SAT family
  // has fixed master data and constraints; only the query varies.
  {
    Rng rng(7);
    ForallExists3SatInstance instance;
    instance.nx = 1;
    instance.ny = 2;
    instance.formula = RandomCnf(3, 3, &rng);
    auto encoded = ValueOrDie(EncodeForallExists3Sat(instance), "fe3sat");
    std::string outcome;
    double ms = TimeMs([&] {
      auto verdict =
          ValueOrDie(DecideRcdp(encoded.query, encoded.db, encoded.master,
                                encoded.constraints),
                     "rcdp fe3sat");
      bool expected = ForallExistsBruteForce(instance.formula, instance.nx,
                                             instance.ny);
      outcome = std::string(verdict.complete ? "complete" : "incomplete") +
                (verdict.complete == expected ? " (matches QBF)"
                                              : " (MISMATCH!)");
    });
    table.AddRow({"fixed (Dm, V)  [Cor 3.7]", "Sigma2p-complete",
                  "forall-exists-3SAT family", outcome, FormatMs(ms)});
  }

  std::cout << "\n=== Table I: complexity of RCDP(L_Q, L_C) — reproduction "
               "===\n";
  table.Print(std::cout);
  std::cout << std::endl;
}

// ---------------------------------------------------------------------------
// Scaling series.

void BM_RcdpCqIndsCrm(benchmark::State& state) {
  CrmScenario crm = MakeCrm(static_cast<size_t>(state.range(0)));
  ConstraintSet inds = ValueOrDie(crm.IndConstraints(), "inds");
  AnyQuery q1 = ValueOrDie(crm.Q1(), "q1");
  for (auto _ : state) {
    auto verdict = DecideRcdp(q1, crm.db(), crm.master(), inds);
    CheckOk(verdict.status(), "decide");
    benchmark::DoNotOptimize(verdict->complete);
  }
}
BENCHMARK(BM_RcdpCqIndsCrm)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_RcdpCqCqCrm(benchmark::State& state) {
  CrmScenario crm = MakeCrm(static_cast<size_t>(state.range(0)));
  ConstraintSet v;
  v.Add(ValueOrDie(crm.Phi0(), "phi0"));
  AnyQuery q1 = ValueOrDie(crm.Q1(), "q1");
  for (auto _ : state) {
    auto verdict = DecideRcdp(q1, crm.db(), crm.master(), v);
    CheckOk(verdict.status(), "decide");
    benchmark::DoNotOptimize(verdict->complete);
  }
}
BENCHMARK(BM_RcdpCqCqCrm)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_RcdpUcqCrm(benchmark::State& state) {
  CrmScenario crm = MakeCrm(static_cast<size_t>(state.range(0)));
  ConstraintSet v;
  v.Add(ValueOrDie(crm.Phi0(), "phi0"));
  AnyQuery ucq = CrmUcq(crm);
  for (auto _ : state) {
    auto verdict = DecideRcdp(ucq, crm.db(), crm.master(), v);
    CheckOk(verdict.status(), "decide");
    benchmark::DoNotOptimize(verdict->complete);
  }
}
BENCHMARK(BM_RcdpUcqCrm)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

/// Combined complexity: the ∀∃3SAT family grows the query while Dm and
/// V stay fixed — the Σ₂ᵖ blow-up lives in the query size.
void BM_RcdpForallExists3Sat(benchmark::State& state) {
  Rng rng(42);
  ForallExists3SatInstance instance;
  instance.nx = static_cast<size_t>(state.range(0));
  instance.ny = static_cast<size_t>(state.range(0));
  instance.formula =
      RandomCnf(instance.nx + instance.ny, instance.nx + instance.ny, &rng);
  auto encoded = ValueOrDie(EncodeForallExists3Sat(instance), "encode");
  for (auto _ : state) {
    auto verdict = DecideRcdp(encoded.query, encoded.db, encoded.master,
                              encoded.constraints);
    CheckOk(verdict.status(), "decide");
    benchmark::DoNotOptimize(verdict->complete);
  }
}
BENCHMARK(BM_RcdpForallExists3Sat)->DenseRange(1, 3, 1);

}  // namespace table1
}  // namespace relcomp

int main(int argc, char** argv) {
  relcomp::table1::PrintTableOne();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
