#!/usr/bin/env bash
# Full local gate: configure + build + test the default preset, then the
# asan preset (Debug, ASan+UBSan, recover disabled), then the tsan
# preset (ThreadSanitizer over the concurrency-sensitive suites — the
# parallel-search determinism sweep, the budget-exhaustion matrix, the
# fault-injection sweep, the eval equivalence tests, the network
# front end's wire/socket suites and the concurrent verdict-cache
# hammer; the tsan test preset carries the filter), then the
# standalone ubsan preset (pure UBSan over the full suite). Run from
# anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
  echo "== $*"
  "$@"
}

for preset in default asan tsan ubsan; do
  run cmake --preset "$preset"
  run cmake --build --preset "$preset" -j "$(nproc)"
  run ctest --preset "$preset"
done

# Crash-recovery stage: the durable-store and decision-service suites
# (ctest label "recovery") once more under the asan build — the
# kill/restart sweeps must be clean not just green.
run ctest --test-dir build-asan -L recovery --output-on-failure

# Network stage: the wire-format hostile corpus and the live-socket
# end-to-end suites (ctest label "net") once more under the tsan build
# — the poll(2) event loop, the client retry path and the kill/restart
# sweeps must be race-free, not just green.
run ctest --test-dir build-tsan -L net --output-on-failure

# Fabric stage: the sharded-fabric suites (ctest label "fabric") once
# more under the asan build — the kill-any-single-server sweeps, shard
# adoption, and the ring codec churn sockets, threads, and stores at
# once, so they must be clean, not just green.
run ctest --test-dir build-asan -L fabric --output-on-failure

# Chaos stage: the planned-handoff harness (ctest label "chaos") once
# more under the asan build — kills at every handoff stage, torn
# frames, stalled successors, and the handoff/adopt race reopen stores
# and sockets mid-protocol, so they must be clean, not just green.
# (The tsan preset's name filter already covers the Fabric* suites.)
run ctest --test-dir build-asan -L chaos --output-on-failure

# Storage-fault stage: the kill-the-disk harness (ctest label
# "storagefault") once more under the asan build — every fault kind at
# every store-op ordinal tears temp files, journals, and renames, so
# recovery must be clean, not just green. (The tsan preset's name
# filter covers the StorageFaultConcurrency suite.)
run ctest --test-dir build-asan -L storagefault --output-on-failure

# Incremental stage: the delta/fingerprint/certificate suites and the
# verdict cache (ctest label "incremental") once more under the asan
# build — the certificate codec parses untrusted store bytes and the
# recertify ≡ from-scratch sweeps churn overlay/arena memory, so they
# must be clean, not just green.
run ctest --test-dir build-asan -L incremental --output-on-failure

# Id-plane core stage: the relational/eval substrate suites (ctest
# label "core") — arena allocator, adaptive radix index, composite
# lazy-build races, byte-cap exhaustion, and the matcher equivalence
# fuzzers — once more on the default build as a fast smoke of the
# ablation toggles' shared plumbing.
run ctest --test-dir build -L core --output-on-failure

echo "All checks passed."
