#include <gtest/gtest.h>

#include "constraints/integrity_constraints.h"
#include "incomplete/vtable.h"
#include "query/parser.h"

namespace relcomp {
namespace {

class VTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = std::make_shared<Schema>();
    ASSERT_TRUE(schema->AddRelation("R", 2).ok());
    ASSERT_TRUE(schema
                    ->AddRelation(RelationSchema(
                        "B", {AttributeDef::Over("b", Domain::Boolean()),
                              AttributeDef::Inf("v")}))
                    .ok());
    schema_ = schema;
    auto master_schema = std::make_shared<Schema>();
    ASSERT_TRUE(master_schema->AddRelation("M", 1).ok());
    master_schema_ = master_schema;
    master_ = Database(master_schema_);
  }

  std::shared_ptr<const Schema> schema_;
  std::shared_ptr<const Schema> master_schema_;
  Database master_;
};

TEST_F(VTableTest, InsertValidates) {
  VDatabase vdb(schema_);
  EXPECT_TRUE(vdb.Insert("R", {Term::ConstInt(1), Term::Var("x")}).ok());
  EXPECT_FALSE(vdb.Insert("nope", {Term::ConstInt(1)}).ok());
  EXPECT_FALSE(vdb.Insert("R", {Term::ConstInt(1)}).ok());  // arity
  // Constant outside a finite column domain.
  EXPECT_FALSE(vdb.Insert("B", {Term::ConstInt(7), Term::Var("y")}).ok());
  EXPECT_FALSE(vdb.IsGround());
}

TEST_F(VTableTest, NullLabelsAndDomains) {
  VDatabase vdb(schema_);
  ASSERT_TRUE(vdb.Insert("R", {Term::Var("x"), Term::Var("y")}).ok());
  ASSERT_TRUE(vdb.Insert("B", {Term::Var("f"), Term::Var("x")}).ok());
  auto labels = vdb.NullLabels();
  EXPECT_EQ(labels, (std::vector<std::string>{"x", "y", "f"}));
  auto domains = vdb.NullDomains();
  EXPECT_TRUE(domains["x"]->is_infinite());
  EXPECT_TRUE(domains["f"]->is_finite());  // Boolean column
}

TEST_F(VTableTest, WorldEnumerationCountsAndCollapse) {
  VDatabase vdb(schema_);
  // Two tuples sharing null x: worlds = |universe| (for x) × 2 (for f,
  // Boolean column); the shared label takes one value per world.
  ASSERT_TRUE(vdb.Insert("R", {Term::ConstInt(1), Term::Var("x")}).ok());
  ASSERT_TRUE(vdb.Insert("R", {Term::Var("x"), Term::ConstInt(1)}).ok());
  ASSERT_TRUE(vdb.Insert("B", {Term::Var("f"), Term::ConstInt(9)}).ok());
  std::vector<Value> universe = {Value::Int(1), Value::Int(2),
                                 Value::Int(3)};
  size_t worlds = 0;
  size_t collapsed = 0;
  ASSERT_TRUE(ForEachWorld(vdb, universe,
                           [&](const Database& world, const Bindings& nu) {
                             ++worlds;
                             // x = 1 collapses R(1, x) and R(x, 1).
                             if (world.Get("R").size() == 1) ++collapsed;
                             EXPECT_TRUE(nu.Has("x"));
                             EXPECT_TRUE(nu.Has("f"));
                             return true;
                           })
                  .ok());
  EXPECT_EQ(worlds, 6u);     // 3 × 2
  EXPECT_EQ(collapsed, 2u);  // x = 1, both f values
}

TEST_F(VTableTest, CertainAndPossibleAnswers) {
  VDatabase vdb(schema_);
  ASSERT_TRUE(vdb.Insert("R", {Term::ConstInt(1), Term::Var("x")}).ok());
  ASSERT_TRUE(vdb.Insert("R", {Term::ConstInt(2), Term::ConstInt(5)}).ok());
  auto q = ParseQuery("Q(a) :- R(a, b).", QueryLanguage::kCq);
  ASSERT_TRUE(q.ok());
  std::vector<Value> universe = {Value::Int(5), Value::Int(6)};
  auto certain = CertainAnswers(*q, vdb, universe);
  ASSERT_TRUE(certain.ok());
  // (1) and (2) hold in every world regardless of x.
  EXPECT_EQ(certain->size(), 2u);

  auto q2 = ParseQuery("Q(a) :- R(a, b), b = 5.", QueryLanguage::kCq);
  ASSERT_TRUE(q2.ok());
  auto certain2 = CertainAnswers(*q2, vdb, universe);
  auto possible2 = PossibleAnswers(*q2, vdb, universe);
  ASSERT_TRUE(certain2.ok());
  ASSERT_TRUE(possible2.ok());
  // (2) certain; (1) only when x grounds to 5.
  EXPECT_EQ(certain2->size(), 1u);
  EXPECT_TRUE(certain2->Contains(Tuple::Ints({2})));
  EXPECT_EQ(possible2->size(), 2u);
}

TEST_F(VTableTest, GroundInstanceHasSingleWorldSemantics) {
  VDatabase vdb(schema_);
  ASSERT_TRUE(vdb.Insert("R", {Term::ConstInt(1), Term::ConstInt(2)}).ok());
  EXPECT_TRUE(vdb.IsGround());
  auto q = ParseQuery("Q(a, b) :- R(a, b).", QueryLanguage::kCq);
  ASSERT_TRUE(q.ok());
  std::vector<Value> universe = {Value::Int(0)};
  auto certain = CertainAnswers(*q, vdb, universe);
  auto possible = PossibleAnswers(*q, vdb, universe);
  ASSERT_TRUE(certain.ok());
  ASSERT_TRUE(possible.ok());
  EXPECT_EQ(*certain, *possible);
  EXPECT_EQ(certain->size(), 1u);
}

TEST_F(VTableTest, CompletenessAcrossWorlds) {
  // V: π0(R) ⊆ M with M = {1}. v-database: R(⊥x, 7).
  //  * world x = 1: partially closed; Q(a) :- R(a, b) answers {1};
  //    further additions must keep column 0 in {1} — complete.
  //  * world x = 2: not partially closed.
  ASSERT_TRUE(master_.Insert("M", Tuple::Ints({1})).ok());
  ConstraintSet v;
  auto ind = MakeIndToMaster(*schema_, "R", {0}, "M", {0});
  ASSERT_TRUE(ind.ok());
  v.Add(*ind);
  VDatabase vdb(schema_);
  ASSERT_TRUE(vdb.Insert("R", {Term::Var("x"), Term::ConstInt(7)}).ok());
  auto q = ParseQuery("Q(a) :- R(a, b).", QueryLanguage::kCq);
  ASSERT_TRUE(q.ok());
  std::vector<Value> universe = {Value::Int(1), Value::Int(2)};
  auto report = DecideRcdpOnWorlds(*q, vdb, master_, v, universe);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->worlds, 2u);
  EXPECT_EQ(report->complete, 1u);
  EXPECT_EQ(report->not_closed, 1u);
  EXPECT_EQ(report->incomplete, 0u);
  EXPECT_TRUE(report->CertainlyComplete());

  // Adding a second column null makes the head variable... the head is
  // column 0; Q(a,b) exposes the unconstrained column: every closed
  // world is now incomplete.
  auto q2 = ParseQuery("Q(a, b) :- R(a, b).", QueryLanguage::kCq);
  ASSERT_TRUE(q2.ok());
  auto report2 = DecideRcdpOnWorlds(*q2, vdb, master_, v, universe);
  ASSERT_TRUE(report2.ok());
  EXPECT_EQ(report2->complete, 0u);
  EXPECT_EQ(report2->incomplete, 1u);
  EXPECT_FALSE(report2->PossiblyComplete());
}

TEST_F(VTableTest, DefaultUniverseCoversConstantsPlusFresh) {
  VDatabase vdb(schema_);
  ASSERT_TRUE(vdb.Insert("R", {Term::ConstInt(3), Term::Var("x")}).ok());
  ASSERT_TRUE(master_.Insert("M", Tuple::Ints({1})).ok());
  auto q = ParseQuery("Q(a) :- R(a, b), a = 9.", QueryLanguage::kCq);
  ASSERT_TRUE(q.ok());
  std::vector<Value> universe = DefaultNullUniverse(vdb, master_, *q, 2);
  std::set<Value> set(universe.begin(), universe.end());
  EXPECT_TRUE(set.count(Value::Int(3)) > 0);
  EXPECT_TRUE(set.count(Value::Int(1)) > 0);
  EXPECT_TRUE(set.count(Value::Int(9)) > 0);
  EXPECT_EQ(universe.size(), 5u);  // 3 constants + 2 fresh
}

}  // namespace
}  // namespace relcomp
