// The consistent-hash ring: placement determinism (the property every
// durable job's life depends on), balance, epoch/endpoint independence,
// and the relcomp-fabric/1 codec against a hostile corpus — the record
// crosses the wire and rests on disk, so Deserialize must reject every
// malformed byte string with a typed error, never a crash or an
// unbounded allocation.

#include "fabric/ring.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/str.h"

namespace relcomp {
namespace {

std::vector<std::string> Endpoints(size_t n) {
  std::vector<std::string> out;
  for (size_t i = 0; i < n; ++i) out.push_back(StrCat("unix:/m", i, ".sock"));
  return out;
}

TEST(FabricRingTest, PlacementIsDeterministic) {
  FabricRing a = FabricRing::Make(Endpoints(3));
  FabricRing b = FabricRing::Make(Endpoints(3));
  for (int i = 0; i < 500; ++i) {
    const std::string key = StrCat("relcheck-", i, "-q", i % 7);
    EXPECT_EQ(a.ShardForKey(key), b.ShardForKey(key)) << key;
    EXPECT_LT(a.ShardForKey(key), 3u);
  }
}

TEST(FabricRingTest, PlacementIgnoresEndpointsAndEpoch) {
  // key → shard must survive every reassignment: jobs are durable
  // files inside their shard directory, and the mapping that placed
  // them can never drift.
  FabricRing before = FabricRing::Make(Endpoints(3));
  FabricRing after = before;
  after.epoch = 17;
  after.endpoints[0] = "";                      // owner died
  after.endpoints[1] = "unix:/elsewhere.sock";  // shard adopted
  for (int i = 0; i < 500; ++i) {
    const std::string key = StrCat("job-", i);
    EXPECT_EQ(before.ShardForKey(key), after.ShardForKey(key)) << key;
  }
}

TEST(FabricRingTest, PlacementDependsOnSeedAndVnodes) {
  FabricRing base = FabricRing::Make(Endpoints(3));
  FabricRing reseeded = FabricRing::Make(Endpoints(3), /*seed=*/12345);
  FabricRing revnoded =
      FabricRing::Make(Endpoints(3), FabricRing::kDefaultSeed, /*vnodes=*/7);
  size_t moved_seed = 0;
  size_t moved_vnodes = 0;
  for (int i = 0; i < 500; ++i) {
    const std::string key = StrCat("job-", i);
    if (base.ShardForKey(key) != reseeded.ShardForKey(key)) ++moved_seed;
    if (base.ShardForKey(key) != revnoded.ShardForKey(key)) ++moved_vnodes;
  }
  // A different placement contract is a different fabric.
  EXPECT_GT(moved_seed, 0u);
  EXPECT_GT(moved_vnodes, 0u);
}

TEST(FabricRingTest, KeysBalanceAcrossShards) {
  FabricRing ring = FabricRing::Make(Endpoints(3));
  std::map<size_t, size_t> counts;
  const int kKeys = 3000;
  for (int i = 0; i < kKeys; ++i) {
    ++counts[ring.ShardForKey(StrCat("relcheck-", i, "-q1"))];
  }
  ASSERT_EQ(counts.size(), 3u) << "some shard received no keys";
  for (const auto& [shard, count] : counts) {
    // 64 vnodes per shard keeps the spread well inside 2x of fair.
    EXPECT_GT(count, kKeys / 6) << "shard " << shard << " starved";
    EXPECT_LT(count, kKeys * 2 / 3) << "shard " << shard << " overloaded";
  }
}

TEST(FabricRingTest, SingletonRoutesEverythingToTheOneShard) {
  FabricRing ring = FabricRing::Singleton("unix:/solo.sock");
  ASSERT_EQ(ring.num_shards(), 1u);
  EXPECT_EQ(ring.endpoints[0], "unix:/solo.sock");
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ring.ShardForKey(StrCat("k", i)), 0u);
  }
}

TEST(FabricRingTest, OrphanedShardsListsUnownedOnly) {
  FabricRing ring = FabricRing::Make(Endpoints(4));
  EXPECT_TRUE(ring.OrphanedShards().empty());
  ring.endpoints[1].clear();
  ring.endpoints[3].clear();
  EXPECT_EQ(ring.OrphanedShards(), (std::vector<size_t>{1, 3}));
}

TEST(FabricRingTest, SerializeRoundTrips) {
  FabricRing ring = FabricRing::Make(Endpoints(3), /*seed=*/99, /*vnodes=*/8);
  ring.epoch = 42;
  ring.endpoints[1] = "";  // orphaned shards must survive the codec
  auto parsed = FabricRing::Deserialize(ring.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->epoch, 42u);
  EXPECT_EQ(parsed->seed, 99u);
  EXPECT_EQ(parsed->vnodes, 8u);
  EXPECT_EQ(parsed->endpoints, ring.endpoints);
  EXPECT_EQ(parsed->Serialize(), ring.Serialize());
}

TEST(FabricRingTest, RoundTripPreservesPlacement) {
  FabricRing ring = FabricRing::Make(Endpoints(2));
  auto parsed = FabricRing::Deserialize(ring.Serialize());
  ASSERT_TRUE(parsed.ok());
  for (int i = 0; i < 200; ++i) {
    const std::string key = StrCat("job-", i);
    EXPECT_EQ(ring.ShardForKey(key), parsed->ShardForKey(key));
  }
}

TEST(FabricRingTest, DeserializeRejectsHostileCorpus) {
  const std::string good = FabricRing::Make(Endpoints(2)).Serialize();
  const std::vector<std::string> corpus = {
      "",
      "garbage",
      "relcomp-fabric/2 epoch 0 seed 1 vnodes 4 shards 1 1:a",  // version
      "relcomp-fabric/1",                                        // truncated
      "relcomp-fabric/1 epoch",                                  // no value
      "relcomp-fabric/1 epoch x seed 1 vnodes 4 shards 1 1:a",   // non-num
      "relcomp-fabric/1 seed 1 epoch 0 vnodes 4 shards 1 1:a",   // disorder
      "relcomp-fabric/1 epoch 0 seed 1 vnodes 4 shards 2 1:a",   // missing ep
      "relcomp-fabric/1 epoch 0 seed 1 vnodes 4 shards 1 9:a",   // short seg
      "relcomp-fabric/1 epoch 0 seed 1 vnodes 4 shards 1 1:ab",  // trailing
      good + "x",                                                // trailing
      // Hostile sizes must be refused before they size anything.
      "relcomp-fabric/1 epoch 0 seed 1 vnodes 4 shards 99999999 1:a",
      "relcomp-fabric/1 epoch 0 seed 1 vnodes 99999999 shards 1 1:a",
      StrCat("relcomp-fabric/1 epoch 0 seed 1 vnodes 4 shards 1 9999:",
             std::string(9999, 'a')),  // endpoint over the length cap
  };
  for (const std::string& text : corpus) {
    auto parsed = FabricRing::Deserialize(text);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << text.substr(0, 60);
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
          << text.substr(0, 60);
    }
  }
}

TEST(FabricRingTest, DeserializeAcceptsEmptyEndpoints) {
  // "" endpoints are legal (no live owner) — only oversize ones are not.
  FabricRing ring = FabricRing::Make(Endpoints(2));
  ring.endpoints[0].clear();
  ring.endpoints[1].clear();
  auto parsed = FabricRing::Deserialize(ring.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->OrphanedShards(), (std::vector<size_t>{0, 1}));
}

TEST(FabricRingTest, HashIsSeededFnv) {
  // Pin the hash: changing it re-places every key of every existing
  // fabric root, which the placement contract forbids.
  EXPECT_NE(FabricRing::Hash(0, "a"), FabricRing::Hash(1, "a"));
  EXPECT_NE(FabricRing::Hash(0, "a"), FabricRing::Hash(0, "b"));
  EXPECT_EQ(FabricRing::Hash(7, "shard-0#1"), FabricRing::Hash(7, "shard-0#1"));
}

}  // namespace
}  // namespace relcomp
