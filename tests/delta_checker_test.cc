#include <gtest/gtest.h>

#include "completeness/brute_force.h"
#include "constraints/constraint_check.h"
#include "constraints/integrity_constraints.h"
#include "query/parser.h"
#include "workload/generators.h"

namespace relcomp {
namespace {

class DeltaCheckerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db_schema = std::make_shared<Schema>();
    ASSERT_TRUE(db_schema->AddRelation("R", 2).ok());
    ASSERT_TRUE(db_schema->AddRelation("S", 1).ok());
    db_schema_ = db_schema;
    auto master_schema = std::make_shared<Schema>();
    ASSERT_TRUE(master_schema->AddRelation("M", 1).ok());
    master_schema_ = master_schema;
    db_ = Database(db_schema_);
    master_ = Database(master_schema_);
  }

  std::shared_ptr<const Schema> db_schema_;
  std::shared_ptr<const Schema> master_schema_;
  Database db_;
  Database master_;
};

TEST_F(DeltaCheckerTest, AgreesWithFullCheckOnSingleDeltas) {
  ASSERT_TRUE(master_.Insert("M", Tuple::Ints({1})).ok());
  ASSERT_TRUE(db_.Insert("R", Tuple::Ints({1, 2})).ok());
  ConstraintSet v;
  auto ind = MakeIndToMaster(*db_schema_, "R", {0}, "M", {0});
  ASSERT_TRUE(ind.ok());
  v.Add(*ind);
  auto pair_cc = ParseConjunctiveQuery(
      "amo() :- R(x, y1), R(x, y2), y1 != y2.");
  ASSERT_TRUE(pair_cc.ok());
  v.Add(ContainmentConstraint::SubsetOfEmpty(AnyQuery::Cq(*pair_cc)));

  auto checker = DeltaConstraintChecker::Make(v, db_schema_);
  ASSERT_TRUE(checker.ok()) << checker.status().ToString();
  auto session = checker->NewSession(db_, master_);

  struct Case {
    Tuple tuple;
    bool expect_ok;
  };
  Case cases[] = {
      {Tuple::Ints({1, 2}), true},   // duplicate of existing: no-op
      {Tuple::Ints({1, 3}), false},  // violates the at-most-one pair CC
      {Tuple::Ints({9, 9}), false},  // 9 ∉ M: violates the IND
  };
  for (const Case& c : cases) {
    std::vector<std::pair<std::string, Tuple>> delta = {{"R", c.tuple}};
    auto incremental = session.Check(delta);
    ASSERT_TRUE(incremental.ok()) << incremental.status().ToString();
    // Reference: full re-check on a copy.
    Database extended = db_;
    extended.InsertUnchecked("R", c.tuple);
    auto full = Satisfies(v, extended, master_);
    ASSERT_TRUE(full.ok());
    EXPECT_EQ(*incremental, *full) << c.tuple.ToString();
    EXPECT_EQ(*incremental, c.expect_ok) << c.tuple.ToString();
  }
}

TEST_F(DeltaCheckerTest, SessionRollsBackBetweenChecks) {
  ASSERT_TRUE(master_.Insert("M", Tuple::Ints({1})).ok());
  ConstraintSet v;
  auto ind = MakeIndToMaster(*db_schema_, "R", {0}, "M", {0});
  ASSERT_TRUE(ind.ok());
  v.Add(*ind);
  auto checker = DeltaConstraintChecker::Make(v, db_schema_);
  ASSERT_TRUE(checker.ok());
  auto session = checker->NewSession(db_, master_);
  // A violating delta must not leak into the next check.
  std::vector<std::pair<std::string, Tuple>> bad = {
      {"R", Tuple::Ints({9, 9})}};
  auto first = session.Check(bad);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(*first);
  std::vector<std::pair<std::string, Tuple>> good = {
      {"R", Tuple::Ints({1, 1})}};
  auto second = session.Check(good);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(*second);
  // And repeating the same good delta still works (state restored).
  auto third = session.Check(good);
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(*third);
}

TEST_F(DeltaCheckerTest, RefusesUndecidableConstraintLanguages) {
  ConditionalInd cind("R", {0}, {}, "S", {0}, {});
  auto fo_cc = cind.ToContainmentConstraint(*db_schema_);
  ASSERT_TRUE(fo_cc.ok());
  ConstraintSet v;
  v.Add(*fo_cc);
  auto checker = DeltaConstraintChecker::Make(v, db_schema_);
  EXPECT_FALSE(checker.ok());
}

TEST_F(DeltaCheckerTest, RandomAgreementSweep) {
  Rng rng(2024);
  RandomInstanceOptions options;
  options.num_relations = 2;
  options.value_pool = 3;
  options.tuples_per_relation = 3;
  for (int round = 0; round < 10; ++round) {
    auto schema = RandomSchema(options, &rng);
    auto master_schema = std::make_shared<Schema>();
    ASSERT_TRUE(master_schema->AddRelation("M", 1).ok());
    Database master(master_schema);
    master.InsertUnchecked("M", Tuple::Ints({0}));
    master.InsertUnchecked("M", Tuple::Ints({1}));
    auto v = RandomIndConstraints(*schema, *master_schema, 2, &rng);
    ASSERT_TRUE(v.ok());
    // Draw a base database that satisfies V.
    Database base(schema);
    auto closed = Satisfies(*v, base, master);
    ASSERT_TRUE(closed.ok());
    ASSERT_TRUE(*closed);  // empty base always satisfies INDs
    auto checker = DeltaConstraintChecker::Make(*v, schema);
    ASSERT_TRUE(checker.ok());
    auto session = checker->NewSession(base, master);
    auto pool = AllTuplesOver(*schema, {Value::Int(0), Value::Int(5)});
    for (const auto& [relation, tuple] : pool) {
      std::vector<std::pair<std::string, Tuple>> delta = {{relation, tuple}};
      auto incremental = session.Check(delta);
      ASSERT_TRUE(incremental.ok());
      Database extended = base;
      extended.InsertUnchecked(relation, tuple);
      auto full = Satisfies(*v, extended, master);
      ASSERT_TRUE(full.ok());
      EXPECT_EQ(*incremental, *full)
          << relation << tuple.ToString() << "\n" << v->ToString();
    }
  }
}

}  // namespace
}  // namespace relcomp
