#include <gtest/gtest.h>

#include "completeness/brute_force.h"
#include "completeness/rcdp.h"
#include "completeness/rcqp.h"
#include "constraints/integrity_constraints.h"
#include "query/parser.h"
#include "workload/generators.h"

namespace relcomp {
namespace {

/// Random sweep for the IND path of RCQP: the decider's exact verdict
/// must match bounded brute force whenever the bounded spaces line up,
/// and an Exists verdict must come with an RCDP-verified witness.
class RcqpIndPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RcqpIndPropertyTest, IndVerdictsAreConsistent) {
  Rng rng(GetParam() * 131);
  RandomInstanceOptions db_options;
  db_options.num_relations = 1;
  db_options.min_arity = 2;
  db_options.max_arity = 2;
  auto db_schema = RandomSchema(db_options, &rng);
  auto master_schema = std::make_shared<Schema>();
  ASSERT_TRUE(master_schema->AddRelation("M", 1).ok());

  RandomCqOptions cq_options;
  cq_options.num_atoms = 2;
  cq_options.num_variables = 2;
  cq_options.num_head_terms = 1;
  cq_options.value_pool = 2;

  int checked = 0;
  for (int attempt = 0; attempt < 30 && checked < 6; ++attempt) {
    Database master(master_schema);
    std::uniform_int_distribution<int64_t> value(0, 2);
    master.InsertUnchecked("M", Tuple({Value::Int(value(rng))}));
    auto constraints =
        RandomIndConstraints(*db_schema, *master_schema, 1, &rng);
    ASSERT_TRUE(constraints.ok());
    ConjunctiveQuery cq = RandomCq(*db_schema, cq_options, &rng);
    if (!cq.Validate(*db_schema).ok()) continue;
    AnyQuery q = AnyQuery::Cq(cq);

    auto verdict = DecideRcqp(q, db_schema, master, *constraints);
    ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
    ASSERT_TRUE(verdict->exhaustive);  // IND path is always exact

    if (verdict->exists && verdict->witness.has_value()) {
      auto recheck =
          DecideRcdp(q, *verdict->witness, master, *constraints);
      ASSERT_TRUE(recheck.ok()) << recheck.status().ToString();
      EXPECT_TRUE(recheck->complete)
          << cq.ToString() << "\nwitness:\n"
          << verdict->witness->ToString();
    }
    if (!verdict->exists) {
      // NotExists ⇒ the bounded brute force must not find a witness
      // either (its bounded space is a subset of "all databases").
      BruteForceOptions bf;
      bf.max_database_tuples = 1;
      bf.max_delta_tuples = 1;
      bf.extra_fresh = 2;
      auto brute = BruteForceRcqp(q, db_schema, master, *constraints, bf);
      ASSERT_TRUE(brute.ok()) << brute.status().ToString();
      // Caveat: brute force is bounded, so a witness IT considers
      // complete within its delta bound may still be incomplete in
      // general. Only check the sound direction: if brute force finds
      // no witness at all, fine; if it "finds" one, verify with the
      // exact decider before calling it a discrepancy.
      if (brute->exists && brute->witness.has_value()) {
        auto exact =
            DecideRcdp(q, *brute->witness, master, *constraints);
        ASSERT_TRUE(exact.ok());
        EXPECT_FALSE(exact->complete)
            << "brute-force witness refuted the exact NotExists verdict:\n"
            << cq.ToString() << "\n"
            << brute->witness->ToString();
      }
    }
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RcqpIndPropertyTest,
                         ::testing::Range(1, 13));

/// The chase-witness path: whenever the chase converges from the empty
/// database, RCQP must report Exists, and the witness verifies.
class RcqpChasePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RcqpChasePropertyTest, ChaseWitnessesAreVerified) {
  Rng rng(GetParam() * 977);
  auto db_schema = std::make_shared<Schema>();
  ASSERT_TRUE(db_schema->AddRelation("S", 1).ok());
  auto master_schema = std::make_shared<Schema>();
  ASSERT_TRUE(master_schema->AddRelation("M", 1).ok());
  Database master(master_schema);
  std::uniform_int_distribution<int64_t> value(0, 3);
  size_t master_size = 1 + static_cast<size_t>(value(rng)) % 3;
  for (size_t i = 0; i < master_size; ++i) {
    master.InsertUnchecked("M", Tuple({Value::Int(value(rng))}));
  }
  ConstraintSet v;
  auto ind = MakeIndToMaster(*db_schema, "S", {0}, "M", {0});
  ASSERT_TRUE(ind.ok());
  v.Add(*ind);
  // Bounded head variable: a complete database always exists, and the
  // chase from ∅ must find it.
  auto q = ParseQuery("Q(x) :- S(x).", QueryLanguage::kCq);
  ASSERT_TRUE(q.ok());

  Database empty(db_schema);
  auto chased = ChaseToCompleteness(*q, empty, master, v, 32);
  ASSERT_TRUE(chased.ok()) << chased.status().ToString();
  ASSERT_EQ(chased->verdict, Verdict::kComplete) << chased->ToString();
  // The chase result holds every master value in S.
  EXPECT_EQ(chased->db.Get("S").size(), master.Get("M").size());
  auto verdict = DecideRcqp(*q, db_schema, master, v);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict->exists);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RcqpChasePropertyTest,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace relcomp
