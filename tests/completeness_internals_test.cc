#include <gtest/gtest.h>

#include "completeness/active_domain.h"
#include "completeness/brute_force.h"
#include "completeness/valuation_search.h"
#include "constraints/integrity_constraints.h"
#include "query/parser.h"
#include "tableau/tableau.h"

namespace relcomp {
namespace {

// ---------------------------------------------------------------------------
// ActiveDomain.

TEST(ActiveDomainTest, MintsFreshValuesOutsideBase) {
  std::set<Value> base = {Value::Int(1), Value::Str("_new$0")};
  ActiveDomain adom = ActiveDomain::Build(base, 3);
  EXPECT_EQ(adom.base().size(), 2u);
  EXPECT_EQ(adom.fresh().size(), 3u);
  for (const Value& f : adom.fresh()) {
    EXPECT_EQ(base.count(f), 0u) << f.ToString();
    EXPECT_TRUE(adom.IsFresh(f));
  }
  // The colliding name "_new$0" was skipped, not reused.
  EXPECT_FALSE(adom.IsFresh(Value::Str("_new$0")));
}

TEST(ActiveDomainTest, CandidatesRespectFiniteDomains) {
  ActiveDomain adom = ActiveDomain::Build({Value::Int(7)}, 2);
  auto finite = adom.CandidatesFor(*Domain::Boolean());
  EXPECT_EQ(finite.size(), 2u);  // exactly {0, 1}, no fresh values
  auto infinite = adom.CandidatesFor(*Domain::Infinite());
  EXPECT_EQ(infinite.size(), 3u);  // base + 2 fresh
}

// ---------------------------------------------------------------------------
// ValuationEnumerator.

class ValuationSearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = std::make_shared<Schema>();
    ASSERT_TRUE(schema->AddRelation("R", 2).ok());
    ASSERT_TRUE(schema
                    ->AddRelation(RelationSchema(
                        "B", {AttributeDef::Over("b", Domain::Boolean()),
                              AttributeDef::Inf("v")}))
                    .ok());
    schema_ = schema;
  }

  TableauQuery Tableau(const std::string& text) {
    auto q = ParseConjunctiveQuery(text);
    EXPECT_TRUE(q.ok());
    auto t = TableauQuery::FromConjunctive(*q, *schema_);
    EXPECT_TRUE(t.ok());
    return *t;
  }

  size_t CountTotals(const TableauQuery& tableau, const ActiveDomain& adom,
                     ValuationEnumerator::Options options) {
    ValuationEnumerator enumerator(&tableau, &adom, options);
    size_t count = 0;
    EXPECT_TRUE(enumerator
                    .Enumerate(nullptr,
                               [&](const Bindings&) {
                                 ++count;
                                 return true;
                               })
                    .ok());
    return count;
  }

  std::shared_ptr<const Schema> schema_;
};

TEST_F(ValuationSearchTest, NaiveCountsFullProduct) {
  TableauQuery t = Tableau("Q(x) :- R(x, y).");
  ActiveDomain adom = ActiveDomain::Build({Value::Int(1), Value::Int(2)}, 2);
  ValuationEnumerator::Options naive;
  naive.pruned = false;
  naive.symmetry_break_fresh = false;
  // 2 vars × (2 base + 2 fresh) candidates = 16 totals.
  EXPECT_EQ(CountTotals(t, adom, naive), 16u);
}

TEST_F(ValuationSearchTest, SymmetryBreakingShrinksFreshChoices) {
  TableauQuery t = Tableau("Q(x) :- R(x, y).");
  ActiveDomain adom = ActiveDomain::Build({Value::Int(1)}, 2);
  ValuationEnumerator::Options options;  // pruned + symmetry break
  // Position 0: 1 base + 1 fresh; position 1: 1 base + 2 fresh.
  EXPECT_EQ(CountTotals(t, adom, options), 6u);
}

TEST_F(ValuationSearchTest, DisequalitiesPruneEagerly) {
  TableauQuery t = Tableau("Q(x) :- R(x, y), x != y.");
  ActiveDomain adom = ActiveDomain::Build({Value::Int(1), Value::Int(2)}, 0);
  ValuationEnumerator::Options options;
  options.symmetry_break_fresh = false;
  // 2×2 minus the two diagonal assignments.
  EXPECT_EQ(CountTotals(t, adom, options), 2u);
  // Naive mode delivers the same valid totals (validity at the leaf).
  ValuationEnumerator::Options naive;
  naive.pruned = false;
  naive.symmetry_break_fresh = false;
  EXPECT_EQ(CountTotals(t, adom, naive), 2u);
}

TEST_F(ValuationSearchTest, FiniteDomainVariablesUseTheirDomain) {
  TableauQuery t = Tableau("Q(b) :- B(b, v).");
  ActiveDomain adom =
      ActiveDomain::Build({Value::Int(7), Value::Int(8)}, 1);
  ValuationEnumerator::Options options;
  options.symmetry_break_fresh = false;
  // b ∈ {0,1} (Boolean column), v ∈ 2 base + 1 fresh.
  EXPECT_EQ(CountTotals(t, adom, options), 6u);
}

TEST_F(ValuationSearchTest, UnsatisfiableTableauYieldsNothing) {
  TableauQuery t = Tableau("Q() :- R(x, y), x = 1, x = 2.");
  ActiveDomain adom = ActiveDomain::Build({Value::Int(1)}, 1);
  EXPECT_EQ(CountTotals(t, adom, ValuationEnumerator::Options()), 0u);
}

TEST_F(ValuationSearchTest, BudgetSurfacesAsResourceExhausted) {
  TableauQuery t = Tableau("Q(x) :- R(x, y).");
  ActiveDomain adom = ActiveDomain::Build({Value::Int(1), Value::Int(2)}, 4);
  ValuationEnumerator::Options options;
  options.max_bindings = 3;
  ValuationEnumerator enumerator(&t, &adom, options);
  Status st = enumerator.Enumerate(nullptr,
                                   [](const Bindings&) { return true; });
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST_F(ValuationSearchTest, CandidateOverridesApply) {
  TableauQuery t = Tableau("Q(x) :- R(x, y).");
  ActiveDomain adom = ActiveDomain::Build({Value::Int(1), Value::Int(2)}, 2);
  std::map<std::string, std::vector<Value>> overrides;
  overrides["y"] = {Value::Int(9)};
  ValuationEnumerator::Options options;
  options.candidate_overrides = &overrides;
  options.symmetry_break_fresh = false;
  // x: 4 candidates; y: forced to the single override.
  EXPECT_EQ(CountTotals(t, adom, options), 4u);
}

TEST_F(ValuationSearchTest, CallerPruneCutsSubtrees) {
  TableauQuery t = Tableau("Q(x) :- R(x, y).");
  ActiveDomain adom = ActiveDomain::Build({Value::Int(1), Value::Int(2)}, 0);
  ValuationEnumerator enumerator(&t, &adom, ValuationEnumerator::Options());
  size_t totals = 0;
  ASSERT_TRUE(enumerator
                  .Enumerate(
                      [](const Bindings& partial) {
                        // Cut every subtree where x = 1.
                        std::optional<Value> x = partial.Get("x");
                        return x.has_value() && *x == Value::Int(1);
                      },
                      [&](const Bindings&) {
                        ++totals;
                        return true;
                      })
                  .ok());
  EXPECT_EQ(totals, 2u);  // only x = 2 survives, with 2 choices of y
  EXPECT_GT(enumerator.stats().prunes, 0u);
}

// ---------------------------------------------------------------------------
// Brute-force oracles.

TEST(BruteForceTest, TuplePoolRespectsDomains) {
  auto schema = std::make_shared<Schema>();
  ASSERT_TRUE(schema
                  ->AddRelation(RelationSchema(
                      "B", {AttributeDef::Over("b", Domain::Boolean()),
                            AttributeDef::Inf("v")}))
                  .ok());
  std::vector<Value> universe = {Value::Int(5), Value::Int(6)};
  auto pool = AllTuplesOver(*schema, universe);
  // b ∈ {0,1}, v ∈ {5,6} → 4 tuples.
  EXPECT_EQ(pool.size(), 4u);
  for (const auto& [relation, tuple] : pool) {
    EXPECT_TRUE(tuple[0] == Value::Int(0) || tuple[0] == Value::Int(1));
  }
}

TEST(BruteForceTest, RcdpFindsMinimalCounterexample) {
  auto schema = std::make_shared<Schema>();
  ASSERT_TRUE(schema->AddRelation("S", 1).ok());
  auto master_schema = std::make_shared<Schema>();
  ASSERT_TRUE(master_schema->AddRelation("M", 1).ok());
  Database db(schema);
  Database master(master_schema);
  ASSERT_TRUE(master.Insert("M", Tuple::Ints({1})).ok());
  ASSERT_TRUE(master.Insert("M", Tuple::Ints({2})).ok());
  ConstraintSet v;
  auto ind = MakeIndToMaster(*schema, "S", {0}, "M", {0});
  ASSERT_TRUE(ind.ok());
  v.Add(*ind);
  auto q = ParseQuery("Q(x) :- S(x).", QueryLanguage::kCq);
  ASSERT_TRUE(q.ok());
  BruteForceOptions options;
  options.max_delta_tuples = 1;
  auto result = BruteForceRcdp(*q, db, master, v, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->complete);
  ASSERT_TRUE(result->counterexample_delta.has_value());
  EXPECT_EQ(result->counterexample_delta->TotalTuples(), 1u);
}

TEST(BruteForceTest, RcqpFindsSingletonWitness) {
  auto schema = std::make_shared<Schema>();
  ASSERT_TRUE(schema->AddRelation("S", 1).ok());
  auto master_schema = std::make_shared<Schema>();
  ASSERT_TRUE(master_schema->AddRelation("M", 1).ok());
  Database master(master_schema);
  ASSERT_TRUE(master.Insert("M", Tuple::Ints({1})).ok());
  ConstraintSet v;
  auto ind = MakeIndToMaster(*schema, "S", {0}, "M", {0});
  ASSERT_TRUE(ind.ok());
  v.Add(*ind);
  auto q = ParseQuery("Q(x) :- S(x).", QueryLanguage::kCq);
  ASSERT_TRUE(q.ok());
  BruteForceOptions options;
  options.max_database_tuples = 1;
  options.max_delta_tuples = 1;
  auto result = BruteForceRcqp(*q, schema, master, v, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->exists);
  ASSERT_TRUE(result->witness.has_value());
  // The witness is {S(1)}: the only master-allowed tuple.
  EXPECT_TRUE(result->witness->Contains("S", Tuple::Ints({1})));
}

}  // namespace
}  // namespace relcomp
