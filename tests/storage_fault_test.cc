// The kill-the-disk harness: deterministic storage faults injected at
// every layer that touches the store's filesystem environment.
//
//  * FsEnv / StorageFaultPlan — ordinal addressing, site filters, and
//    the lying-disk fault kinds (short write, lost append, lost
//    rename).
//  * CheckpointStore — the health machine: transient failures degrade,
//    fsync failures close the gate (read-only, refusals without I/O),
//    and ONLY a successful probe heals.
//  * DecisionService — degraded mode: durable admission shed typed,
//    verdict-cache hits served ephemerally, running jobs finishing in
//    memory bit-for-bit, and the background prober self-healing.
//  * The sweeps — a fault of every kind at every matching store-op
//    ordinal, followed by a clean restart: verdicts bit-for-bit vs the
//    unfaulted run, zero corrupt records ever loaded.
//  * FabricMember — the health RPC, client steering, self-eviction of
//    a sick shard to a healthy peer, give-up-tenure on a dead disk,
//    and a degraded member still answering verdict-cache hits.

#include <gtest/gtest.h>
#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "completeness/rcdp.h"
#include "fabric/fabric_client.h"
#include "fabric/member.h"
#include "fabric/ring.h"
#include "net/client.h"
#include "net/wire.h"
#include "service/checkpoint_store.h"
#include "service/decision_service.h"
#include "spec/spec_parser.h"
#include "util/fs_env.h"
#include "util/str.h"

namespace relcomp {
namespace {

std::string FreshDir(const char* tag) {
  static int counter = 0;
  return StrCat(::testing::TempDir(), "/relcomp_sf_", ::getpid(), "_", tag,
                "_", counter++);
}

std::string FreshSocket(const char* tag) {
  static int counter = 0;
  return StrCat("unix:", ::testing::TempDir(), "/relcomp_sf_", ::getpid(),
                "_", tag, "_", counter++, ".sock");
}

/// The service tests' far-corner family, sized to order: S holds every
/// pair over {0..max_x} x {0..max_y} except the corner, so the search
/// walks essentially the whole valuation space before deciding — room
/// to slice, checkpoint, and lose the disk.
std::string CornerSpec(int max_x, int max_y) {
  std::string s = "relation S(a, b)\nmaster relation M(m)\n";
  for (int x = 0; x <= max_x; ++x) {
    for (int y = 0; y <= max_y; ++y) {
      if (x == max_x && y == max_y) continue;
      s += StrCat("fact S(", x, ", ", y, ")\n");
    }
  }
  for (int m = 0; m <= max_x; ++m) s += StrCat("master fact M(", m, ")\n");
  s += "constraint c0(x) :- S(x, y) |= M[0]\n";
  s += "query cq Q(x, y) :- S(x, y)\n";
  return s;
}

JobSpec MakeJob(const std::string& spec, size_t threads = 1,
                size_t slice = 0) {
  JobSpec job;
  job.kind = JobKind::kRcdp;
  job.spec_text = spec;
  job.num_threads = threads;
  job.slice_steps = slice;
  return job;
}

/// The oracle: canonical evidence of an uninterrupted direct run.
std::string DirectRcdpEvidence(const std::string& spec_text,
                               size_t threads = 1) {
  auto spec = ParseCompletenessSpec(spec_text);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  RcdpOptions options;
  options.num_threads = threads;
  auto r = DecideRcdp(spec->queries[0], spec->db, spec->master,
                      spec->constraints, options);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return StrCat(VerdictToString(r->verdict), "|",
                r->counterexample_delta.has_value()
                    ? r->counterexample_delta->ToString()
                    : std::string("<none>"),
                "|",
                r->new_answer.has_value() ? r->new_answer->ToString()
                                          : std::string("<none>"));
}

SearchCheckpoint MakeCkpt(size_t rank) {
  SearchCheckpoint ckpt;
  ckpt.decider = "rcdp";
  ckpt.disjunct = 1;
  ckpt.rank = rank;
  ckpt.fingerprint = 0xfeedfacecafebeefull;
  ckpt.payload = "payload";
  return ckpt;
}

StorageFaultPlan Plan(StorageFaultKind kind, uint64_t at,
                      const std::string& site = std::string()) {
  StorageFaultPlan plan;
  plan.kind = kind;
  plan.at = at;
  plan.site = site;
  return plan;
}

StorageFaultPlan EveryPlan(StorageFaultKind kind, uint64_t every,
                           const std::string& site = std::string()) {
  StorageFaultPlan plan;
  plan.kind = kind;
  plan.every = every;
  plan.site = site;
  return plan;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// ---------------------------------------------------------------------------
// The environment itself: ordinal addressing and the lying-disk kinds.

TEST(StorageFaultEnvTest, OrdinalCountsOnlyKindAndSiteMatchingOps) {
  FsEnv env;
  env.set_fault_plan(Plan(StorageFaultKind::kFsyncFail, /*at=*/2,
                          /*site=*/"journal"));
  const std::string path = StrCat(::testing::TempDir(), "/relcomp_sf_env_",
                                  ::getpid(), "_ordinal");
  int fd = env.Open("journal", path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                    0644);
  ASSERT_GE(fd, 0);
  // An open is never an fsync match; a record-site fsync fails the
  // site filter; only journal fsyncs count toward `at`.
  EXPECT_EQ(env.Fsync("record.ckpt", fd), 0);  // site mismatch: no count
  EXPECT_EQ(env.Fsync("journal", fd), 0);      // match #1: below `at`
  errno = 0;
  EXPECT_EQ(env.Fsync("journal", fd), -1);     // match #2: fires
  EXPECT_EQ(errno, EIO);
  EXPECT_EQ(env.Fsync("journal", fd), 0);      // `at` is one-shot
  ::close(fd);
  env.Unlink("gc", path.c_str());
  EXPECT_EQ(env.faults_injected(), 1u);
  EXPECT_EQ(env.last_fault_site(), "journal");
}

TEST(StorageFaultEnvTest, ShortWriteLandsExactlyThePrefix) {
  FsEnv env;
  StorageFaultPlan plan = Plan(StorageFaultKind::kShortWrite, 1);
  plan.short_bytes = 3;
  env.set_fault_plan(plan);
  const std::string path = StrCat(::testing::TempDir(), "/relcomp_sf_env_",
                                  ::getpid(), "_short");
  int fd = env.Open("x", path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  errno = 0;
  EXPECT_EQ(env.Write("x", fd, "abcdef", 6), 3);
  EXPECT_EQ(errno, ENOSPC);
  ::close(fd);
  // The prefix genuinely landed — the torn tail later layers must eat.
  EXPECT_EQ(ReadFile(path), "abc");
  ::unlink(path.c_str());
}

TEST(StorageFaultEnvTest, LostAppendAndLostRenameLieAboutSuccess) {
  FsEnv env;
  const std::string a = StrCat(::testing::TempDir(), "/relcomp_sf_env_",
                               ::getpid(), "_lie_a");
  const std::string b = StrCat(::testing::TempDir(), "/relcomp_sf_env_",
                               ::getpid(), "_lie_b");
  env.set_fault_plan(Plan(StorageFaultKind::kLostAppend, 1));
  int fd = env.Open("x", a.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(env.Write("x", fd, "gone", 4), 4);  // claims success
  ::close(fd);
  EXPECT_EQ(ReadFile(a), "");  // ...wrote nothing

  env.set_fault_plan(Plan(StorageFaultKind::kLostRename, 1));
  EXPECT_EQ(env.Rename("x", a.c_str(), b.c_str()), 0);  // claims success
  EXPECT_EQ(::access(a.c_str(), F_OK), 0);   // source still there
  EXPECT_NE(::access(b.c_str(), F_OK), 0);   // target never appeared
  ::unlink(a.c_str());
}

// ---------------------------------------------------------------------------
// The store's health machine.

TEST(StorageFaultStoreTest, WriteFailureDegradesAndOnlyAProbeHeals) {
  FsEnv env;
  CheckpointStoreOptions options;
  options.fs_env = &env;
  auto store = CheckpointStore::Open(FreshDir("degrade"), options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  env.set_fault_plan(Plan(StorageFaultKind::kEio, 1, "record"));
  EXPECT_FALSE((*store)->PersistJob("a", "payload").ok());
  EXPECT_EQ((*store)->health(), StoreHealth::kDegraded);
  EXPECT_GE((*store)->health_report().write_failures, 1u);

  // A lucky write does NOT heal: no degraded→healthy flap without an
  // actual probe success.
  ASSERT_TRUE((*store)->PersistJob("a", "payload").ok());
  EXPECT_EQ((*store)->health(), StoreHealth::kDegraded);

  ASSERT_TRUE((*store)->ProbeHealth().ok());
  EXPECT_EQ((*store)->health(), StoreHealth::kHealthy);
  const StoreHealthReport report = (*store)->health_report();
  EXPECT_GE(report.probes_attempted, 1u);
  EXPECT_GE(report.probes_succeeded, 1u);
}

TEST(StorageFaultStoreTest, FsyncFailureClosesGateAndRefusesWithoutIo) {
  FsEnv env;
  CheckpointStoreOptions options;
  options.fs_env = &env;
  auto store = CheckpointStore::Open(FreshDir("gate"), options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  env.set_fault_plan(Plan(StorageFaultKind::kFsyncFail, 1));
  EXPECT_FALSE((*store)->PersistJob("a", "payload").ok());
  EXPECT_EQ((*store)->health(), StoreHealth::kReadOnly);
  EXPECT_GE((*store)->health_report().fsync_failures, 1u);

  // Read-only means refusal BEFORE I/O: the kernel admitted it may
  // have lost acknowledged bytes, so hammering the disk helps nobody.
  const uint64_t ops_before = env.ops_issued();
  Status refused = (*store)->PersistJob("b", "payload");
  EXPECT_EQ(refused.code(), StatusCode::kUnavailable);
  EXPECT_EQ(env.ops_issued(), ops_before);

  // The probe is exactly the op allowed past the gate, and its success
  // is the single healing edge.
  ASSERT_TRUE((*store)->ProbeHealth().ok());
  EXPECT_EQ((*store)->health(), StoreHealth::kHealthy);
  ASSERT_TRUE((*store)->PersistJob("b", "payload").ok());
  auto loaded = (*store)->LoadJob("b");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, "payload");
}

TEST(StorageFaultStoreTest, ShortWriteTornTmpIsNeverLoaded) {
  const std::string dir = FreshDir("torn");
  FsEnv env;
  CheckpointStoreOptions options;
  options.fs_env = &env;
  {
    auto store = CheckpointStore::Open(dir, options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    env.set_fault_plan(Plan(StorageFaultKind::kShortWrite, 1, "record"));
    EXPECT_FALSE((*store)->PersistCheckpoint("a", MakeCkpt(1)).ok());
    EXPECT_EQ((*store)->health(), StoreHealth::kDegraded);
    EXPECT_EQ((*store)->LoadLatestCheckpoint("a").status().code(),
              StatusCode::kNotFound);
  }
  // A clean reopen sees no checkpoint and, critically, loads nothing
  // corrupt — the torn prefix never reached a record name.
  auto reopened = CheckpointStore::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->LoadLatestCheckpoint("a").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ((*reopened)->corrupt_files_skipped(), 0u);
}

TEST(StorageFaultStoreTest, LostRenameSurfacesAsMissingNotCorrupt) {
  const std::string dir = FreshDir("lostrename");
  FsEnv env;
  CheckpointStoreOptions options;
  options.fs_env = &env;
  {
    auto store = CheckpointStore::Open(dir, options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    env.set_fault_plan(Plan(StorageFaultKind::kLostRename, 1, "record"));
    // The lying disk: rename claims success, the record never appears.
    ASSERT_TRUE((*store)->PersistJob("a", "payload").ok());
    EXPECT_FALSE((*store)->LoadJob("a").ok());
  }
  // Recovery is honest about the loss: the store opens, the record is
  // simply absent, and nothing corrupt was ever surfaced.
  auto reopened = CheckpointStore::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE((*reopened)->LoadJob("a").ok());
  EXPECT_EQ((*reopened)->corrupt_files_skipped(), 0u);
}

TEST(StorageFaultStoreTest, JournalLostAppendRecoveredByDirectoryScan) {
  const std::string dir = FreshDir("lostappend");
  FsEnv env;
  CheckpointStoreOptions options;
  options.fs_env = &env;
  {
    auto store = CheckpointStore::Open(dir, options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    env.set_fault_plan(Plan(StorageFaultKind::kLostAppend, 1, "journal"));
    ASSERT_TRUE((*store)->PersistJob("a", "payload").ok());
  }
  // The journal line evaporated in the disk's volatile cache, but the
  // record file is durable — the directory scan still finds it.
  auto reopened = CheckpointStore::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto loaded = (*reopened)->LoadJob("a");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, "payload");
  EXPECT_EQ((*reopened)->corrupt_files_skipped(), 0u);
}

// ---------------------------------------------------------------------------
// Degraded-mode service.

DecisionServiceOptions ServiceOptions(FsEnv* env, bool cache = false) {
  DecisionServiceOptions options;
  options.num_workers = 1;
  options.store_options.fs_env = env;
  options.enable_verdict_cache = cache;
  return options;
}

TEST(StorageFaultServiceTest, DegradedShedsTypedAndServesCacheHits) {
  FsEnv env;
  auto service = DecisionService::Start(FreshDir("shed"),
                                        ServiceOptions(&env, /*cache=*/true));
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  const std::string spec = CornerSpec(1, 2);

  // A clean run populates the verdict cache.
  ASSERT_TRUE((*service)->Submit("a", MakeJob(spec)).ok());
  auto first = (*service)->Wait("a");
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // Kill the disk. The next durable admission fails its persist, flips
  // the service degraded, and is shed typed.
  env.set_fault_plan(EveryPlan(StorageFaultKind::kEio, 1, "record"));
  Status shed = (*service)->Submit("b", MakeJob(CornerSpec(2, 2)));
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE((*service)->degraded());
  EXPECT_GE((*service)->submits_shed_degraded(), 1u);

  // A cache hit needs no durability: admitted ephemerally, served from
  // memory, bit-for-bit the cached verdict.
  ASSERT_TRUE((*service)->Submit("c", MakeJob(spec)).ok());
  auto cached = (*service)->Wait("c");
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();
  EXPECT_EQ(cached->evidence, first->evidence);
  EXPECT_EQ((*service)->ephemeral_admissions(), 1u);

  // Heal: disarm the disk, probe, and durable admission returns. A
  // working disk alone is NOT enough — until the probe, submits shed.
  Status still_shed = (*service)->Submit("d", MakeJob(CornerSpec(2, 3)));
  EXPECT_EQ(still_shed.code(), StatusCode::kResourceExhausted);
  env.set_fault_plan(StorageFaultPlan());
  EXPECT_EQ((*service)->HealthState(), "degraded");
  ASSERT_TRUE((*service)->ProbeStoreNow().ok());
  EXPECT_FALSE((*service)->degraded());
  EXPECT_EQ((*service)->HealthState(), "healthy");
  ASSERT_TRUE((*service)->Submit("e", MakeJob(CornerSpec(2, 4))).ok());
  EXPECT_TRUE((*service)->Wait("e").ok());
}

TEST(StorageFaultServiceTest, DegradedJobCompletesInMemoryBitForBit) {
  FsEnv env;
  DecisionServiceOptions options = ServiceOptions(&env);
  options.start_paused = true;
  auto service = DecisionService::Start(FreshDir("inmem"), options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  const std::string spec = CornerSpec(5, 6);
  ASSERT_TRUE(
      (*service)->Submit("job", MakeJob(spec, /*threads=*/1, /*slice=*/1))
          .ok());
  // The first checkpoint persist hits a dead disk; the slices keep
  // completing in memory and the verdict is bit-for-bit the oracle's.
  env.set_fault_plan(Plan(StorageFaultKind::kEio, 1, "record.ckpt"));
  (*service)->Resume();
  auto result = (*service)->Wait("job");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->evidence, DirectRcdpEvidence(spec));
  EXPECT_TRUE((*service)->degraded());
  EXPECT_GE((*service)->persists_skipped_degraded(), 1u);
  EXPECT_EQ((*service)->HealthLine("0").substr(0, 6), "shard ");

  ASSERT_TRUE((*service)->ProbeStoreNow().ok());
  EXPECT_FALSE((*service)->degraded());
}

TEST(StorageFaultServiceTest, BackgroundProberHealsWithBackoff) {
  FsEnv env;
  DecisionServiceOptions options = ServiceOptions(&env);
  options.start_paused = true;
  options.store_probe_interval = std::chrono::milliseconds(10);
  options.store_probe_backoff_cap = std::chrono::milliseconds(50);
  auto service = DecisionService::Start(FreshDir("prober"), options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  ASSERT_TRUE(
      (*service)->Submit("job", MakeJob(CornerSpec(2, 3), 1, /*slice=*/1))
          .ok());
  // Every store write now fails — including probes, so the prober
  // backs off and keeps trying instead of flapping.
  env.set_fault_plan(EveryPlan(StorageFaultKind::kEio, 1));
  (*service)->Resume();
  auto result = (*service)->Wait("job");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE((*service)->degraded());

  // Let the prober fail at least once against the dead disk, then
  // bring the disk back and wait for self-healing — no manual probe.
  const auto failing_until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(100);
  while (std::chrono::steady_clock::now() < failing_until) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE((*service)->degraded());
  env.set_fault_plan(StorageFaultPlan());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while ((*service)->degraded() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE((*service)->degraded());
  EXPECT_GE((*service)->store().health_report().probes_succeeded, 1u);
}

// The service-level kill-the-disk sweep: every fault kind at every
// matching store-op ordinal, from store open through job completion.
// Whatever the fault does — refuse the open, shed the submit, degrade
// the service mid-run — the verdict that IS produced matches the
// oracle bit-for-bit, and a clean restart recovers the directory with
// zero corrupt records loaded.
TEST(StorageFaultServiceTest, KillTheDiskSweepRecoversBitForBit) {
  const std::string spec = CornerSpec(5, 6);
  const std::string expected = DirectRcdpEvidence(spec);
  const StorageFaultKind kinds[] = {
      StorageFaultKind::kEio,        StorageFaultKind::kEnospc,
      StorageFaultKind::kShortWrite, StorageFaultKind::kFsyncFail,
      StorageFaultKind::kLostRename,
  };
  size_t runs = 0;
  for (StorageFaultKind kind : kinds) {
    for (uint64_t ordinal = 1; ordinal < 4096; ++ordinal) {
      const std::string dir =
          FreshDir(StorageFaultKindToString(kind));
      FsEnv env;
      env.set_fault_plan(Plan(kind, ordinal));
      {
        auto service =
            DecisionService::Start(dir, ServiceOptions(&env));
        if (service.ok()) {
          Status submitted =
              (*service)->Submit("job", MakeJob(spec, 1, /*slice=*/1));
          if (submitted.ok()) {
            auto result = (*service)->Wait("job");
            ASSERT_TRUE(result.ok())
                << StorageFaultKindToString(kind) << " at " << ordinal
                << ": " << result.status().ToString();
            EXPECT_EQ(result->evidence, expected)
                << StorageFaultKindToString(kind) << " at " << ordinal;
          } else {
            // A submit-time fault sheds typed — never hangs, never
            // crashes the process.
            EXPECT_EQ(submitted.code(), StatusCode::kResourceExhausted)
                << submitted.ToString();
          }
        }
      }
      const bool fired = env.faults_injected() > 0;
      // Clean restart: the directory must recover whatever the fault
      // left, load nothing corrupt, and serve the job to the same
      // verdict.
      env.set_fault_plan(StorageFaultPlan());
      auto recovered = DecisionService::Start(dir, ServiceOptions(&env));
      ASSERT_TRUE(recovered.ok())
          << StorageFaultKindToString(kind) << " at " << ordinal << ": "
          << recovered.status().ToString();
      for (const std::string& id : (*recovered)->RecoveredJobs()) {
        auto resumed = (*recovered)->Wait(id);
        ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
        EXPECT_EQ(resumed->evidence, expected)
            << StorageFaultKindToString(kind) << " at " << ordinal;
      }
      ASSERT_TRUE(
          (*recovered)->Submit("again", MakeJob(spec, 1, /*slice=*/1)).ok());
      auto rerun = (*recovered)->Wait("again");
      ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
      EXPECT_EQ(rerun->evidence, expected)
          << StorageFaultKindToString(kind) << " at " << ordinal;
      EXPECT_EQ((*recovered)->store().corrupt_files_skipped(), 0u)
          << StorageFaultKindToString(kind) << " at " << ordinal;
      ++runs;
      // Past the last matching op for this kind: the plan never fired.
      if (!fired) break;
    }
  }
  // The sweep must actually have swept (one no-fire run per kind is
  // the sentinel tail).
  EXPECT_GE(runs, 5u * 2u);
}

// Named for the tsan preset's filter: concurrent submits, probes, and
// health reads against an intermittently failing disk.
TEST(StorageFaultConcurrencyTest, ConcurrentSubmitsProbesAndHealthReads) {
  FsEnv env;
  DecisionServiceOptions options = ServiceOptions(&env, /*cache=*/true);
  options.num_workers = 4;
  options.max_queue_depth = 256;
  auto service = DecisionService::Start(FreshDir("conc"), options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  const std::string spec = CornerSpec(1, 2);
  ASSERT_TRUE((*service)->Submit("seed", MakeJob(spec)).ok());
  ASSERT_TRUE((*service)->Wait("seed").ok());

  env.set_fault_plan(EveryPlan(StorageFaultKind::kEio, 7));
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        // Same-content submissions: cache hits while degraded, durable
        // admissions while healthy — both races the sweep cares about.
        (void)(*service)->Submit(StrCat("t", t, "-", i), MakeJob(spec));
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)(*service)->ProbeStoreNow();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)(*service)->HealthState();
      (void)(*service)->HealthLine("x");
      (void)(*service)->store().health_report();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (std::thread& t : threads) t.join();

  // Disarm and heal: the service must still be fully functional.
  env.set_fault_plan(StorageFaultPlan());
  ASSERT_TRUE((*service)->ProbeStoreNow().ok());
  EXPECT_FALSE((*service)->degraded());
  ASSERT_TRUE((*service)->Submit("final", MakeJob(spec)).ok());
  auto result = (*service)->Wait("final");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->evidence, DirectRcdpEvidence(spec));
}

// ---------------------------------------------------------------------------
// The fabric: health RPC, steering, self-eviction, give-up-tenure.

struct Fabric {
  std::string root;
  std::vector<std::string> endpoints;
  std::vector<std::unique_ptr<FsEnv>> disks;  // one "disk" per member
  std::vector<std::unique_ptr<FabricMember>> members;
};

Fabric StartFabric(const char* tag, size_t n, bool cache = false) {
  Fabric fabric;
  fabric.root = FreshDir(tag);
  for (size_t i = 0; i < n; ++i) {
    fabric.endpoints.push_back(FreshSocket(tag));
    fabric.disks.push_back(std::make_unique<FsEnv>());
  }
  for (size_t i = 0; i < n; ++i) {
    FabricMemberOptions options;
    options.fabric_root = fabric.root;
    options.member_index = i;
    options.endpoints = fabric.endpoints;
    options.service_options.store_options.fs_env = fabric.disks[i].get();
    options.service_options.enable_verdict_cache = cache;
    auto member = FabricMember::Start(options);
    EXPECT_TRUE(member.ok()) << member.status().ToString();
    fabric.members.push_back(member.ok() ? std::move(*member) : nullptr);
  }
  return fabric;
}

std::string KeyForShard(const FabricRing& ring, size_t shard,
                        const char* tag) {
  for (int i = 0;; ++i) {
    std::string key = StrCat("job-", tag, "-", i);
    if (ring.ShardForKey(key) == shard) return key;
  }
}

/// Members currently owning `shard` — convergence demands exactly one.
size_t OwnersOf(const Fabric& fabric, size_t shard) {
  size_t owners = 0;
  for (const auto& member : fabric.members) {
    if (!member) continue;
    for (size_t owned : member->owned_shards()) {
      if (owned == shard) ++owners;
    }
  }
  return owners;
}

void ExpectNoCorruption(Fabric& fabric) {
  for (const auto& member : fabric.members) {
    if (!member) continue;
    for (size_t shard : member->owned_shards()) {
      DecisionService* service = member->shard_service(shard);
      if (service == nullptr || service->crashed()) continue;
      EXPECT_EQ(service->store().corrupt_files_skipped(), 0u)
          << "shard " << shard << " read a corrupt store file";
    }
  }
}

/// Degrades member `index`'s store directly (a control write against a
/// one-shot fault), then leaves its probes failing so the sickness is
/// not transient. The member's next sweep must evict.
void KillDisk(Fabric& fabric, size_t index, size_t shard) {
  FsEnv* disk = fabric.disks[index].get();
  DecisionService* service = fabric.members[index]->shard_service(shard);
  ASSERT_NE(service, nullptr);
  disk->set_fault_plan(Plan(StorageFaultKind::kEio, 1, "record.ctl"));
  EXPECT_FALSE(
      service->mutable_store()->PersistControl("sick", "payload").ok());
  EXPECT_EQ(service->store().health(), StoreHealth::kDegraded);
  disk->set_fault_plan(EveryPlan(StorageFaultKind::kEio, 1, "probe"));
}

TEST(StorageFaultFabricTest, HealthOpAnsweredAndAggregated) {
  Fabric fabric = StartFabric("health", 2);
  NetClient direct(fabric.endpoints[0]);
  auto health = direct.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(HealthReportState(*health), "healthy");
  EXPECT_NE(health->find("shard 0 state=healthy"), std::string::npos)
      << *health;

  FabricClient client(fabric.endpoints);
  auto fleet = client.FleetHealth();
  ASSERT_EQ(fleet.size(), 2u);
  for (const auto& [endpoint, report] : fleet) {
    EXPECT_EQ(HealthReportState(report), "healthy") << endpoint;
  }

  // A sick member reports itself sick — the health op answers even
  // when the shard behind it cannot persist a byte.
  KillDisk(fabric, 0, 0);
  auto sick = direct.Health();
  ASSERT_TRUE(sick.ok()) << sick.status().ToString();
  EXPECT_EQ(HealthReportState(*sick), "degraded");
}

TEST(StorageFaultFabricTest, SickMemberSelfEvictsToHealthyPeer) {
  Fabric fabric = StartFabric("evict", 2);
  const std::string spec = CornerSpec(2, 3);
  KillDisk(fabric, 0, 0);

  // One sweep: shard 0's store is sick and fails its live re-probe, so
  // the member steers the shard to the peer its health RPC says is
  // healthy.
  fabric.members[0]->ProbeAndEvictNow();
  EXPECT_EQ(fabric.members[0]->self_eviction_attempts(), 1u);
  EXPECT_EQ(fabric.members[0]->self_evictions(), 1u);
  EXPECT_TRUE(fabric.members[0]->owned_shards().empty());
  EXPECT_EQ(OwnersOf(fabric, 0), 1u);
  EXPECT_EQ(fabric.members[1]->owned_shards().size(), 2u);

  // The fabric serves shard-0 keys from the adopter, bit-for-bit.
  FabricClient client(fabric.endpoints);
  ASSERT_TRUE(client.RefreshRing().ok());
  const std::string key = KeyForShard(client.ring(), 0, "evict");
  auto result = client.SubmitAndAwait(key, MakeJob(spec));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->evidence, DirectRcdpEvidence(spec));
  ExpectNoCorruption(fabric);

  // Idempotent: a second sweep finds nothing left to evict.
  fabric.members[0]->ProbeAndEvictNow();
  EXPECT_EQ(fabric.members[0]->self_eviction_attempts(), 1u);
}

TEST(StorageFaultFabricTest, DeadDiskGivesUpTenureForAdoption) {
  Fabric fabric = StartFabric("tenure", 2);
  KillDisk(fabric, 0, 0);
  // Now the WHOLE disk dies: even the handoff's journal write fails,
  // so the eviction cannot complete — the member gives up tenure with
  // a truthful no-owner record instead of squatting on a dead shard.
  fabric.disks[0]->set_fault_plan(EveryPlan(StorageFaultKind::kEio, 1));
  fabric.members[0]->ProbeAndEvictNow();
  EXPECT_EQ(fabric.members[0]->self_eviction_attempts(), 1u);
  EXPECT_EQ(fabric.members[0]->self_evictions(), 0u);
  EXPECT_TRUE(fabric.members[0]->owned_shards().empty());
  EXPECT_EQ(OwnersOf(fabric, 0), 0u);

  // The fabric's ordinary orphan-adoption path finishes the move: the
  // flock is free, so the peer adopts and serves.
  FabricClient client(fabric.endpoints);
  Status adopted = client.AdoptShard(0, fabric.endpoints[1]);
  ASSERT_TRUE(adopted.ok()) << adopted.ToString();
  EXPECT_EQ(OwnersOf(fabric, 0), 1u);
  const std::string spec = CornerSpec(2, 3);
  const std::string key = KeyForShard(client.ring(), 0, "tenure");
  auto result = client.SubmitAndAwait(key, MakeJob(spec));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->evidence, DirectRcdpEvidence(spec));
  ExpectNoCorruption(fabric);
}

TEST(StorageFaultFabricTest, FullyDegradedMemberStillServesCacheHits) {
  Fabric fabric = StartFabric("cachehit", 2, /*cache=*/true);
  const std::string spec = CornerSpec(2, 3);
  FabricClient client(fabric.endpoints);
  ASSERT_TRUE(client.RefreshRing().ok());
  const std::string key = KeyForShard(client.ring(), 0, "warm");
  auto warm = client.SubmitAndAwait(key, MakeJob(spec));
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  // Kill member 0's disk completely. The first durable submit fails
  // its persist and is shed typed; every cache hit after that is
  // served ephemerally, straight from memory.
  fabric.disks[0]->set_fault_plan(EveryPlan(StorageFaultKind::kEio, 1));
  NetClient direct(fabric.endpoints[0]);
  const std::string shed_key = KeyForShard(client.ring(), 0, "shed");
  Status shed = direct.Submit(shed_key, MakeJob(spec));
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted) << shed.ToString();

  const std::string hit_key = KeyForShard(client.ring(), 0, "hit");
  ASSERT_TRUE(direct.Submit(hit_key, MakeJob(spec)).ok());
  auto served = direct.AwaitTerminal(hit_key);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_EQ(served->evidence, warm->evidence);
  DecisionService* service = fabric.members[0]->shard_service(0);
  ASSERT_NE(service, nullptr);
  EXPECT_GE(service->ephemeral_admissions(), 1u);
  EXPECT_EQ(service->HealthState(), "degraded");

  // And the client's steering table now sorts the sick member last.
  auto fleet = client.FleetHealth();
  ASSERT_EQ(fleet.size(), 2u);
  EXPECT_EQ(HealthReportState(fleet[0].second), "degraded");
  EXPECT_EQ(HealthReportState(fleet[1].second), "healthy");
}

/// One chaos run: a fabric whose victim member's disk fails at the
/// `ordinal`-th matching op, a job keyed to the victim's home shard,
/// then convergence: the verdict (after at most one probe-and-evict
/// sweep and one resubmission) is bit-for-bit the oracle's, exactly
/// one member owns the shard, and nothing corrupt was loaded.
void ChaosRun(const char* tag, size_t members, size_t threads,
              StorageFaultKind kind, uint64_t ordinal,
              const std::string& spec, const std::string& expected,
              bool* fired) {
  Fabric fabric = StartFabric(tag, members);
  FabricClient client(fabric.endpoints);
  ASSERT_TRUE(client.RefreshRing().ok());
  const std::string key = KeyForShard(client.ring(), 0, tag);
  // Arm after start: the sweep addresses the serving workload (the
  // startup ordinals are the service sweep's territory).
  fabric.disks[0]->set_fault_plan(Plan(kind, ordinal));

  auto result =
      client.SubmitAndAwait(key, MakeJob(spec, threads, /*slice=*/1));
  if (!result.ok()) {
    // The fault landed on the submit persist: the shed is typed, and
    // one probe-and-evict sweep must restore service — by healing in
    // place (a spent one-shot fault probes clean) or by handing the
    // shard to a peer.
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
        << StorageFaultKindToString(kind) << " at " << ordinal << ": "
        << result.status().ToString();
    fabric.members[0]->ProbeAndEvictNow();
    result = client.SubmitAndAwait(key, MakeJob(spec, threads, /*slice=*/1));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  EXPECT_EQ(result->evidence, expected)
      << StorageFaultKindToString(kind) << " at " << ordinal;

  // Convergence: one sweep on the victim, then exactly one owner per
  // shard and a clean bill of health everywhere that still serves.
  fabric.members[0]->ProbeAndEvictNow();
  for (size_t shard = 0; shard < members; ++shard) {
    EXPECT_EQ(OwnersOf(fabric, shard), 1u)
        << "shard " << shard << " after " << StorageFaultKindToString(kind)
        << " at " << ordinal;
  }
  ExpectNoCorruption(fabric);
  *fired = fabric.disks[0]->faults_injected() > 0;
}

TEST(StorageFaultFabricTest, KillTheDiskChaosSweepTwoMembers) {
  const std::string spec = CornerSpec(5, 6);
  const std::string expected = DirectRcdpEvidence(spec);
  const StorageFaultKind kinds[] = {
      StorageFaultKind::kEio,        StorageFaultKind::kEnospc,
      StorageFaultKind::kShortWrite, StorageFaultKind::kFsyncFail,
      StorageFaultKind::kLostRename,
  };
  for (StorageFaultKind kind : kinds) {
    for (uint64_t ordinal = 1; ordinal < 4096; ++ordinal) {
      bool fired = false;
      ChaosRun("chaos2", /*members=*/2, /*threads=*/1, kind, ordinal, spec,
               expected, &fired);
      if (HasFatalFailure()) return;
      if (!fired) break;  // past the last matching op for this kind
    }
  }
}

TEST(StorageFaultFabricTest, KillTheDiskChaosSweepWideAndThreaded) {
  const std::string spec = CornerSpec(5, 6);
  const std::string expected = DirectRcdpEvidence(spec, /*threads=*/8);
  const StorageFaultKind kinds[] = {
      StorageFaultKind::kEio,        StorageFaultKind::kEnospc,
      StorageFaultKind::kShortWrite, StorageFaultKind::kFsyncFail,
      StorageFaultKind::kLostRename,
  };
  // Three members, eight worker threads per search; ordinals strided —
  // the two-member sweep already visits every ordinal densely.
  for (StorageFaultKind kind : kinds) {
    for (uint64_t ordinal = 1; ordinal < 4096; ordinal += 5) {
      bool fired = false;
      ChaosRun("chaos3", /*members=*/3, /*threads=*/8, kind, ordinal, spec,
               expected, &fired);
      if (HasFatalFailure()) return;
      if (!fired) break;
    }
  }
}

}  // namespace
}  // namespace relcomp
