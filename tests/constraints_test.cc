#include <gtest/gtest.h>

#include "constraints/constraint_check.h"
#include "constraints/containment_constraint.h"
#include "constraints/integrity_constraints.h"
#include "query/parser.h"
#include "workload/generators.h"

namespace relcomp {
namespace {

class ConstraintsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db_schema = std::make_shared<Schema>();
    ASSERT_TRUE(db_schema->AddRelation("Ord", 3).ok());   // (cust, item, qty)
    ASSERT_TRUE(db_schema->AddRelation("Item", 2).ok());  // (item, price)
    db_schema_ = db_schema;
    auto master_schema = std::make_shared<Schema>();
    ASSERT_TRUE(master_schema->AddRelation("MCust", 2).ok());
    ASSERT_TRUE(EnsureEmptyMasterRelation(master_schema.get()).ok());
    master_schema_ = master_schema;
    db_ = Database(db_schema_);
    master_ = Database(master_schema_);
  }

  std::shared_ptr<const Schema> db_schema_;
  std::shared_ptr<const Schema> master_schema_;
  Database db_;
  Database master_;
};

TEST_F(ConstraintsTest, IndClassification) {
  auto proj = ParseConjunctiveQuery("q(c) :- Ord(c, i, q).");
  ASSERT_TRUE(proj.ok());
  ContainmentConstraint ind =
      ContainmentConstraint::Subset(AnyQuery::Cq(*proj), "MCust", {0});
  EXPECT_TRUE(ind.IsInd());

  auto with_const = ParseConjunctiveQuery("q(c) :- Ord(c, i, 5).");
  ASSERT_TRUE(with_const.ok());
  EXPECT_FALSE(ContainmentConstraint::Subset(AnyQuery::Cq(*with_const),
                                             "MCust", {0})
                   .IsInd());

  auto join = ParseConjunctiveQuery("q(c) :- Ord(c, i, q), Item(i, p).");
  ASSERT_TRUE(join.ok());
  EXPECT_FALSE(
      ContainmentConstraint::Subset(AnyQuery::Cq(*join), "MCust", {0})
          .IsInd());

  auto repeated = ParseConjunctiveQuery("q(c) :- Ord(c, c, q).");
  ASSERT_TRUE(repeated.ok());
  EXPECT_FALSE(
      ContainmentConstraint::Subset(AnyQuery::Cq(*repeated), "MCust", {0})
          .IsInd());
}

TEST_F(ConstraintsTest, ValidateCatchesBadProjections) {
  auto proj = ParseConjunctiveQuery("q(c) :- Ord(c, i, q).");
  ASSERT_TRUE(proj.ok());
  ContainmentConstraint bad_col =
      ContainmentConstraint::Subset(AnyQuery::Cq(*proj), "MCust", {7});
  EXPECT_FALSE(bad_col.Validate(*db_schema_, *master_schema_).ok());
  ContainmentConstraint bad_arity =
      ContainmentConstraint::Subset(AnyQuery::Cq(*proj), "MCust", {0, 1});
  EXPECT_FALSE(bad_arity.Validate(*db_schema_, *master_schema_).ok());
  ContainmentConstraint unknown =
      ContainmentConstraint::Subset(AnyQuery::Cq(*proj), "Nope", {0});
  EXPECT_FALSE(unknown.Validate(*db_schema_, *master_schema_).ok());
}

TEST_F(ConstraintsTest, CheckSubsetConstraint) {
  ASSERT_TRUE(master_.Insert("MCust", Tuple::Ints({1, 10})).ok());
  ASSERT_TRUE(db_.Insert("Ord", Tuple::Ints({1, 5, 2})).ok());
  auto cc = MakeIndToMaster(*db_schema_, "Ord", {0}, "MCust", {0});
  ASSERT_TRUE(cc.ok());
  auto ok = CheckConstraint(*cc, db_, master_);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
  // An order by an unknown customer violates the CC.
  ASSERT_TRUE(db_.Insert("Ord", Tuple::Ints({9, 5, 2})).ok());
  auto violated = CheckConstraint(*cc, db_, master_);
  ASSERT_TRUE(violated.ok());
  EXPECT_FALSE(*violated);
}

TEST_F(ConstraintsTest, CheckConstraintsReportsWitness) {
  ASSERT_TRUE(db_.Insert("Ord", Tuple::Ints({9, 5, 2})).ok());
  ConstraintSet set;
  auto cc = MakeIndToMaster(*db_schema_, "Ord", {0}, "MCust", {0});
  ASSERT_TRUE(cc.ok());
  set.Add(*cc);
  auto result = CheckConstraints(set, db_, master_);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->satisfied);
  EXPECT_EQ(result->violated_index, 0);
  ASSERT_TRUE(result->witness.has_value());
  EXPECT_EQ(*result->witness, Tuple::Ints({9}));
}

TEST_F(ConstraintsTest, EmptyTargetConstraint) {
  auto q = ParseConjunctiveQuery("q() :- Ord(c, i, q), q = 0.");
  ASSERT_TRUE(q.ok());
  ContainmentConstraint cc =
      ContainmentConstraint::SubsetOfEmpty(AnyQuery::Cq(*q));
  ASSERT_TRUE(db_.Insert("Ord", Tuple::Ints({1, 2, 3})).ok());
  auto ok = CheckConstraint(cc, db_, master_);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
  ASSERT_TRUE(db_.Insert("Ord", Tuple::Ints({1, 2, 0})).ok());
  auto violated = CheckConstraint(cc, db_, master_);
  ASSERT_TRUE(violated.ok());
  EXPECT_FALSE(*violated);
}

TEST_F(ConstraintsTest, ConstraintSetLanguageLub) {
  ConstraintSet set;
  auto ind = MakeIndToMaster(*db_schema_, "Ord", {0}, "MCust", {0});
  ASSERT_TRUE(ind.ok());
  set.Add(*ind);
  EXPECT_EQ(set.Language(), QueryLanguage::kCq);
  EXPECT_TRUE(set.IsIndsOnly());
  auto fo = ParseFoQuery("q(c) := exists i, q. (Ord(c, i, q) & !Item(i, q))");
  ASSERT_TRUE(fo.ok());
  set.Add(ContainmentConstraint::SubsetOfEmpty(AnyQuery::Fo(*fo)));
  EXPECT_EQ(set.Language(), QueryLanguage::kFo);
  EXPECT_FALSE(set.IsIndsOnly());
}

// ---------------------------------------------------------------------------
// Proposition 2.1: integrity constraints compile to containment
// constraints. For each class we check, on hand instances and then on
// random sweeps, that Check(D) agrees with the compiled CCs.

TEST_F(ConstraintsTest, FdDirectSemantics) {
  FunctionalDependency fd("Ord", {0}, {1});
  ASSERT_TRUE(db_.Insert("Ord", Tuple::Ints({1, 2, 3})).ok());
  ASSERT_TRUE(db_.Insert("Ord", Tuple::Ints({1, 2, 4})).ok());
  auto ok = fd.Check(db_);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
  ASSERT_TRUE(db_.Insert("Ord", Tuple::Ints({1, 9, 3})).ok());
  auto violated = fd.Check(db_);
  ASSERT_TRUE(violated.ok());
  EXPECT_FALSE(*violated);
}

TEST_F(ConstraintsTest, CfdPatternSemantics) {
  // dept-style pattern: if qty = 7 then item determines cust, and cust
  // must be 1.
  ConditionalFd cfd("Ord", {1}, {AttrPattern{2, Value::Int(7)}}, {0},
                    {AttrPattern{0, Value::Int(1)}});
  ASSERT_TRUE(db_.Insert("Ord", Tuple::Ints({1, 2, 7})).ok());
  ASSERT_TRUE(db_.Insert("Ord", Tuple::Ints({5, 2, 3})).ok());  // no pattern
  auto ok = cfd.Check(db_);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
  // A second matching tuple with a different cust violates.
  ASSERT_TRUE(db_.Insert("Ord", Tuple::Ints({2, 2, 7})).ok());
  auto violated = cfd.Check(db_);
  ASSERT_TRUE(violated.ok());
  EXPECT_FALSE(*violated);
}

TEST_F(ConstraintsTest, CfdSingleTuplePatternViolation) {
  // Pattern on the RHS alone: any qty-7 tuple must have cust 1.
  ConditionalFd cfd("Ord", {}, {AttrPattern{2, Value::Int(7)}}, {},
                    {AttrPattern{0, Value::Int(1)}});
  ASSERT_TRUE(db_.Insert("Ord", Tuple::Ints({2, 2, 7})).ok());
  auto violated = cfd.Check(db_);
  ASSERT_TRUE(violated.ok());
  EXPECT_FALSE(*violated);
}

TEST_F(ConstraintsTest, DenialConstraint) {
  auto violation = ParseConjunctiveQuery("bad() :- Item(i, p), p = 0.");
  ASSERT_TRUE(violation.ok());
  DenialConstraint dc(*violation);
  ASSERT_TRUE(db_.Insert("Item", Tuple::Ints({1, 10})).ok());
  auto ok = dc.Check(db_);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
  ASSERT_TRUE(db_.Insert("Item", Tuple::Ints({2, 0})).ok());
  auto violated = dc.Check(db_);
  ASSERT_TRUE(violated.ok());
  EXPECT_FALSE(*violated);
}

TEST_F(ConstraintsTest, IndAndCindSemantics) {
  InclusionDependency ind("Ord", {1}, "Item", {0});
  ASSERT_TRUE(db_.Insert("Ord", Tuple::Ints({1, 2, 3})).ok());
  ASSERT_TRUE(db_.Insert("Item", Tuple::Ints({2, 10})).ok());
  auto ok = ind.Check(db_);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
  ASSERT_TRUE(db_.Insert("Ord", Tuple::Ints({1, 9, 3})).ok());
  auto violated = ind.Check(db_);
  ASSERT_TRUE(violated.ok());
  EXPECT_FALSE(*violated);

  // CIND: only qty-7 orders need a priced item with price 10.
  ConditionalInd cind("Ord", {1}, {AttrPattern{2, Value::Int(7)}}, "Item",
                      {0}, {AttrPattern{1, Value::Int(10)}});
  auto cind_ok = cind.Check(db_);
  ASSERT_TRUE(cind_ok.ok());
  EXPECT_TRUE(*cind_ok);  // no qty-7 orders yet
  ASSERT_TRUE(db_.Insert("Ord", Tuple::Ints({1, 5, 7})).ok());
  auto cind_violated = cind.Check(db_);
  ASSERT_TRUE(cind_violated.ok());
  EXPECT_FALSE(*cind_violated);
}

/// Shared harness: verify D |= ic iff (D, Dm) |= compiled CCs over a
/// randomized sweep of small instances.
class Prop21Test : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    auto db_schema = std::make_shared<Schema>();
    ASSERT_TRUE(db_schema->AddRelation("Ord", 3).ok());
    ASSERT_TRUE(db_schema->AddRelation("Item", 2).ok());
    db_schema_ = db_schema;
    auto master_schema = std::make_shared<Schema>();
    ASSERT_TRUE(EnsureEmptyMasterRelation(master_schema.get()).ok());
    master_schema_ = master_schema;
    master_ = Database(master_schema_);
  }

  Database RandomDb(Rng* rng) {
    RandomInstanceOptions options;
    options.value_pool = 3;
    options.tuples_per_relation = 4;
    Database db(db_schema_);
    std::uniform_int_distribution<int64_t> value(0, 2);
    for (const std::string& name : db_schema_->relation_names()) {
      const RelationSchema* rs = db_schema_->FindRelation(name);
      for (size_t i = 0; i < options.tuples_per_relation; ++i) {
        std::vector<Value> values;
        for (size_t c = 0; c < rs->arity(); ++c) {
          values.push_back(Value::Int(value(*rng)));
        }
        db.InsertUnchecked(name, Tuple(std::move(values)));
      }
    }
    return db;
  }

  std::shared_ptr<const Schema> db_schema_;
  std::shared_ptr<const Schema> master_schema_;
  Database master_;
};

TEST_P(Prop21Test, FdCompilesToEquivalentCcs) {
  Rng rng(GetParam());
  FunctionalDependency fd("Ord", {0}, {1, 2});
  auto ccs = fd.ToContainmentConstraints(*db_schema_);
  ASSERT_TRUE(ccs.ok());
  ConstraintSet set;
  for (auto& cc : *ccs) set.Add(std::move(cc));
  for (int i = 0; i < 20; ++i) {
    Database db = RandomDb(&rng);
    auto direct = fd.Check(db);
    auto via_ccs = Satisfies(set, db, master_);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(via_ccs.ok());
    EXPECT_EQ(*direct, *via_ccs) << db.ToString();
  }
}

TEST_P(Prop21Test, CfdCompilesToEquivalentCcs) {
  Rng rng(GetParam() + 100);
  ConditionalFd cfd("Ord", {0}, {AttrPattern{2, Value::Int(1)}}, {1},
                    {AttrPattern{1, Value::Int(2)}});
  auto ccs = cfd.ToContainmentConstraints(*db_schema_);
  ASSERT_TRUE(ccs.ok());
  ConstraintSet set;
  for (auto& cc : *ccs) set.Add(std::move(cc));
  for (int i = 0; i < 20; ++i) {
    Database db = RandomDb(&rng);
    auto direct = cfd.Check(db);
    auto via_ccs = Satisfies(set, db, master_);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(via_ccs.ok());
    EXPECT_EQ(*direct, *via_ccs) << db.ToString();
  }
}

TEST_P(Prop21Test, DenialCompilesToEquivalentCc) {
  Rng rng(GetParam() + 200);
  auto violation =
      ParseConjunctiveQuery("bad() :- Ord(c, i, q), Item(i, p), p = q.");
  ASSERT_TRUE(violation.ok());
  DenialConstraint dc(*violation);
  ConstraintSet set;
  set.Add(dc.ToContainmentConstraint());
  for (int i = 0; i < 20; ++i) {
    Database db = RandomDb(&rng);
    auto direct = dc.Check(db);
    auto via_ccs = Satisfies(set, db, master_);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(via_ccs.ok());
    EXPECT_EQ(*direct, *via_ccs) << db.ToString();
  }
}

TEST_P(Prop21Test, CindCompilesToEquivalentFoCc) {
  Rng rng(GetParam() + 300);
  ConditionalInd cind("Ord", {1}, {AttrPattern{2, Value::Int(1)}}, "Item",
                      {0}, {AttrPattern{1, Value::Int(2)}});
  auto cc = cind.ToContainmentConstraint(*db_schema_);
  ASSERT_TRUE(cc.ok());
  EXPECT_EQ(cc->language(), QueryLanguage::kFo);
  ConstraintSet set;
  set.Add(*cc);
  for (int i = 0; i < 20; ++i) {
    Database db = RandomDb(&rng);
    auto direct = cind.Check(db);
    auto via_ccs = Satisfies(set, db, master_);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(via_ccs.ok());
    EXPECT_EQ(*direct, *via_ccs) << db.ToString();
  }
}

TEST_P(Prop21Test, IndCompilesToEquivalentFoCc) {
  Rng rng(GetParam() + 400);
  InclusionDependency ind("Ord", {1, 2}, "Item", {0, 1});
  auto cc = ind.ToContainmentConstraint(*db_schema_);
  ASSERT_TRUE(cc.ok());
  ConstraintSet set;
  set.Add(*cc);
  for (int i = 0; i < 20; ++i) {
    Database db = RandomDb(&rng);
    auto direct = ind.Check(db);
    auto via_ccs = Satisfies(set, db, master_);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(via_ccs.ok());
    EXPECT_EQ(*direct, *via_ccs) << db.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Prop21Test, ::testing::Range(1, 6));

}  // namespace
}  // namespace relcomp
