// The fingerprint-keyed verdict cache: hit/miss/insert semantics over
// an optional CheckpointStore, rejection of mis-keyed or corrupted
// store records, invalidation after a delta, durability across store
// reopen, the DecisionService's zero-search serve path (identical to a
// recompute at 1/2/8 threads), and a concurrency hammer that runs
// under tsan (suite name VerdictCacheConcurrency is in the preset
// filter).

#include "service/verdict_cache.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "completeness/incremental.h"
#include "completeness/rcdp.h"
#include "relational/delta_batch.h"
#include "service/checkpoint_store.h"
#include "service/decision_service.h"
#include "spec/spec_parser.h"
#include "util/str.h"

namespace relcomp {
namespace {

std::string FreshDir(const char* tag) {
  static int counter = 0;
  return StrCat(::testing::TempDir(), "/relcomp_vcache_", ::getpid(), "_",
                tag, "_", counter++);
}

std::unique_ptr<CheckpointStore> MustOpen(const std::string& dir) {
  auto store = CheckpointStore::Open(dir);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(*store);
}

constexpr char kIncompleteSpec[] = R"spec(
relation S(a, b)
master relation M(m)
fact S(0, 0)
master fact M(0)
master fact M(1)
constraint c0(x) :- S(x, y) |= M[0]
query cq Q(x) :- S(x, y)
)spec";

/// The service's canonical evidence string, recomputed from a direct
/// library call — the oracle cache-served results are compared against.
std::string DirectEvidence(const std::string& spec_text, size_t threads) {
  auto spec = ParseCompletenessSpec(spec_text);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  RcdpOptions options;
  options.num_threads = threads;
  auto r = DecideRcdp(spec->queries[0], spec->db, spec->master,
                      spec->constraints, options);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return StrCat(VerdictToString(r->verdict), "|",
                r->counterexample_delta.has_value()
                    ? r->counterexample_delta->ToString()
                    : std::string("<none>"),
                "|",
                r->new_answer.has_value() ? r->new_answer->ToString()
                                          : std::string("<none>"));
}

TEST(VerdictCacheTest, MemoryOnlyHitMissInsert) {
  VerdictCache cache(nullptr);
  EXPECT_FALSE(cache.Lookup(0x1234).has_value());
  ASSERT_TRUE(cache.Insert(0x1234, Verdict::kIncomplete, "evidence").ok());
  auto hit = cache.Lookup(0x1234);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->verdict, Verdict::kIncomplete);
  EXPECT_EQ(hit->evidence, "evidence");
  EXPECT_FALSE(cache.Lookup(0x9999).has_value());

  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(VerdictCacheTest, UnknownVerdictIsRefused) {
  // kUnknown depends on the budget that produced it, not the instance
  // content — caching it would serve stale exhaustion.
  VerdictCache cache(nullptr);
  EXPECT_EQ(cache.Insert(0x1, Verdict::kUnknown, "x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(cache.Lookup(0x1).has_value());
}

TEST(VerdictCacheTest, FingerprintMismatchIsRejectedNotServed) {
  const std::string dir = FreshDir("mismatch");
  auto store = MustOpen(dir);

  // A record whose embedded fingerprint is A, filed under B's key —
  // a mis-keyed (or tampered) store entry.
  const uint64_t fp_a = 0x1111111111111111ull;
  const uint64_t fp_b = 0x2222222222222222ull;
  {
    VerdictCache writer(store.get());
    ASSERT_TRUE(writer.Insert(fp_a, Verdict::kComplete, "ok").ok());
  }
  auto payload = store->LoadVerdict(VerdictCache::KeyFor(fp_a));
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  ASSERT_TRUE(store->PersistVerdict(VerdictCache::KeyFor(fp_b), *payload)
                  .ok());

  VerdictCache cache(store.get());
  EXPECT_FALSE(cache.Lookup(fp_b).has_value());
  EXPECT_EQ(cache.stats().rejections, 1u);
  // The honestly keyed record still serves.
  auto hit = cache.Lookup(fp_a);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->evidence, "ok");
}

TEST(VerdictCacheTest, CorruptedRecordIsRejectedNotServed) {
  const std::string dir = FreshDir("corrupt");
  auto store = MustOpen(dir);
  const uint64_t fp = 0xabcdef0123456789ull;
  const std::string key = VerdictCache::KeyFor(fp);
  for (const char* garbage :
       {"", "not-a-verdict", "relcomp-verdict/1 zz C 1:x",
        "relcomp-verdict/1 abcdef0123456789 Q 1:x",
        "relcomp-verdict/1 abcdef0123456789 C 99:short"}) {
    ASSERT_TRUE(store->PersistVerdict(key, garbage).ok());
    VerdictCache cache(store.get());
    EXPECT_FALSE(cache.Lookup(fp).has_value()) << garbage;
    EXPECT_EQ(cache.stats().rejections, 1u) << garbage;
  }
}

TEST(VerdictCacheTest, SurvivesStoreReopen) {
  const std::string dir = FreshDir("reopen");
  const uint64_t fp = 0x5555;
  {
    auto store = MustOpen(dir);
    VerdictCache cache(store.get());
    ASSERT_TRUE(cache.Insert(fp, Verdict::kComplete, "durable").ok());
  }
  auto store = MustOpen(dir);
  VerdictCache cache(store.get());
  auto hit = cache.Lookup(fp);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->verdict, Verdict::kComplete);
  EXPECT_EQ(hit->evidence, "durable");
}

TEST(VerdictCacheTest, StaleEntryInvalidatedAfterDelta) {
  // The lifecycle a delta drives: the pre-update fingerprint's entry
  // is dropped, the post-update fingerprint misses (it is new content)
  // and gets its own entry.
  auto spec = ParseCompletenessSpec(kIncompleteSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const uint64_t pre_fp = FingerprintRcdpInstance(
      spec->queries[0], spec->db, spec->master, spec->constraints);

  const std::string dir = FreshDir("stale");
  auto store = MustOpen(dir);
  VerdictCache cache(store.get());
  ASSERT_TRUE(cache.Insert(pre_fp, Verdict::kIncomplete, "pre").ok());

  DeltaBatch batch;
  batch.db_ops.push_back(
      DeltaOp{true, "S", Tuple({Value::Int(1), Value::Int(0)})});
  auto report = ApplyDeltaBatch(batch, &spec->db, &spec->master);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const uint64_t post_fp = FingerprintRcdpInstance(
      spec->queries[0], spec->db, spec->master, spec->constraints);
  ASSERT_NE(pre_fp, post_fp);
  // The new content misses; the old entry is stale and gets dropped.
  EXPECT_FALSE(cache.Lookup(post_fp).has_value());
  ASSERT_TRUE(cache.Invalidate(pre_fp).ok());
  EXPECT_FALSE(cache.Lookup(pre_fp).has_value());
  EXPECT_EQ(store->LoadVerdict(VerdictCache::KeyFor(pre_fp)).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  // Idempotent.
  ASSERT_TRUE(cache.Invalidate(pre_fp).ok());

  // Even a fresh cache over the same store no longer sees the record.
  VerdictCache fresh(store.get());
  EXPECT_FALSE(fresh.Lookup(pre_fp).has_value());
}

TEST(VerdictCacheTest, ServiceCacheHitEqualsRecomputeAcrossThreadCounts) {
  // A second submission of identical instance content is served from
  // the cache without search, and the served verdict + evidence are
  // bit-for-bit what a fresh decider run produces — at every thread
  // count, since the fingerprint excludes num_threads.
  for (size_t threads : {1u, 2u, 8u}) {
    const std::string dir = FreshDir("svc");
    DecisionServiceOptions options;
    options.enable_verdict_cache = true;
    auto service = DecisionService::Start(dir, options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();

    JobSpec job;
    job.kind = JobKind::kRcdp;
    job.spec_text = kIncompleteSpec;
    job.num_threads = threads;
    ASSERT_TRUE((*service)->Submit("first", job).ok());
    auto first = (*service)->Wait("first");
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    EXPECT_EQ((*service)->verdicts_served_from_cache(), 0u);

    ASSERT_TRUE((*service)->Submit("second", job).ok());
    auto second = (*service)->Wait("second");
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    EXPECT_EQ((*service)->verdicts_served_from_cache(), 1u)
        << threads << " threads";

    const std::string oracle = DirectEvidence(kIncompleteSpec, threads);
    EXPECT_EQ(first->verdict, second->verdict) << threads << " threads";
    EXPECT_EQ(first->evidence, oracle) << threads << " threads";
    EXPECT_EQ(second->evidence, oracle) << threads << " threads";
  }
}

TEST(VerdictCacheTest, ServiceCacheSurvivesRestart) {
  // The journaled verdict record outlives both the job (Forget leaves
  // it) and the process: a restarted service serves it without search.
  const std::string dir = FreshDir("svc_restart");
  DecisionServiceOptions options;
  options.enable_verdict_cache = true;
  std::string evidence;
  {
    auto service = DecisionService::Start(dir, options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    JobSpec job;
    job.kind = JobKind::kRcdp;
    job.spec_text = kIncompleteSpec;
    ASSERT_TRUE((*service)->Submit("warm", job).ok());
    auto r = (*service)->Wait("warm");
    ASSERT_TRUE(r.ok());
    evidence = r->evidence;
  }
  auto service = DecisionService::Start(dir, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  JobSpec job;
  job.kind = JobKind::kRcdp;
  job.spec_text = kIncompleteSpec;
  ASSERT_TRUE((*service)->Submit("served", job).ok());
  auto r = (*service)->Wait("served");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*service)->verdicts_served_from_cache(), 1u);
  EXPECT_EQ(r->evidence, evidence);
}

TEST(VerdictCacheConcurrency, ParallelLookupInsertInvalidate) {
  // Hammer one cache from many threads mixing all three operations on
  // a small fingerprint space; runs under tsan via the preset filter.
  // Invariant checked beyond "no race": a Lookup never returns torn
  // data — the evidence always matches the fingerprint it was inserted
  // under.
  const std::string dir = FreshDir("hammer");
  auto store = MustOpen(dir);
  VerdictCache cache(store.get());
  constexpr size_t kThreads = 8;
  constexpr size_t kIters = 400;
  constexpr uint64_t kSpace = 16;

  std::atomic<size_t> lookups{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, &lookups, t] {
      for (size_t i = 0; i < kIters; ++i) {
        const uint64_t fp = (t * 31 + i) % kSpace;
        switch ((t + i) % 3) {
          case 0: {
            auto hit = cache.Lookup(fp);
            ++lookups;
            if (hit.has_value()) {
              EXPECT_EQ(hit->evidence, StrCat("ev-", fp));
            }
            break;
          }
          case 1:
            EXPECT_TRUE(cache
                            .Insert(fp,
                                    fp % 2 == 0 ? Verdict::kComplete
                                                : Verdict::kIncomplete,
                                    StrCat("ev-", fp))
                            .ok());
            break;
          default:
            EXPECT_TRUE(cache.Invalidate(fp).ok());
            break;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  // Every Lookup resolved to exactly one of hit/miss (no rejection:
  // all records are well-formed), torn outcomes would have failed the
  // evidence check above.
  auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, lookups.load());
  EXPECT_EQ(stats.rejections, 0u);
}

}  // namespace
}  // namespace relcomp
