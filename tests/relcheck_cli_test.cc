// Exit-code contract of the relcheck CLI, exercised against the real
// binary (path injected by CMake as RELCHECK_BINARY):
//   0 complete, 1 incomplete, 2 unknown/exhausted, 3 usage-or-internal.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include "util/str.h"

namespace relcomp {
namespace {

/// Runs the binary with `args`, discarding output; returns exit code.
int RunRelcheck(const std::string& args) {
  const std::string command =
      StrCat(RELCHECK_BINARY, " ", args, " > /dev/null 2> /dev/null");
  int raw = std::system(command.c_str());
  EXPECT_NE(raw, -1);
  EXPECT_TRUE(WIFEXITED(raw)) << "relcheck did not exit normally";
  return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

std::string WriteSpec(const char* tag, const std::string& content) {
  static int counter = 0;
  const std::string path = StrCat(::testing::TempDir(), "/relcheck_cli_",
                                  ::getpid(), "_", tag, "_", counter++,
                                  ".rcspec");
  std::ofstream out(path);
  out << content;
  EXPECT_TRUE(out.good());
  return path;
}

/// Complete: S pairs every master value with a y, and the query
/// projects y away — no complete extension can add an answer.
constexpr char kCompleteSpec[] = R"spec(
relation S(a, b)
master relation M(m)
fact S(0, 0)
fact S(1, 0)
master fact M(0)
master fact M(1)
constraint c0(x) :- S(x, y) |= M[0]
query cq Q(x) :- S(x, y)
)spec";

/// Incomplete: the witness (1, ...) is missing from S.
constexpr char kIncompleteSpec[] = R"spec(
relation S(a, b)
master relation M(m)
fact S(0, 0)
master fact M(0)
master fact M(1)
constraint c0(x) :- S(x, y) |= M[0]
query cq Q(x) :- S(x, y)
)spec";

/// Violates its own containment constraint: 7 is not master data.
constexpr char kNotClosedSpec[] = R"spec(
relation S(a, b)
master relation M(m)
fact S(7, 0)
master fact M(0)
constraint c0(x) :- S(x, y) |= M[0]
query cq Q(x) :- S(x, y)
)spec";

/// Takes more than a couple of decision points to decide: a grid
/// minus one far corner, mirroring the service tests' instance.
std::string GridSpec() {
  std::string s = "relation S(a, b)\nmaster relation M(m)\n";
  for (int x = 0; x <= 5; ++x) {
    for (int y = 0; y <= 6; ++y) {
      if (x == 5 && y == 6) continue;
      s += StrCat("fact S(", x, ", ", y, ")\n");
    }
  }
  for (int m = 0; m <= 5; ++m) s += StrCat("master fact M(", m, ")\n");
  s += "constraint c0(x) :- S(x, y) |= M[0]\n";
  s += "query cq Q(x, y) :- S(x, y)\n";
  return s;
}

TEST(RelcheckCliTest, CompleteSpecExitsZero) {
  EXPECT_EQ(RunRelcheck(WriteSpec("complete", kCompleteSpec)), 0);
}

TEST(RelcheckCliTest, IncompleteSpecExitsOne) {
  EXPECT_EQ(RunRelcheck(WriteSpec("incomplete", kIncompleteSpec)), 1);
}

TEST(RelcheckCliTest, ExhaustedBudgetExitsTwo) {
  // A step budget (unlike a wall-clock one) exhausts at the same
  // decision point on every machine — no timing flake.
  EXPECT_EQ(RunRelcheck(StrCat(WriteSpec("grid", GridSpec()),
                               " --max-steps 3")),
            2);
}

TEST(RelcheckCliTest, UsageErrorsExitThree) {
  EXPECT_EQ(RunRelcheck(""), 3);                       // no spec
  EXPECT_EQ(RunRelcheck("--no-such-flag"), 3);         // unknown flag
  EXPECT_EQ(RunRelcheck("/no/such/spec.rcspec"), 3);   // unreadable
  EXPECT_EQ(RunRelcheck("--serve unix:/tmp/x.sock"), 3);  // no store dir
}

TEST(RelcheckCliTest, NotPartiallyClosedExitsThree) {
  // The model's precondition fails — an input error, not a verdict.
  EXPECT_EQ(RunRelcheck(WriteSpec("open", kNotClosedSpec)), 3);
}

TEST(RelcheckCliTest, ConnectToDeadServerExitsThree) {
  EXPECT_EQ(RunRelcheck(StrCat("--connect unix:/no/such/server.sock ",
                               WriteSpec("dead", kIncompleteSpec))),
            3);
}

std::string WriteDelta(const char* tag, const std::string& content) {
  static int counter = 0;
  const std::string path = StrCat(::testing::TempDir(), "/relcheck_cli_",
                                  ::getpid(), "_", tag, "_", counter++,
                                  ".delta");
  std::ofstream out(path);
  out << content;
  EXPECT_TRUE(out.good());
  return path;
}

std::string FreshStoreDir(const char* tag) {
  static int counter = 0;
  const std::string dir = StrCat(::testing::TempDir(), "/relcheck_store_",
                                 ::getpid(), "_", tag, "_", counter++);
  std::system(StrCat("mkdir -p ", dir).c_str());
  return dir;
}

TEST(RelcheckCliTest, DeltaRequiresResumeDir) {
  const std::string spec = WriteSpec("delta_nodir", kCompleteSpec);
  const std::string delta = WriteDelta("noop", "insert S(0, 0)\n");
  EXPECT_EQ(RunRelcheck(StrCat(spec, " --delta ", delta)), 3);
}

TEST(RelcheckCliTest, DeltaRecertifyTransitionsCompleteToIncomplete) {
  // Baseline certifies COMPLETE; a master insert opens a new witness
  // slot, and the incremental re-audit flips the exit code to 1.
  const std::string spec = WriteSpec("delta_c2i", kCompleteSpec);
  const std::string dir = FreshStoreDir("c2i");
  EXPECT_EQ(RunRelcheck(StrCat(spec, " --resume-dir ", dir)), 0);
  const std::string delta = WriteDelta("c2i", "master insert M(2)\n");
  EXPECT_EQ(
      RunRelcheck(StrCat(spec, " --resume-dir ", dir, " --delta ", delta)),
      1);
}

TEST(RelcheckCliTest, DeltaRecertifyTransitionsIncompleteToComplete) {
  // Inserting the missing witness makes the incomplete spec complete.
  const std::string spec = WriteSpec("delta_i2c", kIncompleteSpec);
  const std::string dir = FreshStoreDir("i2c");
  EXPECT_EQ(RunRelcheck(StrCat(spec, " --resume-dir ", dir)), 1);
  const std::string delta = WriteDelta("i2c", "insert S(1, 0)\n");
  EXPECT_EQ(
      RunRelcheck(StrCat(spec, " --resume-dir ", dir, " --delta ", delta)),
      0);
}

TEST(RelcheckCliTest, DeltaNoopServesCertificate) {
  // A no-op batch leaves the content fingerprint unchanged; the stored
  // certificate is re-served with the same exit code.
  const std::string spec = WriteSpec("delta_noop", kCompleteSpec);
  const std::string dir = FreshStoreDir("noop");
  EXPECT_EQ(RunRelcheck(StrCat(spec, " --resume-dir ", dir)), 0);
  const std::string delta =
      WriteDelta("noop2", "insert S(0, 0)\ndelete S(9, 9)\n");
  EXPECT_EQ(
      RunRelcheck(StrCat(spec, " --resume-dir ", dir, " --delta ", delta)),
      0);
}

TEST(RelcheckCliTest, DeltaBreakingClosureExitsThree) {
  // The updated database violates V: the model's precondition fails,
  // which is an input error on the delta path too.
  const std::string spec = WriteSpec("delta_open", kCompleteSpec);
  const std::string dir = FreshStoreDir("open");
  EXPECT_EQ(RunRelcheck(StrCat(spec, " --resume-dir ", dir)), 0);
  const std::string delta = WriteDelta("open", "insert S(7, 0)\n");
  EXPECT_EQ(
      RunRelcheck(StrCat(spec, " --resume-dir ", dir, " --delta ", delta)),
      3);
}

TEST(RelcheckCliTest, DeltaBadBatchExitsThree) {
  const std::string spec = WriteSpec("delta_bad", kCompleteSpec);
  const std::string dir = FreshStoreDir("bad");
  const std::string malformed = WriteDelta("bad", "frobnicate S(0, 0)\n");
  EXPECT_EQ(RunRelcheck(
                StrCat(spec, " --resume-dir ", dir, " --delta ", malformed)),
            3);
  // Syntactically fine, semantically bad: unknown relation.
  const std::string unknown = WriteDelta("bad2", "insert NoSuch(0)\n");
  EXPECT_EQ(RunRelcheck(
                StrCat(spec, " --resume-dir ", dir, " --delta ", unknown)),
            3);
  EXPECT_EQ(RunRelcheck(StrCat(spec, " --resume-dir ", dir,
                               " --delta /no/such/file.delta")),
            3);
}

TEST(RelcheckCliTest, WorstQueryOutcomeWins) {
  // One complete and one incomplete query in the same spec: exit 1.
  const std::string spec = StrCat(
      "relation S(a, b)\nmaster relation M(m)\n",
      "fact S(0, 0)\nfact S(1, 0)\n",
      "master fact M(0)\nmaster fact M(1)\n",
      "constraint c0(x) :- S(x, y) |= M[0]\n",
      "query cq Q(x) :- S(x, y)\n",      // complete (projection)
      "query cq R(x, y) :- S(x, y)\n");  // incomplete (fresh y)
  EXPECT_EQ(RunRelcheck(WriteSpec("mixed", spec)), 1);
}

}  // namespace
}  // namespace relcomp
