// Client-side endpoint failover, independent of the fabric: a NetClient
// given a comma-separated endpoint list talks to the first endpoint it
// can reach and fails over in list order on transport loss or a typed
// kUnavailable refusal — and a caller deadline bounds the whole retry
// dance with kDeadlineExceeded instead of grinding the retry budget
// against endpoints that are all dead.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>

#include "net/client.h"
#include "net/server.h"
#include "service/decision_service.h"
#include "util/str.h"

namespace relcomp {
namespace {

constexpr char kTinySpec[] =
    "relation S(a)\nmaster relation M(m)\nfact S(0)\nmaster fact M(0)\n"
    "constraint c0(x) :- S(x) |= M[0]\nquery cq Q(x) :- S(x)\n";

std::string FreshDir(const char* tag) {
  static int counter = 0;
  return StrCat(::testing::TempDir(), "/relcomp_failover_", ::getpid(), "_",
                tag, "_", counter++);
}

std::string FreshSocket(const char* tag) {
  static int counter = 0;
  return StrCat("unix:", ::testing::TempDir(), "/relcomp_failover_",
                ::getpid(), "_", tag, "_", counter++, ".sock");
}

JobSpec TinyJob() {
  JobSpec job;
  job.kind = JobKind::kRcdp;
  job.spec_text = kTinySpec;
  return job;
}

struct TestServer {
  std::unique_ptr<DecisionService> service;
  std::unique_ptr<NetServer> server;
};

TestServer StartServer(const char* tag, NetServerOptions server_options = {}) {
  TestServer out;
  auto service = DecisionService::Start(FreshDir(tag));
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  if (!service.ok()) return out;
  out.service = std::move(*service);
  auto server =
      NetServer::Start(out.service.get(), FreshSocket(tag), server_options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  if (!server.ok()) return out;
  out.server = std::move(*server);
  return out;
}

TEST(NetFailoverTest, ParsesCommaSeparatedEndpointList) {
  NetClient client("unix:/a.sock,unix:/b.sock,,tcp:127.0.0.1:9000");
  ASSERT_EQ(client.endpoints().size(), 3u);
  EXPECT_EQ(client.endpoints()[0], "unix:/a.sock");
  EXPECT_EQ(client.current_endpoint(), "unix:/a.sock");
}

TEST(NetFailoverTest, PrefersTheFirstEndpointWhileItLives) {
  TestServer a = StartServer("prefer_a");
  TestServer b = StartServer("prefer_b");
  ASSERT_TRUE(a.server && b.server);
  NetClient client(StrCat(a.server->address(), ",", b.server->address()));
  ASSERT_TRUE(client.Submit("job", TinyJob()).ok());
  auto reply = client.AwaitTerminal("job");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(client.stats().failovers, 0u);
  EXPECT_EQ(client.current_endpoint(), a.server->address());
  EXPECT_EQ(b.server->stats().frames_received, 0u)
      << "second endpoint was contacted although the first was alive";
}

TEST(NetFailoverTest, FailsOverInOrderPastDeadEndpoints) {
  TestServer live = StartServer("live");
  ASSERT_TRUE(live.server);
  // Two dead endpoints ahead of the live one: the client must walk the
  // list in order and land on the third.
  NetClient client(StrCat("unix:/no/such/a.sock,unix:/no/such/b.sock,",
                          live.server->address()));
  ASSERT_TRUE(client.Submit("job", TinyJob()).ok());
  EXPECT_EQ(client.current_endpoint(), live.server->address());
  EXPECT_GE(client.stats().failovers, 2u);
  auto reply = client.AwaitTerminal("job");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->verdict, Verdict::kComplete);
}

TEST(NetFailoverTest, FailsOverMidSessionWhenTheServerDies) {
  TestServer a = StartServer("mid_a");
  TestServer b = StartServer("mid_b");
  ASSERT_TRUE(a.server && b.server);
  NetClient client(StrCat(a.server->address(), ",", b.server->address()));
  ASSERT_TRUE(client.Submit("job", TinyJob()).ok());
  ASSERT_TRUE(client.AwaitTerminal("job").ok());
  // First endpoint dies; the next call must fail over and be answered
  // by the second (whose separate store has never seen the job —
  // kNotFound is the typed proof the reply came from B).
  a.server->Shutdown();
  auto reply = client.Poll("job");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->code, StatusCode::kNotFound) << reply->ToStatus().ToString();
  EXPECT_GE(client.stats().failovers, 1u);
  EXPECT_EQ(client.current_endpoint(), b.server->address());
}

TEST(NetFailoverTest, TypedUnavailableRefusalAdvancesTheCursor) {
  // A front server that refuses every keyed op (the fabric's
  // wrong-owner shed) and a normal one behind it: the typed refusal
  // must advance the failover cursor exactly like a dead socket.
  NetServerOptions refusing;
  refusing.route = [](const std::string&) -> Result<DecisionService*> {
    return Status::Unavailable("shard 0 is owned by someone else");
  };
  TestServer refuser = StartServer("refuse", refusing);
  TestServer normal = StartServer("accept");
  ASSERT_TRUE(refuser.server && normal.server);
  NetClient client(
      StrCat(refuser.server->address(), ",", normal.server->address()));
  ASSERT_TRUE(client.Submit("job", TinyJob()).ok());
  EXPECT_GE(client.stats().failovers, 1u);
  EXPECT_EQ(client.current_endpoint(), normal.server->address());
  auto reply = client.AwaitTerminal("job");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
}

TEST(NetFailoverTest, CallDeadlineBoundsAllDeadEndpoints) {
  NetClientOptions options;
  options.max_retries = 100000;  // deep budget the deadline must preempt
  options.call_deadline = std::chrono::milliseconds(300);
  NetClient client("unix:/no/such/a.sock,unix:/no/such/b.sock", options);
  const auto start = std::chrono::steady_clock::now();
  Status submitted = client.Submit("job", TinyJob());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.code(), StatusCode::kDeadlineExceeded)
      << submitted.ToString();
  EXPECT_LT(elapsed, std::chrono::seconds(10))
      << "deadline did not bound the retry dance";
  EXPECT_GE(client.stats().failovers, 1u);
}

TEST(NetFailoverTest, UnboundedCallStillEndsByRetryBudget) {
  // call_deadline = 0 keeps the historical contract: the retry budget,
  // not a clock, ends the call, with a typed kUnavailable.
  NetClientOptions options;
  options.max_retries = 2;
  options.backoff_base = std::chrono::milliseconds(1);
  NetClient client("unix:/no/such/a.sock", options);
  Status submitted = client.Submit("job", TinyJob());
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.code(), StatusCode::kUnavailable)
      << submitted.ToString();
}

TEST(NetFailoverTest, AwaitTerminalDeadlineIsTyped) {
  NetClientOptions options;
  options.max_retries = 1;
  options.backoff_base = std::chrono::milliseconds(1);
  NetClient client("unix:/no/such/a.sock", options);
  auto reply = client.AwaitTerminal("job", std::chrono::milliseconds(5),
                                    std::chrono::milliseconds(100));
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded)
      << reply.status().ToString();
}

}  // namespace
}  // namespace relcomp
