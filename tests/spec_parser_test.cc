#include <gtest/gtest.h>

#include <string>

#include "completeness/rcdp.h"
#include "constraints/constraint_check.h"
#include "eval/query_eval.h"
#include "query/parser.h"
#include "spec/spec_parser.h"

namespace relcomp {
namespace {

constexpr char kCrmSpec[] = R"spec(
% comment line
relation Cust(cid, name, cc, ac, phn)
relation Supt(eid, dept, cid)
master relation DCust(cid, name, ac, phn)

master fact DCust("c0", "n0", "908", "p0")   % trailing comment
master fact DCust("c1", "n1", "201", "p1")
fact Cust("c0", "n0", "01", "908", "p0")
fact Supt("e0", "d0", "c0")

constraint q0(c) :- Cust(c, n, cc, a, p), Supt(e, d, c), cc = "01" |= DCust[0]
constraint amo() :- Supt(e, d1, c1), Supt(e, d2, c2), c1 != c2 |= empty

query cq Q1(c) :- Supt(e, d, c), e = "e0"
)spec";

TEST(SpecParserTest, ParsesTheCrmSpec) {
  auto spec = ParseCompletenessSpec(kCrmSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->db_schema->size(), 2u);
  EXPECT_EQ(spec->master_schema->size(), 1u);
  EXPECT_EQ(spec->db.TotalTuples(), 2u);
  EXPECT_EQ(spec->master.TotalTuples(), 2u);
  EXPECT_EQ(spec->constraints.size(), 2u);
  ASSERT_EQ(spec->queries.size(), 1u);
  EXPECT_EQ(spec->queries[0].language(), QueryLanguage::kCq);

  auto closed = Satisfies(spec->constraints, spec->db, spec->master);
  ASSERT_TRUE(closed.ok());
  EXPECT_TRUE(*closed);

  // The parsed artifacts drive the decider end to end: the at-most-one
  // constraint plus e0's existing tuple make Q1 complete (the paper's
  // Example 3.1 pattern).
  auto verdict = DecideRcdp(spec->queries[0], spec->db, spec->master,
                            spec->constraints);
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_TRUE(verdict->complete);

  // Dropping the at-most-one constraint reopens the query.
  ConstraintSet phi0_only;
  phi0_only.Add(spec->constraints.constraints()[0]);
  auto open_verdict = DecideRcdp(spec->queries[0], spec->db, spec->master,
                                 phi0_only);
  ASSERT_TRUE(open_verdict.ok());
  EXPECT_FALSE(open_verdict->complete);
}

TEST(SpecParserTest, DomainAnnotations) {
  auto spec = ParseCompletenessSpec(R"(
relation Flag(f: bool, note)
relation Slot(s: int(4), v: inf)
fact Flag(1, "on")
fact Slot(3, "x")
query cq Q(f) :- Flag(f, n)
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const RelationSchema* flag = spec->db_schema->FindRelation("Flag");
  ASSERT_NE(flag, nullptr);
  EXPECT_TRUE(flag->attribute(0).domain->is_finite());
  EXPECT_TRUE(flag->attribute(1).domain->is_infinite());
  const RelationSchema* slot = spec->db_schema->FindRelation("Slot");
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->attribute(0).domain->finite_values().size(), 4u);
  // Out-of-domain facts are rejected with the line number.
  auto bad = ParseCompletenessSpec(
      "relation Flag(f: bool)\nfact Flag(7)\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST(SpecParserTest, AllQueryLanguages) {
  auto spec = ParseCompletenessSpec(R"(
relation R(a, b)
relation S(a)
query cq   Qc(x) :- R(x, y)
query ucq  Qu(x) :- R(x, y). Qu(x) :- S(x)
query efo  Qe(x) := S(x) | exists y. R(x, y)
query fo   Qf(x) := S(x) & !(exists y. R(x, y))
query fp   T(x) :- S(x). T(x) :- R(x, y), T(y)
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec->queries.size(), 5u);
  EXPECT_EQ(spec->queries[0].language(), QueryLanguage::kCq);
  EXPECT_EQ(spec->queries[1].language(), QueryLanguage::kUcq);
  EXPECT_EQ(spec->queries[2].language(), QueryLanguage::kPositive);
  EXPECT_EQ(spec->queries[3].language(), QueryLanguage::kFo);
  EXPECT_EQ(spec->queries[4].language(), QueryLanguage::kDatalog);
}

TEST(SpecParserTest, FoConstraintsGetTaggedByFragment) {
  auto spec = ParseCompletenessSpec(R"(
relation R(a, b)
constraint q(x) := exists y. R(x, y) |= empty
constraint p(x) := R(x, x) & !(exists y. R(x, y)) |= empty
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec->constraints.size(), 2u);
  EXPECT_EQ(spec->constraints.constraints()[0].language(),
            QueryLanguage::kPositive);
  EXPECT_EQ(spec->constraints.constraints()[1].language(),
            QueryLanguage::kFo);
}

TEST(SpecParserTest, ErrorsCarryLineNumbers) {
  struct Case {
    const char* text;
    const char* expect;
  };
  Case cases[] = {
      {"relatoin R(a)\n", "line 1"},
      {"relation R(a)\nfact R(x)\n", "line 2"},      // variable in fact
      {"relation R(a)\nconstraint q() :- R(x)\n", "line 2"},  // missing |=
      {"relation R(a)\nquery zz Q(x) :- R(x)\n", "unknown query language"},
      {"relation R(a)\nrelation R(b)\n", "line 2"},  // duplicate
      {"relation R(a)\nconstraint q(x) :- R(x) |= M[0]\n", "line 2"},
  };
  for (const Case& c : cases) {
    auto spec = ParseCompletenessSpec(c.text);
    ASSERT_FALSE(spec.ok()) << c.text;
    EXPECT_NE(spec.status().message().find(c.expect), std::string::npos)
        << spec.status().ToString();
  }
}

TEST(SpecParserTest, CommentCharactersInsideStringsSurvive) {
  auto spec = ParseCompletenessSpec(R"(
relation R(a)
fact R("100% #1")
query cq Q(x) :- R(x)
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_TRUE(spec->db.Contains("R", Tuple({Value::Str("100% #1")})));
}

// ---------------------------------------------------------------------------
// Hostile-input corpus: adversarial spec and query fragments must come
// back as kInvalidArgument with position info — never a crash, a hang,
// or an unbounded allocation.

TEST(SpecParserHardeningTest, DeeplyNestedFormulaIsRejectedNotOverflowed) {
  // 100k nested parens would overflow the recursive-descent stack
  // without the depth cap.
  std::string q = "Q(x) := ";
  for (int i = 0; i < 100000; ++i) q += '(';
  q += "R(x)";
  for (int i = 0; i < 100000; ++i) q += ')';
  auto parsed = ParseQuery(q, QueryLanguage::kFo);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("depth"), std::string::npos)
      << parsed.status().ToString();
  EXPECT_NE(parsed.status().message().find("offset"), std::string::npos)
      << parsed.status().ToString();
}

TEST(SpecParserHardeningTest, DeepNegationChainIsRejectedNotOverflowed) {
  std::string q = "Q(x) := " + std::string(100000, '!') + "R(x)";
  auto parsed = ParseQuery(q, QueryLanguage::kFo);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("depth"), std::string::npos);
}

TEST(SpecParserHardeningTest, ModerateNestingStillParses) {
  std::string q = "Q(x) := ";
  for (int i = 0; i < 200; ++i) q += '(';
  q += "R(x)";
  for (int i = 0; i < 200; ++i) q += ')';
  auto parsed = ParseQuery(q, QueryLanguage::kFo);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
}

TEST(SpecParserHardeningTest, HugeArityArgListIsRejected) {
  std::string q = "Q(x) :- R(x";
  for (int i = 0; i < 5000; ++i) q += ", x";
  q += ").";
  auto parsed = ParseQuery(q, QueryLanguage::kCq);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("argument list"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(SpecParserHardeningTest, HugeRelationArityIsRejectedWithLine) {
  std::string spec = "\nrelation R(a0";
  for (int i = 1; i < 5000; ++i) spec += ", a" + std::to_string(i);
  spec += ")\n";
  auto parsed = ParseCompletenessSpec(spec);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("spec line 2"), std::string::npos)
      << parsed.status().ToString();
  EXPECT_NE(parsed.status().message().find("arity"), std::string::npos);
}

TEST(SpecParserHardeningTest, GiantFiniteDomainIsRejectedNotAllocated) {
  // int(2^40) would eagerly materialize a terabyte of Values.
  auto parsed =
      ParseCompletenessSpec("relation R(a: int(1099511627776))\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("finite domain"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(SpecParserHardeningTest, TruncatedTokensErrorCleanly) {
  // Every prefix-truncated fragment must produce a clean
  // kInvalidArgument (position info where applicable) — no hang, no
  // crash, no out-of-range read.
  const char* corpus[] = {
      "relation",
      "relation R(",
      "relation R(a",
      "relation R(a:",
      "relation R(a: int(",
      "fact",
      "fact R(",
      "fact R(\"unterminated",
      "constraint",
      "constraint q() :- R(x)",
      "constraint q() :- R(x) |=",
      "constraint q() :- R(x) |= T[",
      "constraint q() :- R(x) |= T[0",
      "query",
      "query cq",
      "query cq Q(x) :-",
      "query cq Q(x) :- R(",
      "query fo Q(x) :=",
      "query fo Q(x) := exists",
      "query fo Q(x) := exists y",
      "query fo Q(x) := (R(x)",
      "master",
      "master relation R(a",
      ":",
      "@@@@",
  };
  for (const char* fragment : corpus) {
    auto parsed = ParseCompletenessSpec(fragment);
    ASSERT_FALSE(parsed.ok()) << "accepted: " << fragment;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
        << fragment << " -> " << parsed.status().ToString();
    EXPECT_FALSE(parsed.status().message().empty()) << fragment;
  }
}

TEST(SpecParserHardeningTest, QueryParserTruncationCorpus) {
  struct Case {
    const char* text;
    QueryLanguage lang;
  };
  const Case corpus[] = {
      {"", QueryLanguage::kCq},
      {"Q", QueryLanguage::kCq},
      {"Q(", QueryLanguage::kCq},
      {"Q(x", QueryLanguage::kCq},
      {"Q(x)", QueryLanguage::kCq},
      {"Q(x) :- R(x,", QueryLanguage::kCq},
      {"Q(x) :- R(x) R", QueryLanguage::kCq},
      {"Q(x) := ", QueryLanguage::kFo},
      {"Q(x) := R(x) &", QueryLanguage::kFo},
      {"Q(x) := R(x) |", QueryLanguage::kFo},
      {"Q(x) := forall .", QueryLanguage::kFo},
      {"Q(x) := \"dangling", QueryLanguage::kFo},
      {"Q(1) := R(x)", QueryLanguage::kFo},
  };
  for (const Case& c : corpus) {
    auto parsed = ParseQuery(c.text, c.lang);
    ASSERT_FALSE(parsed.ok()) << "accepted: " << c.text;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
        << c.text << " -> " << parsed.status().ToString();
  }
}

TEST(SpecParserHardeningTest, OffsetsPointIntoTheInput) {
  auto parsed = ParseQuery("Q(x) :- R(x) @", QueryLanguage::kCq);
  ASSERT_FALSE(parsed.ok());
  // "unexpected character '@' at offset 13"
  EXPECT_NE(parsed.status().message().find("offset 13"), std::string::npos)
      << parsed.status().ToString();
}

TEST(SpecParserTest, LoadsTheShippedExampleSpec) {
  auto spec = LoadCompletenessSpec(
      std::string(RELCOMP_SOURCE_DIR) + "/examples/specs/crm.rcspec");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->queries.size(), 2u);
  auto closed = Satisfies(spec->constraints, spec->db, spec->master);
  ASSERT_TRUE(closed.ok());
  EXPECT_TRUE(*closed);
}

}  // namespace
}  // namespace relcomp
