#include <gtest/gtest.h>

#include "automata/two_head_dfa.h"
#include "completeness/brute_force.h"
#include "constraints/constraint_check.h"
#include "eval/query_eval.h"

namespace relcomp {
namespace {

/// A 2-head DFA accepting strings of even length: head 1 advances two
/// symbols per accepted... simpler: both heads advance together, state
/// toggles parity; accept when the heads park with parity 0.
TwoHeadDfa EvenLengthDfa() {
  TwoHeadDfa a;
  a.num_states = 3;
  a.initial_state = 0;   // parity 0
  a.accepting_state = 2;
  // Read any symbol with both heads, toggling parity between 0 and 1.
  for (int sym : {0, 1}) {
    a.AddTransition(0, sym, sym, 1, 1, 1);
    a.AddTransition(1, sym, sym, 0, 1, 1);
  }
  // Both heads at the end with parity 0: accept.
  a.AddTransition(0, TwoHeadDfa::kEpsilon, TwoHeadDfa::kEpsilon, 2, 0, 0);
  return a;
}

/// A DFA that accepts nothing: no transition reaches the accepting
/// state.
TwoHeadDfa EmptyDfa() {
  TwoHeadDfa a;
  a.num_states = 2;
  a.initial_state = 0;
  a.accepting_state = 1;
  for (int sym : {0, 1}) a.AddTransition(0, sym, sym, 0, 1, 1);
  return a;
}

/// Accepts exactly the string "1": reads a 1 with both heads, then
/// accepts with both heads parked.
TwoHeadDfa SingleOneDfa() {
  TwoHeadDfa a;
  a.num_states = 3;
  a.initial_state = 0;
  a.accepting_state = 2;
  a.AddTransition(0, 1, 1, 1, 1, 1);
  a.AddTransition(1, TwoHeadDfa::kEpsilon, TwoHeadDfa::kEpsilon, 2, 0, 0);
  return a;
}

TEST(TwoHeadDfaTest, SimulatorRunsEvenLength) {
  TwoHeadDfa a = EvenLengthDfa();
  EXPECT_EQ(RunTwoHeadDfa(a, {}), true);
  EXPECT_EQ(RunTwoHeadDfa(a, {0}), false);
  EXPECT_EQ(RunTwoHeadDfa(a, {0, 1}), true);
  EXPECT_EQ(RunTwoHeadDfa(a, {1, 1, 0}), false);
  EXPECT_EQ(RunTwoHeadDfa(a, {1, 1, 0, 0}), true);
}

TEST(TwoHeadDfaTest, EmptinessSearch) {
  auto found = FindAcceptedInput(EvenLengthDfa(), 3);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->size() % 2, 0u);
  EXPECT_FALSE(FindAcceptedInput(EmptyDfa(), 4).has_value());
  auto one = FindAcceptedInput(SingleOneDfa(), 3);
  ASSERT_TRUE(one.has_value());
  EXPECT_EQ(*one, std::vector<int>({1}));
}

TEST(TwoHeadDfaEncodingTest, DatalogQueryAcceptsEncodedStrings) {
  // The Theorem 3.1(3) encoding: Q(D_w) is true iff A accepts w, where
  // D_w is the string encoding. This ties the datalog/fixpoint
  // substrate to the simulator.
  TwoHeadDfa a = EvenLengthDfa();
  auto encoded = EncodeTwoHeadDfaRcdp(a);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  for (const std::vector<int>& input :
       {std::vector<int>{}, {0}, {0, 1}, {1, 0, 1}, {1, 1, 1, 0}}) {
    Database dw(encoded->db_schema);
    ASSERT_TRUE(EncodeInputString(input, &dw).ok());
    auto answer = Evaluate(encoded->query, dw);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    std::optional<bool> simulated = RunTwoHeadDfa(a, input);
    ASSERT_TRUE(simulated.has_value());
    EXPECT_EQ(!answer->empty(), *simulated)
        << "input size " << input.size();
  }
}

TEST(TwoHeadDfaEncodingTest, EncodedStringsAreWellFormed) {
  TwoHeadDfa a = EvenLengthDfa();
  auto encoded = EncodeTwoHeadDfaRcdp(a);
  ASSERT_TRUE(encoded.ok());
  Database dw(encoded->db_schema);
  ASSERT_TRUE(EncodeInputString({1, 0}, &dw).ok());
  auto closed = Satisfies(encoded->constraints, dw, encoded->master);
  ASSERT_TRUE(closed.ok());
  EXPECT_TRUE(*closed);
  // Breaking functionality of F violates V2.
  ASSERT_TRUE(dw.Insert("F", Tuple::Ints({0, 7})).ok());
  auto broken = Satisfies(encoded->constraints, dw, encoded->master);
  ASSERT_TRUE(broken.ok());
  EXPECT_FALSE(*broken);
}

TEST(TwoHeadDfaEncodingTest, BoundedBruteForceSemiDecidesEmptiness) {
  // The undecidable cell RCDP(FP, CQ): Decide refuses it; the bounded
  // brute force (definition chasing) demonstrates the correspondence:
  // D = ∅ has a small counterexample extension iff A accepts a short
  // string. SingleOneDfa accepts "1", whose encoding has 3 tuples.
  TwoHeadDfa accepts = SingleOneDfa();
  auto encoded = EncodeTwoHeadDfaRcdp(accepts);
  ASSERT_TRUE(encoded.ok());
  BruteForceOptions bf;
  bf.universe = {Value::Int(0), Value::Int(1)};
  bf.max_delta_tuples = 3;
  auto result = BruteForceRcdp(encoded->query, encoded->db, encoded->master,
                               encoded->constraints, bf);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->complete);

  // The empty-language DFA admits no counterexample within the bound.
  auto empty_encoded = EncodeTwoHeadDfaRcdp(EmptyDfa());
  ASSERT_TRUE(empty_encoded.ok());
  auto empty_result =
      BruteForceRcdp(empty_encoded->query, empty_encoded->db,
                     empty_encoded->master, empty_encoded->constraints, bf);
  ASSERT_TRUE(empty_result.ok()) << empty_result.status().ToString();
  EXPECT_TRUE(empty_result->complete);
}

}  // namespace
}  // namespace relcomp
