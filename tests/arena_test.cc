#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/execution_control.h"

namespace relcomp {
namespace {

TEST(ArenaTest, AllocationsAreDisjointAndWritable) {
  Arena arena(/*initial_block_bytes=*/64);
  std::vector<char*> ptrs;
  for (int i = 0; i < 200; ++i) {
    char* p = static_cast<char*>(arena.Allocate(17));
    std::memset(p, i & 0xFF, 17);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 200; ++i) {
    for (int j = 0; j < 17; ++j) {
      EXPECT_EQ(static_cast<unsigned char>(ptrs[i][j]), i & 0xFF)
          << "allocation " << i << " was clobbered";
    }
  }
  EXPECT_GE(arena.used_bytes(), 200u * 17u);
  EXPECT_EQ(arena.high_water_bytes(), arena.used_bytes());
}

TEST(ArenaTest, RespectsAlignment) {
  Arena arena(/*initial_block_bytes=*/64);
  arena.Allocate(1, 1);
  for (size_t align : {1u, 2u, 4u, 8u, 16u, 32u}) {
    void* p = arena.Allocate(3, align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
        << "alignment " << align;
  }
  uint64_t* arr = arena.AllocateArray<uint64_t>(5);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(arr) % alignof(uint64_t), 0u);
  for (int i = 0; i < 5; ++i) arr[i] = i;  // must not fault under asan
}

TEST(ArenaTest, OversizedRequestGetsOwnBlock) {
  Arena arena(/*initial_block_bytes=*/32);
  char* big = static_cast<char*>(arena.Allocate(10000));
  std::memset(big, 0xAB, 10000);
  char* small = static_cast<char*>(arena.Allocate(8));
  std::memset(small, 0xCD, 8);
  EXPECT_EQ(static_cast<unsigned char>(big[9999]), 0xAB);
  EXPECT_GE(arena.allocated_bytes(), 10008u);
}

TEST(ArenaTest, ResetRetainsCapacityAndRewinds) {
  Arena arena(/*initial_block_bytes=*/128);
  for (int i = 0; i < 100; ++i) arena.Allocate(64);
  size_t capacity = arena.allocated_bytes();
  size_t high = arena.high_water_bytes();
  arena.Reset();
  EXPECT_EQ(arena.used_bytes(), 0u);
  EXPECT_EQ(arena.allocated_bytes(), capacity);
  EXPECT_EQ(arena.high_water_bytes(), high);
  // Refilling to the same footprint must not grow the arena.
  for (int i = 0; i < 100; ++i) arena.Allocate(64);
  EXPECT_EQ(arena.allocated_bytes(), capacity);
}

TEST(ArenaTest, ZeroByteAllocationsReturnNonNull) {
  Arena arena;
  void* a = arena.Allocate(0);
  void* b = arena.Allocate(0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
  EXPECT_NE(a, b);
}

#ifndef NDEBUG
TEST(ArenaTest, ResetPoisonsReclaimedBytes) {
  Arena arena(/*initial_block_bytes=*/64);
  char* p = static_cast<char*>(arena.Allocate(32));
  std::memset(p, 0x11, 32);
  arena.Reset();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(p[i]), 0xDD)
        << "byte " << i << " not poisoned after Reset";
  }
}
#endif

/// The PR 3 memory-cap contract extended to arenas: block memory is
/// charged through ExecutionBudget::TrackBytes when carved from the
/// heap, the cap trips as kResourceExhausted at the next decision
/// point, and a checkpoint captured at the trip survives a
/// Rearm() + resume round-trip.
TEST(ArenaExhaustionTest, CapTripsAndBudgetCanRearm) {
  ExecutionBudget budget;
  budget.set_max_tracked_bytes(4 * 1024);
  {
    Arena arena(/*initial_block_bytes=*/1024);
    arena.set_memory_tracker(&budget);
    arena.Allocate(512);
    EXPECT_TRUE(budget.OnDecisionPoint().ok());
    // Grow past the cap; the trip surfaces at the next decision point.
    arena.Allocate(16 * 1024);
    Status s = budget.OnDecisionPoint();
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
    EXPECT_FALSE(budget.exhaustion_status().ok());
    // Reset keeps blocks, so the charge — and the trip — persist.
    arena.Reset();
    EXPECT_FALSE(budget.OnDecisionPoint().ok());
  }
  // Destruction releases every charged byte; a rearmed budget runs.
  EXPECT_EQ(budget.tracked_bytes(), 0u);
  budget.Rearm();
  EXPECT_TRUE(budget.OnDecisionPoint().ok());
}

TEST(ArenaExhaustionTest, TrackedBytesMatchAllocatedBytes) {
  ExecutionBudget budget;
  Arena arena(/*initial_block_bytes=*/256);
  arena.set_memory_tracker(&budget);
  for (int i = 0; i < 50; ++i) arena.Allocate(100);
  EXPECT_EQ(budget.tracked_bytes(), arena.allocated_bytes());
  arena.Reset();
  EXPECT_EQ(budget.tracked_bytes(), arena.allocated_bytes());
}

}  // namespace
}  // namespace relcomp
