#include <gtest/gtest.h>

#include "eval/conjunctive_eval.h"
#include "eval/datalog_eval.h"
#include "eval/fo_eval.h"
#include "eval/query_eval.h"
#include "query/parser.h"
#include "query/positive_query.h"
#include "workload/generators.h"

namespace relcomp {
namespace {

class EvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = std::make_shared<Schema>();
    ASSERT_TRUE(schema->AddRelation("R", 2).ok());
    ASSERT_TRUE(schema->AddRelation("S", 1).ok());
    db_ = Database(schema);
    // R = {(1,2), (2,3), (3,4)}, S = {(2), (4)}.
    ASSERT_TRUE(db_.Insert("R", Tuple::Ints({1, 2})).ok());
    ASSERT_TRUE(db_.Insert("R", Tuple::Ints({2, 3})).ok());
    ASSERT_TRUE(db_.Insert("R", Tuple::Ints({3, 4})).ok());
    ASSERT_TRUE(db_.Insert("S", Tuple::Ints({2})).ok());
    ASSERT_TRUE(db_.Insert("S", Tuple::Ints({4})).ok());
  }

  Relation EvalCqText(const std::string& text) {
    auto q = ParseConjunctiveQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    auto result = EvalConjunctive(*q, db_);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *result;
  }

  Database db_;
};

TEST_F(EvalTest, SingleAtomScan) {
  Relation r = EvalCqText("Q(x, y) :- R(x, y).");
  EXPECT_EQ(r.size(), 3u);
}

TEST_F(EvalTest, JoinAndProjection) {
  Relation r = EvalCqText("Q(x) :- R(x, y), S(y).");
  EXPECT_EQ(r.size(), 2u);  // x=1 (y=2), x=3 (y=4)
  EXPECT_TRUE(r.Contains(Tuple::Ints({1})));
  EXPECT_TRUE(r.Contains(Tuple::Ints({3})));
}

TEST_F(EvalTest, SelfJoinPath) {
  Relation r = EvalCqText("Q(x, z) :- R(x, y), R(y, z).");
  EXPECT_EQ(r.size(), 2u);  // (1,3), (2,4)
}

TEST_F(EvalTest, ConstantsAndComparisons) {
  Relation r = EvalCqText("Q(y) :- R(1, y).");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(Tuple::Ints({2})));
  Relation ne = EvalCqText("Q(x, y) :- R(x, y), x != 2.");
  EXPECT_EQ(ne.size(), 2u);
  Relation eq = EvalCqText("Q(x) :- R(x, y), y = 3.");
  ASSERT_EQ(eq.size(), 1u);
  EXPECT_TRUE(eq.Contains(Tuple::Ints({2})));
}

TEST_F(EvalTest, BooleanQueries) {
  Relation yes = EvalCqText("Q() :- R(x, y), S(y).");
  EXPECT_EQ(yes.size(), 1u);  // {()}
  Relation no = EvalCqText("Q() :- R(x, x).");
  EXPECT_TRUE(no.empty());
}

TEST_F(EvalTest, EmptyBodyYieldsUnitTuple) {
  Relation r = EvalCqText("Q() :- .");
  EXPECT_EQ(r.size(), 1u);
}

TEST_F(EvalTest, DuplicateAnswersCollapse) {
  Relation r = EvalCqText("Q(y) :- R(x, y), S(y).");
  EXPECT_EQ(r.size(), 2u);
}

TEST_F(EvalTest, NaiveAndReorderedAgree) {
  auto q = ParseConjunctiveQuery("Q(x, z) :- R(x, y), R(y, z), S(z).");
  ASSERT_TRUE(q.ok());
  ConjunctiveEvalOptions naive;
  naive.reorder_atoms = false;
  auto a = EvalConjunctive(*q, db_, naive);
  auto b = EvalConjunctive(*q, db_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST_F(EvalTest, UnionQuery) {
  auto u = ParseUnionQuery("Q(x) :- S(x).\nQ(x) :- R(x, 2).");
  ASSERT_TRUE(u.ok());
  auto r = EvalUnion(*u, db_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);  // {2, 4} ∪ {1}
}

TEST_F(EvalTest, SatisfiedInShortCircuits) {
  auto q = ParseConjunctiveQuery("Q(x) :- R(x, y), S(y).");
  ASSERT_TRUE(q.ok());
  auto sat = ConjunctiveSatisfiedIn(*q, db_);
  ASSERT_TRUE(sat.ok());
  EXPECT_TRUE(*sat);
  auto q2 = ParseConjunctiveQuery("Q(x) :- R(x, x).");
  ASSERT_TRUE(q2.ok());
  auto unsat = ConjunctiveSatisfiedIn(*q2, db_);
  ASSERT_TRUE(unsat.ok());
  EXPECT_FALSE(*unsat);
}

TEST_F(EvalTest, FoNegation) {
  // x in S with no outgoing R edge: S = {2,4}; R sources = {1,2,3} → {4}.
  auto q = ParseFoQuery("Q(x) := S(x) & !(exists y. R(x, y))");
  ASSERT_TRUE(q.ok());
  auto r = EvalFo(*q, db_);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_TRUE(r->Contains(Tuple::Ints({4})));
}

TEST_F(EvalTest, FoUniversal) {
  // Boolean: every S element has an incoming R edge. S={2,4}: 2←1, 4←3 ✓.
  auto q = ParseFoQuery("Q() := forall x. (!S(x) | exists y. R(y, x))");
  ASSERT_TRUE(q.ok());
  auto r = EvalFo(*q, db_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
}

TEST_F(EvalTest, FoAgreesWithCqOnPositiveFragment) {
  auto cq = ParseConjunctiveQuery("Q(x) :- R(x, y), S(y), x != 2.");
  ASSERT_TRUE(cq.ok());
  auto direct = EvalConjunctive(*cq, db_);
  ASSERT_TRUE(direct.ok());
  FoQuery as_fo = CqToFoQuery(*cq);
  auto via_fo = EvalFo(as_fo, db_);
  ASSERT_TRUE(via_fo.ok());
  EXPECT_EQ(*direct, *via_fo);
}

TEST_F(EvalTest, DatalogTransitiveClosure) {
  auto p = ParseDatalogProgram(
      "T(x, y) :- R(x, y).\nT(x, z) :- R(x, y), T(y, z).");
  ASSERT_TRUE(p.ok());
  auto r = EvalDatalog(*p, db_);
  ASSERT_TRUE(r.ok());
  // Chain 1→2→3→4: TC has 3+2+1 = 6 pairs.
  EXPECT_EQ(r->size(), 6u);
  EXPECT_TRUE(r->Contains(Tuple::Ints({1, 4})));
}

TEST_F(EvalTest, DatalogNaiveAndSemiNaiveAgree) {
  auto p = ParseDatalogProgram(
      "T(x, y) :- R(x, y).\nT(x, z) :- T(x, y), T(y, z).");
  ASSERT_TRUE(p.ok());
  DatalogEvalOptions naive;
  naive.semi_naive = false;
  auto a = EvalDatalog(*p, db_, naive);
  auto b = EvalDatalog(*p, db_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST_F(EvalTest, DatalogWithComparisonsAndConstants) {
  auto p = ParseDatalogProgram(
      "Reach(y) :- R(x, y), x = 1.\nReach(y) :- R(x, y), Reach(x), y != 3.");
  ASSERT_TRUE(p.ok());
  auto r = EvalDatalog(*p, db_);
  ASSERT_TRUE(r.ok());
  // From 1: reach 2; from 2: 3 blocked (y != 3) → {2}.
  ASSERT_EQ(r->size(), 1u);
  EXPECT_TRUE(r->Contains(Tuple::Ints({2})));
}

TEST_F(EvalTest, DatalogMultipleIdbPredicates) {
  auto p = ParseDatalogProgram(
      "A(x) :- S(x).\nB(x) :- A(x), R(y, x).\nOut(x) :- B(x).");
  ASSERT_TRUE(p.ok());
  p->set_output_predicate("Out");
  auto r = EvalDatalog(*p, db_);
  ASSERT_TRUE(r.ok());
  // S = {2,4}; with incoming edges: both.
  EXPECT_EQ(r->size(), 2u);
}

TEST_F(EvalTest, PolymorphicEvaluateDispatches) {
  auto cq = ParseQuery("Q(x) :- S(x).", QueryLanguage::kCq);
  ASSERT_TRUE(cq.ok());
  auto r = Evaluate(*cq, db_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
  auto nonempty = IsNonEmpty(*cq, db_);
  ASSERT_TRUE(nonempty.ok());
  EXPECT_TRUE(*nonempty);
}

TEST_F(EvalTest, PositiveFormulaEvaluatesWithoutUnfolding) {
  auto q = ParseQuery("Q(x) := S(x) | exists y. R(x, y)",
                      QueryLanguage::kPositive);
  ASSERT_TRUE(q.ok());
  auto direct = Evaluate(*q, db_);
  ASSERT_TRUE(direct.ok());
  auto unfolded = q->ToUnion(100);
  ASSERT_TRUE(unfolded.ok());
  auto via_union = EvalUnion(*unfolded, db_);
  ASSERT_TRUE(via_union.ok());
  EXPECT_EQ(*direct, *via_union);
}

// Property sweep: on random instances, ∃FO+ evaluation via the formula
// evaluator agrees with evaluation of the DNF-unfolded UCQ, and the
// naive/reordered conjunctive matchers agree.
class EvalPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EvalPropertyTest, MatcherModesAgreeOnRandomInstances) {
  Rng rng(GetParam());
  RandomInstanceOptions db_options;
  auto schema = RandomSchema(db_options, &rng);
  Database db = RandomDatabase(schema, db_options, &rng);
  RandomCqOptions cq_options;
  for (int i = 0; i < 10; ++i) {
    ConjunctiveQuery q = RandomCq(*schema, cq_options, &rng);
    if (!q.Validate(*schema).ok()) continue;
    ConjunctiveEvalOptions naive;
    naive.reorder_atoms = false;
    auto a = EvalConjunctive(q, db, naive);
    auto b = EvalConjunctive(q, db);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << q.ToString();
  }
}

TEST_P(EvalPropertyTest, CqMatchesItsFoEmbedding) {
  Rng rng(GetParam() + 1000);
  RandomInstanceOptions db_options;
  db_options.value_pool = 3;
  auto schema = RandomSchema(db_options, &rng);
  Database db = RandomDatabase(schema, db_options, &rng);
  RandomCqOptions cq_options;
  cq_options.num_atoms = 2;
  for (int i = 0; i < 5; ++i) {
    ConjunctiveQuery q = RandomCq(*schema, cq_options, &rng);
    if (!q.Validate(*schema).ok()) continue;
    auto direct = EvalConjunctive(q, db);
    ASSERT_TRUE(direct.ok());
    auto via_fo = EvalFo(CqToFoQuery(q), db);
    ASSERT_TRUE(via_fo.ok());
    EXPECT_EQ(*direct, *via_fo) << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvalPropertyTest,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace relcomp
