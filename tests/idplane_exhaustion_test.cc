// Exhaustion coverage for the id-plane hot path's memory charges: lazy
// composite-index builds and per-worker arena blocks flow through
// ExecutionBudget::TrackBytes, trip the byte cap as kResourceExhausted,
// and the decider's checkpoint/resume contract holds across a trip.
// (Suite names carry "Exhaustion" so the tsan preset's filter runs
// them under the race detector.)

#include <gtest/gtest.h>

#include <optional>

#include "completeness/rcdp.h"
#include "constraints/integrity_constraints.h"
#include "eval/conjunctive_eval.h"
#include "query/parser.h"
#include "relational/database.h"
#include "util/execution_control.h"

namespace relcomp {
namespace {

TEST(CompositeIndexExhaustionTest, LazyBuildChargesBudgetAndTripsCap) {
  auto schema = std::make_shared<Schema>();
  ASSERT_TRUE(schema->AddRelation("R", 3).ok());
  Database db(schema);
  for (int64_t i = 0; i < 64; ++i) {
    db.InsertUnchecked(
        "R", Tuple({Value::Int(i % 8), Value::Int(i % 4), Value::Int(i)}));
  }
  // Two bound constants on one atom force a composite (0, 1) build.
  auto q = ParseConjunctiveQuery("Q(z) :- R(3, 2, z).");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  ExecutionBudget budget;
  budget.set_max_tracked_bytes(16);  // far below any radix tree
  EvalCounters counters;
  ConjunctiveEvalOptions options;
  options.counters = &counters;
  options.budget = &budget;
  Result<Relation> answers = EvalConjunctive(*q, db, options);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();

  // The build was charged...
  EXPECT_GT(counters.composite_probes, 0u);
  EXPECT_GT(counters.composite_index_bytes, 0u);
  EXPECT_GE(budget.tracked_bytes(), counters.composite_index_bytes);
  // ...and the cap fires as kResourceExhausted at the next decision
  // point (evaluation itself claims none; the deciders do).
  Status tripped = budget.OnDecisionPoint();
  EXPECT_EQ(tripped.code(), StatusCode::kResourceExhausted)
      << tripped.ToString();
  EXPECT_EQ(budget.exhausted_kind(), BudgetKind::kMemory);
}

TEST(ArenaBytesExhaustionTest, DeciderChargesArenasAndResumeRoundTrips) {
  auto db_schema = std::make_shared<Schema>();
  ASSERT_TRUE(db_schema->AddRelation("S", 2).ok());
  auto master_schema = std::make_shared<Schema>();
  ASSERT_TRUE(master_schema->AddRelation("M", 1).ok());
  Database db(db_schema);
  for (int64_t i = 0; i < 4; ++i) {
    db.InsertUnchecked("S", Tuple({Value::Int(i), Value::Int(i + 1)}));
  }
  Database master(master_schema);
  for (int64_t i = 0; i < 8; ++i) {
    master.InsertUnchecked("M", Tuple({Value::Int(i)}));
  }
  ConstraintSet v;
  auto ind = MakeIndToMaster(*db_schema, "S", {0}, "M", {0});
  ASSERT_TRUE(ind.ok()) << ind.status().ToString();
  v.Add(*ind);
  auto q = ParseQuery("Q(x, y) :- S(x, y).", QueryLanguage::kCq);
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  // Uninterrupted run: arenas are on by default, do real work, and
  // report their footprint.
  RcdpOptions plain;
  plain.num_threads = 1;
  auto uninterrupted = DecideRcdp(*q, db, master, v, plain);
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.status().ToString();
  ASSERT_EQ(uninterrupted->verdict, Verdict::kIncomplete);
  EXPECT_GT(uninterrupted->stats.arena_bytes, 0u);

  // A byte cap below one arena block: the charge trips the budget at a
  // decision point, the verdict degrades to kUnknown/kMemory with a
  // checkpoint.
  ExecutionBudget budget;
  budget.set_max_tracked_bytes(256);
  RcdpOptions bounded = plain;
  bounded.budget = &budget;
  auto exhausted = DecideRcdp(*q, db, master, v, bounded);
  ASSERT_TRUE(exhausted.ok()) << exhausted.status().ToString();
  ASSERT_EQ(exhausted->verdict, Verdict::kUnknown) << exhausted->ToString();
  EXPECT_EQ(exhausted->exhaustion.kind, BudgetKind::kMemory)
      << exhausted->exhaustion.ToString();
  ASSERT_TRUE(exhausted->checkpoint.has_value());

  // Resume with no budget: combined search equals the uninterrupted
  // one (verdict and evidence bit-for-bit).
  RcdpOptions resume = plain;
  resume.resume = &*exhausted->checkpoint;
  auto resumed = DecideRcdp(*q, db, master, v, resume);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->verdict, uninterrupted->verdict);
  ASSERT_TRUE(resumed->new_answer.has_value());
  ASSERT_TRUE(uninterrupted->new_answer.has_value());
  EXPECT_EQ(*resumed->new_answer, *uninterrupted->new_answer);
  ASSERT_TRUE(resumed->counterexample_delta.has_value());
  ASSERT_TRUE(uninterrupted->counterexample_delta.has_value());
  EXPECT_EQ(*resumed->counterexample_delta,
            *uninterrupted->counterexample_delta);

  // The ablation path without arenas must not report arena bytes.
  RcdpOptions no_arena = plain;
  no_arena.use_arena = false;
  auto off = DecideRcdp(*q, db, master, v, no_arena);
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  EXPECT_EQ(off->stats.arena_bytes, 0u);
  EXPECT_EQ(off->verdict, uninterrupted->verdict);
}

}  // namespace
}  // namespace relcomp
