#include <gtest/gtest.h>

#include "relational/database.h"
#include "relational/domain.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace relcomp {
namespace {

TEST(ValueTest, OrderingAndEquality) {
  Value a = Value::Int(1);
  Value b = Value::Int(2);
  Value s = Value::Str("x");
  EXPECT_LT(a, b);
  EXPECT_LT(b, s);  // ints before strings
  EXPECT_EQ(a, Value::Int(1));
  EXPECT_NE(a, Value::Str("1"));
  EXPECT_EQ(a.ToString(), "1");
  EXPECT_EQ(s.ToString(), "\"x\"");
}

TEST(ValueTest, HashDistinguishesKinds) {
  EXPECT_NE(Value::Int(1).Hash(), Value::Str("1").Hash());
}

TEST(DomainTest, BooleanIsFiniteWithTwoValues) {
  auto boolean = Domain::Boolean();
  ASSERT_TRUE(boolean->is_finite());
  EXPECT_EQ(boolean->finite_values().size(), 2u);
  EXPECT_TRUE(boolean->Contains(Value::Int(0)));
  EXPECT_TRUE(boolean->Contains(Value::Int(1)));
  EXPECT_FALSE(boolean->Contains(Value::Int(2)));
}

TEST(DomainTest, InfiniteContainsEverything) {
  auto inf = Domain::Infinite();
  EXPECT_TRUE(inf->is_infinite());
  EXPECT_TRUE(inf->Contains(Value::Str("anything")));
}

TEST(DomainTest, EnumeratedDeduplicatesAndSorts) {
  auto dom = Domain::Enumerated(
      "d", {Value::Int(3), Value::Int(1), Value::Int(3)});
  ASSERT_EQ(dom->finite_values().size(), 2u);
  EXPECT_EQ(dom->finite_values()[0], Value::Int(1));
  EXPECT_EQ(dom->finite_values()[1], Value::Int(3));
}

TEST(TupleTest, Basics) {
  Tuple t = Tuple::Ints({1, 2, 3});
  EXPECT_EQ(t.arity(), 3u);
  EXPECT_EQ(t[1], Value::Int(2));
  EXPECT_EQ(t.ToString(), "(1, 2, 3)");
  EXPECT_LT(Tuple::Ints({1, 2}), Tuple::Ints({1, 3}));
}

TEST(RelationTest, SetSemantics) {
  Relation r(2);
  EXPECT_TRUE(r.Insert(Tuple::Ints({1, 2})));
  EXPECT_FALSE(r.Insert(Tuple::Ints({1, 2})));  // duplicate
  EXPECT_FALSE(r.Insert(Tuple::Ints({1})));     // arity mismatch
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(Tuple::Ints({1, 2})));
}

TEST(RelationTest, SubsetAndUnion) {
  Relation a(1);
  Relation b(1);
  a.Insert(Tuple::Ints({1}));
  b.Insert(Tuple::Ints({1}));
  b.Insert(Tuple::Ints({2}));
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  a.UnionWith(b);
  EXPECT_EQ(a.size(), 2u);
}

TEST(SchemaTest, AddAndLookup) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("R", 2).ok());
  EXPECT_FALSE(schema.AddRelation("R", 3).ok());  // duplicate
  ASSERT_TRUE(schema.HasRelation("R"));
  EXPECT_EQ(schema.FindRelation("R")->arity(), 2u);
  EXPECT_EQ(schema.FindRelation("R")->AttributeIndex("a1"), 1);
  EXPECT_EQ(schema.FindRelation("R")->AttributeIndex("zz"), -1);
}

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = std::make_shared<Schema>();
    ASSERT_TRUE(schema->AddRelation("R", 2).ok());
    ASSERT_TRUE(schema
                    ->AddRelation(RelationSchema(
                        "B", {AttributeDef::Over("b", Domain::Boolean())}))
                    .ok());
    db_ = Database(schema);
  }
  Database db_;
};

TEST_F(DatabaseTest, CheckedInsertValidates) {
  EXPECT_TRUE(db_.Insert("R", Tuple::Ints({1, 2})).ok());
  EXPECT_EQ(db_.Insert("nope", Tuple::Ints({1})).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db_.Insert("R", Tuple::Ints({1})).code(),
            StatusCode::kInvalidArgument);
  // Domain violation on the Boolean column.
  EXPECT_EQ(db_.Insert("B", Tuple::Ints({7})).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(db_.Insert("B", Tuple::Ints({1})).ok());
}

TEST_F(DatabaseTest, ContainmentAndUnion) {
  ASSERT_TRUE(db_.Insert("R", Tuple::Ints({1, 2})).ok());
  Database bigger = db_;
  ASSERT_TRUE(bigger.Insert("R", Tuple::Ints({3, 4})).ok());
  EXPECT_TRUE(db_.IsSubsetOf(bigger));
  EXPECT_FALSE(bigger.IsSubsetOf(db_));
  db_.UnionWith(bigger);
  EXPECT_TRUE(bigger.IsSubsetOf(db_));
  EXPECT_EQ(db_, bigger);
}

TEST_F(DatabaseTest, CollectConstants) {
  ASSERT_TRUE(db_.Insert("R", Tuple::Ints({1, 2})).ok());
  std::set<Value> constants;
  db_.CollectConstants(&constants);
  EXPECT_EQ(constants.size(), 2u);
  EXPECT_TRUE(constants.count(Value::Int(1)) > 0);
}

TEST_F(DatabaseTest, GetOnEmptyRelationHasSchemaArity) {
  EXPECT_EQ(db_.Get("R").arity(), 2u);
  EXPECT_TRUE(db_.Get("R").empty());
  EXPECT_EQ(db_.TotalTuples(), 0u);
}

}  // namespace
}  // namespace relcomp
