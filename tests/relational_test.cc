#include <gtest/gtest.h>

#include "relational/database.h"
#include "relational/database_overlay.h"
#include "relational/domain.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace relcomp {
namespace {

TEST(ValueTest, OrderingAndEquality) {
  Value a = Value::Int(1);
  Value b = Value::Int(2);
  Value s = Value::Str("x");
  EXPECT_LT(a, b);
  EXPECT_LT(b, s);  // ints before strings
  EXPECT_EQ(a, Value::Int(1));
  EXPECT_NE(a, Value::Str("1"));
  EXPECT_EQ(a.ToString(), "1");
  EXPECT_EQ(s.ToString(), "\"x\"");
}

TEST(ValueTest, HashDistinguishesKinds) {
  EXPECT_NE(Value::Int(1).Hash(), Value::Str("1").Hash());
}

TEST(DomainTest, BooleanIsFiniteWithTwoValues) {
  auto boolean = Domain::Boolean();
  ASSERT_TRUE(boolean->is_finite());
  EXPECT_EQ(boolean->finite_values().size(), 2u);
  EXPECT_TRUE(boolean->Contains(Value::Int(0)));
  EXPECT_TRUE(boolean->Contains(Value::Int(1)));
  EXPECT_FALSE(boolean->Contains(Value::Int(2)));
}

TEST(DomainTest, InfiniteContainsEverything) {
  auto inf = Domain::Infinite();
  EXPECT_TRUE(inf->is_infinite());
  EXPECT_TRUE(inf->Contains(Value::Str("anything")));
}

TEST(DomainTest, EnumeratedDeduplicatesAndSorts) {
  auto dom = Domain::Enumerated(
      "d", {Value::Int(3), Value::Int(1), Value::Int(3)});
  ASSERT_EQ(dom->finite_values().size(), 2u);
  EXPECT_EQ(dom->finite_values()[0], Value::Int(1));
  EXPECT_EQ(dom->finite_values()[1], Value::Int(3));
}

TEST(TupleTest, Basics) {
  Tuple t = Tuple::Ints({1, 2, 3});
  EXPECT_EQ(t.arity(), 3u);
  EXPECT_EQ(t[1], Value::Int(2));
  EXPECT_EQ(t.ToString(), "(1, 2, 3)");
  EXPECT_LT(Tuple::Ints({1, 2}), Tuple::Ints({1, 3}));
}

TEST(RelationTest, SetSemantics) {
  Relation r(2);
  EXPECT_TRUE(r.Insert(Tuple::Ints({1, 2})));
  EXPECT_FALSE(r.Insert(Tuple::Ints({1, 2})));  // duplicate
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(Tuple::Ints({1, 2})));
}

TEST(RelationTest, TryInsertDistinguishesOutcomes) {
  Relation r(2);
  EXPECT_EQ(r.TryInsert(Tuple::Ints({1, 2})),
            Relation::InsertOutcome::kInserted);
  EXPECT_EQ(r.TryInsert(Tuple::Ints({1, 2})),
            Relation::InsertOutcome::kDuplicate);
  // Arity mismatches are a programming error: Insert() asserts in debug
  // builds; TryInsert reports them without touching the relation. The
  // checked, Status-returning path is Database::Insert.
  EXPECT_EQ(r.TryInsert(Tuple::Ints({1})),
            Relation::InsertOutcome::kArityMismatch);
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, IterationIsSortedRegardlessOfInsertionOrder) {
  Relation r(2);
  r.Insert(Tuple::Ints({3, 0}));
  r.Insert(Tuple::Ints({1, 9}));
  r.Insert(Tuple::Ints({2, 5}));
  std::vector<Tuple> seen(r.begin(), r.end());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], Tuple::Ints({1, 9}));
  EXPECT_EQ(seen[1], Tuple::Ints({2, 5}));
  EXPECT_EQ(seen[2], Tuple::Ints({3, 0}));
}

TEST(RelationTest, ProbeFindsRowsByColumnValue) {
  Relation r(2);
  r.Insert(Tuple::Ints({1, 10}));
  r.Insert(Tuple::Ints({2, 10}));
  r.Insert(Tuple::Ints({2, 20}));
  EXPECT_EQ(r.ProbeCount(0, Value::Int(2)), 2u);
  EXPECT_EQ(r.ProbeCount(1, Value::Int(10)), 2u);
  EXPECT_EQ(r.ProbeCount(0, Value::Int(99)), 0u);
  EXPECT_EQ(r.Probe(0, Value::Int(99)), nullptr);
  const std::vector<uint32_t>* rows = r.Probe(0, Value::Int(2));
  ASSERT_NE(rows, nullptr);
  for (uint32_t row : *rows) {
    EXPECT_EQ(r.TupleAt(row)[0], Value::Int(2));
  }
}

TEST(RelationTest, IndexesSurviveMutation) {
  Relation r(2);
  r.Insert(Tuple::Ints({1, 10}));
  EXPECT_EQ(r.ProbeCount(0, Value::Int(1)), 1u);  // builds the index
  r.Insert(Tuple::Ints({1, 20}));                 // invalidates it
  EXPECT_EQ(r.ProbeCount(0, Value::Int(1)), 2u);  // lazily rebuilt
  EXPECT_TRUE(r.Erase(Tuple::Ints({1, 10})));
  EXPECT_EQ(r.ProbeCount(0, Value::Int(1)), 1u);
  EXPECT_FALSE(r.Erase(Tuple::Ints({1, 10})));  // already gone
  EXPECT_FALSE(r.Contains(Tuple::Ints({1, 10})));
  EXPECT_TRUE(r.Contains(Tuple::Ints({1, 20})));
}

TEST(RelationTest, SharedInternerAcrossDatabaseFamily) {
  auto schema = std::make_shared<Schema>();
  ASSERT_TRUE(schema->AddRelation("R", 2).ok());
  ASSERT_TRUE(schema->AddRelation("S", 1).ok());
  Database db(schema);
  ASSERT_TRUE(db.Insert("R", Tuple::Ints({1, 2})).ok());
  ASSERT_TRUE(db.Insert("S", Tuple::Ints({1})).ok());
  ASSERT_NE(db.interner(), nullptr);
  // Both relations resolve the shared id space.
  std::optional<ValueId> id_r = db.Get("R").IdOf(Value::Int(1));
  std::optional<ValueId> id_s = db.Get("S").IdOf(Value::Int(1));
  ASSERT_TRUE(id_r.has_value());
  ASSERT_TRUE(id_s.has_value());
  EXPECT_EQ(*id_r, *id_s);
  // Copies share the family interner: ids stay comparable.
  Database copy = db;
  EXPECT_EQ(copy.interner(), db.interner());
}

TEST(ValueInternerTest, FreshIdsLiveInTheReservedRange) {
  ValueInterner interner;
  ValueId low = interner.Intern(Value::Int(7));
  ValueId fresh = interner.InternFresh(Value::Str("_new$0"));
  EXPECT_FALSE(ValueInterner::IsFreshId(low));
  EXPECT_TRUE(ValueInterner::IsFreshId(fresh));
  EXPECT_EQ(interner.InternFresh(Value::Str("_new$0")), fresh);  // idempotent
  EXPECT_EQ(interner.ValueOf(fresh), Value::Str("_new$0"));
  EXPECT_EQ(interner.ValueOf(low), Value::Int(7));
  EXPECT_FALSE(interner.TryGet(Value::Int(999)).has_value());
  // TryGet never interns.
  EXPECT_FALSE(interner.TryGet(Value::Int(999)).has_value());
  EXPECT_EQ(interner.TryGet(Value::Str("_new$0")), fresh);
}

TEST(DatabaseOverlayTest, StagesWithoutMutatingTheBase) {
  auto schema = std::make_shared<Schema>();
  ASSERT_TRUE(schema->AddRelation("R", 2).ok());
  Database base(schema);
  ASSERT_TRUE(base.Insert("R", Tuple::Ints({1, 2})).ok());

  DatabaseOverlay view(&base);
  EXPECT_FALSE(view.Add("R", Tuple::Ints({1, 2})));  // already in base
  EXPECT_TRUE(view.Add("R", Tuple::Ints({3, 4})));
  EXPECT_FALSE(view.Add("R", Tuple::Ints({3, 4})));  // already staged
  EXPECT_TRUE(view.Contains("R", Tuple::Ints({1, 2})));
  EXPECT_TRUE(view.Contains("R", Tuple::Ints({3, 4})));
  EXPECT_EQ(view.Size("R"), 2u);
  EXPECT_EQ(base.Get("R").size(), 1u);  // base untouched

  Database flat = view.Materialize();
  EXPECT_EQ(flat.Get("R").size(), 2u);

  view.Clear();
  EXPECT_FALSE(view.HasPending());
  EXPECT_FALSE(view.Contains("R", Tuple::Ints({3, 4})));
}

TEST(DatabaseOverlayTest, VirtualRelationsArePendingOnly) {
  auto schema = std::make_shared<Schema>();
  ASSERT_TRUE(schema->AddRelation("R", 2).ok());
  Database base(schema);
  DatabaseOverlay view(&base);
  // "R$ccdelta" is absent from the base schema: served from staging.
  EXPECT_TRUE(view.Add("R$ccdelta", Tuple::Ints({5, 6})));
  EXPECT_EQ(view.Pending("R$ccdelta").size(), 1u);
  EXPECT_TRUE(view.Contains("R$ccdelta", Tuple::Ints({5, 6})));
  // Materialize drops virtual relations (schema has no slot for them).
  Database flat = view.Materialize();
  EXPECT_EQ(flat.Get("R$ccdelta").size(), 0u);
}

TEST(RelationTest, SubsetAndUnion) {
  Relation a(1);
  Relation b(1);
  a.Insert(Tuple::Ints({1}));
  b.Insert(Tuple::Ints({1}));
  b.Insert(Tuple::Ints({2}));
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  a.UnionWith(b);
  EXPECT_EQ(a.size(), 2u);
}

TEST(SchemaTest, AddAndLookup) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("R", 2).ok());
  EXPECT_FALSE(schema.AddRelation("R", 3).ok());  // duplicate
  ASSERT_TRUE(schema.HasRelation("R"));
  EXPECT_EQ(schema.FindRelation("R")->arity(), 2u);
  EXPECT_EQ(schema.FindRelation("R")->AttributeIndex("a1"), 1);
  EXPECT_EQ(schema.FindRelation("R")->AttributeIndex("zz"), -1);
}

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = std::make_shared<Schema>();
    ASSERT_TRUE(schema->AddRelation("R", 2).ok());
    ASSERT_TRUE(schema
                    ->AddRelation(RelationSchema(
                        "B", {AttributeDef::Over("b", Domain::Boolean())}))
                    .ok());
    db_ = Database(schema);
  }
  Database db_;
};

TEST_F(DatabaseTest, CheckedInsertValidates) {
  EXPECT_TRUE(db_.Insert("R", Tuple::Ints({1, 2})).ok());
  EXPECT_EQ(db_.Insert("nope", Tuple::Ints({1})).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db_.Insert("R", Tuple::Ints({1})).code(),
            StatusCode::kInvalidArgument);
  // Domain violation on the Boolean column.
  EXPECT_EQ(db_.Insert("B", Tuple::Ints({7})).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(db_.Insert("B", Tuple::Ints({1})).ok());
}

TEST_F(DatabaseTest, ContainmentAndUnion) {
  ASSERT_TRUE(db_.Insert("R", Tuple::Ints({1, 2})).ok());
  Database bigger = db_;
  ASSERT_TRUE(bigger.Insert("R", Tuple::Ints({3, 4})).ok());
  EXPECT_TRUE(db_.IsSubsetOf(bigger));
  EXPECT_FALSE(bigger.IsSubsetOf(db_));
  db_.UnionWith(bigger);
  EXPECT_TRUE(bigger.IsSubsetOf(db_));
  EXPECT_EQ(db_, bigger);
}

TEST_F(DatabaseTest, CollectConstants) {
  ASSERT_TRUE(db_.Insert("R", Tuple::Ints({1, 2})).ok());
  std::set<Value> constants;
  db_.CollectConstants(&constants);
  EXPECT_EQ(constants.size(), 2u);
  EXPECT_TRUE(constants.count(Value::Int(1)) > 0);
}

TEST_F(DatabaseTest, GetOnEmptyRelationHasSchemaArity) {
  EXPECT_EQ(db_.Get("R").arity(), 2u);
  EXPECT_TRUE(db_.Get("R").empty());
  EXPECT_EQ(db_.TotalTuples(), 0u);
}

}  // namespace
}  // namespace relcomp
