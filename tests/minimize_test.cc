#include <gtest/gtest.h>

#include "eval/conjunctive_eval.h"
#include "query/parser.h"
#include "tableau/containment.h"
#include "tableau/minimize.h"
#include "workload/generators.h"

namespace relcomp {
namespace {

std::shared_ptr<Schema> GraphSchema() {
  auto schema = std::make_shared<Schema>();
  EXPECT_TRUE(schema->AddRelation("E", 2).ok());
  EXPECT_TRUE(schema->AddRelation("L", 1).ok());
  return schema;
}

ConjunctiveQuery Parse(const std::string& text) {
  auto q = ParseConjunctiveQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

TEST(MinimizeTest, DropsFoldableAtoms) {
  auto schema = GraphSchema();
  // E(x, y), E(x, z): the second atom folds onto the first (z ↦ y).
  ConjunctiveQuery q = Parse("Q(x) :- E(x, y), E(x, z).");
  auto minimized = MinimizeCq(q, *schema);
  ASSERT_TRUE(minimized.ok()) << minimized.status().ToString();
  EXPECT_EQ(minimized->RelationAtoms().size(), 1u);
  auto equivalent = CqEquivalent(q, *minimized, *schema);
  ASSERT_TRUE(equivalent.ok());
  EXPECT_TRUE(*equivalent);
}

TEST(MinimizeTest, KeepsGenuinePathAtoms) {
  auto schema = GraphSchema();
  // A genuine 2-path has no redundant atom.
  ConjunctiveQuery q = Parse("Q(x, z) :- E(x, y), E(y, z).");
  auto minimized = MinimizeCq(q, *schema);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->RelationAtoms().size(), 2u);
}

TEST(MinimizeTest, ClassicTriangleExample) {
  auto schema = GraphSchema();
  // E(x, y), E(y, z), E(x, w), E(w, z): the (x, w, z) path folds onto
  // the (x, y, z) path.
  ConjunctiveQuery q =
      Parse("Q(x, z) :- E(x, y), E(y, z), E(x, w), E(w, z).");
  auto minimized = MinimizeCq(q, *schema);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->RelationAtoms().size(), 2u);
}

TEST(MinimizeTest, SafetyBlocksDroppingBindingAtoms) {
  auto schema = GraphSchema();
  // L(x) is subsumed by nothing, and dropping E(x, y) would leave the
  // head variable... here both atoms are needed: E binds y? No head y.
  // E(x, y), L(x): E is NOT redundant (it requires an outgoing edge).
  ConjunctiveQuery q = Parse("Q(x) :- E(x, y), L(x).");
  auto minimized = MinimizeCq(q, *schema);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->RelationAtoms().size(), 2u);
}

TEST(MinimizeTest, InequalitiesArePreserved) {
  auto schema = GraphSchema();
  // E(x, y) folds away (the free y can coincide with z), but E(x, z)
  // must survive: it binds the comparison variable, so safety forbids
  // dropping it — and the result stays equivalent.
  ConjunctiveQuery q = Parse("Q(x) :- E(x, y), E(x, z), z != x.");
  auto minimized = MinimizeCq(q, *schema);
  ASSERT_TRUE(minimized.ok());
  ASSERT_EQ(minimized->RelationAtoms().size(), 1u);
  // The surviving atom carries z (the comparison stays checkable).
  std::set<std::string> vars = minimized->Variables();
  EXPECT_TRUE(vars.count("z") > 0);
  auto equivalent = CqEquivalent(q, *minimized, *schema);
  ASSERT_TRUE(equivalent.ok());
  EXPECT_TRUE(*equivalent);

  // With both variables pinned in the head nothing can fold.
  ConjunctiveQuery pinned = Parse("Q(y, z) :- E(x, y), E(x, z), z != y.");
  auto pinned_min = MinimizeCq(pinned, *schema);
  ASSERT_TRUE(pinned_min.ok());
  EXPECT_EQ(pinned_min->RelationAtoms().size(), 2u);
}

TEST(MinimizeTest, MinimizedQueriesStayEquivalentOnRandomInstances) {
  Rng rng(123);
  RandomInstanceOptions db_options;
  db_options.num_relations = 2;
  db_options.value_pool = 3;
  auto schema = RandomSchema(db_options, &rng);
  RandomCqOptions cq_options;
  cq_options.num_atoms = 4;
  cq_options.num_variables = 3;
  cq_options.disequality_pct = 0;  // keep the containment checks cheap
  int minimized_something = 0;
  for (int i = 0; i < 20; ++i) {
    ConjunctiveQuery q = RandomCq(*schema, cq_options, &rng);
    if (!q.Validate(*schema).ok()) continue;
    auto minimized = MinimizeCq(q, *schema);
    ASSERT_TRUE(minimized.ok()) << q.ToString();
    if (minimized->RelationAtoms().size() < q.RelationAtoms().size()) {
      ++minimized_something;
    }
    for (int d = 0; d < 3; ++d) {
      Database db = RandomDatabase(schema, db_options, &rng);
      auto before = EvalConjunctive(q, db);
      auto after = EvalConjunctive(*minimized, db);
      ASSERT_TRUE(before.ok());
      ASSERT_TRUE(after.ok());
      EXPECT_EQ(*before, *after)
          << q.ToString() << "\n-> " << minimized->ToString();
    }
  }
  // Random 4-atom queries over 3 variables fold often.
  EXPECT_GT(minimized_something, 0);
}

}  // namespace
}  // namespace relcomp
