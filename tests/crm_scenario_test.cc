#include <gtest/gtest.h>

#include "completeness/brute_force.h"
#include "completeness/rcdp.h"
#include "completeness/rcqp.h"
#include "constraints/constraint_check.h"
#include "constraints/integrity_constraints.h"
#include "eval/query_eval.h"
#include "workload/crm_scenario.h"

namespace relcomp {
namespace {

class CrmScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto scenario = CrmScenario::Make();
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    crm_ = std::make_unique<CrmScenario>(std::move(*scenario));
  }
  std::unique_ptr<CrmScenario> crm_;
};

TEST_F(CrmScenarioTest, GeneratedInstancesArePartiallyClosed) {
  auto phi0 = crm_->Phi0();
  ASSERT_TRUE(phi0.ok());
  ConstraintSet v;
  v.Add(*phi0);
  auto inds = crm_->IndConstraints();
  ASSERT_TRUE(inds.ok());
  for (const ContainmentConstraint& cc : inds->constraints()) v.Add(cc);
  auto closed = Satisfies(v, crm_->db(), crm_->master());
  ASSERT_TRUE(closed.ok()) << closed.status().ToString();
  EXPECT_TRUE(*closed);
}

TEST_F(CrmScenarioTest, ScalesWithOptions) {
  CrmOptions options;
  options.num_domestic = 10;
  options.num_international = 5;
  options.num_employees = 4;
  options.support_per_employee = 3;
  auto big = CrmScenario::Make(options);
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big->master().Get("DCust").size(), 10u);
  EXPECT_EQ(big->db().Get("Cust").size(), 15u);
  EXPECT_EQ(big->db().Get("Supt").size(), 12u);
}

TEST_F(CrmScenarioTest, QueriesEvaluate) {
  for (auto query : {crm_->Q0(), crm_->Q1(), crm_->Q2(), crm_->Q3Cq(),
                     crm_->Q3Datalog(), crm_->Q4()}) {
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    auto answer = Evaluate(*query, crm_->db());
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  }
}

TEST_F(CrmScenarioTest, Q3DatalogComputesManagementChain) {
  auto q3 = crm_->Q3Datalog();
  ASSERT_TRUE(q3.ok());
  auto answer = Evaluate(*q3, crm_->db());
  ASSERT_TRUE(answer.ok());
  // The chain has manage_chain - 1 people above e0.
  EXPECT_EQ(answer->size(), crm_->options().manage_chain - 1);
}

// Section 2.3 paradigm (1): assessing the completeness of the data.
TEST_F(CrmScenarioTest, Paradigm1AssessCompleteness) {
  auto q0 = crm_->Q0();
  ASSERT_TRUE(q0.ok());
  auto phi0 = crm_->Phi0();
  ASSERT_TRUE(phi0.ok());
  ConstraintSet v;
  v.Add(*phi0);
  // Q0 asks over Cust alone; nothing bounds Cust rows with fresh cids,
  // so D is not complete for Q0.
  auto result = DecideRcdp(*q0, crm_->db(), crm_->master(), v);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->complete);
}

// Section 2.3 paradigm (2): guidance for what data to collect — the
// chase yields a concrete extension; paradigm (3): when no complete
// database exists, the master data itself must grow.
TEST_F(CrmScenarioTest, Paradigm3MasterDataMustGrow) {
  auto q0 = crm_->Q0();
  ASSERT_TRUE(q0.ok());
  auto phi0 = crm_->Phi0();
  ASSERT_TRUE(phi0.ok());
  ConstraintSet v;
  v.Add(*phi0);
  // RCQP: no partially closed database is complete for Q0 — the head
  // variable (cid of Cust) is not IND-bounded by φ0 (which constrains
  // only supported domestic customers via the Cust ⋈ Supt join, not
  // Cust alone) — so the master data must be expanded.
  RcqpOptions options;
  options.max_witness_tuples = 1;
  options.max_pool_size = 512;
  options.max_candidates = 5000;
  auto result =
      DecideRcqp(*q0, crm_->db_schema(), crm_->master(), v, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->exists);

  // Expanding the master coverage to bound Cust's (cid, name) pair
  // (an IND π_{cid,name}(Cust) ⊆ π_{cid,name}(DCust)) bounds both head
  // variables of Q0 — now a relatively complete database exists. Note
  // that bounding cid alone would NOT suffice: Q0 also returns the
  // name, which fresh values could keep pumping.
  ConstraintSet expanded;
  auto cust_ind =
      MakeIndToMaster(*crm_->db_schema(), "Cust", {0, 1}, "DCust", {0, 1});
  ASSERT_TRUE(cust_ind.ok());
  expanded.Add(*cust_ind);
  auto with_master = DecideRcqp(*q0, crm_->db_schema(), crm_->master(),
                                expanded, options);
  ASSERT_TRUE(with_master.ok()) << with_master.status().ToString();
  EXPECT_TRUE(with_master->exists);

  ConstraintSet cid_only;
  auto cid_ind =
      MakeIndToMaster(*crm_->db_schema(), "Cust", {0}, "DCust", {0});
  ASSERT_TRUE(cid_ind.ok());
  cid_only.Add(*cid_ind);
  auto still_missing = DecideRcqp(*q0, crm_->db_schema(), crm_->master(),
                                  cid_only, options);
  ASSERT_TRUE(still_missing.ok());
  EXPECT_FALSE(still_missing->exists);
}

// Example 1.1's Q3 observation: completeness is relative to the query
// language. Under the IND Manage ⊆ Managem, the CQ version of Q3 is
// complete on D = Managem-mirror, and the bounded brute force agrees
// that the datalog version is complete too (Manage cannot grow beyond
// Managem, and Managem's chain is already in D).
TEST_F(CrmScenarioTest, Q3LanguageRelativity) {
  auto inds = crm_->IndConstraints();
  ASSERT_TRUE(inds.ok());
  ConstraintSet v;
  v.Add(inds->constraints()[1]);  // Manage ⊆ Managem

  auto q3cq = crm_->Q3Cq();
  ASSERT_TRUE(q3cq.ok());
  auto cq_result = DecideRcdp(*q3cq, crm_->db(), crm_->master(), v);
  ASSERT_TRUE(cq_result.ok());
  EXPECT_TRUE(cq_result->complete);

  auto q3fp = crm_->Q3Datalog();
  ASSERT_TRUE(q3fp.ok());
  // The decider refuses FP (undecidable cell) ...
  auto refused = DecideRcdp(*q3fp, crm_->db(), crm_->master(), v);
  EXPECT_EQ(refused.status().code(), StatusCode::kUnsupported);
  // ... but definition-chasing over the bounded space demonstrates the
  // claim: D ⊇ Managem is complete for the datalog query since Manage
  // is capped by master data.
  BruteForceOptions bf;
  bf.max_delta_tuples = 1;
  // Restrict the value universe to the management ids (plus one fresh
  // value) — the full constant universe makes the 5-ary Cust tuple
  // space explode, and Q3 only reads Manage anyway.
  bf.universe = {Value::Str("e0"), Value::Str("e1"), Value::Str("e2"),
                 Value::Str("ghost")};
  auto brute =
      BruteForceRcdp(*q3fp, crm_->db(), crm_->master(), v, bf);
  ASSERT_TRUE(brute.ok()) << brute.status().ToString();
  EXPECT_TRUE(brute->complete);
}

// The paper's contrast: WITHOUT the transitive closure materialized in
// Manage, the CQ Q3 misses indirect reports while datalog does not —
// seen directly on answers.
TEST_F(CrmScenarioTest, TransitiveClosureContrast) {
  auto q3cq = crm_->Q3Cq();
  auto q3fp = crm_->Q3Datalog();
  ASSERT_TRUE(q3cq.ok());
  ASSERT_TRUE(q3fp.ok());
  auto cq_answer = Evaluate(*q3cq, crm_->db());
  auto fp_answer = Evaluate(*q3fp, crm_->db());
  ASSERT_TRUE(cq_answer.ok());
  ASSERT_TRUE(fp_answer.ok());
  // Chain e2 -> e1 -> e0: CQ sees only e1; datalog sees e1 and e2.
  EXPECT_EQ(cq_answer->size(), 1u);
  EXPECT_EQ(fp_answer->size(), 2u);
  EXPECT_TRUE(cq_answer->IsSubsetOf(*fp_answer));
}

}  // namespace
}  // namespace relcomp
