// End-to-end tests for the sharded decision fabric: consistent-hash
// routing over live members, the kill-any-single-server sweep (the
// owner dies at every checkpoint-persist site and at sampled decision
// points; the shard is recovered by its restarted owner or handed off
// to an adopting peer), epoch-fenced drains, typed degradation while a
// shard has no live owner, and the verdict cache riding a handoff.
//
// The acceptance bar everywhere is the PR-3/4 one: the verdict and
// evidence after any single kill are bit-for-bit the uninterrupted
// single-server run's, no store file is ever corrupted, and no job is
// served twice.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "completeness/rcdp.h"
#include "fabric/fabric_client.h"
#include "fabric/member.h"
#include "fabric/ring.h"
#include "net/client.h"
#include "spec/spec_parser.h"
#include "util/execution_control.h"
#include "util/str.h"

namespace relcomp {
namespace {

/// The service tests' far-corner instance: the single counterexample
/// (5, 6) forces the search across essentially the whole valuation
/// space — room to slice, checkpoint, and die.
const std::string& IncompleteSpec() {
  static const std::string spec = [] {
    std::string s = "relation S(a, b)\nmaster relation M(m)\n";
    for (int x = 0; x <= 5; ++x) {
      for (int y = 0; y <= 6; ++y) {
        if (x == 5 && y == 6) continue;
        s += StrCat("fact S(", x, ", ", y, ")\n");
      }
    }
    for (int m = 0; m <= 5; ++m) s += StrCat("master fact M(", m, ")\n");
    s += "constraint c0(x) :- S(x, y) |= M[0]\n";
    s += "query cq Q(x, y) :- S(x, y)\n";
    return s;
  }();
  return spec;
}

std::string FreshDir(const char* tag) {
  static int counter = 0;
  return StrCat(::testing::TempDir(), "/relcomp_fab_", ::getpid(), "_", tag,
                "_", counter++);
}

std::string FreshSocket(const char* tag) {
  static int counter = 0;
  return StrCat("unix:", ::testing::TempDir(), "/relcomp_fab_", ::getpid(),
                "_", tag, "_", counter++, ".sock");
}

JobSpec MakeJob(const std::string& spec, size_t threads = 1,
                size_t slice = 0) {
  JobSpec job;
  job.kind = JobKind::kRcdp;
  job.spec_text = spec;
  job.num_threads = threads;
  job.slice_steps = slice;
  return job;
}

/// The oracle: canonical evidence of an uninterrupted direct run.
std::string DirectRcdpEvidence(const std::string& spec_text, size_t threads) {
  auto spec = ParseCompletenessSpec(spec_text);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  RcdpOptions options;
  options.num_threads = threads;
  auto r = DecideRcdp(spec->queries[0], spec->db, spec->master,
                      spec->constraints, options);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return StrCat(VerdictToString(r->verdict), "|",
                r->counterexample_delta.has_value()
                    ? r->counterexample_delta->ToString()
                    : std::string("<none>"),
                "|",
                r->new_answer.has_value() ? r->new_answer->ToString()
                                          : std::string("<none>"));
}

size_t CountDecisionPoints(const std::string& spec_text, size_t threads) {
  auto spec = ParseCompletenessSpec(spec_text);
  EXPECT_TRUE(spec.ok());
  ExecutionBudget budget;
  budget.set_max_steps(1u << 30);
  RcdpOptions options;
  options.num_threads = threads;
  options.budget = &budget;
  auto r = DecideRcdp(spec->queries[0], spec->db, spec->master,
                      spec->constraints, options);
  EXPECT_TRUE(r.ok());
  return budget.steps();
}

/// An in-process fabric: N members over one root, each on its own
/// socket. `tweak` customizes one member's options before Start (the
/// kill harness arms the owner's crash knobs through it).
struct Fabric {
  std::string root;
  std::vector<std::string> endpoints;
  std::vector<std::unique_ptr<FabricMember>> members;
};

using MemberTweak = std::function<void(size_t, FabricMemberOptions&)>;

FabricMemberOptions MemberOptions(const Fabric& fabric, size_t index,
                                  const MemberTweak& tweak) {
  FabricMemberOptions options;
  options.fabric_root = fabric.root;
  options.member_index = index;
  options.endpoints = fabric.endpoints;
  if (tweak) tweak(index, options);
  return options;
}

Fabric StartFabric(const char* tag, size_t n, const MemberTweak& tweak = {}) {
  Fabric fabric;
  fabric.root = FreshDir(tag);
  for (size_t i = 0; i < n; ++i) fabric.endpoints.push_back(FreshSocket(tag));
  for (size_t i = 0; i < n; ++i) {
    auto member = FabricMember::Start(MemberOptions(fabric, i, tweak));
    EXPECT_TRUE(member.ok()) << member.status().ToString();
    fabric.members.push_back(member.ok() ? std::move(*member) : nullptr);
  }
  return fabric;
}

Status RestartMember(Fabric& fabric, size_t index,
                     const MemberTweak& tweak = {}) {
  fabric.members[index].reset();
  auto member = FabricMember::Start(MemberOptions(fabric, index, tweak));
  if (!member.ok()) return member.status();
  fabric.members[index] = std::move(*member);
  return Status::OK();
}

/// A key that the placement contract routes to `shard`.
std::string KeyForShard(const FabricRing& ring, size_t shard,
                        const char* tag) {
  for (int i = 0;; ++i) {
    std::string key = StrCat("job-", tag, "-", i);
    if (ring.ShardForKey(key) == shard) return key;
  }
}

/// How often `key` completed across every live shard service — the
/// no-job-served-twice audit.
size_t TimesCompleted(const Fabric& fabric, const std::string& key) {
  size_t times = 0;
  for (const auto& member : fabric.members) {
    if (!member) continue;
    for (size_t shard : member->owned_shards()) {
      DecisionService* service = member->shard_service(shard);
      if (service == nullptr || service->crashed()) continue;
      for (const std::string& done : service->completed_order()) {
        if (done == key) ++times;
      }
    }
  }
  return times;
}

void ExpectNoCorruption(const Fabric& fabric) {
  for (const auto& member : fabric.members) {
    if (!member) continue;
    for (size_t shard : member->owned_shards()) {
      DecisionService* service = member->shard_service(shard);
      if (service == nullptr || service->crashed()) continue;
      EXPECT_EQ(service->store().corrupt_files_skipped(), 0u)
          << "shard " << shard << " read a corrupt store file";
    }
  }
}

/// Blocks until the owner either crashed (simulated kill fired) or
/// finished the job; returns true when it crashed.
bool AwaitCrashOrCompletion(DecisionService* service,
                            const std::string& key) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (std::chrono::steady_clock::now() < deadline) {
    if (service->crashed()) return true;
    auto poll = service->Poll(key);
    if (poll.ok() && poll->terminal) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ADD_FAILURE() << "owner neither crashed nor finished " << key;
  return false;
}

// --- Parameterized over (members, threads) ---------------------------

class FabricSweepTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {
 protected:
  size_t members() const { return std::get<0>(GetParam()); }
  size_t threads() const { return std::get<1>(GetParam()); }
};

TEST_P(FabricSweepTest, RoutesAndCompletesAcrossMembers) {
  const std::string expected = DirectRcdpEvidence(IncompleteSpec(), threads());
  Fabric fabric = StartFabric("route", members());
  FabricClient client(fabric.endpoints);
  const FabricRing placement = FabricRing::Make(fabric.endpoints);

  std::vector<std::string> keys;
  for (size_t i = 0; i < 3 * members(); ++i) {
    keys.push_back(StrCat("job-route-", i));
    ASSERT_TRUE(
        client.Submit(keys.back(), MakeJob(IncompleteSpec(), threads())).ok());
  }
  for (const std::string& key : keys) {
    auto reply = client.AwaitTerminal(key);
    ASSERT_TRUE(reply.ok()) << key << ": " << reply.status().ToString();
    EXPECT_EQ(reply->evidence, expected) << key;
    // The job completed on exactly the shard the placement contract
    // names, and nowhere else.
    const size_t shard = placement.ShardForKey(key);
    DecisionService* owner =
        fabric.members[shard]->shard_service(shard);
    ASSERT_NE(owner, nullptr);
    EXPECT_EQ(TimesCompleted(fabric, key), 1u) << key;
    bool on_owner = false;
    for (const std::string& done : owner->completed_order()) {
      if (done == key) on_owner = true;
    }
    EXPECT_TRUE(on_owner) << key << " did not run on its shard " << shard;
  }
  ExpectNoCorruption(fabric);
}

TEST_P(FabricSweepTest, KillAtEveryPersistSiteRecoversByRestart) {
  const std::string expected = DirectRcdpEvidence(IncompleteSpec(), threads());
  const size_t total = CountDecisionPoints(IncompleteSpec(), threads());
  const size_t slice = total / 6 + 1;

  // Learn the persist count from one unkilled fabric run.
  size_t persists = 0;
  {
    Fabric fabric = StartFabric("persistbase", members());
    FabricClient client(fabric.endpoints);
    auto reply = client.SubmitAndAwait(
        "job-base", MakeJob(IncompleteSpec(), threads(), slice));
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_EQ(reply->evidence, expected);
    const size_t shard = FabricRing::Make(fabric.endpoints)
                             .ShardForKey("job-base");
    persists =
        fabric.members[shard]->shard_service(shard)->checkpoints_persisted();
  }
  ASSERT_GE(persists, 1u);

  size_t kills = 0;
  for (size_t k = 1; k <= persists; ++k) {
    SCOPED_TRACE(StrCat("k=", k));
    const std::string tag = StrCat("ps", k);
    const size_t owner_shard =
        FabricRing::Make(std::vector<std::string>(members()))
            .ShardForKey(StrCat("job-", tag, "-0"));
    // Arm the k-th-persist kill on the member whose shard will own the
    // key; every other member runs clean.
    Fabric fabric =
        StartFabric(tag.c_str(), members(),
                    [&](size_t index, FabricMemberOptions& options) {
                      if (index == owner_shard) {
                        options.service_options.crash_after_persist = k;
                      }
                    });
    const std::string key =
        KeyForShard(FabricRing::Make(fabric.endpoints), owner_shard,
                    tag.c_str());
    FabricClient client(fabric.endpoints);
    ASSERT_TRUE(
        client.Submit(key, MakeJob(IncompleteSpec(), threads(), slice)).ok());

    DecisionService* owner =
        fabric.members[owner_shard]->shard_service(owner_shard);
    ASSERT_NE(owner, nullptr);
    if (!AwaitCrashOrCompletion(owner, key)) {
      // This schedule finished in fewer than k persists — still must
      // be bit-for-bit.
      auto reply = client.AwaitTerminal(key);
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      EXPECT_EQ(reply->evidence, expected);
      continue;
    }
    ++kills;
    // The kill: the owner process dies (its flock dies with it) and is
    // restarted over the same shard directory; recovery re-enqueues
    // the in-flight job and resumes its newest checkpoint.
    ASSERT_TRUE(RestartMember(fabric, owner_shard).ok());
    EXPECT_GE(fabric.members[owner_shard]->recovered_jobs(), 1u);
    auto reply = client.AwaitTerminal(key);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->evidence, expected);
    EXPECT_EQ(TimesCompleted(fabric, key), 1u) << "job served twice";
    ExpectNoCorruption(fabric);
  }
  EXPECT_GT(kills, 0u) << "the sweep never actually killed anyone";
}

TEST_P(FabricSweepTest, KillAtEveryPersistSiteRecoversByAdoption) {
  const std::string expected = DirectRcdpEvidence(IncompleteSpec(), threads());
  const size_t total = CountDecisionPoints(IncompleteSpec(), threads());
  const size_t slice = total / 6 + 1;

  size_t kills = 0;
  for (size_t k = 1;; ++k) {
    SCOPED_TRACE(StrCat("k=", k));
    const std::string tag = StrCat("ad", k);
    const size_t owner_shard =
        FabricRing::Make(std::vector<std::string>(members()))
            .ShardForKey(StrCat("job-", tag, "-0"));
    Fabric fabric =
        StartFabric(tag.c_str(), members(),
                    [&](size_t index, FabricMemberOptions& options) {
                      if (index == owner_shard) {
                        options.service_options.crash_after_persist = k;
                      }
                    });
    const std::string key =
        KeyForShard(FabricRing::Make(fabric.endpoints), owner_shard,
                    tag.c_str());
    FabricClient client(fabric.endpoints);
    ASSERT_TRUE(
        client.Submit(key, MakeJob(IncompleteSpec(), threads(), slice)).ok());

    DecisionService* owner =
        fabric.members[owner_shard]->shard_service(owner_shard);
    ASSERT_NE(owner, nullptr);
    if (!AwaitCrashOrCompletion(owner, key)) {
      auto reply = client.AwaitTerminal(key);
      ASSERT_TRUE(reply.ok());
      EXPECT_EQ(reply->evidence, expected);
      break;  // k exceeded the run's persist count: sweep exhausted
    }
    ++kills;
    // The kill, handed off instead of restarted: the owner dies for
    // good and a surviving peer adopts its shard.
    const size_t adopter = (owner_shard + 1) % members();
    const uint64_t epoch_before = fabric.members[adopter]->ring().epoch;
    fabric.members[owner_shard].reset();
    ASSERT_TRUE(fabric.members[adopter]->AdoptShard(owner_shard).ok());
    EXPECT_GT(fabric.members[adopter]->ring().epoch, epoch_before)
        << "adoption did not fence with an epoch bump";
    EXPECT_EQ(fabric.members[adopter]->ring().endpoints[owner_shard],
              fabric.endpoints[adopter]);
    EXPECT_GE(fabric.members[adopter]->recovered_jobs(), 1u);

    auto reply = client.AwaitTerminal(key);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->evidence, expected);
    EXPECT_EQ(TimesCompleted(fabric, key), 1u) << "job served twice";
    ExpectNoCorruption(fabric);
  }
  EXPECT_GT(kills, 0u) << "the sweep never actually killed anyone";
}

TEST_P(FabricSweepTest, KillAtSampledDecisionPointsRecoversByAdoption) {
  const std::string expected = DirectRcdpEvidence(IncompleteSpec(), threads());
  const size_t total = CountDecisionPoints(IncompleteSpec(), threads());
  ASSERT_GT(total, 4u);

  for (size_t point : {total / 4, total / 2, (3 * total) / 4}) {
    SCOPED_TRACE(StrCat("point=", point));
    const std::string tag = StrCat("dp", point);
    const size_t owner_shard =
        FabricRing::Make(std::vector<std::string>(members()))
            .ShardForKey(StrCat("job-", tag, "-0"));
    FaultInjector inject(FaultInjector::Fault::kPersistAbort, point);
    Fabric fabric =
        StartFabric(tag.c_str(), members(),
                    [&](size_t index, FabricMemberOptions& options) {
                      if (index == owner_shard) {
                        options.service_options.fault_injector = &inject;
                      }
                    });
    const std::string key =
        KeyForShard(FabricRing::Make(fabric.endpoints), owner_shard,
                    tag.c_str());
    FabricClient client(fabric.endpoints);
    ASSERT_TRUE(
        client.Submit(key, MakeJob(IncompleteSpec(), threads())).ok());

    DecisionService* owner =
        fabric.members[owner_shard]->shard_service(owner_shard);
    ASSERT_NE(owner, nullptr);
    ASSERT_TRUE(AwaitCrashOrCompletion(owner, key))
        << "injector at " << point << " never fired";
    const size_t adopter = (owner_shard + 1) % members();
    fabric.members[owner_shard].reset();
    ASSERT_TRUE(fabric.members[adopter]->AdoptShard(owner_shard).ok());
    auto reply = client.AwaitTerminal(key);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->evidence, expected);
    EXPECT_EQ(TimesCompleted(fabric, key), 1u);
    ExpectNoCorruption(fabric);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MembersThreads, FabricSweepTest,
    ::testing::Values(std::make_tuple(2, 1), std::make_tuple(2, 8),
                      std::make_tuple(3, 1), std::make_tuple(3, 8)));

// --- Single-shape behaviors ------------------------------------------

TEST(FabricServiceTest, WrongOwnerShedIsTypedAndNamesTheOwner) {
  Fabric fabric = StartFabric("shed", 2);
  const std::string key =
      KeyForShard(FabricRing::Make(fabric.endpoints), 0, "shed");
  // Ask member 1 directly for shard 0's key: a typed kUnavailable
  // naming the real owner, not a hang and not a silent wrong answer.
  NetClientOptions options;
  options.max_retries = 1;
  NetClient direct(fabric.endpoints[1], options);
  Status submitted = direct.Submit(key, MakeJob(IncompleteSpec()));
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.code(), StatusCode::kUnavailable)
      << submitted.ToString();
  EXPECT_NE(submitted.message().find("owned by"), std::string::npos)
      << submitted.ToString();
}

TEST(FabricServiceTest, DrainDepartsTheRingThenAdoptionRevives) {
  const std::string expected = DirectRcdpEvidence(IncompleteSpec(), 1);
  Fabric fabric = StartFabric("drain", 2);
  const std::string key =
      KeyForShard(FabricRing::Make(fabric.endpoints), 0, "drain");

  // Graceful drain of shard 0's owner: the departure (epoch bump, ""
  // endpoint) is journaled before the listener closes.
  fabric.members[0]->Shutdown();
  fabric.members[0].reset();

  // Typed degradation, not a hang: the shard has no live owner, so a
  // deadline-bounded client gets kDeadlineExceeded out of repeated
  // typed kUnavailable refusals, in bounded time.
  {
    FabricClientOptions options;
    options.op_deadline = std::chrono::milliseconds(400);
    FabricClient client(fabric.endpoints, options);
    const auto start = std::chrono::steady_clock::now();
    Status submitted = client.Submit(key, MakeJob(IncompleteSpec()));
    ASSERT_FALSE(submitted.ok());
    EXPECT_EQ(submitted.code(), StatusCode::kDeadlineExceeded)
        << submitted.ToString();
    EXPECT_LT(std::chrono::steady_clock::now() - start,
              std::chrono::seconds(20));
  }

  // Adoption fences past the departure: the drained owner journaled
  // epoch 1 into shard 0, so the adopter's reassignment lands at 2.
  ASSERT_TRUE(fabric.members[1]->AdoptShard(0).ok());
  EXPECT_EQ(fabric.members[1]->ring().epoch, 2u);
  EXPECT_EQ(fabric.members[1]->ring().endpoints[0], fabric.endpoints[1]);

  FabricClient client(fabric.endpoints);
  auto reply = client.SubmitAndAwait(key, MakeJob(IncompleteSpec()));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->evidence, expected);
  ExpectNoCorruption(fabric);
}

TEST(FabricServiceTest, AdoptionIsRefusedWhileTheOwnerLives) {
  Fabric fabric = StartFabric("zombie", 2);
  // Member 0 is alive and holds shard 0's flock: adopting it would be
  // a double-serve, so the attempt must fail typed, changing nothing.
  const uint64_t epoch_before = fabric.members[1]->ring().epoch;
  Status adopted = fabric.members[1]->AdoptShard(0);
  ASSERT_FALSE(adopted.ok());
  EXPECT_EQ(adopted.code(), StatusCode::kFailedPrecondition)
      << adopted.ToString();
  EXPECT_EQ(fabric.members[1]->ring().epoch, epoch_before);
  EXPECT_EQ(fabric.members[1]->owned_shards(), (std::vector<size_t>{1}));
}

TEST(FabricServiceTest, PlacementContractMismatchIsRefused) {
  Fabric fabric = StartFabric("contract", 2);
  fabric.members[0].reset();
  fabric.members[1].reset();
  // Reopening shard 0 as part of a THREE-shard fabric would route keys
  // differently than the durable jobs were placed: refusal, not drift.
  FabricMemberOptions options;
  options.fabric_root = fabric.root;
  options.member_index = 0;
  options.endpoints = {fabric.endpoints[0], fabric.endpoints[1],
                       FreshSocket("contract_extra")};
  auto member = FabricMember::Start(options);
  ASSERT_FALSE(member.ok());
  EXPECT_EQ(member.status().code(), StatusCode::kFailedPrecondition)
      << member.status().ToString();
  EXPECT_NE(member.status().message().find("placement contract"),
            std::string::npos);
}

TEST(FabricServiceTest, RejoinAfterDrainFencesWithAHigherEpoch) {
  Fabric fabric = StartFabric("rejoin", 2);
  fabric.members[0]->Shutdown();  // journals epoch 1, shard 0 unowned
  fabric.members[0].reset();
  ASSERT_TRUE(RestartMember(fabric, 0).ok());
  // The rejoin outranks the departure it read back.
  EXPECT_EQ(fabric.members[0]->ring().epoch, 2u);
  EXPECT_EQ(fabric.members[0]->ring().endpoints[0], fabric.endpoints[0]);

  const std::string key =
      KeyForShard(FabricRing::Make(fabric.endpoints), 0, "rejoin");
  FabricClient client(fabric.endpoints);
  auto reply = client.SubmitAndAwait(key, MakeJob(IncompleteSpec()));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
}

TEST(FabricServiceTest, VerdictCacheIsServedAcrossShardHandoff) {
  const std::string expected = DirectRcdpEvidence(IncompleteSpec(), 1);
  MemberTweak with_cache = [](size_t, FabricMemberOptions& options) {
    options.service_options.enable_verdict_cache = true;
  };
  Fabric fabric = StartFabric("vcache", 2, with_cache);
  const std::string key =
      KeyForShard(FabricRing::Make(fabric.endpoints), 0, "vcache");
  {
    FabricClient client(fabric.endpoints);
    auto reply = client.SubmitAndAwait(key, MakeJob(IncompleteSpec()));
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_EQ(reply->evidence, expected);
  }
  // Hand shard 0 to member 1; the journaled verdict record must ride
  // along and answer the resubmission without a fresh search.
  fabric.members[0]->Shutdown();
  fabric.members[0].reset();
  ASSERT_TRUE(fabric.members[1]->AdoptShard(0).ok());
  DecisionService* adopted = fabric.members[1]->shard_service(0);
  ASSERT_NE(adopted, nullptr);
  ASSERT_EQ(adopted->verdicts_served_from_cache(), 0u);

  FabricClient client(fabric.endpoints);
  auto reply = client.SubmitAndAwait(key, MakeJob(IncompleteSpec()));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->evidence, expected);
  EXPECT_GE(adopted->verdicts_served_from_cache(), 1u)
      << "the handed-off verdict cache was not consulted";
  EXPECT_EQ(adopted->store().corrupt_files_skipped(), 0u);
}

TEST(FabricServiceTest, VerdictIsRecomputedHonestlyWithoutTheCache) {
  // Same handoff, cache disabled: the adopter re-runs the search and
  // determinism makes the answer bit-for-bit anyway — served honestly,
  // never corrupted.
  const std::string expected = DirectRcdpEvidence(IncompleteSpec(), 1);
  Fabric fabric = StartFabric("nocache", 2);
  const std::string key =
      KeyForShard(FabricRing::Make(fabric.endpoints), 0, "nocache");
  {
    FabricClient client(fabric.endpoints);
    auto reply = client.SubmitAndAwait(key, MakeJob(IncompleteSpec()));
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_EQ(reply->evidence, expected);
  }
  fabric.members[0]->Shutdown();
  fabric.members[0].reset();
  ASSERT_TRUE(fabric.members[1]->AdoptShard(0).ok());
  DecisionService* adopted = fabric.members[1]->shard_service(0);
  ASSERT_NE(adopted, nullptr);

  FabricClient client(fabric.endpoints);
  auto reply = client.SubmitAndAwait(key, MakeJob(IncompleteSpec()));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->evidence, expected);
  EXPECT_EQ(adopted->verdicts_served_from_cache(), 0u);
  EXPECT_EQ(adopted->store().corrupt_files_skipped(), 0u);
}

TEST(FabricServiceTest, FabricClientBootstrapsOffAStandaloneServer) {
  // The uniform-shape contract: a FabricClient pointed at plain
  // NetServers (no fabric) bootstraps off their singleton rings and
  // completes the audit — multi-endpoint --connect without a fabric.
  const std::string expected = DirectRcdpEvidence(IncompleteSpec(), 1);
  auto service = DecisionService::Start(FreshDir("solo"));
  ASSERT_TRUE(service.ok());
  auto server = NetServer::Start(service->get(), FreshSocket("solo"));
  ASSERT_TRUE(server.ok());
  FabricClient client({(*server)->address()});
  auto reply = client.SubmitAndAwait("job-solo", MakeJob(IncompleteSpec()));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->evidence, expected);
  ASSERT_TRUE(client.has_ring());
  EXPECT_EQ(client.ring().num_shards(), 1u);
}

}  // namespace
}  // namespace relcomp
