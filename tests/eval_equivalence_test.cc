#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "eval/conjunctive_eval.h"
#include "relational/database_overlay.h"
#include "workload/generators.h"

namespace relcomp {
namespace {

/// Brute-force oracle: enumerates every total assignment of the body
/// variables over adom(D) ∪ constants(Q), checks each atom by direct
/// containment, and collects the head tuples. Independent of the
/// matcher (no atom ordering, no indexes, no id plane) by construction.
Relation OracleEval(const ConjunctiveQuery& q, const Database& db) {
  std::set<Value> domain_set = q.Constants();
  db.CollectConstants(&domain_set);
  std::vector<Value> domain(domain_set.begin(), domain_set.end());
  std::set<std::string> var_set = q.Variables();
  std::vector<std::string> vars(var_set.begin(), var_set.end());

  Relation out(q.head().size());
  Bindings bindings;
  std::function<void(size_t)> recurse = [&](size_t i) {
    if (i == vars.size()) {
      for (const Atom& a : q.body()) {
        if (a.is_relation()) {
          std::optional<Tuple> t = bindings.Ground(a.args());
          if (!t.has_value() || !db.Contains(a.relation(), *t)) return;
        } else {
          std::optional<bool> v = bindings.EvalComparison(a);
          if (!v.has_value() || !*v) return;
        }
      }
      std::optional<Tuple> head = bindings.Ground(q.head());
      if (head.has_value()) out.Insert(std::move(*head));
      return;
    }
    for (const Value& v : domain) {
      bindings.Set(vars[i], v);
      recurse(i + 1);
    }
    bindings.Unset(vars[i]);
  };
  recurse(0);
  return out;
}

struct Config {
  RandomInstanceOptions instance;
  RandomCqOptions cq;
};

void RunEquivalenceRounds(const Config& config, uint64_t seed,
                          int rounds) {
  Rng rng(seed);
  for (int round = 0; round < rounds; ++round) {
    std::shared_ptr<Schema> schema = RandomSchema(config.instance, &rng);
    Database db = RandomDatabase(schema, config.instance, &rng);
    ConjunctiveQuery q = RandomCq(*schema, config.cq, &rng);

    Relation oracle = OracleEval(q, db);

    ConjunctiveEvalOptions indexed;  // defaults: reorder + indexes
    Result<Relation> fast = EvalConjunctive(q, db, indexed);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();

    ConjunctiveEvalOptions naive;
    naive.reorder_atoms = false;
    naive.use_indexes = false;
    Result<Relation> slow = EvalConjunctive(q, db, naive);
    ASSERT_TRUE(slow.ok()) << slow.status().ToString();

    EXPECT_EQ(*fast, oracle)
        << "indexed matcher diverges from oracle at round " << round
        << "\nquery: " << q.ToString() << "\ndb:\n" << db.ToString();
    EXPECT_EQ(*slow, oracle)
        << "naive matcher diverges from oracle at round " << round
        << "\nquery: " << q.ToString() << "\ndb:\n" << db.ToString();

    // Overlay equivalence: split the instance into a base holding the
    // even-indexed tuples and an overlay staging the rest; the view
    // must evaluate exactly like the materialized whole.
    Database base(schema);
    std::vector<std::pair<std::string, Tuple>> staged;
    size_t n = 0;
    for (const std::string& name : schema->relation_names()) {
      for (const Tuple& t : db.Get(name)) {
        if (n++ % 2 == 0) {
          base.InsertUnchecked(name, t);
        } else {
          staged.emplace_back(name, t);
        }
      }
    }
    DatabaseOverlay view(&base);
    for (const auto& [name, t] : staged) view.Add(name, t);
    Result<Relation> over = EvalConjunctive(q, view, indexed);
    ASSERT_TRUE(over.ok()) << over.status().ToString();
    EXPECT_EQ(*over, oracle)
        << "overlay eval diverges from oracle at round " << round
        << "\nquery: " << q.ToString() << "\ndb:\n" << db.ToString();
  }
}

TEST(EvalEquivalenceTest, SmallDenseInstances) {
  Config config;
  config.instance.num_relations = 2;
  config.instance.max_arity = 2;
  config.instance.value_pool = 3;
  config.instance.tuples_per_relation = 4;
  config.cq.num_atoms = 2;
  config.cq.num_variables = 3;
  config.cq.value_pool = 3;
  RunEquivalenceRounds(config, /*seed=*/0xA11CE, /*rounds=*/60);
}

TEST(EvalEquivalenceTest, WiderJoinsAndConstants) {
  Config config;
  config.instance.num_relations = 3;
  config.instance.max_arity = 3;
  config.instance.value_pool = 4;
  config.instance.tuples_per_relation = 5;
  config.cq.num_atoms = 3;
  config.cq.num_variables = 4;
  config.cq.constant_pct = 40;
  config.cq.value_pool = 4;
  RunEquivalenceRounds(config, /*seed=*/0xB0B, /*rounds=*/30);
}

TEST(EvalEquivalenceTest, DisequalityHeavyQueries) {
  Config config;
  config.instance.num_relations = 2;
  config.instance.max_arity = 2;
  config.instance.value_pool = 3;
  config.instance.tuples_per_relation = 4;
  config.cq.num_atoms = 2;
  config.cq.num_variables = 4;
  config.cq.disequality_pct = 100;
  config.cq.value_pool = 3;
  RunEquivalenceRounds(config, /*seed=*/0xD15E0, /*rounds=*/60);
}

TEST(EvalEquivalenceTest, RepeatedVariablesWithinAtoms) {
  // Few variables and wider atoms force repeated variables inside a
  // single atom — the matcher's trickiest binding path.
  Config config;
  config.instance.num_relations = 2;
  config.instance.min_arity = 2;
  config.instance.max_arity = 3;
  config.instance.value_pool = 2;
  config.instance.tuples_per_relation = 6;
  config.cq.num_atoms = 2;
  config.cq.num_variables = 2;
  config.cq.value_pool = 2;
  RunEquivalenceRounds(config, /*seed=*/0x5EED, /*rounds=*/60);
}

}  // namespace
}  // namespace relcomp
