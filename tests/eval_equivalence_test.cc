#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "eval/conjunctive_eval.h"
#include "relational/database_overlay.h"
#include "util/arena.h"
#include "util/str.h"
#include "workload/generators.h"

namespace relcomp {
namespace {

/// Brute-force oracle: enumerates every total assignment of the body
/// variables over adom(D) ∪ constants(Q), checks each atom by direct
/// containment, and collects the head tuples. Independent of the
/// matcher (no atom ordering, no indexes, no id plane) by construction.
Relation OracleEval(const ConjunctiveQuery& q, const Database& db) {
  std::set<Value> domain_set = q.Constants();
  db.CollectConstants(&domain_set);
  std::vector<Value> domain(domain_set.begin(), domain_set.end());
  std::set<std::string> var_set = q.Variables();
  std::vector<std::string> vars(var_set.begin(), var_set.end());

  Relation out(q.head().size());
  Bindings bindings;
  std::function<void(size_t)> recurse = [&](size_t i) {
    if (i == vars.size()) {
      for (const Atom& a : q.body()) {
        if (a.is_relation()) {
          std::optional<Tuple> t = bindings.Ground(a.args());
          if (!t.has_value() || !db.Contains(a.relation(), *t)) return;
        } else {
          std::optional<bool> v = bindings.EvalComparison(a);
          if (!v.has_value() || !*v) return;
        }
      }
      std::optional<Tuple> head = bindings.Ground(q.head());
      if (head.has_value()) out.Insert(std::move(*head));
      return;
    }
    for (const Value& v : domain) {
      bindings.Set(vars[i], v);
      recurse(i + 1);
    }
    bindings.Unset(vars[i]);
  };
  recurse(0);
  return out;
}

struct Config {
  RandomInstanceOptions instance;
  RandomCqOptions cq;
};

void RunEquivalenceRounds(const Config& config, uint64_t seed,
                          int rounds) {
  Rng rng(seed);
  for (int round = 0; round < rounds; ++round) {
    std::shared_ptr<Schema> schema = RandomSchema(config.instance, &rng);
    Database db = RandomDatabase(schema, config.instance, &rng);
    ConjunctiveQuery q = RandomCq(*schema, config.cq, &rng);

    Relation oracle = OracleEval(q, db);

    ConjunctiveEvalOptions indexed;  // defaults: reorder + composite
    Result<Relation> fast = EvalConjunctive(q, db, indexed);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();

    // The PR 1 per-column path: posting-list intersection, no radix
    // descents.
    ConjunctiveEvalOptions per_column = indexed;
    per_column.use_composite_indexes = false;
    Result<Relation> cols = EvalConjunctive(q, db, per_column);
    ASSERT_TRUE(cols.ok()) << cols.status().ToString();

    // Arena-backed run of the composite config: all per-call matcher
    // scratch lives in the bump arena.
    Arena arena;
    ConjunctiveEvalOptions with_arena = indexed;
    with_arena.arena = &arena;
    Result<Relation> arena_run = EvalConjunctive(q, db, with_arena);
    ASSERT_TRUE(arena_run.ok()) << arena_run.status().ToString();

    ConjunctiveEvalOptions naive;
    naive.reorder_atoms = false;
    naive.use_indexes = false;
    Result<Relation> slow = EvalConjunctive(q, db, naive);
    ASSERT_TRUE(slow.ok()) << slow.status().ToString();

    EXPECT_EQ(*fast, oracle)
        << "composite matcher diverges from oracle at round " << round
        << "\nquery: " << q.ToString() << "\ndb:\n" << db.ToString();
    EXPECT_EQ(*cols, oracle)
        << "per-column matcher diverges from oracle at round " << round
        << "\nquery: " << q.ToString() << "\ndb:\n" << db.ToString();
    EXPECT_EQ(*arena_run, oracle)
        << "arena-backed matcher diverges from oracle at round " << round
        << "\nquery: " << q.ToString() << "\ndb:\n" << db.ToString();
    EXPECT_EQ(*slow, oracle)
        << "naive matcher diverges from oracle at round " << round
        << "\nquery: " << q.ToString() << "\ndb:\n" << db.ToString();

    // Overlay equivalence: split the instance into a base holding the
    // even-indexed tuples and an overlay staging the rest; the view
    // must evaluate exactly like the materialized whole.
    Database base(schema);
    std::vector<std::pair<std::string, Tuple>> staged;
    size_t n = 0;
    for (const std::string& name : schema->relation_names()) {
      for (const Tuple& t : db.Get(name)) {
        if (n++ % 2 == 0) {
          base.InsertUnchecked(name, t);
        } else {
          staged.emplace_back(name, t);
        }
      }
    }
    DatabaseOverlay view(&base);
    for (const auto& [name, t] : staged) view.Add(name, t);
    Result<Relation> over = EvalConjunctive(q, view, indexed);
    ASSERT_TRUE(over.ok()) << over.status().ToString();
    EXPECT_EQ(*over, oracle)
        << "overlay eval diverges from oracle at round " << round
        << "\nquery: " << q.ToString() << "\ndb:\n" << db.ToString();

    // Fresh-id overlay rows: stage tuples whose values the base
    // interner has never seen (they get synthetic ids inside the
    // matcher). The view must agree with an independent database that
    // materializes the same rows.
    Database with_fresh(schema);  // own interner: db's never sees these
    DatabaseOverlay fresh_view(&db);
    for (const std::string& name : schema->relation_names()) {
      for (const Tuple& t : db.Get(name)) with_fresh.InsertUnchecked(name, t);
    }
    size_t fresh_rel = 0;
    for (const std::string& name : schema->relation_names()) {
      std::vector<Value> vals;
      const size_t arity = schema->FindRelation(name)->arity();
      for (size_t c = 0; c < arity; ++c) {
        vals.push_back(Value::Str(StrCat("fresh$", round, "_", fresh_rel,
                                         "_", c)));
      }
      ++fresh_rel;
      Tuple t(std::move(vals));
      with_fresh.InsertUnchecked(name, t);
      fresh_view.Add(name, t);
    }
    Relation fresh_oracle = OracleEval(q, with_fresh);
    Result<Relation> fresh_fast = EvalConjunctive(q, fresh_view, indexed);
    ASSERT_TRUE(fresh_fast.ok()) << fresh_fast.status().ToString();
    EXPECT_EQ(*fresh_fast, fresh_oracle)
        << "composite matcher diverges on fresh overlay rows at round "
        << round << "\nquery: " << q.ToString() << "\ndb:\n"
        << with_fresh.ToString();
    Result<Relation> fresh_cols = EvalConjunctive(q, fresh_view, per_column);
    ASSERT_TRUE(fresh_cols.ok()) << fresh_cols.status().ToString();
    EXPECT_EQ(*fresh_cols, fresh_oracle)
        << "per-column matcher diverges on fresh overlay rows at round "
        << round << "\nquery: " << q.ToString() << "\ndb:\n"
        << with_fresh.ToString();
  }
}

TEST(EvalEquivalenceTest, SmallDenseInstances) {
  Config config;
  config.instance.num_relations = 2;
  config.instance.max_arity = 2;
  config.instance.value_pool = 3;
  config.instance.tuples_per_relation = 4;
  config.cq.num_atoms = 2;
  config.cq.num_variables = 3;
  config.cq.value_pool = 3;
  RunEquivalenceRounds(config, /*seed=*/0xA11CE, /*rounds=*/60);
}

TEST(EvalEquivalenceTest, WiderJoinsAndConstants) {
  Config config;
  config.instance.num_relations = 3;
  config.instance.max_arity = 3;
  config.instance.value_pool = 4;
  config.instance.tuples_per_relation = 5;
  config.cq.num_atoms = 3;
  config.cq.num_variables = 4;
  config.cq.constant_pct = 40;
  config.cq.value_pool = 4;
  RunEquivalenceRounds(config, /*seed=*/0xB0B, /*rounds=*/30);
}

TEST(EvalEquivalenceTest, DisequalityHeavyQueries) {
  Config config;
  config.instance.num_relations = 2;
  config.instance.max_arity = 2;
  config.instance.value_pool = 3;
  config.instance.tuples_per_relation = 4;
  config.cq.num_atoms = 2;
  config.cq.num_variables = 4;
  config.cq.disequality_pct = 100;
  config.cq.value_pool = 3;
  RunEquivalenceRounds(config, /*seed=*/0xD15E0, /*rounds=*/60);
}

TEST(EvalEquivalenceTest, EmptyRelationsAndEmptyPrefixProbes) {
  // One relation is emptied per round, so atoms over it hit the
  // zero-row paths (no index, no radix root); and the query's constant
  // pool is wider than the instance's, so some constants are unknown to
  // the interner — their probes must resolve to the empty prefix on
  // every configuration.
  Config config;
  config.instance.num_relations = 3;
  config.instance.max_arity = 3;
  config.instance.value_pool = 3;
  config.instance.tuples_per_relation = 4;
  config.cq.num_atoms = 3;
  config.cq.num_variables = 3;
  config.cq.constant_pct = 50;
  config.cq.value_pool = 6;  // half the constants never occur in D
  Rng rng(0xE3971);
  for (int round = 0; round < 40; ++round) {
    std::shared_ptr<Schema> schema = RandomSchema(config.instance, &rng);
    Database full = RandomDatabase(schema, config.instance, &rng);
    Database db(schema);
    size_t idx = 0;
    for (const std::string& name : schema->relation_names()) {
      if (idx++ == static_cast<size_t>(round) % 3) continue;  // emptied
      for (const Tuple& t : full.Get(name)) db.InsertUnchecked(name, t);
    }
    ConjunctiveQuery q = RandomCq(*schema, config.cq, &rng);
    Relation oracle = OracleEval(q, db);

    ConjunctiveEvalOptions indexed;
    ConjunctiveEvalOptions per_column;
    per_column.use_composite_indexes = false;
    ConjunctiveEvalOptions naive;
    naive.reorder_atoms = false;
    naive.use_indexes = false;
    for (const ConjunctiveEvalOptions* options :
         {&indexed, &per_column, &naive}) {
      Result<Relation> got = EvalConjunctive(q, db, *options);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(*got, oracle)
          << "matcher diverges from oracle at round " << round
          << "\nquery: " << q.ToString() << "\ndb:\n" << db.ToString();
    }
  }
}

TEST(EvalEquivalenceTest, RepeatedVariablesWithinAtoms) {
  // Few variables and wider atoms force repeated variables inside a
  // single atom — the matcher's trickiest binding path.
  Config config;
  config.instance.num_relations = 2;
  config.instance.min_arity = 2;
  config.instance.max_arity = 3;
  config.instance.value_pool = 2;
  config.instance.tuples_per_relation = 6;
  config.cq.num_atoms = 2;
  config.cq.num_variables = 2;
  config.cq.value_pool = 2;
  RunEquivalenceRounds(config, /*seed=*/0x5EED, /*rounds=*/60);
}

}  // namespace
}  // namespace relcomp
