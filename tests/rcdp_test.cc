#include <gtest/gtest.h>

#include "completeness/brute_force.h"
#include "completeness/rcdp.h"
#include "constraints/integrity_constraints.h"
#include "eval/query_eval.h"
#include "query/parser.h"
#include "workload/crm_scenario.h"
#include "workload/generators.h"

namespace relcomp {
namespace {

// ---------------------------------------------------------------------------
// The paper's worked examples (Examples 1.1, 2.2, 3.1).

class CrmRcdpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto scenario = CrmScenario::Make();
    ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
    crm_ = std::make_unique<CrmScenario>(std::move(*scenario));
  }
  std::unique_ptr<CrmScenario> crm_;
};

TEST_F(CrmRcdpTest, Q1CompleteOnceAllMasterCustomersAreSupported) {
  // Example 2.2: with φ0, D is complete for Q1 provided the answer
  // covers all 908-area master customers. The generated D supports only
  // some customers, so initially Q1 is incomplete; the chase closes it.
  auto q1 = crm_->Q1();
  ASSERT_TRUE(q1.ok());
  auto phi0 = crm_->Phi0();
  ASSERT_TRUE(phi0.ok());
  ConstraintSet v;
  v.Add(*phi0);

  auto before =
      DecideRcdp(*q1, crm_->db(), crm_->master(), v);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_FALSE(before->complete);
  ASSERT_TRUE(before->counterexample_delta.has_value());
  ASSERT_TRUE(before->new_answer.has_value());

  auto completed =
      ChaseToCompleteness(*q1, crm_->db(), crm_->master(), v, 32);
  ASSERT_TRUE(completed.ok()) << completed.status().ToString();
  ASSERT_EQ(completed->verdict, Verdict::kComplete) << completed->ToString();
  auto after = DecideRcdp(*q1, completed->db, crm_->master(), v);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->complete);
  // φ0 bounds only the cid attribute, so partially closed extensions
  // may pair any master customer with area code 908 — the complete
  // answer covers all domestic master customers, not just those whose
  // master record says 908. (Bounding (cid, ac) jointly would shrink
  // this to 2; see the master_data_design example.)
  auto answer = Evaluate(*q1, completed->db);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->size(), crm_->options().num_domestic);
}

TEST_F(CrmRcdpTest, Q2IncompleteWithoutConstraints) {
  // Q2 (customers of e0) over unconstrained Supt: always incomplete.
  auto q2 = crm_->Q2();
  ASSERT_TRUE(q2.ok());
  ConstraintSet empty;
  auto result = DecideRcdp(*q2, crm_->db(), crm_->master(), empty);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->complete);
}

TEST_F(CrmRcdpTest, Phi1MakesQ2CompleteAtTheKBound) {
  // Example 3.1 / D1: when e0 already supports k distinct customers,
  // the at-most-k constraint blocks further additions — complete.
  auto q2 = crm_->Q2();
  ASSERT_TRUE(q2.ok());
  const size_t k = 2;  // the generator gives e0 exactly 2 customers
  auto phi1 = crm_->Phi1(k);
  ASSERT_TRUE(phi1.ok());
  ConstraintSet v;
  v.Add(*phi1);
  auto answer = Evaluate(*q2, crm_->db());
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->size(), k);
  auto result = DecideRcdp(*q2, crm_->db(), crm_->master(), v);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->complete);

  // With a looser bound (k+1) the same database is incomplete again.
  auto phi1_loose = crm_->Phi1(k + 1);
  ASSERT_TRUE(phi1_loose.ok());
  ConstraintSet v_loose;
  v_loose.Add(*phi1_loose);
  auto loose = DecideRcdp(*q2, crm_->db(), crm_->master(), v_loose);
  ASSERT_TRUE(loose.ok());
  EXPECT_FALSE(loose->complete);
}

TEST_F(CrmRcdpTest, FdMakesQ2CompleteWhenNonempty) {
  // Example 3.1 / D2: under the FD eid → dept, cid (compiled to CCs),
  // a nonempty answer for e0 pins every Supt tuple of e0 — complete.
  auto q2 = crm_->Q2();
  ASSERT_TRUE(q2.ok());
  auto sigma2 = crm_->FdSigma2();
  ASSERT_TRUE(sigma2.ok());

  // The generated D violates the FD only if e0 supports two customers;
  // build a custom D with exactly one Supt tuple for e0.
  Database db(crm_->db_schema());
  ASSERT_TRUE(
      db.Insert("Supt", Tuple({Value::Str("e0"), Value::Str("d0"),
                               Value::Str("c0")}))
          .ok());
  auto complete = DecideRcdp(*q2, db, crm_->master(), *sigma2);
  ASSERT_TRUE(complete.ok()) << complete.status().ToString();
  EXPECT_TRUE(complete->complete);

  // With an empty answer the FD gives no protection (the paper's D2).
  Database empty_db(crm_->db_schema());
  auto incomplete = DecideRcdp(*q2, empty_db, crm_->master(), *sigma2);
  ASSERT_TRUE(incomplete.ok());
  EXPECT_FALSE(incomplete->complete);
}

TEST_F(CrmRcdpTest, Q3CqIncompleteUntilTransitiveClosure) {
  // Example 1.1 / Q3: Manage ⊇ Managem via IND; the CQ "direct
  // managers of e0" is complete only because e0's direct managers are
  // bounded... here the IND bounds Manage by Managem, so D = Managem
  // is complete for the CQ.
  auto q3 = crm_->Q3Cq();
  ASSERT_TRUE(q3.ok());
  auto inds = crm_->IndConstraints();
  ASSERT_TRUE(inds.ok());
  // Keep only the Manage ⊆ Managem IND.
  ConstraintSet v;
  v.Add(inds->constraints()[1]);
  auto result = DecideRcdp(*q3, crm_->db(), crm_->master(), v);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->complete);
}

TEST_F(CrmRcdpTest, UndecidableLanguagesAreRefused) {
  auto q3 = crm_->Q3Datalog();
  ASSERT_TRUE(q3.ok());
  ConstraintSet empty;
  auto fp_result = DecideRcdp(*q3, crm_->db(), crm_->master(), empty);
  EXPECT_EQ(fp_result.status().code(), StatusCode::kUnsupported);

  auto fo = ParseFoQuery("Q(x) := exists d, c. (Supt(x, d, c) & !Manage(x, x))");
  ASSERT_TRUE(fo.ok());
  auto fo_result = DecideRcdp(AnyQuery::Fo(*fo), crm_->db(), crm_->master(),
                              empty);
  EXPECT_EQ(fo_result.status().code(), StatusCode::kUnsupported);
}

TEST_F(CrmRcdpTest, RejectsNonPartiallyClosedInput) {
  auto q1 = crm_->Q1();
  ASSERT_TRUE(q1.ok());
  auto inds = crm_->IndConstraints();
  ASSERT_TRUE(inds.ok());
  Database db = crm_->db();
  // A supported customer that is not in DCust violates the IND.
  ASSERT_TRUE(db.Insert("Supt", Tuple({Value::Str("e0"), Value::Str("d0"),
                                       Value::Str("ghost")}))
                  .ok());
  auto result = DecideRcdp(*q1, db, crm_->master(), *inds);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Small hand-built cases exercising the characterizations directly.

class SmallRcdpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db_schema = std::make_shared<Schema>();
    ASSERT_TRUE(db_schema->AddRelation("R", 2).ok());
    db_schema_ = db_schema;
    auto master_schema = std::make_shared<Schema>();
    ASSERT_TRUE(master_schema->AddRelation("M", 1).ok());
    master_schema_ = master_schema;
    db_ = Database(db_schema_);
    master_ = Database(master_schema_);
  }

  std::shared_ptr<const Schema> db_schema_;
  std::shared_ptr<const Schema> master_schema_;
  Database db_;
  Database master_;
};

TEST_F(SmallRcdpTest, IndBoundedColumnYieldsCompleteness) {
  // V: π0(R) ⊆ M; M = {1}; D = {R(1, 5)}. Q(x) :- R(x, y): the first
  // column is exhausted... but y is free, so new tuples R(1, fresh)
  // still change Q(x, y). With Q(x) alone, (1) is already the answer
  // and any addition keeps Q = {1} — complete.
  ASSERT_TRUE(master_.Insert("M", Tuple::Ints({1})).ok());
  ASSERT_TRUE(db_.Insert("R", Tuple::Ints({1, 5})).ok());
  ConstraintSet v;
  auto ind = MakeIndToMaster(*db_schema_, "R", {0}, "M", {0});
  ASSERT_TRUE(ind.ok());
  v.Add(*ind);

  auto q = ParseQuery("Q(x) :- R(x, y).", QueryLanguage::kCq);
  ASSERT_TRUE(q.ok());
  auto complete = DecideRcdp(*q, db_, master_, v);
  ASSERT_TRUE(complete.ok()) << complete.status().ToString();
  EXPECT_TRUE(complete->complete);

  auto q_xy = ParseQuery("Q(x, y) :- R(x, y).", QueryLanguage::kCq);
  ASSERT_TRUE(q_xy.ok());
  auto incomplete = DecideRcdp(*q_xy, db_, master_, v);
  ASSERT_TRUE(incomplete.ok());
  EXPECT_FALSE(incomplete->complete);
}

TEST_F(SmallRcdpTest, EmptyAnswerIsCompleteOnlyIfBlocked) {
  // Q(x) :- R(x, x); D = ∅. With no constraints, adding R(a, a) changes
  // the answer — incomplete. With π0(R) ⊆ M and empty M, nothing can
  // ever be added — complete.
  auto q = ParseQuery("Q(x) :- R(x, x).", QueryLanguage::kCq);
  ASSERT_TRUE(q.ok());
  ConstraintSet none;
  auto incomplete = DecideRcdp(*q, db_, master_, none);
  ASSERT_TRUE(incomplete.ok());
  EXPECT_FALSE(incomplete->complete);

  ConstraintSet v;
  auto ind = MakeIndToMaster(*db_schema_, "R", {0}, "M", {0});
  ASSERT_TRUE(ind.ok());
  v.Add(*ind);
  auto complete = DecideRcdp(*q, db_, master_, v);
  ASSERT_TRUE(complete.ok());
  EXPECT_TRUE(complete->complete);
}

TEST_F(SmallRcdpTest, UnsatisfiableQueryIsTriviallyComplete) {
  auto q = ParseQuery("Q(x) :- R(x, y), x = 1, x = 2.", QueryLanguage::kCq);
  ASSERT_TRUE(q.ok());
  ConstraintSet none;
  auto result = DecideRcdp(*q, db_, master_, none);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->complete);
}

TEST_F(SmallRcdpTest, BooleanQueryCompleteOnceTrue) {
  auto q = ParseQuery("Q() :- R(x, y).", QueryLanguage::kCq);
  ASSERT_TRUE(q.ok());
  ConstraintSet none;
  auto incomplete = DecideRcdp(*q, db_, master_, none);
  ASSERT_TRUE(incomplete.ok());
  EXPECT_FALSE(incomplete->complete);  // ∅ can still flip to true
  ASSERT_TRUE(db_.Insert("R", Tuple::Ints({1, 2})).ok());
  auto complete = DecideRcdp(*q, db_, master_, none);
  ASSERT_TRUE(complete.ok());
  EXPECT_TRUE(complete->complete);  // monotone Boolean query, already true
}

TEST_F(SmallRcdpTest, UcqAndPositiveDispatch) {
  ASSERT_TRUE(master_.Insert("M", Tuple::Ints({1})).ok());
  ConstraintSet v;
  auto ind = MakeIndToMaster(*db_schema_, "R", {0}, "M", {0});
  ASSERT_TRUE(ind.ok());
  v.Add(*ind);
  ASSERT_TRUE(db_.Insert("R", Tuple::Ints({1, 1})).ok());

  auto ucq = ParseQuery("Q(x) :- R(x, y).\nQ(x) :- R(y, x), x = 1.",
                        QueryLanguage::kUcq);
  ASSERT_TRUE(ucq.ok());
  auto r1 = DecideRcdp(*ucq, db_, master_, v);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_TRUE(r1->complete);

  auto positive = ParseQuery("Q(x) := exists y. (R(x, y) | R(y, x) & x = 1)",
                             QueryLanguage::kPositive);
  ASSERT_TRUE(positive.ok());
  auto r2 = DecideRcdp(*positive, db_, master_, v);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_TRUE(r2->complete);
}

TEST_F(SmallRcdpTest, CounterexampleIsGenuine) {
  // Whenever the decider says incomplete, the returned Δ must satisfy V
  // and change the answer — verified by direct evaluation.
  ASSERT_TRUE(master_.Insert("M", Tuple::Ints({1})).ok());
  ASSERT_TRUE(master_.Insert("M", Tuple::Ints({2})).ok());
  ASSERT_TRUE(db_.Insert("R", Tuple::Ints({1, 1})).ok());
  ConstraintSet v;
  auto ind = MakeIndToMaster(*db_schema_, "R", {0}, "M", {0});
  ASSERT_TRUE(ind.ok());
  v.Add(*ind);
  auto q = ParseQuery("Q(x) :- R(x, y).", QueryLanguage::kCq);
  ASSERT_TRUE(q.ok());
  auto result = DecideRcdp(*q, db_, master_, v);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->complete);
  Database extended = db_;
  extended.UnionWith(*result->counterexample_delta);
  auto closed = Satisfies(v, extended, master_);
  ASSERT_TRUE(closed.ok());
  EXPECT_TRUE(*closed);
  auto before = Evaluate(*q, db_);
  auto after = Evaluate(*q, extended);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_NE(*before, *after);
  EXPECT_TRUE(after->Contains(*result->new_answer));
  EXPECT_FALSE(before->Contains(*result->new_answer));
}

// ---------------------------------------------------------------------------
// Property sweep: the decider agrees with the definition-chasing brute
// force on random small instances with random IND constraints.

/// True when the decider's counterexample is small enough that the
/// bounded brute force must find one too (same tuple budget; fresh
/// values transfer by genericity).
bool result_fits_bound(const RcdpResult& result,
                       const BruteForceOptions& bf) {
  return result.counterexample_delta.has_value() &&
         result.counterexample_delta->TotalTuples() <= bf.max_delta_tuples;
}

class RcdpPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RcdpPropertyTest, AgreesWithBruteForce) {
  Rng rng(GetParam());
  RandomInstanceOptions db_options;
  db_options.num_relations = 1;
  db_options.min_arity = 2;
  db_options.max_arity = 2;
  db_options.value_pool = 2;
  db_options.tuples_per_relation = 2;
  auto db_schema = RandomSchema(db_options, &rng);
  auto master_schema = std::make_shared<Schema>();
  ASSERT_TRUE(master_schema->AddRelation("M", 1).ok());

  RandomCqOptions cq_options;
  cq_options.num_atoms = 2;
  cq_options.num_variables = 2;
  cq_options.num_head_terms = 1;
  cq_options.value_pool = 2;

  int checked = 0;
  for (int attempt = 0; attempt < 40 && checked < 6; ++attempt) {
    Database db = RandomDatabase(db_schema, db_options, &rng);
    Database master(master_schema);
    std::uniform_int_distribution<int64_t> value(0, 2);
    for (int i = 0; i < 2; ++i) {
      master.InsertUnchecked("M", Tuple({Value::Int(value(rng))}));
    }
    auto constraints = RandomIndConstraints(*db_schema, *master_schema,
                                            1, &rng);
    ASSERT_TRUE(constraints.ok());
    ConjunctiveQuery cq = RandomCq(*db_schema, cq_options, &rng);
    if (!cq.Validate(*db_schema).ok()) continue;
    AnyQuery q = AnyQuery::Cq(cq);
    auto closed = Satisfies(*constraints, db, master);
    ASSERT_TRUE(closed.ok());
    if (!*closed) continue;

    auto decided = DecideRcdp(q, db, master, *constraints);
    ASSERT_TRUE(decided.ok()) << decided.status().ToString();

    BruteForceOptions bf;
    bf.extra_fresh = 2;
    bf.max_delta_tuples = 2;
    auto brute = BruteForceRcdp(q, db, master, *constraints, bf);
    ASSERT_TRUE(brute.ok()) << brute.status().ToString();

    // Brute force is bounded: "incomplete" verdicts are always sound,
    // so decider-complete ⇒ brute-complete. The decider is exact, so
    // brute-incomplete ⇒ decider-incomplete (same check), and
    // decider-incomplete ⇒ its Δ is genuine (within the brute bound the
    // two must then agree whenever Δ fits the bound).
    if (decided->complete) {
      EXPECT_TRUE(brute->complete)
          << cq.ToString() << "\n" << db.ToString();
    } else if (result_fits_bound(*decided, bf)) {
      EXPECT_FALSE(brute->complete)
          << cq.ToString() << "\n" << db.ToString();
    }
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RcdpPropertyTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace relcomp
