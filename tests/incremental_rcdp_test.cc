// The incremental re-certification layer: delta batches on the id
// plane, content fingerprints, the constraint-to-relation dependency
// graph, certificate (de)serialization against a hostile corpus, and
// the headline property — RecertifyRcdp is bit-for-bit CertifyRcdp on
// the post-update instance, across randomized insert/delete sweeps on
// both D and Dm, under budgets, and at any thread count.

#include "completeness/incremental.h"

#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "completeness/rcdp.h"
#include "constraints/constraint_check.h"
#include "relational/delta_batch.h"
#include "spec/spec_parser.h"
#include "util/execution_control.h"
#include "util/str.h"
#include "workload/crm_scenario.h"

namespace relcomp {
namespace {

CompletenessSpec MustParse(const std::string& text) {
  auto spec = ParseCompletenessSpec(text);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(*spec);
}

/// The service's canonical evidence string — the bit-for-bit
/// comparison key between certification paths.
std::string Evidence(const RcdpResult& r) {
  return StrCat(VerdictToString(r.verdict), "|",
                r.counterexample_delta.has_value()
                    ? r.counterexample_delta->ToString()
                    : std::string("<none>"),
                "|",
                r.new_answer.has_value() ? r.new_answer->ToString()
                                         : std::string("<none>"));
}

DeltaOp Op(bool insert, const std::string& relation,
           std::vector<Value> values) {
  return DeltaOp{insert, relation, Tuple(std::move(values))};
}

// ---------------------------------------------------------------------------
// DeltaBatch: validate-then-apply semantics and the dirtiness report.

constexpr char kTwoRelationSpec[] = R"spec(
relation R(a, b)
relation T(a, b)
master relation M(m)
fact R(0, 0)
fact T(1, 0)
master fact M(0)
master fact M(1)
master fact M(2)
constraint c0(x) :- R(x, y) |= M[0]
query ucq Q(x) :- R(x, y). Q(x) :- T(x, y)
)spec";

TEST(DeltaBatchTest, AppliesEffectiveOpsAndCountsNoops) {
  CompletenessSpec spec = MustParse(kTwoRelationSpec);
  DeltaBatch batch;
  batch.db_ops.push_back(Op(true, "R", {Value::Int(1), Value::Int(1)}));
  batch.db_ops.push_back(Op(true, "R", {Value::Int(0), Value::Int(0)}));
  batch.db_ops.push_back(Op(false, "T", {Value::Int(1), Value::Int(0)}));
  batch.db_ops.push_back(Op(false, "T", {Value::Int(9), Value::Int(9)}));
  batch.master_ops.push_back(Op(false, "M", {Value::Int(2)}));

  auto report = ApplyDeltaBatch(batch, &spec.db, &spec.master);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->applied_inserts, 1u);
  EXPECT_EQ(report->applied_deletes, 2u);
  EXPECT_EQ(report->noops, 2u);
  EXPECT_EQ(report->db_inserted, std::set<std::string>{"R"});
  EXPECT_EQ(report->db_deleted, std::set<std::string>{"T"});
  EXPECT_TRUE(report->master_inserted.empty());
  EXPECT_EQ(report->master_deleted, std::set<std::string>{"M"});
  EXPECT_TRUE(report->db_changed("R"));
  EXPECT_TRUE(report->db_changed("T"));
  EXPECT_FALSE(report->db_changed("M"));
  EXPECT_TRUE(report->master_changed("M"));
  EXPECT_EQ(spec.db.Get("R").size(), 2u);
  EXPECT_EQ(spec.db.Get("T").size(), 0u);
  EXPECT_EQ(spec.master.Get("M").size(), 2u);
}

TEST(DeltaBatchTest, BadOpAppliesNothing) {
  CompletenessSpec spec = MustParse(kTwoRelationSpec);
  DeltaBatch batch;
  batch.db_ops.push_back(Op(true, "R", {Value::Int(3), Value::Int(3)}));
  batch.db_ops.push_back(Op(true, "NoSuch", {Value::Int(0)}));
  auto report = ApplyDeltaBatch(batch, &spec.db, &spec.master);
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound)
      << report.status().ToString();
  // Validate-then-apply: the earlier good op must not have landed.
  EXPECT_EQ(spec.db.Get("R").size(), 1u);

  DeltaBatch arity;
  arity.db_ops.push_back(Op(true, "R", {Value::Int(0)}));
  EXPECT_EQ(ApplyDeltaBatch(arity, &spec.db, &spec.master).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DeltaBatchTest, ReportsDirtiedIndexes) {
  CompletenessSpec spec = MustParse(kTwoRelationSpec);
  // Materialize a per-column hash index on R.a and leave T untouched.
  const Relation& r = spec.db.Get("R");
  (void)r.Probe(0, Value::Int(0));
  ASSERT_EQ(r.BuiltIndexColumnSets(),
            (std::vector<std::vector<size_t>>{{0}}));

  DeltaBatch batch;
  batch.db_ops.push_back(Op(true, "R", {Value::Int(2), Value::Int(2)}));
  auto report = ApplyDeltaBatch(batch, &spec.db, &spec.master);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->dirtied_indexes.size(), 1u);
  EXPECT_EQ(report->dirtied_indexes[0].side, "db");
  EXPECT_EQ(report->dirtied_indexes[0].relation, "R");
  EXPECT_EQ(report->dirtied_indexes[0].columns, std::vector<size_t>{0});
  // The mutation dropped the lazy index; it rebuilds on the next probe.
  EXPECT_TRUE(spec.db.Get("R").BuiltIndexColumnSets().empty());
}

TEST(DeltaBatchTest, OverlayStagingRejectsDeletes) {
  CompletenessSpec spec = MustParse(kTwoRelationSpec);
  DatabaseOverlay overlay(&spec.db);
  DeltaBatch inserts;
  inserts.db_ops.push_back(Op(true, "R", {Value::Int(2), Value::Int(2)}));
  ASSERT_TRUE(StageInsertsOnOverlay(inserts, &overlay).ok());

  DeltaBatch deletes;
  deletes.db_ops.push_back(Op(false, "R", {Value::Int(0), Value::Int(0)}));
  EXPECT_EQ(StageInsertsOnOverlay(deletes, &overlay).code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Content fingerprints.

TEST(FingerprintTest, DatabaseFingerprintIsContentBased) {
  CompletenessSpec a = MustParse(kTwoRelationSpec);
  CompletenessSpec b = MustParse(kTwoRelationSpec);
  EXPECT_EQ(FingerprintDatabase(a.db), FingerprintDatabase(b.db));

  // Insertion order does not matter (XOR fold is commutative)...
  ASSERT_TRUE(b.db.Insert("R", Tuple({Value::Int(1), Value::Int(1)})).ok());
  ASSERT_TRUE(b.db.Insert("R", Tuple({Value::Int(2), Value::Int(2)})).ok());
  ASSERT_TRUE(a.db.Insert("R", Tuple({Value::Int(2), Value::Int(2)})).ok());
  ASSERT_TRUE(a.db.Insert("R", Tuple({Value::Int(1), Value::Int(1)})).ok());
  EXPECT_EQ(FingerprintDatabase(a.db), FingerprintDatabase(b.db));

  // ...but a single tuple swap flips the fingerprint, even when the
  // tuple count is unchanged (the count-based checkpoint fingerprint
  // is blind to exactly this).
  ASSERT_TRUE(a.db.Erase("R", Tuple({Value::Int(1), Value::Int(1)})));
  ASSERT_TRUE(a.db.Insert("R", Tuple({Value::Int(3), Value::Int(1)})).ok());
  EXPECT_NE(FingerprintDatabase(a.db), FingerprintDatabase(b.db));

  // The same tuple under different relation names is different content.
  EXPECT_NE(FingerprintTuple("R", Tuple({Value::Int(0)})),
            FingerprintTuple("T", Tuple({Value::Int(0)})));
  // Int 0 and string "0" are different content.
  EXPECT_NE(FingerprintTuple("R", Tuple({Value::Int(0)})),
            FingerprintTuple("R", Tuple({Value::Str("0")})));
}

TEST(FingerprintTest, InstanceFingerprintCoversEveryComponent) {
  CompletenessSpec base = MustParse(kTwoRelationSpec);
  const uint64_t fp = FingerprintRcdpInstance(
      base.queries[0], base.db, base.master, base.constraints);

  CompletenessSpec db_changed = MustParse(kTwoRelationSpec);
  ASSERT_TRUE(
      db_changed.db.Insert("T", Tuple({Value::Int(2), Value::Int(2)})).ok());
  EXPECT_NE(fp, FingerprintRcdpInstance(db_changed.queries[0], db_changed.db,
                                        db_changed.master,
                                        db_changed.constraints));

  CompletenessSpec dm_changed = MustParse(kTwoRelationSpec);
  ASSERT_TRUE(dm_changed.master.Insert("M", Tuple({Value::Int(3)})).ok());
  EXPECT_NE(fp, FingerprintRcdpInstance(dm_changed.queries[0], dm_changed.db,
                                        dm_changed.master,
                                        dm_changed.constraints));

  // A different query over the same instance.
  std::string other = kTwoRelationSpec;
  other += "query cq P(x) :- R(x, y)\n";
  CompletenessSpec two = MustParse(other);
  EXPECT_NE(fp, FingerprintRcdpInstance(two.queries[1], two.db, two.master,
                                        two.constraints));
}

TEST(FingerprintTest, OptionsFingerprintExcludesRepresentationToggles) {
  RcdpOptions base;
  const uint64_t fp = FingerprintRcdpOptions(base);

  // Thread count and representation toggles do not change verdicts,
  // so certificates transfer across them.
  RcdpOptions threads = base;
  threads.num_threads = 8;
  EXPECT_EQ(fp, FingerprintRcdpOptions(threads));
  RcdpOptions no_indexes = base;
  no_indexes.use_indexes = false;
  no_indexes.use_composite_indexes = false;
  no_indexes.use_arena = false;
  EXPECT_EQ(fp, FingerprintRcdpOptions(no_indexes));

  // Semantic knobs do.
  RcdpOptions pruned = base;
  pruned.prune = !pruned.prune;
  EXPECT_NE(fp, FingerprintRcdpOptions(pruned));
  RcdpOptions capped = base;
  capped.max_bindings = 7;
  EXPECT_NE(fp, FingerprintRcdpOptions(capped));
}

// ---------------------------------------------------------------------------
// Dependency graph.

TEST(DependencyGraphTest, ReadSetsPerDisjunctAndConstraint) {
  CompletenessSpec spec = MustParse(kTwoRelationSpec);
  auto graph = RcdpDependencyGraph::Build(spec.queries[0], spec.constraints,
                                          4096);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  ASSERT_EQ(graph->disjunct_relations.size(), 2u);
  EXPECT_EQ(graph->disjunct_relations[0], std::vector<std::string>{"R"});
  EXPECT_EQ(graph->disjunct_relations[1], std::vector<std::string>{"T"});
  ASSERT_EQ(graph->constraint_deps.size(), 1u);
  EXPECT_EQ(graph->constraint_deps[0].body_relations,
            std::vector<std::string>{"R"});
  EXPECT_FALSE(graph->constraint_deps[0].empty_target);
  EXPECT_EQ(graph->constraint_deps[0].master_relation, "M");
}

TEST(DependencyGraphTest, EmptyTargetConstraint) {
  CompletenessSpec spec = MustParse(StrCat(
      kTwoRelationSpec,
      "constraint amo() :- R(x, y1), R(x, y2), y1 != y2 |= empty\n"));
  auto graph = RcdpDependencyGraph::Build(spec.queries[0], spec.constraints,
                                          4096);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  ASSERT_EQ(graph->constraint_deps.size(), 2u);
  EXPECT_TRUE(graph->constraint_deps[1].empty_target);
  EXPECT_EQ(graph->constraint_deps[1].body_relations,
            std::vector<std::string>{"R"});
}

// ---------------------------------------------------------------------------
// Certificate codec.

TEST(CertificateTest, RoundTripsEveryVerdictShape) {
  CompletenessSpec spec = MustParse(kTwoRelationSpec);
  const AnyQuery& q = spec.queries[0];

  // kIncomplete (the seeded instance is incomplete for Q).
  auto incomplete = CertifyRcdp(q, spec.db, spec.master, spec.constraints);
  ASSERT_TRUE(incomplete.ok()) << incomplete.status().ToString();
  ASSERT_EQ(incomplete->result.verdict, Verdict::kIncomplete);
  auto round =
      RcdpCertificate::Deserialize(incomplete->certificate.Serialize());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_TRUE(*round == incomplete->certificate);

  // kUnknown under a one-step budget carries the checkpoint.
  ExecutionBudget budget;
  budget.set_max_steps(1);
  RcdpOptions budgeted;
  budgeted.budget = &budget;
  auto unknown =
      CertifyRcdp(q, spec.db, spec.master, spec.constraints, budgeted);
  ASSERT_TRUE(unknown.ok()) << unknown.status().ToString();
  ASSERT_EQ(unknown->result.verdict, Verdict::kUnknown);
  ASSERT_TRUE(unknown->certificate.checkpoint.has_value());
  round = RcdpCertificate::Deserialize(unknown->certificate.Serialize());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_TRUE(*round == unknown->certificate);

  // kComplete: chase a convergent instance closed first (both S
  // columns IND-bounded, so the chase closes the finite M × M space).
  CompletenessSpec chaseable = MustParse(R"spec(
relation S(a, b)
master relation M(m)
fact S(0, 1)
master fact M(0)
master fact M(1)
constraint c0(x) :- S(x, y) |= M[0]
constraint c1(y) :- S(x, y) |= M[0]
query cq Q(x, y) :- S(x, y)
)spec");
  auto chased = ChaseToCompleteness(chaseable.queries[0], chaseable.db,
                                    chaseable.master, chaseable.constraints,
                                    64);
  ASSERT_TRUE(chased.ok()) << chased.status().ToString();
  ASSERT_EQ(chased->verdict, Verdict::kComplete);
  auto complete = CertifyRcdp(chaseable.queries[0], chased->db,
                              chaseable.master, chaseable.constraints);
  ASSERT_TRUE(complete.ok()) << complete.status().ToString();
  ASSERT_EQ(complete->result.verdict, Verdict::kComplete);
  round = RcdpCertificate::Deserialize(complete->certificate.Serialize());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_TRUE(*round == complete->certificate);

  // String values with spaces and quotes survive the length-prefixed
  // value codec.
  RcdpCertificate cert = incomplete->certificate;
  cert.cex_delta.emplace_back(
      "R", Tuple({Value::Str("a b:c 7:"), Value::Str("")}));
  round = RcdpCertificate::Deserialize(cert.Serialize());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_TRUE(*round == cert);
}

TEST(CertificateTest, HostileCorpusNeverCrashes) {
  CompletenessSpec spec = MustParse(kTwoRelationSpec);
  auto certified =
      CertifyRcdp(spec.queries[0], spec.db, spec.master, spec.constraints);
  ASSERT_TRUE(certified.ok());
  const std::string valid = certified->certificate.Serialize();

  // Every strict prefix of a valid certificate is either rejected or —
  // when truncation happens to land on a parseable boundary (e.g. mid
  // trailing integer) — parses to something that re-serializes to the
  // exact prefix. Nothing in between, and never a crash.
  for (size_t len = 0; len < valid.size(); ++len) {
    const std::string prefix = valid.substr(0, len);
    auto r = RcdpCertificate::Deserialize(prefix);
    if (r.ok()) {
      EXPECT_EQ(r->Serialize(), prefix) << "prefix length " << len;
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
          << "prefix length " << len;
    }
  }
  // Trailing garbage is malformed too.
  EXPECT_EQ(RcdpCertificate::Deserialize(StrCat(valid, " x")).status().code(),
            StatusCode::kInvalidArgument);

  const char* corpus[] = {
      "",
      "relcomp-cert/2 0 0 0 0 1 C",
      "not-a-cert",
      "relcomp-cert/1 ",
      "relcomp-cert/1 1 2 3 4 1 X",
      "relcomp-cert/1 99999999999999999999999 0 0 0 1 C",  // u64 overflow
      "relcomp-cert/1 1 2 3 4 0 I 0 A 1 i0 - 0",   // cex >= num_disjuncts
      "relcomp-cert/1 1 2 3 4 1 I 0 - 1 1:R 9 i0",  // arity 9, one value
      "relcomp-cert/1 1 2 3 4 1 I 0 A 1 s5:ab - 0",  // string overruns
      "relcomp-cert/1 1 2 3 4 1 U 5:junk!",
      "relcomp-cert/1 1 2 3 4 1 U 999999999:x",
      "relcomp-cert/1 1 2 3 4 1 I 0 A 1 i- - 0",
      "relcomp-cert/1 1 2 3 4 1048577 C",  // disjunct cap
  };
  for (const char* text : corpus) {
    auto r = RcdpCertificate::Deserialize(text);
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
        << "corpus entry: " << text;
  }
}

// ---------------------------------------------------------------------------
// The headline property: incremental == from-scratch, bit for bit.

/// One randomized update sweep: starting from the seeded two-relation
/// UCQ instance, apply random insert/delete batches to D and Dm,
/// chaining the certificate through RecertifyRcdp, and compare every
/// step against a from-scratch CertifyRcdp of the same post-update
/// instance — verdicts, evidence, counterexample disjunct, and the
/// whole serialized certificate must be identical. Closure-breaking
/// batches must fail identically on both paths (and are then rolled
/// back to keep the sweep going).
void RunRandomSweep(uint32_t seed, size_t steps, const RcdpOptions& options) {
  std::mt19937 rng(seed);
  CompletenessSpec spec = MustParse(kTwoRelationSpec);
  const AnyQuery& q = spec.queries[0];

  auto certified = CertifyRcdp(q, spec.db, spec.master, spec.constraints,
                               options);
  ASSERT_TRUE(certified.ok()) << certified.status().ToString();
  RcdpCertificate cert = certified->certificate;

  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> val(0, 3);
  std::uniform_int_distribution<int> ops(1, 3);
  std::uniform_int_distribution<int> target(0, 3);
  size_t skipped_not_closed = 0;

  for (size_t step = 0; step < steps; ++step) {
    DeltaBatch batch;
    const int n_ops = ops(rng);
    for (int i = 0; i < n_ops; ++i) {
      switch (target(rng)) {
        case 0:
          batch.db_ops.push_back(Op(coin(rng) != 0, "R",
                                    {Value::Int(val(rng)),
                                     Value::Int(val(rng))}));
          break;
        case 1:
          batch.db_ops.push_back(Op(coin(rng) != 0, "T",
                                    {Value::Int(val(rng)),
                                     Value::Int(val(rng))}));
          break;
        default:
          batch.master_ops.push_back(
              Op(coin(rng) != 0, "M", {Value::Int(val(rng))}));
          break;
      }
    }

    Database pre_db = spec.db;
    Database pre_master = spec.master;
    auto report = ApplyDeltaBatch(batch, &spec.db, &spec.master);
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    auto scratch =
        CertifyRcdp(q, spec.db, spec.master, spec.constraints, options);
    auto inc = RecertifyRcdp(q, spec.db, spec.master, spec.constraints,
                             cert, *report, options);
    if (!scratch.ok()) {
      // Typically "not partially closed": the incremental path must
      // fail the identical way.
      EXPECT_EQ(inc.status().code(), scratch.status().code())
          << "step " << step;
      EXPECT_EQ(inc.status().ToString(), scratch.status().ToString())
          << "step " << step;
      spec.db = std::move(pre_db);
      spec.master = std::move(pre_master);
      ++skipped_not_closed;
      continue;
    }
    ASSERT_TRUE(inc.ok()) << "step " << step << ": "
                          << inc.status().ToString();
    EXPECT_EQ(inc->result.verdict, scratch->result.verdict)
        << "step " << step;
    EXPECT_EQ(Evidence(inc->result), Evidence(scratch->result))
        << "step " << step;
    EXPECT_EQ(inc->result.counterexample_disjunct,
              scratch->result.counterexample_disjunct)
        << "step " << step;
    EXPECT_TRUE(inc->certificate == scratch->certificate)
        << "step " << step << "\nincremental:  "
        << inc->certificate.ToString() << "\nfrom scratch: "
        << scratch->certificate.ToString();
    cert = inc->certificate;
  }
  // The sweep's delta mix must actually exercise the closure-error
  // path; if it never does, the generator has gone stale.
  EXPECT_GT(skipped_not_closed, 0u) << "seed " << seed;
}

TEST(IncrementalRcdpTest, RandomizedUpdateSweepMatchesFromScratch) {
  RunRandomSweep(/*seed=*/20260809, /*steps=*/40, RcdpOptions());
  RunRandomSweep(/*seed=*/7, /*steps=*/40, RcdpOptions());
}

TEST(IncrementalRcdpTest, RandomizedSweepMatchesAcrossThreadCounts) {
  for (size_t threads : {2u, 8u}) {
    RcdpOptions options;
    options.num_threads = threads;
    RunRandomSweep(/*seed=*/20260809, /*steps=*/20, options);
  }
}

TEST(IncrementalRcdpTest, CertificateTransfersAcrossThreadCounts) {
  // A certificate minted serially re-certifies at any thread count
  // (num_threads is excluded from the options fingerprint), and the
  // result matches the serial from-scratch one bit for bit.
  CompletenessSpec spec = MustParse(kTwoRelationSpec);
  const AnyQuery& q = spec.queries[0];
  auto serial = CertifyRcdp(q, spec.db, spec.master, spec.constraints);
  ASSERT_TRUE(serial.ok());

  DeltaBatch batch;
  batch.db_ops.push_back(Op(true, "R", {Value::Int(1), Value::Int(2)}));
  auto report = ApplyDeltaBatch(batch, &spec.db, &spec.master);
  ASSERT_TRUE(report.ok());
  auto scratch = CertifyRcdp(q, spec.db, spec.master, spec.constraints);
  ASSERT_TRUE(scratch.ok());

  for (size_t threads : {1u, 2u, 8u}) {
    RcdpOptions options;
    options.num_threads = threads;
    auto inc = RecertifyRcdp(q, spec.db, spec.master, spec.constraints,
                             serial->certificate, *report, options);
    ASSERT_TRUE(inc.ok()) << threads << " threads: "
                          << inc.status().ToString();
    EXPECT_TRUE(inc->certificate == scratch->certificate)
        << threads << " threads";
    EXPECT_EQ(Evidence(inc->result), Evidence(scratch->result))
        << threads << " threads";
  }
}

TEST(IncrementalRcdpTest, CleanSliceDeltaServesWithZeroSearch) {
  // CRM at the bench's largest scale: a Manage insert over existing
  // constants touches no relation Q1 or φ0 reads and leaves the active
  // domain unchanged, so re-certification does zero search work.
  CrmOptions options;
  options.num_domestic = 16;
  options.num_international = 8;
  options.num_employees = 2;
  options.support_per_employee = 2;
  auto crm = CrmScenario::Make(options);
  ASSERT_TRUE(crm.ok());
  ConstraintSet v;
  auto phi0 = crm->Phi0();
  ASSERT_TRUE(phi0.ok());
  v.Add(*phi0);
  auto q1 = crm->Q1();
  ASSERT_TRUE(q1.ok());

  auto base = CertifyRcdp(*q1, crm->db(), crm->master(), v);
  ASSERT_TRUE(base.ok());
  ASSERT_EQ(base->result.verdict, Verdict::kIncomplete);

  DeltaBatch batch;
  batch.db_ops.push_back(
      Op(true, "Manage", {Value::Str("e0"), Value::Str("e1")}));
  Database post = crm->db();
  auto report = ApplyDeltaBatch(batch, &post, nullptr);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  auto inc = RecertifyRcdp(*q1, post, crm->master(), v, base->certificate,
                           *report);
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();
  EXPECT_EQ(inc->result.stats.bindings_tried, 0u);
  EXPECT_EQ(inc->result.stats.work_units, 0u);

  auto scratch = CertifyRcdp(*q1, post, crm->master(), v);
  ASSERT_TRUE(scratch.ok());
  EXPECT_TRUE(inc->certificate == scratch->certificate);
  EXPECT_EQ(Evidence(inc->result), Evidence(scratch->result));
}

TEST(IncrementalRcdpTest, ContentIdenticalBatchReservesUnknown) {
  // A batch that cancels itself out re-serves even an interrupted
  // (kUnknown) certificate: the embedded checkpoint resumes and the
  // combined run equals the uninterrupted one.
  CompletenessSpec spec = MustParse(kTwoRelationSpec);
  const AnyQuery& q = spec.queries[0];
  ExecutionBudget budget;
  budget.set_max_steps(2);
  RcdpOptions budgeted;
  budgeted.budget = &budget;
  auto partial =
      CertifyRcdp(q, spec.db, spec.master, spec.constraints, budgeted);
  ASSERT_TRUE(partial.ok());
  ASSERT_EQ(partial->result.verdict, Verdict::kUnknown);

  DeltaBatch noop;
  noop.db_ops.push_back(Op(true, "R", {Value::Int(2), Value::Int(2)}));
  noop.db_ops.push_back(Op(false, "R", {Value::Int(2), Value::Int(2)}));
  auto report = ApplyDeltaBatch(noop, &spec.db, &spec.master);
  ASSERT_TRUE(report.ok());
  // Both ops were effective, so the report flags R — it is the content
  // fingerprint, not the report, that proves the batch self-cancelled.
  EXPECT_TRUE(report->changed_any());

  auto resumed = RecertifyRcdp(q, spec.db, spec.master, spec.constraints,
                               partial->certificate, *report);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  auto scratch = CertifyRcdp(q, spec.db, spec.master, spec.constraints);
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(resumed->result.verdict, scratch->result.verdict);
  EXPECT_EQ(Evidence(resumed->result), Evidence(scratch->result));
  EXPECT_TRUE(resumed->certificate == scratch->certificate);
}

TEST(IncrementalRcdpTest, BudgetedRecertifyNumbersLikePlainResume) {
  // Decision-point numbering contract under budgets: re-certifying an
  // interrupted certificate claims exactly the points a plain
  // DecideRcdp resume from its checkpoint claims, so the two stop at
  // the identical frontier.
  CompletenessSpec spec = MustParse(kTwoRelationSpec);
  const AnyQuery& q = spec.queries[0];
  ExecutionBudget first;
  first.set_max_steps(2);
  RcdpOptions opt1;
  opt1.budget = &first;
  auto partial = CertifyRcdp(q, spec.db, spec.master, spec.constraints,
                             opt1);
  ASSERT_TRUE(partial.ok());
  ASSERT_EQ(partial->result.verdict, Verdict::kUnknown);
  ASSERT_TRUE(partial->certificate.checkpoint.has_value());

  ExecutionBudget second;
  second.set_max_steps(3);
  RcdpOptions opt2;
  opt2.budget = &second;
  auto inc = RecertifyRcdp(q, spec.db, spec.master, spec.constraints,
                           partial->certificate, DeltaApplyReport(), opt2);
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();

  ExecutionBudget reference;
  reference.set_max_steps(3);
  RcdpOptions opt3;
  opt3.budget = &reference;
  opt3.resume = &*partial->certificate.checkpoint;
  auto plain = DecideRcdp(q, spec.db, spec.master, spec.constraints, opt3);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  EXPECT_EQ(inc->result.verdict, plain->verdict);
  EXPECT_EQ(Evidence(inc->result), Evidence(*plain));
  ASSERT_EQ(inc->result.checkpoint.has_value(),
            plain->checkpoint.has_value());
  if (inc->result.checkpoint.has_value()) {
    EXPECT_EQ(inc->result.checkpoint->disjunct,
              plain->checkpoint->disjunct);
    EXPECT_EQ(inc->result.checkpoint->rank, plain->checkpoint->rank);
  }

  // Chained to exhaustion-free completion, the anytime incremental run
  // lands bit-for-bit on the unbudgeted from-scratch verdict.
  RcdpCertificate cert = inc->certificate;
  RcdpResult final_result = inc->result;
  for (int round = 0; final_result.verdict == Verdict::kUnknown; ++round) {
    ASSERT_LT(round, 64) << "budgeted chain failed to converge";
    ExecutionBudget slice;
    // Checkpoints are rank-granular: a slice below one rank unit's cost
    // records no durable progress, so widen the slice each round (the
    // same stall-widening the DecisionService applies).
    slice.set_max_steps(3 + static_cast<size_t>(round));
    RcdpOptions opt;
    opt.budget = &slice;
    auto next = RecertifyRcdp(q, spec.db, spec.master, spec.constraints,
                              cert, DeltaApplyReport(), opt);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    cert = next->certificate;
    final_result = next->result;
  }
  auto uninterrupted =
      CertifyRcdp(q, spec.db, spec.master, spec.constraints);
  ASSERT_TRUE(uninterrupted.ok());
  EXPECT_EQ(final_result.verdict, uninterrupted->result.verdict);
  EXPECT_EQ(Evidence(final_result), Evidence(uninterrupted->result));
}

TEST(IncrementalRcdpTest, StaleOptionsOrWidthFallBackToFullCertify) {
  CompletenessSpec spec = MustParse(kTwoRelationSpec);
  const AnyQuery& q = spec.queries[0];
  auto base = CertifyRcdp(q, spec.db, spec.master, spec.constraints);
  ASSERT_TRUE(base.ok());

  // Different semantic options: the certificate does not transfer, but
  // re-certification still returns the right (fresh) answer.
  RcdpOptions no_prune;
  no_prune.prune = false;
  auto inc = RecertifyRcdp(q, spec.db, spec.master, spec.constraints,
                           base->certificate, DeltaApplyReport(), no_prune);
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();
  auto scratch =
      CertifyRcdp(q, spec.db, spec.master, spec.constraints, no_prune);
  ASSERT_TRUE(scratch.ok());
  EXPECT_TRUE(inc->certificate == scratch->certificate);

  // A corrupted disjunct count falls back likewise instead of trusting
  // a plan built for a different unfolding.
  RcdpCertificate wrong_width = base->certificate;
  wrong_width.num_disjuncts = 7;
  inc = RecertifyRcdp(q, spec.db, spec.master, spec.constraints,
                      wrong_width, DeltaApplyReport());
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();
  EXPECT_TRUE(inc->certificate == base->certificate);
}

}  // namespace
}  // namespace relcomp
