#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "relational/relation.h"
#include "relational/value.h"

namespace relcomp {
namespace {

// Eight threads race CompositeProbe on a prepared relation for two
// column sets neither of which has been built yet: the first probe per
// set builds the radix tree under the relation's mutex, every other
// probe must read it lock-free and agree with the serially computed
// counts. The build-once contract is observable through bytes_built —
// summed across all threads and probes it must equal exactly one
// build's bytes per column set.
TEST(ParallelCompositeIndexTest, ConcurrentLazyBuildAndProbe) {
  Relation rel(3);
  for (int a = 0; a < 12; ++a) {
    for (int b = 0; b < 6; ++b) {
      rel.Insert(Tuple{Value::Int(a), Value::Int(b), Value::Int((a + b) % 4)});
    }
  }
  rel.PrepareForRead();

  constexpr size_t kThreads = 8;
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> bytes_total{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      const size_t cols01[] = {0, 1};
      const size_t cols02[] = {0, 2};
      size_t bytes = 0;
      for (int a = 0; a < 12; ++a) {
        ValueId a_id = *rel.IdOf(Value::Int(a));
        for (int b = 0; b < 6; ++b) {
          // Each (a, b) pair occurs exactly once on columns {0, 1}.
          ValueId ids01[2] = {a_id, *rel.IdOf(Value::Int(b))};
          size_t built = 0;
          const std::vector<uint32_t>* rows =
              rel.CompositeProbe(cols01, 2, ids01, &built);
          bytes += built;
          if (rows == nullptr || rows->size() != 1) ++mismatches;
          // ContainsIds is a pure read on the prepared relation.
          ValueId row[3] = {a_id, ids01[1],
                            *rel.IdOf(Value::Int((a + b) % 4))};
          if (!rel.ContainsIds(row)) ++mismatches;
        }
        for (int c = 0; c < 4; ++c) {
          size_t expected = 0;
          for (int b = 0; b < 6; ++b) {
            if ((a + b) % 4 == c) ++expected;
          }
          ValueId ids02[2] = {a_id, *rel.IdOf(Value::Int(c))};
          size_t built = 0;
          const std::vector<uint32_t>* rows =
              rel.CompositeProbe(cols02, 2, ids02, &built);
          bytes += built;
          size_t got = rows == nullptr ? 0 : rows->size();
          if (got != expected) ++mismatches;
        }
      }
      bytes_total += bytes;
    });
  }
  for (std::thread& th : pool) th.join();
  EXPECT_EQ(mismatches.load(), 0u);

  // Exactly one build happened per column set: re-probing now reports
  // zero new bytes, and the racing probes above collectively saw the
  // same two builds the serial path would.
  const size_t cols01[] = {0, 1};
  const size_t cols02[] = {0, 2};
  ValueId ids[2] = {*rel.IdOf(Value::Int(0)), *rel.IdOf(Value::Int(0))};
  size_t built = 0;
  rel.CompositeProbe(cols01, 2, ids, &built);
  EXPECT_EQ(built, 0u);
  size_t built02 = 0;
  rel.CompositeProbe(cols02, 2, ids, &built02);
  EXPECT_EQ(built02, 0u);
  EXPECT_GT(bytes_total.load(), 0u);
}

// Concurrent probes of an absent prefix (an id no row stores) while
// another column set is being built: empty-prefix descents must return
// null without ever touching mutable state post-build.
TEST(ParallelCompositeIndexTest, ConcurrentMissesAndSingleColumnProbes) {
  Relation rel(2);
  for (int a = 0; a < 32; ++a) {
    rel.Insert(Tuple{Value::Int(a), Value::Int(a / 2)});
  }
  rel.Insert(Tuple{Value::Int(1000), Value::Int(1000)});
  rel.Erase(Tuple{Value::Int(1000), Value::Int(1000)});  // id interned, no row
  rel.PrepareForRead();

  ValueId absent = *rel.IdOf(Value::Int(1000));
  constexpr size_t kThreads = 8;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      const size_t cols[] = {0, 1};
      for (int a = 0; a < 32; ++a) {
        ValueId ids[2] = {*rel.IdOf(Value::Int(a)),
                          *rel.IdOf(Value::Int(a / 2))};
        if (rel.CompositeProbe(cols, 2, ids, nullptr) == nullptr) {
          ++mismatches;
        }
        ValueId miss[2] = {absent, ids[1]};
        if (rel.CompositeProbe(cols, 2, miss, nullptr) != nullptr) {
          ++mismatches;
        }
        const std::vector<uint32_t>* single = rel.ProbeId(0, ids[0]);
        if (single == nullptr || single->size() != 1) ++mismatches;
      }
    });
  }
  for (std::thread& th : pool) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace relcomp
