#include <gtest/gtest.h>

#include "automata/two_head_dfa.h"
#include "completeness/brute_force.h"
#include "completeness/rcqp.h"
#include "constraints/constraint_check.h"
#include "eval/query_eval.h"

namespace relcomp {
namespace {

/// Accepts exactly the string "1" (both heads read it, then park).
TwoHeadDfa SingleOneDfa() {
  TwoHeadDfa a;
  a.num_states = 3;
  a.initial_state = 0;
  a.accepting_state = 2;
  a.AddTransition(0, 1, 1, 1, 1, 1);
  a.AddTransition(1, TwoHeadDfa::kEpsilon, TwoHeadDfa::kEpsilon, 2, 0, 0);
  return a;
}

TwoHeadDfa EmptyDfa() {
  TwoHeadDfa a;
  a.num_states = 2;
  a.initial_state = 0;
  a.accepting_state = 1;
  for (int sym : {0, 1}) a.AddTransition(0, sym, sym, 0, 1, 1);
  return a;
}

TEST(TwoHeadDfaRcqpTest, ConstraintsAreFixedAcrossAutomata) {
  auto e1 = EncodeTwoHeadDfaRcqp(SingleOneDfa());
  auto e2 = EncodeTwoHeadDfaRcqp(EmptyDfa());
  ASSERT_TRUE(e1.ok()) << e1.status().ToString();
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(e1->constraints.ToString(), e2->constraints.ToString());
  EXPECT_EQ(e1->master, e2->master);
  // The constraint set mixes CQ well-formedness with the fixed FO
  // transitive-closure constraints.
  EXPECT_EQ(e1->constraints.Language(), QueryLanguage::kFo);
}

TEST(TwoHeadDfaRcqpTest, DecidersRefuseTheUndecidableCell) {
  auto encoded = EncodeTwoHeadDfaRcqp(SingleOneDfa());
  ASSERT_TRUE(encoded.ok());
  auto refused = DecideRcqp(encoded->query, encoded->db_schema,
                            encoded->master, encoded->constraints);
  EXPECT_EQ(refused.status().code(), StatusCode::kUnsupported);
}

TEST(TwoHeadDfaRcqpTest, WitnessSatisfiesTheFixedConstraints) {
  TwoHeadDfa a = SingleOneDfa();
  auto encoded = EncodeTwoHeadDfaRcqp(a);
  ASSERT_TRUE(encoded.ok());
  auto witness = BuildTwoHeadDfaWitness(a, {1}, *encoded);
  ASSERT_TRUE(witness.ok()) << witness.status().ToString();
  // The FO transitive-closure constraints V5/V6 and the CQ
  // well-formedness constraints all hold on the constructed witness.
  auto closed = CheckConstraints(encoded->constraints, *witness,
                                 encoded->master);
  ASSERT_TRUE(closed.ok()) << closed.status().ToString();
  EXPECT_TRUE(closed->satisfied) << closed->ToString();
}

TEST(TwoHeadDfaRcqpTest, WitnessAnswersAccept) {
  TwoHeadDfa a = SingleOneDfa();
  auto encoded = EncodeTwoHeadDfaRcqp(a);
  ASSERT_TRUE(encoded.ok());
  auto witness = BuildTwoHeadDfaWitness(a, {1}, *encoded);
  ASSERT_TRUE(witness.ok());
  auto answer = Evaluate(encoded->query, *witness);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  Tuple accept({Value::Str("ACCEPT"), Value::Str("ACCEPT"),
                Value::Str("ACCEPT"), Value::Str("ACCEPT"),
                Value::Str("ACCEPT"), Value::Str("ACCEPT")});
  ASSERT_EQ(answer->size(), 1u);
  EXPECT_TRUE(answer->Contains(accept));
}

TEST(TwoHeadDfaRcqpTest, NonGoodDatabaseMirrorsRdAndIsPumpable) {
  TwoHeadDfa a = SingleOneDfa();
  auto encoded = EncodeTwoHeadDfaRcqp(a);
  ASSERT_TRUE(encoded.ok());
  // The empty database is not good: the query mirrors (empty) RD.
  Database empty(encoded->db_schema);
  auto answer = Evaluate(encoded->query, empty);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->empty());

  // Pump: add a self-looping RD row plus its RDstar companion — the
  // constraints stay satisfied and the answer changes. This is the
  // paper's argument that non-good databases are never complete.
  Database pumped = empty;
  Tuple loop({Value::Str("zz"), Value::Int(9), Value::Int(9),
              Value::Str("zz"), Value::Int(9), Value::Int(9)});
  ASSERT_TRUE(pumped.Insert("RD", loop).ok());
  ASSERT_TRUE(pumped.Insert("RDstar", loop).ok());
  auto closed = Satisfies(encoded->constraints, pumped, encoded->master);
  ASSERT_TRUE(closed.ok()) << closed.status().ToString();
  EXPECT_TRUE(*closed);
  auto pumped_answer = Evaluate(encoded->query, pumped);
  ASSERT_TRUE(pumped_answer.ok());
  EXPECT_NE(*answer, *pumped_answer);
}

TEST(TwoHeadDfaRcqpTest, WitnessResistsSingleTupleExtensions) {
  // Bounded completeness evidence: no single-tuple extension over a
  // small universe changes the witness's answer (Good is monotone, so
  // the answer stays {ACCEPT...}).
  TwoHeadDfa a = SingleOneDfa();
  auto encoded = EncodeTwoHeadDfaRcqp(a);
  ASSERT_TRUE(encoded.ok());
  auto witness = BuildTwoHeadDfaWitness(a, {1}, *encoded);
  ASSERT_TRUE(witness.ok());
  BruteForceOptions bf;
  bf.universe = {Value::Int(0), Value::Int(1), Value::Str("q0"),
                 Value::Str("q2")};
  bf.max_delta_tuples = 1;
  auto oracle = BruteForceRcdp(encoded->query, *witness, encoded->master,
                               encoded->constraints, bf);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  EXPECT_TRUE(oracle->complete);
}

TEST(TwoHeadDfaRcqpTest, WitnessBuilderRejectsUnacceptedInputs) {
  TwoHeadDfa a = SingleOneDfa();
  auto encoded = EncodeTwoHeadDfaRcqp(a);
  ASSERT_TRUE(encoded.ok());
  EXPECT_FALSE(BuildTwoHeadDfaWitness(a, {0}, *encoded).ok());
}

}  // namespace
}  // namespace relcomp
