#include <gtest/gtest.h>

#include "eval/conjunctive_eval.h"
#include "eval/fo_eval.h"
#include "query/positive_query.h"
#include "query/parser.h"
#include "workload/generators.h"

namespace relcomp {
namespace {

/// Regression coverage for the seeded evaluation of existential blocks
/// in the FO evaluator (Exists over a conjunction with a positive
/// relation atom iterates the relation instead of the active domain).

class FoSeedingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = std::make_shared<Schema>();
    ASSERT_TRUE(schema->AddRelation("E", 2).ok());
    ASSERT_TRUE(schema->AddRelation("L", 1).ok());
    schema_ = schema;
    db_ = Database(schema_);
    for (int64_t i = 0; i < 6; ++i) {
      ASSERT_TRUE(db_.Insert("E", Tuple::Ints({i, (i + 1) % 6})).ok());
    }
    ASSERT_TRUE(db_.Insert("L", Tuple::Ints({2})).ok());
    ASSERT_TRUE(db_.Insert("L", Tuple::Ints({4})).ok());
  }

  Relation Eval(const std::string& text) {
    auto q = ParseFoQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    auto r = EvalFo(*q, db_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }

  std::shared_ptr<const Schema> schema_;
  Database db_;
};

TEST_F(FoSeedingTest, SeededExistsMatchesUnseededSemantics) {
  // ∃y (E(x, y) ∧ L(y)): seeded from E. Sources with labeled targets:
  // 1 -> 2 and 3 -> 4.
  Relation r = Eval("Q(x) := exists y. (E(x, y) & L(y))");
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(Tuple::Ints({1})));
  EXPECT_TRUE(r.Contains(Tuple::Ints({3})));
}

TEST_F(FoSeedingTest, SeedAtomWithConstants) {
  Relation r = Eval("Q(x) := exists y. (E(2, y) & E(y, x))");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(Tuple::Ints({4})));  // 2 -> 3 -> 4
}

TEST_F(FoSeedingTest, NegatedConjunctsEvaluateAfterSeeding) {
  // ∃y (E(x, y) ∧ ¬L(y)): the negation cannot seed, the atom can.
  Relation r = Eval("Q(x) := exists y. (E(x, y) & !L(y))");
  EXPECT_EQ(r.size(), 4u);  // all sources except 1 and 3
}

TEST_F(FoSeedingTest, ExistsWithOnlyNegationsFallsBackToNaive) {
  // ∃y (x != y ∧ ¬E(x, y)): no positive atom to seed from; the naive
  // active-domain path must still answer. Every node has exactly one
  // outgoing edge, so some non-neighbor y always exists.
  Relation r = Eval("Q(x) := L(x) & (exists y. (x != y & !E(x, y)))");
  EXPECT_EQ(r.size(), 2u);
}

TEST_F(FoSeedingTest, PartiallyCoveredBlocksQuantifyTheRest) {
  // ∃y,z (E(x, y) ∧ z = y): the seed covers y; z is quantified naively.
  Relation r = Eval("Q(x) := exists y, z. (E(x, y) & z = y & L(z))");
  EXPECT_EQ(r.size(), 2u);
}

TEST_F(FoSeedingTest, UniversalBlocksAreUntouched) {
  // ∀y (¬E(x, y) ∨ L(y)): only 1 and 3 have all targets labeled.
  Relation r = Eval("Q(x) := L(x) & (forall y. (!E(x, y) | L(y)))");
  // L = {2, 4}: 2 -> 3 unlabeled, 4 -> 5 unlabeled → empty.
  EXPECT_TRUE(r.empty());
}

TEST_F(FoSeedingTest, RandomAgreementWithConjunctiveEvaluator) {
  // ∃-only formulas built from CQs must agree with the join matcher.
  Rng rng(77);
  RandomInstanceOptions options;
  options.num_relations = 2;
  options.value_pool = 4;
  options.tuples_per_relation = 4;
  auto schema = RandomSchema(options, &rng);
  RandomCqOptions cq_options;
  cq_options.num_atoms = 3;
  cq_options.num_variables = 3;
  for (int i = 0; i < 15; ++i) {
    Database db = RandomDatabase(schema, options, &rng);
    ConjunctiveQuery cq = RandomCq(*schema, cq_options, &rng);
    if (!cq.Validate(*schema).ok()) continue;
    auto via_matcher = EvalConjunctive(cq, db);
    ASSERT_TRUE(via_matcher.ok());
    auto via_fo = EvalFo(CqToFoQuery(cq), db);
    ASSERT_TRUE(via_fo.ok());
    EXPECT_EQ(*via_matcher, *via_fo) << cq.ToString();
  }
}

}  // namespace
}  // namespace relcomp
