// Chaos harness for the fabric's planned shard handoff: clean handoffs
// under live traffic must be invisible (bit-for-bit verdicts, zero
// kUnavailable once the switch window closes), and a kill at EVERY
// protocol stage — drain, flush, journal, release, adopt, confirm —
// must recover to identical verdicts with zero corrupt files and no
// job served twice. Around the tentpole: stalled and dead successors,
// torn frames during handoff traffic, the handoff/adopt race resolved
// highest-epoch-wins, the rebalance planner end to end, authenticated
// frames (shared-secret HMAC) accepting keyed peers and refusing
// everyone else with typed errors, and compressed fabric traffic.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "completeness/rcdp.h"
#include "fabric/fabric_client.h"
#include "fabric/member.h"
#include "fabric/rebalancer.h"
#include "fabric/ring.h"
#include "net/client.h"
#include "spec/spec_parser.h"
#include "util/str.h"

namespace relcomp {
namespace {

/// The fabric tests' far-corner instance: the single counterexample
/// (5, 6) forces the search across essentially the whole valuation
/// space — room to slice, checkpoint, and hand off mid-flight.
const std::string& IncompleteSpec() {
  static const std::string spec = [] {
    std::string s = "relation S(a, b)\nmaster relation M(m)\n";
    for (int x = 0; x <= 5; ++x) {
      for (int y = 0; y <= 6; ++y) {
        if (x == 5 && y == 6) continue;
        s += StrCat("fact S(", x, ", ", y, ")\n");
      }
    }
    for (int m = 0; m <= 5; ++m) s += StrCat("master fact M(", m, ")\n");
    s += "constraint c0(x) :- S(x, y) |= M[0]\n";
    s += "query cq Q(x, y) :- S(x, y)\n";
    return s;
  }();
  return spec;
}

std::string FreshDir(const char* tag) {
  static int counter = 0;
  return StrCat(::testing::TempDir(), "/relcomp_chaos_", ::getpid(), "_", tag,
                "_", counter++);
}

std::string FreshSocket(const char* tag) {
  static int counter = 0;
  return StrCat("unix:", ::testing::TempDir(), "/relcomp_chaos_", ::getpid(),
                "_", tag, "_", counter++, ".sock");
}

JobSpec MakeJob(const std::string& spec, size_t threads = 1,
                size_t slice = 0) {
  JobSpec job;
  job.kind = JobKind::kRcdp;
  job.spec_text = spec;
  job.num_threads = threads;
  job.slice_steps = slice;
  return job;
}

/// The oracle: canonical evidence of an uninterrupted direct run.
std::string DirectRcdpEvidence(const std::string& spec_text, size_t threads) {
  auto spec = ParseCompletenessSpec(spec_text);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  RcdpOptions options;
  options.num_threads = threads;
  auto r = DecideRcdp(spec->queries[0], spec->db, spec->master,
                      spec->constraints, options);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return StrCat(VerdictToString(r->verdict), "|",
                r->counterexample_delta.has_value()
                    ? r->counterexample_delta->ToString()
                    : std::string("<none>"),
                "|",
                r->new_answer.has_value() ? r->new_answer->ToString()
                                          : std::string("<none>"));
}

struct Fabric {
  std::string root;
  std::vector<std::string> endpoints;
  std::vector<std::unique_ptr<FabricMember>> members;
};

using MemberTweak = std::function<void(size_t, FabricMemberOptions&)>;

FabricMemberOptions MemberOptions(const Fabric& fabric, size_t index,
                                  const MemberTweak& tweak) {
  FabricMemberOptions options;
  options.fabric_root = fabric.root;
  options.member_index = index;
  options.endpoints = fabric.endpoints;
  if (tweak) tweak(index, options);
  return options;
}

Fabric StartFabric(const char* tag, size_t n, const MemberTweak& tweak = {}) {
  Fabric fabric;
  fabric.root = FreshDir(tag);
  for (size_t i = 0; i < n; ++i) fabric.endpoints.push_back(FreshSocket(tag));
  for (size_t i = 0; i < n; ++i) {
    auto member = FabricMember::Start(MemberOptions(fabric, i, tweak));
    EXPECT_TRUE(member.ok()) << member.status().ToString();
    fabric.members.push_back(member.ok() ? std::move(*member) : nullptr);
  }
  return fabric;
}

/// A key that the placement contract routes to `shard`.
std::string KeyForShard(const FabricRing& ring, size_t shard,
                        const char* tag) {
  for (int i = 0;; ++i) {
    std::string key = StrCat("job-", tag, "-", i);
    if (ring.ShardForKey(key) == shard) return key;
  }
}

/// How often `key` completed across every live shard service — the
/// no-job-served-twice audit.
size_t TimesCompleted(const Fabric& fabric, const std::string& key) {
  size_t times = 0;
  for (const auto& member : fabric.members) {
    if (!member) continue;
    for (size_t shard : member->owned_shards()) {
      DecisionService* service = member->shard_service(shard);
      if (service == nullptr || service->crashed()) continue;
      for (const std::string& done : service->completed_order()) {
        if (done == key) ++times;
      }
    }
  }
  return times;
}

void ExpectNoCorruption(const Fabric& fabric) {
  for (const auto& member : fabric.members) {
    if (!member) continue;
    for (size_t shard : member->owned_shards()) {
      DecisionService* service = member->shard_service(shard);
      if (service == nullptr || service->crashed()) continue;
      EXPECT_EQ(service->store().corrupt_files_skipped(), 0u)
          << "shard " << shard << " read a corrupt store file";
    }
  }
}

/// The one member (index) owning `shard` across the live fabric, or
/// npos — the no-double-serving audit for ownership itself.
size_t SoleOwnerOf(const Fabric& fabric, size_t shard) {
  size_t owner = std::string::npos;
  size_t owners = 0;
  for (size_t i = 0; i < fabric.members.size(); ++i) {
    if (!fabric.members[i]) continue;
    for (size_t owned : fabric.members[i]->owned_shards()) {
      if (owned == shard) {
        owner = i;
        ++owners;
      }
    }
  }
  EXPECT_LE(owners, 1u) << "shard " << shard << " is double-served";
  return owners == 1 ? owner : std::string::npos;
}

// --- Parameterized over (members, threads) ---------------------------

class FabricChaosSweepTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {
 protected:
  size_t members() const { return std::get<0>(GetParam()); }
  size_t threads() const { return std::get<1>(GetParam()); }
};

// The tentpole acceptance: a planned handoff under live traffic is
// invisible — every verdict bit-for-bit the no-handoff run's, each job
// served exactly once, and once the ring re-publish lands the client
// sees ZERO further kUnavailable (measured as failover advances).
TEST_P(FabricChaosSweepTest, CleanHandoffUnderLiveTrafficIsInvisible) {
  const std::string expected = DirectRcdpEvidence(IncompleteSpec(), threads());
  Fabric fabric = StartFabric("clean", members());
  const FabricRing placement = FabricRing::Make(fabric.endpoints);
  FabricClient client(fabric.endpoints);

  // Live traffic on every shard, with the handed-off shard's jobs
  // sliced so the flush has running work to checkpoint.
  std::vector<std::string> keys;
  for (size_t shard = 0; shard < members(); ++shard) {
    for (int j = 0; j < 2; ++j) {
      keys.push_back(
          KeyForShard(placement, shard, StrCat("clean", shard, "x", j).c_str()));
      ASSERT_TRUE(client
                      .Submit(keys.back(),
                              MakeJob(IncompleteSpec(), threads(), 40))
                      .ok());
    }
  }

  // The planned handoff, driven over the wire (kHandoff op → owner):
  // shard 0 moves from member 0 to member 1 while its jobs are live.
  ASSERT_TRUE(client.HandoffShard(0, fabric.endpoints[1]).ok());

  // Ownership switched exactly once, epoch moved forward.
  EXPECT_EQ(SoleOwnerOf(fabric, 0), 1u);
  EXPECT_EQ(fabric.members[0]->shard_service(0), nullptr);
  EXPECT_GE(fabric.members[1]->ring().epoch, placement.epoch + 2);

  // The switch window is closed: from here on, zero kUnavailable — no
  // failover advance, no extra ring refresh — for any keyed op.
  ASSERT_TRUE(client.RefreshRing().ok());
  const size_t failovers_before = client.stats().failovers;
  const size_t refreshes_before = client.stats().ring_refreshes;
  for (const std::string& key : keys) {
    auto reply = client.SubmitAndAwait(
        key, MakeJob(IncompleteSpec(), threads(), 40));
    ASSERT_TRUE(reply.ok()) << key << ": " << reply.status().ToString();
    EXPECT_EQ(reply->evidence, expected) << key;
    EXPECT_EQ(TimesCompleted(fabric, key), 1u) << key << " served twice";
  }
  EXPECT_EQ(client.stats().failovers, failovers_before)
      << "kUnavailable outside the switch window";
  EXPECT_EQ(client.stats().ring_refreshes, refreshes_before)
      << "ring refresh outside the switch window";
  ExpectNoCorruption(fabric);
}

// The chaos sweep: the owner dies at EVERY handoff stage (the stage
// hook aborts the protocol there, then the member is killed), and the
// fabric must recover to identical verdicts — zero corrupt files, no
// job served twice, exactly one owner.
TEST_P(FabricChaosSweepTest, KillAtEveryHandoffStageRecovers) {
  const std::string expected = DirectRcdpEvidence(IncompleteSpec(), threads());
  for (HandoffStage stage :
       {HandoffStage::kDrain, HandoffStage::kFlush, HandoffStage::kJournal,
        HandoffStage::kRelease, HandoffStage::kAdopt,
        HandoffStage::kConfirm}) {
    SCOPED_TRACE(StrCat("stage=", HandoffStageToString(stage)));
    const std::string tag = StrCat("kill", HandoffStageToString(stage));
    Fabric fabric = StartFabric(
        tag.c_str(), members(), [&](size_t index, FabricMemberOptions& o) {
          if (index == 0) {
            o.handoff_fault = [stage](HandoffStage at) {
              return at == stage
                         ? Status::Internal(StrCat(
                               "injected kill at handoff stage ",
                               HandoffStageToString(at)))
                         : Status::OK();
            };
          }
        });
    const std::string key =
        KeyForShard(FabricRing::Make(fabric.endpoints), 0, tag.c_str());
    FabricClient client(fabric.endpoints);
    ASSERT_TRUE(
        client.Submit(key, MakeJob(IncompleteSpec(), threads(), 40)).ok());

    // The protocol aborts at the armed stage...
    Status handoff = fabric.members[0]->HandoffShard(0, fabric.endpoints[1]);
    if (stage == HandoffStage::kConfirm) {
      // ...except confirm, where the successor has already adopted —
      // the abort is bookkeeping-only and the move is complete.
      EXPECT_FALSE(handoff.ok());
      EXPECT_EQ(SoleOwnerOf(fabric, 0), 1u);
    } else {
      ASSERT_FALSE(handoff.ok());
    }

    // ...and then the member dies outright (kernel frees its flocks).
    fabric.members[0].reset();

    // Recovery is the ordinary adoption path — idempotent when the
    // successor already took the shard during the protocol.
    ASSERT_TRUE(fabric.members[1]->AdoptShard(0).ok());
    EXPECT_EQ(SoleOwnerOf(fabric, 0), 1u);

    auto reply = client.SubmitAndAwait(
        key, MakeJob(IncompleteSpec(), threads(), 40));
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->evidence, expected);
    EXPECT_EQ(TimesCompleted(fabric, key), 1u) << "job served twice";
    ExpectNoCorruption(fabric);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MembersByThreads, FabricChaosSweepTest,
    ::testing::Values(std::make_tuple(2, 1), std::make_tuple(2, 8),
                      std::make_tuple(3, 1), std::make_tuple(3, 8)),
    [](const ::testing::TestParamInfo<std::tuple<size_t, size_t>>& info) {
      return StrCat("members", std::get<0>(info.param), "threads",
                    std::get<1>(info.param));
    });

// --- Successor failure modes -----------------------------------------

TEST(FabricChaosTest, DeadSuccessorFailsHandoffAndThirdMemberAdopts) {
  const std::string expected = DirectRcdpEvidence(IncompleteSpec(), 1);
  Fabric fabric = StartFabric("deadsucc", 3,
                              [](size_t index, FabricMemberOptions& o) {
                                if (index == 0) {
                                  o.handoff_adopt_deadline =
                                      std::chrono::milliseconds(500);
                                }
                              });
  const std::string key =
      KeyForShard(FabricRing::Make(fabric.endpoints), 0, "deadsucc");
  FabricClient client(fabric.endpoints);
  ASSERT_TRUE(client.Submit(key, MakeJob(IncompleteSpec(), 1, 40)).ok());

  // The successor dies before the adopt RPC can reach it: the handoff
  // flushes, journals, and releases, then fails typed at the adopt
  // stage — the shard is flock-free with a record naming the corpse.
  fabric.members[1].reset();
  Status handoff = fabric.members[0]->HandoffShard(0, fabric.endpoints[1]);
  ASSERT_FALSE(handoff.ok());
  EXPECT_EQ(fabric.members[0]->shard_service(0), nullptr)
      << "departing member kept the shard after the journal stage";

  // A third member adopts and finishes the move.
  ASSERT_TRUE(fabric.members[2]->AdoptShard(0).ok());
  EXPECT_EQ(SoleOwnerOf(fabric, 0), 2u);
  auto reply = client.SubmitAndAwait(key, MakeJob(IncompleteSpec(), 1, 40));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->evidence, expected);
  EXPECT_EQ(TimesCompleted(fabric, key), 1u);
  ExpectNoCorruption(fabric);
}

TEST(FabricChaosTest, StalledSuccessorFailsHandoffWithoutDoubleServing) {
  const std::string expected = DirectRcdpEvidence(IncompleteSpec(), 1);
  Fabric fabric = StartFabric("stallsucc", 3,
                              [](size_t index, FabricMemberOptions& o) {
                                if (index == 0) {
                                  o.handoff_adopt_deadline =
                                      std::chrono::milliseconds(400);
                                }
                              });
  const std::string key =
      KeyForShard(FabricRing::Make(fabric.endpoints), 0, "stallsucc");
  FabricClient client(fabric.endpoints);
  ASSERT_TRUE(client.Submit(key, MakeJob(IncompleteSpec(), 1, 40)).ok());

  // The successor stalls: it swallows every reply (the work may still
  // happen — the ambiguous-outcome case). The departing member's adopt
  // RPC times out and the handoff reports failure...
  SocketFaultPlan stall;
  stall.kind = SocketFaultPlan::Kind::kStall;
  stall.every = 1;
  fabric.members[1]->server()->InjectFault(stall);
  Status handoff = fabric.members[0]->HandoffShard(0, fabric.endpoints[1]);
  ASSERT_FALSE(handoff.ok());

  // ...but ambiguity never means double-serving: however the race
  // lands, at most one member holds the shard, and once the stall
  // clears the fabric converges on exactly one bit-for-bit completion.
  fabric.members[1]->server()->InjectFault(SocketFaultPlan());
  if (SoleOwnerOf(fabric, 0) == std::string::npos) {
    ASSERT_TRUE(fabric.members[2]->AdoptShard(0).ok());
  }
  EXPECT_NE(SoleOwnerOf(fabric, 0), std::string::npos);
  auto reply = client.SubmitAndAwait(key, MakeJob(IncompleteSpec(), 1, 40));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->evidence, expected);
  EXPECT_EQ(TimesCompleted(fabric, key), 1u);
  ExpectNoCorruption(fabric);
}

// --- Edge cases and races --------------------------------------------

TEST(FabricChaosTest, HandoffValidationRejectsSelfUnknownAndUnowned) {
  Fabric fabric = StartFabric("valid", 2);
  // To self: kInvalidArgument, both directly and over the wire.
  EXPECT_EQ(fabric.members[0]
                ->HandoffShard(0, fabric.endpoints[0])
                .code(),
            StatusCode::kInvalidArgument);
  FabricClient client(fabric.endpoints);
  Status wire = client.HandoffShard(0, fabric.endpoints[0]);
  EXPECT_EQ(wire.code(), StatusCode::kInvalidArgument);
  // To an endpoint outside the fabric.
  EXPECT_EQ(fabric.members[0]
                ->HandoffShard(0, "unix:/nowhere/not-a-member.sock")
                .code(),
            StatusCode::kInvalidArgument);
  // Of a shard this member does not own.
  EXPECT_EQ(fabric.members[1]
                ->HandoffShard(0, fabric.endpoints[0])
                .code(),
            StatusCode::kFailedPrecondition);
  // Of a shard that does not exist.
  EXPECT_EQ(fabric.members[0]
                ->HandoffShard(99, fabric.endpoints[1])
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(FabricChaosTest, ConcurrentHandoffAndAdoptResolveHighestEpochWins) {
  const std::string expected = DirectRcdpEvidence(IncompleteSpec(), 1);
  // Member 0 hands shard 0 to member 1; between the release and the
  // adopt RPC, member 2 races in and adopts the shard first. The
  // handoff must fail typed (member 1 cannot take the flock), and the
  // fabric must converge on member 2 — whose epoch outranks the
  // journaled handoff record.
  std::function<Status(HandoffStage)> hook;
  Fabric fabric = StartFabric("race", 3,
                              [&](size_t index, FabricMemberOptions& o) {
                                if (index == 0) {
                                  o.handoff_fault = [&hook](HandoffStage s) {
                                    return hook ? hook(s) : Status::OK();
                                  };
                                }
                              });
  const std::string key =
      KeyForShard(FabricRing::Make(fabric.endpoints), 0, "race");
  FabricClient client(fabric.endpoints);
  ASSERT_TRUE(client.Submit(key, MakeJob(IncompleteSpec(), 1, 40)).ok());

  std::atomic<bool> raced{false};
  hook = [&](HandoffStage stage) {
    if (stage == HandoffStage::kAdopt) {
      // The flock is free (release already ran); the third member
      // wins the race before the successor is even asked.
      Status adopted = fabric.members[2]->AdoptShard(0);
      EXPECT_TRUE(adopted.ok()) << adopted.ToString();
      raced = true;
    }
    return Status::OK();
  };
  Status handoff = fabric.members[0]->HandoffShard(0, fabric.endpoints[1]);
  ASSERT_TRUE(raced.load());
  EXPECT_FALSE(handoff.ok()) << "handoff succeeded despite a lost race";
  EXPECT_EQ(SoleOwnerOf(fabric, 0), 2u);

  // Highest epoch wins: the racer's published ring outranks the
  // journaled handoff record, so clients converge on member 2.
  ASSERT_TRUE(client.RefreshRing().ok());
  EXPECT_EQ(client.ring().endpoints[0], fabric.endpoints[2]);
  auto reply = client.SubmitAndAwait(key, MakeJob(IncompleteSpec(), 1, 40));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->evidence, expected);
  EXPECT_EQ(TimesCompleted(fabric, key), 1u);
  ExpectNoCorruption(fabric);
}

TEST(FabricChaosTest, TornFramesDuringHandoffTrafficStayExactlyOnce) {
  const std::string expected = DirectRcdpEvidence(IncompleteSpec(), 1);
  Fabric fabric = StartFabric("torn", 2);
  const FabricRing placement = FabricRing::Make(fabric.endpoints);
  FabricClient client(fabric.endpoints);

  // Every third reply from member 0 is torn mid-frame while its shard
  // is being handed off under live traffic — the client's retries and
  // the submit idempotency keys must absorb all of it.
  SocketFaultPlan torn;
  torn.kind = SocketFaultPlan::Kind::kTornFrame;
  torn.every = 3;
  torn.at_byte = 9;
  fabric.members[0]->server()->InjectFault(torn);

  std::vector<std::string> keys;
  for (size_t shard = 0; shard < 2; ++shard) {
    keys.push_back(
        KeyForShard(placement, shard, StrCat("torn", shard).c_str()));
    (void)client.Submit(keys.back(), MakeJob(IncompleteSpec(), 1, 40));
  }
  // The handoff itself is driven member-side (operators do not lose
  // control-plane access to a member with a flaky client-facing link).
  ASSERT_TRUE(fabric.members[0]->HandoffShard(0, fabric.endpoints[1]).ok());
  EXPECT_EQ(SoleOwnerOf(fabric, 0), 1u);

  for (const std::string& key : keys) {
    auto reply = client.SubmitAndAwait(key, MakeJob(IncompleteSpec(), 1, 40));
    ASSERT_TRUE(reply.ok()) << key << ": " << reply.status().ToString();
    EXPECT_EQ(reply->evidence, expected) << key;
    EXPECT_EQ(TimesCompleted(fabric, key), 1u) << key;
  }
  ExpectNoCorruption(fabric);
}

// --- Rebalance planner -----------------------------------------------

TEST(FabricRebalanceTest, PlansAreMinimalDeterministicAndBalanced) {
  FabricRing ring = FabricRing::Make({"a", "b", "c"});
  // Balanced already: no moves.
  EXPECT_TRUE(PlanRebalance(ring, {"a", "b", "c"}).empty());

  // One orphan: exactly one move, to the least-loaded member.
  ring.endpoints = {"a", "", "c"};
  RebalancePlan orphan = PlanRebalance(ring, {"a", "b", "c"});
  ASSERT_EQ(orphan.moves.size(), 1u);
  EXPECT_EQ(orphan.moves[0].shard, 1u);
  EXPECT_EQ(orphan.moves[0].from, "");  // executed as an adopt
  EXPECT_EQ(orphan.moves[0].to, "b");

  // A member drained out of `live`: its shards re-home, nothing else
  // moves.
  ring.endpoints = {"a", "b", "c"};
  RebalancePlan departed = PlanRebalance(ring, {"a", "c"});
  ASSERT_EQ(departed.moves.size(), 1u);
  EXPECT_EQ(departed.moves[0].shard, 1u);
  EXPECT_EQ(departed.moves[0].to, "a");  // ceil(3/2)=2: a gets it first

  // A join: the overloaded member sheds its highest shards to the
  // newcomers, deterministically.
  ring.endpoints = {"a", "a", "a"};
  RebalancePlan join = PlanRebalance(ring, {"a", "b", "c"});
  ASSERT_EQ(join.moves.size(), 2u);
  EXPECT_EQ(join.moves[0].shard, 1u);
  EXPECT_EQ(join.moves[0].from, "a");
  EXPECT_EQ(join.moves[0].to, "b");
  EXPECT_EQ(join.moves[1].shard, 2u);
  EXPECT_EQ(join.moves[1].to, "c");

  // Determinism: the identical inputs plan the identical sequence.
  EXPECT_EQ(PlanRebalance(ring, {"a", "b", "c"}).Describe(),
            join.Describe());

  // Drain: every shard of the drained member, least-loaded target
  // first; nobody else is touched.
  ring.endpoints = {"a", "b", "a"};
  RebalancePlan drain = PlanDrain(ring, "a");
  ASSERT_EQ(drain.moves.size(), 2u);
  EXPECT_EQ(drain.moves[0].shard, 0u);
  EXPECT_EQ(drain.moves[0].from, "a");
  EXPECT_EQ(drain.moves[0].to, "b");
  EXPECT_EQ(drain.moves[1].shard, 2u);
  EXPECT_EQ(drain.moves[1].to, "b");
  // Draining the last member plans nothing rather than orphaning.
  ring.endpoints = {"a", "a", "a"};
  EXPECT_TRUE(PlanDrain(ring, "a").empty());
}

TEST(FabricRebalanceTest, ExecutedDrainEmptiesAMemberWithLiveJobs) {
  const std::string expected = DirectRcdpEvidence(IncompleteSpec(), 1);
  Fabric fabric = StartFabric("drain", 3);
  const FabricRing placement = FabricRing::Make(fabric.endpoints);
  FabricClient client(fabric.endpoints);
  std::vector<std::string> keys;
  for (size_t shard = 0; shard < 3; ++shard) {
    keys.push_back(
        KeyForShard(placement, shard, StrCat("drain", shard).c_str()));
    ASSERT_TRUE(
        client.Submit(keys.back(), MakeJob(IncompleteSpec(), 1, 40)).ok());
  }

  ASSERT_TRUE(client.RefreshRing().ok());
  RebalancePlan plan = PlanDrain(client.ring(), fabric.endpoints[0]);
  ASSERT_EQ(plan.moves.size(), 1u);  // member 0 owns exactly its home shard
  ASSERT_TRUE(ExecutePlan(&client, plan).ok());

  EXPECT_TRUE(fabric.members[0]->owned_shards().empty());
  for (const std::string& key : keys) {
    auto reply = client.SubmitAndAwait(key, MakeJob(IncompleteSpec(), 1, 40));
    ASSERT_TRUE(reply.ok()) << key << ": " << reply.status().ToString();
    EXPECT_EQ(reply->evidence, expected) << key;
    EXPECT_EQ(TimesCompleted(fabric, key), 1u) << key;
  }
  ExpectNoCorruption(fabric);
}

// --- FabricClient jitter ---------------------------------------------

TEST(FabricClientJitterTest, RetryPauseIsJitteredDeterministicallyBySeed) {
  FabricClientOptions options;
  options.retry_pause = std::chrono::milliseconds(100);
  options.jitter_seed = 42;
  FabricClient a({"unix:/unused-a.sock"}, options);
  FabricClient b({"unix:/unused-b.sock"}, options);
  options.jitter_seed = 43;
  FabricClient c({"unix:/unused-c.sock"}, options);

  bool differs = false;
  for (int i = 0; i < 64; ++i) {
    const auto pa = a.NextRetryPause();
    EXPECT_GE(pa.count(), 50);
    EXPECT_LE(pa.count(), 100);
    // Same seed: the identical deterministic sequence.
    EXPECT_EQ(pa.count(), b.NextRetryPause().count()) << "draw " << i;
    if (pa.count() != c.NextRetryPause().count()) differs = true;
  }
  EXPECT_TRUE(differs) << "different seeds produced identical jitter";

  // A zero pause never sleeps and never underflows.
  options.retry_pause = std::chrono::milliseconds(0);
  FabricClient zero({"unix:/unused-z.sock"}, options);
  EXPECT_EQ(zero.NextRetryPause().count(), 0);
}

// --- Authenticated frames --------------------------------------------

/// Opens a raw stream to a unix:<path> endpoint (bypassing every
/// client-side protocol nicety — the hostile peer).
int RawConnect(const std::string& endpoint) {
  EXPECT_EQ(endpoint.rfind("unix:", 0), 0u);
  const std::string path = endpoint.substr(5);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << "connect to " << path;
  return fd;
}

TEST(FabricAuthTest, AuthenticatedFabricServesKeyedPeersEndToEnd) {
  const std::string expected = DirectRcdpEvidence(IncompleteSpec(), 1);
  const std::string secret = "chaos-shared-secret";
  Fabric fabric = StartFabric("auth", 2,
                              [&](size_t, FabricMemberOptions& o) {
                                o.server_options.auth_key = secret;
                              });
  FabricClientOptions options;
  options.endpoint_options.auth_key = secret;
  FabricClient client(fabric.endpoints, options);

  const std::string key =
      KeyForShard(FabricRing::Make(fabric.endpoints), 0, "auth");
  auto reply = client.SubmitAndAwait(key, MakeJob(IncompleteSpec(), 1, 40));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->evidence, expected);

  // The planned handoff rides the same authenticated channel (the
  // member-to-member adopt RPC inherits the key).
  ASSERT_TRUE(client.HandoffShard(0, fabric.endpoints[1]).ok());
  EXPECT_EQ(SoleOwnerOf(fabric, 0), 1u);
  ExpectNoCorruption(fabric);
}

TEST(FabricAuthTest, UntaggedAndWrongKeyPeersGetTypedDenials) {
  const std::string secret = "chaos-shared-secret";
  Fabric fabric = StartFabric("deny", 2,
                              [&](size_t, FabricMemberOptions& o) {
                                o.server_options.auth_key = secret;
                              });
  // A keyless peer speaking perfectly valid relcomp-net/1.
  NetClient untagged(fabric.endpoints[0]);
  EXPECT_EQ(untagged.ServerStatus().status().code(),
            StatusCode::kPermissionDenied);
  // A peer with the wrong key: its frames fail tag verification.
  NetClientOptions wrong_options;
  wrong_options.auth_key = "not the secret";
  NetClient wrong(fabric.endpoints[0], wrong_options);
  EXPECT_EQ(wrong.ServerStatus().status().code(),
            StatusCode::kPermissionDenied);
  // The right key still works on the very same server.
  NetClientOptions right_options;
  right_options.auth_key = secret;
  NetClient right(fabric.endpoints[0], right_options);
  EXPECT_TRUE(right.ServerStatus().ok());

  // A keyless FabricClient fails FAST with the typed denial — an auth
  // rejection is a configuration error, not an outage, so the routing
  // loop must not burn its op deadline re-sweeping it.
  FabricClientOptions keyless_options;
  keyless_options.op_deadline = std::chrono::milliseconds(30000);
  FabricClient keyless(fabric.endpoints, keyless_options);
  const auto t0 = std::chrono::steady_clock::now();
  Status denied = keyless.Submit("deny-job", MakeJob(IncompleteSpec(), 1));
  EXPECT_EQ(denied.code(), StatusCode::kPermissionDenied)
      << denied.ToString();
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(5))
      << "keyless client burned its op deadline instead of failing fast";
}

TEST(FabricAuthTest, KeyRotationWindowServesOldAndNewKeyedPeers) {
  const std::string old_key = "fabric-key-2025";
  const std::string new_key = "fabric-key-2026";
  // Mid-rotation: the servers already speak the NEW key (tagging every
  // reply with it) but still accept the OLD one as secondary.
  Fabric fabric = StartFabric("rotate", 2,
                              [&](size_t, FabricMemberOptions& o) {
                                o.server_options.auth_key = new_key;
                                o.server_options.auth_key2 = old_key;
                              });
  // A laggard client still on the OLD key: its requests verify via the
  // server's secondary, and the NEW-tagged replies verify via its own.
  NetClientOptions laggard_options;
  laggard_options.auth_key = old_key;
  laggard_options.auth_key2 = new_key;
  NetClient laggard(fabric.endpoints[0], laggard_options);
  EXPECT_TRUE(laggard.ServerStatus().ok());
  // An upgraded client on the NEW key alone works too, so the fleet
  // can roll members and clients in any order.
  NetClientOptions upgraded_options;
  upgraded_options.auth_key = new_key;
  NetClient upgraded(fabric.endpoints[0], upgraded_options);
  EXPECT_TRUE(upgraded.ServerStatus().ok());
  // A client that never learned the NEW key cannot verify the replies:
  // the rotation window lets it REQUEST, not skip the upgrade.
  NetClientOptions stale_options;
  stale_options.auth_key = old_key;
  NetClient stale(fabric.endpoints[0], stale_options);
  EXPECT_EQ(stale.ServerStatus().status().code(),
            StatusCode::kPermissionDenied);

  // Real keyed traffic across the window decides bit-for-bit.
  FabricClientOptions options;
  options.endpoint_options.auth_key = old_key;
  options.endpoint_options.auth_key2 = new_key;
  FabricClient client(fabric.endpoints, options);
  const std::string key =
      KeyForShard(FabricRing::Make(fabric.endpoints), 0, "rotate");
  auto reply = client.SubmitAndAwait(key, MakeJob(IncompleteSpec(), 1, 40));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->evidence, DirectRcdpEvidence(IncompleteSpec(), 1));
  ExpectNoCorruption(fabric);
}

TEST(FabricAuthTest, HostileBytesAtAnAuthenticatedServerNeverCrashIt) {
  const std::string secret = "chaos-shared-secret";
  Fabric fabric = StartFabric("hostile", 2,
                              [&](size_t, FabricMemberOptions& o) {
                                o.server_options.auth_key = secret;
                              });
  // Garbage, a torn v2 header, and a v2 frame lying about its lengths:
  // each connection gets closed (after a typed denial where the stream
  // is still parseable), and the server keeps serving keyed peers.
  const std::string hostile[] = {
      std::string(64, '\xff'),
      std::string("RNF2\x03", 5),
      StrCat(std::string("RNF2\x01", 5),
             std::string("\xff\xff\xff\xff\x04\x00\x00\x00zzzz----", 16)),
      std::string("RNF0 pretend-legacy-frame", 25),
  };
  for (const std::string& bytes : hostile) {
    int fd = RawConnect(fabric.endpoints[0]);
    ASSERT_GE(fd, 0);
    (void)!::write(fd, bytes.data(), bytes.size());
    ::shutdown(fd, SHUT_WR);  // EOF: the server need not wait out a deadline
    char buf[256];
    // Drain whatever the server sends until it closes on us.
    while (::read(fd, buf, sizeof(buf)) > 0) {
    }
    ::close(fd);
  }
  NetClientOptions options;
  options.auth_key = secret;
  NetClient keyed(fabric.endpoints[0], options);
  EXPECT_TRUE(keyed.ServerStatus().ok())
      << "server stopped serving after hostile bytes";
  EXPECT_GT(fabric.members[0]->server()->stats().protocol_errors, 0u);
}

// --- Compressed fabric traffic ---------------------------------------

TEST(FabricCompressionTest, CompressedAndAuthenticatedTrafficDecidesSame) {
  const std::string expected = DirectRcdpEvidence(IncompleteSpec(), 1);
  const std::string secret = "compress-and-tag";
  Fabric fabric = StartFabric("zip", 2,
                              [&](size_t, FabricMemberOptions& o) {
                                o.server_options.auth_key = secret;
                                o.server_options.compress_threshold = 128;
                              });
  FabricClientOptions options;
  options.endpoint_options.auth_key = secret;
  options.endpoint_options.compress_threshold = 128;
  FabricClient client(fabric.endpoints, options);
  // The spec payload is far over the threshold, so the submit rides
  // compressed (and tagged); the verdict must be byte-identical.
  const std::string key =
      KeyForShard(FabricRing::Make(fabric.endpoints), 1, "zip");
  auto reply = client.SubmitAndAwait(key, MakeJob(IncompleteSpec(), 1, 40));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->evidence, expected);
  EXPECT_EQ(TimesCompleted(fabric, key), 1u);
  ExpectNoCorruption(fabric);
}

}  // namespace
}  // namespace relcomp
