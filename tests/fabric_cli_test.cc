// The fabric over real processes and real SIGKILL: one relcheck
// process per member (--fabric --members --member-index), a client
// routing over the member sockets, the owner killed -9 mid-audit and
// restarted over the same shard directory. The restarted process must
// recover the shard's in-flight jobs and serve verdicts bit-for-bit
// equal to an unkilled run — the in-process sweeps prove every kill
// position; this suite proves the story survives actual process death.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "completeness/rcdp.h"
#include "fabric/fabric_client.h"
#include "fabric/ring.h"
#include "net/client.h"
#include "spec/spec_parser.h"
#include "util/str.h"

namespace relcomp {
namespace {

/// The far-corner incomplete grid the service suites audit.
const std::string& IncompleteSpec() {
  static const std::string spec = [] {
    std::string s = "relation S(a, b)\nmaster relation M(m)\n";
    for (int x = 0; x <= 5; ++x) {
      for (int y = 0; y <= 6; ++y) {
        if (x == 5 && y == 6) continue;
        s += StrCat("fact S(", x, ", ", y, ")\n");
      }
    }
    for (int m = 0; m <= 5; ++m) s += StrCat("master fact M(", m, ")\n");
    s += "constraint c0(x) :- S(x, y) |= M[0]\n";
    s += "query cq Q(x, y) :- S(x, y)\n";
    return s;
  }();
  return spec;
}

std::string DirectRcdpEvidence(const std::string& spec_text) {
  auto spec = ParseCompletenessSpec(spec_text);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  auto r = DecideRcdp(spec->queries[0], spec->db, spec->master,
                      spec->constraints, RcdpOptions());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return StrCat(VerdictToString(r->verdict), "|",
                r->counterexample_delta.has_value()
                    ? r->counterexample_delta->ToString()
                    : std::string("<none>"),
                "|",
                r->new_answer.has_value() ? r->new_answer->ToString()
                                          : std::string("<none>"));
}

std::string FreshRoot(const char* tag) {
  static int counter = 0;
  return StrCat(::testing::TempDir(), "/relcomp_fabcli_", ::getpid(), "_",
                tag, "_", counter++);
}

std::string MemberEndpoint(const std::string& root, size_t index) {
  return StrCat("unix:", root, "/member-", index, ".sock");
}

/// Spawns `relcheck --fabric root --members n --member-index index`,
/// output discarded. Returns the child pid.
pid_t SpawnMember(const std::string& root, size_t n, size_t index,
                  const std::string& key_file = std::string()) {
  const std::string members = StrCat(n);
  const std::string member_index = StrCat(index);
  pid_t pid = ::fork();
  if (pid == 0) {
    std::freopen("/dev/null", "w", stdout);
    std::freopen("/dev/null", "w", stderr);
    if (key_file.empty()) {
      ::execl(RELCHECK_BINARY, "relcheck", "--fabric", root.c_str(),
              "--members", members.c_str(), "--member-index",
              member_index.c_str(), static_cast<char*>(nullptr));
    } else {
      ::execl(RELCHECK_BINARY, "relcheck", "--fabric", root.c_str(),
              "--members", members.c_str(), "--member-index",
              member_index.c_str(), "--auth-key-file", key_file.c_str(),
              static_cast<char*>(nullptr));
    }
    ::_exit(127);
  }
  EXPECT_GT(pid, 0);
  return pid;
}

/// Waits until the member's endpoint answers the ring op.
bool AwaitServing(const std::string& endpoint,
                  const std::string& auth_key = std::string()) {
  NetClientOptions options;
  options.max_retries = 1;
  options.backoff_base = std::chrono::milliseconds(1);
  options.auth_key = auth_key;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    NetClient client(endpoint, options);
    if (client.Ring().ok()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

void Sigkill(pid_t pid) {
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
}

void DrainGracefully(pid_t pid) {
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  EXPECT_TRUE(WIFEXITED(wstatus));
  if (WIFEXITED(wstatus)) {
    EXPECT_EQ(WEXITSTATUS(wstatus), 0);
  }
}

std::string WriteSpec(const char* tag, const std::string& content) {
  static int counter = 0;
  const std::string path = StrCat(::testing::TempDir(), "/relcomp_fabcli_",
                                  ::getpid(), "_", tag, "_", counter++,
                                  ".rcspec");
  std::ofstream out(path);
  out << content;
  EXPECT_TRUE(out.good());
  return path;
}

int RunRelcheck(const std::string& args) {
  const std::string command =
      StrCat(RELCHECK_BINARY, " ", args, " > /dev/null 2> /dev/null");
  int raw = std::system(command.c_str());
  EXPECT_NE(raw, -1);
  EXPECT_TRUE(WIFEXITED(raw)) << "relcheck did not exit normally";
  return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

JobSpec SlicedJob() {
  JobSpec job;
  job.kind = JobKind::kRcdp;
  job.spec_text = IncompleteSpec();
  job.slice_steps = 16;  // frequent persists: a kill always lands near one
  return job;
}

TEST(FabricCliTest, ServesAndAuditsAcrossProcesses) {
  const std::string root = FreshRoot("serve");
  pid_t m0 = SpawnMember(root, 2, 0);
  pid_t m1 = SpawnMember(root, 2, 1);
  ASSERT_TRUE(AwaitServing(MemberEndpoint(root, 0)));
  ASSERT_TRUE(AwaitServing(MemberEndpoint(root, 1)));

  // The CLI client over both endpoints: the grid is incomplete → 1.
  const std::string spec = WriteSpec("serve", IncompleteSpec());
  EXPECT_EQ(RunRelcheck(StrCat("--connect ", MemberEndpoint(root, 0), ",",
                               MemberEndpoint(root, 1), " ", spec)),
            1);
  DrainGracefully(m0);
  DrainGracefully(m1);
}

TEST(FabricCliTest, SigkillOwnerMidAuditThenRestartIsBitForBit) {
  const std::string expected = DirectRcdpEvidence(IncompleteSpec());
  const std::string root = FreshRoot("kill");
  pid_t m0 = SpawnMember(root, 2, 0);
  pid_t m1 = SpawnMember(root, 2, 1);
  ASSERT_TRUE(AwaitServing(MemberEndpoint(root, 0)));
  ASSERT_TRUE(AwaitServing(MemberEndpoint(root, 1)));
  std::vector<pid_t> pids = {m0, m1};

  const std::vector<std::string> endpoints = {MemberEndpoint(root, 0),
                                              MemberEndpoint(root, 1)};
  FabricClient client(endpoints);
  // Enough jobs that, whenever the kill lands, some are terminal, some
  // are mid-search, and some still queued on the victim's shard.
  std::vector<std::string> keys;
  for (int i = 0; i < 6; ++i) {
    keys.push_back(StrCat("job-kill-", i));
    ASSERT_TRUE(client.Submit(keys.back(), SlicedJob()).ok());
  }
  // SIGKILL the shard-0 owner wherever its work happens to stand: no
  // drain, no flush, the kernel just reaps it (and releases its
  // flocks).
  Sigkill(pids[0]);
  pids[0] = SpawnMember(root, 2, 0);
  ASSERT_TRUE(AwaitServing(MemberEndpoint(root, 0)));

  // Every job must come back bit-for-bit. SubmitAndAwait covers the
  // one ambiguous window (completed + forgotten before we read the
  // verdict): the resubmission is served from the journaled verdict
  // cache or honestly recomputed to the same bytes.
  for (const std::string& key : keys) {
    auto reply = client.SubmitAndAwait(key, SlicedJob(),
                                       std::chrono::milliseconds(5),
                                       std::chrono::milliseconds(120000));
    ASSERT_TRUE(reply.ok()) << key << ": " << reply.status().ToString();
    EXPECT_EQ(reply->evidence, expected) << key;
  }
  DrainGracefully(pids[0]);
  DrainGracefully(pids[1]);
}

TEST(FabricCliTest, RestartedMemberRejoinsAndKeepsServing) {
  const std::string root = FreshRoot("rejoin");
  pid_t m0 = SpawnMember(root, 2, 0);
  pid_t m1 = SpawnMember(root, 2, 1);
  ASSERT_TRUE(AwaitServing(MemberEndpoint(root, 0)));
  ASSERT_TRUE(AwaitServing(MemberEndpoint(root, 1)));

  // Kill-and-restart with no work in flight: the deterministic
  // baseline of the recovery path — the rejoined member must serve a
  // fresh audit end to end.
  Sigkill(m0);
  m0 = SpawnMember(root, 2, 0);
  ASSERT_TRUE(AwaitServing(MemberEndpoint(root, 0)));

  const std::string spec = WriteSpec("rejoin", IncompleteSpec());
  EXPECT_EQ(RunRelcheck(StrCat("--connect ", MemberEndpoint(root, 0), ",",
                               MemberEndpoint(root, 1), " ", spec)),
            1);
  DrainGracefully(m0);
  DrainGracefully(m1);
}

TEST(FabricCliTest, AuthKeyFileRotationWindowInteroperates) {
  const std::string root = FreshRoot("keyrot");
  ASSERT_EQ(::mkdir(root.c_str(), 0755), 0);
  // Server fleet mid-rotation: tags with NEW (line 1), accepts OLD
  // (line 2). The laggard client file is the mirror image.
  const std::string server_keys = StrCat(root, "/server.keys");
  const std::string laggard_keys = StrCat(root, "/laggard.keys");
  const std::string stale_keys = StrCat(root, "/stale.keys");
  {
    std::ofstream(server_keys) << "fabric-key-new\nfabric-key-old\n";
    std::ofstream(laggard_keys) << "fabric-key-old\nfabric-key-new\n";
    std::ofstream(stale_keys) << "fabric-key-old\n";
  }
  pid_t m0 = SpawnMember(root, 2, 0, server_keys);
  pid_t m1 = SpawnMember(root, 2, 1, server_keys);
  ASSERT_TRUE(AwaitServing(MemberEndpoint(root, 0), "fabric-key-new"));
  ASSERT_TRUE(AwaitServing(MemberEndpoint(root, 1), "fabric-key-new"));
  const std::string connect = StrCat("--connect ", MemberEndpoint(root, 0),
                                     ",", MemberEndpoint(root, 1));

  // The laggard (OLD primary, NEW secondary) is served end to end.
  const std::string spec = WriteSpec("keyrot", IncompleteSpec());
  EXPECT_EQ(RunRelcheck(StrCat(connect, " --auth-key-file ", laggard_keys,
                               " ", spec)),
            1);
  EXPECT_EQ(RunRelcheck(StrCat(connect, " --auth-key-file ", laggard_keys,
                               " --health")),
            0);
  // A client that never learned the NEW key cannot verify the NEW-
  // tagged replies; a keyless client is denied outright.
  EXPECT_EQ(RunRelcheck(StrCat(connect, " --auth-key-file ", stale_keys,
                               " ", spec)),
            3);
  EXPECT_EQ(RunRelcheck(StrCat(connect, " ", spec)), 3);
  DrainGracefully(m0);
  DrainGracefully(m1);
}

TEST(FabricCliTest, HealthFlagReportsFleetAndExitsByWorstState) {
  const std::string root = FreshRoot("health");
  pid_t m0 = SpawnMember(root, 2, 0);
  pid_t m1 = SpawnMember(root, 2, 1);
  ASSERT_TRUE(AwaitServing(MemberEndpoint(root, 0)));
  ASSERT_TRUE(AwaitServing(MemberEndpoint(root, 1)));
  const std::string connect = StrCat("--connect ", MemberEndpoint(root, 0),
                                     ",", MemberEndpoint(root, 1));

  // Every member healthy: exit 0 (the "complete" rung of the ladder).
  EXPECT_EQ(RunRelcheck(StrCat(connect, " --health")), 0);
  // --health is a dedicated mode: combining it with a spec or a shard
  // move is a usage error.
  const std::string spec = WriteSpec("health", IncompleteSpec());
  EXPECT_EQ(RunRelcheck(StrCat(connect, " --health ", spec)), 3);

  // A dead member makes the fleet non-healthy: exit 1, not a hang.
  Sigkill(m1);
  EXPECT_EQ(RunRelcheck(StrCat(connect, " --health")), 1);
  DrainGracefully(m0);
}

TEST(FabricCliTest, FabricFlagValidation) {
  // --fabric with a spec path, or out-of-range members, is a usage
  // error (exit 3), not a partial start.
  const std::string spec = WriteSpec("usage", IncompleteSpec());
  EXPECT_EQ(RunRelcheck(StrCat("--fabric ", FreshRoot("usage"), " ", spec)),
            3);
  EXPECT_EQ(RunRelcheck(StrCat("--fabric ", FreshRoot("usage"),
                               " --members 0")),
            3);
  EXPECT_EQ(RunRelcheck(StrCat("--fabric ", FreshRoot("usage"),
                               " --members 2 --member-index 5")),
            3);
}

}  // namespace
}  // namespace relcomp
