#include <gtest/gtest.h>

#include "completeness/brute_force.h"
#include "completeness/rcdp.h"
#include "completeness/rcqp.h"
#include "reductions/fixed_rcqp_family.h"
#include "reductions/forall_exists_3sat.h"
#include "reductions/sat.h"
#include "reductions/three_sat_rcqp.h"
#include "workload/generators.h"

namespace relcomp {
namespace {

// ---------------------------------------------------------------------------
// SAT substrate.

TEST(SatTest, EvalAndBruteForce) {
  // (x0 | x1) & (!x0 | x1): satisfiable with x1 = 1.
  CnfFormula f;
  f.num_vars = 2;
  f.clauses = {{{0, false}, {1, false}},
               {{0, true}, {1, false}}};
  EXPECT_TRUE(f.Eval({false, true}));
  EXPECT_FALSE(f.Eval({true, false}));
  EXPECT_TRUE(SatBruteForce(f));

  // x0 & !x0: unsatisfiable.
  CnfFormula g;
  g.num_vars = 1;
  g.clauses = {{{0, false}}, {{0, true}}};
  EXPECT_FALSE(SatBruteForce(g));
}

TEST(SatTest, QuantifiedBruteForce) {
  // ∀x0 ∃x1: x0 != x1 as (x0 | x1) & (!x0 | !x1): true.
  CnfFormula f;
  f.num_vars = 2;
  f.clauses = {{{0, false}, {1, false}},
               {{0, true}, {1, true}}};
  EXPECT_TRUE(ForallExistsBruteForce(f, 1, 1));
  // ∀x0 ∃x1: x0 & x1: false (x0 = 0 falsifies).
  CnfFormula g;
  g.num_vars = 2;
  g.clauses = {{{0, false}}, {{1, false}}};
  EXPECT_FALSE(ForallExistsBruteForce(g, 1, 1));
  // ∃x0 ∀x1: x0 | x1 — x0 = 1 works.
  CnfFormula h;
  h.num_vars = 2;
  h.clauses = {{{0, false}, {1, false}}};
  EXPECT_TRUE(ExistsForallExistsBruteForce(h, 1, 1, 0));
}

// ---------------------------------------------------------------------------
// Theorem 3.6 lower bound: ∀∃3SAT → RCDP(CQ, INDs).

class ForallExists3SatTest : public ::testing::TestWithParam<int> {};

TEST_P(ForallExists3SatTest, ReductionMatchesBruteForceOnRandomFormulas) {
  Rng rng(GetParam());
  std::uniform_int_distribution<size_t> nx_dist(0, 2);
  ForallExists3SatInstance instance;
  instance.nx = nx_dist(rng);
  instance.ny = 3 - instance.nx;
  instance.formula = RandomCnf(3, 3, &rng);
  bool expected = ForallExistsBruteForce(instance.formula, instance.nx,
                                         instance.ny);
  auto encoded = EncodeForallExists3Sat(instance);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  auto result = DecideRcdp(encoded->query, encoded->db, encoded->master,
                           encoded->constraints);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->complete, expected)
      << instance.formula.ToString() << " with nx=" << instance.nx;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForallExists3SatTest,
                         ::testing::Range(1, 21));

TEST(ForallExists3SatFixedTest, MasterAndConstraintsAreFormulaIndependent) {
  // Corollary 3.7: the reduction uses fixed Dm and V — check that two
  // different formulas produce identical master data and constraints.
  Rng rng(99);
  ForallExists3SatInstance a{RandomCnf(3, 2, &rng), 1, 2};
  ForallExists3SatInstance b{RandomCnf(3, 4, &rng), 2, 1};
  auto ea = EncodeForallExists3Sat(a);
  auto eb = EncodeForallExists3Sat(b);
  ASSERT_TRUE(ea.ok());
  ASSERT_TRUE(eb.ok());
  EXPECT_EQ(ea->master, eb->master);
  EXPECT_EQ(ea->db, eb->db);
  EXPECT_EQ(ea->constraints.ToString(), eb->constraints.ToString());
}

TEST(ForallExists3SatTestHand, TautologyAndContradiction) {
  // ∀x0 ∃y0: (x0 | !x0) — trivially true ⇒ complete.
  ForallExists3SatInstance taut;
  taut.nx = 1;
  taut.ny = 1;
  taut.formula.num_vars = 2;
  taut.formula.clauses = {{{0, false}, {0, true}}};
  auto enc = EncodeForallExists3Sat(taut);
  ASSERT_TRUE(enc.ok());
  auto result = DecideRcdp(enc->query, enc->db, enc->master,
                           enc->constraints);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->complete);

  // ∀x0 ∃y0: x0 — false (x0 = 0) ⇒ incomplete.
  ForallExists3SatInstance contra;
  contra.nx = 1;
  contra.ny = 1;
  contra.formula.num_vars = 2;
  contra.formula.clauses = {{{0, false}}};
  auto enc2 = EncodeForallExists3Sat(contra);
  ASSERT_TRUE(enc2.ok());
  auto result2 = DecideRcdp(enc2->query, enc2->db, enc2->master,
                            enc2->constraints);
  ASSERT_TRUE(result2.ok());
  EXPECT_FALSE(result2->complete);
}

// ---------------------------------------------------------------------------
// Theorem 4.5(1) lower bound: 3SAT → RCQP(CQ, INDs); RCQ empty iff
// satisfiable.

class ThreeSatRcqpTest : public ::testing::TestWithParam<int> {};

TEST_P(ThreeSatRcqpTest, ReductionMatchesBruteForceOnRandomFormulas) {
  Rng rng(GetParam() * 31);
  CnfFormula f = RandomCnf(3, 4, &rng);
  bool satisfiable = SatBruteForce(f);
  auto encoded = EncodeThreeSatRcqp(f);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  auto result = DecideRcqp(encoded->query, encoded->db_schema,
                           encoded->master, encoded->constraints);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->exists, !satisfiable) << f.ToString();
  EXPECT_TRUE(result->exhaustive);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreeSatRcqpTest, ::testing::Range(1, 21));

TEST(ThreeSatRcqpHandTest, SatisfiableMeansNoCompleteDatabase) {
  CnfFormula sat;
  sat.num_vars = 1;
  sat.clauses = {{{0, false}}};
  auto enc = EncodeThreeSatRcqp(sat);
  ASSERT_TRUE(enc.ok());
  auto result = DecideRcqp(enc->query, enc->db_schema, enc->master,
                           enc->constraints);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->exists);
  ASSERT_FALSE(result->unbounded_variables.empty());
  EXPECT_EQ(result->unbounded_variables[0].variable, "z");

  CnfFormula unsat;
  unsat.num_vars = 1;
  unsat.clauses = {{{0, false}}, {{0, true}}};
  auto enc2 = EncodeThreeSatRcqp(unsat);
  ASSERT_TRUE(enc2.ok());
  auto result2 = DecideRcqp(enc2->query, enc2->db_schema, enc2->master,
                            enc2->constraints);
  ASSERT_TRUE(result2.ok());
  EXPECT_TRUE(result2->exists);
}

// ---------------------------------------------------------------------------
// The fixed-(Dm, V) family for Corollary 4.6 (∃X ∀W variant; see the
// header of reductions/fixed_rcqp_family.h for why the paper's Σ₃
// construction is not implemented as written).

class FixedFamilyTest : public ::testing::TestWithParam<int> {};

TEST_P(FixedFamilyTest, WitnessCompleteIffForallHolds) {
  // Per-χ validation: the χ-witness is complete iff ∀W φ(χ, W).
  Rng rng(GetParam() * 7);
  FixedRcqpFamilyInstance instance;
  instance.nx = 1;
  instance.nw = 2;
  instance.formula = RandomCnf(3, 3, &rng);
  auto encoded = EncodeFixedRcqpFamily(instance);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();

  for (int chi_bits = 0; chi_bits < 2; ++chi_bits) {
    std::vector<bool> chi = {chi_bits == 1};
    auto witness = BuildFixedFamilyWitness(instance, chi, *encoded);
    ASSERT_TRUE(witness.ok()) << witness.status().ToString();
    // ∀W φ(χ, W) by brute force.
    bool forall = true;
    for (int w_bits = 0; w_bits < 4 && forall; ++w_bits) {
      std::vector<bool> assignment = {chi[0], (w_bits & 1) != 0,
                                      (w_bits & 2) != 0};
      forall = instance.formula.Eval(assignment);
    }
    auto result = DecideRcdp(encoded->query, *witness, encoded->master,
                             encoded->constraints);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->complete, forall)
        << instance.formula.ToString() << " chi=" << chi_bits;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixedFamilyTest, ::testing::Range(1, 16));

TEST(FixedFamilyFixedPartsTest, MasterAndConstraintsAreFormulaIndependent) {
  Rng rng(5);
  FixedRcqpFamilyInstance a{RandomCnf(3, 2, &rng), 1, 2};
  FixedRcqpFamilyInstance b{RandomCnf(4, 5, &rng), 2, 2};
  auto ea = EncodeFixedRcqpFamily(a);
  auto eb = EncodeFixedRcqpFamily(b);
  ASSERT_TRUE(ea.ok());
  ASSERT_TRUE(eb.ok());
  EXPECT_EQ(ea->master, eb->master);
  EXPECT_EQ(ea->constraints.ToString(), eb->constraints.ToString());
}

TEST(FixedFamilyHandTest, ExistsForallDecidesViaWitnesses) {
  // φ = (x0 | w0) & (x0 | !w0): ∃x0 ∀w0 φ holds with x0 = 1.
  FixedRcqpFamilyInstance instance;
  instance.nx = 1;
  instance.nw = 1;
  instance.formula.num_vars = 2;
  instance.formula.clauses = {{{0, false}, {1, false}},
                              {{0, false}, {1, true}}};
  auto encoded = EncodeFixedRcqpFamily(instance);
  ASSERT_TRUE(encoded.ok());

  auto witness_true = BuildFixedFamilyWitness(instance, {true}, *encoded);
  ASSERT_TRUE(witness_true.ok());
  auto complete = DecideRcdp(encoded->query, *witness_true, encoded->master,
                             encoded->constraints);
  ASSERT_TRUE(complete.ok()) << complete.status().ToString();
  EXPECT_TRUE(complete->complete);

  auto witness_false = BuildFixedFamilyWitness(instance, {false}, *encoded);
  ASSERT_TRUE(witness_false.ok());
  auto incomplete = DecideRcdp(encoded->query, *witness_false,
                               encoded->master, encoded->constraints);
  ASSERT_TRUE(incomplete.ok());
  EXPECT_FALSE(incomplete->complete);
}

}  // namespace
}  // namespace relcomp
