#include "service/decision_service.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "completeness/rcdp.h"
#include "completeness/rcqp.h"
#include "service/checkpoint_store.h"
#include "spec/spec_parser.h"
#include "util/execution_control.h"
#include "util/str.h"

namespace relcomp {
namespace {

/// An incomplete instance whose single counterexample sits in the far
/// corner of the valuation space: S holds every pair over
/// {0..5} x {0..6} except (5, 6), and S's first column is IND-bounded
/// by M = {0..5}. The only new answer any complete extension can add
/// is (5, 6), so the search must walk essentially the whole space
/// (several dozen decision points, under either variable order) before
/// the verdict — enough room to slice, checkpoint, and crash.
const std::string& IncompleteSpec() {
  static const std::string spec = [] {
    std::string s = "relation S(a, b)\nmaster relation M(m)\n";
    for (int x = 0; x <= 5; ++x) {
      for (int y = 0; y <= 6; ++y) {
        if (x == 5 && y == 6) continue;
        s += StrCat("fact S(", x, ", ", y, ")\n");
      }
    }
    for (int m = 0; m <= 5; ++m) s += StrCat("master fact M(", m, ")\n");
    s += "constraint c0(x) :- S(x, y) |= M[0]\n";
    s += "query cq Q(x, y) :- S(x, y)\n";
    return s;
  }();
  return spec;
}

/// A chase that converges: both S columns are IND-bounded by a small
/// master relation, so the chase closes the finite M × M space within
/// a few rounds.
constexpr char kChaseableSpec[] = R"spec(
relation S(a, b)
master relation M(m)
fact S(0, 1)
master fact M(0)
master fact M(1)
constraint c0(x) :- S(x, y) |= M[0]
constraint c1(y) :- S(x, y) |= M[0]
query cq Q(x, y) :- S(x, y)
)spec";

std::string FreshDir(const char* tag) {
  static int counter = 0;
  return StrCat(::testing::TempDir(), "/relcomp_svc_", ::getpid(), "_", tag,
                "_", counter++);
}

JobSpec MakeJob(JobKind kind, const std::string& spec, size_t threads = 1,
                size_t slice = 0) {
  JobSpec job;
  job.kind = kind;
  job.spec_text = spec;
  job.num_threads = threads;
  job.slice_steps = slice;
  return job;
}

/// The service's canonical evidence string, recomputed from a direct
/// library call — the oracle every service result is compared against.
std::string DirectRcdpEvidence(const std::string& spec_text, size_t threads) {
  auto spec = ParseCompletenessSpec(spec_text);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  RcdpOptions options;
  options.num_threads = threads;
  auto r = DecideRcdp(spec->queries[0], spec->db, spec->master,
                      spec->constraints, options);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return StrCat(VerdictToString(r->verdict), "|",
                r->counterexample_delta.has_value()
                    ? r->counterexample_delta->ToString()
                    : std::string("<none>"),
                "|",
                r->new_answer.has_value() ? r->new_answer->ToString()
                                          : std::string("<none>"));
}

/// Decision points an uninterrupted run claims — the sweep range.
size_t CountDecisionPoints(const std::string& spec_text, JobKind kind,
                           size_t threads) {
  auto spec = ParseCompletenessSpec(spec_text);
  EXPECT_TRUE(spec.ok());
  ExecutionBudget budget;
  budget.set_max_steps(1u << 30);
  RcdpOptions options;
  options.num_threads = threads;
  options.budget = &budget;
  if (kind == JobKind::kChase) {
    auto r = ChaseToCompleteness(spec->queries[0], spec->db, spec->master,
                                 spec->constraints, /*max_rounds=*/32,
                                 options);
    EXPECT_TRUE(r.ok());
  } else {
    auto r = DecideRcdp(spec->queries[0], spec->db, spec->master,
                        spec->constraints, options);
    EXPECT_TRUE(r.ok());
  }
  return budget.steps();
}

/// Runs `job` as "req" on a fresh un-faulted service; returns the
/// terminal JobResult.
JobResult RunToCompletion(const std::string& dir, const JobSpec& job,
                          const DecisionServiceOptions& options = {}) {
  auto service = DecisionService::Start(dir, options);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_TRUE((*service)->Submit("req", job).ok());
  auto result = (*service)->Wait("req");
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *result : JobResult{};
}

// ---------------------------------------------------------------------------
// Submit/decide parity with the library.

TEST(DecisionServiceTest, RcdpJobMatchesTheDirectDecision) {
  JobResult r = RunToCompletion(FreshDir("rcdp"),
                                MakeJob(JobKind::kRcdp, IncompleteSpec()));
  EXPECT_EQ(r.verdict, Verdict::kIncomplete);
  EXPECT_EQ(r.evidence, DirectRcdpEvidence(IncompleteSpec(), 1));
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_EQ(r.persisted, 0u);
}

TEST(DecisionServiceTest, RcqpJobMatchesTheDirectDecision) {
  auto spec = ParseCompletenessSpec(IncompleteSpec());
  ASSERT_TRUE(spec.ok());
  auto direct = DecideRcqp(spec->queries[0], spec->db_schema, spec->master,
                           spec->constraints, RcqpOptions());
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  JobResult r = RunToCompletion(FreshDir("rcqp"),
                                MakeJob(JobKind::kRcqp, IncompleteSpec()));
  EXPECT_EQ(r.verdict, direct->verdict);
  EXPECT_NE(r.evidence.find(direct->method), std::string::npos)
      << r.evidence;
}

TEST(DecisionServiceTest, ChaseJobMatchesTheDirectChase) {
  auto spec = ParseCompletenessSpec(kChaseableSpec);
  ASSERT_TRUE(spec.ok());
  auto direct =
      ChaseToCompleteness(spec->queries[0], spec->db, spec->master,
                          spec->constraints, /*max_rounds=*/32, {});
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  ASSERT_EQ(direct->verdict, Verdict::kComplete);

  JobResult r = RunToCompletion(FreshDir("chase"),
                                MakeJob(JobKind::kChase, kChaseableSpec));
  EXPECT_EQ(r.verdict, Verdict::kComplete);
  EXPECT_EQ(r.evidence, StrCat("COMPLETE|rounds=", direct->rounds, "|",
                               direct->db.ToString()));
}

TEST(DecisionServiceTest, SlicedExecutionPersistsAndStillMatches) {
  const size_t total = CountDecisionPoints(IncompleteSpec(), JobKind::kRcdp, 1);
  ASSERT_GT(total, 8u);
  const std::string dir = FreshDir("sliced");
  JobResult r = RunToCompletion(
      dir, MakeJob(JobKind::kRcdp, IncompleteSpec(), 1, total / 4 + 1));
  EXPECT_EQ(r.evidence, DirectRcdpEvidence(IncompleteSpec(), 1));
  EXPECT_GE(r.attempts, 2u) << "slice never exhausted";
  EXPECT_GE(r.persisted, 1u);
  EXPECT_GT(r.exhaustion.retry_count, 0u)
      << "retry observability lost";

  // A completed job leaves nothing behind: the store is empty again.
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->PendingRequests().empty());
  EXPECT_EQ((*store)->LoadLatestCheckpoint("req").status().code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Admission, scheduling, deadlines.

TEST(DecisionServiceTest, AdmissionControlShedsBeyondTheQueueDepth) {
  DecisionServiceOptions options;
  options.max_queue_depth = 2;
  options.start_paused = true;
  auto service = DecisionService::Start(FreshDir("shed"), options);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE(
      (*service)->Submit("a", MakeJob(JobKind::kRcdp, IncompleteSpec())).ok());
  ASSERT_TRUE(
      (*service)->Submit("b", MakeJob(JobKind::kRcdp, IncompleteSpec())).ok());
  Status shed =
      (*service)->Submit("c", MakeJob(JobKind::kRcdp, IncompleteSpec()));
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted) << shed.ToString();
  EXPECT_EQ((*service)->jobs_shed(), 1u);
  // Shed jobs leave no durable residue: a restart must not resurrect c.
  (*service)->Resume();
  EXPECT_TRUE((*service)->Wait("a").ok());
  EXPECT_TRUE((*service)->Wait("b").ok());
  EXPECT_EQ((*service)->Wait("c").status().code(), StatusCode::kNotFound);
}

TEST(DecisionServiceTest, OldestDeadlineFirstScheduling) {
  DecisionServiceOptions options;
  options.num_workers = 1;
  options.start_paused = true;
  auto service = DecisionService::Start(FreshDir("edf"), options);
  ASSERT_TRUE(service.ok());

  JobSpec none = MakeJob(JobKind::kRcdp, IncompleteSpec());
  JobSpec late = none;
  late.deadline = std::chrono::milliseconds(120000);
  JobSpec early = none;
  early.deadline = std::chrono::milliseconds(60000);
  // Submission order deliberately inverts deadline order.
  ASSERT_TRUE((*service)->Submit("none", none).ok());
  ASSERT_TRUE((*service)->Submit("late", late).ok());
  ASSERT_TRUE((*service)->Submit("early", early).ok());
  (*service)->Resume();
  for (const char* id : {"none", "late", "early"}) {
    ASSERT_TRUE((*service)->Wait(id).ok()) << id;
  }
  const std::vector<std::string> expected = {"early", "late", "none"};
  EXPECT_EQ((*service)->completed_order(), expected);
}

TEST(DecisionServiceTest, ExpiredDeadlineIsTerminalUnknown) {
  JobSpec job = MakeJob(JobKind::kRcdp, IncompleteSpec());
  job.deadline = std::chrono::milliseconds(0);
  JobResult r = RunToCompletion(FreshDir("deadline"), job);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(r.exhaustion.kind, BudgetKind::kDeadline)
      << r.exhaustion.ToString();
  EXPECT_EQ(r.evidence, "unknown|deadline");
}

TEST(DecisionServiceTest, InvalidSpecsAndDuplicateIdsAreRejectedAtSubmit) {
  auto service = DecisionService::Start(FreshDir("invalid"));
  ASSERT_TRUE(service.ok());
  JobSpec bad = MakeJob(JobKind::kRcdp, "relation ((((");
  EXPECT_EQ((*service)->Submit("bad", bad).code(),
            StatusCode::kInvalidArgument);

  JobSpec no_query = MakeJob(JobKind::kRcdp, IncompleteSpec());
  no_query.query_index = 7;
  EXPECT_EQ((*service)->Submit("oob", no_query).code(),
            StatusCode::kInvalidArgument);

  ASSERT_TRUE(
      (*service)->Submit("dup", MakeJob(JobKind::kRcdp, IncompleteSpec()))
          .ok());
  EXPECT_EQ(
      (*service)->Submit("dup", MakeJob(JobKind::kRcdp, IncompleteSpec()))
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ((*service)->Wait("nonesuch").status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE((*service)->Wait("dup").ok());
}

TEST(DecisionServiceTest, JobSpecWireFormRoundTrips) {
  JobSpec spec = MakeJob(JobKind::kChase, kChaseableSpec, 4, 250);
  spec.query_index = 2;
  spec.deadline = std::chrono::milliseconds(1500);
  spec.max_chase_rounds = 64;
  auto back = JobSpec::Deserialize(spec.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->kind, JobKind::kChase);
  EXPECT_EQ(back->spec_text, spec.spec_text);
  EXPECT_EQ(back->query_index, 2u);
  EXPECT_EQ(back->num_threads, 4u);
  EXPECT_EQ(back->slice_steps, 250u);
  EXPECT_EQ(back->deadline, std::chrono::milliseconds(1500));
  EXPECT_EQ(back->max_chase_rounds, 64u);
  EXPECT_FALSE(JobSpec::Deserialize("relcomp-job/2 rcdp 0 1 0 - 32 0:").ok());
  EXPECT_FALSE(JobSpec::Deserialize("").ok());
}

// ---------------------------------------------------------------------------
// Crash/recovery sweeps. The contract under test: for EVERY
// interruption position, kill + restart + resume produces a verdict
// and evidence bit-for-bit identical to the uninterrupted run, and no
// corrupted store file is ever loaded.

class DecisionServiceSweepTest : public ::testing::TestWithParam<size_t> {
 protected:
  size_t threads() const { return GetParam(); }
};

TEST_P(DecisionServiceSweepTest, CrashAtEveryDecisionPointRecoversBitForBit) {
  const std::string expected = DirectRcdpEvidence(IncompleteSpec(), threads());
  const size_t total =
      CountDecisionPoints(IncompleteSpec(), JobKind::kRcdp, threads());
  ASSERT_GT(total, 0u);

  size_t crashes = 0;
  for (size_t point = 0; point < total; ++point) {
    const std::string dir = FreshDir("sweep");
    FaultInjector inject(FaultInjector::Fault::kPersistAbort, point);
    DecisionServiceOptions options;
    options.fault_injector = &inject;
    {
      auto service = DecisionService::Start(dir, options);
      ASSERT_TRUE(service.ok()) << service.status().ToString();
      ASSERT_TRUE(
          (*service)
              ->Submit("req",
                       MakeJob(JobKind::kRcdp, IncompleteSpec(), threads()))
              .ok());
      auto result = (*service)->Wait("req");
      if (result.ok()) {
        // The run finished before reaching `point` (parallel schedules
        // may claim fewer points on some interleavings).
        EXPECT_EQ(result->evidence, expected) << "point=" << point;
        continue;
      }
      ASSERT_EQ(result.status().code(), StatusCode::kFailedPrecondition)
          << result.status().ToString();
      ASSERT_TRUE((*service)->crashed());
      ++crashes;
    }
    // Kill done; restart on the same directory and let recovery run.
    auto restarted = DecisionService::Start(dir);
    ASSERT_TRUE(restarted.ok()) << restarted.status().ToString();
    const auto recovered = (*restarted)->RecoveredJobs();
    ASSERT_EQ(recovered.size(), 1u) << "point=" << point;
    EXPECT_EQ(recovered[0], "req");
    auto result = (*restarted)->Wait("req");
    ASSERT_TRUE(result.ok())
        << "point=" << point << ": " << result.status().ToString();
    EXPECT_EQ(result->evidence, expected) << "point=" << point;
    EXPECT_EQ((*restarted)->store().corrupt_files_skipped(), 0u)
        << "a corrupted store file was read at point=" << point;
  }
  EXPECT_GT(crashes, 0u) << "the sweep never actually crashed";
}

TEST_P(DecisionServiceSweepTest, CrashAfterEveryPersistSiteRecoversBitForBit) {
  const std::string expected = DirectRcdpEvidence(IncompleteSpec(), threads());
  const size_t total =
      CountDecisionPoints(IncompleteSpec(), JobKind::kRcdp, threads());
  const size_t slice = total / 6 + 1;

  // Learn how many checkpoint writes the sliced run performs.
  DecisionServiceOptions sliced;
  JobResult uninterrupted = RunToCompletion(
      FreshDir("persistbase"),
      MakeJob(JobKind::kRcdp, IncompleteSpec(), threads(), slice), sliced);
  ASSERT_EQ(uninterrupted.evidence, expected);
  ASSERT_GE(uninterrupted.persisted, 1u);

  size_t crashes = 0;
  for (size_t k = 1; k <= uninterrupted.persisted; ++k) {
    const std::string dir = FreshDir("persistsweep");
    DecisionServiceOptions options;
    options.crash_after_persist = k;
    {
      auto service = DecisionService::Start(dir, options);
      ASSERT_TRUE(service.ok());
      ASSERT_TRUE((*service)
                      ->Submit("req", MakeJob(JobKind::kRcdp, IncompleteSpec(),
                                              threads(), slice))
                      .ok());
      auto result = (*service)->Wait("req");
      if (result.ok()) {
        // The run finished in fewer than k persists: how far a slice
        // advances under a shared step budget depends on which work
        // units had completed when it blew, so a multi-worker schedule
        // may cover the rank space in fewer slices than the baseline
        // measured. The verdict must still be bit-for-bit.
        EXPECT_EQ(result->evidence, expected) << "k=" << k;
        continue;
      }
      ASSERT_TRUE((*service)->crashed());
      ++crashes;
    }
    auto restarted = DecisionService::Start(dir);
    ASSERT_TRUE(restarted.ok()) << restarted.status().ToString();
    auto result = (*restarted)->Wait("req");
    ASSERT_TRUE(result.ok())
        << "k=" << k << ": " << result.status().ToString();
    EXPECT_EQ(result->evidence, expected) << "k=" << k;
    EXPECT_EQ((*restarted)->store().corrupt_files_skipped(), 0u);
  }
  EXPECT_GT(crashes, 0u) << "the sweep never actually crashed";
}

INSTANTIATE_TEST_SUITE_P(Threads, DecisionServiceSweepTest,
                         ::testing::Values(1, 2, 8));

TEST(DecisionServiceRecoveryTest, MultiCrashChainEventuallyCompletes) {
  const std::string expected = DirectRcdpEvidence(IncompleteSpec(), 1);
  const size_t total =
      CountDecisionPoints(IncompleteSpec(), JobKind::kRcdp, 1);
  const size_t slice = total / 8 + 1;
  const std::string dir = FreshDir("chain");

  // Every process generation dies right after its first durable
  // checkpoint write; each life makes one slice of progress. The chain
  // must converge because resume never loses persisted work.
  bool submitted = false;
  for (size_t life = 0; life < 100; ++life) {
    DecisionServiceOptions options;
    options.crash_after_persist = 1;
    auto service = DecisionService::Start(dir, options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    if (!submitted) {
      ASSERT_TRUE(
          (*service)
              ->Submit("req",
                       MakeJob(JobKind::kRcdp, IncompleteSpec(), 1, slice))
              .ok());
      submitted = true;
    } else {
      ASSERT_EQ((*service)->RecoveredJobs().size(), 1u) << "life=" << life;
    }
    auto result = (*service)->Wait("req");
    if (result.ok()) {
      EXPECT_EQ(result->evidence, expected);
      EXPECT_GT(life, 0u) << "never crashed at all";
      return;
    }
    ASSERT_TRUE((*service)->crashed()) << "life=" << life;
  }
  FAIL() << "crash chain did not converge within 100 lives";
}

TEST(DecisionServiceRecoveryTest, ChaseCrashRecoveryIsDeterministic) {
  auto spec = ParseCompletenessSpec(kChaseableSpec);
  ASSERT_TRUE(spec.ok());
  auto direct =
      ChaseToCompleteness(spec->queries[0], spec->db, spec->master,
                          spec->constraints, /*max_rounds=*/32, {});
  ASSERT_TRUE(direct.ok());
  const std::string expected = StrCat("COMPLETE|rounds=", direct->rounds,
                                      "|", direct->db.ToString());

  const size_t total =
      CountDecisionPoints(kChaseableSpec, JobKind::kChase, 1);
  ASSERT_GT(total, 1u);
  // Crash mid-chase; the partially chased database dies with the
  // process, so recovery re-runs the (deterministic) chase from round
  // 0 — the final result must still be identical.
  const std::string dir = FreshDir("chasecrash");
  FaultInjector inject(FaultInjector::Fault::kPersistAbort, total / 2);
  DecisionServiceOptions options;
  options.fault_injector = &inject;
  {
    auto service = DecisionService::Start(dir, options);
    ASSERT_TRUE(service.ok());
    ASSERT_TRUE((*service)
                    ->Submit("req", MakeJob(JobKind::kChase, kChaseableSpec))
                    .ok());
    auto result = (*service)->Wait("req");
    ASSERT_FALSE(result.ok()) << "chase did not crash";
  }
  auto restarted = DecisionService::Start(dir);
  ASSERT_TRUE(restarted.ok());
  auto result = (*restarted)->Wait("req");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->evidence, expected);
}

TEST(DecisionServiceRecoveryTest, SubmitAfterCrashIsFailedPrecondition) {
  const std::string dir = FreshDir("aftercrash");
  FaultInjector inject(FaultInjector::Fault::kPersistAbort, 0);
  DecisionServiceOptions options;
  options.fault_injector = &inject;
  auto service = DecisionService::Start(dir, options);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE(
      (*service)->Submit("req", MakeJob(JobKind::kRcdp, IncompleteSpec())).ok());
  ASSERT_FALSE((*service)->Wait("req").ok());
  EXPECT_EQ(
      (*service)->Submit("next", MakeJob(JobKind::kRcdp, IncompleteSpec()))
          .code(),
      StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Concurrent store access (the tsan suite: name must match the tsan
// preset filter).

TEST(DecisionServiceConcurrencyTest, SecondServiceOnALiveDirectoryIsRefused) {
  const std::string dir = FreshDir("lockout");
  auto first = DecisionService::Start(dir);
  ASSERT_TRUE(first.ok());
  // The loser must get kFailedPrecondition, never a torn interleaving
  // of generations.
  auto second = DecisionService::Start(dir);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition)
      << second.status().ToString();
  first->reset();
  auto third = DecisionService::Start(dir);
  EXPECT_TRUE(third.ok()) << third.status().ToString();
}

TEST(DecisionServiceConcurrencyTest, ConcurrentSubmittersAndWorkersAreClean) {
  DecisionServiceOptions options;
  options.num_workers = 2;
  auto service = DecisionService::Start(FreshDir("concurrent"), options);
  ASSERT_TRUE(service.ok());

  constexpr int kPerThread = 3;
  std::vector<std::thread> submitters;
  for (int t = 0; t < 2; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Status st = (*service)->Submit(
            StrCat("job-", t, "-", i),
            MakeJob(JobKind::kRcdp, IncompleteSpec(), 1, 64));
        EXPECT_TRUE(st.ok()) << st.ToString();
      }
    });
  }
  for (auto& s : submitters) s.join();

  const std::string expected = DirectRcdpEvidence(IncompleteSpec(), 1);
  for (int t = 0; t < 2; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      auto result = (*service)->Wait(StrCat("job-", t, "-", i));
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result->evidence, expected);
    }
  }
}

}  // namespace
}  // namespace relcomp
