#include <gtest/gtest.h>

#include "eval/conjunctive_eval.h"
#include "query/parser.h"
#include "tableau/containment.h"
#include "tableau/homomorphism.h"
#include "tableau/single_relation.h"
#include "tableau/tableau.h"
#include "workload/generators.h"

namespace relcomp {
namespace {

std::shared_ptr<Schema> TestSchema() {
  auto schema = std::make_shared<Schema>();
  EXPECT_TRUE(schema->AddRelation("R", 2).ok());
  EXPECT_TRUE(schema->AddRelation("S", 1).ok());
  EXPECT_TRUE(schema
                  ->AddRelation(RelationSchema(
                      "B", {AttributeDef::Over("b", Domain::Boolean()),
                            AttributeDef::Inf("v")}))
                  .ok());
  return schema;
}

TableauQuery MakeTableau(const std::string& text, const Schema& schema) {
  auto q = ParseConjunctiveQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  auto t = TableauQuery::FromConjunctive(*q, schema);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return *t;
}

TEST(TableauTest, NormalizesEqualityClasses) {
  auto schema = TestSchema();
  // x = y and y = 1 should substitute the constant everywhere.
  TableauQuery t =
      MakeTableau("Q(x) :- R(x, y), x = y, y = 1.", *schema);
  ASSERT_TRUE(t.satisfiable());
  ASSERT_EQ(t.rows().size(), 1u);
  EXPECT_TRUE(t.rows()[0].terms[0].is_constant());
  EXPECT_EQ(t.rows()[0].terms[0].value(), Value::Int(1));
  EXPECT_TRUE(t.summary()[0].is_constant());
  EXPECT_TRUE(t.variables().empty());
}

TEST(TableauTest, MergesVariablesIntoOneRepresentative) {
  auto schema = TestSchema();
  TableauQuery t = MakeTableau("Q(x, y) :- R(x, z), R(z, y), x = y.", *schema);
  ASSERT_TRUE(t.satisfiable());
  EXPECT_EQ(t.summary()[0], t.summary()[1]);
}

TEST(TableauTest, DetectsConstantConflicts) {
  auto schema = TestSchema();
  EXPECT_FALSE(
      MakeTableau("Q() :- R(x, y), x = 1, x = 2.", *schema).satisfiable());
  EXPECT_FALSE(
      MakeTableau("Q() :- R(x, y), x = y, x != y.", *schema).satisfiable());
  EXPECT_FALSE(MakeTableau("Q() :- R(x, x), x = 1, x != 1.", *schema)
                   .satisfiable());
}

TEST(TableauTest, ConstantConstantComparisons) {
  auto schema = TestSchema();
  EXPECT_FALSE(MakeTableau("Q() :- R(x, y), 1 = 2.", *schema).satisfiable());
  EXPECT_TRUE(MakeTableau("Q() :- R(x, y), 1 != 2.", *schema).satisfiable());
}

TEST(TableauTest, OutOfDomainConstantIsUnsatisfiable) {
  auto schema = TestSchema();
  EXPECT_FALSE(MakeTableau("Q() :- B(5, v).", *schema).satisfiable());
  EXPECT_TRUE(MakeTableau("Q() :- B(1, v).", *schema).satisfiable());
}

TEST(TableauTest, VariableDomainsComeFromColumns) {
  auto schema = TestSchema();
  TableauQuery t = MakeTableau("Q(b, v) :- B(b, v).", *schema);
  EXPECT_TRUE(t.VariableDomain("b")->is_finite());
  EXPECT_TRUE(t.VariableDomain("v")->is_infinite());
}

TEST(TableauTest, InstantiateAndSummary) {
  auto schema = TestSchema();
  TableauQuery t = MakeTableau("Q(x) :- R(x, y), S(y), x != y.", *schema);
  Bindings mu;
  mu.Set("x", Value::Int(1));
  mu.Set("y", Value::Int(2));
  EXPECT_TRUE(t.IsValidValuation(mu));
  auto rows = t.Instantiate(mu);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
  auto summary = t.SummaryTuple(mu);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(*summary, Tuple::Ints({1}));
  // Violating the disequality invalidates the valuation.
  mu.Set("y", Value::Int(1));
  EXPECT_FALSE(t.IsValidValuation(mu));
}

TEST(TableauTest, RoundTripsToConjunctiveQuery) {
  auto schema = TestSchema();
  auto q = ParseConjunctiveQuery("Q(x) :- R(x, y), S(y), x != y.");
  ASSERT_TRUE(q.ok());
  auto t = TableauQuery::FromConjunctive(*q, *schema);
  ASSERT_TRUE(t.ok());
  ConjunctiveQuery back = t->ToConjunctive("Q");
  auto equivalent = CqEquivalent(*q, back, *schema);
  ASSERT_TRUE(equivalent.ok());
  EXPECT_TRUE(*equivalent);
}

TEST(HomomorphismTest, FindsMatchIntoInstance) {
  auto schema = TestSchema();
  Database db(schema);
  ASSERT_TRUE(db.Insert("R", Tuple::Ints({1, 2})).ok());
  ASSERT_TRUE(db.Insert("S", Tuple::Ints({2})).ok());
  TableauQuery t = MakeTableau("Q(x) :- R(x, y), S(y).", *schema);
  auto hom = FindHomomorphism(t, db);
  ASSERT_TRUE(hom.ok());
  ASSERT_TRUE(hom->has_value());
  EXPECT_EQ((*hom)->Get("x"), Value::Int(1));
  TableauQuery none = MakeTableau("Q(x) :- R(x, x).", *schema);
  auto no_hom = FindHomomorphism(none, db);
  ASSERT_TRUE(no_hom.ok());
  EXPECT_FALSE(no_hom->has_value());
}

TEST(ContainmentTest, ClassicProjectionContainment) {
  auto schema = TestSchema();
  auto q1 = ParseConjunctiveQuery("Q(x) :- R(x, y), S(y).");
  auto q2 = ParseConjunctiveQuery("Q(x) :- R(x, y).");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  auto forward = CqContained(*q1, *q2, *schema);
  ASSERT_TRUE(forward.ok());
  EXPECT_TRUE(*forward);  // extra atom ⇒ more restrictive
  auto backward = CqContained(*q2, *q1, *schema);
  ASSERT_TRUE(backward.ok());
  EXPECT_FALSE(*backward);
}

TEST(ContainmentTest, InequalityOnContainerSideNeedsIdentification) {
  auto schema = TestSchema();
  // Q1(x,y) :- R(x,y) is NOT contained in Q2(x,y) :- R(x,y), x != y:
  // the instance {R(a,a)} separates them. The naive freeze would miss
  // this; the identification-pattern path must catch it.
  auto q1 = ParseConjunctiveQuery("Q(x, y) :- R(x, y).");
  auto q2 = ParseConjunctiveQuery("Q(x, y) :- R(x, y), x != y.");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  auto contained = CqContained(*q1, *q2, *schema);
  ASSERT_TRUE(contained.ok());
  EXPECT_FALSE(*contained);
  auto reverse = CqContained(*q2, *q1, *schema);
  ASSERT_TRUE(reverse.ok());
  EXPECT_TRUE(*reverse);
}

TEST(ContainmentTest, ConstantsOnContainerSide) {
  auto schema = TestSchema();
  auto q1 = ParseConjunctiveQuery("Q(x) :- S(x).");
  auto q2 = ParseConjunctiveQuery("Q(x) :- S(x), x != 1.");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  auto contained = CqContained(*q1, *q2, *schema);
  ASSERT_TRUE(contained.ok());
  EXPECT_FALSE(*contained);  // {S(1)} separates
}

TEST(ContainmentTest, UnsatisfiableQueryContainedInEverything) {
  auto schema = TestSchema();
  auto q1 = ParseConjunctiveQuery("Q(x) :- S(x), x = 1, x = 2.");
  auto q2 = ParseConjunctiveQuery("Q(x) :- R(x, x).");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  auto contained = CqContained(*q1, *q2, *schema);
  ASSERT_TRUE(contained.ok());
  EXPECT_TRUE(*contained);
}

TEST(ContainmentTest, UnionContainment) {
  auto schema = TestSchema();
  auto q = ParseConjunctiveQuery("Q(x) :- S(x).");
  auto u = ParseUnionQuery("Q(x) :- S(x), x = 1.\nQ(x) :- S(x), x != 1.");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(u.ok());
  auto contained = CqContainedInUnion(*q, *u, *schema);
  ASSERT_TRUE(contained.ok());
  EXPECT_TRUE(*contained);  // the two disjuncts cover all of S
  auto u_in_q = UnionContained(*u, UnionQuery(*q), *schema);
  ASSERT_TRUE(u_in_q.ok());
  EXPECT_TRUE(*u_in_q);
}

TEST(ContainmentTest, RespectsVariableCap) {
  auto schema = TestSchema();
  // 13 distinct variables with a disequality forces the enumeration
  // path past the default cap of 12.
  std::string body = "Q() :- R(v0, v1), R(v2, v3), R(v4, v5), R(v6, v7), "
                     "R(v8, v9), R(v10, v11), S(v12), v0 != v1.";
  auto q1 = ParseConjunctiveQuery(body);
  auto q2 = ParseConjunctiveQuery("Q() :- R(x, y), x != y.");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  auto result = CqContained(*q1, *q2, *schema);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

// Containment decisions must agree with direct evaluation on random
// instances: if Q1 ⊆ Q2 then Q1(D) ⊆ Q2(D) for every sampled D, and if
// not contained, some sampled D often separates them (checked only in
// the sound direction).
class ContainmentPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ContainmentPropertyTest, ContainmentIsSoundOnRandomInstances) {
  Rng rng(GetParam());
  RandomInstanceOptions db_options;
  db_options.num_relations = 2;
  db_options.value_pool = 3;
  auto schema = RandomSchema(db_options, &rng);
  RandomCqOptions cq_options;
  cq_options.num_atoms = 2;
  cq_options.num_variables = 3;
  for (int i = 0; i < 5; ++i) {
    ConjunctiveQuery q1 = RandomCq(*schema, cq_options, &rng);
    ConjunctiveQuery q2 = RandomCq(*schema, cq_options, &rng);
    if (!q1.Validate(*schema).ok() || !q2.Validate(*schema).ok()) continue;
    if (q1.arity() != q2.arity()) continue;
    auto contained = CqContained(q1, q2, *schema);
    if (!contained.ok() || !*contained) continue;
    for (int d = 0; d < 5; ++d) {
      Database db = RandomDatabase(schema, db_options, &rng);
      auto a1 = EvalConjunctive(q1, db);
      auto a2 = EvalConjunctive(q2, db);
      ASSERT_TRUE(a1.ok());
      ASSERT_TRUE(a2.ok());
      EXPECT_TRUE(a1->IsSubsetOf(*a2))
          << q1.ToString() << "\n" << q2.ToString() << "\n" << db.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainmentPropertyTest,
                         ::testing::Range(1, 16));

TEST(SingleRelationTest, PreservesQueryAnswers) {
  auto schema = TestSchema();
  Database db(schema);
  ASSERT_TRUE(db.Insert("R", Tuple::Ints({1, 2})).ok());
  ASSERT_TRUE(db.Insert("R", Tuple::Ints({2, 3})).ok());
  ASSERT_TRUE(db.Insert("S", Tuple::Ints({2})).ok());
  auto enc = SingleRelationEncoding::Create(schema);
  ASSERT_TRUE(enc.ok());
  auto wide_db = enc->TransformDatabase(db);
  ASSERT_TRUE(wide_db.ok());
  EXPECT_EQ(wide_db->TotalTuples(), 3u);

  auto q = ParseConjunctiveQuery("Q(x) :- R(x, y), S(y), x != 3.");
  ASSERT_TRUE(q.ok());
  auto wide_q = enc->TransformQuery(*q);
  ASSERT_TRUE(wide_q.ok());
  auto original = EvalConjunctive(*q, db);
  auto transformed = EvalConjunctive(*wide_q, *wide_db);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(transformed.ok());
  EXPECT_EQ(*original, *transformed);
}

TEST(SingleRelationTest, Lemma32OnRandomInstances) {
  Rng rng(7);
  RandomInstanceOptions db_options;
  auto schema = RandomSchema(db_options, &rng);
  auto enc = SingleRelationEncoding::Create(schema);
  ASSERT_TRUE(enc.ok());
  RandomCqOptions cq_options;
  for (int i = 0; i < 20; ++i) {
    Database db = RandomDatabase(schema, db_options, &rng);
    ConjunctiveQuery q = RandomCq(*schema, cq_options, &rng);
    if (!q.Validate(*schema).ok()) continue;
    auto wide_db = enc->TransformDatabase(db);
    auto wide_q = enc->TransformQuery(q);
    ASSERT_TRUE(wide_db.ok());
    ASSERT_TRUE(wide_q.ok());
    auto original = EvalConjunctive(q, db);
    auto transformed = EvalConjunctive(*wide_q, *wide_db);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(transformed.ok());
    EXPECT_EQ(*original, *transformed) << q.ToString();
  }
}

TEST(SingleRelationTest, RejectsNameCollision) {
  auto schema = std::make_shared<Schema>();
  ASSERT_TRUE(schema->AddRelation("WideR", 1).ok());
  EXPECT_FALSE(SingleRelationEncoding::Create(schema).ok());
}

}  // namespace
}  // namespace relcomp
