#include <gtest/gtest.h>

#include "completeness/characterizations.h"
#include "completeness/rcdp.h"
#include "completeness/rcqp.h"
#include "constraints/integrity_constraints.h"
#include "query/parser.h"
#include "reductions/fixed_rcqp_family.h"
#include "workload/crm_scenario.h"
#include "workload/generators.h"

namespace relcomp {
namespace {

class CharacterizationsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db_schema = std::make_shared<Schema>();
    ASSERT_TRUE(db_schema->AddRelation("R", 2).ok());
    ASSERT_TRUE(db_schema
                    ->AddRelation(RelationSchema(
                        "B", {AttributeDef::Over("b", Domain::Boolean())}))
                    .ok());
    db_schema_ = db_schema;
    auto master_schema = std::make_shared<Schema>();
    ASSERT_TRUE(master_schema->AddRelation("M", 1).ok());
    master_schema_ = master_schema;
    db_ = Database(db_schema_);
    master_ = Database(master_schema_);
  }

  std::shared_ptr<const Schema> db_schema_;
  std::shared_ptr<const Schema> master_schema_;
  Database db_;
  Database master_;
};

TEST_F(CharacterizationsTest, C1ForEmptyAnswer) {
  // Q(x) :- R(x, x); D = ∅; V = ∅: C1 fails (extensions can answer).
  auto q = ParseQuery("Q(x) :- R(x, x).", QueryLanguage::kCq);
  ASSERT_TRUE(q.ok());
  ConstraintSet none;
  auto report = CheckBoundedDatabase(*q, db_, master_, none);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->condition, "C1");
  EXPECT_FALSE(report->bounded);
  ASSERT_TRUE(report->violating_valuation.has_value());

  // Blocking all R tuples via an empty-master IND makes C1 hold.
  ConstraintSet v;
  auto ind = MakeIndToMaster(*db_schema_, "R", {0}, "M", {0});
  ASSERT_TRUE(ind.ok());
  v.Add(*ind);
  auto bounded = CheckBoundedDatabase(*q, db_, master_, v);
  ASSERT_TRUE(bounded.ok());
  EXPECT_TRUE(bounded->bounded);
  EXPECT_EQ(bounded->condition, "C3");  // IND specialization kicks in
}

TEST_F(CharacterizationsTest, C2ForNonemptyAnswer) {
  ASSERT_TRUE(master_.Insert("M", Tuple::Ints({1})).ok());
  ASSERT_TRUE(db_.Insert("R", Tuple::Ints({1, 5})).ok());
  ConstraintSet none;
  auto q = ParseQuery("Q(x) :- R(x, y).", QueryLanguage::kCq);
  ASSERT_TRUE(q.ok());
  auto report = CheckBoundedDatabase(*q, db_, master_, none);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->condition, "C2");
  EXPECT_FALSE(report->bounded);
}

TEST_F(CharacterizationsTest, AgreesWithDeciderOnCrmWorkloads) {
  auto crm = CrmScenario::Make();
  ASSERT_TRUE(crm.ok());
  auto phi1 = crm->Phi1(2);
  ASSERT_TRUE(phi1.ok());
  ConstraintSet v;
  v.Add(*phi1);
  for (auto query : {crm->Q2(), crm->Q4()}) {
    ASSERT_TRUE(query.ok());
    auto decided = DecideRcdp(*query, crm->db(), crm->master(), v);
    ASSERT_TRUE(decided.ok()) << decided.status().ToString();
    auto characterized =
        CheckBoundedDatabase(*query, crm->db(), crm->master(), v);
    ASSERT_TRUE(characterized.ok()) << characterized.status().ToString();
    EXPECT_EQ(decided->complete, characterized->bounded)
        << query->ToString();
  }
}

TEST_F(CharacterizationsTest, AgreesWithDeciderOnRandomInstances) {
  Rng rng(41);
  RandomInstanceOptions db_options;
  db_options.num_relations = 1;
  db_options.min_arity = 2;
  db_options.max_arity = 2;
  db_options.value_pool = 2;
  db_options.tuples_per_relation = 2;
  auto schema = RandomSchema(db_options, &rng);
  auto master_schema = std::make_shared<Schema>();
  ASSERT_TRUE(master_schema->AddRelation("M", 1).ok());
  RandomCqOptions cq_options;
  cq_options.num_atoms = 2;
  cq_options.num_variables = 2;
  cq_options.num_head_terms = 1;

  int checked = 0;
  for (int attempt = 0; attempt < 40 && checked < 8; ++attempt) {
    Database db = RandomDatabase(schema, db_options, &rng);
    Database master(master_schema);
    master.InsertUnchecked("M", Tuple::Ints({0}));
    auto constraints =
        RandomIndConstraints(*schema, *master_schema, 1, &rng);
    ASSERT_TRUE(constraints.ok());
    ConjunctiveQuery cq = RandomCq(*schema, cq_options, &rng);
    if (!cq.Validate(*schema).ok()) continue;
    AnyQuery q = AnyQuery::Cq(cq);
    auto closed = Satisfies(*constraints, db, master);
    ASSERT_TRUE(closed.ok());
    if (!*closed) continue;
    auto decided = DecideRcdp(q, db, master, *constraints);
    ASSERT_TRUE(decided.ok());
    auto characterized = CheckBoundedDatabase(q, db, master, *constraints);
    ASSERT_TRUE(characterized.ok());
    EXPECT_EQ(decided->complete, characterized->bounded)
        << cq.ToString() << "\n" << db.ToString();
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST_F(CharacterizationsTest, E1DetectsFiniteHeads) {
  auto finite = ParseQuery("Q(b) :- B(b).", QueryLanguage::kCq);
  auto infinite = ParseQuery("Q(x) :- R(x, y).", QueryLanguage::kCq);
  ASSERT_TRUE(finite.ok());
  ASSERT_TRUE(infinite.ok());
  auto yes = CheckAllHeadVariablesFinite(*finite, *db_schema_);
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(yes->bounded);
  EXPECT_EQ(yes->condition, "E1");
  auto no = CheckAllHeadVariablesFinite(*infinite, *db_schema_);
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(no->bounded);
}

TEST_F(CharacterizationsTest, E3E4MatchesRcqpIndVerdict) {
  ASSERT_TRUE(master_.Insert("M", Tuple::Ints({1})).ok());
  ConstraintSet v;
  auto ind = MakeIndToMaster(*db_schema_, "R", {0}, "M", {0});
  ASSERT_TRUE(ind.ok());
  v.Add(*ind);
  auto bounded_q = ParseQuery("Q(x) :- R(x, y).", QueryLanguage::kCq);
  auto unbounded_q = ParseQuery("Q(y) :- R(x, y).", QueryLanguage::kCq);
  ASSERT_TRUE(bounded_q.ok());
  ASSERT_TRUE(unbounded_q.ok());

  auto b = CheckIndBoundedQuery(*bounded_q, v, *db_schema_);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->bounded);
  auto u = CheckIndBoundedQuery(*unbounded_q, v, *db_schema_);
  ASSERT_TRUE(u.ok());
  EXPECT_FALSE(u->bounded);

  // Cross-check with the full decider.
  auto exists = DecideRcqp(*bounded_q, db_schema_, master_, v);
  auto not_exists = DecideRcqp(*unbounded_q, db_schema_, master_, v);
  ASSERT_TRUE(exists.ok());
  ASSERT_TRUE(not_exists.ok());
  EXPECT_TRUE(exists->exists);
  EXPECT_FALSE(not_exists->exists);
}

TEST_F(CharacterizationsTest, E2AcceptsTheFixedFamilyWitness) {
  // The Prop 4.2 content on a real instance: the ∃∀ family's witness
  // database is E2-bounding exactly when ∀W φ(χ) holds.
  Rng rng(5);
  FixedRcqpFamilyInstance instance;
  instance.nx = 1;
  instance.nw = 1;
  instance.formula.num_vars = 2;
  // φ = (x0 | w0) & (x0 | !w0): ∀w φ(1), but not ∀w φ(0).
  instance.formula.clauses = {{{0, false}, {1, false}},
                              {{0, false}, {1, true}}};
  auto encoded = EncodeFixedRcqpFamily(instance);
  ASSERT_TRUE(encoded.ok());

  auto good = BuildFixedFamilyWitness(instance, {true}, *encoded);
  ASSERT_TRUE(good.ok());
  auto good_e2 = CheckBoundingDatabaseE2(encoded->query, *good,
                                         encoded->master,
                                         encoded->constraints);
  ASSERT_TRUE(good_e2.ok()) << good_e2.status().ToString();
  EXPECT_TRUE(*good_e2);

  auto bad = BuildFixedFamilyWitness(instance, {false}, *encoded);
  ASSERT_TRUE(bad.ok());
  auto bad_e2 = CheckBoundingDatabaseE2(encoded->query, *bad,
                                        encoded->master,
                                        encoded->constraints);
  ASSERT_TRUE(bad_e2.ok());
  EXPECT_FALSE(*bad_e2);
}

TEST_F(CharacterizationsTest, E2RejectsNonClosedCandidates) {
  // A candidate that itself violates V is never E2-bounding.
  ConstraintSet v;
  auto ind = MakeIndToMaster(*db_schema_, "R", {0}, "M", {0});
  ASSERT_TRUE(ind.ok());
  v.Add(*ind);
  Database dv(db_schema_);
  ASSERT_TRUE(dv.Insert("R", Tuple::Ints({9, 9})).ok());  // 9 ∉ M
  auto q = ParseQuery("Q(x) :- R(x, y).", QueryLanguage::kCq);
  ASSERT_TRUE(q.ok());
  auto e2 = CheckBoundingDatabaseE2(*q, dv, master_, v);
  ASSERT_TRUE(e2.ok());
  EXPECT_FALSE(*e2);
}

}  // namespace
}  // namespace relcomp
