#include <gtest/gtest.h>

#include "util/status.h"
#include "util/str.h"
#include "util/table_printer.h"

namespace relcomp {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.ToString(), "INVALID_ARGUMENT: bad arity");
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = Status::NotFound("missing");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

Result<int> Halve(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  RELCOMP_ASSIGN_OR_RETURN(int half, Halve(x));
  return Halve(half);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
}

TEST(StrTest, StrCatAndJoin) {
  EXPECT_EQ(StrCat("a", 1, "b"), "a1b");
  std::vector<std::string> parts = {"x", "y"};
  EXPECT_EQ(StrJoin(parts, ", "), "x, y");
}

TEST(StrTest, SplitAndTrim) {
  auto parts = SplitAndTrim(" a, b ,, c ", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StrTest, ParseInt64) {
  int64_t out = 0;
  EXPECT_TRUE(ParseInt64("-42", &out));
  EXPECT_EQ(out, -42);
  EXPECT_FALSE(ParseInt64("12x", &out));
  EXPECT_FALSE(ParseInt64("", &out));
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter printer({"name", "value"});
  printer.AddRow({"x", "1"});
  printer.AddRow({"longer", "22"});
  std::string table = printer.ToString();
  EXPECT_NE(table.find("| name   | value |"), std::string::npos);
  EXPECT_NE(table.find("| longer | 22    |"), std::string::npos);
}

}  // namespace
}  // namespace relcomp
