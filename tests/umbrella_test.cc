#include <gtest/gtest.h>

#include "relcomp.h"

namespace relcomp {
namespace {

// The umbrella header must be self-contained and expose the whole
// public API; this test exercises one symbol from each layer.
TEST(UmbrellaHeaderTest, ExposesThePublicApi) {
  Value v = Value::Int(1);
  EXPECT_TRUE(Domain::Boolean()->Contains(v));
  auto q = ParseConjunctiveQuery("Q(x) :- R(x).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(AnyQuery::Cq(*q).language(), QueryLanguage::kCq);
  EXPECT_EQ(RcdpOptions().prune, true);
  EXPECT_EQ(RcqpOptions().max_chase_rounds, 32u);
  EXPECT_EQ(BruteForceOptions().extra_fresh, 2u);
}

}  // namespace
}  // namespace relcomp
