#include <gtest/gtest.h>

#include <optional>
#include <stop_token>

#include "completeness/active_domain.h"
#include "completeness/rcdp.h"
#include "completeness/rcqp.h"
#include "completeness/valuation_search.h"
#include "constraints/constraint_check.h"
#include "constraints/integrity_constraints.h"
#include "query/parser.h"
#include "workload/generators.h"

namespace relcomp {
namespace {

/// The parallel valuation search must be invisible: for every thread
/// count the RCDP verdict, the counterexample Δ and the new answer
/// tuple are bit-for-bit those of the serial search (lowest-work-unit
/// winner resolution over contiguous rank shards). These sweeps check
/// that on randomized instances, across both constraint-check paths
/// (IND fast path and delta sessions).

std::string DeltaKey(const RcdpResult& r) {
  if (!r.counterexample_delta.has_value()) return "<none>";
  return r.counterexample_delta->ToString();
}

std::string AnswerKey(const RcdpResult& r) {
  if (!r.new_answer.has_value()) return "<none>";
  return r.new_answer->ToString();
}

void ExpectSameDecision(const RcdpResult& serial, const RcdpResult& parallel,
                        size_t threads, const std::string& context) {
  EXPECT_EQ(serial.complete, parallel.complete)
      << "threads=" << threads << "\n" << context;
  EXPECT_EQ(DeltaKey(serial), DeltaKey(parallel))
      << "threads=" << threads << "\n" << context;
  EXPECT_EQ(AnswerKey(serial), AnswerKey(parallel))
      << "threads=" << threads << "\n" << context;
  // Each work unit re-binds its shard prefix and cancelled units do
  // partial work, so the parallel step count bounds the serial one
  // from above (no budget in play here).
  EXPECT_GE(parallel.stats.bindings_tried, serial.stats.bindings_tried)
      << "threads=" << threads << "\n" << context;
}

class ParallelDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelDeterminismTest, RcdpAgreesAcrossThreadCounts) {
  Rng rng(GetParam() * 271);
  RandomInstanceOptions db_options;
  db_options.num_relations = 1;
  db_options.min_arity = 2;
  db_options.max_arity = 2;
  db_options.value_pool = 3;
  db_options.tuples_per_relation = 3;
  auto db_schema = RandomSchema(db_options, &rng);
  auto master_schema = std::make_shared<Schema>();
  ASSERT_TRUE(master_schema->AddRelation("M", 1).ok());

  RandomCqOptions cq_options;
  cq_options.num_atoms = 2;
  cq_options.num_variables = 3;
  cq_options.num_head_terms = 1;
  cq_options.value_pool = 3;

  int checked = 0;
  for (int attempt = 0; attempt < 40 && checked < 5; ++attempt) {
    Database db = RandomDatabase(db_schema, db_options, &rng);
    Database master(master_schema);
    std::uniform_int_distribution<int64_t> value(0, 3);
    for (int i = 0; i < 2; ++i) {
      master.InsertUnchecked("M", Tuple({Value::Int(value(rng))}));
    }
    auto constraints = RandomIndConstraints(*db_schema, *master_schema,
                                            1, &rng);
    ASSERT_TRUE(constraints.ok());
    ConjunctiveQuery cq = RandomCq(*db_schema, cq_options, &rng);
    if (!cq.Validate(*db_schema).ok()) continue;
    AnyQuery q = AnyQuery::Cq(cq);
    auto closed = Satisfies(*constraints, db, master);
    ASSERT_TRUE(closed.ok());
    if (!*closed) continue;
    std::string context = cq.ToString() + "\n" + db.ToString();

    // Both constraint-check paths: the Corollary 3.4 IND fast path
    // (per-worker overlay over ∅) and delta-checker sessions
    // (per-worker session state).
    for (bool fast_path : {true, false}) {
      RcdpOptions serial_options;
      serial_options.ind_fast_path = fast_path;
      serial_options.num_threads = 1;
      auto serial = DecideRcdp(q, db, master, *constraints, serial_options);
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();
      for (size_t threads : {size_t{2}, size_t{8}}) {
        RcdpOptions parallel_options = serial_options;
        parallel_options.num_threads = threads;
        auto parallel =
            DecideRcdp(q, db, master, *constraints, parallel_options);
        ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
        ExpectSameDecision(*serial, *parallel, threads, context);
      }
    }
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST_P(ParallelDeterminismTest, RcqpAgreesAcrossThreadCounts) {
  Rng rng(GetParam() * 397);
  RandomInstanceOptions db_options;
  db_options.num_relations = 1;
  db_options.min_arity = 2;
  db_options.max_arity = 2;
  auto db_schema = RandomSchema(db_options, &rng);
  auto master_schema = std::make_shared<Schema>();
  ASSERT_TRUE(master_schema->AddRelation("M", 1).ok());

  RandomCqOptions cq_options;
  cq_options.num_atoms = 2;
  cq_options.num_variables = 2;
  cq_options.num_head_terms = 1;
  cq_options.value_pool = 2;

  int checked = 0;
  for (int attempt = 0; attempt < 30 && checked < 4; ++attempt) {
    Database master(master_schema);
    std::uniform_int_distribution<int64_t> value(0, 2);
    master.InsertUnchecked("M", Tuple({Value::Int(value(rng))}));
    auto constraints =
        RandomIndConstraints(*db_schema, *master_schema, 1, &rng);
    ASSERT_TRUE(constraints.ok());
    ConjunctiveQuery cq = RandomCq(*db_schema, cq_options, &rng);
    if (!cq.Validate(*db_schema).ok()) continue;
    AnyQuery q = AnyQuery::Cq(cq);

    RcqpOptions serial_options;
    serial_options.rcdp.num_threads = 1;
    auto serial = DecideRcqp(q, db_schema, master, *constraints,
                             serial_options);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (size_t threads : {size_t{2}, size_t{8}}) {
      RcqpOptions parallel_options;
      parallel_options.rcdp.num_threads = threads;
      auto parallel = DecideRcqp(q, db_schema, master, *constraints,
                                 parallel_options);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      EXPECT_EQ(serial->exists, parallel->exists)
          << "threads=" << threads << "\n" << cq.ToString();
      EXPECT_EQ(serial->method, parallel->method)
          << "threads=" << threads << "\n" << cq.ToString();
      EXPECT_EQ(serial->witness.has_value(), parallel->witness.has_value())
          << "threads=" << threads << "\n" << cq.ToString();
      if (serial->witness.has_value() && parallel->witness.has_value()) {
        EXPECT_EQ(serial->witness->ToString(), parallel->witness->ToString())
            << "threads=" << threads << "\n" << cq.ToString();
      }
    }
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminismTest,
                         ::testing::Range(1, 7));

/// The shared binding budget: with num_threads > 1 the cap is one
/// atomic counter across all workers, so a tiny budget must surface
/// kResourceExhausted no matter how the units are scheduled — and must
/// stop every worker (the search returns promptly instead of running
/// the full space).
TEST(ParallelBudgetTest, SharedBudgetExhaustsAcrossWorkers) {
  auto db_schema = std::make_shared<Schema>();
  ASSERT_TRUE(db_schema->AddRelation("S", 2).ok());
  auto master_schema = std::make_shared<Schema>();
  ASSERT_TRUE(master_schema->AddRelation("M", 1).ok());
  Database db(db_schema);
  for (int64_t i = 0; i < 4; ++i) {
    db.InsertUnchecked("S", Tuple({Value::Int(i), Value::Int(i + 1)}));
  }
  Database master(master_schema);
  for (int64_t i = 0; i < 8; ++i) {
    master.InsertUnchecked("M", Tuple({Value::Int(i)}));
  }
  ConstraintSet v;
  auto ind = MakeIndToMaster(*db_schema, "S", {0}, "M", {0});
  ASSERT_TRUE(ind.ok());
  v.Add(*ind);
  auto q = ParseQuery("Q(x, y) :- S(x, y).", QueryLanguage::kCq);
  ASSERT_TRUE(q.ok());

  // Sanity: without a budget the instance decides (incomplete — fresh
  // M-backed tuples extend the answer).
  RcdpOptions unbounded;
  unbounded.num_threads = 8;
  auto decided = DecideRcdp(*q, db, master, v, unbounded);
  ASSERT_TRUE(decided.ok()) << decided.status().ToString();

  RcdpOptions bounded;
  bounded.num_threads = 8;
  bounded.max_bindings = 3;
  auto exhausted = DecideRcdp(*q, db, master, v, bounded);
  // The counterexample may be found within the budget (the serial-first
  // winner sits in unit 0); otherwise the shared cap must surface as a
  // kUnknown verdict with a resume checkpoint, never as a wrong verdict
  // or a hang.
  ASSERT_TRUE(exhausted.ok()) << exhausted.status().ToString();
  EXPECT_FALSE(exhausted->complete);
  if (exhausted->verdict == Verdict::kUnknown) {
    EXPECT_TRUE(exhausted->exhaustion.exhausted());
    EXPECT_TRUE(exhausted->checkpoint.has_value());
  } else {
    EXPECT_EQ(exhausted->verdict, Verdict::kIncomplete);
  }
}

/// Cooperative cancellation: an enumerator whose stop token is already
/// triggered aborts with kCancelled before delivering any valuation —
/// the mechanism the driver uses to halt workers on later units once a
/// winner is known.
TEST(ParallelBudgetTest, TriggeredStopTokenCancelsEnumeration) {
  auto db_schema = std::make_shared<Schema>();
  ASSERT_TRUE(db_schema->AddRelation("S", 1).ok());
  auto q = ParseQuery("Q(x) :- S(x).", QueryLanguage::kCq);
  ASSERT_TRUE(q.ok());
  auto tableau =
      TableauQuery::FromConjunctive(*q.value().as_cq(), *db_schema);
  ASSERT_TRUE(tableau.ok());
  ActiveDomain adom =
      ActiveDomain::Build({Value::Int(1), Value::Int(2)}, 1);

  std::stop_source stop;
  stop.request_stop();
  ValuationEnumerator::Options options;
  options.stop = stop.get_token();
  ValuationEnumerator enumerator(&*tableau, &adom, options);
  size_t delivered = 0;
  Status st = enumerator.Enumerate(nullptr, [&](const Bindings&) {
    ++delivered;
    return true;
  });
  EXPECT_EQ(st.code(), StatusCode::kCancelled) << st.ToString();
  EXPECT_EQ(delivered, 0u);
}

}  // namespace
}  // namespace relcomp
