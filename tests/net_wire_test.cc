#include "net/wire.h"

#include <gtest/gtest.h>

#include <string>

#include "util/str.h"

namespace relcomp {
namespace {

/// Pushes `data` through a fresh decoder and returns what Next said.
Result<bool> DecodeOnce(std::string_view data, std::string* payload,
                        size_t max_payload = kDefaultMaxFramePayload) {
  FrameDecoder decoder(max_payload);
  decoder.Feed(data);
  return decoder.Next(payload);
}

WireReply FullReply() {
  WireReply reply;
  reply.code = StatusCode::kResourceExhausted;
  reply.message = "queue full: 64 jobs in flight";
  reply.retry_after_ms = 50;
  reply.state = WireJobState::kDone;
  reply.verdict = Verdict::kIncomplete;
  reply.evidence = "INCOMPLETE|S = {(\"5\", \"6\")}\n|(\"5\")";
  reply.attempts = 3;
  reply.persisted = 7;
  reply.exhaustion = "deadline after 42 decision points";
  return reply;
}

// ---------------------------------------------------------------------------
// Frame layer: round trips.

TEST(NetWireFrameTest, RoundTripsArbitraryPayloads) {
  for (const std::string payload :
       {std::string(""), std::string("hello"),
        std::string("binary\x00\xff\n\r bytes", 17),
        std::string(100000, 'x')}) {
    std::string frame = EncodeFrame(payload);
    EXPECT_EQ(frame.size(), payload.size() + kFrameOverhead);
    std::string out;
    auto next = DecodeOnce(frame, &out);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    ASSERT_TRUE(*next);
    EXPECT_EQ(out, payload);
  }
}

TEST(NetWireFrameTest, DecodesByteAtATimeAndBackToBack) {
  // Frames split at every possible chunk boundary, then two frames in
  // one buffer — the decoder must be agnostic to how TCP segments the
  // stream.
  const std::string a = EncodeFrame("first message");
  const std::string b = EncodeFrame("second");
  FrameDecoder decoder;
  std::string payload;
  for (char c : a) {
    decoder.Feed(std::string_view(&c, 1));
  }
  auto next = decoder.Next(&payload);
  ASSERT_TRUE(next.ok() && *next);
  EXPECT_EQ(payload, "first message");

  decoder.Feed(StrCat(b, a));
  next = decoder.Next(&payload);
  ASSERT_TRUE(next.ok() && *next);
  EXPECT_EQ(payload, "second");
  next = decoder.Next(&payload);
  ASSERT_TRUE(next.ok() && *next);
  EXPECT_EQ(payload, "first message");
  next = decoder.Next(&payload);
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(*next);
  EXPECT_EQ(decoder.buffered(), 0u);
}

// ---------------------------------------------------------------------------
// Frame layer: hostile input. Truncation at every byte, a flip at
// every position, lying length prefixes, version skew — none may
// crash, and none may surface a corrupted payload as valid.

TEST(NetWireHostileTest, TruncationAtEveryByteNeverYieldsAFrame) {
  const std::string frame = EncodeFrame("the payload under truncation");
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    std::string payload;
    auto next = DecodeOnce(frame.substr(0, cut), &payload);
    ASSERT_TRUE(next.ok()) << "cut at " << cut << ": "
                           << next.status().ToString();
    EXPECT_FALSE(*next) << "truncated frame decoded at cut " << cut;
  }
}

TEST(NetWireHostileTest, BitFlipAtEveryPositionIsRejectedOrIncomplete) {
  const std::string frame = EncodeFrame("the payload under bit flips");
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit : {0, 3, 7}) {
      std::string flipped = frame;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      std::string payload;
      auto next = DecodeOnce(flipped, &payload);
      // A flip lands in the magic (typed error), the length (cap
      // error, or a longer declared length = incomplete frame), the
      // payload, or the CRC (both a crc mismatch). No outcome may be a
      // successfully decoded frame.
      if (next.ok()) {
        EXPECT_FALSE(*next) << "flip at byte " << byte << " bit " << bit
                            << " produced a valid frame";
      } else {
        EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
      }
    }
  }
}

TEST(NetWireHostileTest, PayloadFlipIsACrcMismatchSpecifically) {
  std::string frame = EncodeFrame("payload whose bytes get injured");
  frame[kFrameHeaderSize + 4] ^= 0x10;
  std::string payload;
  auto next = DecodeOnce(frame, &payload);
  ASSERT_FALSE(next.ok());
  EXPECT_NE(next.status().message().find("crc"), std::string::npos)
      << next.status().ToString();
}

TEST(NetWireHostileTest, OversizedLengthPrefixIsRejectedBeforeAllocation) {
  // Header declaring a 4 GiB payload: must be a typed error the moment
  // the header is readable, not a 4 GiB allocation attempt.
  std::string hostile(kFrameMagic, sizeof(kFrameMagic));
  hostile += std::string("\xff\xff\xff\xff", 4);
  std::string payload;
  auto next = DecodeOnce(hostile, &payload);
  ASSERT_FALSE(next.ok());
  EXPECT_NE(next.status().message().find("exceeds"), std::string::npos);

  // A length just over a small receiver cap is equally rejected even
  // though the default cap would admit it.
  const std::string frame = EncodeFrame(std::string(100, 'x'));
  auto capped = DecodeOnce(frame, &payload, /*max_payload=*/64);
  ASSERT_FALSE(capped.ok());
}

TEST(NetWireHostileTest, VersionSkewInTheMagicIsRejected) {
  std::string frame = EncodeFrame("future payload");
  frame[3] = '2';  // RNF2: a future frame format
  std::string payload;
  auto next = DecodeOnce(frame, &payload);
  ASSERT_FALSE(next.ok());
  EXPECT_NE(next.status().message().find("magic"), std::string::npos);
}

TEST(NetWireHostileTest, FrameDefectsAreSticky) {
  FrameDecoder decoder;
  std::string garbage = "GARBAGE!";
  garbage += EncodeFrame("never reached");
  decoder.Feed(garbage);
  std::string payload;
  ASSERT_FALSE(decoder.Next(&payload).ok());
  // Even a pristine frame after the defect must not decode: the stream
  // position is untrustworthy, the connection must be closed.
  decoder.Feed(EncodeFrame("still poisoned"));
  auto again = decoder.Next(&payload);
  ASSERT_FALSE(again.ok());
  EXPECT_NE(again.status().message().find("poisoned"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Message layer: round trips.

TEST(NetWireMessageTest, RequestsRoundTripForEveryOp) {
  WireRequest submit;
  submit.op = WireOp::kSubmit;
  submit.key = "client-42.job_7";
  submit.job = "payload with spaces\nand a newline: 17";
  for (const WireRequest& req :
       {submit, WireRequest{WireOp::kPoll, "k", ""},
        WireRequest{WireOp::kCancel, "k", ""},
        WireRequest{WireOp::kStatus, "", ""}}) {
    auto parsed = WireRequest::Deserialize(req.Serialize());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->op, req.op);
    EXPECT_EQ(parsed->key, req.key);
    EXPECT_EQ(parsed->job, req.job);
  }
}

TEST(NetWireMessageTest, RepliesRoundTripWithEveryFieldPopulated) {
  const WireReply reply = FullReply();
  auto parsed = WireReply::Deserialize(reply.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->code, reply.code);
  EXPECT_EQ(parsed->message, reply.message);
  EXPECT_EQ(parsed->retry_after_ms, reply.retry_after_ms);
  EXPECT_EQ(parsed->state, reply.state);
  EXPECT_EQ(parsed->verdict, reply.verdict);
  EXPECT_EQ(parsed->evidence, reply.evidence);
  EXPECT_EQ(parsed->attempts, reply.attempts);
  EXPECT_EQ(parsed->persisted, reply.persisted);
  EXPECT_EQ(parsed->exhaustion, reply.exhaustion);
  EXPECT_FALSE(parsed->ToStatus().ok());
  EXPECT_EQ(parsed->ToStatus().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Message layer: hostile input, mirroring the checkpoint-store corpus.

TEST(NetWireHostileTest, RequestTruncationAtEveryByteIsRejected) {
  WireRequest req;
  req.op = WireOp::kSubmit;
  req.key = "key-1";
  req.job = "job body with spaces";
  const std::string valid = req.Serialize();
  for (size_t cut = 0; cut < valid.size(); ++cut) {
    auto parsed = WireRequest::Deserialize(valid.substr(0, cut));
    EXPECT_FALSE(parsed.ok()) << "truncation at " << cut << " parsed";
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(NetWireHostileTest, ReplyTruncationAtEveryByteIsRejected) {
  const std::string valid = FullReply().Serialize();
  for (size_t cut = 0; cut < valid.size(); ++cut) {
    auto parsed = WireReply::Deserialize(valid.substr(0, cut));
    EXPECT_FALSE(parsed.ok()) << "truncation at " << cut << " parsed";
  }
}

TEST(NetWireHostileTest, RequestBitFlipsNeverCrashTheParser) {
  WireRequest req;
  req.op = WireOp::kPoll;
  req.key = "poll-key";
  const std::string valid = req.Serialize();
  for (size_t byte = 0; byte < valid.size(); ++byte) {
    for (int bit : {0, 5}) {
      std::string flipped = valid;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      // Either rejected, or accepted as a (different) well-formed
      // request — a flip inside the key body is not detectable at this
      // layer (the frame CRC catches it in transit); the parser just
      // must never crash or read out of bounds.
      auto parsed = WireRequest::Deserialize(flipped);
      if (!parsed.ok()) {
        EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
      }
    }
  }
}

TEST(NetWireHostileTest, ReplyBitFlipsNeverCrashTheParser) {
  const std::string valid = FullReply().Serialize();
  for (size_t byte = 0; byte < valid.size(); ++byte) {
    std::string flipped = valid;
    flipped[byte] = static_cast<char>(flipped[byte] ^ 0x20);
    auto parsed = WireReply::Deserialize(flipped);
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(NetWireHostileTest, LyingSegmentLengthsAreRejected) {
  // Declared length larger than the remaining bytes.
  auto oversized = WireRequest::Deserialize(
      "relcomp-net/1 req poll 100:short0:");
  EXPECT_FALSE(oversized.ok());
  // Declared length that would swallow the next segment's framing.
  auto swallowing = WireRequest::Deserialize(
      "relcomp-net/1 req submit 3:key9999999999:job");
  EXPECT_FALSE(swallowing.ok());
  // A length field that overflows uint64.
  auto overflow = WireRequest::Deserialize(
      StrCat("relcomp-net/1 req poll 99999999999999999999999:x0:"));
  EXPECT_FALSE(overflow.ok());
}

TEST(NetWireHostileTest, MessageVersionSkewIsRejected) {
  auto req = WireRequest::Deserialize("relcomp-net/2 req poll 1:k0:");
  ASSERT_FALSE(req.ok());
  EXPECT_NE(req.status().message().find("magic"), std::string::npos);
  auto rep = WireReply::Deserialize(
      "relcomp-net/2 rep ok 0 none unknown 0 0 0:0:0:");
  EXPECT_FALSE(rep.ok());
}

TEST(NetWireHostileTest, TrailingBytesAreRejected) {
  WireRequest req;
  req.op = WireOp::kPoll;
  req.key = "k";
  EXPECT_FALSE(WireRequest::Deserialize(req.Serialize() + "x").ok());
  EXPECT_FALSE(WireReply::Deserialize(FullReply().Serialize() + " ").ok());
}

TEST(NetWireHostileTest, RoleAndOpConfusionIsRejected) {
  // A reply fed to the request parser (and vice versa).
  EXPECT_FALSE(WireRequest::Deserialize(FullReply().Serialize()).ok());
  WireRequest req;
  req.op = WireOp::kPoll;
  req.key = "k";
  EXPECT_FALSE(WireReply::Deserialize(req.Serialize()).ok());
  // Unknown op; status with a key; poll carrying a job payload.
  EXPECT_FALSE(
      WireRequest::Deserialize("relcomp-net/1 req destroy 1:k0:").ok());
  EXPECT_FALSE(
      WireRequest::Deserialize("relcomp-net/1 req status 1:k0:").ok());
  EXPECT_FALSE(
      WireRequest::Deserialize("relcomp-net/1 req poll 1:k3:job").ok());
}

TEST(NetWireHostileTest, EmptyAndGarbageInputsAreRejected) {
  for (const std::string input :
       {std::string(""), std::string(" "), std::string("\n"),
        std::string("relcomp-net/1"), std::string("relcomp-net/1 "),
        std::string("relcomp-net/1 req"),
        std::string(200, '\xff'), std::string(200, ' ')}) {
    EXPECT_FALSE(WireRequest::Deserialize(input).ok());
    EXPECT_FALSE(WireReply::Deserialize(input).ok());
  }
}

// ---------------------------------------------------------------------------
// Fault-plan addressing.

TEST(NetWireFaultPlanTest, FiresMatchOrdinalAndPeriod) {
  SocketFaultPlan once;
  once.kind = SocketFaultPlan::Kind::kReset;
  once.at = 3;
  EXPECT_FALSE(once.Fires(2));
  EXPECT_TRUE(once.Fires(3));
  EXPECT_FALSE(once.Fires(4));

  SocketFaultPlan periodic;
  periodic.kind = SocketFaultPlan::Kind::kBitFlip;
  periodic.every = 2;
  EXPECT_FALSE(periodic.Fires(1));
  EXPECT_TRUE(periodic.Fires(2));
  EXPECT_TRUE(periodic.Fires(4));

  SocketFaultPlan off;
  off.at = 1;  // kind is kNone: never fires
  EXPECT_FALSE(off.Fires(1));
  EXPECT_FALSE(off.active());
}

}  // namespace
}  // namespace relcomp
