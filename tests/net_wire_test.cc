#include "net/wire.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "net/compress.h"
#include "util/blake2s.h"
#include "util/str.h"

namespace relcomp {
namespace {

/// Pushes `data` through a fresh decoder and returns what Next said.
Result<bool> DecodeOnce(std::string_view data, std::string* payload,
                        size_t max_payload = kDefaultMaxFramePayload) {
  FrameDecoder decoder(max_payload);
  decoder.Feed(data);
  return decoder.Next(payload);
}

WireReply FullReply() {
  WireReply reply;
  reply.code = StatusCode::kResourceExhausted;
  reply.message = "queue full: 64 jobs in flight";
  reply.retry_after_ms = 50;
  reply.state = WireJobState::kDone;
  reply.verdict = Verdict::kIncomplete;
  reply.evidence = "INCOMPLETE|S = {(\"5\", \"6\")}\n|(\"5\")";
  reply.attempts = 3;
  reply.persisted = 7;
  reply.exhaustion = "deadline after 42 decision points";
  return reply;
}

// ---------------------------------------------------------------------------
// Frame layer: round trips.

TEST(NetWireFrameTest, RoundTripsArbitraryPayloads) {
  for (const std::string payload :
       {std::string(""), std::string("hello"),
        std::string("binary\x00\xff\n\r bytes", 17),
        std::string(100000, 'x')}) {
    std::string frame = EncodeFrame(payload);
    EXPECT_EQ(frame.size(), payload.size() + kFrameOverhead);
    std::string out;
    auto next = DecodeOnce(frame, &out);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    ASSERT_TRUE(*next);
    EXPECT_EQ(out, payload);
  }
}

TEST(NetWireFrameTest, DecodesByteAtATimeAndBackToBack) {
  // Frames split at every possible chunk boundary, then two frames in
  // one buffer — the decoder must be agnostic to how TCP segments the
  // stream.
  const std::string a = EncodeFrame("first message");
  const std::string b = EncodeFrame("second");
  FrameDecoder decoder;
  std::string payload;
  for (char c : a) {
    decoder.Feed(std::string_view(&c, 1));
  }
  auto next = decoder.Next(&payload);
  ASSERT_TRUE(next.ok() && *next);
  EXPECT_EQ(payload, "first message");

  decoder.Feed(StrCat(b, a));
  next = decoder.Next(&payload);
  ASSERT_TRUE(next.ok() && *next);
  EXPECT_EQ(payload, "second");
  next = decoder.Next(&payload);
  ASSERT_TRUE(next.ok() && *next);
  EXPECT_EQ(payload, "first message");
  next = decoder.Next(&payload);
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(*next);
  EXPECT_EQ(decoder.buffered(), 0u);
}

// ---------------------------------------------------------------------------
// Frame layer: hostile input. Truncation at every byte, a flip at
// every position, lying length prefixes, version skew — none may
// crash, and none may surface a corrupted payload as valid.

TEST(NetWireHostileTest, TruncationAtEveryByteNeverYieldsAFrame) {
  const std::string frame = EncodeFrame("the payload under truncation");
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    std::string payload;
    auto next = DecodeOnce(frame.substr(0, cut), &payload);
    ASSERT_TRUE(next.ok()) << "cut at " << cut << ": "
                           << next.status().ToString();
    EXPECT_FALSE(*next) << "truncated frame decoded at cut " << cut;
  }
}

TEST(NetWireHostileTest, BitFlipAtEveryPositionIsRejectedOrIncomplete) {
  const std::string frame = EncodeFrame("the payload under bit flips");
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit : {0, 3, 7}) {
      std::string flipped = frame;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      std::string payload;
      auto next = DecodeOnce(flipped, &payload);
      // A flip lands in the magic (typed error), the length (cap
      // error, or a longer declared length = incomplete frame), the
      // payload, or the CRC (both a crc mismatch). No outcome may be a
      // successfully decoded frame.
      if (next.ok()) {
        EXPECT_FALSE(*next) << "flip at byte " << byte << " bit " << bit
                            << " produced a valid frame";
      } else {
        EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
      }
    }
  }
}

TEST(NetWireHostileTest, PayloadFlipIsACrcMismatchSpecifically) {
  std::string frame = EncodeFrame("payload whose bytes get injured");
  frame[kFrameHeaderSize + 4] ^= 0x10;
  std::string payload;
  auto next = DecodeOnce(frame, &payload);
  ASSERT_FALSE(next.ok());
  EXPECT_NE(next.status().message().find("crc"), std::string::npos)
      << next.status().ToString();
}

TEST(NetWireHostileTest, OversizedLengthPrefixIsRejectedBeforeAllocation) {
  // Header declaring a 4 GiB payload: must be a typed error the moment
  // the header is readable, not a 4 GiB allocation attempt.
  std::string hostile(kFrameMagic, sizeof(kFrameMagic));
  hostile += std::string("\xff\xff\xff\xff", 4);
  std::string payload;
  auto next = DecodeOnce(hostile, &payload);
  ASSERT_FALSE(next.ok());
  EXPECT_NE(next.status().message().find("exceeds"), std::string::npos);

  // A length just over a small receiver cap is equally rejected even
  // though the default cap would admit it.
  const std::string frame = EncodeFrame(std::string(100, 'x'));
  auto capped = DecodeOnce(frame, &payload, /*max_payload=*/64);
  ASSERT_FALSE(capped.ok());
}

TEST(NetWireHostileTest, VersionSkewInTheMagicIsRejected) {
  std::string frame = EncodeFrame("future payload");
  frame[3] = '2';  // RNF2: a future frame format
  std::string payload;
  auto next = DecodeOnce(frame, &payload);
  ASSERT_FALSE(next.ok());
  EXPECT_NE(next.status().message().find("magic"), std::string::npos);
}

TEST(NetWireHostileTest, FrameDefectsAreSticky) {
  FrameDecoder decoder;
  std::string garbage = "GARBAGE!";
  garbage += EncodeFrame("never reached");
  decoder.Feed(garbage);
  std::string payload;
  ASSERT_FALSE(decoder.Next(&payload).ok());
  // Even a pristine frame after the defect must not decode: the stream
  // position is untrustworthy, the connection must be closed.
  decoder.Feed(EncodeFrame("still poisoned"));
  auto again = decoder.Next(&payload);
  ASSERT_FALSE(again.ok());
  EXPECT_NE(again.status().message().find("poisoned"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Message layer: round trips.

TEST(NetWireMessageTest, RequestsRoundTripForEveryOp) {
  WireRequest submit;
  submit.op = WireOp::kSubmit;
  submit.key = "client-42.job_7";
  submit.job = "payload with spaces\nand a newline: 17";
  for (const WireRequest& req :
       {submit, WireRequest{WireOp::kPoll, "k", ""},
        WireRequest{WireOp::kCancel, "k", ""},
        WireRequest{WireOp::kStatus, "", ""}}) {
    auto parsed = WireRequest::Deserialize(req.Serialize());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->op, req.op);
    EXPECT_EQ(parsed->key, req.key);
    EXPECT_EQ(parsed->job, req.job);
  }
}

TEST(NetWireMessageTest, RepliesRoundTripWithEveryFieldPopulated) {
  const WireReply reply = FullReply();
  auto parsed = WireReply::Deserialize(reply.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->code, reply.code);
  EXPECT_EQ(parsed->message, reply.message);
  EXPECT_EQ(parsed->retry_after_ms, reply.retry_after_ms);
  EXPECT_EQ(parsed->state, reply.state);
  EXPECT_EQ(parsed->verdict, reply.verdict);
  EXPECT_EQ(parsed->evidence, reply.evidence);
  EXPECT_EQ(parsed->attempts, reply.attempts);
  EXPECT_EQ(parsed->persisted, reply.persisted);
  EXPECT_EQ(parsed->exhaustion, reply.exhaustion);
  EXPECT_FALSE(parsed->ToStatus().ok());
  EXPECT_EQ(parsed->ToStatus().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Message layer: hostile input, mirroring the checkpoint-store corpus.

TEST(NetWireHostileTest, RequestTruncationAtEveryByteIsRejected) {
  WireRequest req;
  req.op = WireOp::kSubmit;
  req.key = "key-1";
  req.job = "job body with spaces";
  const std::string valid = req.Serialize();
  for (size_t cut = 0; cut < valid.size(); ++cut) {
    auto parsed = WireRequest::Deserialize(valid.substr(0, cut));
    EXPECT_FALSE(parsed.ok()) << "truncation at " << cut << " parsed";
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(NetWireHostileTest, ReplyTruncationAtEveryByteIsRejected) {
  const std::string valid = FullReply().Serialize();
  for (size_t cut = 0; cut < valid.size(); ++cut) {
    auto parsed = WireReply::Deserialize(valid.substr(0, cut));
    EXPECT_FALSE(parsed.ok()) << "truncation at " << cut << " parsed";
  }
}

TEST(NetWireHostileTest, RequestBitFlipsNeverCrashTheParser) {
  WireRequest req;
  req.op = WireOp::kPoll;
  req.key = "poll-key";
  const std::string valid = req.Serialize();
  for (size_t byte = 0; byte < valid.size(); ++byte) {
    for (int bit : {0, 5}) {
      std::string flipped = valid;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      // Either rejected, or accepted as a (different) well-formed
      // request — a flip inside the key body is not detectable at this
      // layer (the frame CRC catches it in transit); the parser just
      // must never crash or read out of bounds.
      auto parsed = WireRequest::Deserialize(flipped);
      if (!parsed.ok()) {
        EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
      }
    }
  }
}

TEST(NetWireHostileTest, ReplyBitFlipsNeverCrashTheParser) {
  const std::string valid = FullReply().Serialize();
  for (size_t byte = 0; byte < valid.size(); ++byte) {
    std::string flipped = valid;
    flipped[byte] = static_cast<char>(flipped[byte] ^ 0x20);
    auto parsed = WireReply::Deserialize(flipped);
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(NetWireHostileTest, LyingSegmentLengthsAreRejected) {
  // Declared length larger than the remaining bytes.
  auto oversized = WireRequest::Deserialize(
      "relcomp-net/1 req poll 100:short0:");
  EXPECT_FALSE(oversized.ok());
  // Declared length that would swallow the next segment's framing.
  auto swallowing = WireRequest::Deserialize(
      "relcomp-net/1 req submit 3:key9999999999:job");
  EXPECT_FALSE(swallowing.ok());
  // A length field that overflows uint64.
  auto overflow = WireRequest::Deserialize(
      StrCat("relcomp-net/1 req poll 99999999999999999999999:x0:"));
  EXPECT_FALSE(overflow.ok());
}

TEST(NetWireHostileTest, MessageVersionSkewIsRejected) {
  auto req = WireRequest::Deserialize("relcomp-net/2 req poll 1:k0:");
  ASSERT_FALSE(req.ok());
  EXPECT_NE(req.status().message().find("magic"), std::string::npos);
  auto rep = WireReply::Deserialize(
      "relcomp-net/2 rep ok 0 none unknown 0 0 0:0:0:");
  EXPECT_FALSE(rep.ok());
}

TEST(NetWireHostileTest, TrailingBytesAreRejected) {
  WireRequest req;
  req.op = WireOp::kPoll;
  req.key = "k";
  EXPECT_FALSE(WireRequest::Deserialize(req.Serialize() + "x").ok());
  EXPECT_FALSE(WireReply::Deserialize(FullReply().Serialize() + " ").ok());
}

TEST(NetWireHostileTest, RoleAndOpConfusionIsRejected) {
  // A reply fed to the request parser (and vice versa).
  EXPECT_FALSE(WireRequest::Deserialize(FullReply().Serialize()).ok());
  WireRequest req;
  req.op = WireOp::kPoll;
  req.key = "k";
  EXPECT_FALSE(WireReply::Deserialize(req.Serialize()).ok());
  // Unknown op; status with a key; poll carrying a job payload.
  EXPECT_FALSE(
      WireRequest::Deserialize("relcomp-net/1 req destroy 1:k0:").ok());
  EXPECT_FALSE(
      WireRequest::Deserialize("relcomp-net/1 req status 1:k0:").ok());
  EXPECT_FALSE(
      WireRequest::Deserialize("relcomp-net/1 req poll 1:k3:job").ok());
}

TEST(NetWireHostileTest, EmptyAndGarbageInputsAreRejected) {
  for (const std::string input :
       {std::string(""), std::string(" "), std::string("\n"),
        std::string("relcomp-net/1"), std::string("relcomp-net/1 "),
        std::string("relcomp-net/1 req"),
        std::string(200, '\xff'), std::string(200, ' ')}) {
    EXPECT_FALSE(WireRequest::Deserialize(input).ok());
    EXPECT_FALSE(WireReply::Deserialize(input).ok());
  }
}

// ---------------------------------------------------------------------------
// relcomp-net/2 frames: compression and authentication.

/// A v2-speaking decoder (accepts both formats, like a live server or
/// client connection).
Result<bool> DecodeV2(std::string_view data, std::string* payload,
                      const std::string& auth_key = "",
                      size_t max_payload = kDefaultMaxFramePayload) {
  FrameDecoder decoder(max_payload);
  decoder.set_accept_v2(true);
  if (!auth_key.empty()) decoder.set_auth_key(auth_key);
  decoder.Feed(data);
  return decoder.Next(payload);
}

std::string HexString(std::string_view bytes) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  for (unsigned char c : bytes) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xf]);
  }
  return out;
}

TEST(NetWireV2Test, Blake2sMatchesKnownVectors) {
  // RFC 7693 appendix B: unkeyed BLAKE2s-256("abc").
  EXPECT_EQ(HexString(Blake2sMac("", "abc", 32)),
            "508c5e8c327c14e2e1a72ba34eeb452f"
            "37458b209ed63a294d999b4c86675982");
  // First entry of the reference keyed KAT: key = 00..1f, data = "".
  std::string key;
  for (int i = 0; i < 32; ++i) key.push_back(static_cast<char>(i));
  EXPECT_EQ(HexString(Blake2sMac(key, "", 32)),
            "48a8997da407876b3d79c0d92325ad3b"
            "89cbb754d86ab71aee047ad345fd2c49");
  EXPECT_EQ(Blake2sMac(key, "x").size(), kBlake2sTagLength);
  EXPECT_TRUE(ConstantTimeEqual("same bytes", "same bytes"));
  EXPECT_FALSE(ConstantTimeEqual("same bytes", "same bytez"));
  EXPECT_FALSE(ConstantTimeEqual("short", "longer than it"));
}

TEST(NetWireV2Test, CompressionCodecRoundTrips) {
  for (const std::string input :
       {std::string(""), std::string("short"),
        std::string(5000, 'a'),
        StrCat(std::string(800, 'x'), "middle", std::string(800, 'x')),
        std::string("binary\x00\xff\x01 stream", 16)}) {
    const std::string block = CompressBlock(input);
    std::string out;
    Status decompressed = DecompressBlock(block, input.size(), &out);
    ASSERT_TRUE(decompressed.ok()) << decompressed.ToString();
    EXPECT_EQ(out, input);
  }
  // Repetitive payloads actually shrink.
  EXPECT_LT(CompressBlock(std::string(5000, 'a')).size(), 100u);
}

TEST(NetWireV2Test, RoundTripsPlainCompressedAndAuthenticated) {
  const std::string small = "below the threshold";
  const std::string big(4096, 'r');
  for (const std::string& key : {std::string(""), std::string("sekrit")}) {
    FrameCodecOptions codec;
    codec.auth_key = key;
    codec.compress_threshold = 1024;
    if (!codec.v2()) continue;  // keyless + thresholdless = v1 only
    for (const std::string& payload : {small, big}) {
      const std::string frame = EncodeFrameV2(payload, codec);
      ASSERT_GE(frame.size(), kFrameHeaderSizeV2);
      EXPECT_TRUE(std::equal(kFrameMagicV2, kFrameMagicV2 + 4,
                             frame.begin()));
      std::string out;
      auto next = DecodeV2(frame, &out, key);
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      ASSERT_TRUE(*next);
      EXPECT_EQ(out, payload);
    }
    // The repetitive payload rode compressed: frame beats payload size.
    EXPECT_LT(EncodeFrameV2(big, codec).size(), big.size());
  }
}

TEST(NetWireV2Test, V2DecoderStillAcceptsV1AndFlagsSawV2) {
  FrameDecoder decoder;
  decoder.set_accept_v2(true);
  FrameCodecOptions codec;
  codec.compress_threshold = 1;
  decoder.Feed(EncodeFrame("v1 leg"));
  std::string payload;
  auto next = decoder.Next(&payload);
  ASSERT_TRUE(next.ok() && *next);
  EXPECT_EQ(payload, "v1 leg");
  EXPECT_FALSE(decoder.saw_v2());
  decoder.Feed(EncodeFrameV2("v2 leg upgraded", codec));
  next = decoder.Next(&payload);
  ASSERT_TRUE(next.ok() && *next) << next.status().ToString();
  EXPECT_EQ(payload, "v2 leg upgraded");
  EXPECT_TRUE(decoder.saw_v2());
}

TEST(NetWireV2Test, DefaultDecoderStillRejectsV2Magic) {
  // The opt-in matters: a peer that never negotiated v2 treats the new
  // magic exactly like any other version skew.
  FrameCodecOptions codec;
  codec.compress_threshold = 1;
  std::string payload;
  auto next = DecodeOnce(EncodeFrameV2("not negotiated", codec), &payload);
  ASSERT_FALSE(next.ok());
  EXPECT_NE(next.status().message().find("magic"), std::string::npos);
}

TEST(NetWireHostileTest, V2TruncationAtEveryByteNeverYieldsAFrame) {
  FrameCodecOptions codec;
  codec.auth_key = "trunc-key";
  codec.compress_threshold = 64;
  const std::string frame =
      EncodeFrameV2(std::string(300, 'q') + "tail", codec);
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    std::string payload;
    auto next = DecodeV2(frame.substr(0, cut), &payload, "trunc-key");
    ASSERT_TRUE(next.ok()) << "cut at " << cut << ": "
                           << next.status().ToString();
    EXPECT_FALSE(*next) << "truncated v2 frame decoded at cut " << cut;
  }
}

TEST(NetWireHostileTest, V2BitFlipAtEveryPositionNeverDecodesValid) {
  FrameCodecOptions codec;
  codec.auth_key = "flip-key";
  codec.compress_threshold = 64;
  const std::string frame =
      EncodeFrameV2(std::string(128, 'f') + "unique tail", codec);
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit : {0, 5}) {
      std::string flipped = frame;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      std::string payload;
      auto next = DecodeV2(flipped, &payload, "flip-key");
      // Acceptable outcomes: typed rejection (auth, crc, length, flag)
      // or "incomplete" (the flip grew a declared length). Never a
      // successfully decoded frame.
      if (next.ok()) {
        EXPECT_FALSE(*next) << "flip at byte " << byte << " bit " << bit
                            << " produced a valid frame";
      } else {
        const StatusCode code = next.status().code();
        EXPECT_TRUE(code == StatusCode::kInvalidArgument ||
                    code == StatusCode::kPermissionDenied)
            << next.status().ToString();
      }
    }
  }
}

TEST(NetWireHostileTest, ForgedStrippedAndWrongKeyFramesAreDenied) {
  FrameCodecOptions authed;
  authed.auth_key = "the real key";
  const std::string payload = "guarded payload";
  const std::string frame = EncodeFrameV2(payload, authed);

  // Forged tag: flip one bit inside the trailing tag.
  std::string forged = frame;
  forged.back() = static_cast<char>(forged.back() ^ 1);
  std::string out;
  auto next = DecodeV2(forged, &out, "the real key");
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kPermissionDenied);
  EXPECT_NE(next.status().message().find("tag"), std::string::npos);

  // Wrong key: same typed denial.
  next = DecodeV2(frame, &out, "a different key");
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kPermissionDenied);

  // Stripped auth: an unauthenticated v1 frame at a keyed decoder.
  next = DecodeV2(EncodeFrame(payload), &out, "the real key");
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kPermissionDenied);

  // And an unauthenticated v2 frame at a keyed decoder.
  FrameCodecOptions plain;
  plain.compress_threshold = 1;
  next = DecodeV2(EncodeFrameV2(payload, plain), &out, "the real key");
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kPermissionDenied);

  // The mirror image: an authenticated frame at a keyless decoder is
  // equally a typed denial (strict mutual auth), not a crash.
  next = DecodeV2(frame, &out);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kPermissionDenied);
}

TEST(NetWireV2Test, RotationWindowDecoderAcceptsEitherKeyOnly) {
  // A decoder mid-rotation holds two keys; frames tagged with either
  // verify, frames tagged with a third (or untagged) stay denied.
  FrameCodecOptions old_codec;
  old_codec.auth_key = "old fabric key";
  FrameCodecOptions new_codec;
  new_codec.auth_key = "new fabric key";
  FrameCodecOptions other_codec;
  other_codec.auth_key = "some third key";
  const std::string payload = "rotating payload";

  auto decode = [&](const std::string& frame, std::string* out) {
    FrameDecoder decoder;
    decoder.set_accept_v2(true);
    decoder.set_auth_key("new fabric key");
    decoder.set_auth_key2("old fabric key");
    decoder.Feed(frame);
    return decoder.Next(out);
  };
  std::string out;
  auto next = decode(EncodeFrameV2(payload, new_codec), &out);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_EQ(out, payload);
  next = decode(EncodeFrameV2(payload, old_codec), &out);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_EQ(out, payload);
  next = decode(EncodeFrameV2(payload, other_codec), &out);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kPermissionDenied);
  next = decode(EncodeFrame(payload), &out);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kPermissionDenied);

  // Dropping the secondary closes the window: the old key stops
  // verifying the moment the rotation completes.
  FrameDecoder single;
  single.set_accept_v2(true);
  single.set_auth_key("new fabric key");
  single.Feed(EncodeFrameV2(payload, old_codec));
  next = single.Next(&out);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kPermissionDenied);
}

TEST(NetWireHostileTest, LyingCompressedLengthsAreBounded) {
  FrameCodecOptions codec;
  codec.compress_threshold = 16;
  const std::string frame = EncodeFrameV2(std::string(2000, 'z'), codec);
  ASSERT_TRUE(frame[4] & kFrameFlagCompressed);

  // raw_len inflated to 4 GiB: rejected against the receiver cap
  // BEFORE any allocation happens.
  std::string lying = frame;
  lying[5] = lying[6] = lying[7] = lying[8] = static_cast<char>(0xff);
  std::string out;
  auto next = DecodeV2(lying, &out);
  ASSERT_FALSE(next.ok());
  EXPECT_NE(next.status().message().find("exceed"), std::string::npos);

  // raw_len understated: the decompressor's strict output bound trips
  // (the block wants to write more than declared).
  std::string small = frame;
  small[5] = 10;
  small[6] = small[7] = small[8] = 0;
  next = DecodeV2(small, &out);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);

  // A tight receiver cap rejects a truthful-but-large raw_len too —
  // the compressed body must never be a pre-allocation amplifier.
  next = DecodeV2(frame, &out, "", /*max_payload=*/256);
  ASSERT_FALSE(next.ok());

  // Direct codec probe: a hostile block cannot overrun the declared
  // raw length no matter what its sequences claim.
  const std::string block = CompressBlock(std::string(2000, 'z'));
  std::string decoded;
  EXPECT_FALSE(DecompressBlock(block, 10, &decoded).ok());
  EXPECT_FALSE(DecompressBlock(block.substr(0, block.size() / 2), 2000,
                               &decoded)
                   .ok());
}

// ---------------------------------------------------------------------------
// Message layer: fabric operations.

TEST(NetWireMessageTest, AdoptAndHandoffRoundTrip) {
  WireRequest adopt;
  adopt.op = WireOp::kAdopt;
  adopt.key = "3";
  WireRequest handoff;
  handoff.op = WireOp::kHandoff;
  handoff.key = "1";
  handoff.job = "unix:/tmp/member-2.sock";
  for (const WireRequest& req : {adopt, handoff}) {
    auto parsed = WireRequest::Deserialize(req.Serialize());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->op, req.op);
    EXPECT_EQ(parsed->key, req.key);
    EXPECT_EQ(parsed->job, req.job);
  }
}

TEST(NetWireHostileTest, MalformedFabricOpsAreRejected) {
  // A handoff without a successor endpoint.
  WireRequest handoff;
  handoff.op = WireOp::kHandoff;
  handoff.key = "1";
  EXPECT_FALSE(WireRequest::Deserialize(handoff.Serialize()).ok());
  // An adopt carrying a job payload.
  EXPECT_FALSE(
      WireRequest::Deserialize("relcomp-net/1 req adopt 1:13:job payload")
          .ok());
}

// ---------------------------------------------------------------------------
// Fault-plan addressing.

TEST(NetWireFaultPlanTest, FiresMatchOrdinalAndPeriod) {
  SocketFaultPlan once;
  once.kind = SocketFaultPlan::Kind::kReset;
  once.at = 3;
  EXPECT_FALSE(once.Fires(2));
  EXPECT_TRUE(once.Fires(3));
  EXPECT_FALSE(once.Fires(4));

  SocketFaultPlan periodic;
  periodic.kind = SocketFaultPlan::Kind::kBitFlip;
  periodic.every = 2;
  EXPECT_FALSE(periodic.Fires(1));
  EXPECT_TRUE(periodic.Fires(2));
  EXPECT_TRUE(periodic.Fires(4));

  SocketFaultPlan off;
  off.at = 1;  // kind is kNone: never fires
  EXPECT_FALSE(off.Fires(1));
  EXPECT_FALSE(off.active());
}

}  // namespace
}  // namespace relcomp
