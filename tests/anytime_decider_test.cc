#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "completeness/rcdp.h"
#include "completeness/rcqp.h"
#include "constraints/constraint_check.h"
#include "constraints/integrity_constraints.h"
#include "query/parser.h"
#include "util/execution_control.h"

namespace relcomp {
namespace {

// ---------------------------------------------------------------------------
// ExecutionBudget unit behavior.

TEST(ExecutionBudgetTest, DefaultBudgetIsInactiveAndNeverTrips) {
  ExecutionBudget budget;
  EXPECT_FALSE(budget.active());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(budget.OnDecisionPoint().ok());
  }
  EXPECT_FALSE(budget.exhausted());
  EXPECT_EQ(budget.steps(), 1000u);
}

TEST(ExecutionBudgetTest, StepLimitTripsAtTheExactPointAndSticks) {
  ExecutionBudget budget;
  budget.set_max_steps(5);
  EXPECT_TRUE(budget.active());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(budget.OnDecisionPoint().ok()) << i;
  }
  Status st = budget.OnDecisionPoint();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(budget.exhausted_kind(), BudgetKind::kSteps);
  EXPECT_EQ(budget.exhausted_at(), 5u);
  // Sticky: every later call returns the same failure.
  EXPECT_EQ(budget.OnDecisionPoint().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.exhaustion_status().code(),
            StatusCode::kResourceExhausted);
  // Rearm clears the record and the step counter.
  budget.Rearm();
  EXPECT_FALSE(budget.exhausted());
  EXPECT_TRUE(budget.OnDecisionPoint().ok());
}

TEST(ExecutionBudgetTest, PastDeadlineTripsAtTheFirstStridePoint) {
  ExecutionBudget budget;
  budget.set_deadline(std::chrono::steady_clock::now() -
                      std::chrono::seconds(1));
  // Point 0 is always a deadline-check point (0 % kDeadlineStride == 0).
  Status st = budget.OnDecisionPoint();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
  EXPECT_EQ(budget.exhausted_kind(), BudgetKind::kDeadline);
}

TEST(ExecutionBudgetTest, CancelTokenSurfacesAsCancelled) {
  CancelSource source;
  ExecutionBudget budget;
  budget.set_cancel_token(source.token());
  ASSERT_TRUE(budget.OnDecisionPoint().ok());
  source.RequestCancel();
  Status st = budget.OnDecisionPoint();
  EXPECT_EQ(st.code(), StatusCode::kCancelled) << st.ToString();
  EXPECT_EQ(budget.exhausted_kind(), BudgetKind::kCancel);
  EXPECT_EQ(budget.exhaustion_status().code(), StatusCode::kCancelled);
}

TEST(ExecutionBudgetTest, TrackedBytesTripAtTheNextPointOnly) {
  ExecutionBudget budget;
  budget.set_max_tracked_bytes(100);
  ASSERT_TRUE(budget.OnDecisionPoint().ok());
  budget.TrackBytes(150);  // staging itself never fails in place
  EXPECT_EQ(budget.tracked_bytes(), 150u);
  Status st = budget.OnDecisionPoint();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
  EXPECT_EQ(budget.exhausted_kind(), BudgetKind::kMemory);
  budget.ReleaseBytes(150);
  budget.Rearm();
  EXPECT_TRUE(budget.OnDecisionPoint().ok());
}

TEST(ExecutionBudgetTest, FaultInjectorFiresAtTheChosenPoint) {
  FaultInjector inject(FaultInjector::Fault::kCancel, /*at=*/3);
  ExecutionBudget budget;
  budget.set_fault_injector(&inject);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(budget.OnDecisionPoint().ok()) << i;
  }
  Status st = budget.OnDecisionPoint();
  EXPECT_EQ(st.code(), StatusCode::kCancelled) << st.ToString();
  EXPECT_EQ(budget.exhausted_kind(), BudgetKind::kCancel);
  EXPECT_EQ(budget.exhausted_at(), 3u);
}

// ---------------------------------------------------------------------------
// Checkpoint serialization.

TEST(SearchCheckpointTest, RoundTripsThroughText) {
  SearchCheckpoint ckpt;
  ckpt.decider = "rcdp";
  ckpt.disjunct = 3;
  ckpt.rank = 12345;
  ckpt.fingerprint = 0xdeadbeefcafef00dull;
  ckpt.payload = "nested payload with spaces\nand a newline";
  std::string text = ckpt.Serialize();
  auto back = SearchCheckpoint::Deserialize(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(*back == ckpt) << text;
}

TEST(SearchCheckpointTest, EmbeddedCheckpointRoundTrips) {
  SearchCheckpoint inner;
  inner.decider = "rcdp";
  inner.disjunct = 1;
  inner.rank = 7;
  inner.fingerprint = 42;
  SearchCheckpoint outer;
  outer.decider = "chase";
  outer.disjunct = 2;
  outer.fingerprint = 43;
  outer.payload = inner.Serialize();
  auto back = SearchCheckpoint::Deserialize(outer.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  auto inner_back = SearchCheckpoint::Deserialize(back->payload);
  ASSERT_TRUE(inner_back.ok()) << inner_back.status().ToString();
  EXPECT_TRUE(*inner_back == inner);
}

TEST(SearchCheckpointTest, MalformedInputsAreInvalidArgumentNeverCrash) {
  const char* corpus[] = {
      "",
      "relcomp-ckpt/2 rcdp 0 0 0000000000000000 0:",
      "not-a-checkpoint",
      "relcomp-ckpt/1",
      "relcomp-ckpt/1 rcdp",
      "relcomp-ckpt/1 rcdp 0",
      "relcomp-ckpt/1 rcdp 0 0",
      "relcomp-ckpt/1 rcdp 0 0 zzzz",
      "relcomp-ckpt/1 rcdp 0 0 0000000000000000",
      "relcomp-ckpt/1 rcdp 0 0 0000000000000000 5:ab",   // short payload
      "relcomp-ckpt/1 rcdp 0 0 0000000000000000 x:ab",   // bad length
      "relcomp-ckpt/1 rcdp -1 0 0000000000000000 0:",
      "relcomp-ckpt/1 rcdp 99999999999999999999999999 0 0000000000000000 0:",
  };
  for (const char* text : corpus) {
    auto parsed = SearchCheckpoint::Deserialize(text);
    ASSERT_FALSE(parsed.ok()) << "accepted: " << text;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
        << text << " -> " << parsed.status().ToString();
  }
}

// ---------------------------------------------------------------------------
// Fixtures.

/// An incomplete RCDP instance: S ⊆ M on the first column, master
/// offers more values than D uses, second column is open. The
/// counterexample search has real work to do in every disjunct.
struct IncompleteInstance {
  std::shared_ptr<Schema> db_schema;
  std::shared_ptr<Schema> master_schema;
  std::optional<Database> db;
  std::optional<Database> master;
  ConstraintSet v;
  std::optional<AnyQuery> q;

  static IncompleteInstance Make() {
    IncompleteInstance in;
    in.db_schema = std::make_shared<Schema>();
    EXPECT_TRUE(in.db_schema->AddRelation("S", 2).ok());
    in.master_schema = std::make_shared<Schema>();
    EXPECT_TRUE(in.master_schema->AddRelation("M", 1).ok());
    in.db.emplace(in.db_schema);
    for (int64_t i = 0; i < 4; ++i) {
      in.db->InsertUnchecked("S", Tuple({Value::Int(i), Value::Int(i + 1)}));
    }
    in.master.emplace(in.master_schema);
    for (int64_t i = 0; i < 8; ++i) {
      in.master->InsertUnchecked("M", Tuple({Value::Int(i)}));
    }
    auto ind = MakeIndToMaster(*in.db_schema, "S", {0}, "M", {0});
    EXPECT_TRUE(ind.ok());
    in.v.Add(*ind);
    auto q = ParseQuery("Q(x, y) :- S(x, y).", QueryLanguage::kCq);
    EXPECT_TRUE(q.ok());
    in.q.emplace(std::move(*q));
    return in;
  }
};

/// An instance whose chase converges: both S columns are IND-bounded
/// by a small master relation, so the set of valid extensions is the
/// finite M × M and the chase closes it within a few rounds.
struct ChaseableInstance {
  std::shared_ptr<Schema> db_schema;
  std::shared_ptr<Schema> master_schema;
  std::optional<Database> db;
  std::optional<Database> master;
  ConstraintSet v;
  std::optional<AnyQuery> q;

  static ChaseableInstance Make() {
    ChaseableInstance in;
    in.db_schema = std::make_shared<Schema>();
    EXPECT_TRUE(in.db_schema->AddRelation("S", 2).ok());
    in.master_schema = std::make_shared<Schema>();
    EXPECT_TRUE(in.master_schema->AddRelation("M", 1).ok());
    in.db.emplace(in.db_schema);
    in.db->InsertUnchecked("S", Tuple({Value::Int(0), Value::Int(1)}));
    in.master.emplace(in.master_schema);
    in.master->InsertUnchecked("M", Tuple({Value::Int(0)}));
    in.master->InsertUnchecked("M", Tuple({Value::Int(1)}));
    for (auto col : {0, 1}) {
      auto ind = MakeIndToMaster(*in.db_schema, "S",
                                 {static_cast<size_t>(col)}, "M", {0});
      EXPECT_TRUE(ind.ok());
      in.v.Add(*ind);
    }
    auto q = ParseQuery("Q(x, y) :- S(x, y).", QueryLanguage::kCq);
    EXPECT_TRUE(q.ok());
    in.q.emplace(std::move(*q));
    return in;
  }
};

/// A complete RCDP instance over finite domains: every candidate
/// valuation is enumerated and rejected, so an uninterrupted run claims
/// a fixed, known number of decision points — the substrate for the
/// exhaustive fault-injection sweep.
struct CompleteInstance {
  std::shared_ptr<Schema> db_schema;
  std::shared_ptr<Schema> master_schema;
  std::optional<Database> db;
  std::optional<Database> master;
  ConstraintSet v;  // empty: (D, Dm) |= ∅ trivially
  std::optional<AnyQuery> q;

  static CompleteInstance Make() {
    CompleteInstance in;
    in.db_schema = std::make_shared<Schema>();
    auto dom = Domain::FiniteInts("int3", 3);
    EXPECT_TRUE(in.db_schema
                    ->AddRelation(RelationSchema(
                        "S", {AttributeDef::Over("a", dom),
                              AttributeDef::Over("b", dom)}))
                    .ok());
    in.master_schema = std::make_shared<Schema>();
    EXPECT_TRUE(in.master_schema->AddRelation("M", 1).ok());
    in.db.emplace(in.db_schema);
    for (int64_t a = 0; a < 3; ++a) {
      for (int64_t b = 0; b < 3; ++b) {
        in.db->InsertUnchecked("S", Tuple({Value::Int(a), Value::Int(b)}));
      }
    }
    in.master.emplace(in.master_schema);
    auto q = ParseQuery("Q(x, y) :- S(x, y).", QueryLanguage::kCq);
    EXPECT_TRUE(q.ok());
    in.q.emplace(std::move(*q));
    return in;
  }
};

std::string RcdpKey(const RcdpResult& r) {
  std::string out = VerdictToString(r.verdict);
  out += '|';
  out += r.counterexample_delta.has_value()
             ? r.counterexample_delta->ToString()
             : std::string("<none>");
  out += '|';
  out += r.new_answer.has_value() ? r.new_answer->ToString()
                                  : std::string("<none>");
  return out;
}

// ---------------------------------------------------------------------------
// Exhaustion matrix: each budget kind × {1, 2, 8} threads × each
// decider. Every cell must degrade to a clean kUnknown with a valid
// checkpoint, and resuming from that checkpoint with a fresh budget
// must reproduce the uninterrupted decision bit-for-bit.

class ExhaustionMatrixTest : public ::testing::TestWithParam<int> {
 protected:
  size_t threads() const { return static_cast<size_t>(GetParam()); }
};

/// Configures `budget` for the given kind; returns the expected
/// BudgetKind recorded on exhaustion.
BudgetKind ArmBudget(int kind, ExecutionBudget* budget, CancelSource* cancel,
                     size_t steps = 3) {
  switch (kind) {
    case 0:
      budget->set_max_steps(steps);
      return BudgetKind::kSteps;
    case 1:
      budget->set_deadline(std::chrono::steady_clock::now() -
                           std::chrono::seconds(1));
      return BudgetKind::kDeadline;
    case 2:
      budget->set_max_tracked_bytes(1);
      return BudgetKind::kMemory;
    default:
      budget->set_cancel_token(cancel->token());
      cancel->RequestCancel();
      return BudgetKind::kCancel;
  }
}

TEST_P(ExhaustionMatrixTest, RcdpDegradesAndResumesForEveryBudgetKind) {
  IncompleteInstance in = IncompleteInstance::Make();

  RcdpOptions plain;
  plain.num_threads = threads();
  auto uninterrupted = DecideRcdp(*in.q, *in.db, *in.master, in.v, plain);
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.status().ToString();
  ASSERT_EQ(uninterrupted->verdict, Verdict::kIncomplete);

  for (int kind = 0; kind < 4; ++kind) {
    SCOPED_TRACE(testing::Message() << "budget kind " << kind);
    ExecutionBudget budget;
    CancelSource cancel;
    BudgetKind expected = ArmBudget(kind, &budget, &cancel);

    RcdpOptions bounded = plain;
    bounded.budget = &budget;
    auto exhausted = DecideRcdp(*in.q, *in.db, *in.master, in.v, bounded);
    ASSERT_TRUE(exhausted.ok()) << exhausted.status().ToString();
    ASSERT_EQ(exhausted->verdict, Verdict::kUnknown)
        << exhausted->ToString();
    EXPECT_FALSE(exhausted->complete);
    EXPECT_EQ(exhausted->exhaustion.kind, expected)
        << exhausted->exhaustion.ToString();
    ASSERT_TRUE(exhausted->checkpoint.has_value());
    EXPECT_EQ(exhausted->checkpoint->decider, "rcdp");
    // The checkpoint survives a serialize/deserialize cycle.
    auto wire =
        SearchCheckpoint::Deserialize(exhausted->checkpoint->Serialize());
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    ASSERT_TRUE(*wire == *exhausted->checkpoint);

    // Resume with no budget: the combined search must equal the
    // uninterrupted one bit-for-bit.
    RcdpOptions resume = plain;
    resume.resume = &*wire;
    auto resumed = DecideRcdp(*in.q, *in.db, *in.master, in.v, resume);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_EQ(RcdpKey(*uninterrupted), RcdpKey(*resumed));
  }
}

TEST_P(ExhaustionMatrixTest, RcqpDegradesAndResumesForEveryBudgetKind) {
  IncompleteInstance in = IncompleteInstance::Make();

  RcqpOptions plain;
  plain.rcdp.num_threads = threads();
  auto uninterrupted =
      DecideRcqp(*in.q, in.db_schema, *in.master, in.v, plain);
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.status().ToString();
  ASSERT_NE(uninterrupted->verdict, Verdict::kUnknown)
      << uninterrupted->ToString();

  for (int kind = 0; kind < 4; ++kind) {
    SCOPED_TRACE(testing::Message() << "budget kind " << kind);
    ExecutionBudget budget;
    CancelSource cancel;
    // The realizability probe on this small instance decides within a
    // couple of binding steps, so the step budget must be the tightest
    // possible one to actually interrupt it.
    BudgetKind expected = ArmBudget(kind, &budget, &cancel, /*steps=*/1);

    RcqpOptions bounded = plain;
    bounded.rcdp.budget = &budget;
    auto exhausted =
        DecideRcqp(*in.q, in.db_schema, *in.master, in.v, bounded);
    ASSERT_TRUE(exhausted.ok()) << exhausted.status().ToString();
    ASSERT_EQ(exhausted->verdict, Verdict::kUnknown)
        << exhausted->ToString();
    EXPECT_EQ(exhausted->exhaustion.kind, expected)
        << exhausted->exhaustion.ToString();
    ASSERT_TRUE(exhausted->checkpoint.has_value());

    RcqpOptions resume = plain;
    resume.resume = &*exhausted->checkpoint;
    auto resumed = DecideRcqp(*in.q, in.db_schema, *in.master, in.v, resume);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_EQ(uninterrupted->verdict, resumed->verdict)
        << resumed->ToString();
    EXPECT_EQ(uninterrupted->exists, resumed->exists);
    EXPECT_EQ(uninterrupted->method, resumed->method);
    EXPECT_EQ(uninterrupted->unbounded_variables.size(),
              resumed->unbounded_variables.size());
  }
}

TEST_P(ExhaustionMatrixTest, ChaseDegradesKeepsProgressAndResumes) {
  ChaseableInstance in = ChaseableInstance::Make();

  RcdpOptions plain;
  plain.num_threads = threads();
  auto uninterrupted =
      ChaseToCompleteness(*in.q, *in.db, *in.master, in.v, 32, plain);
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.status().ToString();
  ASSERT_EQ(uninterrupted->verdict, Verdict::kComplete)
      << uninterrupted->ToString();

  for (int kind = 0; kind < 4; ++kind) {
    SCOPED_TRACE(testing::Message() << "budget kind " << kind);
    ExecutionBudget budget;
    CancelSource cancel;
    BudgetKind expected = ArmBudget(kind, &budget, &cancel);

    RcdpOptions bounded = plain;
    bounded.budget = &budget;
    auto exhausted =
        ChaseToCompleteness(*in.q, *in.db, *in.master, in.v, 32, bounded);
    ASSERT_TRUE(exhausted.ok()) << exhausted.status().ToString();
    ASSERT_EQ(exhausted->verdict, Verdict::kUnknown)
        << exhausted->ToString();
    EXPECT_EQ(exhausted->exhaustion.kind, expected)
        << exhausted->exhaustion.ToString();
    ASSERT_TRUE(exhausted->checkpoint.has_value());
    EXPECT_EQ(exhausted->checkpoint->decider, "chase");
    // Progress is never discarded: the partially chased database holds
    // at least the input.
    EXPECT_GE(exhausted->db.TotalTuples(), in.db->TotalTuples());

    // Resume from the partially chased database; the final database
    // must be bit-for-bit the uninterrupted chase's.
    RcdpOptions resume = plain;
    resume.resume = &*exhausted->checkpoint;
    auto resumed = ChaseToCompleteness(*in.q, exhausted->db, *in.master,
                                       in.v, 32, resume);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    ASSERT_EQ(resumed->verdict, Verdict::kComplete) << resumed->ToString();
    EXPECT_EQ(uninterrupted->db.ToString(), resumed->db.ToString());
  }
}

/// The step budget counts the same decision points at any thread
/// count, so the minted checkpoint must be identical across
/// num_threads — this is what makes a checkpoint from a parallel run
/// resumable by a serial run and vice versa.
TEST(ExhaustionDeterminismTest, StepCheckpointIsThreadCountInvariant) {
  IncompleteInstance in = IncompleteInstance::Make();
  std::optional<SearchCheckpoint> reference;
  for (size_t threads : {1u, 2u, 8u}) {
    ExecutionBudget budget;
    budget.set_max_steps(3);
    RcdpOptions options;
    options.num_threads = threads;
    options.budget = &budget;
    auto r = DecideRcdp(*in.q, *in.db, *in.master, in.v, options);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->verdict, Verdict::kUnknown) << "threads=" << threads;
    ASSERT_TRUE(r->checkpoint.has_value());
    if (!reference.has_value()) {
      reference = r->checkpoint;
    } else {
      EXPECT_TRUE(*reference == *r->checkpoint)
          << "threads=" << threads << ": " << r->checkpoint->Serialize()
          << " vs " << reference->Serialize();
    }
  }
}

TEST(ExhaustionDeterminismTest, CrossThreadCountResumeAgrees) {
  // Checkpoint minted at 8 threads, resumed at 1 and 2 threads (and
  // vice versa): all runs must land on the uninterrupted decision.
  IncompleteInstance in = IncompleteInstance::Make();
  auto uninterrupted = DecideRcdp(*in.q, *in.db, *in.master, in.v, {});
  ASSERT_TRUE(uninterrupted.ok());

  ExecutionBudget budget;
  budget.set_max_steps(3);
  RcdpOptions bounded;
  bounded.num_threads = 8;
  bounded.budget = &budget;
  auto exhausted = DecideRcdp(*in.q, *in.db, *in.master, in.v, bounded);
  ASSERT_TRUE(exhausted.ok());
  ASSERT_EQ(exhausted->verdict, Verdict::kUnknown);
  ASSERT_TRUE(exhausted->checkpoint.has_value());

  for (size_t threads : {1u, 2u, 8u}) {
    RcdpOptions resume;
    resume.num_threads = threads;
    resume.resume = &*exhausted->checkpoint;
    auto resumed = DecideRcdp(*in.q, *in.db, *in.master, in.v, resume);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_EQ(RcdpKey(*uninterrupted), RcdpKey(*resumed))
        << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ExhaustionMatrixTest,
                         ::testing::Values(1, 2, 8));

// ---------------------------------------------------------------------------
// Checkpoint misuse.

TEST(CheckpointValidationTest, FingerprintMismatchIsRejected) {
  IncompleteInstance in = IncompleteInstance::Make();
  ExecutionBudget budget;
  budget.set_max_steps(3);
  RcdpOptions bounded;
  bounded.budget = &budget;
  auto exhausted = DecideRcdp(*in.q, *in.db, *in.master, in.v, bounded);
  ASSERT_TRUE(exhausted.ok());
  ASSERT_TRUE(exhausted->checkpoint.has_value());

  // Same checkpoint, different database: must be refused, not resumed.
  Database other(in.db_schema);
  other.InsertUnchecked("S", Tuple({Value::Int(0), Value::Int(1)}));
  RcdpOptions resume;
  resume.resume = &*exhausted->checkpoint;
  auto mismatched = DecideRcdp(*in.q, other, *in.master, in.v, resume);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument)
      << mismatched.status().ToString();

  // Wrong decider kind: an RCDP checkpoint handed to RCQP.
  RcqpOptions rcqp_resume;
  rcqp_resume.resume = &*exhausted->checkpoint;
  auto wrong_kind =
      DecideRcqp(*in.q, in.db_schema, *in.master, in.v, rcqp_resume);
  ASSERT_FALSE(wrong_kind.ok());
  EXPECT_EQ(wrong_kind.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// User cancellation vs. internal stop-token cancellation (the driver
// cancels losing workers internally; that must never leak, while a
// user cancel must never be swallowed).

TEST(CancellationTest, UserCancelPropagatesInternalCancelDoesNot) {
  IncompleteInstance in = IncompleteInstance::Make();

  // Internal: a parallel run on an incomplete instance cancels losing
  // units internally; the caller sees a clean kIncomplete.
  RcdpOptions parallel;
  parallel.num_threads = 8;
  auto clean = DecideRcdp(*in.q, *in.db, *in.master, in.v, parallel);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean->verdict, Verdict::kIncomplete);

  // User: a fired CancelToken surfaces as kUnknown/kCancel, with the
  // kCancelled status preserved in the exhaustion record.
  CancelSource cancel;
  cancel.RequestCancel();
  ExecutionBudget budget;
  budget.set_cancel_token(cancel.token());
  RcdpOptions cancelled = parallel;
  cancelled.budget = &budget;
  auto stopped = DecideRcdp(*in.q, *in.db, *in.master, in.v, cancelled);
  ASSERT_TRUE(stopped.ok()) << stopped.status().ToString();
  EXPECT_EQ(stopped->verdict, Verdict::kUnknown);
  EXPECT_EQ(stopped->exhaustion.kind, BudgetKind::kCancel);
  EXPECT_EQ(budget.exhaustion_status().code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// Deterministic fault-injection sweep: inject each fault kind at every
// decision point of a complete (fully enumerated) instance. Every
// injection must produce a clean kUnknown, leave the inputs untouched,
// and a repeat call must return the uninterrupted verdict.

TEST(FaultInjectionSweepTest, EveryDecisionPointUnwindsCleanlySerial) {
  CompleteInstance in = CompleteInstance::Make();

  // Learn the uninterrupted decision-point count with a counting (but
  // non-tripping) budget.
  ExecutionBudget counter;
  counter.set_max_steps(1u << 30);
  RcdpOptions counted;
  counted.num_threads = 1;
  counted.budget = &counter;
  auto baseline = DecideRcdp(*in.q, *in.db, *in.master, in.v, counted);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_EQ(baseline->verdict, Verdict::kComplete);
  const size_t total_points = counter.steps();
  ASSERT_GT(total_points, 0u);

  const std::string db_before = in.db->ToString();
  const std::string master_before = in.master->ToString();

  const FaultInjector::Fault kinds[] = {
      FaultInjector::Fault::kCancel,
      FaultInjector::Fault::kDeadline,
      FaultInjector::Fault::kAllocFailure,
  };
  for (FaultInjector::Fault fault : kinds) {
    for (size_t point = 0; point < total_points; ++point) {
      FaultInjector inject(fault, point);
      ExecutionBudget budget;
      budget.set_fault_injector(&inject);
      RcdpOptions options;
      options.num_threads = 1;
      options.budget = &budget;
      auto r = DecideRcdp(*in.q, *in.db, *in.master, in.v, options);
      ASSERT_TRUE(r.ok())
          << "fault " << static_cast<int>(fault) << " at " << point << ": "
          << r.status().ToString();
      ASSERT_EQ(r->verdict, Verdict::kUnknown)
          << "fault " << static_cast<int>(fault) << " at " << point;
      ASSERT_TRUE(r->checkpoint.has_value());
      // The unwind left the frozen core untouched.
      ASSERT_EQ(in.db->ToString(), db_before)
          << "fault " << static_cast<int>(fault) << " at " << point;
      ASSERT_EQ(in.master->ToString(), master_before);
      // A repeat call (fresh budget, no fault) reaches the
      // uninterrupted verdict: nothing was corrupted by the unwind.
      auto repeat = DecideRcdp(*in.q, *in.db, *in.master, in.v, {});
      ASSERT_TRUE(repeat.ok());
      ASSERT_EQ(repeat->verdict, Verdict::kComplete)
          << "fault " << static_cast<int>(fault) << " at " << point;
      // And resuming from the checkpoint completes the search.
      RcdpOptions resume;
      resume.num_threads = 1;
      resume.resume = &*r->checkpoint;
      auto resumed = DecideRcdp(*in.q, *in.db, *in.master, in.v, resume);
      ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
      ASSERT_EQ(resumed->verdict, Verdict::kComplete)
          << "fault " << static_cast<int>(fault) << " at " << point << ": "
          << resumed->ToString();
    }
  }
}

TEST(FaultInjectionSweepTest, SampledPointsUnwindCleanlyParallel) {
  CompleteInstance in = CompleteInstance::Make();

  ExecutionBudget counter;
  counter.set_max_steps(1u << 30);
  RcdpOptions counted;
  counted.num_threads = 1;
  counted.budget = &counter;
  auto baseline = DecideRcdp(*in.q, *in.db, *in.master, in.v, counted);
  ASSERT_TRUE(baseline.ok());
  const size_t total_points = counter.steps();
  const std::string db_before = in.db->ToString();

  for (size_t threads : {2u, 8u}) {
    for (size_t point : {size_t{0}, total_points / 2, total_points - 1}) {
      FaultInjector inject(FaultInjector::Fault::kDeadline, point);
      ExecutionBudget budget;
      budget.set_fault_injector(&inject);
      RcdpOptions options;
      options.num_threads = threads;
      options.budget = &budget;
      auto r = DecideRcdp(*in.q, *in.db, *in.master, in.v, options);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ASSERT_EQ(r->verdict, Verdict::kUnknown)
          << "threads " << threads << " point " << point;
      ASSERT_EQ(in.db->ToString(), db_before);
      ASSERT_TRUE(r->checkpoint.has_value());
      RcdpOptions resume;
      resume.num_threads = threads;
      resume.resume = &*r->checkpoint;
      auto resumed = DecideRcdp(*in.q, *in.db, *in.master, in.v, resume);
      ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
      ASSERT_EQ(resumed->verdict, Verdict::kComplete)
          << "threads " << threads << " point " << point;
    }
  }
}

/// Seedable sweep over the chase: inject at a few points spread over
/// the full chase run; exhaustion must keep partial progress and the
/// resumed chase must converge to the uninterrupted database.
TEST(FaultInjectionSweepTest, ChaseSweepKeepsPartialProgress) {
  ChaseableInstance in = ChaseableInstance::Make();

  ExecutionBudget counter;
  counter.set_max_steps(1u << 30);
  RcdpOptions counted;
  counted.num_threads = 1;
  counted.budget = &counter;
  auto baseline =
      ChaseToCompleteness(*in.q, *in.db, *in.master, in.v, 32, counted);
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline->verdict, Verdict::kComplete);
  const size_t total_points = counter.steps();
  ASSERT_GT(total_points, 4u);

  for (size_t point :
       {size_t{0}, total_points / 4, total_points / 2, total_points - 1}) {
    FaultInjector inject(FaultInjector::Fault::kAllocFailure, point);
    ExecutionBudget budget;
    budget.set_fault_injector(&inject);
    RcdpOptions options;
    options.num_threads = 1;
    options.budget = &budget;
    auto r = ChaseToCompleteness(*in.q, *in.db, *in.master, in.v, 32,
                                 options);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->verdict, Verdict::kUnknown) << "point " << point;
    ASSERT_TRUE(r->checkpoint.has_value());
    ASSERT_GE(r->db.TotalTuples(), in.db->TotalTuples());
    RcdpOptions resume;
    resume.resume = &*r->checkpoint;
    auto resumed =
        ChaseToCompleteness(*in.q, r->db, *in.master, in.v, 32, resume);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    ASSERT_EQ(resumed->verdict, Verdict::kComplete) << "point " << point;
    EXPECT_EQ(baseline->db.ToString(), resumed->db.ToString())
        << "point " << point;
  }
}

// ---------------------------------------------------------------------------
// The chase rounds cap also rides the graceful-degradation path.

TEST(ChaseBudgetTest, RoundsCapYieldsUnknownWithRoundsKind) {
  IncompleteInstance in = IncompleteInstance::Make();
  auto r = ChaseToCompleteness(*in.q, *in.db, *in.master, in.v,
                               /*max_rounds=*/1, {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // One round cannot close a 4-of-8 gap here.
  ASSERT_EQ(r->verdict, Verdict::kUnknown) << r->ToString();
  EXPECT_EQ(r->exhaustion.kind, BudgetKind::kRounds);
  EXPECT_GE(r->db.TotalTuples(), in.db->TotalTuples());
}

}  // namespace
}  // namespace relcomp
