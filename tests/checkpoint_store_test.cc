#include "service/checkpoint_store.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "util/execution_control.h"
#include "util/str.h"

namespace relcomp {
namespace {

/// A fresh store directory per test, unique across the process.
std::string FreshDir(const char* tag) {
  static int counter = 0;
  return StrCat(::testing::TempDir(), "/relcomp_store_", ::getpid(), "_",
                tag, "_", counter++);
}

SearchCheckpoint MakeCkpt(size_t rank, std::string payload = "payload") {
  SearchCheckpoint ckpt;
  ckpt.decider = "rcdp";
  ckpt.disjunct = 1;
  ckpt.rank = rank;
  ckpt.fingerprint = 0xfeedfacecafebeefull;
  ckpt.payload = std::move(payload);
  return ckpt;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

// ---------------------------------------------------------------------------
// Round trips and generations.

TEST(CheckpointStoreTest, Crc32MatchesTheStandardCheckValue) {
  // The universal CRC-32/ISO-HDLC check vector.
  EXPECT_EQ(CheckpointStore::Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(CheckpointStore::Crc32(""), 0u);
}

TEST(CheckpointStoreTest, PersistLoadRoundTripsAndGenerationsIncrement) {
  const std::string dir = FreshDir("roundtrip");
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  auto g1 = (*store)->PersistCheckpoint("req", MakeCkpt(10));
  ASSERT_TRUE(g1.ok()) << g1.status().ToString();
  EXPECT_EQ(*g1, 1u);
  auto g2 = (*store)->PersistCheckpoint("req", MakeCkpt(20, "later state"));
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(*g2, 2u);

  auto loaded = (*store)->LoadLatestCheckpoint("req");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->generation, 2u);
  EXPECT_TRUE(loaded->checkpoint == MakeCkpt(20, "later state"));
  EXPECT_EQ((*store)->corrupt_files_skipped(), 0u);
}

TEST(CheckpointStoreTest, JobRecordsRoundTripAndDriveThePendingSet) {
  const std::string dir = FreshDir("jobs");
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->PersistJob("a", "job payload A").ok());
  ASSERT_TRUE((*store)->PersistJob("b", "job payload B").ok());

  auto pending = (*store)->PendingRequests();
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(pending[0], "a");
  EXPECT_EQ(pending[1], "b");
  auto payload = (*store)->LoadJob("a");
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(*payload, "job payload A");

  ASSERT_TRUE((*store)->Forget("a").ok());
  EXPECT_EQ((*store)->PendingRequests().size(), 1u);
  EXPECT_EQ((*store)->LoadJob("a").status().code(), StatusCode::kNotFound);
  // Idempotent.
  ASSERT_TRUE((*store)->Forget("a").ok());
}

TEST(CheckpointStoreTest, StateSurvivesReopen) {
  const std::string dir = FreshDir("reopen");
  {
    auto store = CheckpointStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->PersistJob("req", "the job").ok());
    ASSERT_TRUE((*store)->PersistCheckpoint("req", MakeCkpt(7)).ok());
  }
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto pending = (*store)->PendingRequests();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0], "req");
  auto loaded = (*store)->LoadLatestCheckpoint("req");
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->checkpoint == MakeCkpt(7));
}

TEST(CheckpointStoreTest, MissingJournalIsRecoveredByDirectoryScan) {
  const std::string dir = FreshDir("noscan");
  {
    auto store = CheckpointStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->PersistJob("req", "the job").ok());
    ASSERT_TRUE((*store)->PersistCheckpoint("req", MakeCkpt(3)).ok());
  }
  // Simulate a crash between rename and journal append: the journal
  // vanishes entirely; the files must still be found.
  ASSERT_EQ(::unlink(StrCat(dir, "/journal").c_str()), 0);
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_EQ((*store)->PendingRequests().size(), 1u);
  auto loaded = (*store)->LoadLatestCheckpoint("req");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->generation, 1u);
}

// ---------------------------------------------------------------------------
// Corruption: no corrupted file is ever surfaced.

TEST(CheckpointStoreTest, TruncationAtEveryByteFallsBackOrRejects) {
  const std::string dir = FreshDir("trunc");
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->PersistCheckpoint("req", MakeCkpt(1, "older")).ok());
  ASSERT_TRUE((*store)->PersistCheckpoint("req", MakeCkpt(2, "newer")).ok());
  const std::string g2_path = StrCat(dir, "/req.g2.ckpt");
  const std::string intact = ReadFile(g2_path);

  for (size_t len = 0; len < intact.size(); ++len) {
    WriteFile(g2_path, intact.substr(0, len));
    auto loaded = (*store)->LoadLatestCheckpoint("req");
    ASSERT_TRUE(loaded.ok()) << "len=" << len;
    // The torn newest generation must never surface; the previous one
    // must.
    EXPECT_EQ(loaded->generation, 1u) << "len=" << len;
    EXPECT_TRUE(loaded->checkpoint == MakeCkpt(1, "older")) << "len=" << len;
  }
  EXPECT_EQ((*store)->corrupt_files_skipped(), intact.size());
  // Restore: the intact file wins again.
  WriteFile(g2_path, intact);
  auto loaded = (*store)->LoadLatestCheckpoint("req");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->generation, 2u);
}

TEST(CheckpointStoreTest, EveryBitFlipIsCaught) {
  const std::string dir = FreshDir("bitflip");
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->PersistCheckpoint("req", MakeCkpt(1, "older")).ok());
  ASSERT_TRUE((*store)->PersistCheckpoint("req", MakeCkpt(2, "newer")).ok());
  const std::string g2_path = StrCat(dir, "/req.g2.ckpt");
  const std::string intact = ReadFile(g2_path);

  for (size_t byte = 0; byte < intact.size(); ++byte) {
    for (int bit : {0, 3, 7}) {
      std::string flipped = intact;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      WriteFile(g2_path, flipped);
      auto loaded = (*store)->LoadLatestCheckpoint("req");
      ASSERT_TRUE(loaded.ok()) << "byte=" << byte << " bit=" << bit;
      EXPECT_EQ(loaded->generation, 1u) << "byte=" << byte << " bit=" << bit;
    }
  }
}

TEST(CheckpointStoreTest, AllGenerationsCorruptIsNotFoundNeverGarbage) {
  const std::string dir = FreshDir("allcorrupt");
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->PersistCheckpoint("req", MakeCkpt(1)).ok());
  WriteFile(StrCat(dir, "/req.g1.ckpt"), "total garbage, no structure");
  auto loaded = (*store)->LoadLatestCheckpoint("req");
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound)
      << loaded.status().ToString();
  EXPECT_GE((*store)->corrupt_files_skipped(), 1u);
}

TEST(CheckpointStoreTest, RecordRenamedToAnotherIdentityIsRejected) {
  const std::string dir = FreshDir("identity");
  {
    auto store = CheckpointStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->PersistCheckpoint("alpha", MakeCkpt(5)).ok());
    // An operator (or an attacker) copies alpha's record over beta's
    // name: the embedded identity must not match.
    ASSERT_EQ(::rename(StrCat(dir, "/alpha.g1.ckpt").c_str(),
                       StrCat(dir, "/beta.g1.ckpt").c_str()),
              0);
  }
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok());
  auto loaded = (*store)->LoadLatestCheckpoint("beta");
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  EXPECT_GE((*store)->corrupt_files_skipped(), 1u);
}

TEST(CheckpointStoreTest, CorruptJobRecordIsTypedInvalidArgument) {
  const std::string dir = FreshDir("jobcorrupt");
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->PersistJob("req", "payload").ok());
  const std::string path = StrCat(dir, "/req.job");
  std::string content = ReadFile(path);
  content[content.size() / 2] ^= 0x20;
  WriteFile(path, content);
  auto loaded = (*store)->LoadJob("req");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find(path), std::string::npos)
      << loaded.status().ToString();
}

TEST(CheckpointStoreTest, TornJournalTailIsSkippedOnReplay) {
  const std::string dir = FreshDir("tornjournal");
  {
    auto store = CheckpointStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->PersistJob("req", "the job").ok());
    ASSERT_TRUE((*store)->PersistCheckpoint("req", MakeCkpt(4)).ok());
  }
  // A crash mid-append tears the final line.
  {
    std::ofstream out(StrCat(dir, "/journal"),
                      std::ios::binary | std::ios::app);
    out << "J1 ckpt req 9 deadbe";  // no newline, bad crc
  }
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->journal_lines_skipped(), 1u);
  auto loaded = (*store)->LoadLatestCheckpoint("req");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->generation, 1u);
}

TEST(CheckpointStoreTest, JournalTruncationAtEveryByteRecoversEverything) {
  const std::string dir = FreshDir("journaltrunc");
  {
    auto store = CheckpointStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->PersistJob("req", "the job").ok());
    ASSERT_TRUE((*store)->PersistCheckpoint("req", MakeCkpt(4)).ok());
    ASSERT_TRUE((*store)->PersistCheckpoint("req", MakeCkpt(5)).ok());
    ASSERT_TRUE((*store)->PersistVerdict("vkey", "the verdict").ok());
  }
  const std::string journal_path = StrCat(dir, "/journal");
  const std::string intact = ReadFile(journal_path);
  ASSERT_GT(intact.size(), 0u);
  // A crash can stop the journal at ANY byte. Whatever the cut leaves,
  // the store must open, load every durable record (the directory scan
  // backstops lines the cut removed entirely), surface nothing corrupt,
  // and charge at most the one torn line.
  for (size_t len = 0; len < intact.size(); ++len) {
    WriteFile(journal_path, intact.substr(0, len));
    auto store = CheckpointStore::Open(dir);
    ASSERT_TRUE(store.ok()) << "cut at byte " << len << ": "
                            << store.status().ToString();
    EXPECT_LE((*store)->journal_lines_skipped(), 1u) << "cut at " << len;
    auto job = (*store)->LoadJob("req");
    ASSERT_TRUE(job.ok()) << "cut at byte " << len << ": "
                          << job.status().ToString();
    EXPECT_EQ(*job, "the job");
    auto ckpt = (*store)->LoadLatestCheckpoint("req");
    ASSERT_TRUE(ckpt.ok()) << "cut at byte " << len << ": "
                           << ckpt.status().ToString();
    EXPECT_EQ(ckpt->checkpoint.rank, 5u) << "cut at " << len;
    auto verdict = (*store)->LoadVerdict("vkey");
    ASSERT_TRUE(verdict.ok()) << "cut at byte " << len << ": "
                              << verdict.status().ToString();
    EXPECT_EQ(*verdict, "the verdict");
    EXPECT_EQ((*store)->corrupt_files_skipped(), 0u) << "cut at " << len;
  }
}

TEST(CheckpointStoreTest, ReopenedStoreTerminatesTornTailBeforeAppending) {
  const std::string dir = FreshDir("reopentaint");
  {
    auto store = CheckpointStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->PersistJob("a", "job a").ok());
  }
  // Tear the journal mid-line — the crash-mid-append shape, but the
  // process that knew about the torn tail is gone.
  const std::string journal_path = StrCat(dir, "/journal");
  const std::string intact = ReadFile(journal_path);
  ASSERT_GT(intact.size(), 4u);
  ASSERT_EQ(intact.back(), '\n');
  WriteFile(journal_path, intact.substr(0, intact.size() - 4));
  {
    // The REOPENED store must re-arm the taint: its first append starts
    // with a newline, so the torn fragment becomes its own (CRC-failing,
    // skipped) line instead of merging with — and eating — the new entry.
    auto store = CheckpointStore::Open(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->PersistJob("b", "job b").ok());
  }
  EXPECT_NE(ReadFile(journal_path).find("\nJ1 job b"), std::string::npos)
      << ReadFile(journal_path);
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->journal_lines_skipped(), 1u);
  auto a = (*store)->LoadJob("a");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(*a, "job a");
  auto b = (*store)->LoadJob("b");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(*b, "job b");
  EXPECT_EQ((*store)->corrupt_files_skipped(), 0u);
}

// ---------------------------------------------------------------------------
// Exclusion.

TEST(CheckpointStoreTest, SecondOpenOnALiveDirectoryIsFailedPrecondition) {
  const std::string dir = FreshDir("lock");
  auto first = CheckpointStore::Open(dir);
  ASSERT_TRUE(first.ok());
  auto second = CheckpointStore::Open(dir);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition)
      << second.status().ToString();
  // Releasing the first owner frees the directory.
  first->reset();
  auto third = CheckpointStore::Open(dir);
  EXPECT_TRUE(third.ok()) << third.status().ToString();
}

TEST(CheckpointStoreTest, SimulatedCrashReleasesTheLockAndFreezesTheStore) {
  const std::string dir = FreshDir("crashlock");
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->PersistJob("req", "the job").ok());
  (*store)->SimulateCrash();
  // Dead store refuses everything...
  EXPECT_EQ((*store)->PersistJob("x", "y").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*store)->LoadJob("req").status().code(),
            StatusCode::kFailedPrecondition);
  // ...but a successor takes over, exactly as after a real kill.
  auto next = CheckpointStore::Open(dir);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_EQ((*next)->PendingRequests().size(), 1u);
}

// ---------------------------------------------------------------------------
// Hostile request ids.

TEST(CheckpointStoreTest, HostileRequestIdsAreRejected) {
  const std::string dir = FreshDir("ids");
  auto store = CheckpointStore::Open(dir);
  ASSERT_TRUE(store.ok());
  const char* hostile[] = {"", "../evil", "a/b", "a b", ".hidden",
                           "per%cent", "ûnicode"};
  for (const char* id : hostile) {
    EXPECT_EQ((*store)->PersistJob(id, "x").code(),
              StatusCode::kInvalidArgument)
        << id;
    EXPECT_EQ((*store)->LoadLatestCheckpoint(id).status().code(),
              StatusCode::kInvalidArgument)
        << id;
  }
  // The full allowed alphabet works.
  EXPECT_TRUE(
      (*store)->PersistJob("Az09._-", "x").ok());
}

// ---------------------------------------------------------------------------
// SearchCheckpoint::Deserialize hardening (the hostile-input corpus).

TEST(CheckpointDeserializeHardeningTest, EveryPrefixOfAValidCheckpointFails) {
  const std::string valid = MakeCkpt(123456789, "some nested payload").
      Serialize();
  for (size_t len = 0; len < valid.size(); ++len) {
    auto parsed = SearchCheckpoint::Deserialize(valid.substr(0, len));
    ASSERT_FALSE(parsed.ok()) << "accepted prefix of length " << len;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
  ASSERT_TRUE(SearchCheckpoint::Deserialize(valid).ok());
}

TEST(CheckpointDeserializeHardeningTest, OversizedNumericFieldsFail) {
  const char* corpus[] = {
      // rank larger than any size_t
      "relcomp-ckpt/1 rcdp 0 99999999999999999999999999999999 "
      "0000000000000000 0:",
      // disjunct overflow
      "relcomp-ckpt/1 rcdp 18446744073709551616 0 0000000000000000 0:",
      // payload length overflow
      "relcomp-ckpt/1 rcdp 0 0 0000000000000000 "
      "99999999999999999999999999999999:x",
      // payload length far beyond the actual payload
      "relcomp-ckpt/1 rcdp 0 0 0000000000000000 4096:tiny",
      // fingerprint too long / too short / non-hex
      "relcomp-ckpt/1 rcdp 0 0 00000000000000000 0:",
      "relcomp-ckpt/1 rcdp 0 0 00000000 0:",
      "relcomp-ckpt/1 rcdp 0 0 zzzzzzzzzzzzzzzz 0:",
  };
  for (const char* text : corpus) {
    auto parsed = SearchCheckpoint::Deserialize(text);
    ASSERT_FALSE(parsed.ok()) << "accepted: " << text;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << text;
  }
}

TEST(CheckpointDeserializeHardeningTest, VersionSkewIsRejectedUpFront) {
  // A future format bump must not be half-parsed by this build.
  auto parsed = SearchCheckpoint::Deserialize(
      "relcomp-ckpt/2 rcdp 0 0 0000000000000000 0:");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("magic"), std::string::npos)
      << parsed.status().ToString();
}

TEST(CheckpointDeserializeHardeningTest, ErrorsCarryBytePositionInfo) {
  auto parsed = SearchCheckpoint::Deserialize(
      "relcomp-ckpt/1 rcdp notanumber 0 0000000000000000 0:");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("at byte"), std::string::npos)
      << parsed.status().ToString();
}

TEST(CheckpointDeserializeHardeningTest, BitFlipsNeverCrashTheParser) {
  const std::string valid = MakeCkpt(42, "payload with spaces").Serialize();
  for (size_t byte = 0; byte < valid.size(); ++byte) {
    for (int bit : {0, 5}) {
      std::string flipped = valid;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      // Either rejected, or accepted as a (different) well-formed
      // checkpoint — a flip inside the payload body is not detectable
      // at this layer (the store's CRC catches it); the parser just
      // must never crash or accept an inconsistent frame.
      auto parsed = SearchCheckpoint::Deserialize(flipped);
      if (parsed.ok()) {
        EXPECT_EQ(parsed->Serialize().size(), flipped.size());
      } else {
        EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Journal compaction.

TEST(JournalCompactionTest, CompactsPastThresholdAndShrinksTheJournal) {
  const std::string dir = FreshDir("compact");
  CheckpointStoreOptions options;
  options.journal_compaction_threshold = 10;
  auto store = CheckpointStore::Open(dir, options);
  ASSERT_TRUE(store.ok());
  // 30 persists for one request would append 30 "ckpt" lines; the
  // compacted journal describes the same state in one.
  for (size_t i = 0; i < 30; ++i) {
    ASSERT_TRUE((*store)->PersistCheckpoint("req", MakeCkpt(i)).ok());
  }
  EXPECT_GT((*store)->journal_compactions(), 0u);
  EXPECT_LE((*store)->journal_entries(), 11u);

  auto loaded = (*store)->LoadLatestCheckpoint("req");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->generation, 30u);
}

TEST(JournalCompactionTest, CompactedStateMatchesUncompactedOnReopen) {
  // Two directories, identical operation sequence, only the threshold
  // differs. After reopening, every observable (pending set, latest
  // generations, loaded checkpoints) must be identical.
  const std::string dir_a = FreshDir("compact_a");
  const std::string dir_b = FreshDir("compact_b");
  CheckpointStoreOptions compacting;
  compacting.journal_compaction_threshold = 5;
  CheckpointStoreOptions never;
  never.journal_compaction_threshold = 0;
  {
    auto a = CheckpointStore::Open(dir_a, compacting);
    auto b = CheckpointStore::Open(dir_b, never);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    for (auto* store : {a->get(), b->get()}) {
      ASSERT_TRUE(store->PersistJob("alpha", "job A").ok());
      ASSERT_TRUE(store->PersistJob("beta", "job B").ok());
      for (size_t i = 0; i < 12; ++i) {
        ASSERT_TRUE(store->PersistCheckpoint("alpha", MakeCkpt(i)).ok());
      }
      ASSERT_TRUE(store->PersistCheckpoint("beta", MakeCkpt(99)).ok());
      ASSERT_TRUE(store->PersistJob("gone", "job C").ok());
      ASSERT_TRUE(store->Forget("gone").ok());
    }
    EXPECT_GT((*a)->journal_compactions(), 0u);
    EXPECT_EQ((*b)->journal_compactions(), 0u);
  }
  auto a = CheckpointStore::Open(dir_a);
  auto b = CheckpointStore::Open(dir_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a)->PendingRequests(), (*b)->PendingRequests());
  for (const char* id : {"alpha", "beta"}) {
    auto la = (*a)->LoadLatestCheckpoint(id);
    auto lb = (*b)->LoadLatestCheckpoint(id);
    ASSERT_TRUE(la.ok());
    ASSERT_TRUE(lb.ok());
    EXPECT_EQ(la->generation, lb->generation);
    EXPECT_TRUE(la->checkpoint == lb->checkpoint);
  }
  EXPECT_EQ((*a)->LoadJob("gone").status().code(), StatusCode::kNotFound);
  EXPECT_EQ((*b)->LoadJob("gone").status().code(), StatusCode::kNotFound);
}

TEST(JournalCompactionTest, KillAtEveryCompactionStageRecoversTheSameState) {
  // Compaction is temp + fsync + rename; a kill can land (a) mid-write
  // of the temp file, (b) after the temp is complete but before the
  // rename, (c) after the rename. Construct each mid-state by hand and
  // assert all three replay to the same state as the uninterrupted
  // journal.
  const std::string dir = FreshDir("compact_kill");
  {
    auto store = CheckpointStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->PersistJob("req", "the job").ok());
    for (size_t i = 0; i < 6; ++i) {
      ASSERT_TRUE((*store)->PersistCheckpoint("req", MakeCkpt(i)).ok());
    }
  }
  const std::string journal = StrCat(dir, "/journal");
  const std::string old_journal = ReadFile(journal);
  // What a compaction would write: run one for real in a scratch copy
  // of the state by opening with a tiny threshold and appending once.
  std::string compacted;
  {
    const std::string scratch = FreshDir("compact_kill_scratch");
    CheckpointStoreOptions options;
    options.journal_compaction_threshold = 1;
    auto store = CheckpointStore::Open(scratch, options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->PersistJob("req", "the job").ok());
    for (size_t i = 0; i < 6; ++i) {
      ASSERT_TRUE((*store)->PersistCheckpoint("req", MakeCkpt(i)).ok());
    }
    ASSERT_GT((*store)->journal_compactions(), 0u);
    compacted = ReadFile(StrCat(scratch, "/journal"));
  }

  auto expect_recovered = [&](const char* stage) {
    auto store = CheckpointStore::Open(dir);
    ASSERT_TRUE(store.ok()) << stage << ": " << store.status().ToString();
    auto pending = (*store)->PendingRequests();
    ASSERT_EQ(pending.size(), 1u) << stage;
    EXPECT_EQ(pending[0], "req") << stage;
    auto loaded = (*store)->LoadLatestCheckpoint("req");
    ASSERT_TRUE(loaded.ok()) << stage << ": " << loaded.status().ToString();
    EXPECT_EQ(loaded->generation, 6u) << stage;
    EXPECT_TRUE(loaded->checkpoint == MakeCkpt(5)) << stage;
    EXPECT_EQ((*store)->corrupt_files_skipped(), 0u) << stage;
  };

  // (a) Kill mid-write: a torn temp file next to the intact journal.
  WriteFile(StrCat(journal, ".tmp.12345"),
            compacted.substr(0, compacted.size() / 2));
  expect_recovered("torn temp");
  // (b) Kill before rename: a complete temp file, journal unchanged.
  WriteFile(StrCat(journal, ".tmp.12345"), compacted);
  expect_recovered("complete temp");
  ::unlink(StrCat(journal, ".tmp.12345").c_str());
  // (c) Kill after rename: the compacted journal took over.
  WriteFile(journal, compacted);
  expect_recovered("after rename");
  // Restore and confirm the uninterrupted journal agrees with (c).
  WriteFile(journal, old_journal);
  expect_recovered("uninterrupted");
}

TEST(JournalCompactionTest, ZeroThresholdDisablesCompaction) {
  const std::string dir = FreshDir("compact_off");
  CheckpointStoreOptions options;
  options.journal_compaction_threshold = 0;
  auto store = CheckpointStore::Open(dir, options);
  ASSERT_TRUE(store.ok());
  for (size_t i = 0; i < 50; ++i) {
    ASSERT_TRUE((*store)->PersistCheckpoint("req", MakeCkpt(i)).ok());
  }
  EXPECT_EQ((*store)->journal_compactions(), 0u);
  EXPECT_EQ((*store)->journal_entries(), 50u);
}

}  // namespace
}  // namespace relcomp
