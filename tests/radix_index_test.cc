#include "relational/radix_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <random>
#include <vector>

#include "relational/value.h"

namespace relcomp {
namespace {

std::vector<uint8_t> Pack(const std::vector<ValueId>& ids) {
  std::vector<uint8_t> key(ids.size() * sizeof(ValueId));
  RadixIndex::PackKey(ids.data(), ids.size(), key.data());
  return key;
}

/// Reference map alongside the tree: every insert goes to both, every
/// key (present or absent) must agree.
void CheckAgainstReference(const std::vector<std::vector<ValueId>>& keys,
                           size_t columns) {
  RadixIndex index(columns * sizeof(ValueId));
  std::map<std::vector<ValueId>, std::vector<uint32_t>> reference;
  for (uint32_t row = 0; row < keys.size(); ++row) {
    index.Insert(Pack(keys[row]).data(), row);
    reference[keys[row]].push_back(row);
  }
  for (const auto& [ids, rows] : reference) {
    const std::vector<uint32_t>* got = index.Probe(Pack(ids).data());
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, rows) << "posting list mismatch";
  }
}

TEST(RadixIndexTest, SingleKeyRoundTrip) {
  RadixIndex index(8);
  std::vector<ValueId> ids = {7, 42};
  index.Insert(Pack(ids).data(), 3);
  const std::vector<uint32_t>* rows = index.Probe(Pack(ids).data());
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(*rows, std::vector<uint32_t>({3}));
  EXPECT_EQ(index.Probe(Pack({7, 43}).data()), nullptr);
  EXPECT_EQ(index.Probe(Pack({8, 42}).data()), nullptr);
}

TEST(RadixIndexTest, DuplicateInsertAppendsPostingListInOrder) {
  RadixIndex index(4);
  std::vector<ValueId> ids = {123456};
  for (uint32_t row : {5u, 1u, 9u}) index.Insert(Pack(ids).data(), row);
  const std::vector<uint32_t>* rows = index.Probe(Pack(ids).data());
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(*rows, std::vector<uint32_t>({5, 1, 9}));
}

TEST(RadixIndexTest, NodeGrowthAcrossEveryTransition) {
  // 300 keys differing in the final byte force one node to grow
  // 4 -> 16 -> 48 -> 256 (256 distinct dispatch bytes plus spill into
  // the preceding byte).
  std::vector<std::vector<ValueId>> keys;
  for (ValueId v = 0; v < 300; ++v) keys.push_back({0xAABBCC00u, v});
  CheckAgainstReference(keys, 2);
}

TEST(RadixIndexTest, PathCompressionSplits) {
  // Long shared prefixes that diverge at every possible byte position
  // of an 8-byte key exercise the split path at each depth.
  std::vector<std::vector<ValueId>> keys;
  keys.push_back({0x11223344u, 0x55667788u});
  keys.push_back({0x11223344u, 0x55667789u});  // split at byte 7
  keys.push_back({0x11223344u, 0x556677FFu});
  keys.push_back({0x11223344u, 0x55660088u});  // split at byte 6
  keys.push_back({0x11223344u, 0x00667788u});  // split at byte 4
  keys.push_back({0x11223345u, 0x55667788u});  // split at byte 3
  keys.push_back({0x00223344u, 0x55667788u});  // split at byte 0
  CheckAgainstReference(keys, 2);
}

TEST(RadixIndexTest, RandomizedAgainstReferenceMap) {
  std::mt19937 rng(0xC0FFEE);
  for (size_t columns : {1u, 2u, 3u, 8u}) {
    std::vector<std::vector<ValueId>> keys;
    for (int i = 0; i < 500; ++i) {
      std::vector<ValueId> ids(columns);
      for (size_t c = 0; c < columns; ++c) {
        // Small pools create heavy sharing; occasional fresh-range ids
        // (high bit set) cover the upper byte patterns.
        ids[c] = (rng() % 7 == 0)
                     ? (ValueInterner::kFreshIdBase + rng() % 16)
                     : rng() % 32;
      }
      keys.push_back(std::move(ids));
    }
    CheckAgainstReference(keys, columns);
  }
}

TEST(RadixIndexTest, ProbeOnEmptyIndexIsNull) {
  RadixIndex index(4);
  EXPECT_EQ(index.Probe(Pack({0}).data()), nullptr);
}

TEST(RadixIndexTest, ApproxBytesGrowsWithContent) {
  RadixIndex index(8);
  size_t empty = index.ApproxBytes();
  for (ValueId v = 0; v < 100; ++v) index.Insert(Pack({v, v}).data(), v);
  EXPECT_GT(index.ApproxBytes(), empty);
  EXPECT_GT(index.ApproxBytes(), 100 * sizeof(uint32_t));
}

TEST(RadixIndexTest, PackedKeyOrderIsIdOrderNotValueOrder) {
  // Packed big-endian keys sort by ValueId, column-major. Ids are
  // assigned in interning order, so this deliberately differs from
  // Value order: intern "b" before "a" and the packed keys invert the
  // lexicographic Value comparison.
  ValueInterner interner;
  ValueId b = interner.Intern(Value::Str("b"));
  ValueId a = interner.Intern(Value::Str("a"));
  ASSERT_LT(b, a);  // interning order, not value order
  auto key_b = Pack({b});
  auto key_a = Pack({a});
  EXPECT_LT(std::memcmp(key_b.data(), key_a.data(), 4), 0)
      << "packed keys must follow id order";
  EXPECT_LT(Value::Str("a"), Value::Str("b"))
      << "which is the reverse of Value order here";
  // Within one column, id order is preserved exactly.
  auto k1 = Pack({1u});
  auto k2 = Pack({2u});
  auto k_fresh = Pack({ValueInterner::kFreshIdBase});
  EXPECT_LT(std::memcmp(k1.data(), k2.data(), 4), 0);
  EXPECT_LT(std::memcmp(k2.data(), k_fresh.data(), 4), 0);
}

}  // namespace
}  // namespace relcomp
