// End-to-end tests for the network front end: a real NetServer over a
// real DecisionService, talked to over real sockets — including the
// socket-fault sweep (torn frames, bit flips, resets, stalls at every
// reply boundary) and the kill-the-server-mid-job restart test the
// fault-tolerance story hangs on.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "completeness/rcdp.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "service/decision_service.h"
#include "spec/spec_parser.h"
#include "util/str.h"

namespace relcomp {
namespace {

/// Same far-corner incomplete instance the service sweep uses: enough
/// decision points to slice, checkpoint, and kill mid-search.
const std::string& IncompleteSpec() {
  static const std::string spec = [] {
    std::string s = "relation S(a, b)\nmaster relation M(m)\n";
    for (int x = 0; x <= 5; ++x) {
      for (int y = 0; y <= 6; ++y) {
        if (x == 5 && y == 6) continue;
        s += StrCat("fact S(", x, ", ", y, ")\n");
      }
    }
    for (int m = 0; m <= 5; ++m) s += StrCat("master fact M(", m, ")\n");
    s += "constraint c0(x) :- S(x, y) |= M[0]\n";
    s += "query cq Q(x, y) :- S(x, y)\n";
    return s;
  }();
  return spec;
}

std::string FreshDir(const char* tag) {
  static int counter = 0;
  return StrCat(::testing::TempDir(), "/relcomp_net_", ::getpid(), "_", tag,
                "_", counter++);
}

std::string FreshSocket(const char* tag) {
  static int counter = 0;
  return StrCat("unix:", ::testing::TempDir(), "/relcomp_net_", ::getpid(),
                "_", tag, "_", counter++, ".sock");
}

JobSpec MakeJob(const std::string& spec, size_t slice = 0) {
  JobSpec job;
  job.kind = JobKind::kRcdp;
  job.spec_text = spec;
  job.slice_steps = slice;
  return job;
}

/// The canonical evidence an uninterrupted direct decision produces —
/// the oracle the networked (and killed-and-restarted) runs must match
/// bit for bit.
std::string DirectRcdpEvidence(const std::string& spec_text) {
  auto spec = ParseCompletenessSpec(spec_text);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  auto r = DecideRcdp(spec->queries[0], spec->db, spec->master,
                      spec->constraints, RcdpOptions());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return StrCat(VerdictToString(r->verdict), "|",
                r->counterexample_delta.has_value()
                    ? r->counterexample_delta->ToString()
                    : std::string("<none>"),
                "|",
                r->new_answer.has_value() ? r->new_answer->ToString()
                                          : std::string("<none>"));
}

/// A server + service pair over a fresh store directory.
struct TestServer {
  std::unique_ptr<DecisionService> service;
  std::unique_ptr<NetServer> server;
};

TestServer StartServer(const std::string& dir, const std::string& address,
                       DecisionServiceOptions service_options = {},
                       NetServerOptions server_options = {}) {
  TestServer out;
  auto service = DecisionService::Start(dir, service_options);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  if (!service.ok()) return out;
  out.service = std::move(*service);
  auto server = NetServer::Start(out.service.get(), address, server_options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  if (!server.ok()) return out;
  out.server = std::move(*server);
  return out;
}

/// Raw blocking unix-socket connection for hostile-client tests that
/// must send bytes no honest NetClient would.
class RawConn {
 public:
  explicit RawConn(const std::string& address) {
    EXPECT_EQ(address.rfind("unix:", 0), 0u) << address;
    const std::string path = address.substr(5);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0)
        << std::strerror(errno);
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Send(std::string_view data) {
    size_t off = 0;
    while (off < data.size()) {
      ssize_t n = ::send(fd_, data.data() + off, data.size() - off, 0);
      ASSERT_GT(n, 0) << std::strerror(errno);
      off += static_cast<size_t>(n);
    }
  }

  /// Reads one reply frame's payload (blocking, test-deadline bounded).
  std::string ReadReplyPayload() {
    FrameDecoder decoder;
    std::string payload;
    char buf[4096];
    for (;;) {
      auto next = decoder.Next(&payload);
      EXPECT_TRUE(next.ok()) << next.status().ToString();
      if (!next.ok() || *next) return payload;
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      EXPECT_GT(n, 0) << "connection closed mid-reply";
      if (n <= 0) return "";
      decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    }
  }

  /// True when the server closed the connection (EOF or reset).
  bool WaitForClose(std::chrono::milliseconds limit) {
    const auto deadline = std::chrono::steady_clock::now() + limit;
    char buf[256];
    while (std::chrono::steady_clock::now() < deadline) {
      ssize_t n =
          ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
      if (n == 0) return true;
      if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  }

 private:
  int fd_ = -1;
};

// ---------------------------------------------------------------------------
// Happy path: networked verdicts match direct library calls.

TEST(NetServiceTest, SubmitAndAwaitOverUnixSocketMatchesDirectDecision) {
  TestServer ts = StartServer(FreshDir("unix"), FreshSocket("unix"));
  ASSERT_NE(ts.server, nullptr);
  NetClient client(ts.server->address());

  ASSERT_TRUE(client.Submit("job-1", MakeJob(IncompleteSpec())).ok());
  auto reply = client.AwaitTerminal("job-1");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->verdict, Verdict::kIncomplete);
  EXPECT_EQ(reply->evidence, DirectRcdpEvidence(IncompleteSpec()));
  EXPECT_EQ(reply->attempts, 1u);
}

TEST(NetServiceTest, SubmitAndAwaitOverTcpEphemeralPort) {
  TestServer ts = StartServer(FreshDir("tcp"), "tcp:127.0.0.1:0");
  ASSERT_NE(ts.server, nullptr);
  // Port 0 resolved to a real ephemeral port.
  EXPECT_EQ(ts.server->address().rfind("tcp:127.0.0.1:", 0), 0u)
      << ts.server->address();
  EXPECT_NE(ts.server->address(), "tcp:127.0.0.1:0");

  NetClient client(ts.server->address());
  ASSERT_TRUE(client.Submit("job-tcp", MakeJob(IncompleteSpec())).ok());
  auto reply = client.AwaitTerminal("job-tcp");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->evidence, DirectRcdpEvidence(IncompleteSpec()));
}

TEST(NetServiceTest, ServerStatusReportsCounters) {
  TestServer ts = StartServer(FreshDir("status"), FreshSocket("status"));
  ASSERT_NE(ts.server, nullptr);
  NetClient client(ts.server->address());
  auto status = client.ServerStatus();
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_NE(status->find("frames_received="), std::string::npos);
}

// ---------------------------------------------------------------------------
// Idempotency: retries never double-submit.

TEST(NetServiceTest, ResubmitWithSameKeyAndSpecIsAbsorbed) {
  DecisionServiceOptions paused;
  paused.start_paused = true;  // keep the job queued so both submits race it
  TestServer ts =
      StartServer(FreshDir("dedup"), FreshSocket("dedup"), paused);
  ASSERT_NE(ts.server, nullptr);
  NetClient client(ts.server->address());

  const JobSpec job = MakeJob(IncompleteSpec());
  ASSERT_TRUE(client.Submit("job-dup", job).ok());
  ASSERT_TRUE(client.Submit("job-dup", job).ok());  // the "retry"
  ASSERT_TRUE(client.Submit("job-dup", job).ok());  // and another
  EXPECT_EQ(ts.server->stats().submits_admitted, 1u);
  EXPECT_EQ(ts.server->stats().submits_deduped, 2u);

  ts.service->Resume();
  auto reply = client.AwaitTerminal("job-dup");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  // Exactly one job ran.
  EXPECT_EQ(ts.service->completed_order().size(), 1u);
}

TEST(NetServiceTest, SameKeyDifferentSpecIsATypedCollision) {
  DecisionServiceOptions paused;
  paused.start_paused = true;
  TestServer ts =
      StartServer(FreshDir("collide"), FreshSocket("collide"), paused);
  ASSERT_NE(ts.server, nullptr);
  NetClient client(ts.server->address());

  ASSERT_TRUE(client.Submit("job-x", MakeJob(IncompleteSpec())).ok());
  Status collision = client.Submit("job-x", MakeJob(IncompleteSpec(), 16));
  ASSERT_FALSE(collision.ok());
  EXPECT_EQ(collision.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(collision.message().find("different job"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Backpressure and typed failure paths.

TEST(NetServiceTest, QueueExhaustionIsTypedResourceExhaustedWithHint) {
  DecisionServiceOptions options;
  options.start_paused = true;
  options.max_queue_depth = 1;
  TestServer ts =
      StartServer(FreshDir("shed"), FreshSocket("shed"), options);
  ASSERT_NE(ts.server, nullptr);
  NetClient client(ts.server->address());

  ASSERT_TRUE(client.Submit("fits", MakeJob(IncompleteSpec())).ok());
  Status shed = client.Submit("shed", MakeJob(IncompleteSpec()));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_GE(ts.server->stats().submits_shed, 1u);
  // The shed job left no durable record: a restart won't resurrect it.
  EXPECT_EQ(ts.service->store().LoadJob("shed").status().code(),
            StatusCode::kNotFound);
  ts.service->Resume();
}

TEST(NetServiceTest, PollOfUnknownKeyIsNotFound) {
  TestServer ts = StartServer(FreshDir("nf"), FreshSocket("nf"));
  ASSERT_NE(ts.server, nullptr);
  NetClient client(ts.server->address());
  auto reply = client.Poll("no-such-job");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->code, StatusCode::kNotFound);
}

TEST(NetServiceTest, CancelOverTheWireFinishesQueuedJobAsUnknown) {
  DecisionServiceOptions paused;
  paused.start_paused = true;
  TestServer ts =
      StartServer(FreshDir("cancel"), FreshSocket("cancel"), paused);
  ASSERT_NE(ts.server, nullptr);
  NetClient client(ts.server->address());

  ASSERT_TRUE(client.Submit("doomed", MakeJob(IncompleteSpec())).ok());
  ASSERT_TRUE(client.Cancel("doomed").ok());
  auto reply = client.AwaitTerminal("doomed");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->verdict, Verdict::kUnknown);
  EXPECT_NE(reply->exhaustion.find("cancel"), std::string::npos)
      << reply->exhaustion;
  // Cancelled = abandoned: nothing left for a restart to resurrect.
  EXPECT_TRUE(ts.service->store().PendingRequests().empty());
  ts.service->Resume();
}

// ---------------------------------------------------------------------------
// Hostile clients.

TEST(NetServiceTest, FrameDefectClosesOnlyTheOffendingConnection) {
  TestServer ts = StartServer(FreshDir("hostile"), FreshSocket("hostile"));
  ASSERT_NE(ts.server, nullptr);

  {
    RawConn hostile(ts.server->address());
    hostile.Send("this is not a relcomp-net frame at all");
    EXPECT_TRUE(hostile.WaitForClose(std::chrono::milliseconds(5000)))
        << "frame defect should close the connection";
  }
  EXPECT_GE(ts.server->stats().protocol_errors, 1u);

  // The server survived and serves honest clients.
  NetClient client(ts.server->address());
  auto status = client.ServerStatus();
  EXPECT_TRUE(status.ok()) << status.status().ToString();
}

TEST(NetServiceTest, BadMessageInsideValidFrameGetsTypedReply) {
  TestServer ts = StartServer(FreshDir("badmsg"), FreshSocket("badmsg"));
  ASSERT_NE(ts.server, nullptr);

  RawConn conn(ts.server->address());
  conn.Send(EncodeFrame("relcomp-net/1 req destroy 1:k0:"));
  auto reply = WireReply::Deserialize(conn.ReadReplyPayload());
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->code, StatusCode::kInvalidArgument);
  EXPECT_GE(ts.server->stats().bad_requests, 1u);

  // Message-layer defects are not sticky: the same connection still
  // serves a well-formed request.
  WireRequest status_req;
  status_req.op = WireOp::kStatus;
  conn.Send(EncodeFrame(status_req.Serialize()));
  auto status_reply = WireReply::Deserialize(conn.ReadReplyPayload());
  ASSERT_TRUE(status_reply.ok());
  EXPECT_EQ(status_reply->code, StatusCode::kOk);
}

TEST(NetServiceTest, SlowlorisPartialFrameIsClosedByReadDeadline) {
  NetServerOptions options;
  options.read_deadline = std::chrono::milliseconds(150);
  TestServer ts = StartServer(FreshDir("slow"), FreshSocket("slow"),
                              DecisionServiceOptions(), options);
  ASSERT_NE(ts.server, nullptr);

  RawConn slow(ts.server->address());
  const std::string frame = EncodeFrame("a frame that never finishes");
  slow.Send(frame.substr(0, frame.size() / 2));  // ... and stop
  EXPECT_TRUE(slow.WaitForClose(std::chrono::milliseconds(5000)))
      << "slowloris connection should be closed by the read deadline";
  EXPECT_GE(ts.server->stats().deadline_closes, 1u);

  // An honest client is unaffected.
  NetClient client(ts.server->address());
  EXPECT_TRUE(client.ServerStatus().ok());
}

TEST(NetServiceTest, OversizedFramePrefixIsRejectedWithoutAllocation) {
  NetServerOptions options;
  options.max_frame_payload = 1024;
  TestServer ts = StartServer(FreshDir("oversize"), FreshSocket("oversize"),
                              DecisionServiceOptions(), options);
  ASSERT_NE(ts.server, nullptr);

  RawConn conn(ts.server->address());
  std::string hostile(kFrameMagic, sizeof(kFrameMagic));
  hostile += std::string("\xff\xff\xff\x7f", 4);  // ~2 GiB declared
  conn.Send(hostile);
  EXPECT_TRUE(conn.WaitForClose(std::chrono::milliseconds(5000)));
  EXPECT_GE(ts.server->stats().protocol_errors, 1u);
}

// ---------------------------------------------------------------------------
// Socket-fault sweep: every injected fault ends in a typed Status (or
// a transparent retry), never a crash, never a hang.

TEST(NetServiceTest, FaultSweepTornFrameAtEveryBoundary) {
  TestServer ts = StartServer(FreshDir("torn"), FreshSocket("torn"));
  ASSERT_NE(ts.server, nullptr);
  // Cut the reply at every offset through header (magic, length),
  // payload, and trailer. 0..80 spans the whole frame of a small
  // reply; SendReply clamps the cut to frame-size - 1, so the sweep
  // covers the final boundary too.
  for (size_t cut = 0; cut <= 80; cut += 4) {
    SocketFaultPlan plan;
    plan.kind = SocketFaultPlan::Kind::kTornFrame;
    plan.at = ts.server->stats().replies_sent + 1;  // next reply
    plan.at_byte = cut;
    ts.server->InjectFault(plan);

    NetClientOptions copts;
    copts.io_timeout = std::chrono::milliseconds(2000);
    NetClient client(ts.server->address(), copts);
    auto reply = client.Poll("absent");
    // The torn first reply forces a retry; the retry's reply is whole.
    ASSERT_TRUE(reply.ok()) << "cut=" << cut << ": "
                            << reply.status().ToString();
    EXPECT_EQ(reply->code, StatusCode::kNotFound) << "cut=" << cut;
    EXPECT_GE(client.stats().retries, 1u) << "cut=" << cut;
  }
  EXPECT_GE(ts.server->stats().faults_injected, 20u);
}

TEST(NetServiceTest, FaultSweepBitFlipAtEveryPosition) {
  TestServer ts = StartServer(FreshDir("flip"), FreshSocket("flip"));
  ASSERT_NE(ts.server, nullptr);
  for (size_t byte = 0; byte <= 80; byte += 4) {
    SocketFaultPlan plan;
    plan.kind = SocketFaultPlan::Kind::kBitFlip;
    plan.at = ts.server->stats().replies_sent + 1;
    plan.at_byte = byte;  // mod frame size inside the server
    ts.server->InjectFault(plan);

    NetClientOptions copts;
    copts.io_timeout = std::chrono::milliseconds(2000);
    NetClient client(ts.server->address(), copts);
    auto reply = client.Poll("absent");
    ASSERT_TRUE(reply.ok()) << "byte=" << byte << ": "
                            << reply.status().ToString();
    EXPECT_EQ(reply->code, StatusCode::kNotFound) << "byte=" << byte;
  }
}

TEST(NetServiceTest, FaultSweepResetAndStallAreRetriedToSuccess) {
  NetServerOptions sopts;
  TestServer ts = StartServer(FreshDir("reset"), FreshSocket("reset"),
                              DecisionServiceOptions(), sopts);
  ASSERT_NE(ts.server, nullptr);
  for (auto kind :
       {SocketFaultPlan::Kind::kReset, SocketFaultPlan::Kind::kStall}) {
    SocketFaultPlan plan;
    plan.kind = kind;
    plan.at = ts.server->stats().replies_sent + 1;
    ts.server->InjectFault(plan);

    NetClientOptions copts;
    // Small read deadline so the stall case fails over quickly.
    copts.io_timeout = std::chrono::milliseconds(300);
    NetClient client(ts.server->address(), copts);
    auto reply = client.Poll("absent");
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->code, StatusCode::kNotFound);
    EXPECT_GE(client.stats().retries, 1u);
  }
}

TEST(NetServiceTest, PeriodicFaultsDuringRealJobsStillConverge) {
  // Every 3rd reply injured while real submit/poll traffic flows: the
  // client's retry loop must still land every verdict, identically.
  TestServer ts = StartServer(FreshDir("periodic"), FreshSocket("periodic"));
  ASSERT_NE(ts.server, nullptr);
  SocketFaultPlan plan;
  plan.kind = SocketFaultPlan::Kind::kBitFlip;
  plan.every = 2;  // even a submit-then-one-poll exchange hits one
  plan.at_byte = 11;
  ts.server->InjectFault(plan);

  NetClientOptions copts;
  copts.io_timeout = std::chrono::milliseconds(2000);
  NetClient client(ts.server->address(), copts);
  ASSERT_TRUE(client.Submit("under-fire", MakeJob(IncompleteSpec())).ok());
  auto reply = client.AwaitTerminal("under-fire");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->evidence, DirectRcdpEvidence(IncompleteSpec()));
  EXPECT_GE(ts.server->stats().faults_injected, 1u);
}

// ---------------------------------------------------------------------------
// Concurrency (the tsan target): parallel clients against one server.

TEST(NetServiceConcurrencyTest, ParallelClientsEachGetTheirOwnVerdict) {
  DecisionServiceOptions options;
  options.num_workers = 2;
  TestServer ts =
      StartServer(FreshDir("par"), FreshSocket("par"), options);
  ASSERT_NE(ts.server, nullptr);
  const std::string oracle = DirectRcdpEvidence(IncompleteSpec());

  constexpr size_t kClients = 4;
  std::vector<std::thread> threads;
  std::vector<std::string> evidence(kClients);
  for (size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      NetClient client(ts.server->address());
      const std::string key = StrCat("par-", i);
      ASSERT_TRUE(client.Submit(key, MakeJob(IncompleteSpec())).ok());
      auto reply = client.AwaitTerminal(key);
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      evidence[i] = reply->evidence;
    });
  }
  for (auto& t : threads) t.join();
  for (size_t i = 0; i < kClients; ++i) {
    EXPECT_EQ(evidence[i], oracle) << "client " << i;
  }
  EXPECT_EQ(ts.service->completed_order().size(), kClients);
}

// ---------------------------------------------------------------------------
// The kill-the-server-mid-job test: a retrying client spans a full
// server crash + restart and still gets the bit-for-bit verdict, with
// zero duplicate jobs and zero corrupt checkpoints loaded.

TEST(NetServiceRestartTest, ClientReattachesAcrossServerKillMidJob) {
  const std::string dir = FreshDir("restart");
  const std::string address = FreshSocket("restart");
  const std::string oracle = DirectRcdpEvidence(IncompleteSpec());
  const std::string key = "kill-me";

  // Incarnation 1: crash-after-persist harness armed, so the service
  // dies mid-job after its first durable checkpoint — while the client
  // is already polling.
  DecisionServiceOptions crashing;
  crashing.crash_after_persist = 1;
  TestServer first = StartServer(dir, address, crashing);
  ASSERT_NE(first.server, nullptr);

  // The client retries transport failures and unavailability; give it
  // a long terminal limit — it must survive the whole restart window.
  std::thread awaiter_thread;
  Result<WireReply> awaited = Status::Internal("never awaited");
  {
    NetClient submit_client(address);
    // Slice small enough to persist (and crash) early.
    ASSERT_TRUE(
        submit_client.Submit(key, MakeJob(IncompleteSpec(), /*slice=*/6))
            .ok());
  }
  awaiter_thread = std::thread([&] {
    NetClientOptions copts;
    copts.io_timeout = std::chrono::milliseconds(1000);
    NetClient client(address, copts);
    awaited = client.AwaitTerminal(key, std::chrono::milliseconds(10),
                                   std::chrono::milliseconds(60000));
  });

  // Wait for the simulated kill, then tear the whole incarnation down
  // (taking the listener with it — the client sees kUnavailable, then
  // connection-refused).
  for (int i = 0; i < 2000 && !first.service->crashed(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(first.service->crashed());
  first.server->Shutdown();
  first.server.reset();
  first.service.reset();

  // Incarnation 2 on the same address and store: recovery re-creates
  // the job from its durable record and resumes its checkpoint.
  TestServer second = StartServer(dir, address);
  ASSERT_NE(second.server, nullptr);
  ASSERT_EQ(second.service->RecoveredJobs().size(), 1u);
  EXPECT_EQ(second.service->RecoveredJobs()[0], key);

  awaiter_thread.join();
  ASSERT_TRUE(awaited.ok()) << awaited.status().ToString();
  EXPECT_EQ(awaited->verdict, Verdict::kIncomplete);
  // Bit-for-bit the uninterrupted verdict.
  EXPECT_EQ(awaited->evidence, oracle);
  // Zero duplicate jobs: the restarted service ran exactly one.
  EXPECT_EQ(second.service->completed_order().size(), 1u);
  // Zero corrupt checkpoints loaded.
  EXPECT_EQ(second.service->store().corrupt_files_skipped(), 0u);
}

TEST(NetServiceRestartTest, ResubmitAfterRestartDedupsAgainstDurableRecord) {
  // The idempotency contract must hold across process boundaries: a
  // client that re-submits after a server restart (its retry loop
  // never saw the first ack) is absorbed by the recovered job record,
  // not run twice.
  const std::string dir = FreshDir("redsub");
  const std::string address = FreshSocket("redsub");
  const std::string key = "resubmitted";
  // Sliced so the crash harness fires mid-job, leaving the durable job
  // record behind (a clean shutdown would drain the queue instead).
  const JobSpec job = MakeJob(IncompleteSpec(), /*slice=*/6);

  {
    DecisionServiceOptions crashing;
    crashing.crash_after_persist = 1;
    TestServer first = StartServer(dir, address, crashing);
    ASSERT_NE(first.server, nullptr);
    NetClient client(address);
    ASSERT_TRUE(client.Submit(key, job).ok());
    for (int i = 0; i < 2000 && !first.service->crashed(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(first.service->crashed());
    first.server->Shutdown();
  }

  TestServer second = StartServer(dir, address);
  ASSERT_NE(second.server, nullptr);
  ASSERT_EQ(second.service->RecoveredJobs().size(), 1u);

  NetClient client(address);
  ASSERT_TRUE(client.Submit(key, job).ok());  // the ambiguous retry
  EXPECT_EQ(second.server->stats().submits_deduped, 1u);
  EXPECT_EQ(second.server->stats().submits_admitted, 0u);
  auto reply = client.AwaitTerminal(key);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(second.service->completed_order().size(), 1u);
}

// ---------------------------------------------------------------------------
// Shutdown.

TEST(NetServiceTest, ShutdownIsGracefulAndIdempotent) {
  TestServer ts = StartServer(FreshDir("down"), FreshSocket("down"));
  ASSERT_NE(ts.server, nullptr);
  NetClient client(ts.server->address());
  ASSERT_TRUE(client.ServerStatus().ok());

  ts.server->Shutdown();
  ts.server->Shutdown();  // idempotent

  NetClientOptions copts;
  copts.max_retries = 1;
  copts.io_timeout = std::chrono::milliseconds(200);
  NetClient late(ts.server->address(), copts);
  auto reply = late.ServerStatus();
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace relcomp
