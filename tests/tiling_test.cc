#include <gtest/gtest.h>

#include "completeness/rcdp.h"
#include "completeness/rcqp.h"
#include "constraints/constraint_check.h"
#include "eval/query_eval.h"
#include "reductions/tiling.h"

namespace relcomp {
namespace {

/// All-pairs compatibility: every tile may sit next to every tile.
TilingInstance FreeInstance(size_t n, size_t num_tiles) {
  TilingInstance t;
  t.n = n;
  t.num_tiles = num_tiles;
  t.t0 = 0;
  for (size_t a = 0; a < num_tiles; ++a) {
    for (size_t b = 0; b < num_tiles; ++b) {
      t.vertical.emplace_back(a, b);
      t.horizontal.emplace_back(a, b);
    }
  }
  return t;
}

/// A checkerboard instance: adjacent tiles must differ. Solvable for
/// any grid when num_tiles >= 2.
TilingInstance CheckerboardInstance(size_t n) {
  TilingInstance t;
  t.n = n;
  t.num_tiles = 2;
  t.t0 = 0;
  for (size_t a = 0; a < 2; ++a) {
    for (size_t b = 0; b < 2; ++b) {
      if (a != b) {
        t.vertical.emplace_back(a, b);
        t.horizontal.emplace_back(a, b);
      }
    }
  }
  return t;
}

/// Unsolvable: tile 0 has no compatible right neighbor.
TilingInstance BlockedInstance(size_t n) {
  TilingInstance t;
  t.n = n;
  t.num_tiles = 2;
  t.t0 = 0;
  t.vertical = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  t.horizontal = {};  // nothing may sit to the right of anything
  return t;
}

TEST(TilingSolverTest, SolvesAndRefutes) {
  auto free_solution = SolveTiling(FreeInstance(1, 2));
  ASSERT_TRUE(free_solution.has_value());
  EXPECT_EQ(free_solution->size(), 4u);
  EXPECT_EQ((*free_solution)[0], 0u);  // top-left is t0

  auto checker = SolveTiling(CheckerboardInstance(2));
  ASSERT_TRUE(checker.has_value());
  // Verify the checkerboard property.
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c + 1 < 4; ++c) {
      EXPECT_NE((*checker)[r * 4 + c], (*checker)[r * 4 + c + 1]);
    }
  }

  EXPECT_FALSE(SolveTiling(BlockedInstance(1)).has_value());
}

TEST(TilingEncodingTest, WitnessIsPartiallyClosedAndComplete) {
  TilingInstance t = CheckerboardInstance(1);
  auto solution = SolveTiling(t);
  ASSERT_TRUE(solution.has_value());
  auto encoded = EncodeTilingRcqp(t);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  auto witness = BuildTilingWitness(t, *solution, *encoded);
  ASSERT_TRUE(witness.ok()) << witness.status().ToString();

  auto closed = Satisfies(encoded->constraints, *witness, encoded->master);
  ASSERT_TRUE(closed.ok()) << closed.status().ToString();
  EXPECT_TRUE(*closed);

  auto answer = Evaluate(encoded->query, *witness);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->size(), 1u);  // Rb = {(0)}

  auto complete = DecideRcdp(encoded->query, *witness, encoded->master,
                             encoded->constraints);
  ASSERT_TRUE(complete.ok()) << complete.status().ToString();
  EXPECT_TRUE(complete->complete);
}

TEST(TilingEncodingTest, Rank2WitnessIsPartiallyClosedAndComplete) {
  TilingInstance t = CheckerboardInstance(2);
  auto solution = SolveTiling(t);
  ASSERT_TRUE(solution.has_value());
  auto encoded = EncodeTilingRcqp(t);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  auto witness = BuildTilingWitness(t, *solution, *encoded);
  ASSERT_TRUE(witness.ok()) << witness.status().ToString();

  auto closed = Satisfies(encoded->constraints, *witness, encoded->master);
  ASSERT_TRUE(closed.ok()) << closed.status().ToString();
  EXPECT_TRUE(*closed);

  auto complete = DecideRcdp(encoded->query, *witness, encoded->master,
                             encoded->constraints);
  ASSERT_TRUE(complete.ok()) << complete.status().ToString();
  EXPECT_TRUE(complete->complete);
}

TEST(TilingEncodingTest, BadGridViolatesConstraints) {
  TilingInstance t = CheckerboardInstance(1);
  // An all-zeros grid breaks the checkerboard compatibilities.
  std::vector<size_t> bad_grid = {0, 0, 0, 0};
  auto encoded = EncodeTilingRcqp(t);
  ASSERT_TRUE(encoded.ok());
  auto witness = BuildTilingWitness(t, bad_grid, *encoded);
  ASSERT_TRUE(witness.ok());
  auto closed = Satisfies(encoded->constraints, *witness, encoded->master);
  ASSERT_TRUE(closed.ok());
  EXPECT_FALSE(*closed);
}

TEST(TilingEncodingTest, NoTilingMeansEveryDatabaseIncomplete) {
  TilingInstance t = BlockedInstance(1);
  ASSERT_FALSE(SolveTiling(t).has_value());
  auto encoded = EncodeTilingRcqp(t);
  ASSERT_TRUE(encoded.ok());
  // The empty database satisfies V but is incomplete: Rb can always be
  // pumped because no traced hierarchy can ever exist.
  Database empty(encoded->db_schema);
  auto closed = Satisfies(encoded->constraints, empty, encoded->master);
  ASSERT_TRUE(closed.ok());
  EXPECT_TRUE(*closed);
  auto result = DecideRcdp(encoded->query, empty, encoded->master,
                           encoded->constraints);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->complete);

  // Adding any R1 rows that satisfy V still leaves Rb pumpable.
  Database attempt(encoded->db_schema);
  ASSERT_TRUE(attempt
                  .Insert("R1", Tuple({Value::Str("h"), Value::Int(0),
                                       Value::Int(0), Value::Int(0),
                                       Value::Int(0), Value::Int(0)}))
                  .ok());
  auto attempt_closed =
      Satisfies(encoded->constraints, attempt, encoded->master);
  ASSERT_TRUE(attempt_closed.ok());
  // The all-zero 2x2 block violates the horizontal compatibility (the
  // blocked instance has no horizontal pairs) — not even partially
  // closed.
  EXPECT_FALSE(*attempt_closed);
}

TEST(TilingEncodingTest, SolvableInstanceWitnessBeatsNonWitness) {
  // For a solvable instance the witness is complete, while a database
  // holding only Rb (no hierarchy) is incomplete — the hierarchy is
  // what pins Rb down.
  TilingInstance t = FreeInstance(1, 2);
  auto encoded = EncodeTilingRcqp(t);
  ASSERT_TRUE(encoded.ok());
  Database only_rb(encoded->db_schema);
  ASSERT_TRUE(only_rb.Insert("Rb", Tuple({Value::Int(0)})).ok());
  auto result = DecideRcdp(encoded->query, only_rb, encoded->master,
                           encoded->constraints);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->complete);
}

}  // namespace
}  // namespace relcomp
