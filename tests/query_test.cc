#include <gtest/gtest.h>

#include "query/any_query.h"
#include "query/parser.h"
#include "query/positive_query.h"

namespace relcomp {
namespace {

std::shared_ptr<Schema> TwoRelationSchema() {
  auto schema = std::make_shared<Schema>();
  EXPECT_TRUE(schema->AddRelation("R", 2).ok());
  EXPECT_TRUE(schema->AddRelation("S", 1).ok());
  return schema;
}

TEST(ParserTest, ParsesConjunctiveQuery) {
  auto q = ParseConjunctiveQuery(R"(Q(x) :- R(x, y), S(y), y != "a".)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->name(), "Q");
  EXPECT_EQ(q->arity(), 1u);
  EXPECT_EQ(q->body().size(), 3u);
  EXPECT_EQ(q->RelationAtoms().size(), 2u);
  EXPECT_EQ(q->ComparisonAtoms().size(), 1u);
  EXPECT_EQ(q->ToString(), "Q(x) :- R(x, y), S(y), y != \"a\"");
}

TEST(ParserTest, ParsesConstantsAndAnonymousVariables) {
  auto q = ParseConjunctiveQuery("Q(x) :- R(x, 5), S(_), R(_, -3).");
  ASSERT_TRUE(q.ok());
  const Atom& first = q->body()[0];
  EXPECT_EQ(first.args()[1].value(), Value::Int(5));
  // The two anonymous variables must be distinct.
  EXPECT_NE(q->body()[1].args()[0].var(), q->body()[2].args()[0].var());
}

TEST(ParserTest, CommentsAndOptionalDots) {
  auto q = ParseConjunctiveQuery(
      "% header comment\nQ(x) :- R(x, y) % trailing\n");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->body().size(), 1u);
}

TEST(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(ParseConjunctiveQuery("Q(x) :-").ok() &&
               false);  // empty body is allowed; check real errors below
  EXPECT_FALSE(ParseConjunctiveQuery("Q(x :- R(x)").ok());
  EXPECT_FALSE(ParseConjunctiveQuery("Q(x) : R(x)").ok());
  EXPECT_FALSE(ParseConjunctiveQuery(R"(Q(x) :- R(x, "unterminated)").ok());
}

TEST(ParserTest, ParsesUnionQuery) {
  auto u = ParseUnionQuery("Q(x) :- R(x, y).\nQ(x) :- S(x).");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->disjuncts().size(), 2u);
  EXPECT_EQ(u->arity(), 1u);
  // Mismatched head predicate is rejected.
  EXPECT_FALSE(ParseUnionQuery("Q(x) :- R(x, y).\nP(x) :- S(x).").ok());
}

TEST(ParserTest, ParsesDatalog) {
  auto p = ParseDatalogProgram(
      "T(x, y) :- R(x, y).\nT(x, z) :- R(x, y), T(y, z).");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->rules().size(), 2u);
  EXPECT_EQ(p->output_predicate(), "T");
  EXPECT_EQ(p->IdbArity("T"), 2);
}

TEST(ParserTest, ParsesFoQuery) {
  auto q = ParseFoQuery("Q(x) := exists y. (R(x, y) & !(S(y) | x = y))");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->arity(), 1u);
  EXPECT_FALSE(q->IsPositiveExistential());
  auto pos = ParseFoQuery("Q(x) := exists y. (R(x, y) & (S(y) | S(x)))");
  ASSERT_TRUE(pos.ok());
  EXPECT_TRUE(pos->IsPositiveExistential());
}

TEST(ParserTest, ForallBindsRight) {
  auto q = ParseFoQuery("Q(x) := S(x) & forall y. (R(x, y) | S(y))");
  ASSERT_TRUE(q.ok());
  // 'forall' extends to the end, so the top level is the conjunction.
  EXPECT_EQ(q->formula()->kind(), Formula::Kind::kAnd);
}

TEST(ValidationTest, SafetyIsEnforced) {
  auto schema = TwoRelationSchema();
  auto unsafe = ParseConjunctiveQuery("Q(z) :- R(x, y).");
  ASSERT_TRUE(unsafe.ok());
  EXPECT_EQ(unsafe->Validate(*schema).code(), StatusCode::kInvalidArgument);
  auto unsafe_cmp = ParseConjunctiveQuery("Q(x) :- R(x, y), z != 1.");
  ASSERT_TRUE(unsafe_cmp.ok());
  EXPECT_FALSE(unsafe_cmp->Validate(*schema).ok());
}

TEST(ValidationTest, ArityAndUnknownRelations) {
  auto schema = TwoRelationSchema();
  auto bad_arity = ParseConjunctiveQuery("Q(x) :- R(x).");
  ASSERT_TRUE(bad_arity.ok());
  EXPECT_FALSE(bad_arity->Validate(*schema).ok());
  auto unknown = ParseConjunctiveQuery("Q(x) :- ZZZ(x).");
  ASSERT_TRUE(unknown.ok());
  EXPECT_FALSE(unknown->Validate(*schema).ok());
}

TEST(ValidationTest, DatalogSafetyAndArities) {
  auto schema = TwoRelationSchema();
  auto p = ParseDatalogProgram("T(x, z) :- R(x, y), T(y, z).\nT(x, y) :- R(x, y).");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Validate(*schema).ok());
  auto unsafe = ParseDatalogProgram("T(x, z) :- R(x, y).");
  ASSERT_TRUE(unsafe.ok());
  EXPECT_FALSE(unsafe->Validate(*schema).ok());
  auto collision = ParseDatalogProgram("R(x, y) :- S(x), S(y).");
  ASSERT_TRUE(collision.ok());
  EXPECT_FALSE(collision->Validate(*schema).ok());
}

TEST(AnyQueryTest, LanguageTagsAndConversion) {
  auto cq = ParseConjunctiveQuery("Q(x) :- R(x, y).");
  ASSERT_TRUE(cq.ok());
  AnyQuery q = AnyQuery::Cq(*cq);
  EXPECT_EQ(q.language(), QueryLanguage::kCq);
  EXPECT_TRUE(q.IsMonotone());
  auto as_union = q.ToUnion();
  ASSERT_TRUE(as_union.ok());
  EXPECT_EQ(as_union->disjuncts().size(), 1u);
}

TEST(AnyQueryTest, PositiveTagRejectsNegation) {
  auto schema = TwoRelationSchema();
  auto fo = ParseFoQuery("Q(x) := S(x) & !S(x)");
  ASSERT_TRUE(fo.ok());
  AnyQuery q = AnyQuery::Positive(*fo);
  EXPECT_FALSE(q.Validate(*schema).ok());
}

TEST(DnfTest, UnfoldsPositiveQueryToUnion) {
  auto fo = ParseFoQuery("Q(x) := (S(x) | exists y. R(x, y)) & S(x)");
  ASSERT_TRUE(fo.ok());
  ASSERT_TRUE(fo->IsPositiveExistential());
  auto u = PositiveToUnion(*fo, 100);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->disjuncts().size(), 2u);
}

TEST(DnfTest, RenamesQuantifiedVariablesApart) {
  // Both disjuncts bind y; after unfolding into one namespace the
  // occurrences must not collide with the free x or each other.
  auto fo = ParseFoQuery(
      "Q(x) := (exists y. R(x, y)) & (exists y. S(y))");
  ASSERT_TRUE(fo.ok());
  auto u = PositiveToUnion(*fo, 100);
  ASSERT_TRUE(u.ok());
  ASSERT_EQ(u->disjuncts().size(), 1u);
  const ConjunctiveQuery& cq = u->disjuncts()[0];
  const std::string y1 = cq.body()[0].args()[1].var();
  const std::string y2 = cq.body()[1].args()[0].var();
  EXPECT_NE(y1, y2);
}

TEST(DnfTest, RespectsDisjunctCap) {
  // (a|b) & (c|d) & (e|f) has 8 disjuncts.
  auto fo = ParseFoQuery(
      "Q(x) := (S(x) | S(x)) & (S(x) | S(x)) & (S(x) | S(x))");
  ASSERT_TRUE(fo.ok());
  EXPECT_TRUE(PositiveToUnion(*fo, 8).ok());
  EXPECT_EQ(PositiveToUnion(*fo, 7).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(DnfTest, RejectsNegation) {
  auto fo = ParseFoQuery("Q(x) := S(x) & !S(x)");
  ASSERT_TRUE(fo.ok());
  EXPECT_FALSE(PositiveToUnion(*fo, 100).ok());
}

TEST(FormulaTest, FreeVariablesRespectShadowing) {
  auto fo = ParseFoQuery("Q(x) := R(x, x) & exists x. S(x)");
  ASSERT_TRUE(fo.ok());
  std::set<std::string> free = fo->formula()->FreeVariables();
  EXPECT_EQ(free, std::set<std::string>{"x"});
}

TEST(FormulaTest, ValidateChecksFreeVariablesMatchHead) {
  auto schema = TwoRelationSchema();
  auto fo = ParseFoQuery("Q(x, z) := R(x, y)");
  ASSERT_TRUE(fo.ok());
  EXPECT_FALSE(fo->Validate(*schema).ok());
}

}  // namespace
}  // namespace relcomp
