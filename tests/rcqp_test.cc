#include <gtest/gtest.h>

#include "completeness/brute_force.h"
#include "completeness/rcdp.h"
#include "completeness/rcqp.h"
#include "constraints/integrity_constraints.h"
#include "query/parser.h"
#include "workload/crm_scenario.h"

namespace relcomp {
namespace {

class RcqpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db_schema = std::make_shared<Schema>();
    ASSERT_TRUE(db_schema->AddRelation("R", 2).ok());
    ASSERT_TRUE(db_schema
                    ->AddRelation(RelationSchema(
                        "B", {AttributeDef::Over("b", Domain::Boolean()),
                              AttributeDef::Inf("v")}))
                    .ok());
    db_schema_ = db_schema;
    auto master_schema = std::make_shared<Schema>();
    ASSERT_TRUE(master_schema->AddRelation("M", 1).ok());
    master_schema_ = master_schema;
    master_ = Database(master_schema_);
  }

  std::shared_ptr<const Schema> db_schema_;
  std::shared_ptr<const Schema> master_schema_;
  Database master_;
};

TEST_F(RcqpTest, UnboundedHeadVariableWithoutConstraints) {
  // Q(x) :- R(x, y) with V = ∅: x ranges over the infinite domain with
  // nothing bounding it — no complete database exists (Prop 4.3).
  auto q = ParseQuery("Q(x) :- R(x, y).", QueryLanguage::kCq);
  ASSERT_TRUE(q.ok());
  ConstraintSet none;
  auto result = DecideRcqp(*q, db_schema_, master_, none);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->exists);
  EXPECT_TRUE(result->exhaustive);
  EXPECT_EQ(result->method, "ind-syntactic");
  ASSERT_EQ(result->unbounded_variables.size(), 1u);
  EXPECT_EQ(result->unbounded_variables[0].variable, "x");
}

TEST_F(RcqpTest, IndBoundedHeadVariableExists) {
  // With π0(R) ⊆ M the head variable is bounded (E4) — a complete
  // database exists, and the constructed witness passes RCDP.
  ASSERT_TRUE(master_.Insert("M", Tuple::Ints({1})).ok());
  ASSERT_TRUE(master_.Insert("M", Tuple::Ints({2})).ok());
  ConstraintSet v;
  auto ind = MakeIndToMaster(*db_schema_, "R", {0}, "M", {0});
  ASSERT_TRUE(ind.ok());
  v.Add(*ind);
  auto q = ParseQuery("Q(x) :- R(x, y).", QueryLanguage::kCq);
  ASSERT_TRUE(q.ok());
  auto result = DecideRcqp(*q, db_schema_, master_, v);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->exists);
  ASSERT_TRUE(result->witness.has_value());
  auto verify = DecideRcdp(*q, *result->witness, master_, v);
  ASSERT_TRUE(verify.ok()) << verify.status().ToString();
  EXPECT_TRUE(verify->complete);
}

TEST_F(RcqpTest, FiniteDomainHeadVariableExists) {
  // E3: the head variable ranges over the Boolean domain.
  auto q = ParseQuery("Q(b) :- B(b, v).", QueryLanguage::kCq);
  ASSERT_TRUE(q.ok());
  ConstraintSet none;
  auto result = DecideRcqp(*q, db_schema_, master_, none);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->exists);
  if (result->witness.has_value()) {
    auto verify = DecideRcdp(*q, *result->witness, master_, none);
    ASSERT_TRUE(verify.ok());
    EXPECT_TRUE(verify->complete);
  }
}

TEST_F(RcqpTest, UnrealizableDisjunctDoesNotBlockExistence) {
  // V forbids any R tuple (π0(R) ⊆ M with M empty): the R-disjunct is
  // unrealizable, so only the B-disjunct matters — exists.
  ConstraintSet v;
  auto ind = MakeIndToMaster(*db_schema_, "R", {0}, "M", {0});
  ASSERT_TRUE(ind.ok());
  v.Add(*ind);
  auto q = ParseQuery("Q(x) :- R(x, y).\nQ(x) :- B(x, y), x = 1.",
                      QueryLanguage::kUcq);
  ASSERT_TRUE(q.ok());
  auto result = DecideRcqp(*q, db_schema_, master_, v);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->exists);
}

TEST_F(RcqpTest, Example41FdBlocksAdditions) {
  // Example 4.1: Q4 finds Supt tuples with eid = e0 and dept = d0; the
  // FD eid → dept makes Q4 relatively complete: the witness D− holds a
  // single tuple (e0, d', c) with d' != d0, which blocks any (e0, d0, ·)
  // addition. General-constraints path (the FD compiles to CQ CCs).
  auto scenario = CrmScenario::Make();
  ASSERT_TRUE(scenario.ok());
  FunctionalDependency fd("Supt", {0}, {1});
  auto ccs = fd.ToContainmentConstraints(*scenario->db_schema());
  ASSERT_TRUE(ccs.ok());
  ConstraintSet v;
  for (auto& cc : *ccs) v.Add(std::move(cc));
  auto q4 = scenario->Q4();
  ASSERT_TRUE(q4.ok());

  RcqpOptions options;
  options.max_witness_tuples = 1;
  options.max_pool_size = 2048;
  auto result = DecideRcqp(*q4, scenario->db_schema(), scenario->master(), v,
                           options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->exists);
  ASSERT_TRUE(result->witness.has_value());
  // The witness must itself be verified complete (the decider verifies
  // with RCDP before returning; double-check here).
  auto verify = DecideRcdp(*q4, *result->witness, scenario->master(), v);
  ASSERT_TRUE(verify.ok());
  EXPECT_TRUE(verify->complete);
}

TEST_F(RcqpTest, Example41Q2NotCompleteUnderEidDeptFdAlone) {
  // Example 4.1 second part: with only eid → dept (cid free), Q2 is
  // not relatively complete — fresh cid values can always be pumped.
  auto scenario = CrmScenario::Make();
  ASSERT_TRUE(scenario.ok());
  FunctionalDependency fd("Supt", {0}, {1});
  auto ccs = fd.ToContainmentConstraints(*scenario->db_schema());
  ASSERT_TRUE(ccs.ok());
  ConstraintSet v;
  for (auto& cc : *ccs) v.Add(std::move(cc));
  auto q2 = scenario->Q2();
  ASSERT_TRUE(q2.ok());

  RcqpOptions options;
  options.max_witness_tuples = 2;
  options.max_pool_size = 600;
  options.max_candidates = 30000;
  auto result = DecideRcqp(*q2, scenario->db_schema(), scenario->master(), v,
                           options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->exists);
  // The search is budget-bounded here, so NotExists need not be
  // exhaustive — but it must never claim exhaustiveness wrongly.
  if (result->exhaustive) {
    BruteForceOptions bf;
    bf.max_database_tuples = 2;
    auto brute = BruteForceRcqp(*q2, scenario->db_schema(),
                                scenario->master(), v, bf);
    ASSERT_TRUE(brute.ok());
    EXPECT_FALSE(brute->exists);
  }
}

TEST_F(RcqpTest, Example41Q2CompleteUnderFullFd) {
  // With eid → dept, cid (the paper's Σ2), Q2 is relatively complete:
  // witness D+ = {(e0, d0, c0)} pins e0's single supported customer.
  auto scenario = CrmScenario::Make();
  ASSERT_TRUE(scenario.ok());
  auto sigma2 = scenario->FdSigma2();
  ASSERT_TRUE(sigma2.ok());
  auto q2 = scenario->Q2();
  ASSERT_TRUE(q2.ok());

  RcqpOptions options;
  options.max_witness_tuples = 1;
  options.max_pool_size = 2048;
  auto result = DecideRcqp(*q2, scenario->db_schema(), scenario->master(),
                           *sigma2, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->exists);
  ASSERT_TRUE(result->witness.has_value());
}

TEST_F(RcqpTest, EmptyWitnessWhenConstraintsForbidEverything) {
  // π0(R) ⊆ M with empty master: no R tuple can ever exist, so the
  // empty database is complete for any R query.
  ConstraintSet v;
  auto ind = MakeIndToMaster(*db_schema_, "R", {0}, "M", {0});
  ASSERT_TRUE(ind.ok());
  v.Add(*ind);
  auto q = ParseQuery("Q(x, y) :- R(x, y).", QueryLanguage::kCq);
  ASSERT_TRUE(q.ok());
  auto result = DecideRcqp(*q, db_schema_, master_, v);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->exists);
  ASSERT_TRUE(result->witness.has_value());
  EXPECT_TRUE(result->witness->Empty());
}

TEST_F(RcqpTest, NoPartiallyClosedDatabaseAtAll) {
  // A constant-true CC with an empty target can never be satisfied:
  // q() :- . ⊆ ∅ — RCQ is empty because no D is partially closed.
  ConstraintSet v;
  auto q_true = ParseConjunctiveQuery("always() :- .");
  ASSERT_TRUE(q_true.ok());
  v.Add(ContainmentConstraint::SubsetOfEmpty(AnyQuery::Cq(*q_true)));
  auto q = ParseQuery("Q(x, y) :- R(x, y).", QueryLanguage::kCq);
  ASSERT_TRUE(q.ok());
  auto result = DecideRcqp(*q, db_schema_, master_, v);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->exists);
  EXPECT_TRUE(result->exhaustive);
  EXPECT_EQ(result->method, "no-partially-closed-database");
}

TEST_F(RcqpTest, UnsatisfiableQueryAlwaysExists) {
  auto q = ParseQuery("Q(x) :- R(x, y), x = 1, x = 2.", QueryLanguage::kCq);
  ASSERT_TRUE(q.ok());
  ConstraintSet none;
  auto result = DecideRcqp(*q, db_schema_, master_, none);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->exists);
}

TEST_F(RcqpTest, UndecidableLanguagesAreRefused) {
  auto fp = ParseQuery("T(x) :- R(x, y).\nT(x) :- R(x, y), T(y).",
                       QueryLanguage::kDatalog);
  ASSERT_TRUE(fp.ok());
  ConstraintSet none;
  auto result = DecideRcqp(*fp, db_schema_, master_, none);
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST_F(RcqpTest, AnalyzeIndBoundednessReportsPerVariable) {
  ASSERT_TRUE(master_.Insert("M", Tuple::Ints({1})).ok());
  ConstraintSet v;
  auto ind = MakeIndToMaster(*db_schema_, "R", {0}, "M", {0});
  ASSERT_TRUE(ind.ok());
  v.Add(*ind);
  auto q = ParseQuery("Q(x, y) :- R(x, y).", QueryLanguage::kCq);
  ASSERT_TRUE(q.ok());
  auto analysis = AnalyzeIndBoundedness(*q, v, *db_schema_);
  ASSERT_TRUE(analysis.ok());
  ASSERT_EQ(analysis->size(), 1u);
  ASSERT_EQ((*analysis)[0].size(), 2u);
  EXPECT_EQ((*analysis)[0][0].variable, "x");
  EXPECT_TRUE((*analysis)[0][0].ind_bounded);
  EXPECT_FALSE((*analysis)[0][0].finite_domain);
  EXPECT_EQ((*analysis)[0][1].variable, "y");
  EXPECT_FALSE((*analysis)[0][1].bounded());
}

// Exhaustive agreement with brute force on a micro instance where the
// pool is fully enumerable.
TEST_F(RcqpTest, WitnessSearchAgreesWithBruteForceOnMicroInstance) {
  // Schema with a single unary relation bounded by a key-style CC:
  // S(x), S(y), x != y ⊆ ∅ (at most one S tuple). Q(x) :- S(x) is then
  // relatively complete: witness = any single tuple.
  auto schema = std::make_shared<Schema>();
  ASSERT_TRUE(schema->AddRelation("S", 1).ok());
  ConstraintSet v;
  auto at_most_one =
      ParseConjunctiveQuery("amo() :- S(x), S(y), x != y.");
  ASSERT_TRUE(at_most_one.ok());
  v.Add(ContainmentConstraint::SubsetOfEmpty(AnyQuery::Cq(*at_most_one)));
  auto q = ParseQuery("Q(x) :- S(x).", QueryLanguage::kCq);
  ASSERT_TRUE(q.ok());

  RcqpOptions options;
  options.max_witness_tuples = 4;
  auto result = DecideRcqp(*q, schema, master_, v, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->exists);
  ASSERT_TRUE(result->witness.has_value());
  EXPECT_EQ(result->witness->TotalTuples(), 1u);

  BruteForceOptions bf;
  bf.max_database_tuples = 1;
  auto brute = BruteForceRcqp(*q, schema, master_, v, bf);
  ASSERT_TRUE(brute.ok());
  EXPECT_TRUE(brute->exists);
}

TEST_F(RcqpTest, GeneralPathNotExistsIsExactWhenExhaustive) {
  // Q(x) :- S(x) with a CC that merely caps duplicates per value but
  // never bounds x: q(x) :- S(x) ⊆ π(M) with M empty would forbid all
  // tuples (exists). Instead use a CC that allows tuples but cannot
  // bound x: the pair constraint from the previous test plus master
  // value... here: no constraints at all, general path forced by a
  // non-IND CC that is vacuous: q() :- S(x), S(y), x = y, x != y ⊆ ∅.
  auto schema = std::make_shared<Schema>();
  ASSERT_TRUE(schema->AddRelation("S", 1).ok());
  ConstraintSet v;
  auto vacuous = ParseConjunctiveQuery("vac() :- S(x), S(y), x = y, x != y.");
  ASSERT_TRUE(vacuous.ok());
  v.Add(ContainmentConstraint::SubsetOfEmpty(AnyQuery::Cq(*vacuous)));
  auto q = ParseQuery("Q(x) :- S(x).", QueryLanguage::kCq);
  ASSERT_TRUE(q.ok());

  RcqpOptions options;
  options.max_witness_tuples = 16;  // ≥ pool size for exhaustiveness
  options.max_pool_size = 16;
  options.max_candidates = 100000;
  auto result = DecideRcqp(*q, schema, master_, v, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->exists);
  EXPECT_TRUE(result->exhaustive);
}

}  // namespace
}  // namespace relcomp
