
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automata/two_head_dfa.cc" "src/CMakeFiles/relcomp.dir/automata/two_head_dfa.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/automata/two_head_dfa.cc.o.d"
  "/root/repo/src/completeness/active_domain.cc" "src/CMakeFiles/relcomp.dir/completeness/active_domain.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/completeness/active_domain.cc.o.d"
  "/root/repo/src/completeness/brute_force.cc" "src/CMakeFiles/relcomp.dir/completeness/brute_force.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/completeness/brute_force.cc.o.d"
  "/root/repo/src/completeness/characterizations.cc" "src/CMakeFiles/relcomp.dir/completeness/characterizations.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/completeness/characterizations.cc.o.d"
  "/root/repo/src/completeness/rcdp.cc" "src/CMakeFiles/relcomp.dir/completeness/rcdp.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/completeness/rcdp.cc.o.d"
  "/root/repo/src/completeness/rcqp.cc" "src/CMakeFiles/relcomp.dir/completeness/rcqp.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/completeness/rcqp.cc.o.d"
  "/root/repo/src/completeness/valuation_search.cc" "src/CMakeFiles/relcomp.dir/completeness/valuation_search.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/completeness/valuation_search.cc.o.d"
  "/root/repo/src/constraints/constraint_check.cc" "src/CMakeFiles/relcomp.dir/constraints/constraint_check.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/constraints/constraint_check.cc.o.d"
  "/root/repo/src/constraints/containment_constraint.cc" "src/CMakeFiles/relcomp.dir/constraints/containment_constraint.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/constraints/containment_constraint.cc.o.d"
  "/root/repo/src/constraints/integrity_constraints.cc" "src/CMakeFiles/relcomp.dir/constraints/integrity_constraints.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/constraints/integrity_constraints.cc.o.d"
  "/root/repo/src/eval/bindings.cc" "src/CMakeFiles/relcomp.dir/eval/bindings.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/eval/bindings.cc.o.d"
  "/root/repo/src/eval/conjunctive_eval.cc" "src/CMakeFiles/relcomp.dir/eval/conjunctive_eval.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/eval/conjunctive_eval.cc.o.d"
  "/root/repo/src/eval/datalog_eval.cc" "src/CMakeFiles/relcomp.dir/eval/datalog_eval.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/eval/datalog_eval.cc.o.d"
  "/root/repo/src/eval/fo_eval.cc" "src/CMakeFiles/relcomp.dir/eval/fo_eval.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/eval/fo_eval.cc.o.d"
  "/root/repo/src/eval/query_eval.cc" "src/CMakeFiles/relcomp.dir/eval/query_eval.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/eval/query_eval.cc.o.d"
  "/root/repo/src/incomplete/vtable.cc" "src/CMakeFiles/relcomp.dir/incomplete/vtable.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/incomplete/vtable.cc.o.d"
  "/root/repo/src/query/any_query.cc" "src/CMakeFiles/relcomp.dir/query/any_query.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/query/any_query.cc.o.d"
  "/root/repo/src/query/atom.cc" "src/CMakeFiles/relcomp.dir/query/atom.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/query/atom.cc.o.d"
  "/root/repo/src/query/conjunctive_query.cc" "src/CMakeFiles/relcomp.dir/query/conjunctive_query.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/query/conjunctive_query.cc.o.d"
  "/root/repo/src/query/datalog.cc" "src/CMakeFiles/relcomp.dir/query/datalog.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/query/datalog.cc.o.d"
  "/root/repo/src/query/fo_query.cc" "src/CMakeFiles/relcomp.dir/query/fo_query.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/query/fo_query.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/relcomp.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/query/parser.cc.o.d"
  "/root/repo/src/query/positive_query.cc" "src/CMakeFiles/relcomp.dir/query/positive_query.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/query/positive_query.cc.o.d"
  "/root/repo/src/query/term.cc" "src/CMakeFiles/relcomp.dir/query/term.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/query/term.cc.o.d"
  "/root/repo/src/query/union_query.cc" "src/CMakeFiles/relcomp.dir/query/union_query.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/query/union_query.cc.o.d"
  "/root/repo/src/reductions/common.cc" "src/CMakeFiles/relcomp.dir/reductions/common.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/reductions/common.cc.o.d"
  "/root/repo/src/reductions/fixed_rcqp_family.cc" "src/CMakeFiles/relcomp.dir/reductions/fixed_rcqp_family.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/reductions/fixed_rcqp_family.cc.o.d"
  "/root/repo/src/reductions/forall_exists_3sat.cc" "src/CMakeFiles/relcomp.dir/reductions/forall_exists_3sat.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/reductions/forall_exists_3sat.cc.o.d"
  "/root/repo/src/reductions/sat.cc" "src/CMakeFiles/relcomp.dir/reductions/sat.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/reductions/sat.cc.o.d"
  "/root/repo/src/reductions/three_sat_rcqp.cc" "src/CMakeFiles/relcomp.dir/reductions/three_sat_rcqp.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/reductions/three_sat_rcqp.cc.o.d"
  "/root/repo/src/reductions/tiling.cc" "src/CMakeFiles/relcomp.dir/reductions/tiling.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/reductions/tiling.cc.o.d"
  "/root/repo/src/relational/database.cc" "src/CMakeFiles/relcomp.dir/relational/database.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/relational/database.cc.o.d"
  "/root/repo/src/relational/domain.cc" "src/CMakeFiles/relcomp.dir/relational/domain.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/relational/domain.cc.o.d"
  "/root/repo/src/relational/relation.cc" "src/CMakeFiles/relcomp.dir/relational/relation.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/relational/relation.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/CMakeFiles/relcomp.dir/relational/schema.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/relational/schema.cc.o.d"
  "/root/repo/src/relational/tuple.cc" "src/CMakeFiles/relcomp.dir/relational/tuple.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/relational/tuple.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/CMakeFiles/relcomp.dir/relational/value.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/relational/value.cc.o.d"
  "/root/repo/src/spec/spec_parser.cc" "src/CMakeFiles/relcomp.dir/spec/spec_parser.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/spec/spec_parser.cc.o.d"
  "/root/repo/src/tableau/containment.cc" "src/CMakeFiles/relcomp.dir/tableau/containment.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/tableau/containment.cc.o.d"
  "/root/repo/src/tableau/homomorphism.cc" "src/CMakeFiles/relcomp.dir/tableau/homomorphism.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/tableau/homomorphism.cc.o.d"
  "/root/repo/src/tableau/minimize.cc" "src/CMakeFiles/relcomp.dir/tableau/minimize.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/tableau/minimize.cc.o.d"
  "/root/repo/src/tableau/single_relation.cc" "src/CMakeFiles/relcomp.dir/tableau/single_relation.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/tableau/single_relation.cc.o.d"
  "/root/repo/src/tableau/tableau.cc" "src/CMakeFiles/relcomp.dir/tableau/tableau.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/tableau/tableau.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/relcomp.dir/util/status.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/util/status.cc.o.d"
  "/root/repo/src/util/str.cc" "src/CMakeFiles/relcomp.dir/util/str.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/util/str.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/CMakeFiles/relcomp.dir/util/table_printer.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/util/table_printer.cc.o.d"
  "/root/repo/src/workload/crm_scenario.cc" "src/CMakeFiles/relcomp.dir/workload/crm_scenario.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/workload/crm_scenario.cc.o.d"
  "/root/repo/src/workload/generators.cc" "src/CMakeFiles/relcomp.dir/workload/generators.cc.o" "gcc" "src/CMakeFiles/relcomp.dir/workload/generators.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
