file(REMOVE_RECURSE
  "librelcomp_bench_util.a"
)
