file(REMOVE_RECURSE
  "CMakeFiles/relcomp_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/relcomp_bench_util.dir/bench_util.cc.o.d"
  "librelcomp_bench_util.a"
  "librelcomp_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relcomp_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
