# Empty dependencies file for relcomp_bench_util.
# This may be replaced when dependencies are built.
