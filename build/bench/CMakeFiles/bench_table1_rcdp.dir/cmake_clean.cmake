file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_rcdp.dir/bench_table1_rcdp.cc.o"
  "CMakeFiles/bench_table1_rcdp.dir/bench_table1_rcdp.cc.o.d"
  "bench_table1_rcdp"
  "bench_table1_rcdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_rcdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
