file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_rcqp.dir/bench_table2_rcqp.cc.o"
  "CMakeFiles/bench_table2_rcqp.dir/bench_table2_rcqp.cc.o.d"
  "bench_table2_rcqp"
  "bench_table2_rcqp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_rcqp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
