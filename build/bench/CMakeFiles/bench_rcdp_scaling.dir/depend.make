# Empty dependencies file for bench_rcdp_scaling.
# This may be replaced when dependencies are built.
