file(REMOVE_RECURSE
  "CMakeFiles/bench_rcdp_scaling.dir/bench_rcdp_scaling.cc.o"
  "CMakeFiles/bench_rcdp_scaling.dir/bench_rcdp_scaling.cc.o.d"
  "bench_rcdp_scaling"
  "bench_rcdp_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rcdp_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
