file(REMOVE_RECURSE
  "CMakeFiles/bench_ic_compile.dir/bench_ic_compile.cc.o"
  "CMakeFiles/bench_ic_compile.dir/bench_ic_compile.cc.o.d"
  "bench_ic_compile"
  "bench_ic_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ic_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
