# Empty compiler generated dependencies file for bench_ic_compile.
# This may be replaced when dependencies are built.
