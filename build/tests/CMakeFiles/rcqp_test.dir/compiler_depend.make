# Empty compiler generated dependencies file for rcqp_test.
# This may be replaced when dependencies are built.
