file(REMOVE_RECURSE
  "CMakeFiles/rcqp_test.dir/rcqp_test.cc.o"
  "CMakeFiles/rcqp_test.dir/rcqp_test.cc.o.d"
  "rcqp_test"
  "rcqp_test.pdb"
  "rcqp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcqp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
