# Empty compiler generated dependencies file for delta_checker_test.
# This may be replaced when dependencies are built.
