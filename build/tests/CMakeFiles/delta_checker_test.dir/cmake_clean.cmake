file(REMOVE_RECURSE
  "CMakeFiles/delta_checker_test.dir/delta_checker_test.cc.o"
  "CMakeFiles/delta_checker_test.dir/delta_checker_test.cc.o.d"
  "delta_checker_test"
  "delta_checker_test.pdb"
  "delta_checker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
