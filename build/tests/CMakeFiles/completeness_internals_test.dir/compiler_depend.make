# Empty compiler generated dependencies file for completeness_internals_test.
# This may be replaced when dependencies are built.
