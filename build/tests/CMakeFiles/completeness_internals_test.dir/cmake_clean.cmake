file(REMOVE_RECURSE
  "CMakeFiles/completeness_internals_test.dir/completeness_internals_test.cc.o"
  "CMakeFiles/completeness_internals_test.dir/completeness_internals_test.cc.o.d"
  "completeness_internals_test"
  "completeness_internals_test.pdb"
  "completeness_internals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/completeness_internals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
