# Empty dependencies file for two_head_dfa_test.
# This may be replaced when dependencies are built.
