# Empty dependencies file for rcdp_test.
# This may be replaced when dependencies are built.
