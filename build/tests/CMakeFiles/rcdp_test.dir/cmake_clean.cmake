file(REMOVE_RECURSE
  "CMakeFiles/rcdp_test.dir/rcdp_test.cc.o"
  "CMakeFiles/rcdp_test.dir/rcdp_test.cc.o.d"
  "rcdp_test"
  "rcdp_test.pdb"
  "rcdp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcdp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
