# Empty dependencies file for crm_scenario_test.
# This may be replaced when dependencies are built.
