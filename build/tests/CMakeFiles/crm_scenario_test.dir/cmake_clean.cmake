file(REMOVE_RECURSE
  "CMakeFiles/crm_scenario_test.dir/crm_scenario_test.cc.o"
  "CMakeFiles/crm_scenario_test.dir/crm_scenario_test.cc.o.d"
  "crm_scenario_test"
  "crm_scenario_test.pdb"
  "crm_scenario_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crm_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
