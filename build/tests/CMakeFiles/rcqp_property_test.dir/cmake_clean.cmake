file(REMOVE_RECURSE
  "CMakeFiles/rcqp_property_test.dir/rcqp_property_test.cc.o"
  "CMakeFiles/rcqp_property_test.dir/rcqp_property_test.cc.o.d"
  "rcqp_property_test"
  "rcqp_property_test.pdb"
  "rcqp_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcqp_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
