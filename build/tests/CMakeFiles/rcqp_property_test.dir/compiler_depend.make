# Empty compiler generated dependencies file for rcqp_property_test.
# This may be replaced when dependencies are built.
