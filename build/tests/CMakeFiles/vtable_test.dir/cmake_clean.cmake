file(REMOVE_RECURSE
  "CMakeFiles/vtable_test.dir/vtable_test.cc.o"
  "CMakeFiles/vtable_test.dir/vtable_test.cc.o.d"
  "vtable_test"
  "vtable_test.pdb"
  "vtable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
