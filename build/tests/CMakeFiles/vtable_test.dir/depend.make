# Empty dependencies file for vtable_test.
# This may be replaced when dependencies are built.
