file(REMOVE_RECURSE
  "CMakeFiles/fo_seeding_test.dir/fo_seeding_test.cc.o"
  "CMakeFiles/fo_seeding_test.dir/fo_seeding_test.cc.o.d"
  "fo_seeding_test"
  "fo_seeding_test.pdb"
  "fo_seeding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fo_seeding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
