# Empty compiler generated dependencies file for two_head_dfa_rcqp_test.
# This may be replaced when dependencies are built.
