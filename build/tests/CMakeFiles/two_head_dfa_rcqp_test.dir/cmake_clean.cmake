file(REMOVE_RECURSE
  "CMakeFiles/two_head_dfa_rcqp_test.dir/two_head_dfa_rcqp_test.cc.o"
  "CMakeFiles/two_head_dfa_rcqp_test.dir/two_head_dfa_rcqp_test.cc.o.d"
  "two_head_dfa_rcqp_test"
  "two_head_dfa_rcqp_test.pdb"
  "two_head_dfa_rcqp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_head_dfa_rcqp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
