add_test([=[UmbrellaHeaderTest.ExposesThePublicApi]=]  /root/repo/build/tests/umbrella_test [==[--gtest_filter=UmbrellaHeaderTest.ExposesThePublicApi]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[UmbrellaHeaderTest.ExposesThePublicApi]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  umbrella_test_TESTS UmbrellaHeaderTest.ExposesThePublicApi)
