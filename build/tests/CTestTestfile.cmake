# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/relational_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/tableau_test[1]_include.cmake")
include("/root/repo/build/tests/constraints_test[1]_include.cmake")
include("/root/repo/build/tests/rcdp_test[1]_include.cmake")
include("/root/repo/build/tests/rcqp_test[1]_include.cmake")
include("/root/repo/build/tests/reductions_test[1]_include.cmake")
include("/root/repo/build/tests/tiling_test[1]_include.cmake")
include("/root/repo/build/tests/two_head_dfa_test[1]_include.cmake")
include("/root/repo/build/tests/crm_scenario_test[1]_include.cmake")
include("/root/repo/build/tests/characterizations_test[1]_include.cmake")
include("/root/repo/build/tests/spec_parser_test[1]_include.cmake")
include("/root/repo/build/tests/vtable_test[1]_include.cmake")
include("/root/repo/build/tests/completeness_internals_test[1]_include.cmake")
include("/root/repo/build/tests/rcqp_property_test[1]_include.cmake")
include("/root/repo/build/tests/two_head_dfa_rcqp_test[1]_include.cmake")
include("/root/repo/build/tests/delta_checker_test[1]_include.cmake")
include("/root/repo/build/tests/fo_seeding_test[1]_include.cmake")
include("/root/repo/build/tests/minimize_test[1]_include.cmake")
include("/root/repo/build/tests/umbrella_test[1]_include.cmake")
