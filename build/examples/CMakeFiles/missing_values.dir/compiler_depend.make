# Empty compiler generated dependencies file for missing_values.
# This may be replaced when dependencies are built.
