file(REMOVE_RECURSE
  "CMakeFiles/missing_values.dir/missing_values.cpp.o"
  "CMakeFiles/missing_values.dir/missing_values.cpp.o.d"
  "missing_values"
  "missing_values.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/missing_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
