file(REMOVE_RECURSE
  "CMakeFiles/management_chain.dir/management_chain.cpp.o"
  "CMakeFiles/management_chain.dir/management_chain.cpp.o.d"
  "management_chain"
  "management_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/management_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
