# Empty compiler generated dependencies file for management_chain.
# This may be replaced when dependencies are built.
