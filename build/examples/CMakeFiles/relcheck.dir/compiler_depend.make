# Empty compiler generated dependencies file for relcheck.
# This may be replaced when dependencies are built.
