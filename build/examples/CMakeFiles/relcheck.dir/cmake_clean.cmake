file(REMOVE_RECURSE
  "CMakeFiles/relcheck.dir/relcheck.cpp.o"
  "CMakeFiles/relcheck.dir/relcheck.cpp.o.d"
  "relcheck"
  "relcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
