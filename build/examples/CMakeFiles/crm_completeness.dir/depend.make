# Empty dependencies file for crm_completeness.
# This may be replaced when dependencies are built.
