file(REMOVE_RECURSE
  "CMakeFiles/crm_completeness.dir/crm_completeness.cpp.o"
  "CMakeFiles/crm_completeness.dir/crm_completeness.cpp.o.d"
  "crm_completeness"
  "crm_completeness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crm_completeness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
