# Empty compiler generated dependencies file for master_data_design.
# This may be replaced when dependencies are built.
