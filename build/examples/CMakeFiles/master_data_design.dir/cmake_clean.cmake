file(REMOVE_RECURSE
  "CMakeFiles/master_data_design.dir/master_data_design.cpp.o"
  "CMakeFiles/master_data_design.dir/master_data_design.cpp.o.d"
  "master_data_design"
  "master_data_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/master_data_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
