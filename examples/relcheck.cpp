// relcheck — command-line completeness checker.
//
//   relcheck <spec-file> [--rcqp] [--chase N] [--explain]
//            [--deadline-ms N] [--resume-dir DIR]
//
// Loads a textual spec (schemas, facts, containment constraints,
// queries — see src/spec/spec_parser.h for the syntax), verifies the
// database is partially closed, and for each query decides RCDP
// (is the database complete?). With --rcqp it also decides RCQP
// (could any database be complete?), and with --chase N it applies up
// to N counterexample rounds to complete the database.
//
// With --deadline-ms the RCDP search runs under a wall-clock budget;
// an exhausted search reports UNKNOWN with the exhaustion cause. With
// --resume-dir the search checkpoint is persisted to a durable
// CheckpointStore on exhaustion, and a later invocation with the same
// spec and directory resumes from it — the combined verdict is
// bit-for-bit the uninterrupted one (a durable audit across process
// lifetimes).

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "completeness/characterizations.h"
#include "completeness/rcdp.h"
#include "completeness/rcqp.h"
#include "constraints/constraint_check.h"
#include "eval/query_eval.h"
#include "service/checkpoint_store.h"
#include "spec/spec_parser.h"
#include "util/str.h"

namespace {

int Fail(const relcomp::Status& status) {
  std::cerr << "relcheck: " << status.ToString() << std::endl;
  return EXIT_FAILURE;
}

void Usage() {
  std::cerr << "usage: relcheck <spec-file> [--rcqp] [--chase N] [--explain]"
               " [--deadline-ms N] [--resume-dir DIR]"
            << std::endl;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace relcomp;
  if (argc < 2) {
    Usage();
    return EXIT_FAILURE;
  }
  std::string path;
  std::string resume_dir;
  bool run_rcqp = false;
  bool explain = false;
  int chase_rounds = 0;
  long deadline_ms = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rcqp") == 0) {
      run_rcqp = true;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (std::strcmp(argv[i], "--chase") == 0 && i + 1 < argc) {
      chase_rounds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      deadline_ms = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--resume-dir") == 0 && i + 1 < argc) {
      resume_dir = argv[++i];
    } else if (argv[i][0] == '-') {
      Usage();
      return EXIT_FAILURE;
    } else {
      path = argv[i];
    }
  }
  if (path.empty()) {
    Usage();
    return EXIT_FAILURE;
  }

  auto spec_or = LoadCompletenessSpec(path);
  if (!spec_or.ok()) return Fail(spec_or.status());
  CompletenessSpec spec = std::move(*spec_or);

  std::unique_ptr<CheckpointStore> store;
  if (!resume_dir.empty()) {
    auto opened = CheckpointStore::Open(resume_dir);
    if (!opened.ok()) return Fail(opened.status());
    store = std::move(*opened);
  }

  std::cout << "database schema:\n" << spec.db_schema->ToString()
            << "master schema:\n" << spec.master_schema->ToString()
            << "constraints (" << spec.constraints.size() << "):\n"
            << spec.constraints.ToString() << "\n";

  auto closed = CheckConstraints(spec.constraints, spec.db, spec.master);
  if (!closed.ok()) return Fail(closed.status());
  if (!closed->satisfied) {
    std::cout << "NOT PARTIALLY CLOSED: " << closed->ToString() << "\n";
    return 2;
  }
  std::cout << "partially closed: yes\n";

  int exit_code = EXIT_SUCCESS;
  for (size_t i = 0; i < spec.queries.size(); ++i) {
    const AnyQuery& query = spec.queries[i];
    const std::string request_id = StrCat("q", i + 1);
    std::cout << "\n=== query #" << i + 1 << ": " << query.ToString()
              << "\n";
    auto answer = Evaluate(query, spec.db);
    if (!answer.ok()) return Fail(answer.status());
    std::cout << "answer: " << answer->ToString() << "\n";

    ExecutionBudget budget;
    if (deadline_ms > 0) {
      budget.set_timeout(std::chrono::milliseconds(deadline_ms));
    }
    RcdpOptions options;
    if (budget.active()) options.budget = &budget;
    std::optional<SearchCheckpoint> resume;
    if (store != nullptr) {
      auto persisted = store->LoadLatestCheckpoint(request_id);
      if (persisted.ok()) {
        resume = std::move(persisted->checkpoint);
        options.resume = &*resume;
        std::cout << "resuming from " << persisted->path << " (generation "
                  << persisted->generation << ")\n";
      }
    }

    auto verdict =
        DecideRcdp(query, spec.db, spec.master, spec.constraints, options);
    if (!verdict.ok()) {
      if (verdict.status().code() == StatusCode::kUnsupported) {
        std::cout << "RCDP: " << verdict.status().ToString() << "\n";
        continue;
      }
      return Fail(verdict.status());
    }
    if (verdict->verdict == Verdict::kUnknown) {
      // An exhausted search is not a decision: surface the cause and,
      // when a resume directory is given, the durable checkpoint a
      // re-run will continue from.
      std::cout << "RCDP: UNKNOWN — search exhausted ("
                << verdict->exhaustion.ToString() << ")\n";
      if (verdict->checkpoint.has_value() && store != nullptr) {
        auto generation =
            store->PersistCheckpoint(request_id, *verdict->checkpoint);
        if (!generation.ok()) return Fail(generation.status());
        std::cout << "checkpoint persisted: " << store->directory() << "/"
                  << request_id << ".g" << *generation << ".ckpt\n"
                  << "re-run with the same spec and --resume-dir "
                  << store->directory() << " to continue\n";
      } else if (verdict->checkpoint.has_value()) {
        std::cout << "checkpoint available at disjunct "
                  << verdict->checkpoint->disjunct << ", rank "
                  << verdict->checkpoint->rank
                  << "; pass --resume-dir DIR to persist it\n";
      }
      exit_code = 4;
      continue;
    }
    std::cout << "RCDP: " << verdict->ToString() << "\n";
    if (store != nullptr) {
      auto forgotten = store->Forget(request_id);
      if (!forgotten.ok()) return Fail(forgotten);
    }
    if (!verdict->complete) exit_code = 3;

    if (explain && !verdict->complete) {
      auto report = CheckBoundedDatabase(query, spec.db, spec.master,
                                         spec.constraints);
      if (report.ok()) {
        std::cout << "explanation: " << report->ToString() << "\n";
      }
    }

    if (run_rcqp) {
      auto rcqp = DecideRcqp(query, spec.db_schema, spec.master,
                             spec.constraints);
      if (!rcqp.ok()) {
        std::cout << "RCQP: " << rcqp.status().ToString() << "\n";
      } else if (rcqp->verdict == Verdict::kUnknown) {
        std::cout << "RCQP: UNKNOWN — search exhausted ("
                  << rcqp->exhaustion.ToString() << ")\n";
      } else {
        std::cout << "RCQP: " << rcqp->ToString() << "\n";
      }
    }

    if (chase_rounds > 0 && !verdict->complete) {
      auto completed =
          ChaseToCompleteness(query, spec.db, spec.master, spec.constraints,
                              static_cast<size_t>(chase_rounds));
      if (!completed.ok()) {
        std::cout << "chase: " << completed.status().ToString() << "\n";
      } else if (completed->verdict != Verdict::kComplete) {
        std::cout << "chase: UNKNOWN after " << completed->rounds
                  << " rounds (" << completed->exhaustion.ToString()
                  << ")\n";
      } else {
        auto final_answer = Evaluate(query, completed->db);
        if (!final_answer.ok()) return Fail(final_answer.status());
        std::cout << "chase: complete after adding "
                  << completed->db.TotalTuples() - spec.db.TotalTuples()
                  << " tuples; answer becomes " << final_answer->ToString()
                  << "\n";
      }
    }
  }
  return exit_code;
}
