// relcheck — command-line completeness checker.
//
// Local audit:
//   relcheck <spec-file> [--rcqp] [--chase N] [--explain]
//            [--deadline-ms N] [--max-steps N] [--resume-dir DIR]
//            [--delta FILE]
// Decision server (fault-tolerant network front end):
//   relcheck --serve ADDR --store-dir DIR [--workers N]
// Sharded decision fabric (N members, consistent-hash routed):
//   relcheck --fabric DIR --members N [--member-index I]
//            [--serve ADDR,ADDR,...] [--workers N]
// Networked audit against a running server or fabric:
//   relcheck --connect ADDR[,ADDR,...] <spec-file> [--deadline-ms N]
//
// ADDR is "unix:<path>" or "tcp:<ipv4>:<port>" (port 0 = ephemeral,
// the bound address is printed).
//
// --fabric DIR --members N serves an N-shard fabric rooted at DIR
// (shard s in DIR/shard-<s>). Member endpoints default to
// unix:DIR/member-<i>.sock; pass --serve with a comma-separated list
// to override (every member of one fabric must be given the SAME
// list — it is the placement contract). With --member-index I the
// process runs exactly member I (one process per member, so a kill
// test can SIGKILL a real server); without it, all N members run in
// this process. A killed-and-restarted member recovers its shard's
// in-flight jobs from the journal and rejoins under a bumped ring
// epoch.
//
// --connect with one endpoint speaks to that server directly. With a
// comma-separated list the client bootstraps the consistent-hash ring
// from any reachable endpoint, routes each query to its shard owner,
// and fails over to the remaining endpoints (re-fetching the ring) on
// connection loss — against standalone servers each endpoint answers
// a singleton ring, so the same invocation works without a fabric.
//
// Loads a textual spec (schemas, facts, containment constraints,
// queries — see src/spec/spec_parser.h for the syntax), verifies the
// database is partially closed, and for each query decides RCDP
// (is the database complete?). With --rcqp it also decides RCQP
// (could any database be complete?), and with --chase N it applies up
// to N counterexample rounds to complete the database.
//
// With --deadline-ms the RCDP search runs under a wall-clock budget,
// and with --max-steps under a decision-point budget (deterministic —
// the same spec exhausts at the same point on every machine); an
// exhausted search reports UNKNOWN with the exhaustion cause. With
// --resume-dir the search checkpoint is persisted to a durable
// CheckpointStore on exhaustion, and a later invocation with the same
// spec and directory resumes from it — the combined verdict is
// bit-for-bit the uninterrupted one (a durable audit across process
// lifetimes).
//
// With --resume-dir each decided query also persists a verdict
// certificate (instance fingerprints + evidence) to the store. A later
// run with --delta FILE applies the update batch in FILE (insert/
// delete/master insert/master delete lines; see
// src/spec/spec_parser.h) to the spec's instance and re-certifies each
// query incrementally: queries whose certificate still covers the
// updated content are re-served or resumed without a fresh search, and
// only the update-affected disjuncts re-run. Verdicts are bit-for-bit
// the from-scratch ones; the exit codes are unchanged.
//
// Exit codes (scriptable; the worst outcome across queries wins):
//   0  every audited query is COMPLETE
//   1  at least one query is INCOMPLETE (none worse)
//   2  at least one query is UNKNOWN — budget exhausted, cancelled, or
//      the decider does not support the query class
//   3  usage or internal error: bad flags, unreadable spec, database
//      not partially closed, store/transport failure
// --serve exits 0 after a graceful (SIGINT/SIGTERM) drain, 3 on setup
// failure.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "completeness/characterizations.h"
#include "completeness/incremental.h"
#include "completeness/rcdp.h"
#include "completeness/rcqp.h"
#include "constraints/constraint_check.h"
#include "eval/query_eval.h"
#include "fabric/fabric_client.h"
#include "fabric/member.h"
#include "fabric/rebalancer.h"
#include "net/client.h"
#include "net/server.h"
#include "service/checkpoint_store.h"
#include "service/decision_service.h"
#include "spec/spec_parser.h"
#include "util/str.h"

namespace {

// The exit-code ladder; MaxExit keeps the worst outcome seen so far.
constexpr int kExitComplete = 0;
constexpr int kExitIncomplete = 1;
constexpr int kExitUnknown = 2;
constexpr int kExitError = 3;

int Fail(const relcomp::Status& status) {
  std::cerr << "relcheck: " << status.ToString() << std::endl;
  return kExitError;
}

void Usage() {
  std::cerr
      << "usage: relcheck <spec-file> [--rcqp] [--chase N] [--explain]\n"
         "                [--deadline-ms N] [--max-steps N]\n"
         "                [--resume-dir DIR] [--delta FILE]\n"
         "       relcheck --serve ADDR --store-dir DIR [--workers N]\n"
         "       relcheck --fabric DIR --members N [--member-index I]\n"
         "                [--serve ADDR,ADDR,...] [--workers N]\n"
         "       relcheck --connect ADDR[,ADDR,...] <spec-file>\n"
         "                [--deadline-ms N]\n"
         "       relcheck --connect ADDR[,ADDR,...] --handoff SHARD:ADDR\n"
         "       relcheck --connect ADDR[,ADDR,...] --drain ADDR\n"
         "       relcheck --connect ADDR[,ADDR,...] --health\n"
         "ADDR: unix:<path> | tcp:<ipv4>:<port>\n"
         "--auth-key-file FILE arms frame authentication (serve, fabric\n"
         "and connect modes; every party needs the same key). Line 1 is\n"
         "the key; an optional line 2 is a second ACCEPTED key for\n"
         "rotation windows (outbound frames always use line 1)\n"
         "--handoff asks SHARD's owner for a planned live handoff to the\n"
         "named successor; --drain hands every shard owned by ADDR to\n"
         "the remaining members, one planned handoff at a time;\n"
         "--health prints each member's store-health report (exit 0 when\n"
         "every member is healthy, 1 otherwise)\n"
         "exit: 0 complete, 1 incomplete, 2 unknown/exhausted, 3 error"
      << std::endl;
}

/// The shared fabric secret(s): `primary` tags every outbound frame;
/// a non-empty `secondary` is additionally ACCEPTED on inbound frames
/// (the rotation window).
struct AuthKeys {
  std::string primary;
  std::string secondary;
};

/// Reads the shared fabric secret from `path`. Line 1 is the primary
/// key; an optional line 2 is the secondary accepted key. Two fleets
/// mid-rotation — each tagging with its own line 1, each accepting
/// the other's via line 2 — interoperate with zero denials.
relcomp::Result<AuthKeys> ReadAuthKeyFile(const std::string& path) {
  using namespace relcomp;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(StrCat("cannot read auth key file: ", path));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  auto chomp = [](std::string line) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    return line;
  };
  AuthKeys keys;
  const size_t eol = text.find('\n');
  if (eol == std::string::npos) {
    keys.primary = chomp(text);
  } else {
    keys.primary = chomp(text.substr(0, eol));
    std::string rest = text.substr(eol + 1);
    const size_t eol2 = rest.find('\n');
    keys.secondary =
        chomp(eol2 == std::string::npos ? rest : rest.substr(0, eol2));
  }
  if (keys.primary.empty()) {
    return Status::InvalidArgument(
        StrCat("auth key file ", path, " is empty"));
  }
  return keys;
}

volatile std::sig_atomic_t g_stop_requested = 0;
void HandleStopSignal(int) { g_stop_requested = 1; }

/// Serve mode: a DecisionService over the store directory, fronted by
/// a NetServer, running until SIGINT/SIGTERM, then drained.
int RunServer(const std::string& address, const std::string& store_dir,
              size_t workers, const AuthKeys& keys) {
  using namespace relcomp;
  DecisionServiceOptions options;
  options.num_workers = workers;
  // A long-lived server keeps a durable verdict cache: a resubmitted
  // instance whose content fingerprint matches a decided verdict is
  // answered without re-running the search, across restarts.
  options.enable_verdict_cache = true;
  auto service = DecisionService::Start(store_dir, options);
  if (!service.ok()) return Fail(service.status());
  for (const std::string& id : (*service)->RecoveredJobs()) {
    std::cout << "recovered in-flight job: " << id << "\n";
  }
  NetServerOptions server_options;
  server_options.auth_key = keys.primary;
  server_options.auth_key2 = keys.secondary;
  auto server = NetServer::Start(service->get(), address, server_options);
  if (!server.ok()) return Fail(server.status());
  std::cout << "relcheck serving on " << (*server)->address()
            << " (store: " << store_dir << ", workers: " << workers
            << ")\n"
            << std::flush;
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::cout << "draining...\n";
  (*server)->Shutdown();
  NetServerStats stats = (*server)->stats();
  std::cout << "served " << stats.frames_received << " requests ("
            << stats.submits_admitted << " admitted, "
            << stats.submits_deduped << " deduped, " << stats.submits_shed
            << " shed)\n";
  return kExitComplete;
}

/// Splits a comma-separated endpoint list (empty segments dropped).
std::vector<std::string> SplitEndpoints(const std::string& list) {
  std::vector<std::string> out;
  std::string current;
  for (char c : list) {
    if (c == ',') {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

/// Fabric serve mode: one or all members of an N-shard fabric rooted
/// at `fabric_root`, running until SIGINT/SIGTERM, then drained (the
/// ring departure is journaled before the listeners close).
int RunFabric(const std::string& fabric_root, long members,
              long member_index, const std::string& serve_list,
              size_t workers, const AuthKeys& keys) {
  using namespace relcomp;
  if (members < 1) {
    Usage();
    return kExitError;
  }
  std::vector<std::string> endpoints;
  if (!serve_list.empty()) {
    endpoints = SplitEndpoints(serve_list);
    if (endpoints.size() != static_cast<size_t>(members)) {
      return Fail(Status::InvalidArgument(
          StrCat("--serve names ", endpoints.size(), " endpoints but "
                 "--members asks for ", members)));
    }
  } else {
    for (long i = 0; i < members; ++i) {
      endpoints.push_back(StrCat("unix:", fabric_root, "/member-", i,
                                 ".sock"));
    }
  }
  std::vector<size_t> indexes;
  if (member_index >= 0) {
    if (member_index >= members) {
      return Fail(Status::InvalidArgument(
          StrCat("--member-index ", member_index, " out of range for ",
                 members, " members")));
    }
    indexes.push_back(static_cast<size_t>(member_index));
  } else {
    for (long i = 0; i < members; ++i) {
      indexes.push_back(static_cast<size_t>(i));
    }
  }

  std::vector<std::unique_ptr<FabricMember>> running;
  for (size_t index : indexes) {
    FabricMemberOptions options;
    options.fabric_root = fabric_root;
    options.member_index = index;
    options.endpoints = endpoints;
    options.service_options.num_workers = workers;
    // Fabric members keep the durable verdict cache for the same
    // reason a standalone server does: a resubmitted instance (e.g.
    // after a kill landed between completion and the client's poll) is
    // answered from the journaled verdict, bit-for-bit.
    options.service_options.enable_verdict_cache = true;
    options.server_options.auth_key = keys.primary;
    options.server_options.auth_key2 = keys.secondary;
    // A production member watches its own disk: a shard store that
    // stays sick through a live re-probe is handed to a healthy peer.
    options.health_probe_interval = std::chrono::milliseconds(2000);
    // And its services self-heal from transient faults on their own.
    options.service_options.store_probe_interval =
        std::chrono::milliseconds(500);
    auto member = FabricMember::Start(options);
    if (!member.ok()) return Fail(member.status());
    for (size_t shard : (*member)->owned_shards()) {
      DecisionService* service = (*member)->shard_service(shard);
      if (service == nullptr) continue;
      for (const std::string& id : service->RecoveredJobs()) {
        std::cout << "member " << index << " recovered in-flight job: "
                  << id << "\n";
      }
    }
    std::cout << "fabric member " << index << " serving on "
              << (*member)->address() << " (root: " << fabric_root
              << ", shards: " << members << ", ring epoch "
              << (*member)->ring().epoch << ")\n"
              << std::flush;
    running.push_back(std::move(*member));
  }
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::cout << "draining...\n";
  for (auto& member : running) member->Shutdown();
  running.clear();
  return kExitComplete;
}

/// Connect mode: submit every query of the spec as a job keyed by a
/// fingerprint-derived idempotency key, await the verdicts. Re-running
/// the same spec against the same server (even across server restarts)
/// reattaches to the same jobs instead of resubmitting.
int RunClient(const std::string& address, const std::string& spec_path,
              long deadline_ms, const AuthKeys& keys) {
  using namespace relcomp;
  std::ifstream in(spec_path);
  if (!in) {
    return Fail(Status::NotFound(StrCat("cannot read spec: ", spec_path)));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string spec_text = buffer.str();
  // Parse locally first: a malformed spec should be a fast local error,
  // not N server round trips, and we need the query count.
  auto spec = ParseCompletenessSpec(spec_text);
  if (!spec.ok()) return Fail(spec.status());

  char fp[17];
  std::snprintf(fp, sizeof(fp), "%016llx",
                static_cast<unsigned long long>(
                    FingerprintString(spec_text)));
  auto make_key = [&](size_t i) {
    return StrCat("relcheck-", fp, "-q", i + 1);
  };
  auto make_job = [&](size_t i) {
    JobSpec job;
    job.kind = JobKind::kRcdp;
    job.spec_text = spec_text;
    job.query_index = i;
    if (deadline_ms > 0) {
      job.deadline = std::chrono::milliseconds(deadline_ms);
    }
    return job;
  };
  int exit_code = kExitComplete;
  auto tally = [&](const WireReply& reply, size_t i) {
    std::cout << "query #" << i + 1 << ": "
              << VerdictToString(reply.verdict);
    if (!reply.evidence.empty()) {
      std::cout << " — " << reply.evidence;
    }
    if (!reply.exhaustion.empty()) {
      std::cout << " (" << reply.exhaustion << ")";
    }
    std::cout << " [attempts: " << reply.attempts << "]\n";
    switch (reply.verdict) {
      case Verdict::kComplete:
        break;
      case Verdict::kIncomplete:
        exit_code = std::max(exit_code, kExitIncomplete);
        break;
      case Verdict::kUnknown:
        exit_code = std::max(exit_code, kExitUnknown);
        break;
    }
  };

  if (SplitEndpoints(address).size() > 1) {
    // Multi-endpoint: route by the consistent-hash ring (a standalone
    // server answers a singleton ring, so this shape needs no fabric)
    // and survive the loss of any single member mid-audit.
    FabricClientOptions fabric_options;
    fabric_options.endpoint_options.auth_key = keys.primary;
    fabric_options.endpoint_options.auth_key2 = keys.secondary;
    FabricClient client(SplitEndpoints(address), fabric_options);
    for (size_t i = 0; i < spec->queries.size(); ++i) {
      Status submitted = client.Submit(make_key(i), make_job(i));
      if (!submitted.ok()) return Fail(submitted);
      std::cout << "query #" << i + 1 << " submitted as " << make_key(i)
                << "\n";
    }
    for (size_t i = 0; i < spec->queries.size(); ++i) {
      // SubmitAndAwait rather than a bare poll loop: if a kill landed
      // between a job's completion and this read, the resubmission
      // under the same key re-serves the journaled verdict (or
      // recomputes it bit-for-bit).
      auto reply = client.SubmitAndAwait(make_key(i), make_job(i));
      if (!reply.ok()) return Fail(reply.status());
      tally(*reply, i);
    }
    if (client.stats().failovers > 0) {
      std::cout << "(fabric failovers: " << client.stats().failovers
                << ", ring refreshes: " << client.stats().ring_refreshes
                << ")\n";
    }
    return exit_code;
  }

  NetClientOptions client_options;
  client_options.auth_key = keys.primary;
  client_options.auth_key2 = keys.secondary;
  NetClient client(address, client_options);
  for (size_t i = 0; i < spec->queries.size(); ++i) {
    Status submitted = client.Submit(make_key(i), make_job(i));
    if (!submitted.ok()) return Fail(submitted);
    std::cout << "query #" << i + 1 << " submitted as " << make_key(i)
              << "\n";
  }
  for (size_t i = 0; i < spec->queries.size(); ++i) {
    auto reply = client.AwaitTerminal(make_key(i));
    if (!reply.ok()) return Fail(reply.status());
    tally(*reply, i);
  }
  if (client.stats().retries > 0) {
    std::cout << "(transport retries: " << client.stats().retries << ")\n";
  }
  return exit_code;
}

/// Fabric-operation mode: --handoff SHARD:ADDR asks the shard's owner
/// for one planned live handoff; --drain ADDR plans and executes the
/// handoff sequence that empties that member.
int RunFabricOp(const std::string& address, const std::string& handoff_arg,
                const std::string& drain_arg, const AuthKeys& keys) {
  using namespace relcomp;
  FabricClientOptions options;
  options.endpoint_options.auth_key = keys.primary;
  options.endpoint_options.auth_key2 = keys.secondary;
  FabricClient client(SplitEndpoints(address), options);
  Status refreshed = client.RefreshRing();
  if (!refreshed.ok()) return Fail(refreshed);

  if (!handoff_arg.empty()) {
    const size_t colon = handoff_arg.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= handoff_arg.size()) {
      return Fail(Status::InvalidArgument(
          StrCat("--handoff wants SHARD:ADDR, got \"", handoff_arg, "\"")));
    }
    char* end = nullptr;
    const unsigned long shard =
        std::strtoul(handoff_arg.substr(0, colon).c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return Fail(Status::InvalidArgument(
          StrCat("--handoff shard \"", handoff_arg.substr(0, colon),
                 "\" is not a number")));
    }
    const std::string successor = handoff_arg.substr(colon + 1);
    Status done = client.HandoffShard(shard, successor);
    if (!done.ok()) return Fail(done);
    std::cout << "shard " << shard << " handed off to " << successor
              << " (ring epoch " << client.ring().epoch << ")\n";
    return kExitComplete;
  }

  RebalancePlan plan = PlanDrain(client.ring(), drain_arg);
  if (plan.empty()) {
    std::cout << "nothing to drain: " << drain_arg
              << " owns no shards (or has no peer to take them)\n";
    return kExitComplete;
  }
  std::cout << "drain plan for " << drain_arg << ":\n" << plan.Describe();
  Status done = ExecutePlan(&client, plan);
  if (!done.ok()) return Fail(done);
  std::cout << plan.moves.size() << " shard(s) handed off (ring epoch "
            << client.ring().epoch << ")\n";
  return kExitComplete;
}

/// Health mode: --connect ADDR[,ADDR,...] --health sweeps every known
/// fabric endpoint and prints each member's relcomp-health/1 report.
/// Exit 0 only when every member answered "healthy".
int RunHealth(const std::string& address, const AuthKeys& keys) {
  using namespace relcomp;
  FabricClientOptions options;
  options.endpoint_options.auth_key = keys.primary;
  options.endpoint_options.auth_key2 = keys.secondary;
  FabricClient client(SplitEndpoints(address), options);
  bool all_healthy = true;
  const auto fleet = client.FleetHealth();
  if (fleet.empty()) {
    std::cerr << "relcheck: no fabric endpoint known\n";
    return kExitError;
  }
  for (const auto& [endpoint, report] : fleet) {
    all_healthy = all_healthy && HealthReportState(report) == "healthy";
    std::cout << endpoint << ":\n";
    // Indent the report so member boundaries survive a casual grep.
    size_t start = 0;
    while (start < report.size()) {
      size_t end = report.find('\n', start);
      if (end == std::string::npos) end = report.size();
      std::cout << "  " << report.substr(start, end - start) << "\n";
      start = end + 1;
    }
  }
  return all_healthy ? kExitComplete : kExitIncomplete;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace relcomp;
  std::string path;
  std::string resume_dir;
  std::string delta_path;
  std::string serve_address;
  std::string connect_address;
  std::string store_dir;
  std::string fabric_root;
  bool run_rcqp = false;
  bool explain = false;
  int chase_rounds = 0;
  long deadline_ms = 0;
  long max_steps = 0;
  long workers = 1;
  long members = 0;
  long member_index = -1;
  std::string auth_key_file;
  std::string handoff_arg;
  std::string drain_arg;
  bool health = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rcqp") == 0) {
      run_rcqp = true;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (std::strcmp(argv[i], "--chase") == 0 && i + 1 < argc) {
      chase_rounds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      deadline_ms = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-steps") == 0 && i + 1 < argc) {
      max_steps = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--resume-dir") == 0 && i + 1 < argc) {
      resume_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--delta") == 0 && i + 1 < argc) {
      delta_path = argv[++i];
    } else if (std::strcmp(argv[i], "--serve") == 0 && i + 1 < argc) {
      serve_address = argv[++i];
    } else if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect_address = argv[++i];
    } else if (std::strcmp(argv[i], "--store-dir") == 0 && i + 1 < argc) {
      store_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--fabric") == 0 && i + 1 < argc) {
      fabric_root = argv[++i];
    } else if (std::strcmp(argv[i], "--members") == 0 && i + 1 < argc) {
      members = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--member-index") == 0 && i + 1 < argc) {
      member_index = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--auth-key-file") == 0 && i + 1 < argc) {
      auth_key_file = argv[++i];
    } else if (std::strcmp(argv[i], "--handoff") == 0 && i + 1 < argc) {
      handoff_arg = argv[++i];
    } else if (std::strcmp(argv[i], "--drain") == 0 && i + 1 < argc) {
      drain_arg = argv[++i];
    } else if (std::strcmp(argv[i], "--health") == 0) {
      health = true;
    } else if (argv[i][0] == '-') {
      Usage();
      return kExitError;
    } else {
      path = argv[i];
    }
  }

  AuthKeys auth_keys;
  if (!auth_key_file.empty()) {
    auto keys = ReadAuthKeyFile(auth_key_file);
    if (!keys.ok()) return Fail(keys.status());
    auth_keys = *std::move(keys);
  }

  if (!fabric_root.empty()) {
    if (!path.empty() || !store_dir.empty() || workers < 1 ||
        !connect_address.empty()) {
      Usage();
      return kExitError;
    }
    return RunFabric(fabric_root, members, member_index, serve_address,
                     static_cast<size_t>(workers), auth_keys);
  }
  if (!serve_address.empty()) {
    if (store_dir.empty() || !path.empty() || workers < 1) {
      Usage();
      return kExitError;
    }
    return RunServer(serve_address, store_dir,
                     static_cast<size_t>(workers), auth_keys);
  }
  if (!connect_address.empty()) {
    if (health) {
      if (!path.empty() || !handoff_arg.empty() || !drain_arg.empty()) {
        Usage();
        return kExitError;
      }
      return RunHealth(connect_address, auth_keys);
    }
    if (!handoff_arg.empty() || !drain_arg.empty()) {
      if (!path.empty() || (!handoff_arg.empty() && !drain_arg.empty())) {
        Usage();
        return kExitError;
      }
      return RunFabricOp(connect_address, handoff_arg, drain_arg, auth_keys);
    }
    if (path.empty()) {
      Usage();
      return kExitError;
    }
    return RunClient(connect_address, path, deadline_ms, auth_keys);
  }
  if (path.empty()) {
    Usage();
    return kExitError;
  }

  auto spec_or = LoadCompletenessSpec(path);
  if (!spec_or.ok()) return Fail(spec_or.status());
  CompletenessSpec spec = std::move(*spec_or);

  std::unique_ptr<CheckpointStore> store;
  if (!resume_dir.empty()) {
    auto opened = CheckpointStore::Open(resume_dir);
    if (!opened.ok()) return Fail(opened.status());
    store = std::move(*opened);
  }
  if (!delta_path.empty() && store == nullptr) {
    std::cerr << "relcheck: --delta requires --resume-dir (the verdict "
                 "certificates live in the store)\n";
    Usage();
    return kExitError;
  }

  std::cout << "database schema:\n" << spec.db_schema->ToString()
            << "master schema:\n" << spec.master_schema->ToString()
            << "constraints (" << spec.constraints.size() << "):\n"
            << spec.constraints.ToString() << "\n";

  // Delta mode: fingerprint the pre-update instance per query and pull
  // the certificates a prior run persisted, then apply the batch once.
  // Partial closure of the updated instance is established inside the
  // re-certifier (targeted recheck on the incremental path, the full
  // decider check on the fallback), not by an upfront full pass.
  std::optional<DeltaBatch> delta;
  std::vector<uint64_t> pre_fps;
  std::vector<std::optional<RcdpCertificate>> certs(spec.queries.size());
  DeltaApplyReport report;
  if (!delta_path.empty()) {
    auto batch = LoadDeltaBatch(delta_path);
    if (!batch.ok()) return Fail(batch.status());
    delta = std::move(*batch);
    for (const AnyQuery& q : spec.queries) {
      pre_fps.push_back(FingerprintRcdpInstance(q, spec.db, spec.master,
                                                spec.constraints));
    }
    for (size_t i = 0; i < spec.queries.size(); ++i) {
      auto payload = store->LoadVerdict(StrCat("q", i + 1));
      if (!payload.ok()) continue;
      auto cert = RcdpCertificate::Deserialize(*payload);
      if (cert.ok()) certs[i] = std::move(*cert);
    }
    auto applied = ApplyDeltaBatch(*delta, &spec.db, &spec.master);
    if (!applied.ok()) return Fail(applied.status());
    report = std::move(*applied);
    std::cout << "delta applied: " << report.ToString() << "\n";
  } else {
    auto closed = CheckConstraints(spec.constraints, spec.db, spec.master);
    if (!closed.ok()) return Fail(closed.status());
    if (!closed->satisfied) {
      // The model's precondition fails: no completeness question is
      // even well-posed, so this is an input error, not a verdict.
      std::cout << "NOT PARTIALLY CLOSED: " << closed->ToString() << "\n";
      return kExitError;
    }
    std::cout << "partially closed: yes\n";
  }

  int exit_code = kExitComplete;
  for (size_t i = 0; i < spec.queries.size(); ++i) {
    const AnyQuery& query = spec.queries[i];
    const std::string request_id = StrCat("q", i + 1);
    std::cout << "\n=== query #" << i + 1 << ": " << query.ToString()
              << "\n";
    auto answer = Evaluate(query, spec.db);
    if (!answer.ok()) return Fail(answer.status());
    std::cout << "answer: " << answer->ToString() << "\n";

    ExecutionBudget budget;
    if (deadline_ms > 0) {
      budget.set_timeout(std::chrono::milliseconds(deadline_ms));
    }
    if (max_steps > 0) {
      budget.set_max_steps(static_cast<size_t>(max_steps));
    }
    RcdpOptions options;
    if (budget.active()) options.budget = &budget;
    std::optional<SearchCheckpoint> resume;
    if (store != nullptr && !delta.has_value()) {
      // A raw search checkpoint only resumes the identical instance; in
      // delta mode the instance just changed, so resumption (when the
      // update left the frontier clean) goes through the certificate.
      auto persisted = store->LoadLatestCheckpoint(request_id);
      if (persisted.ok()) {
        resume = std::move(persisted->checkpoint);
        options.resume = &*resume;
        std::cout << "resuming from " << persisted->path << " (generation "
                  << persisted->generation << ")\n";
      }
    }

    std::optional<RcdpCertificate> new_cert;
    auto verdict = [&]() -> Result<RcdpResult> {
      if (store == nullptr) {
        return DecideRcdp(query, spec.db, spec.master, spec.constraints,
                          options);
      }
      Result<RcdpCertified> certified = [&]() -> Result<RcdpCertified> {
        if (delta.has_value() && certs[i].has_value() &&
            certs[i]->instance_fp == pre_fps[i]) {
          std::cout << "re-certifying incrementally from the stored "
                       "certificate\n";
          return RecertifyRcdp(query, spec.db, spec.master,
                               spec.constraints, *certs[i], report, options);
        }
        if (delta.has_value()) {
          std::cout << "no certificate for the pre-update instance: "
                       "re-certifying from scratch\n";
        }
        return CertifyRcdp(query, spec.db, spec.master, spec.constraints,
                           options);
      }();
      if (!certified.ok()) return certified.status();
      new_cert = std::move(certified->certificate);
      return std::move(certified->result);
    }();
    if (!verdict.ok()) {
      if (verdict.status().code() == StatusCode::kUnsupported) {
        // Can't decide this query class: the audit is inconclusive for
        // it, which is an UNKNOWN outcome, not an error.
        std::cout << "RCDP: " << verdict.status().ToString() << "\n";
        exit_code = std::max(exit_code, kExitUnknown);
        continue;
      }
      return Fail(verdict.status());
    }
    if (verdict->verdict == Verdict::kUnknown) {
      // An exhausted search is not a decision: surface the cause and,
      // when a resume directory is given, the durable checkpoint a
      // re-run will continue from.
      std::cout << "RCDP: UNKNOWN — search exhausted ("
                << verdict->exhaustion.ToString() << ")\n";
      if (verdict->checkpoint.has_value() && store != nullptr) {
        auto generation =
            store->PersistCheckpoint(request_id, *verdict->checkpoint);
        if (!generation.ok()) return Fail(generation.status());
        std::cout << "checkpoint persisted: " << store->directory() << "/"
                  << request_id << ".g" << *generation << ".ckpt\n"
                  << "re-run with the same spec and --resume-dir "
                  << store->directory() << " to continue\n";
        if (new_cert.has_value()) {
          // The certificate embeds the same frontier plus the content
          // fingerprints, so a later --delta run can resume it too.
          auto persisted =
              store->PersistVerdict(request_id, new_cert->Serialize());
          if (!persisted.ok()) return Fail(persisted);
        }
      } else if (verdict->checkpoint.has_value()) {
        std::cout << "checkpoint available at disjunct "
                  << verdict->checkpoint->disjunct << ", rank "
                  << verdict->checkpoint->rank
                  << "; pass --resume-dir DIR to persist it\n";
      }
      exit_code = std::max(exit_code, kExitUnknown);
      continue;
    }
    std::cout << "RCDP: " << verdict->ToString() << "\n";
    if (store != nullptr) {
      auto forgotten = store->Forget(request_id);
      if (!forgotten.ok()) return Fail(forgotten);
      if (new_cert.has_value()) {
        // Decided: drop any stale checkpoint, keep the certificate so a
        // later --delta run re-certifies incrementally.
        auto persisted =
            store->PersistVerdict(request_id, new_cert->Serialize());
        if (!persisted.ok()) return Fail(persisted);
        std::cout << "certificate persisted for incremental re-audits\n";
      }
    }
    if (!verdict->complete) {
      exit_code = std::max(exit_code, kExitIncomplete);
    }

    if (explain && !verdict->complete) {
      auto report = CheckBoundedDatabase(query, spec.db, spec.master,
                                         spec.constraints);
      if (report.ok()) {
        std::cout << "explanation: " << report->ToString() << "\n";
      }
    }

    if (run_rcqp) {
      auto rcqp = DecideRcqp(query, spec.db_schema, spec.master,
                             spec.constraints);
      if (!rcqp.ok()) {
        std::cout << "RCQP: " << rcqp.status().ToString() << "\n";
      } else if (rcqp->verdict == Verdict::kUnknown) {
        std::cout << "RCQP: UNKNOWN — search exhausted ("
                  << rcqp->exhaustion.ToString() << ")\n";
      } else {
        std::cout << "RCQP: " << rcqp->ToString() << "\n";
      }
    }

    if (chase_rounds > 0 && !verdict->complete) {
      auto completed =
          ChaseToCompleteness(query, spec.db, spec.master, spec.constraints,
                              static_cast<size_t>(chase_rounds));
      if (!completed.ok()) {
        std::cout << "chase: " << completed.status().ToString() << "\n";
      } else if (completed->verdict != Verdict::kComplete) {
        std::cout << "chase: UNKNOWN after " << completed->rounds
                  << " rounds (" << completed->exhaustion.ToString()
                  << ")\n";
      } else {
        auto final_answer = Evaluate(query, completed->db);
        if (!final_answer.ok()) return Fail(final_answer.status());
        std::cout << "chase: complete after adding "
                  << completed->db.TotalTuples() - spec.db.TotalTuples()
                  << " tuples; answer becomes " << final_answer->ToString()
                  << "\n";
      }
    }
  }
  return exit_code;
}
