// relcheck — command-line completeness checker.
//
//   relcheck <spec-file> [--rcqp] [--chase N] [--explain]
//
// Loads a textual spec (schemas, facts, containment constraints,
// queries — see src/spec/spec_parser.h for the syntax), verifies the
// database is partially closed, and for each query decides RCDP
// (is the database complete?). With --rcqp it also decides RCQP
// (could any database be complete?), and with --chase N it applies up
// to N counterexample rounds to complete the database.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "completeness/characterizations.h"
#include "completeness/rcdp.h"
#include "completeness/rcqp.h"
#include "constraints/constraint_check.h"
#include "eval/query_eval.h"
#include "spec/spec_parser.h"

namespace {

int Fail(const relcomp::Status& status) {
  std::cerr << "relcheck: " << status.ToString() << std::endl;
  return EXIT_FAILURE;
}

void Usage() {
  std::cerr << "usage: relcheck <spec-file> [--rcqp] [--chase N] [--explain]"
            << std::endl;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace relcomp;
  if (argc < 2) {
    Usage();
    return EXIT_FAILURE;
  }
  std::string path;
  bool run_rcqp = false;
  bool explain = false;
  int chase_rounds = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rcqp") == 0) {
      run_rcqp = true;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (std::strcmp(argv[i], "--chase") == 0 && i + 1 < argc) {
      chase_rounds = std::atoi(argv[++i]);
    } else if (argv[i][0] == '-') {
      Usage();
      return EXIT_FAILURE;
    } else {
      path = argv[i];
    }
  }
  if (path.empty()) {
    Usage();
    return EXIT_FAILURE;
  }

  auto spec_or = LoadCompletenessSpec(path);
  if (!spec_or.ok()) return Fail(spec_or.status());
  CompletenessSpec spec = std::move(*spec_or);

  std::cout << "database schema:\n" << spec.db_schema->ToString()
            << "master schema:\n" << spec.master_schema->ToString()
            << "constraints (" << spec.constraints.size() << "):\n"
            << spec.constraints.ToString() << "\n";

  auto closed = CheckConstraints(spec.constraints, spec.db, spec.master);
  if (!closed.ok()) return Fail(closed.status());
  if (!closed->satisfied) {
    std::cout << "NOT PARTIALLY CLOSED: " << closed->ToString() << "\n";
    return 2;
  }
  std::cout << "partially closed: yes\n";

  int exit_code = EXIT_SUCCESS;
  for (size_t i = 0; i < spec.queries.size(); ++i) {
    const AnyQuery& query = spec.queries[i];
    std::cout << "\n=== query #" << i + 1 << ": " << query.ToString()
              << "\n";
    auto answer = Evaluate(query, spec.db);
    if (!answer.ok()) return Fail(answer.status());
    std::cout << "answer: " << answer->ToString() << "\n";

    auto verdict =
        DecideRcdp(query, spec.db, spec.master, spec.constraints);
    if (!verdict.ok()) {
      if (verdict.status().code() == StatusCode::kUnsupported) {
        std::cout << "RCDP: " << verdict.status().ToString() << "\n";
        continue;
      }
      return Fail(verdict.status());
    }
    std::cout << "RCDP: " << verdict->ToString() << "\n";
    if (!verdict->complete) exit_code = 3;

    if (explain && !verdict->complete) {
      auto report = CheckBoundedDatabase(query, spec.db, spec.master,
                                         spec.constraints);
      if (report.ok()) {
        std::cout << "explanation: " << report->ToString() << "\n";
      }
    }

    if (run_rcqp) {
      auto rcqp = DecideRcqp(query, spec.db_schema, spec.master,
                             spec.constraints);
      if (!rcqp.ok()) {
        std::cout << "RCQP: " << rcqp.status().ToString() << "\n";
      } else {
        std::cout << "RCQP: " << rcqp->ToString() << "\n";
      }
    }

    if (chase_rounds > 0 && !verdict->complete) {
      auto completed =
          ChaseToCompleteness(query, spec.db, spec.master, spec.constraints,
                              static_cast<size_t>(chase_rounds));
      if (!completed.ok()) {
        std::cout << "chase: " << completed.status().ToString() << "\n";
      } else if (completed->verdict != Verdict::kComplete) {
        std::cout << "chase: " << completed->ToString() << "\n";
      } else {
        auto final_answer = Evaluate(query, completed->db);
        if (!final_answer.ok()) return Fail(final_answer.status());
        std::cout << "chase: complete after adding "
                  << completed->db.TotalTuples() - spec.db.TotalTuples()
                  << " tuples; answer becomes " << final_answer->ToString()
                  << "\n";
      }
    }
  }
  return exit_code;
}
