// Section 2.3 paradigm (3): a guideline for how master data should be
// expanded. When RCQP says no complete database exists at all, the
// per-variable boundedness diagnosis pinpoints which attributes the
// master data fails to cover.

#include <cstdlib>
#include <iostream>

#include "completeness/rcqp.h"
#include "constraints/integrity_constraints.h"
#include "workload/crm_scenario.h"

namespace {

#define CHECK_OK(expr)                                         \
  do {                                                         \
    auto _result = (expr);                                     \
    if (!_result.ok()) {                                       \
      std::cerr << "FATAL at " << __LINE__ << ": "             \
                << _result.status().ToString() << std::endl;   \
      return EXIT_FAILURE;                                     \
    }                                                          \
  } while (false)

}  // namespace

int main() {
  using namespace relcomp;

  auto scenario_or = CrmScenario::Make();
  if (!scenario_or.ok()) {
    std::cerr << scenario_or.status().ToString() << std::endl;
    return EXIT_FAILURE;
  }
  CrmScenario crm = std::move(*scenario_or);

  // The design question: we want complete answers for Q0 — all (cid,
  // name) pairs of 908-area customers. Which INDs into master data do
  // we need to maintain?
  auto q0 = crm.Q0();
  CHECK_OK(q0);
  std::cout << "target query: " << q0->ToString() << "\n";

  struct Design {
    const char* label;
    std::vector<size_t> cust_cols;
    std::vector<size_t> master_cols;
  };
  Design designs[] = {
      {"no master coverage", {}, {}},
      {"DCust covers cid", {0}, {0}},
      {"DCust covers (cid, name)", {0, 1}, {0, 1}},
  };
  for (const Design& design : designs) {
    ConstraintSet v;
    if (!design.cust_cols.empty()) {
      auto ind = MakeIndToMaster(*crm.db_schema(), "Cust", design.cust_cols,
                                 "DCust", design.master_cols);
      CHECK_OK(ind);
      v.Add(*ind);
    }
    auto verdict = DecideRcqp(*q0, crm.db_schema(), crm.master(), v);
    CHECK_OK(verdict);
    std::cout << "\n--- design: " << design.label << " ---\n"
              << verdict->ToString() << "\n";
    if (!verdict->exists) {
      std::cout << "=> expand the master data to cover: ";
      for (size_t i = 0; i < verdict->unbounded_variables.size(); ++i) {
        if (i > 0) std::cout << ", ";
        std::cout << "attribute of variable '"
                  << verdict->unbounded_variables[i].variable << "'";
      }
      std::cout << "\n";
    }
  }

  std::cout << "\nmaster_data_design: OK\n";
  return EXIT_SUCCESS;
}
