// Section 2.3 paradigms (1) and (2): assessing the completeness of a
// database and deriving guidance for what data to collect.
//
// The CRM analyst asks: "can I trust the answer of my query on this
// partially closed database?" — and when the answer is no, "what
// exactly is missing?".

#include <cstdlib>
#include <iostream>

#include "completeness/rcdp.h"
#include "eval/query_eval.h"
#include "util/table_printer.h"
#include "workload/crm_scenario.h"

namespace {

#define CHECK_OK(expr)                                         \
  do {                                                         \
    auto _result = (expr);                                     \
    if (!_result.ok()) {                                       \
      std::cerr << "FATAL at " << __LINE__ << ": "             \
                << _result.status().ToString() << std::endl;   \
      return EXIT_FAILURE;                                     \
    }                                                          \
  } while (false)

}  // namespace

int main() {
  using namespace relcomp;

  CrmOptions options;
  options.num_domestic = 6;
  options.num_employees = 3;
  options.support_per_employee = 2;
  auto scenario_or = CrmScenario::Make(options);
  if (!scenario_or.ok()) {
    std::cerr << scenario_or.status().ToString() << std::endl;
    return EXIT_FAILURE;
  }
  CrmScenario crm = std::move(*scenario_or);

  auto phi0 = crm.Phi0();
  CHECK_OK(phi0);
  ConstraintSet v;
  v.Add(*phi0);

  // Assess a batch of queries and print a completeness report.
  TablePrinter report({"query", "answer size", "complete?", "evidence"});
  struct Entry {
    const char* label;
    Result<AnyQuery> query;
  };
  Entry entries[] = {
      {"Q1 (908 customers of e0)", crm.Q1()},
      {"Q2 (customers of e0)", crm.Q2()},
      {"Q4 (e0 in dept d0)", crm.Q4()},
  };
  for (Entry& entry : entries) {
    CHECK_OK(entry.query);
    auto answer = Evaluate(*entry.query, crm.db());
    CHECK_OK(answer);
    auto verdict = DecideRcdp(*entry.query, crm.db(), crm.master(), v);
    CHECK_OK(verdict);
    std::string evidence = "-";
    if (!verdict->complete && verdict->new_answer.has_value()) {
      evidence = "missing answer " + verdict->new_answer->ToString();
    }
    report.AddRow({entry.label, std::to_string(answer->size()),
                   verdict->complete ? "yes" : "NO", evidence});
  }
  std::cout << "=== Completeness report (V = {phi0}) ===\n"
            << report.ToString();

  // Paradigm (2): turn the incompleteness evidence into a collection
  // plan. The chase applies counterexamples until the database is
  // complete; its tuple-by-tuple trace is the plan.
  auto q1 = crm.Q1();
  CHECK_OK(q1);
  std::cout << "\n=== Collection plan for Q1 ===\n";
  Database current = crm.db();
  for (int round = 1;; ++round) {
    auto verdict = DecideRcdp(*q1, current, crm.master(), v);
    CHECK_OK(verdict);
    if (verdict->complete) {
      std::cout << "round " << round << ": complete.\n";
      break;
    }
    std::cout << "round " << round << ": collect\n"
              << verdict->counterexample_delta->ToString();
    current.UnionWith(*verdict->counterexample_delta);
    if (round > 64) {
      std::cerr << "chase did not converge" << std::endl;
      return EXIT_FAILURE;
    }
  }
  auto final_answer = Evaluate(*q1, current);
  CHECK_OK(final_answer);
  std::cout << "final Q1 answer: " << final_answer->ToString() << "\n";

  std::cout << "\ncrm_completeness: OK\n";
  return EXIT_SUCCESS;
}
