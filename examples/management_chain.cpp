// Example 1.1's Q3: completeness is relative to the query language.
// "Everybody above e0" over Manage ⊇ Managem is naturally recursive;
// the CQ version sees only direct managers, the datalog version the
// whole chain — and whether the *database* is complete depends on which
// language the user queries in.

#include <cstdlib>
#include <iostream>

#include "completeness/brute_force.h"
#include "completeness/rcdp.h"
#include "eval/query_eval.h"
#include "workload/crm_scenario.h"

namespace {

#define CHECK_OK(expr)                                         \
  do {                                                         \
    auto _result = (expr);                                     \
    if (!_result.ok()) {                                       \
      std::cerr << "FATAL at " << __LINE__ << ": "             \
                << _result.status().ToString() << std::endl;   \
      return EXIT_FAILURE;                                     \
    }                                                          \
  } while (false)

}  // namespace

int main() {
  using namespace relcomp;

  CrmOptions options;
  options.manage_chain = 5;  // e4 -> e3 -> e2 -> e1 -> e0
  auto scenario_or = CrmScenario::Make(options);
  if (!scenario_or.ok()) {
    std::cerr << scenario_or.status().ToString() << std::endl;
    return EXIT_FAILURE;
  }
  CrmScenario crm = std::move(*scenario_or);
  std::cout << "management edges (Managem = Manage):\n"
            << crm.db().Get("Manage").ToString() << "\n";

  auto q3cq = crm.Q3Cq();
  auto q3fp = crm.Q3Datalog();
  CHECK_OK(q3cq);
  CHECK_OK(q3fp);

  auto cq_answer = Evaluate(*q3cq, crm.db());
  auto fp_answer = Evaluate(*q3fp, crm.db());
  CHECK_OK(cq_answer);
  CHECK_OK(fp_answer);
  std::cout << "CQ  'direct managers of e0':   " << cq_answer->ToString()
            << "\nFP  'everyone above e0':       " << fp_answer->ToString()
            << "\n";

  // Under the IND Manage ⊆ Managem the database cannot grow beyond the
  // master chain; the decider certifies the CQ query complete.
  auto inds = crm.IndConstraints();
  CHECK_OK(inds);
  ConstraintSet v;
  v.Add(inds->constraints()[1]);
  auto cq_verdict = DecideRcdp(*q3cq, crm.db(), crm.master(), v);
  CHECK_OK(cq_verdict);
  std::cout << "\nRCDP(CQ Q3): " << cq_verdict->ToString() << "\n";

  // RCDP(FP, ·) is undecidable (Theorem 3.1(3)) — the decider refuses,
  // and the bounded definition-chasing oracle takes over.
  auto refused = DecideRcdp(*q3fp, crm.db(), crm.master(), v);
  std::cout << "RCDP(FP Q3): " << refused.status().ToString() << "\n";
  BruteForceOptions bf;
  bf.max_delta_tuples = 1;
  bf.universe = {Value::Str("e0"), Value::Str("e1"), Value::Str("e2"),
                 Value::Str("e3"), Value::Str("e4"), Value::Str("ghost")};
  auto brute = BruteForceRcdp(*q3fp, crm.db(), crm.master(), v, bf);
  CHECK_OK(brute);
  std::cout << "bounded oracle for the FP query: "
            << (brute->complete ? "complete within bounds" : "INCOMPLETE")
            << "\n";

  // Without the IND, even the CQ query is incomplete: new management
  // edges pointing at e0 can always appear.
  ConstraintSet none;
  auto open_world = DecideRcdp(*q3cq, crm.db(), crm.master(), none);
  CHECK_OK(open_world);
  std::cout << "\nwithout the IND: " << open_world->ToString() << "\n";

  std::cout << "\nmanagement_chain: OK\n";
  return EXIT_SUCCESS;
}
