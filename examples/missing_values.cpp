// Missing values on top of missing tuples (the paper's Section 5
// extension): a support ticket knows WHICH customer it concerns but
// not which employee owns it. Labeled nulls capture the unknowns; the
// completeness questions lift to the possible worlds.

#include <cstdlib>
#include <iostream>

#include "constraints/integrity_constraints.h"
#include "incomplete/vtable.h"
#include "query/parser.h"

namespace {

/// Uniform access to the Status of either a Status or a Result<T>.
inline const relcomp::Status& AsStatus(const relcomp::Status& s) { return s; }
template <typename T>
const relcomp::Status& AsStatus(const relcomp::Result<T>& r) {
  return r.status();
}

#define CHECK_OK(expr)                                         \
  do {                                                         \
    const auto& _result = (expr);                              \
    if (!_result.ok()) {                                       \
      std::cerr << "FATAL at " << __LINE__ << ": "             \
                << AsStatus(_result).ToString() << std::endl;  \
      return EXIT_FAILURE;                                     \
    }                                                          \
  } while (false)

}  // namespace

int main() {
  using namespace relcomp;

  auto schema = std::make_shared<Schema>();
  CHECK_OK(schema->AddRelation("Supt", 2));  // (eid, cid)
  auto master_schema = std::make_shared<Schema>();
  CHECK_OK(master_schema->AddRelation("MEmp", 1));
  Database master(master_schema);
  CHECK_OK(master.Insert("MEmp", Tuple({Value::Str("e0")})));
  CHECK_OK(master.Insert("MEmp", Tuple({Value::Str("e1")})));

  // The v-database: c0's owner is known; c1's owner is the null ⊥who.
  VDatabase vdb(schema);
  CHECK_OK(vdb.Insert("Supt", {Term::ConstStr("e0"), Term::ConstStr("c0")}));
  CHECK_OK(vdb.Insert("Supt", {Term::Var("who"), Term::ConstStr("c1")}));
  std::cout << "v-database:\n" << vdb.ToString();

  // V: every owner must be a master employee.
  ConstraintSet v;
  auto ind = MakeIndToMaster(*schema, "Supt", {0}, "MEmp", {0});
  CHECK_OK(ind);
  v.Add(*ind);

  auto q_customers = ParseQuery("Q(c) :- Supt(e, c).", QueryLanguage::kCq);
  auto q_owners = ParseQuery("Qo(e) :- Supt(e, c).", QueryLanguage::kCq);
  CHECK_OK(q_customers);
  CHECK_OK(q_owners);

  std::vector<Value> universe =
      DefaultNullUniverse(vdb, master, *q_owners, /*extra_fresh=*/1);

  // Certain vs possible answers.
  auto certain = CertainAnswers(*q_owners, vdb, universe);
  auto possible = PossibleAnswers(*q_owners, vdb, universe);
  CHECK_OK(certain);
  CHECK_OK(possible);
  std::cout << "\nowners, certain:  " << certain->ToString()
            << "\nowners, possible: " << possible->ToString() << "\n";

  // Completeness across worlds: the customer list is certain AND the
  // IND bounds owners, so "which customers" is complete in every
  // partially closed world; "which owners" exposes the unconstrained
  // column? No — owners ARE the IND-bounded column. Check both.
  for (const auto& [label, query] :
       {std::make_pair("customers", &*q_customers),
        std::make_pair("owners", &*q_owners)}) {
    auto report = DecideRcdpOnWorlds(*query, vdb, master, v, universe);
    CHECK_OK(report);
    std::cout << "\ncompleteness of '" << label
              << "' across worlds: " << report->ToString() << "\n";
  }

  std::cout << "\nmissing_values: OK\n";
  return EXIT_SUCCESS;
}
