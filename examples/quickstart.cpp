// Quickstart: the paper's running example (Example 1.1) end to end.
//
// A company keeps master data DCust (all domestic customers) and two
// regular databases: Cust (all customers) and Supt (which employee
// supports which customer). Supt may be missing tuples — is it
// nevertheless complete for the queries we care about?

#include <cstdlib>
#include <iostream>

#include "completeness/rcdp.h"
#include "constraints/constraint_check.h"
#include "eval/query_eval.h"
#include "workload/crm_scenario.h"

namespace {

#define CHECK_OK(expr)                                         \
  do {                                                         \
    auto _result = (expr);                                     \
    if (!_result.ok()) {                                       \
      std::cerr << "FATAL at " << __LINE__ << ": "             \
                << _result.status().ToString() << std::endl;   \
      return EXIT_FAILURE;                                     \
    }                                                          \
  } while (false)

}  // namespace

int main() {
  using namespace relcomp;

  // 1. Materialize the scenario: schemas, master data Dm, database D.
  auto scenario_or = CrmScenario::Make();
  if (!scenario_or.ok()) {
    std::cerr << scenario_or.status().ToString() << std::endl;
    return EXIT_FAILURE;
  }
  CrmScenario crm = std::move(*scenario_or);

  std::cout << "=== Master data Dm ===\n" << crm.master().ToString();
  std::cout << "\n=== Database D ===\n" << crm.db().ToString();

  // 2. The containment constraint φ0 of Example 2.1: supported domestic
  //    customers are bounded by the master relation DCust.
  auto phi0 = crm.Phi0();
  CHECK_OK(phi0);
  ConstraintSet v;
  v.Add(*phi0);
  std::cout << "\n=== Containment constraints V ===\n" << v.ToString();

  auto closed = Satisfies(v, crm.db(), crm.master());
  CHECK_OK(closed);
  std::cout << "\nD is partially closed w.r.t. (Dm, V): "
            << (*closed ? "yes" : "no") << "\n";

  // 3. Query Q1: NJ customers (ac = 908) supported by employee e0.
  auto q1 = crm.Q1();
  CHECK_OK(q1);
  auto answer = Evaluate(*q1, crm.db());
  CHECK_OK(answer);
  std::cout << "\nQ1 = " << q1->ToString() << "\nQ1(D) = "
            << answer->ToString() << "\n";

  // 4. Is D complete for Q1 relative to (Dm, V)?
  auto verdict = DecideRcdp(*q1, crm.db(), crm.master(), v);
  CHECK_OK(verdict);
  std::cout << "\nRCDP verdict: " << verdict->ToString() << "\n";

  if (!verdict->complete) {
    // 5. The counterexample is actionable: these are tuples whose
    //    addition is consistent with the master data but changes the
    //    answer — exactly the data that should be collected.
    std::cout << "\nData to collect (chase to completeness):\n";
    auto completed = ChaseToCompleteness(*q1, crm.db(), crm.master(), v,
                                         /*max_rounds=*/32);
    CHECK_OK(completed);
    auto final_answer = Evaluate(*q1, completed->db);
    CHECK_OK(final_answer);
    std::cout << "after collecting the missing tuples, Q1(D') = "
              << final_answer->ToString() << "\n";
    auto recheck = DecideRcdp(*q1, completed->db, crm.master(), v);
    CHECK_OK(recheck);
    std::cout << "re-check: " << recheck->ToString() << "\n";
  }

  // 6. Example 2.2's second act: the at-most-k constraint φ1 makes Q2
  //    (all customers of e0) complete as soon as k answers are present.
  auto q2 = crm.Q2();
  CHECK_OK(q2);
  auto phi1 = crm.Phi1(/*k=*/2);
  CHECK_OK(phi1);
  ConstraintSet v1;
  v1.Add(*phi1);
  auto q2_answer = Evaluate(*q2, crm.db());
  CHECK_OK(q2_answer);
  auto q2_verdict = DecideRcdp(*q2, crm.db(), crm.master(), v1);
  CHECK_OK(q2_verdict);
  std::cout << "\nQ2 = " << q2->ToString() << "\nQ2(D) = "
            << q2_answer->ToString() << " (k = 2)\nRCDP verdict: "
            << q2_verdict->ToString() << "\n";

  std::cout << "\nquickstart: OK\n";
  return EXIT_SUCCESS;
}
