// Proposition 2.1 in action: one uniform framework for completeness AND
// consistency. Classic integrity constraints (FDs, CFDs, denial
// constraints, CINDs) compile into containment constraints, so a single
// partially-closed check covers both dimensions of data quality.

#include <cstdlib>
#include <iostream>

#include "constraints/constraint_check.h"
#include "constraints/integrity_constraints.h"
#include "query/parser.h"
#include "relational/database.h"

namespace {

/// Uniform access to the Status of either a Status or a Result<T>.
inline const relcomp::Status& AsStatus(const relcomp::Status& s) { return s; }
template <typename T>
const relcomp::Status& AsStatus(const relcomp::Result<T>& r) {
  return r.status();
}

#define CHECK_OK(expr)                                         \
  do {                                                         \
    const auto& _result = (expr);                              \
    if (!_result.ok()) {                                       \
      std::cerr << "FATAL at " << __LINE__ << ": "             \
                << AsStatus(_result).ToString() << std::endl;  \
      return EXIT_FAILURE;                                     \
    }                                                          \
  } while (false)

}  // namespace

int main() {
  using namespace relcomp;

  // An HR database: Emp(eid, dept, grade) and Dept(dept, site).
  auto db_schema = std::make_shared<Schema>();
  CHECK_OK(db_schema->AddRelation("Emp", 3));
  CHECK_OK(db_schema->AddRelation("Dept", 2));
  auto master_schema = std::make_shared<Schema>();
  CHECK_OK(EnsureEmptyMasterRelation(master_schema.get()));
  Database master(master_schema);

  Database db(db_schema);
  CHECK_OK(db.Insert("Emp", Tuple({Value::Str("e1"), Value::Str("sales"),
                                   Value::Int(3)})));
  CHECK_OK(db.Insert("Emp", Tuple({Value::Str("e1"), Value::Str("eng"),
                                   Value::Int(3)})));  // FD violation!
  CHECK_OK(db.Insert("Emp", Tuple({Value::Str("e2"), Value::Str("eng"),
                                   Value::Int(9)})));  // denial violation!
  CHECK_OK(db.Insert("Dept", Tuple({Value::Str("sales"),
                                    Value::Str("NYC")})));
  std::cout << "=== HR database ===\n" << db.ToString();

  // Integrity constraints.
  FunctionalDependency fd("Emp", {0}, {1});  // eid -> dept
  auto denial = ParseConjunctiveQuery(
      "bad_grade() :- Emp(e, d, g), g = 9.");  // grade 9 is reserved
  CHECK_OK(denial);
  DenialConstraint dc(*denial);
  // Every employee's dept must exist in Dept (an IND inside D,
  // compiled to an FO containment constraint).
  InclusionDependency ind("Emp", {1}, "Dept", {0});

  // Compile everything into one containment-constraint set.
  ConstraintSet v;
  auto fd_ccs = fd.ToContainmentConstraints(*db_schema);
  CHECK_OK(fd_ccs);
  for (auto& cc : *fd_ccs) v.Add(std::move(cc));
  v.Add(dc.ToContainmentConstraint());
  auto ind_cc = ind.ToContainmentConstraint(*db_schema);
  CHECK_OK(ind_cc);
  v.Add(*ind_cc);
  std::cout << "\n=== Compiled containment constraints ===\n"
            << v.ToString();

  auto audit = CheckConstraints(v, db, master);
  CHECK_OK(audit);
  std::cout << "\naudit: " << audit->ToString() << "\n";

  // Repair the violations and audit again.
  db.Erase("Emp", Tuple({Value::Str("e1"), Value::Str("eng"),
                         Value::Int(3)}));
  db.Erase("Emp", Tuple({Value::Str("e2"), Value::Str("eng"),
                         Value::Int(9)}));
  CHECK_OK(db.Insert("Emp", Tuple({Value::Str("e2"), Value::Str("sales"),
                                   Value::Int(4)})));
  auto clean = CheckConstraints(v, db, master);
  CHECK_OK(clean);
  std::cout << "after repair: " << clean->ToString() << "\n";
  if (!clean->satisfied) return EXIT_FAILURE;

  // Cross-check against the native integrity-constraint semantics.
  auto fd_ok = fd.Check(db);
  auto dc_ok = dc.Check(db);
  auto ind_ok = ind.Check(db);
  CHECK_OK(fd_ok);
  CHECK_OK(dc_ok);
  CHECK_OK(ind_ok);
  std::cout << "native checks: FD " << (*fd_ok ? "ok" : "violated")
            << ", denial " << (*dc_ok ? "ok" : "violated") << ", IND "
            << (*ind_ok ? "ok" : "violated") << "\n";

  std::cout << "\nconsistency_audit: OK\n";
  return EXIT_SUCCESS;
}
