#ifndef RELCOMP_SERVICE_CHECKPOINT_STORE_H_
#define RELCOMP_SERVICE_CHECKPOINT_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/execution_control.h"
#include "util/fs_env.h"
#include "util/status.h"

namespace relcomp {

/// Store health, as observed from its own write path. kHealthy means
/// no failure since the last successful probe; kDegraded means the
/// write path has failed at least once (writes are still attempted);
/// kReadOnly means an fsync failed — the kernel may have lost
/// acknowledged bytes, so every further mutating op is refused typed
/// (kUnavailable) without touching the disk until a probe succeeds
/// (fsync-gate semantics). The ONLY edge back to kHealthy is a
/// successful ProbeHealth() — an ordinary write that happens to
/// succeed does not clear degradation, so health cannot flap on a
/// disk that fails intermittently.
enum class StoreHealth {
  kHealthy,
  kDegraded,
  kReadOnly,
};

const char* StoreHealthToString(StoreHealth health);

/// Health counters, for operators and the degraded-mode tests.
struct StoreHealthReport {
  StoreHealth health = StoreHealth::kHealthy;
  /// Every I/O failure seen (read or write path).
  size_t io_errors = 0;
  /// Write-path failures (open/write/rename on a persist).
  size_t write_failures = 0;
  /// Fsync failures — each one tripped the fsync gate.
  size_t fsync_failures = 0;
  size_t probes_attempted = 0;
  size_t probes_succeeded = 0;
};

/// A checkpoint loaded back from the store, with its provenance.
struct PersistedCheckpoint {
  SearchCheckpoint checkpoint;
  /// Monotonic per-request generation (1, 2, ...). A later generation
  /// strictly supersedes an earlier one.
  uint64_t generation = 0;
  /// The file it was read from, for operator messages.
  std::string path;
};

/// Store tuning.
struct CheckpointStoreOptions {
  /// Journal compaction threshold: once the journal holds more than
  /// this many lines, it is rewritten to the minimal set describing
  /// the live state (one "ckpt" line per request with checkpoints, one
  /// "job" line per in-flight job record) via the same crash-atomic
  /// temp + fsync + rename + directory-fsync dance as record files —
  /// a kill at any byte of the compaction leaves either the old
  /// journal or the new one, never a mix. 0 disables compaction.
  size_t journal_compaction_threshold = 1024;
  /// Fabric shard addressing. When `fabric_root` is non-empty the store
  /// opens the named shard directory `<fabric_root>/<shard_name>`
  /// instead of the `directory` argument to Open() (which must then be
  /// empty). `shard_name` obeys the same character set as request ids,
  /// so a hostile shard name can never escape the fabric root. Each
  /// shard keeps the full flock-exclusive + crash-atomic contract of a
  /// standalone store directory — the fabric's handoff safety rests on
  /// exactly that per-shard exclusion.
  std::string fabric_root;
  std::string shard_name;
  /// Filesystem environment ALL store I/O is routed through. nullptr
  /// selects the process-wide passthrough (FsEnv::Default()). Tests
  /// and the kill-the-disk chaos harness inject an env armed with a
  /// StorageFaultPlan; a fabric member hands every shard store the
  /// same env, so one sick "disk" sickens exactly that member. The
  /// env must outlive the store.
  FsEnv* fs_env = nullptr;
};

/// Durable, directory-scoped checkpoint store.
///
/// One directory holds the crash-recovery state of one DecisionService
/// (or one relcheck --resume-dir session): per request, a sequence of
/// checkpoint generations plus an optional opaque job record, and an
/// append-only recovery journal mapping request ids to their latest
/// valid generation.
///
/// Durability contract:
///  * Every record file is written to a temp name, fsync'd, then
///    renamed into place (atomic on POSIX), and the directory is
///    fsync'd after the rename — a reader never observes a
///    half-renamed file.
///  * Every record carries a versioned header and a CRC32 footer over
///    the header + payload. Torn, truncated, bit-flipped or otherwise
///    corrupted files fail the CRC (or the payload-length check) and
///    are rejected with a typed kInvalidArgument naming the file and
///    the defect — a corrupted file is NEVER surfaced as a checkpoint.
///  * LoadLatestCheckpoint walks generations newest-first and returns
///    the first one that passes integrity AND parses as a
///    SearchCheckpoint; corrupted newer generations are skipped (and
///    counted in corrupt_files_skipped()), so a crash mid-write costs
///    at most the interrupted generation, never prior progress.
///  * The journal is append-only with a per-line CRC; torn tail lines
///    (the crash-mid-append case) are ignored on replay. Files present
///    in the directory but missing from the journal (crash between
///    rename and journal append) are still found by the directory
///    scan.
///
/// Exclusion: Open() takes an exclusive flock on <dir>/LOCK. A second
/// store on the same live directory — e.g. two DecisionService
/// instances racing — gets kFailedPrecondition instead of interleaving
/// torn generations. The kernel releases the lock on process death, so
/// a crashed owner never wedges the directory; the simulated-kill
/// harness mirrors that by closing the lock fd.
///
/// Thread safety: all methods are safe to call concurrently; a single
/// mutex serializes directory mutations.
class CheckpointStore {
 public:
  /// Opens (creating if needed) the store at `directory` and acquires
  /// its exclusive lock. kFailedPrecondition if another live store
  /// holds the directory.
  static Result<std::unique_ptr<CheckpointStore>> Open(
      const std::string& directory,
      const CheckpointStoreOptions& options = CheckpointStoreOptions());

  ~CheckpointStore();
  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  /// Durably writes `ckpt` as the next generation for `request_id` and
  /// journals it. Returns the generation written. Older generations of
  /// the same request are garbage-collected (best-effort: a crash
  /// between rename and unlink only leaves stale files that recovery
  /// ignores in favor of the newest valid one).
  Result<uint64_t> PersistCheckpoint(const std::string& request_id,
                                     const SearchCheckpoint& ckpt);

  /// Loads the newest generation of `request_id` that passes integrity
  /// and parses. kNotFound when no valid checkpoint exists.
  Result<PersistedCheckpoint> LoadLatestCheckpoint(
      const std::string& request_id) const;

  /// Loads one specific retained generation (the store keeps the
  /// latest two). kNotFound if that generation is gone; kInvalidArgument
  /// if the file fails integrity. The DecisionService compares the two
  /// newest generations at resume time to detect a stalled slice (see
  /// DecisionServiceOptions::default_slice_steps).
  Result<PersistedCheckpoint> LoadCheckpoint(const std::string& request_id,
                                             uint64_t generation) const;

  /// Durably writes an opaque job record (the DecisionService persists
  /// the serialized JobSpec here at submit time, so a restarted
  /// process can re-create and resume every in-flight job).
  Status PersistJob(const std::string& request_id,
                    const std::string& payload);

  /// Loads the job record. kNotFound if none; kInvalidArgument if the
  /// file fails integrity.
  Result<std::string> LoadJob(const std::string& request_id) const;

  /// Request ids with a live (not forgotten) job record — the
  /// in-flight set a restarted service must resume. Sorted.
  std::vector<std::string> PendingRequests() const;

  /// Removes every file of `request_id` (job record + all checkpoint
  /// generations) and journals the completion. Idempotent. Verdict
  /// records are NOT touched — they live outside the job lifecycle.
  Status Forget(const std::string& request_id);

  /// Durably writes an opaque verdict record under `key` and journals
  /// it, overwriting any previous record for the key. The verdict
  /// cache stores fingerprinted certificates here so cached verdicts
  /// survive restarts; unlike checkpoints and job records, verdicts
  /// have no generations and are untouched by Forget() — a completed
  /// job's verdict outlives the job.
  Status PersistVerdict(const std::string& key, const std::string& payload);

  /// Loads the verdict record for `key`. kNotFound if none;
  /// kInvalidArgument (counted in corrupt_files_skipped()) if the file
  /// fails integrity.
  Result<std::string> LoadVerdict(const std::string& key) const;

  /// Removes the verdict record for `key` and journals the removal.
  /// Idempotent.
  Status ForgetVerdict(const std::string& key);

  /// Keys with a live verdict record. Sorted.
  std::vector<std::string> VerdictKeys() const;

  /// Durably writes an opaque control record under `key` and journals
  /// it, overwriting any previous record for the key. The fabric
  /// journals its `relcomp-fabric/1` ring epoch here so every shard
  /// carries the placement agreement across restarts and handoffs;
  /// like verdicts, control records have no generations and are
  /// untouched by Forget().
  Status PersistControl(const std::string& key, const std::string& payload);

  /// Loads the control record for `key`. kNotFound if none;
  /// kInvalidArgument (counted in corrupt_files_skipped()) if the file
  /// fails integrity.
  Result<std::string> LoadControl(const std::string& key) const;

  /// Keys with a live control record. Sorted.
  std::vector<std::string> ControlKeys() const;

  const std::string& directory() const { return dir_; }

  /// Files that failed integrity and were skipped by loads so far —
  /// the "no corrupted store file is ever loaded" counter the crash
  /// sweep asserts on.
  size_t corrupt_files_skipped() const;

  /// Journal lines that failed their CRC on replay at Open (torn
  /// tail from a crash mid-append).
  size_t journal_lines_skipped() const { return journal_lines_skipped_; }

  /// Journal compactions performed by this store instance.
  size_t journal_compactions() const;

  /// Lines currently in the journal (replayed at Open + appended or
  /// rewritten since) — what the compaction threshold is compared to.
  size_t journal_entries() const;

  /// Current health (see StoreHealth). Changes only on write-path
  /// failures and successful probes — never on a lucky write.
  StoreHealth health() const;

  /// Health plus the error/probe counters.
  StoreHealthReport health_report() const;

  /// One full write-probe cycle through the environment: create,
  /// write, fsync and unlink a scratch file in the store directory.
  /// Success is the single healing edge — it clears the fsync gate
  /// and degradation. Failure leaves (or makes) the store degraded
  /// and returns the underlying error. Works in kReadOnly: the probe
  /// is exactly the op allowed past the gate.
  Status ProbeHealth();

  /// Releases the directory lock and refuses all further operations,
  /// simulating the kernel-side lock release of a killed process. Used
  /// by the DecisionService crash harness; a real crash needs no call.
  void SimulateCrash();

  /// CRC32 (IEEE, reflected 0xEDB88320) over `data` — exposed for the
  /// tests that hand-corrupt files.
  static uint32_t Crc32(std::string_view data);

 private:
  CheckpointStore(std::string dir, CheckpointStoreOptions options)
      : dir_(std::move(dir)),
        options_(options),
        env_(options.fs_env != nullptr ? options.fs_env
                                       : FsEnv::Default()) {}

  Status WriteRecord(const std::string& path, std::string_view kind,
                     const std::string& request_id, uint64_t generation,
                     std::string_view payload);
  Result<std::string> ReadRecord(const std::string& path,
                                 std::string_view expect_kind,
                                 const std::string& expect_request_id,
                                 uint64_t expect_generation) const;
  Status AppendJournal(std::string_view op, const std::string& request_id,
                       uint64_t generation);
  /// Rewrites the journal to the minimal live-state lines when it has
  /// outgrown the threshold. Crash-atomic; requires mu_ held.
  Status MaybeCompactJournalLocked();
  Status ReplayJournal();
  Status ScanDirectory();
  Status CheckAlive() const;
  /// kUnavailable when the fsync gate is closed; requires mu_ held.
  Status CheckWritableLocked() const;
  /// Records a write-path failure; an fsync failure closes the gate
  /// (kReadOnly), anything else degrades. Requires mu_ held.
  void NoteWriteFailureLocked(bool fsync_failure);
  FsEnv* env() const { return env_; }

  std::string dir_;
  CheckpointStoreOptions options_;
  FsEnv* env_ = nullptr;
  int lock_fd_ = -1;
  bool crashed_ = false;
  /// Highest generation ever written per request (journal ∪ directory).
  std::map<std::string, uint64_t> last_generation_;
  /// Requests with a live job record.
  std::map<std::string, bool> has_job_;
  /// Keys with a live verdict record.
  std::map<std::string, bool> has_verdict_;
  /// Keys with a live control record.
  std::map<std::string, bool> has_control_;
  size_t journal_lines_skipped_ = 0;
  size_t journal_entries_ = 0;
  size_t journal_compactions_ = 0;
  /// A failed or short journal append may have left a tail without
  /// its newline; the next append starts with one so the torn
  /// fragment becomes its own (CRC-failing, counted) line instead of
  /// merging with — and corrupting — the new entry.
  bool journal_tainted_ = false;
  StoreHealth health_ = StoreHealth::kHealthy;
  size_t write_failures_ = 0;
  size_t fsync_failures_ = 0;
  size_t probes_attempted_ = 0;
  size_t probes_succeeded_ = 0;
  mutable size_t io_errors_ = 0;
  mutable size_t corrupt_files_skipped_ = 0;
  mutable std::mutex mu_;
};

}  // namespace relcomp

#endif  // RELCOMP_SERVICE_CHECKPOINT_STORE_H_
