#include "service/verdict_cache.h"

#include <charconv>
#include <cstdio>

#include "util/str.h"

namespace relcomp {
namespace {

// Payload format: relcomp-verdict/1 <fp hex16> <C|I> <len>:<evidence>
constexpr std::string_view kMagic = "relcomp-verdict/1 ";

std::string Hex64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string EncodePayload(uint64_t fingerprint, Verdict verdict,
                          const std::string& evidence) {
  const char code = verdict == Verdict::kComplete ? 'C' : 'I';
  return StrCat(kMagic, Hex64(fingerprint), " ", std::string(1, code), " ",
                evidence.size(), ":", evidence);
}

/// Parses a store payload; returns false on any malformation or when
/// the embedded fingerprint disagrees with `expect_fp`.
bool DecodePayload(std::string_view payload, uint64_t expect_fp,
                   CachedVerdict* out) {
  if (payload.substr(0, kMagic.size()) != kMagic) return false;
  payload.remove_prefix(kMagic.size());
  if (payload.size() < 16) return false;
  uint64_t fp = 0;
  auto [ptr, ec] = std::from_chars(payload.data(), payload.data() + 16, fp,
                                   16);
  if (ec != std::errc() || ptr != payload.data() + 16) return false;
  if (fp != expect_fp) return false;
  payload.remove_prefix(16);
  if (payload.size() < 3 || payload[0] != ' ' || payload[2] != ' ') {
    return false;
  }
  if (payload[1] == 'C') {
    out->verdict = Verdict::kComplete;
  } else if (payload[1] == 'I') {
    out->verdict = Verdict::kIncomplete;
  } else {
    return false;
  }
  payload.remove_prefix(3);
  size_t colon = payload.find(':');
  if (colon == std::string_view::npos) return false;
  uint64_t len = 0;
  auto [lptr, lec] =
      std::from_chars(payload.data(), payload.data() + colon, len);
  if (lec != std::errc() || lptr != payload.data() + colon) return false;
  payload.remove_prefix(colon + 1);
  if (payload.size() != len) return false;
  out->evidence = std::string(payload);
  return true;
}

}  // namespace

VerdictCache::VerdictCache(CheckpointStore* store) : store_(store) {}

std::string VerdictCache::KeyFor(uint64_t fingerprint) {
  return StrCat("v", Hex64(fingerprint));
}

std::optional<CachedVerdict> VerdictCache::Lookup(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it != entries_.end()) {
    ++stats_.hits;
    return it->second;
  }
  if (store_ != nullptr) {
    Result<std::string> payload = store_->LoadVerdict(KeyFor(fingerprint));
    if (payload.ok()) {
      CachedVerdict cached;
      if (DecodePayload(*payload, fingerprint, &cached)) {
        entries_[fingerprint] = cached;
        ++stats_.hits;
        return cached;
      }
      // A record that fails to parse, or whose embedded fingerprint
      // disagrees with the key it was stored under, is never served.
      ++stats_.rejections;
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

Status VerdictCache::Insert(uint64_t fingerprint, Verdict verdict,
                            const std::string& evidence) {
  if (verdict == Verdict::kUnknown) {
    return Status::InvalidArgument(
        "verdict cache stores decided verdicts only; kUnknown reflects "
        "the budget, not the instance");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (store_ != nullptr) {
    RELCOMP_RETURN_NOT_OK(store_->PersistVerdict(
        KeyFor(fingerprint), EncodePayload(fingerprint, verdict, evidence)));
  }
  entries_[fingerprint] = CachedVerdict{verdict, evidence};
  ++stats_.insertions;
  return Status::OK();
}

Status VerdictCache::Invalidate(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(fingerprint);
  if (store_ != nullptr) {
    RELCOMP_RETURN_NOT_OK(store_->ForgetVerdict(KeyFor(fingerprint)));
  }
  ++stats_.invalidations;
  return Status::OK();
}

VerdictCacheStats VerdictCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace relcomp
