#include "service/decision_service.h"

#include <algorithm>
#include <charconv>
#include <limits>

#include "completeness/incremental.h"
#include "completeness/rcqp.h"
#include "spec/spec_parser.h"
#include "util/str.h"

namespace relcomp {
namespace {

constexpr char kJobMagic[] = "relcomp-job/1";

Result<JobKind> JobKindFromString(std::string_view s) {
  if (s == "rcdp") return JobKind::kRcdp;
  if (s == "rcqp") return JobKind::kRcqp;
  if (s == "chase") return JobKind::kChase;
  return Status::InvalidArgument(
      StrCat("unknown job kind: ", std::string(s)));
}

bool ParseSize(std::string_view field, size_t* out) {
  if (field.empty()) return false;
  auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), *out);
  return ec == std::errc() && ptr == field.data() + field.size();
}

/// Canonical evidence strings — the bit-for-bit comparison keys of the
/// crash-recovery sweep. Anything the paper's characterizations yield
/// as evidence is folded in; two runs decided identically iff equal.
std::string RcdpEvidence(const RcdpResult& r) {
  return StrCat(VerdictToString(r.verdict), "|",
                r.counterexample_delta.has_value()
                    ? r.counterexample_delta->ToString()
                    : std::string("<none>"),
                "|",
                r.new_answer.has_value() ? r.new_answer->ToString()
                                         : std::string("<none>"));
}

std::string RcqpEvidence(const RcqpResult& r) {
  return StrCat(VerdictToString(r.verdict), "|",
                r.exists ? "exists" : "not-exists", "|", r.method, "|",
                r.witness.has_value() ? r.witness->ToString()
                                      : std::string("<none>"));
}

std::string ChaseEvidence(const ChaseResult& r) {
  return StrCat(VerdictToString(r.verdict), "|rounds=", r.rounds, "|",
                r.db.ToString());
}

}  // namespace

const char* JobKindToString(JobKind kind) {
  switch (kind) {
    case JobKind::kRcdp: return "rcdp";
    case JobKind::kRcqp: return "rcqp";
    case JobKind::kChase: return "chase";
  }
  return "unknown";
}

// --- JobSpec wire form ----------------------------------------------
//
//   relcomp-job/1 <kind> <query> <threads> <slice> <deadline_ms|->
//   <chase_rounds> <len>:<spec text>

std::string JobSpec::Serialize() const {
  return StrCat(kJobMagic, " ", JobKindToString(kind), " ", query_index,
                " ", num_threads, " ", slice_steps, " ",
                deadline.has_value() ? StrCat(deadline->count())
                                     : std::string("-"),
                " ", max_chase_rounds, " ", spec_text.size(), ":",
                spec_text);
}

Result<JobSpec> JobSpec::Deserialize(std::string_view text) {
  auto fail = [&](std::string_view why) {
    return Status::InvalidArgument(
        StrCat("malformed job record (", std::string(why), "): ",
               std::string(text.substr(0, 64))));
  };
  auto take = [&]() -> std::optional<std::string_view> {
    size_t sp = text.find(' ');
    if (sp == std::string_view::npos) return std::nullopt;
    std::string_view field = text.substr(0, sp);
    text.remove_prefix(sp + 1);
    return field;
  };
  auto magic = take();
  if (!magic.has_value() || *magic != kJobMagic) return fail("bad magic");
  auto kind_field = take();
  if (!kind_field.has_value()) return fail("no kind");
  JobSpec spec;
  RELCOMP_ASSIGN_OR_RETURN(spec.kind, JobKindFromString(*kind_field));
  auto query = take();
  if (!query.has_value() || !ParseSize(*query, &spec.query_index)) {
    return fail("bad query index");
  }
  auto threads = take();
  if (!threads.has_value() || !ParseSize(*threads, &spec.num_threads)) {
    return fail("bad thread count");
  }
  auto slice = take();
  if (!slice.has_value() || !ParseSize(*slice, &spec.slice_steps)) {
    return fail("bad slice steps");
  }
  auto deadline = take();
  if (!deadline.has_value()) return fail("no deadline");
  if (*deadline != "-") {
    size_t ms = 0;
    if (!ParseSize(*deadline, &ms)) return fail("bad deadline");
    spec.deadline = std::chrono::milliseconds(ms);
  }
  auto rounds = take();
  if (!rounds.has_value() || !ParseSize(*rounds, &spec.max_chase_rounds)) {
    return fail("bad chase rounds");
  }
  size_t colon = text.find(':');
  if (colon == std::string_view::npos) return fail("no spec length");
  size_t spec_len = 0;
  if (!ParseSize(text.substr(0, colon), &spec_len)) {
    return fail("bad spec length");
  }
  text.remove_prefix(colon + 1);
  if (text.size() != spec_len) return fail("spec length mismatch");
  spec.spec_text = std::string(text);
  return spec;
}

// --- Job state ------------------------------------------------------

struct DecisionService::Job {
  std::string id;
  JobSpec spec;
  /// Absolute EDF deadline (time_point::max() when the spec has none).
  std::chrono::steady_clock::time_point deadline;
  bool recovered = false;
  /// Admitted while degraded, against the verdict cache, with no
  /// durable job record — the store is never asked to Forget it.
  bool ephemeral = false;
  bool running = false;
  bool terminal = false;
  /// Set by Cancel(): the job was explicitly abandoned, so its durable
  /// record is removed when it reaches the terminal state.
  bool cancel_requested = false;
  /// Per-job cancellation: its token is the one the job's budget polls;
  /// Cancel() and the service-wide crash path both fire it.
  CancelSource cancel;
  /// Non-OK when the job failed before producing a decider result
  /// (unparseable spec, store failure, ...).
  Status terminal_status;
  JobResult result;
};

// --- Lifecycle ------------------------------------------------------

DecisionService::DecisionService(DecisionServiceOptions options)
    : options_(std::move(options)) {}

Result<std::unique_ptr<DecisionService>> DecisionService::Start(
    const std::string& store_directory,
    const DecisionServiceOptions& options) {
  std::unique_ptr<DecisionService> service(new DecisionService(options));
  RELCOMP_ASSIGN_OR_RETURN(
      service->store_,
      CheckpointStore::Open(store_directory, options.store_options));
  service->paused_ = options.start_paused;
  if (options.enable_verdict_cache) {
    service->verdict_cache_ =
        std::make_unique<VerdictCache>(service->store_.get());
  }

  // Recovery: every request with a durable job record is still
  // in-flight — re-create and re-enqueue it. Recovered jobs bypass
  // admission control (shedding a job the previous process already
  // accepted would break the "accepted means survives a kill"
  // contract).
  {
    std::unique_lock<std::mutex> lock(service->mu_);
    for (const std::string& id : service->store_->PendingRequests()) {
      Result<std::string> payload = service->store_->LoadJob(id);
      if (!payload.ok()) continue;  // corrupt record: skipped, counted
      Result<JobSpec> spec = JobSpec::Deserialize(*payload);
      if (!spec.ok()) continue;
      Status st = service->SubmitLocked(id, *spec, /*recovered=*/true,
                                        /*ephemeral=*/false, lock);
      if (st.ok()) service->recovered_.push_back(id);
    }
  }

  const size_t workers = std::max<size_t>(1, options.num_workers);
  service->workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    service->workers_.emplace_back(
        [svc = service.get()] { svc->WorkerLoop(); });
  }
  if (options.store_probe_interval.count() > 0) {
    service->prober_ = std::thread([svc = service.get()] {
      svc->ProberLoop();
    });
  }
  return service;
}

DecisionService::~DecisionService() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
    paused_ = false;
  }
  queue_cv_.notify_all();
  result_cv_.notify_all();
  probe_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (prober_.joinable()) prober_.join();
}

void DecisionService::Resume() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    paused_ = false;
  }
  queue_cv_.notify_all();
}

Status DecisionService::Quiesce() {
  std::unique_lock<std::mutex> lock(mu_);
  if (crashed_) {
    return Status::FailedPrecondition("decision service crashed");
  }
  if (stopping_) {
    return Status::FailedPrecondition("decision service is shutting down");
  }
  detaching_ = true;
  paused_ = false;  // a paused worker must wake to observe the detach
  // Trip every non-terminal job's budget WITHOUT cancel_requested: the
  // running decider unwinds at its next decision point, persists the
  // unwound checkpoint, and finishes kUnknown/cancel in memory — but
  // the durable job record and checkpoint are KEPT (Forget only fires
  // for explicit Cancel), which is precisely the state the successor's
  // recovery resumes from. Queued jobs ignore the token; they simply
  // stay on disk.
  for (auto& [id, job] : jobs_) {
    if (!job->terminal) job->cancel.RequestCancel();
  }
  queue_cv_.notify_all();
  result_cv_.wait(lock, [&] {
    if (crashed_) return true;
    for (const auto& [id, job] : jobs_) {
      if (job->running) return false;
    }
    return true;
  });
  if (crashed_) {
    return Status::FailedPrecondition(
        "decision service crashed while flushing for handoff");
  }
  return Status::OK();
}

std::vector<std::string> DecisionService::RecoveredJobs() const {
  std::unique_lock<std::mutex> lock(mu_);
  return recovered_;
}

bool DecisionService::crashed() const {
  std::unique_lock<std::mutex> lock(mu_);
  return crashed_;
}

size_t DecisionService::jobs_shed() const {
  std::unique_lock<std::mutex> lock(mu_);
  return jobs_shed_;
}

std::vector<std::string> DecisionService::completed_order() const {
  std::unique_lock<std::mutex> lock(mu_);
  return completed_order_;
}

size_t DecisionService::verdicts_served_from_cache() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_served_;
}

bool DecisionService::degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_;
}

size_t DecisionService::persists_skipped_degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return persists_skipped_degraded_;
}

size_t DecisionService::submits_shed_degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submits_shed_degraded_;
}

size_t DecisionService::ephemeral_admissions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ephemeral_admissions_;
}

std::string DecisionService::HealthState() const {
  // Store health first (its own lock), then the service lock — never
  // nested the other way.
  const StoreHealth store_health = store_->health();
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return "down";
  if (store_health == StoreHealth::kReadOnly) return "readonly";
  if (degraded_ || store_health == StoreHealth::kDegraded) return "degraded";
  return "healthy";
}

std::string DecisionService::HealthLine(std::string_view label) const {
  const StoreHealthReport report = store_->health_report();
  std::string state = HealthState();
  std::lock_guard<std::mutex> lock(mu_);
  return StrCat("shard ", label, " state=", state,
                " io_errors=", report.io_errors,
                " write_failures=", report.write_failures,
                " fsync_failures=", report.fsync_failures,
                " probes=", report.probes_succeeded, "/",
                report.probes_attempted, " shed=", submits_shed_degraded_,
                " ephemeral=", ephemeral_admissions_);
}

Status DecisionService::ProbeStoreNow() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) {
      return Status::FailedPrecondition("decision service crashed");
    }
  }
  // The probe does real (small) I/O; don't hold the service lock over
  // it — the store serializes itself.
  Status probed = store_->ProbeHealth();
  std::lock_guard<std::mutex> lock(mu_);
  if (probed.ok()) degraded_ = false;
  return probed;
}

void DecisionService::ProberLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  std::chrono::milliseconds delay = options_.store_probe_interval;
  bool sick = false;
  for (;;) {
    if (!sick) {
      // Parked: wake promptly when a persist failure degrades the
      // service, or on the interval tick (the store can sicken through
      // a path that doesn't notify, e.g. a failed cache write).
      probe_cv_.wait_for(lock, options_.store_probe_interval, [&] {
        return stopping_ || crashed_ || degraded_;
      });
    } else {
      // Backing off between probes of a sick store.
      probe_cv_.wait_for(lock, delay,
                         [&] { return stopping_ || crashed_; });
    }
    if (stopping_ || crashed_) return;
    sick = degraded_ || store_->health() != StoreHealth::kHealthy;
    if (!sick) {
      delay = options_.store_probe_interval;
      continue;
    }
    lock.unlock();
    Status probed = store_->ProbeHealth();
    lock.lock();
    if (stopping_ || crashed_) return;
    if (probed.ok()) {
      // The single healing edge: a demonstrated full durability cycle.
      degraded_ = false;
      sick = false;
      delay = options_.store_probe_interval;
    } else {
      // Still sick: back off (capped) so a dead disk is not hammered.
      delay = std::min(options_.store_probe_backoff_cap, delay * 2);
    }
  }
}

size_t DecisionService::checkpoints_persisted() const {
  std::unique_lock<std::mutex> lock(mu_);
  return persist_ordinal_;
}

// --- Admission ------------------------------------------------------

Status DecisionService::Submit(const std::string& request_id,
                               const JobSpec& spec) {
  std::unique_lock<std::mutex> lock(mu_);
  if (crashed_) {
    return Status::FailedPrecondition("decision service crashed");
  }
  if (stopping_) {
    return Status::FailedPrecondition("decision service is shutting down");
  }
  if (detaching_) {
    return Status::FailedPrecondition(
        "decision service is detaching (planned shard handoff)");
  }
  // Load shedding: admission is bounded by jobs not yet terminal, so a
  // burst beyond the bound is rejected up front instead of growing the
  // queue without limit.
  if (queued_count_ >= options_.max_queue_depth) {
    ++jobs_shed_;
    return Status::ResourceExhausted(
        StrCat("admission control: ", queued_count_,
               " jobs in flight, queue depth limit is ",
               options_.max_queue_depth, "; job \"", request_id,
               "\" shed"));
  }
  if (degraded_) {
    // Degraded mode: the store cannot make new jobs durable, so the
    // "accepted means survives a kill" contract is unpayable — shed
    // durable admission typed. The one thing still admissible is a
    // job the verdict cache can answer without the disk: it is taken
    // ephemerally (no job record; it never claimed durability).
    if (verdict_cache_ != nullptr && spec.kind == JobKind::kRcdp &&
        jobs_.count(request_id) == 0) {
      Result<CompletenessSpec> parsed =
          ParseCompletenessSpec(spec.spec_text);
      if (parsed.ok() && spec.query_index < parsed->queries.size()) {
        const uint64_t fp = FingerprintRcdpInstance(
            parsed->queries[spec.query_index], parsed->db, parsed->master,
            parsed->constraints);
        if (verdict_cache_->Lookup(fp).has_value()) {
          ++ephemeral_admissions_;
          return SubmitLocked(request_id, spec, /*recovered=*/false,
                              /*ephemeral=*/true, lock);
        }
      }
    }
    ++jobs_shed_;
    ++submits_shed_degraded_;
    return Status::ResourceExhausted(
        StrCat("store degraded: durable admission suspended until a "
               "health probe succeeds; job \"", request_id, "\" shed"));
  }
  return SubmitLocked(request_id, spec, /*recovered=*/false,
                      /*ephemeral=*/false, lock);
}

Status DecisionService::SubmitLocked(const std::string& request_id,
                                     const JobSpec& spec, bool recovered,
                                     bool ephemeral,
                                     std::unique_lock<std::mutex>& lock) {
  if (jobs_.count(request_id) > 0) {
    return Status::InvalidArgument(
        StrCat("duplicate request id: ", request_id));
  }
  if (!recovered) {
    // Reject unrunnable jobs at the door: a spec that does not parse
    // would otherwise be discovered only by a worker (or, worse, by a
    // restarted process during recovery).
    Result<CompletenessSpec> parsed = ParseCompletenessSpec(spec.spec_text);
    if (!parsed.ok()) return parsed.status();
    if (spec.query_index >= parsed->queries.size()) {
      return Status::InvalidArgument(
          StrCat("query index ", spec.query_index, " out of range; spec has ",
                 parsed->queries.size(), " queries"));
    }
    // Durability before admission: once Submit returns OK the job
    // survives a kill. Ephemeral (degraded cache-hit) jobs skip this —
    // they never claimed durability and will be served from memory.
    if (!ephemeral) {
      Status persisted = store_->PersistJob(request_id, spec.Serialize());
      if (!persisted.ok()) {
        if (persisted.code() == StatusCode::kFailedPrecondition) {
          return persisted;  // crashed / fenced store, not a disk fault
        }
        // First contact with the bad disk on the admission path:
        // degrade now and shed this job typed, so the caller gets the
        // same retryable answer every later degraded submit will.
        degraded_ = true;
        ++jobs_shed_;
        ++submits_shed_degraded_;
        return Status::ResourceExhausted(
            StrCat("store write failed (", persisted.message(),
                   "); durable admission suspended; job \"", request_id,
                   "\" shed"));
      }
    }
  }

  auto job = std::make_unique<Job>();
  job->id = request_id;
  job->spec = spec;
  job->recovered = recovered;
  job->ephemeral = ephemeral;
  job->deadline = spec.deadline.has_value()
                      ? std::chrono::steady_clock::now() + *spec.deadline
                      : std::chrono::steady_clock::time_point::max();
  queue_.emplace(std::make_pair(job->deadline, next_seq_++), request_id);
  jobs_[request_id] = std::move(job);
  ++queued_count_;
  queue_cv_.notify_one();
  return Status::OK();
}

Result<JobResult> DecisionService::Wait(const std::string& request_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(request_id);
  if (it == jobs_.end()) {
    return Status::NotFound(StrCat("unknown request id: ", request_id));
  }
  Job* job = it->second.get();
  result_cv_.wait(lock, [&] { return job->terminal || crashed_; });
  if (!job->terminal) {
    return Status::FailedPrecondition(
        StrCat("decision service crashed before job \"", request_id,
               "\" finished; restart a service on ", store_->directory(),
               " to resume it"));
  }
  if (!job->terminal_status.ok()) return job->terminal_status;
  return job->result;
}

Result<DecisionService::JobPoll> DecisionService::Poll(
    const std::string& request_id) const {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(request_id);
  if (it == jobs_.end()) {
    return Status::NotFound(StrCat("unknown request id: ", request_id));
  }
  const Job* job = it->second.get();
  if (!job->terminal && crashed_) {
    return Status::FailedPrecondition(
        StrCat("decision service crashed before job \"", request_id,
               "\" finished; restart a service on ", store_->directory(),
               " to resume it"));
  }
  if (job->terminal && !job->terminal_status.ok()) {
    return job->terminal_status;
  }
  JobPoll poll;
  poll.terminal = job->terminal;
  poll.running = job->running;
  if (job->terminal) poll.result = job->result;
  return poll;
}

Status DecisionService::Cancel(const std::string& request_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(request_id);
  if (it == jobs_.end()) {
    return Status::NotFound(StrCat("unknown request id: ", request_id));
  }
  Job* job = it->second.get();
  if (job->terminal) return Status::OK();  // idempotent
  if (crashed_) {
    return Status::FailedPrecondition("decision service crashed");
  }
  job->cancel_requested = true;
  job->cancel.RequestCancel();
  if (!job->running) {
    // Still queued: finish it here instead of waking a worker for a
    // job that will only unwind. Linear scan — the queue is bounded by
    // max_queue_depth.
    for (auto q = queue_.begin(); q != queue_.end(); ++q) {
      if (q->second == request_id) {
        queue_.erase(q);
        break;
      }
    }
    if (!job->ephemeral) store_->Forget(request_id);
    job->terminal = true;
    job->result.verdict = Verdict::kUnknown;
    job->result.evidence =
        StrCat("unknown|", BudgetKindToString(BudgetKind::kCancel));
    job->result.exhaustion.kind = BudgetKind::kCancel;
    job->result.exhaustion.detail = "cancelled before execution";
    --queued_count_;
    completed_order_.push_back(request_id);
    result_cv_.notify_all();
  }
  return Status::OK();
}

Result<JobSpec> DecisionService::GetJobSpec(
    const std::string& request_id) const {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(request_id);
  if (it == jobs_.end()) {
    return Status::NotFound(StrCat("unknown request id: ", request_id));
  }
  return it->second->spec;
}

// --- Execution ------------------------------------------------------

void DecisionService::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    queue_cv_.wait(lock, [&] {
      return stopping_ || crashed_ || detaching_ ||
             (!paused_ && !queue_.empty());
    });
    if (crashed_) return;
    // Detach beats drain: a handoff wants queued jobs LEFT on disk for
    // the successor, so workers park instead of running them down the
    // way plain destruction does.
    if (detaching_) return;
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    // Oldest (earliest) deadline first; FIFO among deadline ties and
    // deadline-free jobs via the admission sequence number.
    auto front = queue_.begin();
    Job* job = jobs_.at(front->second).get();
    queue_.erase(front);
    job->running = true;
    RunJob(job, lock);
    if (crashed_) return;
  }
}

void DecisionService::RunJob(Job* job,
                             std::unique_lock<std::mutex>& lock) {
  auto finish = [&](Status status) {
    // Terminal bookkeeping under the lock; `lock` is held here.
    job->running = false;
    job->terminal = true;
    job->terminal_status = std::move(status);
    --queued_count_;
    completed_order_.push_back(job->id);
    result_cv_.notify_all();
  };

  const JobSpec& spec = job->spec;
  lock.unlock();
  Result<CompletenessSpec> parsed = ParseCompletenessSpec(spec.spec_text);
  if (!parsed.ok() || spec.query_index >= parsed->queries.size()) {
    Status st = !parsed.ok()
                    ? parsed.status()
                    : Status::InvalidArgument(
                          StrCat("query index ", spec.query_index,
                                 " out of range"));
    if (!job->ephemeral) store_->Forget(job->id);
    lock.lock();
    finish(std::move(st));
    return;
  }
  CompletenessSpec problem = std::move(*parsed);
  const AnyQuery& query = problem.queries[spec.query_index];

  // Verdict-cache fast path: a decided verdict cached for this exact
  // instance content (strong fingerprint over Q, V, D, Dm — thread
  // count deliberately excluded, verdicts are thread-count-invariant)
  // is re-served without running any search. kRcdp only; the other
  // deciders have no content fingerprint.
  uint64_t instance_fp = 0;
  if (verdict_cache_ != nullptr && spec.kind == JobKind::kRcdp) {
    instance_fp = FingerprintRcdpInstance(query, problem.db, problem.master,
                                          problem.constraints);
    if (std::optional<CachedVerdict> cached =
            verdict_cache_->Lookup(instance_fp)) {
      if (!job->ephemeral) store_->Forget(job->id);
      lock.lock();
      if (crashed_) return;
      job->result.verdict = cached->verdict;
      job->result.evidence = std::move(cached->evidence);
      ++cache_served_;
      finish(Status::OK());
      return;
    }
  }

  ExecutionBudget budget;
  if (spec.deadline.has_value()) budget.set_deadline(job->deadline);
  const size_t base_slice = spec.slice_steps > 0
                                ? spec.slice_steps
                                : options_.default_slice_steps;
  budget.set_cancel_token(job->cancel.token());
  if (options_.fault_injector != nullptr) {
    budget.set_fault_injector(options_.fault_injector);
  }

  // Stall-escalation state. Checkpoint granularity is the search's
  // rank space, so a slice smaller than one rank unit's cost produces
  // a new generation identical to the last — zero durable progress,
  // and a fixed slice would retry (or a crash chain would re-die)
  // forever. When the newest generation's serialized form equals its
  // predecessor's, the next attempt widens its slice to
  // base << min(generation, 20). The generation number is durable and
  // monotonic, so the exponent keeps growing across kills until a
  // rank unit fits; once progress resumes the slice drops back to the
  // configured base.
  std::string last_durable_form;
  uint64_t last_generation = 0;
  bool stalled = false;

  // Resume state. rcdp/rcqp checkpoints are self-contained, so the
  // newest valid stored generation seeds the first attempt (this is
  // the crash-recovery path). A chase checkpoint is only meaningful
  // together with the partially chased database, which does not
  // survive the process — a recovered chase restarts from round 0.
  std::optional<SearchCheckpoint> resume;
  if (spec.kind != JobKind::kChase) {
    Result<PersistedCheckpoint> persisted =
        store_->LoadLatestCheckpoint(job->id);
    if (persisted.ok()) {
      last_durable_form = persisted->checkpoint.Serialize();
      last_generation = persisted->generation;
      if (persisted->generation >= 2) {
        Result<PersistedCheckpoint> prev =
            store_->LoadCheckpoint(job->id, persisted->generation - 1);
        stalled = prev.ok() &&
                  prev->checkpoint.Serialize() == last_durable_form;
      }
      resume = std::move(persisted->checkpoint);
      job->result.checkpoint_path = persisted->path;
    }
  }
  Database chase_db = problem.db;  // chase: carried across retries

  for (;;) {
    ++job->result.attempts;
    if (base_slice > 0) {
      size_t effective = base_slice;
      if (stalled) {
        const size_t shift =
            static_cast<size_t>(std::min<uint64_t>(last_generation, 20));
        effective =
            base_slice > (std::numeric_limits<size_t>::max() >> shift)
                ? std::numeric_limits<size_t>::max()
                : base_slice << shift;
      }
      budget.set_max_steps(effective);
    }
    Verdict verdict = Verdict::kUnknown;
    std::string evidence;
    std::optional<SearchCheckpoint> checkpoint;
    ExhaustionInfo exhaustion;
    Status decide_status = Status::OK();

    RcdpOptions rcdp_options;
    rcdp_options.num_threads = std::max<size_t>(1, spec.num_threads);
    rcdp_options.budget = &budget;
    rcdp_options.resume = resume.has_value() ? &*resume : nullptr;

    switch (spec.kind) {
      case JobKind::kRcdp: {
        Result<RcdpResult> r = DecideRcdp(query, problem.db, problem.master,
                                          problem.constraints, rcdp_options);
        if (!r.ok()) { decide_status = r.status(); break; }
        verdict = r->verdict;
        evidence = RcdpEvidence(*r);
        checkpoint = std::move(r->checkpoint);
        exhaustion = r->exhaustion;
        break;
      }
      case JobKind::kRcqp: {
        RcqpOptions options;
        options.rcdp = rcdp_options;
        options.rcdp.resume = nullptr;  // travels inside the checkpoint
        options.resume = rcdp_options.resume;
        Result<RcqpResult> r =
            DecideRcqp(query, problem.db_schema, problem.master,
                       problem.constraints, options);
        if (!r.ok()) { decide_status = r.status(); break; }
        verdict = r->verdict;
        evidence = RcqpEvidence(*r);
        checkpoint = std::move(r->checkpoint);
        exhaustion = r->exhaustion;
        break;
      }
      case JobKind::kChase: {
        Result<ChaseResult> r = ChaseToCompleteness(
            query, chase_db, problem.master, problem.constraints,
            spec.max_chase_rounds, rcdp_options);
        if (!r.ok()) { decide_status = r.status(); break; }
        verdict = r->verdict;
        evidence = ChaseEvidence(*r);
        checkpoint = std::move(r->checkpoint);
        exhaustion = r->exhaustion;
        chase_db = std::move(r->db);  // never discard completed rounds
        break;
      }
    }

    // Populate the cache before re-taking the service lock (the cache
    // write fsyncs; don't stall the other workers on it). Best-effort:
    // a failed cache write must not fail the job.
    if (verdict_cache_ != nullptr && spec.kind == JobKind::kRcdp &&
        decide_status.ok() && verdict != Verdict::kUnknown) {
      Status cache_st = verdict_cache_->Insert(instance_fp, verdict, evidence);
      (void)cache_st;
    }

    lock.lock();
    if (crashed_) return;  // another job crashed the service mid-decide

    if (!decide_status.ok()) {
      if (!job->ephemeral) store_->Forget(job->id);
      finish(std::move(decide_status));
      return;
    }

    const bool budget_saw_crash =
        budget.exhausted_kind() == BudgetKind::kCrash;
    if (verdict != Verdict::kUnknown) {
      job->result.verdict = verdict;
      job->result.evidence = std::move(evidence);
      // Retry observability survives success: the budget's monotonic
      // rearm count and sticky first-exhaustion record tell the
      // operator how bumpy the road to the verdict was.
      job->result.exhaustion.retry_count = budget.retry_count();
      if (!job->ephemeral) store_->Forget(job->id);
      finish(Status::OK());
      return;
    }

    // kUnknown: persist the resume point first — crash simulation and
    // real kills alike must find it durable. An ephemeral job never
    // persists (it has no durable identity to attach a generation to);
    // it keeps its resume point in memory like a degraded persist.
    if (checkpoint.has_value()) {
      uint64_t generation = 0;
      bool persisted = false;
      if (!job->ephemeral &&
          !PersistAndMaybeCrash(job, *checkpoint, budget_saw_crash,
                                &generation, &persisted, lock)) {
        return;  // simulated kill (or store failure after crash)
      }
      std::string form = checkpoint->Serialize();
      stalled = form == last_durable_form;
      last_durable_form = std::move(form);
      if (persisted) {
        last_generation = generation;
      } else if (stalled) {
        // No durable generation to drive the escalation exponent —
        // grow it in memory so a too-small slice still widens.
        ++last_generation;
      }
    } else if (budget_saw_crash) {
      // Nothing to persist (exhaustion before the first checkpointable
      // point) — the kill still happens; recovery restarts from the
      // job record alone.
      CrashLocked();
      return;
    } else {
      // No resume point at all: a retry would re-run the identical
      // search, so only a wider slice can help. Escalate as if a
      // same-form generation had been persisted.
      stalled = true;
      ++last_generation;
    }

    // Classify. Step-slice and memory exhaustion are transient: back
    // off (capped exponential in the budget's monotonic retry count)
    // and resume. Deadline, cancel, and the chase round cap are
    // terminal: retrying cannot help (the deadline stays expired, the
    // cap stays reached), so the job ends kUnknown with its newest
    // checkpoint retained in the store for a manual resume.
    const BudgetKind kind = exhaustion.kind;
    const bool transient =
        kind == BudgetKind::kSteps || kind == BudgetKind::kMemory;
    const bool retries_left =
        options_.max_retries == 0 ||
        budget.retry_count() < options_.max_retries;
    if (!transient || !retries_left) {
      job->result.verdict = Verdict::kUnknown;
      job->result.evidence = StrCat("unknown|", BudgetKindToString(kind));
      job->result.exhaustion = exhaustion;
      // An explicit Cancel() abandons the job: drop its durable record
      // and checkpoints (other terminal kUnknowns keep theirs for a
      // manual resume).
      if (job->cancel_requested && !job->ephemeral) store_->Forget(job->id);
      finish(Status::OK());
      return;
    }

    const size_t retry = budget.retry_count();
    std::chrono::milliseconds delay =
        retry >= 20 ? options_.backoff_cap
                    : std::min(options_.backoff_cap,
                               options_.backoff_base * (1u << retry));
    budget.Rearm();
    resume = std::move(checkpoint);
    lock.unlock();
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
  }
}

bool DecisionService::PersistAndMaybeCrash(
    Job* job, const SearchCheckpoint& ckpt, bool budget_saw_crash,
    uint64_t* generation_out, bool* persisted_out,
    std::unique_lock<std::mutex>& lock) {
  *persisted_out = false;
  // Lock is held: the persist ordinal and the crash decision must be
  // one atomic step across workers.
  Result<uint64_t> generation = store_->PersistCheckpoint(job->id, ckpt);
  if (!generation.ok()) {
    if (generation.status().code() == StatusCode::kFailedPrecondition) {
      // The store already crashed (simulated kill) or lost its lock —
      // that is fencing, not a disk fault: the service dies with it.
      CrashLocked();
      return false;
    }
    // A disk fault (EIO/ENOSPC/fsync-gate): degrade instead of dying.
    // The slice's work survives in memory and the search continues;
    // only durability is suspended until a probe succeeds. A crash now
    // costs the unpersisted progress — exactly what a failed disk
    // write must cost — but an in-memory completion still answers.
    degraded_ = true;
    ++persists_skipped_degraded_;
    probe_cv_.notify_all();  // wake the prober to start self-healing
    if (budget_saw_crash) {
      // The crash harness outranks degradation: the kill it asked for
      // still happens, just with nothing new durable.
      CrashLocked();
      return false;
    }
    return true;
  }
  ++persist_ordinal_;
  ++job->result.persisted;
  *generation_out = *generation;
  *persisted_out = true;
  job->result.checkpoint_path =
      StrCat(store_->directory(), "/", job->id, ".g", *generation, ".ckpt");
  if (budget_saw_crash || (options_.crash_after_persist > 0 &&
                           persist_ordinal_ == options_.crash_after_persist)) {
    // Persist-then-abort: the generation above IS durable; the kill
    // lands after it, which is the worst case recovery must win.
    CrashLocked();
    return false;
  }
  return true;
}

void DecisionService::CrashLocked() {
  crashed_ = true;
  store_->SimulateCrash();
  // Fire every job's cancel source so in-flight budgets unwind.
  for (auto& [id, job] : jobs_) job->cancel.RequestCancel();
  queue_cv_.notify_all();
  result_cv_.notify_all();
  probe_cv_.notify_all();
}

}  // namespace relcomp
