#ifndef RELCOMP_SERVICE_VERDICT_CACHE_H_
#define RELCOMP_SERVICE_VERDICT_CACHE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "completeness/rcdp.h"
#include "service/checkpoint_store.h"
#include "util/status.h"

namespace relcomp {

/// A cached decided verdict: what the DecisionService would have
/// answered for the fingerprinted instance, without re-running the
/// search.
struct CachedVerdict {
  Verdict verdict = Verdict::kComplete;
  std::string evidence;
};

/// Cache counters, snapshot under the cache mutex.
struct VerdictCacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t insertions = 0;
  size_t invalidations = 0;
  /// Store entries whose embedded fingerprint disagreed with the
  /// requested key — a corrupted or mis-keyed record, refused and
  /// counted, never served.
  size_t rejections = 0;
};

/// Fingerprint-keyed verdict cache over an optional CheckpointStore.
///
/// Keys are the strong content fingerprints of FingerprintRcdpInstance
/// (see completeness/incremental.h): equal fingerprint ⇒ equal
/// (Q, V, D, Dm) content ⇒ equal verdict and evidence, at any thread
/// count — so the key deliberately excludes num_threads. Only decided
/// verdicts (kComplete / kIncomplete) are cached; kUnknown depends on
/// the budget that produced it, not the instance.
///
/// Entries are journaled in the backing store as `<key>.vrd` records
/// ("vrd"/"vgone" journal ops), so cached verdicts survive restarts
/// and are re-served by a recovered DecisionService without any
/// search. Every entry embeds its own fingerprint; a store record
/// whose embedded fingerprint disagrees with the key it was loaded
/// under is rejected (stats().rejections), never served.
///
/// Thread safety: all methods are safe to call concurrently.
class VerdictCache {
 public:
  /// `store` may be null (memory-only cache) and is not owned; it must
  /// outlive the cache.
  explicit VerdictCache(CheckpointStore* store = nullptr);

  /// The store key for a fingerprint: "v" + 16 hex digits.
  static std::string KeyFor(uint64_t fingerprint);

  /// Serves the cached verdict for the fingerprint, consulting the
  /// in-memory map first and the backing store second. std::nullopt on
  /// miss (or on a rejected store entry).
  std::optional<CachedVerdict> Lookup(uint64_t fingerprint);

  /// Caches a decided verdict. kUnknown is refused with
  /// kInvalidArgument. With a backing store the entry is durably
  /// persisted; a store write failure leaves the cache unchanged.
  Status Insert(uint64_t fingerprint, Verdict verdict,
                const std::string& evidence);

  /// Drops the entry for the fingerprint (e.g. after a delta changed
  /// the instance it described). Idempotent.
  Status Invalidate(uint64_t fingerprint);

  VerdictCacheStats stats() const;

 private:
  CheckpointStore* store_;
  mutable std::mutex mu_;
  std::map<uint64_t, CachedVerdict> entries_;
  VerdictCacheStats stats_;
};

}  // namespace relcomp

#endif  // RELCOMP_SERVICE_VERDICT_CACHE_H_
