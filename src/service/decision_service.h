#ifndef RELCOMP_SERVICE_DECISION_SERVICE_H_
#define RELCOMP_SERVICE_DECISION_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "completeness/rcdp.h"
#include "service/checkpoint_store.h"
#include "service/verdict_cache.h"
#include "util/execution_control.h"
#include "util/status.h"

namespace relcomp {

/// Which decider a job runs.
enum class JobKind : uint8_t { kRcdp, kRcqp, kChase };

const char* JobKindToString(JobKind kind);

/// One completeness-audit job: the problem instance travels as spec
/// text (the relcheck .rcspec format) so the job can be re-created —
/// and its checkpoint resumed — by a process that shares nothing with
/// the submitter but the store directory.
struct JobSpec {
  JobKind kind = JobKind::kRcdp;
  /// The full problem in CompletenessSpec syntax.
  std::string spec_text;
  /// Which `query` line of the spec to audit.
  size_t query_index = 0;
  /// Worker threads for the decider's valuation search (1 = serial).
  size_t num_threads = 1;
  /// Decision points per execution slice (0 = inherit the service's
  /// default_slice_steps). At each slice boundary the checkpoint is
  /// persisted before the search continues — the knob that trades
  /// persist overhead against recovery granularity.
  size_t slice_steps = 0;
  /// Relative deadline, inherited into the job's ExecutionBudget at
  /// the start of execution (nullopt = none). Scheduling is
  /// oldest-deadline-first over these.
  std::optional<std::chrono::milliseconds> deadline;
  /// kChase only: round cap.
  size_t max_chase_rounds = 32;

  /// Single-line versioned text form (the store's job record).
  std::string Serialize() const;
  static Result<JobSpec> Deserialize(std::string_view text);
};

/// Terminal outcome of a job.
struct JobResult {
  Verdict verdict = Verdict::kUnknown;
  /// Canonical evidence string: verdict plus the decider-specific
  /// evidence (counterexample delta + new answer for RCDP; existence +
  /// witness + method for RCQP; rounds + chased database for the
  /// chase). Two runs decided identically iff their keys are equal —
  /// the crash-recovery sweep compares these bit-for-bit.
  std::string evidence;
  /// Why the job stopped short, when verdict == kUnknown.
  ExhaustionInfo exhaustion;
  /// Last persisted checkpoint file ("" when none) — on a terminal
  /// kUnknown the store keeps it for a later manual resume.
  std::string checkpoint_path;
  /// Execution attempts (1 = no retry).
  size_t attempts = 0;
  /// Checkpoint generations persisted while running.
  size_t persisted = 0;
};

/// Service configuration.
struct DecisionServiceOptions {
  /// Admission control: jobs queued (not yet terminal) beyond this
  /// bound are shed with kResourceExhausted at Submit.
  size_t max_queue_depth = 64;
  /// Worker threads draining the queue.
  size_t num_workers = 1;
  /// Default decision points per slice for jobs that leave
  /// JobSpec::slice_steps at 0. 0 = run each attempt to completion.
  /// Liveness note: checkpoints are rank-granular, so a slice smaller
  /// than one rank unit's cost cannot record durable progress. The
  /// service detects this (the new generation serializes identically
  /// to its predecessor — the comparison also runs at recovery, over
  /// the two retained generations, so it survives kills) and widens
  /// the stalled job's slice to base << min(generation, 20) until a
  /// unit completes, then returns to the configured base.
  size_t default_slice_steps = 0;
  /// Cap on transient-exhaustion retries per job (0 = unlimited; the
  /// deadline still bounds sliced jobs).
  size_t max_retries = 0;
  /// Capped exponential backoff before a retry: delay =
  /// min(backoff_base << retry_count, backoff_cap).
  std::chrono::milliseconds backoff_base{1};
  std::chrono::milliseconds backoff_cap{64};
  /// Start with the workers parked until Resume() — lets tests fill
  /// the queue deterministically (admission control, EDF order).
  bool start_paused = false;
  /// Serve and populate a fingerprint-keyed VerdictCache over the
  /// store: a kRcdp job whose instance content matches a cached
  /// decided verdict returns it without any search, and decided
  /// verdicts are journaled as durable store records that survive
  /// restarts. Off by default — a cache hit skips the decider
  /// entirely, which the crash/fault harnesses (which need the search
  /// to actually run) do not expect.
  bool enable_verdict_cache = false;
  /// Crash harness, mechanism 1: simulate a kill right after the k-th
  /// successful checkpoint persist (1-based ordinal across the whole
  /// service; 0 = off). Sweeping k over every persist site proves no
  /// write ordering can lose a committed generation.
  size_t crash_after_persist = 0;
  /// Crash harness, mechanism 2: armed on every job budget. A
  /// kPersistAbort injector trips the budget as BudgetKind::kCrash at
  /// its decision point; the worker persists the unwound checkpoint
  /// and then simulates the kill. Sweeping the point over [0, total)
  /// proves recovery from every interruption position. Not owned.
  const FaultInjector* fault_injector = nullptr;
  /// Passed through to CheckpointStore::Open. The fabric uses the
  /// fabric_root/shard_name pair here to park each member's service on
  /// a named shard; Start()'s store_directory must then be empty.
  CheckpointStoreOptions store_options;
  /// Degraded-mode self-healing: interval between background store
  /// health probes (a full write-fsync-unlink cycle through the
  /// store's FsEnv). While the store is sick, each failed probe
  /// doubles the wait up to store_probe_backoff_cap. 0 disables the
  /// probe thread — tests (and embedders with their own scheduler)
  /// drive ProbeStoreNow() instead.
  std::chrono::milliseconds store_probe_interval{0};
  std::chrono::milliseconds store_probe_backoff_cap{2000};
};

/// Crash-recoverable decision service.
///
/// Lifecycle: Start() opens (exclusively locks) the store directory,
/// re-creates every in-flight job found there (RecoveredJobs()), and
/// spawns the workers. Submit() durably records the job, then enqueues
/// it — so a job accepted is a job that survives a kill. Workers drain
/// the queue oldest-deadline-first, run each job's decider under a
/// per-request ExecutionBudget (deadline inherited from the JobSpec),
/// persist the checkpoint at every slice boundary, and retry transient
/// exhaustion (step-slice, memory) with capped exponential backoff by
/// resuming from the persisted checkpoint. Deadline and cancel
/// exhaustion are terminal: the job ends kUnknown with its latest
/// checkpoint left in the store. Completed jobs are Forget()ten.
///
/// Crash recovery: a restarted service re-parses each pending job's
/// spec and resumes from its newest valid checkpoint; the PR-3 resume
/// guarantees make the final verdict and evidence bit-for-bit equal to
/// an uninterrupted run at any thread count. Chase jobs are the one
/// caveat: the partially chased database lives only in memory, so a
/// cross-process recovery re-runs the (deterministic) chase from round
/// 0 — same final result, repeated work. In-process retries of a chase
/// do reuse the partial database.
class DecisionService {
 public:
  static Result<std::unique_ptr<DecisionService>> Start(
      const std::string& store_directory,
      const DecisionServiceOptions& options = DecisionServiceOptions());

  /// Joins the workers (draining the queue unless crashed).
  ~DecisionService();
  DecisionService(const DecisionService&) = delete;
  DecisionService& operator=(const DecisionService&) = delete;

  /// Admits `spec` as `request_id`, durably persisting it first.
  /// kResourceExhausted when the queue is full (load shedding);
  /// kInvalidArgument on a bad id, duplicate id, or a spec that does
  /// not serialize; kFailedPrecondition after a (simulated) crash.
  Status Submit(const std::string& request_id, const JobSpec& spec);

  /// Blocks until `request_id` is terminal and returns its result.
  /// kNotFound for an unknown id; kFailedPrecondition if the service
  /// crashed before the job finished.
  Result<JobResult> Wait(const std::string& request_id);

  /// Non-blocking job-state probe (the network front end's poll):
  /// terminal == false means the job is still queued or running;
  /// terminal == true carries the result. kNotFound for an unknown id;
  /// a job that failed before producing a decider result returns its
  /// terminal error status, mirroring Wait.
  struct JobPoll {
    bool terminal = false;
    bool running = false;
    JobResult result;
  };
  Result<JobPoll> Poll(const std::string& request_id) const;

  /// Cooperatively cancels `request_id`. A queued job is removed and
  /// finished as kUnknown/cancel immediately; a running job's budget
  /// trips kCancel at its next decision point and the job finishes
  /// kUnknown/cancel; a terminal job is left as-is (idempotent OK). An
  /// explicitly cancelled job is Forget()ten from the store — it is
  /// abandoned, not recoverable. kNotFound for an unknown id.
  Status Cancel(const std::string& request_id);

  /// The spec `request_id` was admitted with — the dedup anchor for
  /// idempotent network retries: a resubmission whose serialized spec
  /// is identical is the same job, anything else is a key collision.
  /// kNotFound for an unknown id.
  Result<JobSpec> GetJobSpec(const std::string& request_id) const;

  /// Releases workers parked by start_paused. Idempotent.
  void Resume();

  /// Flushes the service to durable state for a planned handoff and
  /// stops it from taking on any further work. Every running job's
  /// budget is tripped (kCancel at its next decision point) WITHOUT
  /// marking the job cancel_requested — so the unwound checkpoint is
  /// persisted and the durable job record is kept, exactly as a crash
  /// would leave them, but with no torn tail and no lost slice. Queued
  /// jobs stay queued on disk untouched. Workers park permanently;
  /// Submit rejects with kFailedPrecondition from the first moment of
  /// the call (no late admission can slip past the flush). Returns
  /// once no job is running. The only follow-up that makes sense is
  /// destruction — a successor re-creates every job from the store.
  /// kFailedPrecondition if the service crashed before or during the
  /// flush (the handoff must abort; crash recovery takes over).
  Status Quiesce();

  /// Request ids found in the store at Start() and re-enqueued.
  std::vector<std::string> RecoveredJobs() const;

  /// True after a simulated kill; every later operation fails
  /// kFailedPrecondition.
  bool crashed() const;

  /// Jobs shed at admission so far.
  size_t jobs_shed() const;

  /// Request ids in the order they became terminal — observability for
  /// the oldest-deadline-first scheduling contract.
  std::vector<std::string> completed_order() const;

  /// Checkpoint generations persisted so far (all jobs).
  size_t checkpoints_persisted() const;

  const CheckpointStore& store() const { return *store_; }

  /// Mutable store access for co-owners of the shard — the fabric
  /// journals its ring control record through here so the placement
  /// epoch rides the same crash-atomic store as the jobs it governs.
  CheckpointStore* mutable_store() { return store_.get(); }

  /// True while the service is in degraded mode: a store write failed
  /// (or the fsync gate closed), so durable admission is suspended —
  /// Submit sheds with typed kResourceExhausted, EXCEPT verdict-cache
  /// hits, which are admitted ephemerally (no job record) and served
  /// from memory. Running jobs keep deciding; their checkpoint
  /// persists are skipped, not fatal. Cleared ONLY by a successful
  /// store probe (the background thread or ProbeStoreNow) — a lucky
  /// write never flips the service back, so degraded/healthy cannot
  /// flap on an intermittent disk.
  bool degraded() const;

  /// One store health probe, now, on the caller's thread. On success
  /// the service leaves degraded mode. Returns the probe's outcome;
  /// kFailedPrecondition after a (simulated) crash.
  Status ProbeStoreNow();

  /// Checkpoint persists skipped because the service was degraded —
  /// slices that completed in memory only.
  size_t persists_skipped_degraded() const;

  /// Submissions shed specifically because the store was degraded
  /// (subset of jobs_shed()).
  size_t submits_shed_degraded() const;

  /// Cache-hit jobs admitted ephemerally while degraded.
  size_t ephemeral_admissions() const;

  /// Worst-wins health token for this service + its store:
  /// "down" (crashed) > "readonly" (fsync gate) > "degraded" > "healthy".
  std::string HealthState() const;

  /// One `relcomp-health/1` report line: `shard <label> state=<state>
  /// io_errors=... write_failures=... fsync_failures=...
  /// probes=<succeeded>/<attempted> shed=<n> ephemeral=<n>`.
  std::string HealthLine(std::string_view label) const;

  /// Jobs answered from the verdict cache without running a search.
  size_t verdicts_served_from_cache() const;

  /// The cache (null unless enable_verdict_cache) — stats for tests
  /// and the bench.
  VerdictCache* verdict_cache() { return verdict_cache_.get(); }

 private:
  struct Job;

  explicit DecisionService(DecisionServiceOptions options);

  Status SubmitLocked(const std::string& request_id, const JobSpec& spec,
                      bool recovered, bool ephemeral,
                      std::unique_lock<std::mutex>& lock);
  void WorkerLoop();
  /// Background store health probe with capped backoff; parks until
  /// the store is sick, probes, and clears degraded mode on success.
  void ProberLoop();
  /// Runs one job to a terminal state (or crash). Called with the lock
  /// held; drops it while deciding.
  void RunJob(Job* job, std::unique_lock<std::mutex>& lock);
  /// Persists `ckpt` for `job` and fires the crash harness if armed.
  /// Returns false when the service crashed (simulated kill). On a
  /// disk fault the service degrades instead of crashing: the persist
  /// is skipped (*persisted_out = false) and the job continues in
  /// memory. On success *generation_out is the durable generation.
  bool PersistAndMaybeCrash(Job* job, const SearchCheckpoint& ckpt,
                            bool budget_saw_crash, uint64_t* generation_out,
                            bool* persisted_out,
                            std::unique_lock<std::mutex>& lock);
  void CrashLocked();

  DecisionServiceOptions options_;
  std::unique_ptr<CheckpointStore> store_;
  std::unique_ptr<VerdictCache> verdict_cache_;
  std::vector<std::thread> workers_;
  std::thread prober_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;   // workers: queue / resume / stop
  std::condition_variable result_cv_;  // waiters: job became terminal
  std::condition_variable probe_cv_;   // prober: sick store / stop
  bool paused_ = false;
  bool stopping_ = false;
  bool crashed_ = false;
  /// Set by Quiesce(): workers exit instead of draining the queue, and
  /// Submit rejects — the shard is being handed off.
  bool detaching_ = false;
  /// EDF ready-queue: (absolute deadline, admission seq) -> request id.
  std::map<std::pair<std::chrono::steady_clock::time_point, uint64_t>,
           std::string>
      queue_;
  std::map<std::string, std::unique_ptr<Job>> jobs_;
  std::vector<std::string> recovered_;
  std::vector<std::string> completed_order_;
  uint64_t next_seq_ = 0;
  size_t queued_count_ = 0;  // queued + running (admission-controlled)
  size_t jobs_shed_ = 0;
  size_t persist_ordinal_ = 0;  // service-wide persist counter
  size_t cache_served_ = 0;     // jobs answered from the verdict cache
  /// Degraded mode (see degraded()). Set on any store write failure
  /// that is not a simulated crash; cleared only by a probe success.
  bool degraded_ = false;
  size_t persists_skipped_degraded_ = 0;
  size_t submits_shed_degraded_ = 0;
  size_t ephemeral_admissions_ = 0;
};

}  // namespace relcomp

#endif  // RELCOMP_SERVICE_DECISION_SERVICE_H_
