#include "service/checkpoint_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>

#include "util/str.h"

namespace relcomp {
namespace {

constexpr char kRecordMagic[] = "relcomp-store/1";
constexpr char kCrcSeparator[] = "#crc32:";
constexpr char kJournalMagic[] = "J1";
constexpr char kLockFile[] = "LOCK";
constexpr char kJournalFile[] = "journal";

/// Request ids become file names; anything outside this set (or an
/// empty / dot-leading / oversized id) is refused up front so a hostile
/// id can never escape the store directory.
bool ValidRequestId(const std::string& id) {
  if (id.empty() || id.size() > 100 || id[0] == '.') return false;
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string CkptPath(const std::string& dir, const std::string& id,
                     uint64_t generation) {
  return StrCat(dir, "/", id, ".g", generation, ".ckpt");
}

std::string JobPath(const std::string& dir, const std::string& id) {
  return StrCat(dir, "/", id, ".job");
}

std::string VrdPath(const std::string& dir, const std::string& id) {
  return StrCat(dir, "/", id, ".vrd");
}

std::string CtlPath(const std::string& dir, const std::string& id) {
  return StrCat(dir, "/", id, ".ctl");
}

Status ErrnoStatus(std::string_view what, const std::string& path) {
  return Status::Internal(
      StrCat(what, " ", path, ": ", std::strerror(errno)));
}

/// mkdir -p: creates every missing component of `dir`.
Status MakeDirs(FsEnv* env, const std::string& dir) {
  std::string partial;
  size_t pos = 0;
  while (pos <= dir.size()) {
    size_t next = dir.find('/', pos);
    if (next == std::string::npos) next = dir.size();
    partial = dir.substr(0, next);
    pos = next + 1;
    if (partial.empty()) continue;
    if (env->Mkdir("mkdir", partial.c_str(), 0755) != 0 &&
        errno != EEXIST) {
      return ErrnoStatus("mkdir", partial);
    }
  }
  return Status::OK();
}

Status FsyncDirectory(FsEnv* env, const std::string& dir) {
  int fd = env->Open("dirsync", dir.c_str(), O_RDONLY | O_DIRECTORY, 0);
  if (fd < 0) return ErrnoStatus("open dir", dir);
  if (env->Fsync("dirsync", fd) != 0) {
    Status st = ErrnoStatus("fsync dir", dir);
    ::close(fd);
    return st;
  }
  ::close(fd);
  return Status::OK();
}

Result<std::string> ReadWholeFile(FsEnv* env, const std::string& path) {
  int fd = env->Open("read", path.c_str(), O_RDONLY, 0);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound(StrCat("no such store file: ", path));
    }
    return ErrnoStatus("open", path);
  }
  std::string out;
  char buf[1 << 14];
  for (;;) {
    ssize_t n = env->Read("read", fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = ErrnoStatus("read", path);
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

bool ParseU64(std::string_view field, uint64_t* out) {
  if (field.empty()) return false;
  auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), *out);
  return ec == std::errc() && ptr == field.data() + field.size();
}

bool ParseHex32(std::string_view field, uint32_t* out) {
  if (field.size() != 8) return false;
  auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), *out, 16);
  return ec == std::errc() && ptr == field.data() + field.size();
}

std::string Hex32(uint32_t v) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", v);
  return buf;
}

/// Splits the next space-delimited field off `*text`.
bool TakeField(std::string_view* text, std::string_view* field) {
  size_t sp = text->find(' ');
  if (sp == std::string_view::npos) return false;
  *field = text->substr(0, sp);
  text->remove_prefix(sp + 1);
  return true;
}

}  // namespace

uint32_t CheckpointStore::Crc32(std::string_view data) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : std::string_view(data)) {
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Result<std::unique_ptr<CheckpointStore>> CheckpointStore::Open(
    const std::string& directory, const CheckpointStoreOptions& options) {
  std::string resolved = directory;
  if (!options.fabric_root.empty()) {
    if (!directory.empty()) {
      return Status::InvalidArgument(
          "pass either a store directory or fabric_root/shard_name, "
          "not both");
    }
    if (!ValidRequestId(options.shard_name)) {
      return Status::InvalidArgument(
          StrCat("invalid shard name for fabric store: \"",
                 options.shard_name, "\""));
    }
    resolved = StrCat(options.fabric_root, "/", options.shard_name);
  }
  if (resolved.empty()) {
    return Status::InvalidArgument("store directory must not be empty");
  }
  std::unique_ptr<CheckpointStore> store(
      new CheckpointStore(resolved, options));
  RELCOMP_RETURN_NOT_OK(MakeDirs(store->env(), resolved));

  const std::string lock_path = StrCat(resolved, "/", kLockFile);
  int fd = store->env()->Open("lock", lock_path.c_str(),
                              O_RDWR | O_CREAT, 0644);
  if (fd < 0) return ErrnoStatus("open lock", lock_path);
  if (store->env()->Flock("lock", fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    if (errno == EWOULDBLOCK) {
      return Status::FailedPrecondition(
          StrCat("checkpoint store ", resolved,
                 " is locked by another live owner; refusing to "
                 "interleave generations"));
    }
    return ErrnoStatus("flock", lock_path);
  }
  store->lock_fd_ = fd;

  RELCOMP_RETURN_NOT_OK(store->ReplayJournal());
  RELCOMP_RETURN_NOT_OK(store->ScanDirectory());
  return store;
}

CheckpointStore::~CheckpointStore() {
  if (lock_fd_ >= 0) {
    ::flock(lock_fd_, LOCK_UN);
    ::close(lock_fd_);
    lock_fd_ = -1;
  }
}

void CheckpointStore::SimulateCrash() {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_ = true;
  // A killed process's flock is released by the kernel; mirror that so
  // the restarted service can take the directory over.
  if (lock_fd_ >= 0) {
    ::flock(lock_fd_, LOCK_UN);
    ::close(lock_fd_);
    lock_fd_ = -1;
  }
}

Status CheckpointStore::CheckAlive() const {
  if (crashed_) {
    return Status::FailedPrecondition(
        StrCat("checkpoint store ", dir_,
               " simulated a crash; no further operations"));
  }
  return Status::OK();
}

size_t CheckpointStore::corrupt_files_skipped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return corrupt_files_skipped_;
}

const char* StoreHealthToString(StoreHealth health) {
  switch (health) {
    case StoreHealth::kHealthy: return "healthy";
    case StoreHealth::kDegraded: return "degraded";
    case StoreHealth::kReadOnly: return "readonly";
  }
  return "?";
}

Status CheckpointStore::CheckWritableLocked() const {
  if (health_ == StoreHealth::kReadOnly) {
    return Status::Unavailable(
        StrCat("checkpoint store ", dir_, " is read-only: a failed fsync "
               "poisoned the write path (fsync-gate); refusing mutations "
               "until a health probe succeeds"));
  }
  return Status::OK();
}

void CheckpointStore::NoteWriteFailureLocked(bool fsync_failure) {
  ++io_errors_;
  ++write_failures_;
  if (fsync_failure) {
    ++fsync_failures_;
    health_ = StoreHealth::kReadOnly;
  } else if (health_ == StoreHealth::kHealthy) {
    health_ = StoreHealth::kDegraded;
  }
}

StoreHealth CheckpointStore::health() const {
  std::lock_guard<std::mutex> lock(mu_);
  return health_;
}

StoreHealthReport CheckpointStore::health_report() const {
  std::lock_guard<std::mutex> lock(mu_);
  StoreHealthReport report;
  report.health = health_;
  report.io_errors = io_errors_;
  report.write_failures = write_failures_;
  report.fsync_failures = fsync_failures_;
  report.probes_attempted = probes_attempted_;
  report.probes_succeeded = probes_succeeded_;
  return report;
}

Status CheckpointStore::ProbeHealth() {
  std::lock_guard<std::mutex> lock(mu_);
  RELCOMP_RETURN_NOT_OK(CheckAlive());
  ++probes_attempted_;
  // A full durability cycle through the environment — the same ops a
  // real persist issues. The probe file is dot-leading, so it can
  // never collide with a record (request ids may not start with a
  // dot) and the directory scan ignores it.
  const std::string path = StrCat(dir_, "/.probe");
  const std::string body = StrCat("probe ", probes_attempted_, "\n");
  auto fail = [&](std::string_view what, bool fsync_failure) {
    Status st = ErrnoStatus(what, path);
    NoteWriteFailureLocked(fsync_failure);
    return st;
  };
  int fd = env_->Open("probe", path.c_str(),
                      O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return fail("probe open", false);
  errno = 0;
  ssize_t n = env_->Write("probe", fd, body.data(), body.size());
  if (n < 0 || static_cast<size_t>(n) != body.size()) {
    ::close(fd);
    env_->Unlink("probe", path.c_str());
    return fail("probe write", false);
  }
  if (env_->Fsync("probe", fd) != 0) {
    ::close(fd);
    env_->Unlink("probe", path.c_str());
    return fail("probe fsync", true);
  }
  ::close(fd);
  if (env_->Unlink("probe", path.c_str()) != 0) {
    return fail("probe unlink", false);
  }
  ++probes_succeeded_;
  // The one healing edge: the disk demonstrably completed a full
  // write-fsync cycle just now.
  health_ = StoreHealth::kHealthy;
  return Status::OK();
}

// --- Record envelope -------------------------------------------------
//
//   relcomp-store/1 <kind> <request_id> <generation> <len>:<payload>
//   #crc32:<8 hex>
//
// (one byte stream, no newline framing — the payload may contain
// anything). The CRC covers every byte before the separator, so any
// truncation, torn tail, or bit flip anywhere in header or payload is
// caught. The <len>:<payload> framing additionally pins the payload
// size, so an appended tail cannot masquerade as payload either.

Status CheckpointStore::WriteRecord(const std::string& path,
                                    std::string_view kind,
                                    const std::string& request_id,
                                    uint64_t generation,
                                    std::string_view payload) {
  std::string body =
      StrCat(kRecordMagic, " ", kind, " ", request_id, " ", generation, " ",
             payload.size(), ":", payload);
  body += StrCat(kCrcSeparator, Hex32(Crc32(body)));

  const std::string site = StrCat("record.", kind);
  const std::string tmp = StrCat(path, ".tmp.", ::getpid());
  int fd = env_->Open(site, tmp.c_str(),
                      O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    NoteWriteFailureLocked(false);
    return ErrnoStatus("open", tmp);
  }
  size_t off = 0;
  while (off < body.size()) {
    errno = 0;
    ssize_t n = env_->Write(site, fd, body.data() + off, body.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = ErrnoStatus("write", tmp);
      ::close(fd);
      env_->Unlink(site, tmp.c_str());
      NoteWriteFailureLocked(false);
      return st;
    }
    if (static_cast<size_t>(n) < body.size() - off && errno == ENOSPC) {
      // A short write that blames the disk will never complete; a
      // retry loop here would just hammer a full volume. The tmp file
      // holds the torn prefix — unlink it and poison the path.
      Status st = ErrnoStatus("short write", tmp);
      ::close(fd);
      env_->Unlink(site, tmp.c_str());
      NoteWriteFailureLocked(false);
      return st;
    }
    off += static_cast<size_t>(n);
  }
  if (env_->Fsync(site, fd) != 0) {
    // Fsync-gate: the kernel may have dropped any of these bytes, so
    // the record path is poisoned — unlink the tmp instead of
    // retrying, and let health flip to read-only.
    Status st = ErrnoStatus("fsync", tmp);
    ::close(fd);
    env_->Unlink(site, tmp.c_str());
    NoteWriteFailureLocked(true);
    return st;
  }
  ::close(fd);
  if (env_->Rename(site, tmp.c_str(), path.c_str()) != 0) {
    Status st = ErrnoStatus("rename", tmp);
    env_->Unlink(site, tmp.c_str());
    NoteWriteFailureLocked(false);
    return st;
  }
  Status synced = FsyncDirectory(env_, dir_);
  if (!synced.ok()) NoteWriteFailureLocked(true);
  return synced;
}

Result<std::string> CheckpointStore::ReadRecord(
    const std::string& path, std::string_view expect_kind,
    const std::string& expect_request_id, uint64_t expect_generation) const {
  Result<std::string> read = ReadWholeFile(env_, path);
  if (!read.ok()) {
    if (read.status().code() == StatusCode::kInternal) ++io_errors_;
    return read.status();
  }
  std::string content = *std::move(read);
  auto corrupt = [&](std::string_view why) {
    return Status::InvalidArgument(
        StrCat("corrupted store file ", path, " (", std::string(why), ")"));
  };
  // Footer first: everything before the final separator must hash to
  // the trailing CRC. rfind — the payload may itself contain the
  // separator bytes.
  size_t sep = content.rfind(kCrcSeparator);
  if (sep == std::string::npos) return corrupt("missing integrity footer");
  std::string_view footer(content.data() + sep + std::strlen(kCrcSeparator),
                          content.size() - sep - std::strlen(kCrcSeparator));
  uint32_t want_crc = 0;
  if (!ParseHex32(footer, &want_crc)) {
    return corrupt("malformed integrity footer");
  }
  std::string_view body(content.data(), sep);
  if (Crc32(body) != want_crc) {
    return corrupt(StrCat("crc mismatch: file says ", std::string(footer),
                          ", content hashes to ", Hex32(Crc32(body))));
  }
  // Header. The CRC already vouches for byte integrity; these checks
  // catch a record renamed (or journal-mapped) to the wrong identity.
  std::string_view rest = body;
  std::string_view magic, kind, id, gen_field;
  if (!TakeField(&rest, &magic) || magic != kRecordMagic) {
    return corrupt("bad magic");
  }
  if (!TakeField(&rest, &kind) || kind != expect_kind) {
    return corrupt(StrCat("record kind mismatch: got ",
                          std::string(kind.empty() ? "<none>" : kind),
                          ", want ", std::string(expect_kind)));
  }
  if (!TakeField(&rest, &id) || id != expect_request_id) {
    return corrupt("request id mismatch");
  }
  uint64_t generation = 0;
  if (!TakeField(&rest, &gen_field) || !ParseU64(gen_field, &generation) ||
      generation != expect_generation) {
    return corrupt("generation mismatch");
  }
  size_t colon = rest.find(':');
  if (colon == std::string_view::npos) return corrupt("no payload length");
  uint64_t payload_len = 0;
  if (!ParseU64(rest.substr(0, colon), &payload_len)) {
    return corrupt("bad payload length");
  }
  rest.remove_prefix(colon + 1);
  if (rest.size() != payload_len) {
    return corrupt(StrCat("payload length mismatch: header says ",
                          payload_len, ", file holds ", rest.size()));
  }
  return std::string(rest);
}

// --- Journal ---------------------------------------------------------
//
//   J1 <op> <request_id> <generation> <8-hex crc>\n
//
// ops: "ckpt" (a generation became durable), "job" (a job record
// became durable), "done" (the request completed and its files were
// removed), "vrd"/"vgone" (a verdict record appeared/vanished), "ctl"
// (a control record — e.g. the fabric ring — became durable). The
// per-line CRC covers "<op> <id> <gen>"; replay ignores
// any line that fails it — a crash mid-append tears at most the final
// line.

Status CheckpointStore::AppendJournal(std::string_view op,
                                      const std::string& request_id,
                                      uint64_t generation) {
  const std::string fields =
      StrCat(op, " ", request_id, " ", generation);
  std::string line =
      StrCat(kJournalMagic, " ", fields, " ", Hex32(Crc32(fields)), "\n");
  // A previous append failed after possibly landing a prefix without
  // its newline. Start this line with one so that torn fragment stays
  // its own (CRC-failing, skipped-and-counted) line — appending
  // directly would merge it with this entry and lose BOTH.
  if (journal_tainted_) line.insert(line.begin(), '\n');
  const std::string path = StrCat(dir_, "/", kJournalFile);
  int fd = env_->Open("journal", path.c_str(),
                      O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd < 0) {
    NoteWriteFailureLocked(false);
    return ErrnoStatus("open journal", path);
  }
  // One write() call per line: POSIX O_APPEND writes are atomic with
  // respect to each other for this size, so concurrent appends from
  // the submit path and the worker never interleave bytes.
  ssize_t n = env_->Write("journal", fd, line.data(), line.size());
  if (n < 0 || static_cast<size_t>(n) != line.size()) {
    Status st = n < 0 ? ErrnoStatus("append journal", path)
                      : ErrnoStatus("short journal append", path);
    ::close(fd);
    // Anything from zero to line.size()-1 bytes may now sit at the
    // tail with no newline.
    journal_tainted_ = true;
    NoteWriteFailureLocked(false);
    return st;
  }
  if (env_->Fsync("journal", fd) != 0) {
    Status st = ErrnoStatus("fsync journal", path);
    ::close(fd);
    // The kernel may keep or drop any suffix of the unsynced line.
    journal_tainted_ = true;
    NoteWriteFailureLocked(true);
    return st;
  }
  ::close(fd);
  journal_tainted_ = false;
  ++journal_entries_;
  return MaybeCompactJournalLocked();
}

Status CheckpointStore::MaybeCompactJournalLocked() {
  if (options_.journal_compaction_threshold == 0 ||
      journal_entries_ <= options_.journal_compaction_threshold) {
    return Status::OK();
  }
  // Rebuild the minimal journal from the in-memory state (which the
  // journal exists to reconstruct): one "ckpt" line per request with a
  // live generation, one "job" line per in-flight job record. "done"
  // entries vanish — their whole purpose was to cancel earlier lines.
  std::string content;
  size_t lines = 0;
  auto emit = [&](std::string_view op, const std::string& id, uint64_t gen) {
    const std::string fields = StrCat(op, " ", id, " ", gen);
    content += StrCat(kJournalMagic, " ", fields, " ",
                      Hex32(Crc32(fields)), "\n");
    ++lines;
  };
  for (const auto& [id, gen] : last_generation_) emit("ckpt", id, gen);
  for (const auto& [id, live] : has_job_) {
    if (live) emit("job", id, 0);
  }
  for (const auto& [id, live] : has_verdict_) {
    if (live) emit("vrd", id, 0);
  }
  for (const auto& [id, live] : has_control_) {
    if (live) emit("ctl", id, 0);
  }
  // Same crash-atomicity dance as record files: a kill before the
  // rename leaves the old journal plus tmp garbage (the directory scan
  // ignores journal.tmp.*); a kill after it leaves the new journal.
  // Either replays to the same state.
  const std::string path = StrCat(dir_, "/", kJournalFile);
  const std::string tmp = StrCat(path, ".tmp.", ::getpid());
  int fd = env_->Open("compact", tmp.c_str(),
                      O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    NoteWriteFailureLocked(false);
    return ErrnoStatus("open", tmp);
  }
  size_t off = 0;
  while (off < content.size()) {
    errno = 0;
    ssize_t n =
        env_->Write("compact", fd, content.data() + off,
                    content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = ErrnoStatus("write", tmp);
      ::close(fd);
      env_->Unlink("compact", tmp.c_str());
      NoteWriteFailureLocked(false);
      return st;
    }
    if (static_cast<size_t>(n) < content.size() - off &&
        errno == ENOSPC) {
      Status st = ErrnoStatus("short write", tmp);
      ::close(fd);
      env_->Unlink("compact", tmp.c_str());
      NoteWriteFailureLocked(false);
      return st;
    }
    off += static_cast<size_t>(n);
  }
  if (env_->Fsync("compact", fd) != 0) {
    Status st = ErrnoStatus("fsync", tmp);
    ::close(fd);
    env_->Unlink("compact", tmp.c_str());
    NoteWriteFailureLocked(true);
    return st;
  }
  ::close(fd);
  if (env_->Rename("compact", tmp.c_str(), path.c_str()) != 0) {
    Status st = ErrnoStatus("rename", tmp);
    env_->Unlink("compact", tmp.c_str());
    NoteWriteFailureLocked(false);
    return st;
  }
  Status synced = FsyncDirectory(env_, dir_);
  if (!synced.ok()) {
    NoteWriteFailureLocked(true);
    return synced;
  }
  journal_entries_ = lines;
  ++journal_compactions_;
  // A fully rewritten journal ends in a newline by construction.
  journal_tainted_ = false;
  return Status::OK();
}

size_t CheckpointStore::journal_compactions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return journal_compactions_;
}

size_t CheckpointStore::journal_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return journal_entries_;
}

Status CheckpointStore::ReplayJournal() {
  const std::string path = StrCat(dir_, "/", kJournalFile);
  Result<std::string> content = ReadWholeFile(env_, path);
  if (!content.ok()) {
    if (content.status().code() == StatusCode::kNotFound) {
      return Status::OK();  // fresh store
    }
    return content.status();
  }
  // A journal that does not end in a newline carries a torn tail from
  // a crash (or lying disk) mid-append in a PREVIOUS process. The
  // in-process taint flag died with that process, so re-arm it here:
  // this store's first append then starts with a newline, keeping the
  // fragment its own skipped line instead of merging with — and
  // corrupting — the new entry.
  if (!content->empty() && content->back() != '\n') journal_tainted_ = true;
  std::string_view rest = *content;
  while (!rest.empty()) {
    size_t nl = rest.find('\n');
    std::string_view line = rest.substr(0, nl);
    rest = nl == std::string_view::npos ? std::string_view()
                                        : rest.substr(nl + 1);
    if (line.empty()) continue;
    ++journal_entries_;  // torn lines occupy journal space too
    // Parse "J1 <op> <id> <gen> <crc>"; skip (count) anything torn.
    std::string_view magic, op, id, gen_field;
    std::string_view cursor = line;
    uint64_t generation = 0;
    uint32_t want_crc = 0;
    if (!TakeField(&cursor, &magic) || magic != kJournalMagic ||
        !TakeField(&cursor, &op) || !TakeField(&cursor, &id) ||
        !TakeField(&cursor, &gen_field) ||
        !ParseU64(gen_field, &generation) ||
        !ParseHex32(cursor, &want_crc) ||
        Crc32(StrCat(op, " ", id, " ", generation)) != want_crc) {
      ++journal_lines_skipped_;
      continue;
    }
    const std::string request_id(id);
    if (op == "ckpt") {
      uint64_t& g = last_generation_[request_id];
      g = std::max(g, generation);
    } else if (op == "job") {
      has_job_[request_id] = true;
    } else if (op == "vrd") {
      has_verdict_[request_id] = true;
    } else if (op == "ctl") {
      has_control_[request_id] = true;
    } else if (op == "vgone") {
      has_verdict_.erase(request_id);
    } else if (op == "done") {
      last_generation_.erase(request_id);
      has_job_.erase(request_id);
    } else {
      ++journal_lines_skipped_;
    }
  }
  return Status::OK();
}

Status CheckpointStore::ScanDirectory() {
  // Catch files that became durable without a journal entry (crash
  // between rename and append): checkpoint generations newer than the
  // journal knows, and job records. A request whose final journal op
  // was "done" has had its files unlinked before the journal entry —
  // any survivor file simply re-enters the in-flight set, which is
  // safe (re-running a completed, deterministic job reproduces its
  // result).
  DIR* d = env_->Opendir("scan", dir_.c_str());
  if (d == nullptr) return ErrnoStatus("opendir", dir_);
  while (struct dirent* entry = ::readdir(d)) {
    std::string_view name(entry->d_name);
    if (name == "." || name == ".." || name == kLockFile ||
        name == kJournalFile) {
      continue;
    }
    if (name.size() > 4 && name.substr(name.size() - 4) == ".job") {
      has_job_[std::string(name.substr(0, name.size() - 4))] = true;
      continue;
    }
    if (name.size() > 4 && name.substr(name.size() - 4) == ".vrd") {
      has_verdict_[std::string(name.substr(0, name.size() - 4))] = true;
      continue;
    }
    if (name.size() > 4 && name.substr(name.size() - 4) == ".ctl") {
      has_control_[std::string(name.substr(0, name.size() - 4))] = true;
      continue;
    }
    if (name.size() > 5 && name.substr(name.size() - 5) == ".ckpt") {
      std::string_view stem = name.substr(0, name.size() - 5);
      size_t dot_g = stem.rfind(".g");
      if (dot_g == std::string_view::npos) continue;
      uint64_t generation = 0;
      if (!ParseU64(stem.substr(dot_g + 2), &generation)) continue;
      const std::string request_id(stem.substr(0, dot_g));
      uint64_t& g = last_generation_[request_id];
      g = std::max(g, generation);
    }
    // .tmp.* leftovers from a crash mid-write are ignored (and
    // overwritten by the next writer with the same pid, or left as
    // harmless garbage).
  }
  ::closedir(d);
  return Status::OK();
}

// --- Public operations -----------------------------------------------

Result<uint64_t> CheckpointStore::PersistCheckpoint(
    const std::string& request_id, const SearchCheckpoint& ckpt) {
  if (!ValidRequestId(request_id)) {
    return Status::InvalidArgument(
        StrCat("invalid request id for store: \"", request_id, "\""));
  }
  std::lock_guard<std::mutex> lock(mu_);
  RELCOMP_RETURN_NOT_OK(CheckAlive());
  RELCOMP_RETURN_NOT_OK(CheckWritableLocked());
  const uint64_t generation = last_generation_[request_id] + 1;
  RELCOMP_RETURN_NOT_OK(WriteRecord(CkptPath(dir_, request_id, generation),
                                    "ckpt", request_id, generation,
                                    ckpt.Serialize()));
  last_generation_[request_id] = generation;
  RELCOMP_RETURN_NOT_OK(AppendJournal("ckpt", request_id, generation));
  // Keep the latest two generations: the newest, plus one fallback in
  // case the newest file is damaged after the fact. Everything older
  // is garbage.
  if (generation >= 3) {
    env_->Unlink("gc", CkptPath(dir_, request_id, generation - 2).c_str());
  }
  return generation;
}

Result<PersistedCheckpoint> CheckpointStore::LoadLatestCheckpoint(
    const std::string& request_id) const {
  if (!ValidRequestId(request_id)) {
    return Status::InvalidArgument(
        StrCat("invalid request id for store: \"", request_id, "\""));
  }
  std::lock_guard<std::mutex> lock(mu_);
  RELCOMP_RETURN_NOT_OK(CheckAlive());
  auto it = last_generation_.find(request_id);
  if (it == last_generation_.end()) {
    return Status::NotFound(
        StrCat("no checkpoint for request ", request_id));
  }
  // Newest first; a generation that fails integrity or does not parse
  // is skipped, never surfaced.
  for (uint64_t g = it->second; g >= 1; --g) {
    const std::string path = CkptPath(dir_, request_id, g);
    Result<std::string> payload = ReadRecord(path, "ckpt", request_id, g);
    if (!payload.ok()) {
      if (payload.status().code() != StatusCode::kNotFound) {
        ++corrupt_files_skipped_;
      }
      continue;
    }
    Result<SearchCheckpoint> parsed =
        SearchCheckpoint::Deserialize(*payload);
    if (!parsed.ok()) {
      ++corrupt_files_skipped_;
      continue;
    }
    PersistedCheckpoint out;
    out.checkpoint = std::move(*parsed);
    out.generation = g;
    out.path = path;
    return out;
  }
  return Status::NotFound(
      StrCat("no valid checkpoint for request ", request_id,
             " (newest generations failed integrity)"));
}

Result<PersistedCheckpoint> CheckpointStore::LoadCheckpoint(
    const std::string& request_id, uint64_t generation) const {
  if (!ValidRequestId(request_id)) {
    return Status::InvalidArgument(
        StrCat("invalid request id for store: \"", request_id, "\""));
  }
  if (generation == 0) {
    return Status::InvalidArgument("checkpoint generations start at 1");
  }
  std::lock_guard<std::mutex> lock(mu_);
  RELCOMP_RETURN_NOT_OK(CheckAlive());
  const std::string path = CkptPath(dir_, request_id, generation);
  RELCOMP_ASSIGN_OR_RETURN(std::string payload,
                           ReadRecord(path, "ckpt", request_id, generation));
  RELCOMP_ASSIGN_OR_RETURN(SearchCheckpoint parsed,
                           SearchCheckpoint::Deserialize(payload));
  PersistedCheckpoint out;
  out.checkpoint = std::move(parsed);
  out.generation = generation;
  out.path = path;
  return out;
}

Status CheckpointStore::PersistJob(const std::string& request_id,
                                   const std::string& payload) {
  if (!ValidRequestId(request_id)) {
    return Status::InvalidArgument(
        StrCat("invalid request id for store: \"", request_id, "\""));
  }
  std::lock_guard<std::mutex> lock(mu_);
  RELCOMP_RETURN_NOT_OK(CheckAlive());
  RELCOMP_RETURN_NOT_OK(CheckWritableLocked());
  RELCOMP_RETURN_NOT_OK(WriteRecord(JobPath(dir_, request_id), "job",
                                    request_id, 0, payload));
  has_job_[request_id] = true;
  return AppendJournal("job", request_id, 0);
}

Result<std::string> CheckpointStore::LoadJob(
    const std::string& request_id) const {
  if (!ValidRequestId(request_id)) {
    return Status::InvalidArgument(
        StrCat("invalid request id for store: \"", request_id, "\""));
  }
  std::lock_guard<std::mutex> lock(mu_);
  RELCOMP_RETURN_NOT_OK(CheckAlive());
  Result<std::string> payload =
      ReadRecord(JobPath(dir_, request_id), "job", request_id, 0);
  if (!payload.ok() &&
      payload.status().code() == StatusCode::kInvalidArgument) {
    ++corrupt_files_skipped_;
  }
  return payload;
}

std::vector<std::string> CheckpointStore::PendingRequests() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(has_job_.size());
  for (const auto& [id, live] : has_job_) {
    if (live) out.push_back(id);
  }
  return out;
}

Status CheckpointStore::Forget(const std::string& request_id) {
  if (!ValidRequestId(request_id)) {
    return Status::InvalidArgument(
        StrCat("invalid request id for store: \"", request_id, "\""));
  }
  std::lock_guard<std::mutex> lock(mu_);
  RELCOMP_RETURN_NOT_OK(CheckAlive());
  RELCOMP_RETURN_NOT_OK(CheckWritableLocked());
  auto it = last_generation_.find(request_id);
  const uint64_t last = it == last_generation_.end() ? 0 : it->second;
  for (uint64_t g = last; g >= 1; --g) {
    env_->Unlink("gc", CkptPath(dir_, request_id, g).c_str());
  }
  env_->Unlink("gc", JobPath(dir_, request_id).c_str());
  last_generation_.erase(request_id);
  has_job_.erase(request_id);
  return AppendJournal("done", request_id, 0);
}

Status CheckpointStore::PersistVerdict(const std::string& key,
                                       const std::string& payload) {
  if (!ValidRequestId(key)) {
    return Status::InvalidArgument(
        StrCat("invalid verdict key for store: \"", key, "\""));
  }
  std::lock_guard<std::mutex> lock(mu_);
  RELCOMP_RETURN_NOT_OK(CheckAlive());
  RELCOMP_RETURN_NOT_OK(CheckWritableLocked());
  RELCOMP_RETURN_NOT_OK(
      WriteRecord(VrdPath(dir_, key), "vrd", key, 0, payload));
  has_verdict_[key] = true;
  return AppendJournal("vrd", key, 0);
}

Result<std::string> CheckpointStore::LoadVerdict(
    const std::string& key) const {
  if (!ValidRequestId(key)) {
    return Status::InvalidArgument(
        StrCat("invalid verdict key for store: \"", key, "\""));
  }
  std::lock_guard<std::mutex> lock(mu_);
  RELCOMP_RETURN_NOT_OK(CheckAlive());
  Result<std::string> payload =
      ReadRecord(VrdPath(dir_, key), "vrd", key, 0);
  if (!payload.ok() &&
      payload.status().code() == StatusCode::kInvalidArgument) {
    ++corrupt_files_skipped_;
  }
  return payload;
}

Status CheckpointStore::ForgetVerdict(const std::string& key) {
  if (!ValidRequestId(key)) {
    return Status::InvalidArgument(
        StrCat("invalid verdict key for store: \"", key, "\""));
  }
  std::lock_guard<std::mutex> lock(mu_);
  RELCOMP_RETURN_NOT_OK(CheckAlive());
  RELCOMP_RETURN_NOT_OK(CheckWritableLocked());
  env_->Unlink("gc", VrdPath(dir_, key).c_str());
  has_verdict_.erase(key);
  return AppendJournal("vgone", key, 0);
}

std::vector<std::string> CheckpointStore::VerdictKeys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(has_verdict_.size());
  for (const auto& [id, live] : has_verdict_) {
    if (live) out.push_back(id);
  }
  return out;
}

Status CheckpointStore::PersistControl(const std::string& key,
                                       const std::string& payload) {
  if (!ValidRequestId(key)) {
    return Status::InvalidArgument(
        StrCat("invalid control key for store: \"", key, "\""));
  }
  std::lock_guard<std::mutex> lock(mu_);
  RELCOMP_RETURN_NOT_OK(CheckAlive());
  RELCOMP_RETURN_NOT_OK(CheckWritableLocked());
  RELCOMP_RETURN_NOT_OK(
      WriteRecord(CtlPath(dir_, key), "ctl", key, 0, payload));
  has_control_[key] = true;
  return AppendJournal("ctl", key, 0);
}

Result<std::string> CheckpointStore::LoadControl(
    const std::string& key) const {
  if (!ValidRequestId(key)) {
    return Status::InvalidArgument(
        StrCat("invalid control key for store: \"", key, "\""));
  }
  std::lock_guard<std::mutex> lock(mu_);
  RELCOMP_RETURN_NOT_OK(CheckAlive());
  Result<std::string> payload =
      ReadRecord(CtlPath(dir_, key), "ctl", key, 0);
  if (!payload.ok() &&
      payload.status().code() == StatusCode::kInvalidArgument) {
    ++corrupt_files_skipped_;
  }
  return payload;
}

std::vector<std::string> CheckpointStore::ControlKeys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(has_control_.size());
  for (const auto& [id, live] : has_control_) {
    if (live) out.push_back(id);
  }
  return out;
}

}  // namespace relcomp
