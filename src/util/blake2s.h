#ifndef RELCOMP_UTIL_BLAKE2S_H_
#define RELCOMP_UTIL_BLAKE2S_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace relcomp {

/// Length of the frame-authentication tag: a truncated keyed BLAKE2s
/// digest. 128 bits is the standard MAC truncation — collision attacks
/// don't apply to a keyed tag, so forgery resistance is 2^128.
inline constexpr size_t kBlake2sTagLength = 16;

/// Keyed BLAKE2s (RFC 7693) over `data`, truncated to `out_len` bytes
/// (1..32). BLAKE2's keyed mode is a PRF by design, so this is a MAC
/// without the HMAC double-hash construction. `key` may be up to 32
/// bytes; longer keys are first reduced by an unkeyed BLAKE2s-256.
/// An empty key degenerates to the plain hash — callers gate on key
/// presence before trusting tags.
std::string Blake2sMac(std::string_view key, std::string_view data,
                       size_t out_len = kBlake2sTagLength);

/// Constant-time equality for MAC tags: the comparison cost depends
/// only on the lengths, never on where the first mismatch sits, so a
/// forger cannot binary-search a tag byte-by-byte off timing.
bool ConstantTimeEqual(std::string_view a, std::string_view b);

}  // namespace relcomp

#endif  // RELCOMP_UTIL_BLAKE2S_H_
