#include "util/status.h"

namespace relcomp {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace relcomp
