#ifndef RELCOMP_UTIL_EXECUTION_CONTROL_H_
#define RELCOMP_UTIL_EXECUTION_CONTROL_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "util/status.h"

namespace relcomp {

/// Which resource limit an ExecutionBudget ran out of. kNone means the
/// budget is live; kRounds is used by ChaseToCompleteness for its
/// max_rounds cap, which shares the same graceful-degradation path.
enum class BudgetKind : uint8_t {
  kNone = 0,
  kDeadline,
  kSteps,
  kMemory,
  kCancel,
  kRounds,
  /// A FaultInjector::kPersistAbort fault: the search unwinds exactly
  /// like a deadline exhaustion, and the DecisionService, after
  /// persisting the resulting checkpoint, simulates a process kill.
  kCrash,
};

const char* BudgetKindToString(BudgetKind kind);

// --- Cooperative cancellation ---------------------------------------

/// Read side of a CancelSource. A default-constructed token never
/// triggers. Cheap to copy; safe to poll from any thread.
class CancelToken {
 public:
  CancelToken() = default;

  bool cancel_requested() const {
    return flag_ != nullptr && flag_->load(std::memory_order_acquire);
  }
  bool valid() const { return flag_ != nullptr; }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}
  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// Caller-side handle that requests cancellation. Copyable; all copies
/// (and the tokens they handed out) observe the same flag. Thread-safe.
class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void RequestCancel() { flag_->store(true, std::memory_order_release); }
  bool cancel_requested() const {
    return flag_->load(std::memory_order_acquire);
  }

  CancelToken token() const { return CancelToken(flag_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

// --- Deterministic fault injection ----------------------------------

/// Injects one fault when the owning budget's shared decision-point
/// counter reaches a chosen value. Decision points are numbered 0,1,...
/// in the order OnDecisionPoint() calls claim ticks of the shared
/// atomic counter; in serial mode that order is the deterministic
/// search order, so "fault at point N" reproduces exactly. The sweep
/// harness iterates N over [0, total_points) and every fault kind.
class FaultInjector {
 public:
  enum class Fault : uint8_t {
    kCancel,        ///< behaves like a user CancelToken firing
    kDeadline,      ///< behaves like the wall-clock deadline passing
    kAllocFailure,  ///< behaves like the tracked-memory limit tripping
    /// Trips the budget as BudgetKind::kCrash: the decider unwinds
    /// with a checkpoint as usual, and the service layer persists that
    /// checkpoint and then aborts (a simulated kill -9 right after the
    /// durable write). The crash-recovery sweep arms this at every
    /// decision point to prove restart + resume reproduces the
    /// uninterrupted run bit-for-bit.
    kPersistAbort,
  };

  FaultInjector(Fault fault, size_t at_decision_point)
      : fault_(fault), at_(at_decision_point) {}

  /// The BudgetKind to inject at decision point `point`, kNone otherwise.
  BudgetKind Observe(size_t point) const {
    if (point != at_) return BudgetKind::kNone;
    switch (fault_) {
      case Fault::kCancel: return BudgetKind::kCancel;
      case Fault::kDeadline: return BudgetKind::kDeadline;
      case Fault::kAllocFailure: return BudgetKind::kMemory;
      case Fault::kPersistAbort: return BudgetKind::kCrash;
    }
    return BudgetKind::kNone;
  }

  Fault fault() const { return fault_; }
  size_t at() const { return at_; }

 private:
  Fault fault_;
  size_t at_;
};

// --- Execution budget -----------------------------------------------

/// Shared execution budget for one decider call (and its resumptions).
/// Workers of a parallel search all point at the same instance: the
/// step counter, tracked-byte counter, and sticky exhaustion record are
/// atomics, so the first limit trip wins and every later
/// OnDecisionPoint() observes it.
///
/// Decision points are the counted unit of work: one per valuation
/// binding step, one per delta-constraint check, one per pool
/// candidate, one per chase round, one per containment binding. The
/// same points are counted in serial and parallel mode, so a step
/// limit exhausts after the same amount of total work at any thread
/// count (though parallel schedules may distribute it differently).
///
/// Exhaustion is sticky: after the first non-OK OnDecisionPoint() the
/// budget keeps returning the same failure until Rearm(). Deadline,
/// step, and memory limits surface as kResourceExhausted; a fired
/// CancelToken surfaces as kCancelled.
class ExecutionBudget {
 public:
  ExecutionBudget() = default;
  ExecutionBudget(const ExecutionBudget&) = delete;
  ExecutionBudget& operator=(const ExecutionBudget&) = delete;

  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
  }
  void set_timeout(std::chrono::nanoseconds timeout) {
    deadline_ = std::chrono::steady_clock::now() + timeout;
  }
  void set_max_steps(size_t max_steps) { max_steps_ = max_steps; }
  void set_max_tracked_bytes(size_t max_bytes) { max_bytes_ = max_bytes; }
  void set_cancel_token(CancelToken token) { cancel_ = std::move(token); }
  /// Not owned; must outlive the budget's use. Intended for tests.
  void set_fault_injector(const FaultInjector* injector) {
    injector_ = injector;
  }

  /// True when any limit is configured (or an injector is armed) —
  /// callers can skip budget plumbing entirely for a default instance.
  bool active() const {
    return deadline_.has_value() || max_steps_ > 0 || max_bytes_ > 0 ||
           cancel_.valid() || injector_ != nullptr;
  }

  /// Claims one decision point and checks every configured limit.
  /// Returns OK to continue, or the (sticky) exhaustion status. The
  /// wall clock is only consulted every kDeadlineStride points.
  Status OnDecisionPoint();

  /// Records `bytes` of tracked allocation (interner growth, overlay
  /// staging, chase deltas). Never fails in place; a tripped memory
  /// limit surfaces at the next OnDecisionPoint().
  void TrackBytes(size_t bytes) {
    tracked_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void ReleaseBytes(size_t bytes) {
    tracked_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  size_t steps() const { return steps_.load(std::memory_order_relaxed); }
  size_t tracked_bytes() const {
    return tracked_bytes_.load(std::memory_order_relaxed);
  }

  bool exhausted() const {
    return exhausted_kind_.load(std::memory_order_acquire) !=
           static_cast<uint8_t>(BudgetKind::kNone);
  }
  BudgetKind exhausted_kind() const {
    return static_cast<BudgetKind>(
        exhausted_kind_.load(std::memory_order_acquire));
  }
  /// Decision point at which the budget exhausted (meaningful only
  /// when exhausted()).
  size_t exhausted_at() const {
    return exhausted_at_.load(std::memory_order_acquire);
  }
  /// OK when live; otherwise the same status OnDecisionPoint() has
  /// been returning since exhaustion.
  Status exhaustion_status() const;

  /// How many times this budget has been rearmed for a resumed call.
  /// Monotonic: Rearm() increments it and nothing resets it, so the
  /// DecisionService's exponential-backoff decisions (delay doubles
  /// with retry_count, capped) are observable in every ExhaustionInfo
  /// minted from this budget.
  size_t retry_count() const {
    return retry_count_.load(std::memory_order_acquire);
  }
  /// The first exhaustion this budget ever recorded. Unlike the
  /// current record, it survives Rearm(): after any number of resumed
  /// attempts the original trip (kind + decision point) stays
  /// inspectable. kNone until the first trip.
  BudgetKind first_exhausted_kind() const {
    return static_cast<BudgetKind>(
        first_exhausted_kind_.load(std::memory_order_acquire));
  }
  size_t first_exhausted_at() const {
    return first_exhausted_at_.load(std::memory_order_acquire);
  }

  /// Clears the sticky exhaustion record and the step counter so the
  /// same budget instance can drive a resumed call, and increments the
  /// monotonic retry counter. The first-exhaustion record is
  /// preserved. Tracked bytes are kept (live allocations from the
  /// interrupted call may persist); limits, token, and injector are
  /// kept as configured.
  void Rearm() {
    if (exhausted()) {
      retry_count_.fetch_add(1, std::memory_order_acq_rel);
    }
    exhausted_kind_.store(static_cast<uint8_t>(BudgetKind::kNone),
                          std::memory_order_release);
    exhausted_at_.store(0, std::memory_order_release);
    steps_.store(0, std::memory_order_release);
  }

  /// How many decision points between wall-clock reads.
  static constexpr size_t kDeadlineStride = 32;

 private:
  Status Exhaust(BudgetKind kind, size_t at_point);

  std::atomic<size_t> steps_{0};
  std::atomic<size_t> tracked_bytes_{0};
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  size_t max_steps_ = 0;
  size_t max_bytes_ = 0;
  CancelToken cancel_;
  const FaultInjector* injector_ = nullptr;
  /// Sticky first exhaustion: kind (BudgetKind as uint8_t; kNone =
  /// live) and the decision point that tripped it.
  std::atomic<uint8_t> exhausted_kind_{0};
  std::atomic<size_t> exhausted_at_{0};
  /// Preserved across Rearm(): the first exhaustion ever recorded and
  /// the number of rearms since construction.
  std::atomic<uint8_t> first_exhausted_kind_{0};
  std::atomic<size_t> first_exhausted_at_{0};
  std::atomic<size_t> retry_count_{0};
};

// --- Search checkpoints ---------------------------------------------

/// Where an exhausted decider stopped: the disjunct (or round/phase)
/// index it was working on and the next unclaimed rank of that
/// disjunct's partitioned valuation space. A follow-up call with the
/// same inputs accepts the checkpoint and continues from exactly this
/// point; the combined answer is bit-for-bit the uninterrupted one.
struct SearchCheckpoint {
  /// Which decider/phase produced it: "rcdp", "rcqp-ind",
  /// "rcqp-empty", "rcqp-chase", "rcqp-pool", or "chase".
  std::string decider;
  /// Disjunct index (rcdp), tableau index (rcqp-ind), chase round, or
  /// phase-local index.
  size_t disjunct = 0;
  /// Next unclaimed rank unit of the partitioned search space of that
  /// disjunct (rcqp-pool: number of fully judged candidate leaves).
  size_t rank = 0;
  /// Guard against resuming with different inputs; 0 disables the
  /// check. Computed by the decider over the problem shape.
  uint64_t fingerprint = 0;
  /// Decider-specific extra state (e.g. the chase embeds the inner
  /// RCDP checkpoint; the RCQP IND path embeds per-tableau results).
  std::string payload;

  /// Single-line, versioned text form.
  std::string Serialize() const;
  /// Parses Serialize() output; kInvalidArgument on anything else.
  static Result<SearchCheckpoint> Deserialize(std::string_view text);

  bool operator==(const SearchCheckpoint& other) const {
    return decider == other.decider && disjunct == other.disjunct &&
           rank == other.rank && fingerprint == other.fingerprint &&
           payload == other.payload;
  }
};

/// Exhaustion record attached to an unknown verdict.
struct ExhaustionInfo {
  BudgetKind kind = BudgetKind::kNone;
  std::string detail;
  /// How many resumed attempts preceded this exhaustion (the budget's
  /// monotonic Rearm() count). 0 on a first attempt; the
  /// DecisionService uses it to pick the capped exponential backoff
  /// before the next resume.
  size_t retry_count = 0;

  bool exhausted() const { return kind != BudgetKind::kNone; }
  std::string ToString() const;
};

/// Builds an ExhaustionInfo from the status a search bubbled up,
/// preferring the budget's sticky record when one is attached.
ExhaustionInfo ExhaustionFromStatus(const Status& status,
                                    const ExecutionBudget* budget);

/// FNV-1a over a sequence of 64-bit parts; used for checkpoint
/// fingerprints (stable across runs and platforms).
uint64_t CheckpointFingerprint(std::initializer_list<uint64_t> parts);
uint64_t FingerprintString(std::string_view s);

}  // namespace relcomp

#endif  // RELCOMP_UTIL_EXECUTION_CONTROL_H_
