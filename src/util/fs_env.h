#ifndef RELCOMP_UTIL_FS_ENV_H_
#define RELCOMP_UTIL_FS_ENV_H_

#include <dirent.h>
#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

namespace relcomp {

/// The filesystem operations the store issues, for fault addressing.
enum class FsOp {
  kOpen,
  kRead,
  kWrite,
  kFsync,
  kRename,
  kUnlink,
  kFlock,
  kMkdir,
  kOpendir,
};

const char* FsOpToString(FsOp op);

/// What a storage fault does when it fires. Sibling of FaultInjector
/// (decision points) and SocketFaultPlan (wire bytes): the same
/// deterministic, ordinal-addressed discipline, one level down.
enum class StorageFaultKind {
  kNone,
  /// The op fails with EIO without being performed.
  kEio,
  /// The op fails with ENOSPC without being performed.
  kEnospc,
  /// A write() genuinely writes a prefix and returns the short count —
  /// the ENOSPC-mid-line / torn-tail producer. Only write ops match.
  kShortWrite,
  /// fsync() returns EIO without syncing: the kernel admits it may
  /// have lost the data. Only fsync ops match.
  kFsyncFail,
  /// rename() reports success but does nothing — the power-cut where
  /// the metadata update never reached the platter. Only rename ops
  /// match.
  kLostRename,
  /// write() reports full success but writes nothing — the lying disk
  /// that acked from its volatile cache. Only write ops match.
  kLostAppend,
};

const char* StorageFaultKindToString(StorageFaultKind kind);

/// A deterministic storage-fault schedule. The plan is addressed by
/// the ordinal of *matching* operations issued through one FsEnv:
/// `at` fires exactly once, on the at-th match (1-based); `every`
/// fires on every every-th match. A match is any op whose kind the
/// fault applies to (see StorageFaultKind) at a site whose tag starts
/// with `site` (empty = every site). Replaying the same operation
/// sequence against the same plan reproduces the same faults —
/// that is what makes the kill-the-disk sweeps replayable.
struct StorageFaultPlan {
  StorageFaultKind kind = StorageFaultKind::kNone;
  /// Fire once, on the `at`-th matching op (1-based). 0 disables.
  uint64_t at = 0;
  /// Fire on every `every`-th matching op. 0 disables.
  uint64_t every = 0;
  /// Site-tag prefix filter; empty matches every site. Store sites:
  /// "record.<kind>" (tmp write + rename of a record file), "journal"
  /// (the O_APPEND journal), "compact" (journal compaction rewrite),
  /// "dirsync" (directory fsync), "read", "lock", "scan", "mkdir",
  /// "gc" (generation garbage collection), "probe" (health probe).
  std::string site;
  /// For kShortWrite: how many bytes actually land. When 0, half the
  /// requested count (rounded down) lands — always strictly short.
  size_t short_bytes = 0;

  bool active() const {
    return kind != StorageFaultKind::kNone && (at != 0 || every != 0);
  }
  /// Whether a matching op with this 1-based ordinal faults.
  bool Fires(uint64_t ordinal) const {
    if (!active()) return false;
    if (at != 0 && ordinal == at) return true;
    if (every != 0 && ordinal % every == 0) return true;
    return false;
  }
};

/// An injectable filesystem environment. CheckpointStore routes ALL
/// its I/O through one of these, tagging each call with a site so a
/// StorageFaultPlan can hit "the 3rd journal write" or "every record
/// fsync" deterministically. The default environment is a pure
/// passthrough to the real syscalls; tests (and the chaos harness)
/// hand the store an env armed with a plan.
///
/// Each method mirrors its syscall's contract: -1 + errno on failure.
/// Thread safe — one env may serve several stores (a fabric member's
/// shards share the member's "disk").
class FsEnv {
 public:
  FsEnv() = default;
  virtual ~FsEnv() = default;
  FsEnv(const FsEnv&) = delete;
  FsEnv& operator=(const FsEnv&) = delete;

  /// The process-wide passthrough environment (no faults, shared).
  static FsEnv* Default();

  virtual int Open(std::string_view site, const char* path, int flags,
                   mode_t mode);
  virtual ssize_t Read(std::string_view site, int fd, void* buf,
                       size_t count);
  virtual ssize_t Write(std::string_view site, int fd, const void* buf,
                        size_t count);
  virtual int Fsync(std::string_view site, int fd);
  virtual int Rename(std::string_view site, const char* from,
                     const char* to);
  virtual int Unlink(std::string_view site, const char* path);
  virtual int Flock(std::string_view site, int fd, int operation);
  virtual int Mkdir(std::string_view site, const char* path, mode_t mode);
  virtual DIR* Opendir(std::string_view site, const char* path);

  /// Arms (or, with an inactive plan, disarms) the fault schedule and
  /// resets the matching-op ordinal so plans compose per scenario.
  void set_fault_plan(const StorageFaultPlan& plan);
  StorageFaultPlan fault_plan() const;

  /// Total operations issued through this env (faulted or not) — the
  /// sweep bound: an unfaulted run's count is the number of ordinals a
  /// kill-the-disk sweep must visit.
  uint64_t ops_issued() const;
  /// Matching operations seen by the current plan so far.
  uint64_t matches_seen() const;
  /// Faults injected so far (a sweep asserts its fault actually hit).
  uint64_t faults_injected() const;
  /// Site tag of the most recent injected fault, for diagnostics.
  std::string last_fault_site() const;

 private:
  /// Consults the plan for an op of `op` kind at `site`. Returns the
  /// fault to apply (kNone = proceed) and, for short writes, the
  /// prefix length via *short_count.
  StorageFaultKind Consult(FsOp op, std::string_view site, size_t count,
                           size_t* short_count);

  mutable std::mutex mu_;
  StorageFaultPlan plan_;
  uint64_t ops_issued_ = 0;
  uint64_t matches_seen_ = 0;
  uint64_t faults_injected_ = 0;
  std::string last_fault_site_;
};

}  // namespace relcomp

#endif  // RELCOMP_UTIL_FS_ENV_H_
