#ifndef RELCOMP_UTIL_STR_H_
#define RELCOMP_UTIL_STR_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace relcomp {

namespace internal_str {
inline void AppendPieces(std::ostringstream&) {}

template <typename T, typename... Rest>
void AppendPieces(std::ostringstream& os, const T& first, const Rest&... rest) {
  os << first;
  AppendPieces(os, rest...);
}
}  // namespace internal_str

/// Concatenates streamable pieces into a string, e.g.
/// StrCat("arity mismatch: got ", n, ", want ", m).
template <typename... Pieces>
std::string StrCat(const Pieces&... pieces) {
  std::ostringstream os;
  internal_str::AppendPieces(os, pieces...);
  return os.str();
}

/// Joins the elements of `items` with `sep`, using operator<< on each.
template <typename Container>
std::string StrJoin(const Container& items, std::string_view sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& item : items) {
    if (!first) os << sep;
    first = false;
    os << item;
  }
  return os.str();
}

/// Splits `input` on `delim`, trimming ASCII whitespace from each piece.
/// Empty pieces are kept (so "a,,b" yields {"a", "", "b"}).
std::vector<std::string> SplitAndTrim(std::string_view input, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// True iff `s` parses entirely as a signed 64-bit decimal integer;
/// stores the value in *out on success.
bool ParseInt64(std::string_view s, int64_t* out);

}  // namespace relcomp

#endif  // RELCOMP_UTIL_STR_H_
