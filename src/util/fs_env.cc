#include "util/fs_env.h"

#include <fcntl.h>
#include <stdio.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>

namespace relcomp {
namespace {

/// Whether a fault kind can apply to this op kind at all. The
/// kind-specific faults (short write, fsync-fail, lost-rename,
/// lost-append) never match other ops — a plan naming one of them
/// counts only the ops it could hit, so "at = 3" means "the 3rd
/// journal write", not "the 3rd syscall that happened to be one".
bool KindMatchesOp(StorageFaultKind kind, FsOp op) {
  switch (kind) {
    case StorageFaultKind::kNone:
      return false;
    case StorageFaultKind::kEio:
    case StorageFaultKind::kEnospc:
      return true;
    case StorageFaultKind::kShortWrite:
    case StorageFaultKind::kLostAppend:
      return op == FsOp::kWrite;
    case StorageFaultKind::kFsyncFail:
      return op == FsOp::kFsync;
    case StorageFaultKind::kLostRename:
      return op == FsOp::kRename;
  }
  return false;
}

bool SiteMatches(std::string_view filter, std::string_view site) {
  return filter.empty() ||
         (site.size() >= filter.size() &&
          site.substr(0, filter.size()) == filter);
}

}  // namespace

const char* FsOpToString(FsOp op) {
  switch (op) {
    case FsOp::kOpen: return "open";
    case FsOp::kRead: return "read";
    case FsOp::kWrite: return "write";
    case FsOp::kFsync: return "fsync";
    case FsOp::kRename: return "rename";
    case FsOp::kUnlink: return "unlink";
    case FsOp::kFlock: return "flock";
    case FsOp::kMkdir: return "mkdir";
    case FsOp::kOpendir: return "opendir";
  }
  return "?";
}

const char* StorageFaultKindToString(StorageFaultKind kind) {
  switch (kind) {
    case StorageFaultKind::kNone: return "none";
    case StorageFaultKind::kEio: return "eio";
    case StorageFaultKind::kEnospc: return "enospc";
    case StorageFaultKind::kShortWrite: return "short-write";
    case StorageFaultKind::kFsyncFail: return "fsync-fail";
    case StorageFaultKind::kLostRename: return "lost-rename";
    case StorageFaultKind::kLostAppend: return "lost-append";
  }
  return "?";
}

FsEnv* FsEnv::Default() {
  static FsEnv* env = new FsEnv();
  return env;
}

StorageFaultKind FsEnv::Consult(FsOp op, std::string_view site,
                                size_t count, size_t* short_count) {
  std::lock_guard<std::mutex> lock(mu_);
  ++ops_issued_;
  if (!plan_.active() || !KindMatchesOp(plan_.kind, op) ||
      !SiteMatches(plan_.site, site)) {
    return StorageFaultKind::kNone;
  }
  ++matches_seen_;
  if (!plan_.Fires(matches_seen_)) return StorageFaultKind::kNone;
  ++faults_injected_;
  last_fault_site_ = std::string(site);
  if (plan_.kind == StorageFaultKind::kShortWrite && short_count != nullptr) {
    *short_count =
        plan_.short_bytes != 0 && plan_.short_bytes < count
            ? plan_.short_bytes
            : count / 2;
  }
  return plan_.kind;
}

int FsEnv::Open(std::string_view site, const char* path, int flags,
                mode_t mode) {
  switch (Consult(FsOp::kOpen, site, 0, nullptr)) {
    case StorageFaultKind::kEio: errno = EIO; return -1;
    case StorageFaultKind::kEnospc: errno = ENOSPC; return -1;
    default: break;
  }
  return ::open(path, flags, mode);
}

ssize_t FsEnv::Read(std::string_view site, int fd, void* buf, size_t count) {
  switch (Consult(FsOp::kRead, site, count, nullptr)) {
    case StorageFaultKind::kEio: errno = EIO; return -1;
    case StorageFaultKind::kEnospc: errno = ENOSPC; return -1;
    default: break;
  }
  return ::read(fd, buf, count);
}

ssize_t FsEnv::Write(std::string_view site, int fd, const void* buf,
                     size_t count) {
  size_t short_count = 0;
  switch (Consult(FsOp::kWrite, site, count, &short_count)) {
    case StorageFaultKind::kEio: errno = EIO; return -1;
    case StorageFaultKind::kEnospc: errno = ENOSPC; return -1;
    case StorageFaultKind::kShortWrite: {
      // The prefix genuinely lands — that is the torn tail the reopen
      // scan must survive. ENOSPC explains why the rest never came.
      ssize_t n = ::write(fd, buf, short_count);
      if (n < 0) return n;
      errno = ENOSPC;
      return n;
    }
    case StorageFaultKind::kLostAppend:
      return static_cast<ssize_t>(count);
    default: break;
  }
  return ::write(fd, buf, count);
}

int FsEnv::Fsync(std::string_view site, int fd) {
  switch (Consult(FsOp::kFsync, site, 0, nullptr)) {
    case StorageFaultKind::kEio:
    case StorageFaultKind::kFsyncFail: errno = EIO; return -1;
    case StorageFaultKind::kEnospc: errno = ENOSPC; return -1;
    default: break;
  }
  return ::fsync(fd);
}

int FsEnv::Rename(std::string_view site, const char* from, const char* to) {
  switch (Consult(FsOp::kRename, site, 0, nullptr)) {
    case StorageFaultKind::kEio: errno = EIO; return -1;
    case StorageFaultKind::kEnospc: errno = ENOSPC; return -1;
    case StorageFaultKind::kLostRename: return 0;
    default: break;
  }
  return ::rename(from, to);
}

int FsEnv::Unlink(std::string_view site, const char* path) {
  switch (Consult(FsOp::kUnlink, site, 0, nullptr)) {
    case StorageFaultKind::kEio: errno = EIO; return -1;
    case StorageFaultKind::kEnospc: errno = ENOSPC; return -1;
    default: break;
  }
  return ::unlink(path);
}

int FsEnv::Flock(std::string_view site, int fd, int operation) {
  switch (Consult(FsOp::kFlock, site, 0, nullptr)) {
    case StorageFaultKind::kEio: errno = EIO; return -1;
    case StorageFaultKind::kEnospc: errno = ENOSPC; return -1;
    default: break;
  }
  return ::flock(fd, operation);
}

int FsEnv::Mkdir(std::string_view site, const char* path, mode_t mode) {
  switch (Consult(FsOp::kMkdir, site, 0, nullptr)) {
    case StorageFaultKind::kEio: errno = EIO; return -1;
    case StorageFaultKind::kEnospc: errno = ENOSPC; return -1;
    default: break;
  }
  return ::mkdir(path, mode);
}

DIR* FsEnv::Opendir(std::string_view site, const char* path) {
  switch (Consult(FsOp::kOpendir, site, 0, nullptr)) {
    case StorageFaultKind::kEio: errno = EIO; return nullptr;
    case StorageFaultKind::kEnospc: errno = ENOSPC; return nullptr;
    default: break;
  }
  return ::opendir(path);
}

void FsEnv::set_fault_plan(const StorageFaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = plan;
  matches_seen_ = 0;
}

StorageFaultPlan FsEnv::fault_plan() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plan_;
}

uint64_t FsEnv::ops_issued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_issued_;
}

uint64_t FsEnv::matches_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return matches_seen_;
}

uint64_t FsEnv::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_injected_;
}

std::string FsEnv::last_fault_site() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_fault_site_;
}

}  // namespace relcomp
