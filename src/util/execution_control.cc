#include "util/execution_control.h"

#include <charconv>
#include <cstdio>

#include "util/str.h"

namespace relcomp {

const char* BudgetKindToString(BudgetKind kind) {
  switch (kind) {
    case BudgetKind::kNone: return "none";
    case BudgetKind::kDeadline: return "deadline";
    case BudgetKind::kSteps: return "steps";
    case BudgetKind::kMemory: return "memory";
    case BudgetKind::kCancel: return "cancel";
    case BudgetKind::kRounds: return "rounds";
    case BudgetKind::kCrash: return "crash";
  }
  return "unknown";
}

namespace {

Status StatusForKind(BudgetKind kind, size_t at_point) {
  switch (kind) {
    case BudgetKind::kCancel:
      return Status::Cancelled(
          StrCat("execution cancelled by caller at decision point ",
                 at_point));
    case BudgetKind::kDeadline:
      return Status::ResourceExhausted(
          StrCat("wall-clock deadline exceeded at decision point ",
                 at_point));
    case BudgetKind::kSteps:
      return Status::ResourceExhausted(
          StrCat("decision-step budget exhausted at decision point ",
                 at_point));
    case BudgetKind::kMemory:
      return Status::ResourceExhausted(
          StrCat("tracked-memory budget exhausted at decision point ",
                 at_point));
    case BudgetKind::kRounds:
      return Status::ResourceExhausted(
          StrCat("round budget exhausted at round ", at_point));
    case BudgetKind::kCrash:
      return Status::ResourceExhausted(
          StrCat("simulated crash (persist-then-abort) injected at "
                 "decision point ",
                 at_point));
    case BudgetKind::kNone:
      break;
  }
  return Status::OK();
}

}  // namespace

Status ExecutionBudget::Exhaust(BudgetKind kind, size_t at_point) {
  // First trip wins; later trips (possibly from other workers) adopt
  // the recorded kind so every caller unwinds with the same story.
  uint8_t expected = static_cast<uint8_t>(BudgetKind::kNone);
  if (exhausted_kind_.compare_exchange_strong(
          expected, static_cast<uint8_t>(kind), std::memory_order_acq_rel)) {
    exhausted_at_.store(at_point, std::memory_order_release);
    // The first exhaustion ever survives Rearm(): record it once.
    uint8_t first = static_cast<uint8_t>(BudgetKind::kNone);
    if (first_exhausted_kind_.compare_exchange_strong(
            first, static_cast<uint8_t>(kind), std::memory_order_acq_rel)) {
      first_exhausted_at_.store(at_point, std::memory_order_release);
    }
    return StatusForKind(kind, at_point);
  }
  return exhaustion_status();
}

Status ExecutionBudget::OnDecisionPoint() {
  uint8_t k = exhausted_kind_.load(std::memory_order_acquire);
  if (k != static_cast<uint8_t>(BudgetKind::kNone)) {
    return StatusForKind(static_cast<BudgetKind>(k),
                         exhausted_at_.load(std::memory_order_acquire));
  }
  const size_t point = steps_.fetch_add(1, std::memory_order_relaxed);
  if (injector_ != nullptr) {
    BudgetKind injected = injector_->Observe(point);
    if (injected != BudgetKind::kNone) return Exhaust(injected, point);
  }
  if (cancel_.cancel_requested()) {
    return Exhaust(BudgetKind::kCancel, point);
  }
  if (max_steps_ > 0 && point + 1 > max_steps_) {
    return Exhaust(BudgetKind::kSteps, point);
  }
  if (max_bytes_ > 0 &&
      tracked_bytes_.load(std::memory_order_relaxed) > max_bytes_) {
    return Exhaust(BudgetKind::kMemory, point);
  }
  if (deadline_.has_value() && point % kDeadlineStride == 0 &&
      std::chrono::steady_clock::now() > *deadline_) {
    return Exhaust(BudgetKind::kDeadline, point);
  }
  return Status::OK();
}

Status ExecutionBudget::exhaustion_status() const {
  BudgetKind kind = exhausted_kind();
  if (kind == BudgetKind::kNone) return Status::OK();
  return StatusForKind(kind, exhausted_at_.load(std::memory_order_acquire));
}

// --- SearchCheckpoint ------------------------------------------------

namespace {
constexpr char kCheckpointMagic[] = "relcomp-ckpt/1";
}  // namespace

std::string SearchCheckpoint::Serialize() const {
  char fp[17];
  std::snprintf(fp, sizeof(fp), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return StrCat(kCheckpointMagic, " ", decider, " ", disjunct, " ", rank,
                " ", fp, " ", payload.size(), ":", payload);
}

Result<SearchCheckpoint> SearchCheckpoint::Deserialize(
    std::string_view text) {
  const std::string_view full = text;
  // Every rejection names the defect and the byte offset where parsing
  // stopped, so a corrupted store file is diagnosable from the error
  // alone.
  auto fail = [&](std::string_view why) {
    return Status::InvalidArgument(
        StrCat("malformed checkpoint (", std::string(why), " at byte ",
               full.size() - text.size(), " of ", full.size(), "): ",
               std::string(full.substr(0, 64))));
  };
  auto take_field = [&]() -> std::optional<std::string_view> {
    size_t sp = text.find(' ');
    if (sp == std::string_view::npos) return std::nullopt;
    std::string_view field = text.substr(0, sp);
    text.remove_prefix(sp + 1);
    return field;
  };
  auto magic = take_field();
  if (!magic.has_value() || *magic != kCheckpointMagic) {
    return fail("bad magic");
  }
  auto decider = take_field();
  if (!decider.has_value() || decider->empty()) return fail("no decider");
  SearchCheckpoint ckpt;
  ckpt.decider = std::string(*decider);
  auto parse_sz = [&](std::string_view field, size_t* out) {
    auto [ptr, ec] =
        std::from_chars(field.data(), field.data() + field.size(), *out);
    return ec == std::errc() && ptr == field.data() + field.size();
  };
  auto disjunct = take_field();
  if (!disjunct.has_value() || !parse_sz(*disjunct, &ckpt.disjunct)) {
    return fail("bad disjunct");
  }
  auto rank = take_field();
  if (!rank.has_value() || !parse_sz(*rank, &ckpt.rank)) {
    return fail("bad rank");
  }
  auto fp = take_field();
  if (!fp.has_value() || fp->size() != 16) return fail("bad fingerprint");
  {
    auto [ptr, ec] = std::from_chars(fp->data(), fp->data() + fp->size(),
                                     ckpt.fingerprint, 16);
    if (ec != std::errc() || ptr != fp->data() + fp->size()) {
      return fail("bad fingerprint");
    }
  }
  size_t colon = text.find(':');
  if (colon == std::string_view::npos) return fail("no payload length");
  size_t payload_len = 0;
  if (!parse_sz(text.substr(0, colon), &payload_len)) {
    return fail("bad payload length");
  }
  text.remove_prefix(colon + 1);
  if (text.size() != payload_len) return fail("payload length mismatch");
  ckpt.payload = std::string(text);
  return ckpt;
}

std::string ExhaustionInfo::ToString() const {
  if (!exhausted()) return "none";
  std::string out = detail.empty()
                        ? std::string(BudgetKindToString(kind))
                        : StrCat(BudgetKindToString(kind), ": ", detail);
  if (retry_count > 0) out += StrCat(" [retry ", retry_count, "]");
  return out;
}

ExhaustionInfo ExhaustionFromStatus(const Status& status,
                                    const ExecutionBudget* budget) {
  ExhaustionInfo info;
  if (budget != nullptr) info.retry_count = budget->retry_count();
  if (budget != nullptr && budget->exhausted()) {
    info.kind = budget->exhausted_kind();
    info.detail = budget->exhaustion_status().message();
    return info;
  }
  if (status.ok()) return info;
  info.kind = status.code() == StatusCode::kCancelled ? BudgetKind::kCancel
                                                      : BudgetKind::kSteps;
  info.detail = status.message();
  return info;
}

uint64_t FingerprintString(std::string_view s) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

uint64_t CheckpointFingerprint(std::initializer_list<uint64_t> parts) {
  uint64_t h = 1469598103934665603ull;
  for (uint64_t part : parts) {
    for (int i = 0; i < 8; ++i) {
      h ^= (part >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

}  // namespace relcomp
