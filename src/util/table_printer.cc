#include "util/table_printer.h"

#include <algorithm>
#include <sstream>

namespace relcomp {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

namespace {

void PrintSeparator(std::ostream& os, const std::vector<size_t>& widths) {
  os << '+';
  for (size_t w : widths) {
    for (size_t i = 0; i < w + 2; ++i) os << '-';
    os << '+';
  }
  os << '\n';
}

void PrintRow(std::ostream& os, const std::vector<std::string>& cells,
              const std::vector<size_t>& widths) {
  os << '|';
  for (size_t c = 0; c < widths.size(); ++c) {
    const std::string& cell = c < cells.size() ? cells[c] : std::string();
    os << ' ' << cell;
    for (size_t i = cell.size(); i < widths[c] + 1; ++i) os << ' ';
    os << '|';
  }
  os << '\n';
}

}  // namespace

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  PrintSeparator(os, widths);
  PrintRow(os, headers_, widths);
  PrintSeparator(os, widths);
  for (const auto& row : rows_) PrintRow(os, row, widths);
  PrintSeparator(os, widths);
}

std::string TablePrinter::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

}  // namespace relcomp
