#ifndef RELCOMP_UTIL_ARENA_H_
#define RELCOMP_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace relcomp {

class ExecutionBudget;

/// Bump allocator for one search: overlay deltas, binding frames, id
/// rows, and chase scratch live here and die together. Allocation is a
/// pointer bump inside the current block; Reset() rewinds every block
/// without returning memory to the OS, so a disjunct retry reuses the
/// high-water footprint of its predecessor with zero allocator traffic.
///
/// Block memory is charged to an ExecutionBudget (if attached) when a
/// block is first carved from the heap and released when the arena is
/// destroyed — Reset() keeps both the blocks and the charge, mirroring
/// the fact that the process still holds the pages. Memory-cap trips
/// therefore bound the arena's true footprint, not its live bytes.
///
/// Not thread safe: one arena per worker.
class Arena {
 public:
  static constexpr size_t kDefaultInitialBlockBytes = 16 * 1024;

  explicit Arena(size_t initial_block_bytes = kDefaultInitialBlockBytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Attach a budget; future block allocations call TrackBytes on it.
  /// Must be set before the first allocation to charge everything.
  void set_memory_tracker(ExecutionBudget* budget) { tracker_ = budget; }

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  /// Zero-byte requests return a unique non-null pointer.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  /// Typed array of `n` default-constructible-free elements; the caller
  /// is responsible for initialization (trivial T only).
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible<T>::value,
                  "arena memory is never destructed");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewinds every block. Blocks and their budget charge are retained.
  /// In debug builds the reclaimed bytes are poisoned (0xDD) so that
  /// reuse-after-reset reads trip assertions or sanitizers loudly.
  void Reset();

  /// Live bytes handed out since the last Reset (including alignment
  /// padding).
  size_t used_bytes() const { return used_; }

  /// Peak of used_bytes() across the arena's lifetime.
  size_t high_water_bytes() const { return high_water_; }

  /// Total heap bytes owned by blocks (the amount charged to the
  /// budget).
  size_t allocated_bytes() const { return capacity_; }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  /// Makes block `blocks_[block_]` (growing the chain if needed) able
  /// to hold `bytes` and positions offset_ at its start.
  void NextBlock(size_t bytes);

  std::vector<Block> blocks_;
  size_t block_ = 0;    // index of the block being bumped
  size_t offset_ = 0;   // bump position inside blocks_[block_]
  size_t used_ = 0;
  size_t high_water_ = 0;
  size_t capacity_ = 0;
  size_t next_block_bytes_;
  ExecutionBudget* tracker_ = nullptr;
};

}  // namespace relcomp

#endif  // RELCOMP_UTIL_ARENA_H_
