#include "util/arena.h"

#include <cassert>
#include <cstring>

#include "util/execution_control.h"

namespace relcomp {

Arena::Arena(size_t initial_block_bytes)
    : next_block_bytes_(initial_block_bytes == 0 ? kDefaultInitialBlockBytes
                                                 : initial_block_bytes) {}

Arena::~Arena() {
  if (tracker_ != nullptr && capacity_ > 0) tracker_->ReleaseBytes(capacity_);
}

void Arena::NextBlock(size_t bytes) {
  // Reuse retained blocks first (after a Reset); allocate only when the
  // chain is exhausted or the retained block is too small for an
  // oversized request.
  while (block_ + 1 < blocks_.size()) {
    ++block_;
    offset_ = 0;
    if (blocks_[block_].size >= bytes) return;
  }
  size_t size = next_block_bytes_;
  while (size < bytes) size *= 2;
  // Geometric growth keeps block counts logarithmic in footprint while
  // a small first block keeps per-worker charges gentle under tight
  // memory caps.
  next_block_bytes_ = size * 2;
  Block b;
  b.data.reset(new char[size]);
  b.size = size;
  blocks_.push_back(std::move(b));
  block_ = blocks_.size() - 1;
  offset_ = 0;
  capacity_ += size;
  if (tracker_ != nullptr) tracker_->TrackBytes(size);
}

void* Arena::Allocate(size_t bytes, size_t align) {
  assert(align != 0 && (align & (align - 1)) == 0);
  if (bytes == 0) bytes = 1;
  if (blocks_.empty()) NextBlock(bytes + align);
  // Align the absolute address: block bases from new[] only guarantee
  // alignof(max_align_t), so over-aligned requests must pad from the
  // real pointer, not the block-relative offset.
  auto base = reinterpret_cast<uintptr_t>(blocks_[block_].data.get());
  size_t aligned = ((base + offset_ + align - 1) & ~(align - 1)) - base;
  if (aligned + bytes > blocks_[block_].size) {
    NextBlock(bytes + align);
    base = reinterpret_cast<uintptr_t>(blocks_[block_].data.get());
    aligned = ((base + offset_ + align - 1) & ~(align - 1)) - base;
  }
  char* out = blocks_[block_].data.get() + aligned;
  used_ += (aligned - offset_) + bytes;
  offset_ = aligned + bytes;
  if (used_ > high_water_) high_water_ = used_;
  return out;
}

void Arena::Reset() {
#ifndef NDEBUG
  // Poison reclaimed bytes so stale pointers read garbage, not the
  // previous search's data.
  for (size_t i = 0; i <= block_ && i < blocks_.size(); ++i) {
    size_t filled = (i == block_) ? offset_ : blocks_[i].size;
    std::memset(blocks_[i].data.get(), 0xDD, filled);
  }
#endif
  block_ = 0;
  offset_ = 0;
  used_ = 0;
}

}  // namespace relcomp
