#ifndef RELCOMP_UTIL_TABLE_PRINTER_H_
#define RELCOMP_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace relcomp {

/// Accumulates rows of strings and prints them as an aligned ASCII table.
/// Used by the benchmark harnesses to regenerate the paper's Tables I/II
/// with measured columns appended.
class TablePrinter {
 public:
  /// Creates a printer with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; must have the same number of cells as headers.
  void AddRow(std::vector<std::string> row);

  /// Writes the aligned table, e.g.
  ///   +------+-----+
  ///   | a    | b   |
  ///   +------+-----+
  ///   | x    | yyy |
  ///   +------+-----+
  void Print(std::ostream& os) const;

  /// Convenience: renders to a string.
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace relcomp

#endif  // RELCOMP_UTIL_TABLE_PRINTER_H_
