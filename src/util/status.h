#ifndef RELCOMP_UTIL_STATUS_H_
#define RELCOMP_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace relcomp {

/// Error categories used across the library. Following the Arrow/RocksDB
/// idiom, fallible public APIs return Status or Result<T> rather than
/// throwing exceptions.
enum class StatusCode {
  kOk = 0,
  /// A caller-supplied argument is malformed (unknown relation, arity
  /// mismatch, unsafe query, ...).
  kInvalidArgument,
  /// The requested entity does not exist.
  kNotFound,
  /// An algorithm exceeded its configured resource budget (e.g. the
  /// RCQP valuation-set search or an undecidable-cell semi-decision).
  kResourceExhausted,
  /// The input is valid but outside the supported fragment (e.g. asking
  /// the RCDP decider to decide an undecidable language pair exactly).
  kUnsupported,
  /// The operation was cancelled cooperatively (e.g. a parallel search
  /// worker observing a stop request after another worker already won).
  kCancelled,
  /// The system is not in the state the operation requires (e.g. a
  /// second process trying to acquire an already-held store lock).
  kFailedPrecondition,
  /// An internal invariant was violated; indicates a library bug.
  kInternal,
  /// A transient transport-level failure (connection refused or reset,
  /// I/O deadline, corrupted frame, backend restarting). Safe to retry
  /// with backoff — the network client does exactly that, keyed by
  /// idempotency keys so a retry never double-submits.
  kUnavailable,
  /// A caller-supplied wall-clock deadline elapsed before the operation
  /// could complete (every endpoint down past the deadline, a job not
  /// terminal within the await limit). Unlike kUnavailable this is a
  /// terminal answer for the caller's attempt: retrying immediately
  /// cannot succeed within the same deadline.
  kDeadlineExceeded,
  /// The peer failed transport authentication (missing or invalid frame
  /// tag against the shared fabric key, or an authenticated frame sent
  /// to a keyless endpoint). Terminal for the caller: retrying with the
  /// same credentials cannot succeed.
  kPermissionDenied,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error result. Exactly one of value/status-error is held.
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return some_value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status: `return Status::InvalidArgument(...)`.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  /// Precondition: ok(). Alias mirroring StatusOr.
  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;  // OK iff value_ holds.
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression, Arrow-style.
#define RELCOMP_RETURN_NOT_OK(expr)               \
  do {                                            \
    ::relcomp::Status _st = (expr);               \
    if (!_st.ok()) return _st;                    \
  } while (false)

/// Assigns the value of a Result expression or propagates its error.
#define RELCOMP_ASSIGN_OR_RETURN(lhs, expr)       \
  auto RELCOMP_CONCAT_(_res_, __LINE__) = (expr); \
  if (!RELCOMP_CONCAT_(_res_, __LINE__).ok())     \
    return RELCOMP_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(RELCOMP_CONCAT_(_res_, __LINE__)).value()

#define RELCOMP_CONCAT_IMPL_(a, b) a##b
#define RELCOMP_CONCAT_(a, b) RELCOMP_CONCAT_IMPL_(a, b)

}  // namespace relcomp

#endif  // RELCOMP_UTIL_STATUS_H_
