// BLAKE2s (RFC 7693), self-contained: the fabric's shared-secret frame
// authentication must not pull in an external crypto dependency. Only
// the sequential, single-depth mode is implemented — exactly the RFC's
// keyed-hash configuration.

#include "util/blake2s.h"

#include <cstdint>
#include <cstring>

namespace relcomp {
namespace {

constexpr uint32_t kIv[8] = {
    0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
    0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u,
};

constexpr uint8_t kSigma[10][16] = {
    {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
    {14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3},
    {11, 8, 12, 0, 5, 2, 15, 13, 10, 14, 3, 6, 7, 1, 9, 4},
    {7, 9, 3, 1, 13, 12, 11, 14, 2, 6, 5, 10, 4, 0, 15, 8},
    {9, 0, 5, 7, 2, 4, 10, 15, 14, 1, 11, 12, 6, 8, 3, 13},
    {2, 12, 6, 10, 0, 11, 8, 3, 4, 13, 7, 5, 15, 14, 1, 9},
    {12, 5, 1, 15, 14, 13, 4, 10, 0, 7, 6, 3, 9, 2, 8, 11},
    {13, 11, 7, 14, 12, 1, 3, 9, 5, 0, 15, 4, 8, 6, 2, 10},
    {6, 15, 14, 9, 11, 3, 0, 8, 12, 2, 13, 7, 1, 4, 10, 5},
    {10, 2, 8, 4, 7, 6, 1, 5, 15, 11, 9, 14, 3, 12, 13, 0},
};

inline uint32_t RotR(uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

inline uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

struct Blake2sState {
  uint32_t h[8];
  uint64_t t = 0;      // bytes compressed so far
  uint8_t buf[64];     // pending block
  size_t buf_len = 0;
  size_t out_len;

  Blake2sState(size_t digest_len, size_t key_len) : out_len(digest_len) {
    for (int i = 0; i < 8; ++i) h[i] = kIv[i];
    // Parameter block word 0: digest_length | key_length<<8 |
    // fanout(1)<<16 | depth(1)<<24. All other parameter words are zero
    // in sequential mode, so only h[0] is perturbed.
    h[0] ^= static_cast<uint32_t>(digest_len) |
            (static_cast<uint32_t>(key_len) << 8) | (1u << 16) | (1u << 24);
  }

  void Compress(const uint8_t* block, bool last) {
    uint32_t m[16];
    for (int i = 0; i < 16; ++i) m[i] = LoadLe32(block + 4 * i);
    uint32_t v[16];
    for (int i = 0; i < 8; ++i) v[i] = h[i];
    for (int i = 0; i < 8; ++i) v[8 + i] = kIv[i];
    v[12] ^= static_cast<uint32_t>(t);
    v[13] ^= static_cast<uint32_t>(t >> 32);
    if (last) v[14] = ~v[14];

    auto g = [&](int a, int b, int c, int d, uint32_t x, uint32_t y) {
      v[a] = v[a] + v[b] + x;
      v[d] = RotR(v[d] ^ v[a], 16);
      v[c] = v[c] + v[d];
      v[b] = RotR(v[b] ^ v[c], 12);
      v[a] = v[a] + v[b] + y;
      v[d] = RotR(v[d] ^ v[a], 8);
      v[c] = v[c] + v[d];
      v[b] = RotR(v[b] ^ v[c], 7);
    };
    for (int round = 0; round < 10; ++round) {
      const uint8_t* s = kSigma[round];
      g(0, 4, 8, 12, m[s[0]], m[s[1]]);
      g(1, 5, 9, 13, m[s[2]], m[s[3]]);
      g(2, 6, 10, 14, m[s[4]], m[s[5]]);
      g(3, 7, 11, 15, m[s[6]], m[s[7]]);
      g(0, 5, 10, 15, m[s[8]], m[s[9]]);
      g(1, 6, 11, 12, m[s[10]], m[s[11]]);
      g(2, 7, 8, 13, m[s[12]], m[s[13]]);
      g(3, 4, 9, 14, m[s[14]], m[s[15]]);
    }
    for (int i = 0; i < 8; ++i) h[i] ^= v[i] ^ v[8 + i];
  }

  void Update(const uint8_t* data, size_t len) {
    while (len > 0) {
      if (buf_len == 64) {
        // A full buffered block compresses only once MORE input
        // arrives: the final block must be flagged, and we cannot know
        // a block is final until we see bytes past it.
        t += 64;
        Compress(buf, /*last=*/false);
        buf_len = 0;
      }
      const size_t take = len < 64 - buf_len ? len : 64 - buf_len;
      std::memcpy(buf + buf_len, data, take);
      buf_len += take;
      data += take;
      len -= take;
    }
  }

  std::string Final() {
    t += buf_len;
    std::memset(buf + buf_len, 0, 64 - buf_len);
    Compress(buf, /*last=*/true);
    std::string out(out_len, '\0');
    for (size_t i = 0; i < out_len; ++i) {
      out[i] = static_cast<char>((h[i / 4] >> (8 * (i % 4))) & 0xff);
    }
    return out;
  }
};

std::string Blake2s(std::string_view key, std::string_view data,
                    size_t out_len) {
  Blake2sState state(out_len, key.size());
  if (!key.empty()) {
    // Keyed mode: the key, zero-padded to a full block, is prepended as
    // the first input block (RFC 7693 §2.9).
    uint8_t key_block[64] = {0};
    std::memcpy(key_block, key.data(), key.size());
    state.Update(key_block, 64);
  }
  state.Update(reinterpret_cast<const uint8_t*>(data.data()), data.size());
  return state.Final();
}

}  // namespace

std::string Blake2sMac(std::string_view key, std::string_view data,
                       size_t out_len) {
  if (out_len < 1) out_len = 1;
  if (out_len > 32) out_len = 32;
  if (key.size() > 32) {
    // BLAKE2s caps keys at 32 bytes; longer operator-supplied keys are
    // reduced by the unkeyed hash first, HMAC-style.
    const std::string reduced = Blake2s("", key, 32);
    return Blake2s(reduced, data, out_len);
  }
  return Blake2s(key, data, out_len);
}

bool ConstantTimeEqual(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  unsigned char acc = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc = static_cast<unsigned char>(
        acc | (static_cast<unsigned char>(a[i]) ^
               static_cast<unsigned char>(b[i])));
  }
  return acc == 0;
}

}  // namespace relcomp
