#include "util/str.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace relcomp {

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> SplitAndTrim(std::string_view input, char delim) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    std::string_view piece = (pos == std::string_view::npos)
                                 ? input.substr(start)
                                 : input.substr(start, pos - start);
    pieces.emplace_back(TrimWhitespace(piece));
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return pieces;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int64_t>(value);
  return true;
}

}  // namespace relcomp
