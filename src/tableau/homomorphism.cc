#include "tableau/homomorphism.h"

#include "eval/conjunctive_eval.h"
#include "util/str.h"

namespace relcomp {

Status ForEachHomomorphism(const TableauQuery& tableau,
                           const DatabaseOverlay& db,
                           const std::function<bool(const Bindings&)>& fn) {
  if (!tableau.satisfiable()) return Status::OK();
  // The matcher on the reconstructed CQ enumerates exactly the
  // homomorphisms: rows are matched against db and disequalities are
  // the CQ's != atoms.
  ConjunctiveQuery q = tableau.ToConjunctive("hom");
  return ForEachMatch(q, db, ConjunctiveEvalOptions(), fn);
}

Status ForEachHomomorphism(const TableauQuery& tableau, const Database& db,
                           const std::function<bool(const Bindings&)>& fn) {
  DatabaseOverlay view(&db);
  return ForEachHomomorphism(tableau, view, fn);
}

Result<std::optional<Bindings>> FindHomomorphism(const TableauQuery& tableau,
                                                 const DatabaseOverlay& db) {
  std::optional<Bindings> found;
  RELCOMP_RETURN_NOT_OK(
      ForEachHomomorphism(tableau, db, [&](const Bindings& b) {
        found = b;
        return false;  // stop at the first homomorphism
      }));
  return found;
}

Result<std::optional<Bindings>> FindHomomorphism(const TableauQuery& tableau,
                                                 const Database& db) {
  DatabaseOverlay view(&db);
  return FindHomomorphism(tableau, view);
}

Status FreezeTableau(const TableauQuery& tableau, Database* out,
                     Bindings* frozen) {
  // Canonical-instance freezing treats every variable as ranging over
  // the infinite domain (the classical Chandra-Merlin setting); each
  // variable becomes a distinct fresh string constant.
  for (const std::string& v : tableau.variables()) {
    frozen->Set(v, Value::Str(StrCat("_frz$", v)));
  }
  return tableau.InstantiateInto(*frozen, out);
}

}  // namespace relcomp
