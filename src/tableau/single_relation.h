#ifndef RELCOMP_TABLEAU_SINGLE_RELATION_H_
#define RELCOMP_TABLEAU_SINGLE_RELATION_H_

#include <memory>
#include <string>

#include "query/conjunctive_query.h"
#include "query/union_query.h"
#include "relational/database.h"
#include "util/status.h"

namespace relcomp {

/// Lemma 3.2 of the paper: every multi-relation schema R = (R1,...,Rn)
/// can be packed into a single wide relation R such that a linear-time
/// database transform f_D and query transform f_Q satisfy
/// Q(D) = f_Q(Q)(f_D(D)) for every CQ Q and instance D.
///
/// Our packing: the wide relation `wide_name` has one column per
/// attribute of the widest source relation, padded with a reserved
/// constant, plus a leading tag column holding the source relation's
/// name. Each atom Rj(x...) becomes Wide("Rj", x..., pad...).
class SingleRelationEncoding {
 public:
  /// Builds the encoding for `source`. `wide_name` must not collide
  /// with an existing relation.
  static Result<SingleRelationEncoding> Create(
      std::shared_ptr<const Schema> source,
      const std::string& wide_name = "WideR");

  /// The one-relation target schema.
  const std::shared_ptr<const Schema>& wide_schema() const {
    return wide_schema_;
  }

  /// f_D: packs an instance of the source schema.
  Result<Database> TransformDatabase(const Database& db) const;

  /// f_Q: rewrites a CQ over the source schema.
  Result<ConjunctiveQuery> TransformQuery(const ConjunctiveQuery& q) const;

  /// f_Q lifted to UCQ.
  Result<UnionQuery> TransformQuery(const UnionQuery& q) const;

  /// The reserved padding constant.
  static Value PadValue() { return Value::Str("_pad"); }

 private:
  SingleRelationEncoding() = default;

  std::shared_ptr<const Schema> source_;
  std::shared_ptr<const Schema> wide_schema_;
  std::string wide_name_;
  size_t payload_arity_ = 0;  // widest source arity
};

}  // namespace relcomp

#endif  // RELCOMP_TABLEAU_SINGLE_RELATION_H_
