#include "tableau/tableau.h"

#include <algorithm>

#include "util/str.h"

namespace relcomp {

std::string TableauRow::ToString() const {
  std::string out = relation;
  out.push_back('(');
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += ", ";
    out += terms[i].ToString();
  }
  out.push_back(')');
  return out;
}

namespace {

/// Union-find over variable names with an optional constant per class.
class EqClasses {
 public:
  std::string Find(const std::string& var) {
    auto it = parent_.find(var);
    if (it == parent_.end()) {
      parent_[var] = var;
      return var;
    }
    if (it->second == var) return var;
    std::string root = Find(it->second);
    parent_[var] = root;
    return root;
  }

  /// Merges the classes of a and b. Returns false on constant conflict.
  bool Union(const std::string& a, const std::string& b) {
    std::string ra = Find(a);
    std::string rb = Find(b);
    if (ra == rb) return true;
    auto ca = constant_.find(ra);
    auto cb = constant_.find(rb);
    if (ca != constant_.end() && cb != constant_.end() &&
        ca->second != cb->second) {
      return false;
    }
    parent_[rb] = ra;
    if (cb != constant_.end()) {
      constant_[ra] = cb->second;
      constant_.erase(rb);
    }
    return true;
  }

  /// Binds the class of `var` to `value`. False on conflict.
  bool Assign(const std::string& var, const Value& value) {
    std::string root = Find(var);
    auto it = constant_.find(root);
    if (it != constant_.end()) return it->second == value;
    constant_[root] = value;
    return true;
  }

  /// The normalized term for `var`: its class constant if any, else the
  /// class representative variable.
  Term Normalize(const std::string& var) {
    std::string root = Find(var);
    auto it = constant_.find(root);
    if (it != constant_.end()) return Term::Const(it->second);
    return Term::Var(root);
  }

 private:
  std::map<std::string, std::string> parent_;
  std::map<std::string, Value> constant_;
};

}  // namespace

Result<TableauQuery> TableauQuery::FromConjunctive(const ConjunctiveQuery& q,
                                                   const Schema& schema) {
  TableauQuery out;
  EqClasses eq;
  // Pass 1: process equalities.
  for (const Atom& a : q.body()) {
    if (!a.is_comparison() || a.op() != CmpOp::kEq) continue;
    const Term& l = a.lhs();
    const Term& r = a.rhs();
    bool ok = true;
    if (l.is_variable() && r.is_variable()) {
      ok = eq.Union(l.var(), r.var());
    } else if (l.is_variable()) {
      ok = eq.Assign(l.var(), r.value());
    } else if (r.is_variable()) {
      ok = eq.Assign(r.var(), l.value());
    } else {
      ok = l.value() == r.value();
    }
    if (!ok) {
      out.satisfiable_ = false;
    }
  }
  auto normalize = [&eq](const Term& t) {
    return t.is_variable() ? eq.Normalize(t.var()) : t;
  };
  // Pass 2: rewrite relation atoms into rows.
  for (const Atom& a : q.body()) {
    if (!a.is_relation()) continue;
    const RelationSchema* rs = schema.FindRelation(a.relation());
    if (rs == nullptr) {
      return Status::InvalidArgument(
          StrCat("unknown relation in query: ", a.relation()));
    }
    if (a.args().size() != rs->arity()) {
      return Status::InvalidArgument(
          StrCat("arity mismatch in atom ", a.ToString()));
    }
    TableauRow row;
    row.relation = a.relation();
    row.terms.reserve(a.args().size());
    for (const Term& t : a.args()) row.terms.push_back(normalize(t));
    out.rows_.push_back(std::move(row));
  }
  // Pass 3: rewrite the summary.
  out.summary_.reserve(q.head().size());
  for (const Term& t : q.head()) out.summary_.push_back(normalize(t));
  // Pass 4: disequalities.
  for (const Atom& a : q.body()) {
    if (!a.is_comparison() || a.op() != CmpOp::kNe) continue;
    Term l = normalize(a.lhs());
    Term r = normalize(a.rhs());
    if (l == r) {
      out.satisfiable_ = false;
      continue;
    }
    if (l.is_constant() && r.is_constant()) continue;  // trivially true
    out.disequalities_.emplace_back(std::move(l), std::move(r));
  }
  // Pass 5: collect variables (rows first, then summary) and domains.
  std::set<std::string> seen;
  auto add_var = [&](const Term& t) {
    if (t.is_variable() && seen.insert(t.var()).second) {
      out.variables_.push_back(t.var());
    }
  };
  for (const TableauRow& row : out.rows_) {
    const RelationSchema* rs = schema.FindRelation(row.relation);
    for (size_t i = 0; i < row.terms.size(); ++i) {
      const Term& t = row.terms[i];
      add_var(t);
      if (!t.is_variable()) {
        // A constant outside a finite column's domain makes the query
        // unsatisfiable.
        if (!rs->attribute(i).domain->Contains(t.value())) {
          out.satisfiable_ = false;
        }
        continue;
      }
      const std::shared_ptr<const Domain>& col = rs->attribute(i).domain;
      auto [it, inserted] = out.domains_.emplace(t.var(), col);
      if (!inserted && col->is_finite()) {
        if (it->second->is_infinite()) {
          it->second = col;
        } else if (it->second != col) {
          // Variable constrained by two finite columns: intersect.
          std::vector<Value> inter;
          std::set_intersection(it->second->finite_values().begin(),
                                it->second->finite_values().end(),
                                col->finite_values().begin(),
                                col->finite_values().end(),
                                std::back_inserter(inter));
          if (inter.empty()) out.satisfiable_ = false;
          it->second = Domain::Enumerated(
              StrCat(it->second->name(), "&", col->name()), std::move(inter));
        }
      }
    }
  }
  for (const Term& t : out.summary_) add_var(t);
  for (const std::string& v : out.variables_) {
    out.domains_.emplace(v, Domain::Infinite());
  }
  return out;
}

std::shared_ptr<const Domain> TableauQuery::VariableDomain(
    const std::string& var) const {
  auto it = domains_.find(var);
  return it == domains_.end() ? Domain::Infinite() : it->second;
}

std::set<Value> TableauQuery::Constants() const {
  std::set<Value> out;
  auto add = [&out](const Term& t) {
    if (t.is_constant()) out.insert(t.value());
  };
  for (const TableauRow& row : rows_) {
    for (const Term& t : row.terms) add(t);
  }
  for (const Term& t : summary_) add(t);
  for (const auto& [l, r] : disequalities_) {
    add(l);
    add(r);
  }
  return out;
}

Result<std::vector<std::pair<std::string, Tuple>>> TableauQuery::Instantiate(
    const Bindings& valuation) const {
  std::vector<std::pair<std::string, Tuple>> out;
  out.reserve(rows_.size());
  for (const TableauRow& row : rows_) {
    std::optional<Tuple> t = valuation.Ground(row.terms);
    if (!t.has_value()) {
      return Status::InvalidArgument(
          StrCat("valuation leaves a variable of row ", row.ToString(),
                 " unbound"));
    }
    out.emplace_back(row.relation, std::move(*t));
  }
  return out;
}

Status TableauQuery::InstantiateInto(const Bindings& valuation,
                                     Database* db) const {
  RELCOMP_ASSIGN_OR_RETURN(auto tuples, Instantiate(valuation));
  for (auto& [relation, tuple] : tuples) {
    db->InsertUnchecked(relation, std::move(tuple));
  }
  return Status::OK();
}

Result<Tuple> TableauQuery::SummaryTuple(const Bindings& valuation) const {
  std::optional<Tuple> t = valuation.Ground(summary_);
  if (!t.has_value()) {
    return Status::InvalidArgument(
        "valuation leaves a summary variable unbound");
  }
  return *t;
}

bool TableauQuery::IsValidValuation(const Bindings& valuation) const {
  if (!satisfiable_) return false;
  for (const std::string& v : variables_) {
    std::optional<Value> bound = valuation.Get(v);
    if (!bound.has_value()) return false;
    if (!VariableDomain(v)->Contains(*bound)) return false;
  }
  for (const auto& [l, r] : disequalities_) {
    std::optional<Value> lv = valuation.Resolve(l);
    std::optional<Value> rv = valuation.Resolve(r);
    if (!lv.has_value() || !rv.has_value()) return false;
    if (*lv == *rv) return false;
  }
  return true;
}

ConjunctiveQuery TableauQuery::ToConjunctive(const std::string& name) const {
  std::vector<Atom> body;
  for (const TableauRow& row : rows_) {
    body.push_back(Atom::Relation(row.relation, row.terms));
  }
  for (const auto& [l, r] : disequalities_) {
    body.push_back(Atom::Ne(l, r));
  }
  return ConjunctiveQuery(name, summary_, std::move(body));
}

std::string TableauQuery::ToString() const {
  std::string out = "T = {";
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (i > 0) out += ", ";
    out += rows_[i].ToString();
  }
  out += "}, u = (";
  for (size_t i = 0; i < summary_.size(); ++i) {
    if (i > 0) out += ", ";
    out += summary_[i].ToString();
  }
  out += ")";
  if (!disequalities_.empty()) {
    out += ", where ";
    for (size_t i = 0; i < disequalities_.size(); ++i) {
      if (i > 0) out += ", ";
      out += disequalities_[i].first.ToString();
      out += " != ";
      out += disequalities_[i].second.ToString();
    }
  }
  if (!satisfiable_) out += " [UNSATISFIABLE]";
  return out;
}

}  // namespace relcomp
