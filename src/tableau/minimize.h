#ifndef RELCOMP_TABLEAU_MINIMIZE_H_
#define RELCOMP_TABLEAU_MINIMIZE_H_

#include "query/conjunctive_query.h"
#include "relational/schema.h"
#include "util/execution_control.h"
#include "util/status.h"

namespace relcomp {

/// Options for CQ minimization.
struct MinimizeOptions {
  /// Each redundancy check is a containment test; inequalities force
  /// the identification-pattern path, bounded by this variable cap
  /// (see ContainmentOptions).
  size_t max_partition_variables = 12;
  /// Optional shared execution budget (not owned; may be null): one
  /// decision point per candidate atom drop, plus the containment
  /// checker's own points. Exhaustion surfaces as the budget's status.
  ExecutionBudget* budget = nullptr;
};

/// Computes an equivalent minimal conjunctive query (the core of the
/// tableau): greedily drops relation atoms whose removal preserves
/// equivalence. By the Chandra–Merlin theorem the result is unique up
/// to isomorphism for inequality-free queries; with inequalities the
/// procedure still returns an equivalent query with no removable atom.
///
/// Minimization matters here because the RCDP/RCQP search spaces are
/// exponential in the number of tableau variables: minimizing Q first
/// shrinks |T_Q| and with it the paper's Adom ∪ New machinery.
Result<ConjunctiveQuery> MinimizeCq(const ConjunctiveQuery& q,
                                    const Schema& schema,
                                    const MinimizeOptions& options = {});

}  // namespace relcomp

#endif  // RELCOMP_TABLEAU_MINIMIZE_H_
