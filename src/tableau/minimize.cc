#include "tableau/minimize.h"

#include <set>

#include "tableau/containment.h"
#include "util/str.h"

namespace relcomp {
namespace {

/// True iff dropping body atom `index` keeps the query safe: every
/// head/comparison variable still occurs in some remaining relation
/// atom.
bool DropKeepsSafety(const ConjunctiveQuery& q, size_t index) {
  std::set<std::string> remaining_vars;
  for (size_t i = 0; i < q.body().size(); ++i) {
    if (i == index || !q.body()[i].is_relation()) continue;
    q.body()[i].CollectVariables(&remaining_vars);
  }
  std::set<std::string> needed;
  for (const Term& t : q.head()) {
    if (t.is_variable()) needed.insert(t.var());
  }
  for (const Atom& a : q.body()) {
    if (a.is_comparison()) a.CollectVariables(&needed);
  }
  for (const std::string& v : needed) {
    if (remaining_vars.count(v) == 0) return false;
  }
  return true;
}

ConjunctiveQuery WithoutAtom(const ConjunctiveQuery& q, size_t index) {
  std::vector<Atom> body;
  body.reserve(q.body().size() - 1);
  for (size_t i = 0; i < q.body().size(); ++i) {
    if (i != index) body.push_back(q.body()[i]);
  }
  return ConjunctiveQuery(q.name(), q.head(), std::move(body));
}

}  // namespace

Result<ConjunctiveQuery> MinimizeCq(const ConjunctiveQuery& q,
                                    const Schema& schema,
                                    const MinimizeOptions& options) {
  RELCOMP_RETURN_NOT_OK(q.Validate(schema));
  ContainmentOptions containment;
  containment.max_partition_variables = options.max_partition_variables;
  containment.budget = options.budget;

  ConjunctiveQuery current = q;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < current.body().size(); ++i) {
      if (!current.body()[i].is_relation()) continue;
      if (current.RelationAtoms().size() <= 1) break;
      if (!DropKeepsSafety(current, i)) continue;
      if (options.budget != nullptr) {
        // One counted decision point per candidate atom drop.
        RELCOMP_RETURN_NOT_OK(options.budget->OnDecisionPoint());
      }
      ConjunctiveQuery candidate = WithoutAtom(current, i);
      // Dropping an atom can only widen the query (candidate ⊇ current
      // by monotonicity); equivalence needs candidate ⊆ current.
      RELCOMP_ASSIGN_OR_RETURN(
          bool contained,
          CqContained(candidate, current, schema, containment));
      if (contained) {
        current = std::move(candidate);
        changed = true;
        break;  // restart the scan over the shrunken body
      }
    }
  }
  return current;
}

}  // namespace relcomp
