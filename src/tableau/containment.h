#ifndef RELCOMP_TABLEAU_CONTAINMENT_H_
#define RELCOMP_TABLEAU_CONTAINMENT_H_

#include "query/conjunctive_query.h"
#include "query/union_query.h"
#include "relational/schema.h"
#include "util/execution_control.h"
#include "util/status.h"

namespace relcomp {

/// Options for the containment checker.
struct ContainmentOptions {
  /// Exact containment in the presence of inequality atoms requires
  /// checking every identification pattern (set partition) of the
  /// contained query's variables; the number of partitions is the Bell
  /// number, so we cap the variable count.
  size_t max_partition_variables = 12;
  /// Optional shared execution budget (not owned; may be null). The
  /// enumeration path claims one decision point per valuation node
  /// visited; exhaustion surfaces as the budget's status (the
  /// containment check itself has no partial verdict to degrade to).
  ExecutionBudget* budget = nullptr;
};

/// Decides Q1 ⊆ Q2 over all database instances (Chandra-Merlin, NP).
/// Variables are treated as ranging over the infinite domain.
/// With `!=` atoms present the checker enumerates identification
/// patterns of Q1's variables (exact, but exponential; bounded by
/// options.max_partition_variables).
Result<bool> CqContained(const ConjunctiveQuery& q1,
                         const ConjunctiveQuery& q2, const Schema& schema,
                         const ContainmentOptions& options = {});

/// Decides containment of a CQ in a UCQ: Q ⊆ Q1 ∪ ... ∪ Qk.
Result<bool> CqContainedInUnion(const ConjunctiveQuery& q,
                                const UnionQuery& u, const Schema& schema,
                                const ContainmentOptions& options = {});

/// Decides UCQ containment disjunct-wise.
Result<bool> UnionContained(const UnionQuery& u1, const UnionQuery& u2,
                            const Schema& schema,
                            const ContainmentOptions& options = {});

/// Decides CQ equivalence (mutual containment).
Result<bool> CqEquivalent(const ConjunctiveQuery& q1,
                          const ConjunctiveQuery& q2, const Schema& schema,
                          const ContainmentOptions& options = {});

}  // namespace relcomp

#endif  // RELCOMP_TABLEAU_CONTAINMENT_H_
