#include "tableau/single_relation.h"

#include <algorithm>

#include "util/str.h"

namespace relcomp {

Result<SingleRelationEncoding> SingleRelationEncoding::Create(
    std::shared_ptr<const Schema> source, const std::string& wide_name) {
  if (source->HasRelation(wide_name)) {
    return Status::InvalidArgument(
        StrCat("wide relation name collides with source relation: ",
               wide_name));
  }
  SingleRelationEncoding enc;
  enc.source_ = std::move(source);
  enc.wide_name_ = wide_name;
  for (const std::string& name : enc.source_->relation_names()) {
    enc.payload_arity_ =
        std::max(enc.payload_arity_, enc.source_->FindRelation(name)->arity());
  }
  auto wide = std::make_shared<Schema>();
  std::vector<AttributeDef> attrs;
  attrs.push_back(AttributeDef::Inf("rel_tag"));
  for (size_t i = 0; i < enc.payload_arity_; ++i) {
    attrs.push_back(AttributeDef::Inf(StrCat("c", i)));
  }
  RELCOMP_RETURN_NOT_OK(
      wide->AddRelation(RelationSchema(wide_name, std::move(attrs))));
  enc.wide_schema_ = std::move(wide);
  return enc;
}

Result<Database> SingleRelationEncoding::TransformDatabase(
    const Database& db) const {
  Database out(wide_schema_);
  for (const std::string& name : source_->relation_names()) {
    for (const Tuple& t : db.Get(name)) {
      Tuple wide;
      wide.Append(Value::Str(name));
      for (const Value& v : t.values()) wide.Append(v);
      for (size_t i = t.arity(); i < payload_arity_; ++i) {
        wide.Append(PadValue());
      }
      out.InsertUnchecked(wide_name_, std::move(wide));
    }
  }
  return out;
}

Result<ConjunctiveQuery> SingleRelationEncoding::TransformQuery(
    const ConjunctiveQuery& q) const {
  std::vector<Atom> body;
  int pad_var = 0;
  for (const Atom& a : q.body()) {
    if (a.is_comparison()) {
      body.push_back(a);
      continue;
    }
    const RelationSchema* rs = source_->FindRelation(a.relation());
    if (rs == nullptr) {
      return Status::InvalidArgument(
          StrCat("unknown relation in query: ", a.relation()));
    }
    std::vector<Term> args;
    args.push_back(Term::ConstStr(a.relation()));
    for (const Term& t : a.args()) args.push_back(t);
    for (size_t i = a.args().size(); i < payload_arity_; ++i) {
      // Padding positions are matched with throwaway variables rather
      // than the pad constant so the transform also accepts databases
      // padded differently; f_D always pads with PadValue().
      args.push_back(Term::Var(StrCat("_pad$", pad_var++)));
    }
    body.push_back(Atom::Relation(wide_name_, std::move(args)));
  }
  return ConjunctiveQuery(q.name(), q.head(), std::move(body));
}

Result<UnionQuery> SingleRelationEncoding::TransformQuery(
    const UnionQuery& q) const {
  UnionQuery out;
  out.set_name(q.name());
  for (const ConjunctiveQuery& cq : q.disjuncts()) {
    RELCOMP_ASSIGN_OR_RETURN(ConjunctiveQuery tq, TransformQuery(cq));
    out.AddDisjunct(std::move(tq));
  }
  return out;
}

}  // namespace relcomp
