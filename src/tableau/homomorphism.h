#ifndef RELCOMP_TABLEAU_HOMOMORPHISM_H_
#define RELCOMP_TABLEAU_HOMOMORPHISM_H_

#include <functional>
#include <optional>

#include "eval/bindings.h"
#include "relational/database.h"
#include "relational/database_overlay.h"
#include "tableau/tableau.h"
#include "util/status.h"

namespace relcomp {

/// Searches for a homomorphism from the tableau into the instance: a
/// valuation of the tableau's variables such that every row maps to a
/// tuple of `db` and every disequality holds. Returns nullopt if none
/// exists (or the tableau is unsatisfiable). The overlay forms match
/// into base ∪ staged tuples without materializing the extension.
Result<std::optional<Bindings>> FindHomomorphism(const TableauQuery& tableau,
                                                 const Database& db);
Result<std::optional<Bindings>> FindHomomorphism(const TableauQuery& tableau,
                                                 const DatabaseOverlay& db);

/// Enumerates all homomorphisms; the callback returns false to stop.
Status ForEachHomomorphism(const TableauQuery& tableau, const Database& db,
                           const std::function<bool(const Bindings&)>& fn);
Status ForEachHomomorphism(const TableauQuery& tableau,
                           const DatabaseOverlay& db,
                           const std::function<bool(const Bindings&)>& fn);

/// Freezes the tableau into its canonical instance: each variable is
/// replaced by a distinct fresh constant (reported in *frozen), and the
/// rows become tuples of `*out`. Requires *out's schema to cover the
/// tableau's relations.
Status FreezeTableau(const TableauQuery& tableau, Database* out,
                     Bindings* frozen);

}  // namespace relcomp

#endif  // RELCOMP_TABLEAU_HOMOMORPHISM_H_
