#ifndef RELCOMP_TABLEAU_TABLEAU_H_
#define RELCOMP_TABLEAU_TABLEAU_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "eval/bindings.h"
#include "query/conjunctive_query.h"
#include "relational/database.h"
#include "util/status.h"

namespace relcomp {

/// One tuple template of a tableau: a relation name plus terms.
struct TableauRow {
  std::string relation;
  std::vector<Term> terms;

  std::string ToString() const;
};

/// The paper's tableau representation (T_Q, u_Q) of a CQ (Section 3.2):
///
///  * equality atoms are normalized away: variables equated by `=` are
///    merged into one representative (the eq() classes), and variables
///    equated with a constant are substituted by it;
///  * the remaining rows are the relation-atom tuple templates T_Q;
///  * u_Q is the output summary (head terms after normalization);
///  * inequality atoms are kept aside as disequality constraints that
///    valid valuations must observe.
///
/// FromConjunctive detects unsatisfiable queries (e.g. x = 1, x = 2 or
/// x = y, x != y) — for those the paper treats completeness trivially.
class TableauQuery {
 public:
  /// Builds the tableau of `q`, resolving per-variable domains against
  /// `schema` (adom(y) is finite iff y occurs in a finite-domain
  /// column). Fails only on malformed queries; an inconsistent equality
  /// system yields satisfiable() == false, not an error.
  static Result<TableauQuery> FromConjunctive(const ConjunctiveQuery& q,
                                              const Schema& schema);

  /// False iff the equality/inequality system of the query is
  /// inconsistent (the query returns ∅ on every database).
  bool satisfiable() const { return satisfiable_; }

  const std::vector<TableauRow>& rows() const { return rows_; }
  /// The output summary u_Q.
  const std::vector<Term>& summary() const { return summary_; }
  /// Disequality constraints (t1, t2) meaning t1 != t2, normalized.
  const std::vector<std::pair<Term, Term>>& disequalities() const {
    return disequalities_;
  }

  /// Distinct variables of the tableau, in first-occurrence order
  /// (rows first, then summary).
  const std::vector<std::string>& variables() const { return variables_; }

  /// Domain of a variable: the (first) finite domain of a column it
  /// occurs in, or the infinite domain. Precondition: `var` occurs.
  std::shared_ptr<const Domain> VariableDomain(const std::string& var) const;

  /// Constants appearing in rows, summary, or disequalities.
  std::set<Value> Constants() const;

  /// Instantiates the tableau under a (total) valuation: returns the
  /// ground tuples μ(T_Q) as (relation, tuple) pairs. Fails if a
  /// variable is unbound.
  Result<std::vector<std::pair<std::string, Tuple>>> Instantiate(
      const Bindings& valuation) const;

  /// Inserts μ(T_Q) into `db` (unchecked inserts). Fails on unbound
  /// variables.
  Status InstantiateInto(const Bindings& valuation, Database* db) const;

  /// Applies the valuation to the summary u_Q. Fails on unbound vars.
  Result<Tuple> SummaryTuple(const Bindings& valuation) const;

  /// True iff the valuation observes every disequality constraint and
  /// binds each variable inside its domain — the per-query part of the
  /// paper's "valid valuation" condition (Q(μ(T_Q)) nonempty).
  bool IsValidValuation(const Bindings& valuation) const;

  /// Reconstructs an equivalent CQ (for evaluation/printing).
  ConjunctiveQuery ToConjunctive(const std::string& name = "Q") const;

  std::string ToString() const;

 private:
  bool satisfiable_ = true;
  std::vector<TableauRow> rows_;
  std::vector<Term> summary_;
  std::vector<std::pair<Term, Term>> disequalities_;
  std::vector<std::string> variables_;
  std::map<std::string, std::shared_ptr<const Domain>> domains_;
};

}  // namespace relcomp

#endif  // RELCOMP_TABLEAU_TABLEAU_H_
