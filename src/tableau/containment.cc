#include "tableau/containment.h"

#include <functional>

#include "eval/conjunctive_eval.h"
#include "tableau/homomorphism.h"
#include "tableau/tableau.h"
#include "util/str.h"

namespace relcomp {
namespace {

/// True iff any disjunct of `u` has an inequality atom.
bool HasDisequalities(const UnionQuery& u) {
  for (const ConjunctiveQuery& q : u.disjuncts()) {
    for (const Atom& a : q.body()) {
      if (a.is_comparison() && a.op() == CmpOp::kNe) return true;
    }
  }
  return false;
}

/// Evaluates whether `summary` is in u(db).
Result<bool> SummaryInUnion(const Tuple& summary, const UnionQuery& u,
                            const Database& db) {
  for (const ConjunctiveQuery& q : u.disjuncts()) {
    RELCOMP_ASSIGN_OR_RETURN(Relation answers, EvalConjunctive(q, db));
    if (answers.Contains(summary)) return true;
  }
  return false;
}

/// The fast Chandra-Merlin path: freeze q1's tableau into its canonical
/// instance and test the frozen summary. Exact when `u` is free of
/// inequalities and q1 has no finite-domain variables.
Result<bool> ContainedByFreezing(const TableauQuery& t1, const UnionQuery& u,
                                 const Schema& schema) {
  Database canonical(std::shared_ptr<const Schema>(&schema,
                                                   [](const Schema*) {}));
  Bindings frozen;
  RELCOMP_RETURN_NOT_OK(FreezeTableau(t1, &canonical, &frozen));
  RELCOMP_ASSIGN_OR_RETURN(Tuple summary, t1.SummaryTuple(frozen));
  return SummaryInUnion(summary, u, canonical);
}

/// The exact path: enumerate valuations of q1's variables over the
/// constants of both queries plus one fresh value per variable (the
/// small-model identification patterns), and require the instantiated
/// summary to be answered by `u` on every q1-valid instantiation.
Result<bool> ContainedByEnumeration(const TableauQuery& t1,
                                    const UnionQuery& u, const Schema& schema,
                                    const ContainmentOptions& options) {
  const std::vector<std::string>& vars = t1.variables();
  if (vars.size() > options.max_partition_variables) {
    return Status::ResourceExhausted(
        StrCat("containment check over ", vars.size(),
               " variables exceeds the configured bound of ",
               options.max_partition_variables));
  }
  std::set<Value> adom_set = t1.Constants();
  std::set<Value> u_consts = u.Constants();
  adom_set.insert(u_consts.begin(), u_consts.end());

  // Per-variable candidate values. Every infinite-domain variable may
  // take any constant of either query or any of the fresh values; the
  // fresh values are shared across variables so identification patterns
  // (two variables mapped to the same non-constant) are covered.
  std::vector<Value> fresh;
  fresh.reserve(vars.size());
  for (const std::string& v : vars) fresh.push_back(Value::Str(StrCat("_cm$", v)));
  std::vector<std::vector<Value>> candidates(vars.size());
  for (size_t i = 0; i < vars.size(); ++i) {
    std::shared_ptr<const Domain> dom = t1.VariableDomain(vars[i]);
    if (dom->is_finite()) {
      candidates[i] = dom->finite_values();
    } else {
      candidates[i].assign(adom_set.begin(), adom_set.end());
      candidates[i].insert(candidates[i].end(), fresh.begin(), fresh.end());
    }
  }

  Bindings valuation;
  bool contained = true;
  std::function<Result<bool>(size_t)> recurse =
      [&](size_t i) -> Result<bool> {
    if (!contained) return true;
    if (options.budget != nullptr) {
      // One counted decision point per valuation node, mirroring the
      // deciders' per-binding points.
      RELCOMP_RETURN_NOT_OK(options.budget->OnDecisionPoint());
    }
    if (i == vars.size()) {
      if (!t1.IsValidValuation(valuation)) return true;  // not a q1 match
      Database db(std::shared_ptr<const Schema>(&schema,
                                                [](const Schema*) {}));
      RELCOMP_RETURN_NOT_OK(t1.InstantiateInto(valuation, &db));
      RELCOMP_ASSIGN_OR_RETURN(Tuple summary, t1.SummaryTuple(valuation));
      RELCOMP_ASSIGN_OR_RETURN(bool in_u, SummaryInUnion(summary, u, db));
      if (!in_u) contained = false;
      return true;
    }
    for (const Value& v : candidates[i]) {
      valuation.Set(vars[i], v);
      RELCOMP_ASSIGN_OR_RETURN(bool ignored, recurse(i + 1));
      (void)ignored;
      if (!contained) break;
    }
    valuation.Unset(vars[i]);
    return true;
  };
  RELCOMP_ASSIGN_OR_RETURN(bool ignored, recurse(0));
  (void)ignored;
  return contained;
}

Result<bool> ContainedInUnionImpl(const ConjunctiveQuery& q1,
                                  const UnionQuery& u, const Schema& schema,
                                  const ContainmentOptions& options) {
  if (q1.arity() != u.arity()) {
    return Status::InvalidArgument(
        StrCat("containment between different arities: ", q1.arity(), " vs ",
               u.arity()));
  }
  RELCOMP_ASSIGN_OR_RETURN(TableauQuery t1,
                           TableauQuery::FromConjunctive(q1, schema));
  if (!t1.satisfiable()) return true;  // ∅ ⊆ anything
  bool has_finite_vars = false;
  for (const std::string& v : t1.variables()) {
    if (t1.VariableDomain(v)->is_finite()) {
      has_finite_vars = true;
      break;
    }
  }
  if (!HasDisequalities(u) && !has_finite_vars) {
    return ContainedByFreezing(t1, u, schema);
  }
  return ContainedByEnumeration(t1, u, schema, options);
}

}  // namespace

Result<bool> CqContained(const ConjunctiveQuery& q1,
                         const ConjunctiveQuery& q2, const Schema& schema,
                         const ContainmentOptions& options) {
  return ContainedInUnionImpl(q1, UnionQuery(q2), schema, options);
}

Result<bool> CqContainedInUnion(const ConjunctiveQuery& q,
                                const UnionQuery& u, const Schema& schema,
                                const ContainmentOptions& options) {
  return ContainedInUnionImpl(q, u, schema, options);
}

Result<bool> UnionContained(const UnionQuery& u1, const UnionQuery& u2,
                            const Schema& schema,
                            const ContainmentOptions& options) {
  for (const ConjunctiveQuery& q : u1.disjuncts()) {
    RELCOMP_ASSIGN_OR_RETURN(bool sub,
                             ContainedInUnionImpl(q, u2, schema, options));
    if (!sub) return false;
  }
  return true;
}

Result<bool> CqEquivalent(const ConjunctiveQuery& q1,
                          const ConjunctiveQuery& q2, const Schema& schema,
                          const ContainmentOptions& options) {
  RELCOMP_ASSIGN_OR_RETURN(bool forward, CqContained(q1, q2, schema, options));
  if (!forward) return false;
  return CqContained(q2, q1, schema, options);
}

}  // namespace relcomp
