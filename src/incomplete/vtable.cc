#include "incomplete/vtable.h"

#include <algorithm>

#include "completeness/rcdp.h"
#include "constraints/constraint_check.h"
#include "eval/query_eval.h"
#include "util/str.h"

namespace relcomp {

Status VDatabase::Insert(std::string_view relation, VTuple tuple) {
  const RelationSchema* rs = schema_->FindRelation(relation);
  if (rs == nullptr) {
    return Status::NotFound(StrCat("unknown relation: ", relation));
  }
  if (tuple.size() != rs->arity()) {
    return Status::InvalidArgument(
        StrCat("arity mismatch for ", relation, ": v-tuple has ",
               tuple.size(), " entries, schema has ", rs->arity()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (tuple[i].is_constant() &&
        !rs->attribute(i).domain->Contains(tuple[i].value())) {
      return Status::InvalidArgument(
          StrCat("constant ", tuple[i].value().ToString(),
                 " not in domain of ", relation, ".", rs->attribute(i).name));
    }
  }
  tuples_.emplace_back(std::string(relation), std::move(tuple));
  return Status::OK();
}

std::vector<std::string> VDatabase::NullLabels() const {
  std::vector<std::string> labels;
  std::set<std::string> seen;
  for (const auto& [relation, tuple] : tuples_) {
    for (const Term& t : tuple) {
      if (t.is_variable() && seen.insert(t.var()).second) {
        labels.push_back(t.var());
      }
    }
  }
  return labels;
}

std::map<std::string, std::shared_ptr<const Domain>> VDatabase::NullDomains()
    const {
  std::map<std::string, std::shared_ptr<const Domain>> domains;
  for (const auto& [relation, tuple] : tuples_) {
    const RelationSchema* rs = schema_->FindRelation(relation);
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (!tuple[i].is_variable()) continue;
      const std::shared_ptr<const Domain>& col = rs->attribute(i).domain;
      auto [it, inserted] = domains.emplace(tuple[i].var(), col);
      if (inserted || !col->is_finite()) continue;
      if (it->second->is_infinite()) {
        it->second = col;
      } else if (it->second != col) {
        std::vector<Value> inter;
        std::set_intersection(it->second->finite_values().begin(),
                              it->second->finite_values().end(),
                              col->finite_values().begin(),
                              col->finite_values().end(),
                              std::back_inserter(inter));
        it->second = Domain::Enumerated(
            StrCat(it->second->name(), "&", col->name()), std::move(inter));
      }
    }
  }
  return domains;
}

bool VDatabase::IsGround() const {
  for (const auto& [relation, tuple] : tuples_) {
    for (const Term& t : tuple) {
      if (t.is_variable()) return false;
    }
  }
  return true;
}

Result<Database> VDatabase::Ground(const Bindings& valuation) const {
  Database out(schema_);
  for (const auto& [relation, tuple] : tuples_) {
    std::optional<Tuple> ground = valuation.Ground(tuple);
    if (!ground.has_value()) {
      return Status::InvalidArgument(
          "grounding valuation leaves a null unbound");
    }
    RELCOMP_RETURN_NOT_OK(out.Insert(relation, std::move(*ground)));
  }
  return out;
}

void VDatabase::CollectConstants(std::set<Value>* out) const {
  for (const auto& [relation, tuple] : tuples_) {
    for (const Term& t : tuple) {
      if (t.is_constant()) out->insert(t.value());
    }
  }
}

std::string VDatabase::ToString() const {
  std::string out;
  for (const auto& [relation, tuple] : tuples_) {
    out += relation;
    out.push_back('(');
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (i > 0) out += ", ";
      out += tuple[i].is_variable() ? StrCat("⊥", tuple[i].var())
                                    : tuple[i].ToString();
    }
    out += ")\n";
  }
  if (out.empty()) out = "(empty v-database)\n";
  return out;
}

Status ForEachWorld(const VDatabase& vdb, const std::vector<Value>& universe,
                    const std::function<bool(const Database&,
                                             const Bindings&)>& on_world) {
  std::vector<std::string> labels = vdb.NullLabels();
  std::map<std::string, std::shared_ptr<const Domain>> domains =
      vdb.NullDomains();
  // Per-null candidate values.
  std::vector<std::vector<Value>> candidates;
  candidates.reserve(labels.size());
  for (const std::string& label : labels) {
    const std::shared_ptr<const Domain>& dom = domains[label];
    if (dom != nullptr && dom->is_finite()) {
      candidates.push_back(dom->finite_values());
    } else {
      candidates.push_back(universe);
    }
  }
  Bindings valuation;
  Status inner;
  bool stopped = false;
  std::function<void(size_t)> recurse = [&](size_t i) {
    if (stopped) return;
    if (i == labels.size()) {
      Result<Database> world = vdb.Ground(valuation);
      if (!world.ok()) {
        inner = world.status();
        stopped = true;
        return;
      }
      if (!on_world(*world, valuation)) stopped = true;
      return;
    }
    for (const Value& v : candidates[i]) {
      valuation.Set(labels[i], v);
      recurse(i + 1);
      if (stopped) return;
    }
    valuation.Unset(labels[i]);
  };
  recurse(0);
  return inner;
}

Result<Relation> CertainAnswers(const AnyQuery& query, const VDatabase& vdb,
                                const std::vector<Value>& universe) {
  std::optional<Relation> certain;
  Status inner;
  RELCOMP_RETURN_NOT_OK(ForEachWorld(
      vdb, universe, [&](const Database& world, const Bindings&) {
        Result<Relation> answer = Evaluate(query, world);
        if (!answer.ok()) {
          inner = answer.status();
          return false;
        }
        if (!certain.has_value()) {
          certain = std::move(*answer);
          return true;
        }
        Relation intersection(certain->arity());
        for (const Tuple& t : *certain) {
          if (answer->Contains(t)) intersection.Insert(t);
        }
        certain = std::move(intersection);
        return !certain->empty();  // early exit once nothing is certain
      }));
  RELCOMP_RETURN_NOT_OK(inner);
  if (!certain.has_value()) return Relation(query.arity());
  return *certain;
}

Result<Relation> PossibleAnswers(const AnyQuery& query, const VDatabase& vdb,
                                 const std::vector<Value>& universe) {
  Relation possible(query.arity());
  Status inner;
  RELCOMP_RETURN_NOT_OK(ForEachWorld(
      vdb, universe, [&](const Database& world, const Bindings&) {
        Result<Relation> answer = Evaluate(query, world);
        if (!answer.ok()) {
          inner = answer.status();
          return false;
        }
        possible.UnionWith(*answer);
        return true;
      }));
  RELCOMP_RETURN_NOT_OK(inner);
  return possible;
}

std::string WorldCompleteness::ToString() const {
  return StrCat(worlds, " worlds: ", complete, " complete, ", incomplete,
                " incomplete, ", not_closed, " not partially closed",
                CertainlyComplete() ? " => CERTAINLY complete"
                : PossiblyComplete() ? " => possibly complete"
                                     : " => not complete in any world");
}

Result<WorldCompleteness> DecideRcdpOnWorlds(
    const AnyQuery& query, const VDatabase& vdb, const Database& master,
    const ConstraintSet& constraints, const std::vector<Value>& universe) {
  WorldCompleteness report;
  Status inner;
  RELCOMP_RETURN_NOT_OK(ForEachWorld(
      vdb, universe, [&](const Database& world, const Bindings&) {
        ++report.worlds;
        Result<bool> closed = Satisfies(constraints, world, master);
        if (!closed.ok()) {
          inner = closed.status();
          return false;
        }
        if (!*closed) {
          ++report.not_closed;
          return true;
        }
        Result<RcdpResult> verdict =
            DecideRcdp(query, world, master, constraints);
        if (!verdict.ok()) {
          inner = verdict.status();
          return false;
        }
        if (verdict->complete) {
          ++report.complete;
        } else {
          ++report.incomplete;
        }
        return true;
      }));
  RELCOMP_RETURN_NOT_OK(inner);
  return report;
}

std::vector<Value> DefaultNullUniverse(const VDatabase& vdb,
                                       const Database& master,
                                       const AnyQuery& query,
                                       size_t extra_fresh) {
  std::set<Value> values = query.Constants();
  vdb.CollectConstants(&values);
  master.CollectConstants(&values);
  size_t added = 0;
  size_t next = 0;
  while (added < extra_fresh) {
    Value fresh = Value::Str(StrCat("_null$", next++));
    if (values.insert(fresh).second) ++added;
  }
  return std::vector<Value>(values.begin(), values.end());
}

}  // namespace relcomp
