#ifndef RELCOMP_INCOMPLETE_VTABLE_H_
#define RELCOMP_INCOMPLETE_VTABLE_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "constraints/containment_constraint.h"
#include "eval/bindings.h"
#include "query/any_query.h"
#include "relational/database.h"
#include "util/status.h"

namespace relcomp {

/// Missing VALUES, on top of the paper's missing-tuples model.
///
/// Section 5 of the paper points to representation systems (v-tables /
/// c-tables, Imieliński & Lipski 1984) for extending relative
/// completeness to missing values; the follow-up paper (Fan & Geerts,
/// PODS 2010, "Capturing missing tuples and missing values") develops
/// it. This module implements the v-table fragment: tuples may carry
/// *labeled nulls*, a possible world grounds every null to a constant,
/// and the completeness notions lift world-wise. All enumerations are
/// bounded by an explicit null universe, in the same spirit as the
/// Adom ∪ New small-model machinery.

/// A tuple over constants and labeled nulls. Nulls reuse Term's
/// variable representation: Term::Var("x1") is the labeled null ⊥x1;
/// the same label denotes the same unknown value everywhere.
using VTuple = std::vector<Term>;

/// A database instance whose tuples may contain labeled nulls.
class VDatabase {
 public:
  explicit VDatabase(std::shared_ptr<const Schema> schema)
      : schema_(std::move(schema)) {}

  const Schema& schema() const { return *schema_; }
  const std::shared_ptr<const Schema>& schema_ptr() const { return schema_; }

  /// Inserts a v-tuple (checked: relation, arity, and constants against
  /// attribute domains; nulls are unconstrained here and constrained at
  /// grounding time by their columns' domains).
  Status Insert(std::string_view relation, VTuple tuple);

  const std::vector<std::pair<std::string, VTuple>>& tuples() const {
    return tuples_;
  }

  /// All null labels, in first-occurrence order.
  std::vector<std::string> NullLabels() const;

  /// For each null label, the tightest column domain it appears under
  /// (finite beats infinite; multiple finite domains intersect).
  std::map<std::string, std::shared_ptr<const Domain>> NullDomains() const;

  /// True iff no tuple contains a null (the instance is an ordinary
  /// database).
  bool IsGround() const;

  /// Grounds every tuple under `valuation` (which must bind every null
  /// label). Distinct v-tuples may collapse to one ground tuple.
  Result<Database> Ground(const Bindings& valuation) const;

  /// All constants occurring in the v-tuples.
  void CollectConstants(std::set<Value>* out) const;

  std::string ToString() const;

 private:
  std::shared_ptr<const Schema> schema_;
  std::vector<std::pair<std::string, VTuple>> tuples_;
};

/// Enumerates the possible worlds of `vdb`: every assignment of its
/// nulls over `universe` (finite-domain columns restrict their nulls
/// to the domain). The callback returns false to stop. The number of
/// worlds is |universe|^#nulls — keep instances small.
Status ForEachWorld(const VDatabase& vdb, const std::vector<Value>& universe,
                    const std::function<bool(const Database&,
                                             const Bindings&)>& on_world);

/// Certain answers: ∩ Q(world) over all worlds (the tuples true no
/// matter how the nulls resolve). Universe-bounded.
Result<Relation> CertainAnswers(const AnyQuery& query, const VDatabase& vdb,
                                const std::vector<Value>& universe);

/// Possible answers: ∪ Q(world).
Result<Relation> PossibleAnswers(const AnyQuery& query, const VDatabase& vdb,
                                 const std::vector<Value>& universe);

/// Relative completeness lifted to worlds: classify each possible
/// world as not partially closed / complete / incomplete for Q
/// relative to (Dm, V).
struct WorldCompleteness {
  size_t worlds = 0;
  size_t not_closed = 0;
  size_t complete = 0;
  size_t incomplete = 0;

  /// Every partially closed world is complete (the natural lift of the
  /// paper's notion: no matter how the missing values resolve, the
  /// data on hand answers Q).
  bool CertainlyComplete() const {
    return worlds > 0 && incomplete == 0 && complete > 0;
  }
  /// Some partially closed world is complete.
  bool PossiblyComplete() const { return complete > 0; }

  std::string ToString() const;
};

/// Runs the RCDP decider on every world of `vdb` (bounded by
/// `universe`). Supports the decidable language cells only.
Result<WorldCompleteness> DecideRcdpOnWorlds(
    const AnyQuery& query, const VDatabase& vdb, const Database& master,
    const ConstraintSet& constraints, const std::vector<Value>& universe);

/// A default null universe: the constants of the v-database, the
/// master data and the query, plus `extra_fresh` fresh values.
std::vector<Value> DefaultNullUniverse(const VDatabase& vdb,
                                       const Database& master,
                                       const AnyQuery& query,
                                       size_t extra_fresh = 1);

}  // namespace relcomp

#endif  // RELCOMP_INCOMPLETE_VTABLE_H_
