#ifndef RELCOMP_RELCOMP_H_
#define RELCOMP_RELCOMP_H_

/// Umbrella header for the relcomp library: the public API for
/// relative information completeness (Fan & Geerts, PODS 2009 /
/// TODS 2010). Include the individual headers instead when compile
/// time matters.

// Relational substrate.
#include "relational/database.h"
#include "relational/domain.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "relational/tuple.h"
#include "relational/value.h"

// Query languages, parsing, evaluation.
#include "eval/query_eval.h"
#include "query/any_query.h"
#include "query/parser.h"
#include "query/positive_query.h"

// Tableau machinery and containment.
#include "tableau/containment.h"
#include "tableau/minimize.h"
#include "tableau/single_relation.h"
#include "tableau/tableau.h"

// Containment constraints and integrity-constraint compilation.
#include "constraints/constraint_check.h"
#include "constraints/containment_constraint.h"
#include "constraints/integrity_constraints.h"

// The core: relative-completeness deciders and characterizations.
#include "completeness/brute_force.h"
#include "completeness/characterizations.h"
#include "completeness/rcdp.h"
#include "completeness/rcqp.h"

// Extensions.
#include "incomplete/vtable.h"
#include "spec/spec_parser.h"

// Scenario builders.
#include "workload/crm_scenario.h"
#include "workload/generators.h"

#endif  // RELCOMP_RELCOMP_H_
