#ifndef RELCOMP_SPEC_SPEC_PARSER_H_
#define RELCOMP_SPEC_SPEC_PARSER_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "constraints/containment_constraint.h"
#include "query/any_query.h"
#include "relational/database.h"
#include "relational/delta_batch.h"
#include "util/status.h"

namespace relcomp {

/// A fully parsed completeness-checking problem: the textual front end
/// for the relcheck tool and for users who prefer files over the C++
/// builder APIs.
///
/// Spec syntax — one statement per line; `%` or `#` starts a comment:
///
///   relation Cust(cid, name, cc, ac, phn)
///   relation Flag(f: bool, note)              % finite-domain column
///   relation Slot(s: int(4), v)               % finite domain {0..3}
///   master relation DCust(cid, name, ac, phn)
///
///   fact Cust("c0", "n0", "01", "908", "p0")
///   master fact DCust("c0", "n0", "908", "p0")
///
///   constraint q0(c) :- Cust(c, n, cc, a, p), cc = "01" |= DCust[0]
///   constraint amo() :- Supt(e, d1, c1), Supt(e, d2, c2), c1 != c2 |= empty
///
///   query cq   Q1(c) :- Cust(c, n, cc, a, p), a = "908"
///   query ucq  Q2(c) :- Supt(e, d, c), e = "e0". Q2(c) :- Supt(e, d, c), e = "e1"
///   query fo   Qf(x) := exists y. (R(x, y) & !S(y))
///   query fp   Above(x) :- Manage(x, y), y = "e0". Above(x) :- Manage(x, y), Above(y)
///
/// Multiple `query` lines are allowed; each is checked in order.
struct CompletenessSpec {
  std::shared_ptr<Schema> db_schema;
  std::shared_ptr<Schema> master_schema;
  Database db;
  Database master;
  ConstraintSet constraints;
  std::vector<AnyQuery> queries;

  CompletenessSpec()
      : db_schema(std::make_shared<Schema>()),
        master_schema(std::make_shared<Schema>()),
        db(db_schema),
        master(master_schema) {}
};

/// Parses a spec from text. Errors carry 1-based line numbers.
Result<CompletenessSpec> ParseCompletenessSpec(std::string_view text);

/// Reads and parses a spec file.
Result<CompletenessSpec> LoadCompletenessSpec(const std::string& path);

/// Parses an update batch (the relcheck --delta file format) — one
/// operation per line, `%` / `#` comments as in specs:
///
///   insert Cust("c9", "n9", "01", "908", "p9")
///   delete Supt("e0", "d0", "c0")
///   master insert DCust("c9", "n9", "908", "p9")
///   master delete DCust("c0", "n0", "908", "p0")
///
/// Parsing is purely syntactic; relation existence, arity, and domain
/// membership are checked by ApplyDeltaBatch against the instance the
/// batch is applied to. Errors carry 1-based line numbers.
Result<DeltaBatch> ParseDeltaBatch(std::string_view text);

/// Reads and parses a delta file.
Result<DeltaBatch> LoadDeltaBatch(const std::string& path);

}  // namespace relcomp

#endif  // RELCOMP_SPEC_SPEC_PARSER_H_
