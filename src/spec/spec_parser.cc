#include "spec/spec_parser.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "query/parser.h"
#include "util/str.h"

namespace relcomp {
namespace {

Status LineError(size_t line, const std::string& message) {
  return Status::InvalidArgument(StrCat("spec line ", line, ": ", message));
}

/// Hostile-input guards. Relation arities bound every downstream tuple
/// and tableau width; int(N) domains materialize N values eagerly, so
/// an unchecked N is a memory bomb. Overruns are kInvalidArgument with
/// the line number, never a crash or an allocation stall.
constexpr size_t kMaxSpecArity = 4096;
constexpr int64_t kMaxFiniteDomainSize = 1 << 20;

/// Strips a trailing comment (% or #) outside of string literals.
std::string StripComment(std::string_view line) {
  std::string out;
  bool in_string = false;
  char quote = '"';
  for (char c : line) {
    if (in_string) {
      out.push_back(c);
      if (c == quote) in_string = false;
      continue;
    }
    if (c == '"' || c == '\'') {
      in_string = true;
      quote = c;
      out.push_back(c);
      continue;
    }
    if (c == '%' || c == '#') break;
    out.push_back(c);
  }
  return out;
}

/// Parses "Name(attr[: dom], ...)" into a RelationSchema.
Result<RelationSchema> ParseRelationDecl(std::string_view text, size_t line) {
  size_t open = text.find('(');
  size_t close = text.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    return LineError(line, "expected Name(attr, ...)");
  }
  std::string name(TrimWhitespace(text.substr(0, open)));
  if (name.empty()) return LineError(line, "missing relation name");
  std::vector<AttributeDef> attrs;
  std::string_view args = text.substr(open + 1, close - open - 1);
  if (!TrimWhitespace(args).empty()) {
    for (const std::string& piece : SplitAndTrim(args, ',')) {
      if (attrs.size() >= kMaxSpecArity) {
        return LineError(line, StrCat("relation ", name, " exceeds the arity "
                                      "limit of ", kMaxSpecArity));
      }
      size_t colon = piece.find(':');
      std::string attr_name =
          std::string(TrimWhitespace(piece.substr(0, colon)));
      if (attr_name.empty()) {
        return LineError(line, "empty attribute name");
      }
      if (colon == std::string::npos) {
        attrs.push_back(AttributeDef::Inf(attr_name));
        continue;
      }
      std::string domain(TrimWhitespace(piece.substr(colon + 1)));
      if (domain == "inf" || domain == "d") {
        attrs.push_back(AttributeDef::Inf(attr_name));
      } else if (domain == "bool") {
        attrs.push_back(AttributeDef::Over(attr_name, Domain::Boolean()));
      } else if (domain.rfind("int(", 0) == 0 && domain.back() == ')') {
        int64_t n = 0;
        if (!ParseInt64(domain.substr(4, domain.size() - 5), &n) || n < 1) {
          return LineError(line, StrCat("bad finite domain: ", domain));
        }
        if (n > kMaxFiniteDomainSize) {
          return LineError(
              line, StrCat("finite domain int(", n, ") exceeds the limit of ",
                           kMaxFiniteDomainSize, " values"));
        }
        attrs.push_back(AttributeDef::Over(
            attr_name, Domain::FiniteInts(StrCat("int", n), n)));
      } else {
        return LineError(line, StrCat("unknown domain: ", domain,
                                      " (use inf, bool, or int(N))"));
      }
    }
  }
  return RelationSchema(name, std::move(attrs));
}

/// Parses "R(const, ...)" into (relation, tuple).
Result<std::pair<std::string, Tuple>> ParseFact(std::string_view text,
                                                size_t line) {
  // Reuse the rule parser: "f() :- <atom>."
  auto rule = ParseConjunctiveQuery(StrCat("f() :- ", text, "."));
  if (!rule.ok()) {
    return LineError(line, StrCat("bad fact: ", rule.status().message()));
  }
  if (rule->body().size() != 1 || !rule->body()[0].is_relation()) {
    return LineError(line, "a fact is a single relation atom");
  }
  const Atom& atom = rule->body()[0];
  std::vector<Value> values;
  for (const Term& t : atom.args()) {
    if (!t.is_constant()) {
      return LineError(line, StrCat("fact arguments must be constants; got ",
                                    t.ToString()));
    }
    values.push_back(t.value());
  }
  return std::make_pair(atom.relation(), Tuple(std::move(values)));
}

/// Parses "Rel[0, 2]" / "empty" into a CC target.
Result<std::pair<std::string, std::vector<size_t>>> ParseTarget(
    std::string_view text, size_t line) {
  std::string_view trimmed = TrimWhitespace(text);
  if (trimmed == "empty") return std::make_pair(std::string(), std::vector<size_t>());
  size_t open = trimmed.find('[');
  size_t close = trimmed.rfind(']');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    return LineError(line,
                     "constraint target must be `empty` or `Rel[c0, c1]`");
  }
  std::string name(TrimWhitespace(trimmed.substr(0, open)));
  std::vector<size_t> cols;
  for (const std::string& piece :
       SplitAndTrim(trimmed.substr(open + 1, close - open - 1), ',')) {
    if (piece.empty()) continue;
    int64_t col = 0;
    if (!ParseInt64(piece, &col) || col < 0) {
      return LineError(line, StrCat("bad projection column: ", piece));
    }
    cols.push_back(static_cast<size_t>(col));
  }
  return std::make_pair(name, cols);
}

/// Parses the constraint's left side: an FO formula definition when the
/// text contains `:=`, a CQ rule otherwise. FO formulas in the ∃FO+
/// fragment are tagged Positive so they stay in the decidable cells.
Result<AnyQuery> ParseConstraintQuery(std::string_view text, size_t line) {
  if (text.find(":=") != std::string_view::npos) {
    auto fo = ParseFoQuery(text);
    if (!fo.ok()) {
      return LineError(line, fo.status().message());
    }
    if (fo->IsPositiveExistential()) return AnyQuery::Positive(*std::move(fo));
    return AnyQuery::Fo(*std::move(fo));
  }
  auto cq = ParseConjunctiveQuery(text);
  if (!cq.ok()) {
    return LineError(line, cq.status().message());
  }
  return AnyQuery::Cq(*std::move(cq));
}

Result<AnyQuery> ParseSpecQuery(std::string_view lang, std::string_view text,
                                size_t line) {
  QueryLanguage language;
  if (lang == "cq") {
    language = QueryLanguage::kCq;
  } else if (lang == "ucq") {
    language = QueryLanguage::kUcq;
  } else if (lang == "fo") {
    language = QueryLanguage::kFo;
  } else if (lang == "efo" || lang == "efo+") {
    language = QueryLanguage::kPositive;
  } else if (lang == "fp" || lang == "datalog") {
    language = QueryLanguage::kDatalog;
  } else {
    return LineError(line, StrCat("unknown query language: ", lang,
                                  " (use cq, ucq, efo, fo, fp)"));
  }
  auto query = ParseQuery(text, language);
  if (!query.ok()) {
    return LineError(line, query.status().message());
  }
  return query;
}

/// Consumes a leading keyword (identifier) from *text; returns it.
std::string TakeWord(std::string_view* text) {
  *text = TrimWhitespace(*text);
  size_t end = 0;
  while (end < text->size() &&
         (std::isalnum(static_cast<unsigned char>((*text)[end])) ||
          (*text)[end] == '_' || (*text)[end] == '+')) {
    ++end;
  }
  std::string word(text->substr(0, end));
  *text = TrimWhitespace(text->substr(end));
  return word;
}

}  // namespace

Result<CompletenessSpec> ParseCompletenessSpec(std::string_view text) {
  CompletenessSpec spec;
  struct PendingFact {
    bool master;
    std::string relation;
    Tuple tuple;
    size_t line;
  };
  std::vector<PendingFact> facts;
  struct PendingConstraint {
    AnyQuery query;
    std::string target_relation;  // empty => ⊆ ∅
    std::vector<size_t> target_cols;
    size_t line;
  };
  std::vector<PendingConstraint> constraints;

  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    std::string_view raw = nl == std::string_view::npos
                               ? text.substr(start)
                               : text.substr(start, nl - start);
    start = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    std::string stripped = StripComment(raw);
    std::string_view rest = TrimWhitespace(stripped);
    if (rest.empty()) continue;

    std::string keyword = TakeWord(&rest);
    bool master = false;
    if (keyword == "master") {
      master = true;
      keyword = TakeWord(&rest);
    }
    if (keyword == "relation") {
      RELCOMP_ASSIGN_OR_RETURN(RelationSchema rs,
                               ParseRelationDecl(rest, line_no));
      Status st = master ? spec.master_schema->AddRelation(std::move(rs))
                         : spec.db_schema->AddRelation(std::move(rs));
      if (!st.ok()) return LineError(line_no, st.message());
    } else if (keyword == "fact") {
      RELCOMP_ASSIGN_OR_RETURN(auto fact, ParseFact(rest, line_no));
      facts.push_back(
          {master, std::move(fact.first), std::move(fact.second), line_no});
    } else if (keyword == "constraint") {
      if (master) return LineError(line_no, "constraints cannot be 'master'");
      size_t sep = rest.find("|=");
      if (sep == std::string_view::npos) {
        return LineError(line_no,
                         "constraint needs `|= target` (or `|= empty`)");
      }
      RELCOMP_ASSIGN_OR_RETURN(
          AnyQuery q, ParseConstraintQuery(rest.substr(0, sep), line_no));
      RELCOMP_ASSIGN_OR_RETURN(auto target,
                               ParseTarget(rest.substr(sep + 2), line_no));
      constraints.push_back({std::move(q), std::move(target.first),
                             std::move(target.second), line_no});
    } else if (keyword == "query") {
      if (master) return LineError(line_no, "queries cannot be 'master'");
      std::string lang = TakeWord(&rest);
      RELCOMP_ASSIGN_OR_RETURN(AnyQuery q,
                               ParseSpecQuery(lang, rest, line_no));
      spec.queries.push_back(std::move(q));
    } else {
      return LineError(line_no, StrCat("unknown statement: ", keyword));
    }
  }

  // Phase 2: insert facts (schemas are now complete) and build CCs.
  for (PendingFact& fact : facts) {
    Status st = fact.master
                    ? spec.master.Insert(fact.relation, std::move(fact.tuple))
                    : spec.db.Insert(fact.relation, std::move(fact.tuple));
    if (!st.ok()) return LineError(fact.line, st.message());
  }
  for (PendingConstraint& pc : constraints) {
    ContainmentConstraint cc =
        pc.target_relation.empty()
            ? ContainmentConstraint::SubsetOfEmpty(std::move(pc.query))
            : ContainmentConstraint::Subset(std::move(pc.query),
                                            pc.target_relation,
                                            std::move(pc.target_cols));
    Status st = cc.Validate(*spec.db_schema, *spec.master_schema);
    if (!st.ok()) return LineError(pc.line, st.message());
    spec.constraints.Add(std::move(cc));
  }
  for (size_t i = 0; i < spec.queries.size(); ++i) {
    Status st = spec.queries[i].Validate(*spec.db_schema);
    if (!st.ok()) {
      return Status::InvalidArgument(
          StrCat("query #", i + 1, " (", spec.queries[i].name(),
                 "): ", st.message()));
    }
  }
  return spec;
}

Result<CompletenessSpec> LoadCompletenessSpec(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound(StrCat("cannot open spec file: ", path));
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCompletenessSpec(buffer.str());
}

Result<DeltaBatch> ParseDeltaBatch(std::string_view text) {
  DeltaBatch batch;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    std::string_view raw = nl == std::string_view::npos
                               ? text.substr(start)
                               : text.substr(start, nl - start);
    start = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    std::string stripped = StripComment(raw);
    std::string_view rest = TrimWhitespace(stripped);
    if (rest.empty()) continue;

    std::string keyword = TakeWord(&rest);
    bool master = false;
    if (keyword == "master") {
      master = true;
      keyword = TakeWord(&rest);
    }
    DeltaOp op;
    if (keyword == "insert") {
      op.insert = true;
    } else if (keyword == "delete") {
      op.insert = false;
    } else {
      return LineError(line_no,
                       StrCat("expected insert/delete (optionally after "
                              "`master`); got: ",
                              keyword));
    }
    RELCOMP_ASSIGN_OR_RETURN(auto fact, ParseFact(rest, line_no));
    op.relation = std::move(fact.first);
    op.tuple = std::move(fact.second);
    (master ? batch.master_ops : batch.db_ops).push_back(std::move(op));
  }
  return batch;
}

Result<DeltaBatch> LoadDeltaBatch(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound(StrCat("cannot open delta file: ", path));
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseDeltaBatch(buffer.str());
}

}  // namespace relcomp
