#ifndef RELCOMP_FABRIC_MEMBER_H_
#define RELCOMP_FABRIC_MEMBER_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fabric/ring.h"
#include "net/server.h"
#include "service/decision_service.h"
#include "util/status.h"

namespace relcomp {

/// Stages of the planned shard-handoff protocol, in execution order.
/// The chaos harness injects a failure at every stage boundary (via
/// FabricMemberOptions::handoff_fault) and then kills the member, to
/// prove each interruption point recovers to identical verdicts.
enum class HandoffStage : uint8_t {
  kDrain,    ///< stop admitting work for the shard (route sheds)
  kFlush,    ///< quiesce the service: checkpoints and records durable
  kJournal,  ///< epoch bump naming the successor hits the shard store
  kRelease,  ///< service destroyed, directory flock freed
  kAdopt,    ///< adopt RPC to the successor
  kConfirm,  ///< handoff bookkeeping complete
};

const char* HandoffStageToString(HandoffStage stage);

/// Member configuration. The endpoint list doubles as the shard map:
/// the fabric has endpoints.size() shards, shard i initially owned by
/// the member listening on endpoints[i]. Every member of one fabric
/// must be started with the SAME endpoints/seed/vnodes — they are the
/// placement contract.
struct FabricMemberOptions {
  /// Root directory; shard s lives at <fabric_root>/shard-<s>.
  std::string fabric_root;
  /// This member's index into `endpoints` (== its home shard).
  size_t member_index = 0;
  /// All members' listen addresses, in shard order.
  std::vector<std::string> endpoints;
  uint64_t seed = FabricRing::kDefaultSeed;
  uint32_t vnodes = FabricRing::kDefaultVnodes;
  /// Applied to every shard service this member runs (store options
  /// are overwritten with the shard addressing).
  DecisionServiceOptions service_options;
  NetServerOptions server_options;
  /// Bounds the handoff protocol's adopt RPC to the successor (I/O
  /// deadline and overall call deadline). A successor that stalls past
  /// this leaves the shard flock-free with a durable record naming it
  /// — any member (including a third) can still adopt.
  std::chrono::milliseconds handoff_adopt_deadline{10000};
  /// Test hook: called at the entry of every handoff stage; a non-OK
  /// return aborts the handoff there with that status (the chaos
  /// harness then kills the member to simulate dying mid-protocol).
  std::function<Status(HandoffStage stage)> handoff_fault;
  /// Period of the store-health probe thread (0 = no thread). Each
  /// tick sweeps the owned shards; a shard whose store is sick AND
  /// fails one live re-probe is self-evicted: handed off to a healthy
  /// peer (steered by its health RPC), or — if even the handoff
  /// journal write fails on the dying disk — given up with a truthful
  /// no-owner record so the fabric's orphan-adoption path takes over.
  std::chrono::milliseconds health_probe_interval{0};
};

/// One member of the sharded decision fabric: a NetServer plus the
/// DecisionServices of every shard this member currently owns (its
/// home shard, and any it adopted), routed by the consistent-hash
/// ring.
///
/// Ownership and fencing:
///  * A shard is owned by whoever holds the flock on its directory —
///    the same exclusion a standalone store relies on. Adoption is
///    just CheckpointStore::Open succeeding where the dead owner's
///    kernel-released lock no longer blocks it; a zombie that still
///    holds the lock makes AdoptShard fail kFailedPrecondition
///    instead of double-serving.
///  * Every ownership change bumps the ring epoch and persists the new
///    ring as a control record in every owned shard. Clients and
///    restarted members keep the highest epoch they see, so a stale
///    owner can never win placement back by gossiping an old ring.
///  * Startup recovery is the handoff mechanism: adopting a shard
///    re-creates and resumes every in-flight job from its durable
///    records, bit-for-bit (PR 3/4 guarantees), and its verdict cache
///    rides along in the same directory.
///
/// Degradation: keys routed to a shard this member does not own are
/// shed with kUnavailable naming the owner (retry_after_ms attached by
/// the server), so a client with a stale ring gets a typed nudge, not
/// a hang. Shutdown() drains gracefully: the ring departure (epoch
/// bump, "" endpoints) is persisted BEFORE the listener closes, so the
/// record outlives the socket.
class FabricMember {
 public:
  static Result<std::unique_ptr<FabricMember>> Start(
      const FabricMemberOptions& options);

  ~FabricMember();
  FabricMember(const FabricMember&) = delete;
  FabricMember& operator=(const FabricMember&) = delete;

  /// Resolved listen address of this member's server.
  const std::string& address() const { return server_->address(); }

  /// Adopts shard `shard` (a dead peer's directory): opens its store —
  /// kFailedPrecondition while a live owner still holds the flock —
  /// resumes its in-flight jobs, bumps the ring epoch, and persists
  /// the reassignment to every owned shard.
  Status AdoptShard(size_t shard);

  /// Planned live handoff of `shard` to the member at `successor`:
  /// stop admitting work for the shard (routes shed kUnavailable
  /// naming the successor), flush every in-flight job to a durable
  /// checkpoint (DecisionService::Quiesce — records kept, no torn
  /// state), journal an epoch bump naming the successor into the
  /// shard's control record, release the directory flock by destroying
  /// the service, then ask the successor to adopt. The successor's
  /// ordinary startup recovery resumes every job bit-for-bit; its ring
  /// re-publish (epoch + 2 from ours) retargets clients within one
  /// refresh.
  ///
  /// Failure contract: an abort before the journal stage restores full
  /// service on this member. A journal-stage failure gives up tenure
  /// (no-owner record, flock freed) so any member can adopt. After the
  /// journal lands, the shard is durable-complete: an adopt-RPC
  /// failure (successor dead or stalled) returns the error with the
  /// shard flock-free and its record naming the successor — the
  /// fabric's ordinary adoption path finishes the move.
  ///
  /// kInvalidArgument for a handoff to self or to an endpoint outside
  /// the fabric; kFailedPrecondition when the shard is not owned here
  /// or already mid-handoff.
  Status HandoffShard(size_t shard, const std::string& successor);

  /// Graceful drain: persist the ring departure, close the listener,
  /// drain the shard services. Idempotent.
  void Shutdown();

  /// Snapshot of the member's current ring.
  FabricRing ring() const;

  /// Shards currently owned (sorted).
  std::vector<size_t> owned_shards() const;

  /// The service owning `shard`, or nullptr — tests use this to reach
  /// per-shard counters (completed_order, corrupt_files_skipped).
  DecisionService* shard_service(size_t shard);

  NetServer* server() { return server_.get(); }

  /// Jobs re-created from durable records across all owned shards,
  /// including ones picked up by AdoptShard.
  size_t recovered_jobs() const;

  /// The member's relcomp-health/1 report: worst state on the first
  /// line, one HealthLine per owned shard after it. This is what the
  /// server's health op serves.
  std::string HealthReport() const;

  /// Runs one probe-and-evict pass synchronously on the caller's
  /// thread — the deterministic test entry to the same sweep the
  /// health_probe_interval thread runs.
  void ProbeAndEvictNow();

  /// Self-evictions attempted (sick shard, failed re-probe, successor
  /// chosen) and completed (the handoff returned OK; a journal-stage
  /// give-up counts as attempted only, though tenure is gone either
  /// way).
  size_t self_eviction_attempts() const;
  size_t self_evictions() const;

 private:
  FabricMember() = default;

  /// Opens shard `shard`'s store/service with this member's options.
  Result<std::unique_ptr<DecisionService>> StartShardService(size_t shard);
  /// Persists ring_ as the control record of every owned shard.
  /// Requires mu_ held.
  Status PersistRingLocked();
  /// Fires the handoff_fault hook for `stage` (OK when unset).
  Status StageFault(HandoffStage stage);
  /// Background probe thread body (health_probe_interval paced).
  void ProberLoop();
  /// One sweep: re-probe sick shard stores, hand the still-sick ones
  /// to a healthy peer. Takes and releases mu_ internally.
  void ProbeAndEvict();

  FabricMemberOptions options_;
  std::unique_ptr<NetServer> server_;
  std::thread prober_;
  std::condition_variable probe_cv_;
  /// Serializes prober join across concurrent Shutdown callers.
  std::mutex prober_join_mu_;

  mutable std::mutex mu_;
  FabricRing ring_;
  std::map<size_t, std::unique_ptr<DecisionService>> services_;
  /// Shards mid-handoff: route sheds them kUnavailable naming the
  /// successor. An entry outlives a post-journal abort on purpose —
  /// the durable record names the successor, so the shed stays
  /// truthful until this member dies or the fabric adopts the shard.
  std::map<size_t, std::string> draining_;
  size_t recovered_jobs_ = 0;
  size_t self_eviction_attempts_ = 0;
  size_t self_evictions_ = 0;
  bool shutdown_ = false;
};

}  // namespace relcomp

#endif  // RELCOMP_FABRIC_MEMBER_H_
